package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRequestsDeterministic(t *testing.T) {
	m := DefaultMix()
	a, err := m.Requests(7, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Requests(7, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := m.Requests(8, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different generator seeds produced identical sequences")
	}
}

func TestRequestsZipfShape(t *testing.T) {
	m := DefaultMix()
	reqs, err := m.Requests(1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	bySeed := map[string]int{}
	for _, r := range reqs {
		for _, s := range m.Seeds {
			if strings.Contains(r.Path, fmt.Sprintf("seed=%d&", s)) {
				bySeed[fmt.Sprint(s)]++
			}
		}
	}
	// Rank 0 must dominate but not monopolize, and the tail must exist.
	hot := bySeed["1"]
	if hot < len(reqs)/3 || hot == len(reqs) {
		t.Fatalf("hot seed drew %d/%d requests; want dominant with a tail: %v", hot, len(reqs), bySeed)
	}
	if bySeed["2"] == 0 || bySeed["3"] == 0 {
		t.Fatalf("tail seeds never drawn: %v", bySeed)
	}
	if bySeed["2"] < bySeed["3"] {
		t.Logf("note: rank 2 drawn more than rank 1 (%v); acceptable for small samples", bySeed)
	}
}

func TestRequestsValidation(t *testing.T) {
	if _, err := (Mix{}).Requests(1, 10); err == nil {
		t.Error("empty mix accepted")
	}
	bad := DefaultMix()
	bad.ZipfS = 0.5
	if _, err := bad.Requests(1, 10); err == nil {
		t.Error("zipf s <= 1 accepted")
	}
}

func TestSuiteConfigs(t *testing.T) {
	m := Mix{Seeds: []int64{1, 2}, Presets: []string{"quick", "full"}, Endpoints: []string{"/x"}}
	got := m.SuiteConfigs()
	if len(got) != 4 {
		t.Fatalf("got %d configs, want 4: %v", len(got), got)
	}
	if got[0] != "seed=1&preset=quick" {
		t.Errorf("first config %q", got[0])
	}
}

func TestRunnerReplaysAll(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if strings.Contains(r.URL.Path, "boom") {
			http.Error(w, "kaput", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	reqs := []Request{{Path: "/a"}, {Path: "/boom"}, {Path: "/b"}, {Path: "/c"}}
	runner := &Runner{BaseURL: srv.URL, Concurrency: 3}
	results := runner.Run(context.Background(), reqs)
	if got := hits.Load(); got != int64(len(reqs)) {
		t.Fatalf("server saw %d requests, want %d", got, len(reqs))
	}
	// Index-aligned with input regardless of scheduling.
	for i, r := range results {
		if r.Path != reqs[i].Path {
			t.Fatalf("result %d is for %q, want %q", i, r.Path, reqs[i].Path)
		}
		if r.Latency <= 0 {
			t.Errorf("result %d has no latency", i)
		}
	}
	if results[1].Status != http.StatusInternalServerError {
		t.Errorf("boom status %d", results[1].Status)
	}

	rep := Summarize(results)
	if rep.Requests != 4 || rep.Errors != 1 {
		t.Fatalf("report %+v, want 4 requests 1 error", rep)
	}
	if rep.StatusCount["200"] != 3 || rep.StatusCount["500"] != 1 {
		t.Errorf("status counts %v", rep.StatusCount)
	}
	if rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Errorf("quantiles not ordered: %+v", rep)
	}
}

func TestRunnerCancellation(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Path: fmt.Sprintf("/r%d", i)}
	}
	done := make(chan []Result, 1)
	go func() { done <- (&Runner{BaseURL: srv.URL, Concurrency: 2}).Run(ctx, reqs) }()
	select {
	case results := <-done:
		if len(results) != len(reqs) {
			t.Fatalf("got %d results, want %d", len(results), len(reqs))
		}
		errs := 0
		for _, r := range results {
			if r.Err != nil {
				errs++
			}
		}
		if errs == 0 {
			t.Error("cancellation produced no errors")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestSummarizeQuantilesExact(t *testing.T) {
	results := make([]Result, 100)
	for i := range results {
		results[i] = Result{Status: 200, Latency: time.Duration(i+1) * time.Millisecond}
	}
	rep := Summarize(results)
	if rep.P50Ms != 50 {
		t.Errorf("p50 = %v, want 50 (nearest rank)", rep.P50Ms)
	}
	if rep.P99Ms != 99 {
		t.Errorf("p99 = %v, want 99", rep.P99Ms)
	}
	if rep.MaxMs != 100 {
		t.Errorf("max = %v, want 100", rep.MaxMs)
	}
	if rep.MeanMs != 50.5 {
		t.Errorf("mean = %v, want 50.5", rep.MeanMs)
	}
	if rep.ErrorRate != 0 {
		t.Errorf("error rate %v", rep.ErrorRate)
	}
}

func TestCheckThresholds(t *testing.T) {
	rep := Report{P99Ms: 120, ErrorRate: 0.02, Errors: 2, Requests: 100}
	if err := rep.Check(200*time.Millisecond, 0.05); err != nil {
		t.Errorf("within budget but failed: %v", err)
	}
	err := rep.Check(100*time.Millisecond, 0.01)
	if err == nil {
		t.Fatal("both thresholds violated but Check passed")
	}
	for _, want := range []string{"p99", "error rate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the %s violation", err, want)
		}
	}
	// Disabled checks never fail.
	if err := rep.Check(0, -1); err != nil {
		t.Errorf("disabled checks failed: %v", err)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	rep := Summarize(nil)
	if rep.Requests != 0 || rep.ErrorRate != 0 || rep.P99Ms != 0 {
		t.Errorf("empty summary %+v", rep)
	}
}
