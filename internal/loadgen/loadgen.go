// Package loadgen generates and replays a deterministic request mix
// against the suite-serving HTTP API, and reduces the observed
// latencies to a report with exact quantiles and threshold checks.
//
// The mix is a seeded random sequence: suite seeds, presets and
// endpoints are drawn zipf-style (a few hot configurations dominate,
// with a long tail), because that is the traffic shape the serving
// stack's caches are designed for — and the shape that punishes cache
// misconfiguration hardest. The same generator seed always yields the
// same request sequence, so a load-test run is reproducible and its
// committed thresholds are meaningful across machines and CI runs.
//
// Replay itself (Runner) measures wall-clock latency, so this package
// is deliberately NOT part of the determinism-linted set: its outputs
// are measurements, not results.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Request is one generated API request, relative to the server base
// URL.
type Request struct {
	Path string `json:"path"`
}

// Mix describes the request population. Slices are rank-ordered
// hottest first: index 0 is drawn most often under the zipf draw.
type Mix struct {
	// Seeds are the suite seeds in play. A serving fleet's cache
	// capacity is spent per (seed, preset), so the seed count controls
	// how much suite churn the test applies.
	Seeds []int64
	// Presets are the campaign scales requested, hottest first.
	Presets []string
	// Endpoints are API path templates, hottest first.
	Endpoints []string
	// ZipfS is the zipf skew parameter (must be > 1; larger = more
	// skew). Zero means DefaultZipfS.
	ZipfS float64
}

// DefaultZipfS keeps roughly 60% of draws on rank 0 for small
// populations — hot-dominated but with a real tail.
const DefaultZipfS = 1.6

// DefaultMix is the committed load-test population: three suite seeds
// on the quick preset (CI-affordable builds) over the table and figure
// endpoints the paper's readers actually hit.
func DefaultMix() Mix {
	eps := []string{"/api/table1", "/api/figure/2", "/api/figure/3", "/api/table/2",
		"/api/figure/9", "/api/figure/15", "/api/table/3", "/api/figure/6",
		"/api/figure/11", "/api/figure/16"}
	return Mix{
		Seeds:     []int64{1, 2, 3},
		Presets:   []string{"quick"},
		Endpoints: eps,
	}
}

// Requests expands the mix into a deterministic sequence of n requests
// drawn with the given generator seed.
func (m Mix) Requests(seed int64, n int) ([]Request, error) {
	if len(m.Seeds) == 0 || len(m.Presets) == 0 || len(m.Endpoints) == 0 {
		return nil, fmt.Errorf("loadgen: mix needs seeds, presets and endpoints")
	}
	s := m.ZipfS
	if s == 0 {
		s = DefaultZipfS
	}
	if s <= 1 {
		return nil, fmt.Errorf("loadgen: zipf s=%v must exceed 1", s)
	}
	rng := rand.New(rand.NewSource(seed))
	seedZ := rand.NewZipf(rng, s, 1, uint64(len(m.Seeds)-1))
	presetZ := rand.NewZipf(rng, s, 1, uint64(len(m.Presets)-1))
	epZ := rand.NewZipf(rng, s, 1, uint64(len(m.Endpoints)-1))
	out := make([]Request, n)
	for i := range out {
		ep := m.Endpoints[epZ.Uint64()]
		sep := "?"
		if strings.Contains(ep, "?") {
			sep = "&"
		}
		out[i] = Request{Path: fmt.Sprintf("%s%sseed=%d&preset=%s",
			ep, sep, m.Seeds[seedZ.Uint64()], m.Presets[presetZ.Uint64()])}
	}
	return out, nil
}

// SuiteConfigs returns every (seed, preset) query string the mix can
// produce, for prewarming worker caches before the measured pass.
func (m Mix) SuiteConfigs() []string {
	out := make([]string, 0, len(m.Seeds)*len(m.Presets))
	for _, s := range m.Seeds {
		for _, p := range m.Presets {
			out = append(out, fmt.Sprintf("seed=%d&preset=%s", s, p))
		}
	}
	return out
}

// Result is one replayed request's outcome.
type Result struct {
	Path    string
	Status  int // 0 on transport error
	Latency time.Duration
	Err     error
}

// Runner replays a request sequence against a base URL with bounded
// concurrency.
type Runner struct {
	BaseURL     string
	Concurrency int          // worker goroutines; <=0 means 1
	Client      *http.Client // nil means http.DefaultClient
}

// Run replays reqs and returns one result per request, index-aligned
// with the input so the output is independent of goroutine scheduling.
func (r *Runner) Run(ctx context.Context, reqs []Request) []Result {
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}
	workers := r.Concurrency
	if workers <= 0 {
		workers = 1
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	results := make([]Result, len(reqs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = replayOne(ctx, client, r.BaseURL, reqs[i])
			}
		}()
	}
	for i := range reqs {
		select {
		case idx <- i:
		case <-ctx.Done():
			for ; i < len(reqs); i++ {
				results[i] = Result{Path: reqs[i].Path, Err: ctx.Err()}
			}
			close(idx)
			wg.Wait()
			return results
		}
	}
	close(idx)
	wg.Wait()
	return results
}

func replayOne(ctx context.Context, client *http.Client, base string, r Request) Result {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+r.Path, nil)
	if err != nil {
		return Result{Path: r.Path, Err: err}
	}
	resp, err := client.Do(req)
	if err != nil {
		return Result{Path: r.Path, Latency: time.Since(start), Err: err}
	}
	// Drain so latency covers the full payload and the connection is
	// reusable.
	_, err = io.Copy(io.Discard, resp.Body)
	res := Result{Path: r.Path, Status: resp.StatusCode, Latency: time.Since(start), Err: err}
	resp.Body.Close()
	return res
}

// Report summarizes a replay: request counts, exact latency quantiles
// (computed by sorting, not approximated), and the error rate.
type Report struct {
	Requests    int            `json:"requests"`
	Errors      int            `json:"errors"` // transport errors + 5xx
	ErrorRate   float64        `json:"errorRate"`
	StatusCount map[string]int `json:"statusCounts"`

	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
	MeanMs float64 `json:"meanMs"`
}

// Summarize reduces replay results to a Report. A request counts as an
// error when the transport failed or the server answered 5xx; 4xx is a
// caller bug the thresholds should surface via status counts, not the
// error budget.
func Summarize(results []Result) Report {
	rep := Report{Requests: len(results), StatusCount: map[string]int{}}
	lat := make([]float64, 0, len(results))
	var sum float64
	for _, r := range results {
		switch {
		case r.Err != nil:
			rep.Errors++
			rep.StatusCount["error"]++
		default:
			rep.StatusCount[fmt.Sprint(r.Status)]++
			if r.Status >= 500 {
				rep.Errors++
			}
		}
		ms := r.Latency.Seconds() * 1e3
		lat = append(lat, ms)
		sum += ms
	}
	if len(results) == 0 {
		return rep
	}
	rep.ErrorRate = float64(rep.Errors) / float64(len(results))
	sort.Float64s(lat)
	rep.P50Ms = quantile(lat, 0.50)
	rep.P90Ms = quantile(lat, 0.90)
	rep.P99Ms = quantile(lat, 0.99)
	rep.MaxMs = lat[len(lat)-1]
	rep.MeanMs = sum / float64(len(lat))
	return rep
}

// quantile returns the exact q-quantile of sorted values using the
// nearest-rank method, so p99 of 100 samples is the 99th largest — a
// real observation, not an interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Check asserts the report against a latency and error budget.
// p99Budget <= 0 or errorBudget < 0 disables that check. The returned
// error names every violated threshold.
func (r Report) Check(p99Budget time.Duration, errorBudget float64) error {
	var fails []string
	if p99Budget > 0 {
		if budget := p99Budget.Seconds() * 1e3; r.P99Ms > budget {
			fails = append(fails, fmt.Sprintf("p99 %.1fms exceeds budget %.1fms", r.P99Ms, budget))
		}
	}
	if errorBudget >= 0 && r.ErrorRate > errorBudget {
		fails = append(fails, fmt.Sprintf("error rate %.4f exceeds budget %.4f (%d/%d failed)",
			r.ErrorRate, errorBudget, r.Errors, r.Requests))
	}
	if len(fails) > 0 {
		return fmt.Errorf("loadgen: %s", strings.Join(fails, "; "))
	}
	return nil
}
