package report

import (
	"strings"
	"testing"

	"pathsel/internal/stats"
)

func TestTable(t *testing.T) {
	var b strings.Builder
	rows := [][]string{
		{"Dataset", "Hosts", "Coverage"},
		{"UW3", "39", "87%"},
		{"D2", "33", "97%"},
	}
	if err := Table(&b, rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Dataset") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator line %q", lines[1])
	}
	// Columns align: "Hosts" column starts at the same offset everywhere.
	h := strings.Index(lines[0], "Hosts")
	if strings.Index(lines[2], "39") != h {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Error("empty table should render nothing")
	}
}

func TestTableRaggedRows(t *testing.T) {
	var b strings.Builder
	rows := [][]string{{"a", "b", "c"}, {"x"}, {"y", "z"}}
	if err := Table(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x") {
		t.Error("ragged row lost")
	}
}

func TestCDFSummary(t *testing.T) {
	c := stats.NewCDF([]float64{-10, -5, 0, 5, 10, 15, 20, 25, 30, 35})
	s := CDFSummary(c)
	if !strings.Contains(s, "n=10") {
		t.Errorf("summary %q missing count", s)
	}
	if !strings.Contains(s, "above0=") {
		t.Errorf("summary %q missing above0", s)
	}
	if CDFSummary(stats.NewCDF(nil)) != "empty" {
		t.Error("empty CDF summary wrong")
	}
}

func TestDumpCDF(t *testing.T) {
	var vals []float64
	for i := 0; i < 100; i++ {
		vals = append(vals, float64(i))
	}
	c := stats.NewCDF(vals)
	var b strings.Builder
	if err := DumpCDF(&b, c, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) < 10 || len(lines) > 12 {
		t.Errorf("got %d lines, want ~10", len(lines))
	}
	// Final point must reach fraction 1.
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, "1.0000") {
		t.Errorf("last line %q should reach 1.0", last)
	}
	for _, ln := range lines {
		if len(strings.Split(ln, "\t")) != 2 {
			t.Errorf("line %q not tab-separated", ln)
		}
	}
}

func TestDumpCDFNoThinning(t *testing.T) {
	c := stats.NewCDF([]float64{1, 2, 3})
	var b strings.Builder
	if err := DumpCDF(&b, c, 0); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "\n"); n != 3 {
		t.Errorf("got %d lines, want 3", n)
	}
}

func TestAsciiCDF(t *testing.T) {
	c := stats.NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	plot := AsciiCDF(c, -1, 10, 8, 40)
	if plot == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(plot, "*") {
		t.Error("plot has no points")
	}
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 10 { // 8 rows + axis + labels
		t.Errorf("got %d lines", len(lines))
	}
	// Degenerate parameters return "".
	if AsciiCDF(c, 5, 5, 8, 40) != "" {
		t.Error("degenerate x-range should return empty")
	}
	if AsciiCDF(stats.NewCDF(nil), 0, 1, 8, 40) != "" {
		t.Error("empty CDF should return empty plot")
	}
	if AsciiCDF(c, 0, 1, 1, 40) != "" {
		t.Error("too-few rows should return empty plot")
	}
}

func TestMultiCDF(t *testing.T) {
	var b strings.Builder
	cdfs := []stats.CDF{stats.NewCDF([]float64{1, 2}), stats.NewCDF([]float64{3, 4})}
	if err := MultiCDF(&b, []string{"one", "two"}, cdfs, 0, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "one:") || !strings.Contains(out, "two:") {
		t.Errorf("missing labels:\n%s", out)
	}
}

func TestAsciiScatter(t *testing.T) {
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, float64(i)*2+10)
	}
	plot := AsciiScatter(xs, ys, 10, 40)
	if plot == "" {
		t.Fatal("empty plot")
	}
	if !strings.ContainsAny(plot, ".o@") {
		t.Error("plot has no points")
	}
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 12 { // rows + axis + labels
		t.Errorf("got %d lines", len(lines))
	}
	// Degenerate inputs.
	if AsciiScatter(xs[:3], ys[:2], 10, 40) != "" {
		t.Error("mismatched lengths accepted")
	}
	if AsciiScatter(nil, nil, 10, 40) != "" {
		t.Error("empty input accepted")
	}
	if AsciiScatter([]float64{1, 1}, []float64{2, 2}, 10, 40) != "" {
		t.Error("degenerate range accepted")
	}
	// Overplotted cells escalate . -> o -> @.
	same := AsciiScatter([]float64{0, 0, 0, 1}, []float64{0, 0, 0, 1}, 5, 5)
	if !strings.Contains(same, "o") && !strings.Contains(same, "@") {
		t.Errorf("overplotting not marked:\n%s", same)
	}
}
