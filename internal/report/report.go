// Package report renders analysis results as aligned text tables, CDF
// series dumps, and quick ASCII plots for terminal inspection — the
// output layer for cmd/figures and cmd/altpath.
package report

import (
	"fmt"
	"io"
	"strings"

	"pathsel/internal/stats"
)

// Table renders rows of cells with left-aligned columns padded to the
// widest cell. The first row is treated as a header and underlined.
func Table(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(r []string) error {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			b.WriteString(cell)
			if i < cols-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)+2))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(rows[0]); err != nil {
		return err
	}
	total := 0
	for i, width := range widths {
		total += width
		if i < cols-1 {
			total += 2
		}
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range rows[1:] {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// CDFSummary is a compact one-line description of a CDF: count, key
// quantiles, and the fraction of mass above zero (the "alternate path is
// superior" fraction for improvement CDFs).
func CDFSummary(c stats.CDF) string {
	if c.N() == 0 {
		return "empty"
	}
	q10, _ := c.Quantile(0.10)
	q50, _ := c.Quantile(0.50)
	q90, _ := c.Quantile(0.90)
	return fmt.Sprintf("n=%d p10=%.2f median=%.2f p90=%.2f above0=%.1f%%",
		c.N(), q10, q50, q90, 100*c.FractionAbove(0))
}

// DumpCDF writes "x fraction" pairs, thinned to at most maxPoints rows,
// in a form a plotting tool can ingest directly.
func DumpCDF(w io.Writer, c stats.CDF, maxPoints int) error {
	pts := c.Points()
	step := 1
	if maxPoints > 0 && len(pts) > maxPoints {
		step = (len(pts) + maxPoints - 1) / maxPoints
	}
	for i := 0; i < len(pts); i += step {
		if _, err := fmt.Fprintf(w, "%g\t%.4f\n", pts[i].X, pts[i].Frac); err != nil {
			return err
		}
	}
	// Always include the final point so the curve reaches its top.
	if (len(pts)-1)%step != 0 && len(pts) > 0 {
		p := pts[len(pts)-1]
		if _, err := fmt.Fprintf(w, "%g\t%.4f\n", p.X, p.Frac); err != nil {
			return err
		}
	}
	return nil
}

// AsciiCDF draws a CDF as a rows x cols character plot. The x range is
// [lo, hi]; values outside are clipped. Returns the rendered plot.
func AsciiCDF(c stats.CDF, lo, hi float64, rows, cols int) string {
	if rows < 2 || cols < 2 || hi <= lo || c.N() == 0 {
		return ""
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for col := 0; col < cols; col++ {
		x := lo + (hi-lo)*float64(col)/float64(cols-1)
		f := c.FractionBelow(x)
		row := rows - 1 - int(f*float64(rows-1)+0.5)
		if row < 0 {
			row = 0
		}
		if row >= rows {
			row = rows - 1
		}
		grid[row][col] = '*'
	}
	var b strings.Builder
	for i, line := range grid {
		frac := 1 - float64(i)/float64(rows-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", frac, string(line))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", cols+2))
	fmt.Fprintf(&b, "      %-*.4g%*.4g\n", cols/2+1, lo, cols/2+1, hi)
	return b.String()
}

// MultiCDF renders several labeled CDFs stacked with their summaries.
func MultiCDF(w io.Writer, names []string, cdfs []stats.CDF, lo, hi float64) error {
	for i, c := range cdfs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		if _, err := fmt.Fprintf(w, "%s: %s\n", name, CDFSummary(c)); err != nil {
			return err
		}
		if plot := AsciiCDF(c, lo, hi, 10, 60); plot != "" {
			if _, err := io.WriteString(w, plot); err != nil {
				return err
			}
		}
	}
	return nil
}

// AsciiScatter draws (x, y) points as a rows x cols character plot with
// both axes spanning the data's 2nd-98th percentile range, used for the
// paper's scatter exhibits (Figures 14 and 16). Returns "" for
// degenerate input.
func AsciiScatter(xs, ys []float64, rows, cols int) string {
	if len(xs) != len(ys) || len(xs) == 0 || rows < 2 || cols < 2 {
		return ""
	}
	xc := stats.NewCDF(xs)
	yc := stats.NewCDF(ys)
	xlo, _ := xc.Quantile(0.02)
	xhi, _ := xc.Quantile(0.98)
	ylo, _ := yc.Quantile(0.02)
	yhi, _ := yc.Quantile(0.98)
	if xhi <= xlo || yhi <= ylo {
		return ""
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for i := range xs {
		cx := int((xs[i] - xlo) / (xhi - xlo) * float64(cols-1))
		cy := int((ys[i] - ylo) / (yhi - ylo) * float64(rows-1))
		if cx < 0 || cx >= cols || cy < 0 || cy >= rows {
			continue // clipped tail point
		}
		row := rows - 1 - cy
		switch grid[row][cx] {
		case ' ':
			grid[row][cx] = '.'
		case '.':
			grid[row][cx] = 'o'
		default:
			grid[row][cx] = '@'
		}
	}
	var b strings.Builder
	for i, line := range grid {
		y := yhi - (yhi-ylo)*float64(i)/float64(rows-1)
		fmt.Fprintf(&b, "%9.3g |%s|\n", y, string(line))
	}
	fmt.Fprintf(&b, "          %s\n", strings.Repeat("-", cols+2))
	fmt.Fprintf(&b, "          %-*.4g%*.4g\n", cols/2+1, xlo, cols/2+1, xhi)
	return b.String()
}
