package topology

import (
	"fmt"
	"sort"
)

// Topology is a generated Internet: ASes, routers, links, and hosts.
// All slices are ordered by ID so that iteration is deterministic.
type Topology struct {
	Config  Config
	ASList  []*AS
	Routers []*Router
	Links   []*Link
	Hosts   []*Host

	// ExchangeCount is the number of exchange points actually used.
	ExchangeCount int

	asByNum map[ASN]*AS
	// outOff/outSlab pack the per-router out-link adjacency in CSR form:
	// router r's out-links occupy outSlab[outOff[r]:outOff[r+1]], in link
	// ID order. The slabs are rebuilt lazily from Links whenever the link
	// count changes, so the build path appends links with no per-edge map
	// or per-router slice churn; Generate packs once before returning, so
	// concurrent readers never trigger a rebuild.
	outOff    []int32
	outSlab   []LinkID
	outPacked int // len(Links) when the slabs were built; -1 = stale
	// interAS maps an ordered AS pair to the directed links from the
	// first to the second.
	interAS map[[2]ASN][]LinkID
}

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(n ASN) *AS { return t.asByNum[n] }

// Router returns the router with the given ID, or nil.
func (t *Topology) Router(id RouterID) *Router {
	if int(id) < 0 || int(id) >= len(t.Routers) {
		return nil
	}
	return t.Routers[id]
}

// Host returns the host with the given ID, or nil.
func (t *Topology) Host(id HostID) *Host {
	if int(id) < 0 || int(id) >= len(t.Hosts) {
		return nil
	}
	return t.Hosts[id]
}

// Link returns the link with the given ID, or nil.
func (t *Topology) Link(id LinkID) *Link {
	if int(id) < 0 || int(id) >= len(t.Links) {
		return nil
	}
	return t.Links[id]
}

// OutLinks returns the IDs of the links leaving a router, in ID order.
// The returned slice aliases the packed adjacency; callers must not
// modify it.
func (t *Topology) OutLinks(r RouterID) []LinkID {
	if t.outPacked != len(t.Links) || t.outOff == nil {
		t.packOutLinks()
	}
	if int(r) < 0 || int(r)+1 >= len(t.outOff) {
		return nil
	}
	return t.outSlab[t.outOff[r]:t.outOff[r+1]]
}

// packOutLinks (re)builds the CSR out-link slabs from Links by counting
// sort. Links carry ascending IDs in slice order, so each row comes out
// in link-ID order without an explicit sort.
func (t *Topology) packOutLinks() {
	n := len(t.Routers)
	t.outOff = make([]int32, n+1)
	for _, l := range t.Links {
		t.outOff[int(l.From)+1]++
	}
	for r := 0; r < n; r++ {
		t.outOff[r+1] += t.outOff[r]
	}
	if cap(t.outSlab) >= len(t.Links) {
		t.outSlab = t.outSlab[:len(t.Links)]
	} else {
		t.outSlab = make([]LinkID, len(t.Links))
	}
	cur := make([]int32, n)
	copy(cur, t.outOff[:n])
	for _, l := range t.Links {
		p := cur[int(l.From)]
		cur[int(l.From)] = p + 1
		t.outSlab[p] = l.ID
	}
	t.outPacked = len(t.Links)
}

// InterASLinks returns the directed links from AS a to AS b.
func (t *Topology) InterASLinks(a, b ASN) []LinkID { return t.interAS[[2]ASN{a, b}] }

// HostByName returns the host with the given name, or nil.
func (t *Topology) HostByName(name string) *Host {
	for _, h := range t.Hosts {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// addLinkPair appends a link and its reverse, wiring the adjacency index,
// and returns the forward link.
func (t *Topology) addLinkPair(from, to RouterID, rel Relationship, delayMs, capMbps float64, exchange int) *Link {
	fwd := &Link{
		ID: LinkID(len(t.Links)), From: from, To: to, Rel: rel,
		PropDelayMs: delayMs, CapacityMbps: capMbps, Exchange: exchange,
	}
	t.Links = append(t.Links, fwd)
	rev := &Link{
		ID: LinkID(len(t.Links)), From: to, To: from, Rel: rel.Invert(),
		PropDelayMs: delayMs, CapacityMbps: capMbps, Exchange: exchange,
	}
	t.Links = append(t.Links, rev)
	t.outPacked = -1
	if rel != Internal {
		fa, ta := t.Routers[from].AS, t.Routers[to].AS
		t.interAS[[2]ASN{fa, ta}] = append(t.interAS[[2]ASN{fa, ta}], fwd.ID)
		t.interAS[[2]ASN{ta, fa}] = append(t.interAS[[2]ASN{ta, fa}], rev.ID)
		t.Routers[from].Border = true
		t.Routers[to].Border = true
	}
	return fwd
}

// NeighborASes returns all ASes adjacent to a, in ascending order.
func (t *Topology) NeighborASes(a ASN) []ASN {
	as := t.AS(a)
	if as == nil {
		return nil
	}
	set := map[ASN]bool{}
	for _, n := range as.Providers {
		set[n] = true
	}
	for _, n := range as.Customers {
		set[n] = true
	}
	for _, n := range as.Peers {
		set[n] = true
	}
	out := make([]ASN, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the structural invariants of a generated topology:
// ID consistency, intra-AS connectivity, provider coverage, link pairing,
// and host attachment. It is used by tests and by consumers that load a
// topology from disk.
func (t *Topology) Validate() error {
	if len(t.ASList) == 0 {
		return fmt.Errorf("topology: no ASes")
	}
	for i, as := range t.ASList {
		if t.asByNum[as.ASN] != as {
			return fmt.Errorf("topology: AS index broken for %d", as.ASN)
		}
		if i > 0 && t.ASList[i-1].ASN >= as.ASN {
			return fmt.Errorf("topology: ASList not sorted at %d", i)
		}
		if as.Class != Tier1 && len(as.Providers) == 0 {
			return fmt.Errorf("topology: AS %d (%v) has no provider", as.ASN, as.Class)
		}
		if len(as.Routers) == 0 {
			return fmt.Errorf("topology: AS %d has no routers", as.ASN)
		}
		for _, r := range as.Routers {
			router := t.Router(r)
			if router == nil || router.AS != as.ASN {
				return fmt.Errorf("topology: AS %d router list references bad router %d", as.ASN, r)
			}
		}
		if err := t.checkIntraASConnected(as); err != nil {
			return err
		}
	}
	for i, r := range t.Routers {
		if int(r.ID) != i {
			return fmt.Errorf("topology: router %d has ID %d", i, r.ID)
		}
		if t.AS(r.AS) == nil {
			return fmt.Errorf("topology: router %d in unknown AS %d", i, r.AS)
		}
	}
	if len(t.Links)%2 != 0 {
		return fmt.Errorf("topology: odd link count %d (links must be paired)", len(t.Links))
	}
	for i := 0; i < len(t.Links); i += 2 {
		f, r := t.Links[i], t.Links[i+1]
		if f.From != r.To || f.To != r.From {
			return fmt.Errorf("topology: links %d/%d are not a reverse pair", i, i+1)
		}
		if f.PropDelayMs < 0 || f.CapacityMbps <= 0 {
			return fmt.Errorf("topology: link %d has bad delay/capacity %f/%f", i, f.PropDelayMs, f.CapacityMbps)
		}
		fromAS, toAS := t.Router(f.From).AS, t.Router(f.To).AS
		if (f.Rel == Internal) != (fromAS == toAS) {
			return fmt.Errorf("topology: link %d relationship %v inconsistent with ASes %d->%d",
				i, f.Rel, fromAS, toAS)
		}
	}
	maxPerStub := t.Config.HostsPerStub
	if maxPerStub < 1 {
		maxPerStub = 1
	}
	hostsInAS := map[ASN]int{}
	for i, h := range t.Hosts {
		if int(h.ID) != i {
			return fmt.Errorf("topology: host %d has ID %d", i, h.ID)
		}
		attach := t.Router(h.Attach)
		if attach == nil || attach.AS != h.AS {
			return fmt.Errorf("topology: host %d attached to router %d outside its AS %d", i, h.Attach, h.AS)
		}
		as := t.AS(h.AS)
		if as == nil || as.Class != Stub {
			return fmt.Errorf("topology: host %d not in a stub AS", i)
		}
		hostsInAS[h.AS]++
		if hostsInAS[h.AS] > maxPerStub {
			return fmt.Errorf("topology: more than %d hosts in AS %d", maxPerStub, h.AS)
		}
		if h.AccessDelayMs < 0 || h.AccessCapacityMbps <= 0 {
			return fmt.Errorf("topology: host %d has bad access link %f/%f", i, h.AccessDelayMs, h.AccessCapacityMbps)
		}
	}
	return nil
}

func (t *Topology) checkIntraASConnected(as *AS) error {
	if len(as.Routers) == 1 {
		return nil
	}
	seen := map[RouterID]bool{as.Routers[0]: true}
	queue := []RouterID{as.Routers[0]}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, lid := range t.OutLinks(r) {
			l := t.Links[lid]
			if l.Rel != Internal {
				continue
			}
			if !seen[l.To] {
				seen[l.To] = true
				queue = append(queue, l.To)
			}
		}
	}
	if len(seen) != len(as.Routers) {
		return fmt.Errorf("topology: AS %d internal graph disconnected (%d of %d routers reachable)",
			as.ASN, len(seen), len(as.Routers))
	}
	return nil
}

// Stats summarizes a topology for logging and reports.
type Stats struct {
	ASes      int
	Tier1     int
	Transit   int
	Stub      int
	Routers   int
	Links     int
	InterAS   int
	Hosts     int
	Exchanges int
}

// Stats computes summary statistics.
func (t *Topology) Stats() Stats {
	s := Stats{
		ASes: len(t.ASList), Routers: len(t.Routers),
		Links: len(t.Links), Hosts: len(t.Hosts), Exchanges: t.ExchangeCount,
	}
	for _, as := range t.ASList {
		switch as.Class {
		case Tier1:
			s.Tier1++
		case Transit:
			s.Transit++
		case Stub:
			s.Stub++
		}
	}
	for _, l := range t.Links {
		if l.Rel != Internal {
			s.InterAS++
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d ASes (%d tier1, %d transit, %d stub), %d routers, %d links (%d inter-AS), %d hosts, %d exchanges",
		s.ASes, s.Tier1, s.Transit, s.Stub, s.Routers, s.Links, s.InterAS, s.Hosts, s.Exchanges)
}
