package topology

import (
	"testing"

	"pathsel/internal/geo"
)

func mustGenerate(t *testing.T, cfg Config) *Topology {
	t.Helper()
	top, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return top
}

func TestGenerateDefaultValidates(t *testing.T) {
	for _, era := range []Era{Era1995, Era1999} {
		t.Run(era.String(), func(t *testing.T) {
			top := mustGenerate(t, DefaultConfig(era))
			if err := top.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(Era1999)
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %v vs %v", a.Stats(), b.Stats())
	}
	for i := range a.Routers {
		if a.Routers[i].Loc != b.Routers[i].Loc || a.Routers[i].AS != b.Routers[i].AS {
			t.Fatalf("router %d differs between same-seed runs", i)
		}
	}
	for i := range a.Links {
		al, bl := a.Links[i], b.Links[i]
		if al.From != bl.From || al.To != bl.To || al.PropDelayMs != bl.PropDelayMs {
			t.Fatalf("link %d differs between same-seed runs", i)
		}
	}
	for i := range a.Hosts {
		if a.Hosts[i].Name != b.Hosts[i].Name || a.Hosts[i].Attach != b.Hosts[i].Attach {
			t.Fatalf("host %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig(Era1999)
	a := mustGenerate(t, cfg)
	cfg.Seed = 2
	b := mustGenerate(t, cfg)
	same := true
	for i := range a.Routers {
		if a.Routers[i].Loc != b.Routers[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical router placements")
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := DefaultConfig(Era1999)
	top := mustGenerate(t, cfg)
	s := top.Stats()
	if s.Tier1 != cfg.NumTier1 || s.Transit != cfg.NumTransit || s.Stub != cfg.NumStub {
		t.Errorf("AS counts: got %+v, want %d/%d/%d", s, cfg.NumTier1, cfg.NumTransit, cfg.NumStub)
	}
	if s.Hosts != cfg.NumHosts {
		t.Errorf("hosts: got %d, want %d", s.Hosts, cfg.NumHosts)
	}
	wantRouters := cfg.NumTier1*cfg.RoutersTier1 + cfg.NumTransit*cfg.RoutersTransit + cfg.NumStub*cfg.RoutersStub
	if s.Routers != wantRouters {
		t.Errorf("routers: got %d, want %d", s.Routers, wantRouters)
	}
}

func TestTier1FullMesh(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	var tier1 []*AS
	for _, as := range top.ASList {
		if as.Class == Tier1 {
			tier1 = append(tier1, as)
		}
	}
	for i := 0; i < len(tier1); i++ {
		for j := 0; j < len(tier1); j++ {
			if i == j {
				continue
			}
			if len(top.InterASLinks(tier1[i].ASN, tier1[j].ASN)) == 0 {
				t.Errorf("tier-1 ASes %d and %d not directly connected", tier1[i].ASN, tier1[j].ASN)
			}
		}
	}
}

func TestEveryNonTier1HasProvider(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1995))
	for _, as := range top.ASList {
		if as.Class == Tier1 {
			if len(as.Providers) != 0 {
				t.Errorf("tier-1 AS %d has providers %v", as.ASN, as.Providers)
			}
			continue
		}
		if len(as.Providers) == 0 {
			t.Errorf("AS %d (%v) has no provider", as.ASN, as.Class)
		}
		for _, p := range as.Providers {
			prov := top.AS(p)
			found := false
			for _, c := range prov.Customers {
				if c == as.ASN {
					found = true
				}
			}
			if !found {
				t.Errorf("AS %d lists provider %d, but %d does not list it as customer", as.ASN, p, p)
			}
		}
	}
}

func TestPeerSymmetry(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	for _, as := range top.ASList {
		for _, p := range as.Peers {
			other := top.AS(p)
			found := false
			for _, q := range other.Peers {
				if q == as.ASN {
					found = true
				}
			}
			if !found {
				t.Errorf("AS %d peers with %d but not vice versa", as.ASN, p)
			}
		}
	}
}

func TestASGraphReachableValleyFree(t *testing.T) {
	// Every AS must reach every other AS by a valley-free walk:
	// zero or more customer-to-provider steps, at most one peer step,
	// then zero or more provider-to-customer steps. We verify with the
	// standard up-peer-down reachability construction.
	top := mustGenerate(t, DefaultConfig(Era1999))
	for _, src := range top.ASList {
		reach := valleyFreeReachable(top, src.ASN)
		for _, dst := range top.ASList {
			if !reach[dst.ASN] {
				t.Fatalf("AS %d cannot reach AS %d valley-free", src.ASN, dst.ASN)
			}
		}
	}
}

// valleyFreeReachable computes the set of ASes reachable from src by a
// valley-free path: an "up" phase over providers, one optional peer edge,
// and a "down" phase over customers.
func valleyFreeReachable(top *Topology, src ASN) map[ASN]bool {
	up := map[ASN]bool{src: true}
	queue := []ASN{src}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, p := range top.AS(a).Providers {
			if !up[p] {
				up[p] = true
				queue = append(queue, p)
			}
		}
	}
	// After the up phase we may take one peer edge.
	afterPeer := map[ASN]bool{}
	for a := range up {
		afterPeer[a] = true
		for _, p := range top.AS(a).Peers {
			afterPeer[p] = true
		}
	}
	// Down phase over customers.
	down := map[ASN]bool{}
	queue = queue[:0]
	for a := range afterPeer {
		down[a] = true
		queue = append(queue, a)
	}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, c := range top.AS(a).Customers {
			if !down[c] {
				down[c] = true
				queue = append(queue, c)
			}
		}
	}
	return down
}

func TestHostsAttachToDistinctStubs(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	seen := map[ASN]bool{}
	for _, h := range top.Hosts {
		if top.AS(h.AS).Class != Stub {
			t.Errorf("host %s in non-stub AS %d", h.Name, h.AS)
		}
		if seen[h.AS] {
			t.Errorf("two hosts in AS %d", h.AS)
		}
		seen[h.AS] = true
	}
}

func TestHostByName(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	h := top.Hosts[3]
	if got := top.HostByName(h.Name); got != h {
		t.Errorf("HostByName(%q) = %v, want %v", h.Name, got, h)
	}
	if got := top.HostByName("no-such-host"); got != nil {
		t.Errorf("HostByName(no-such-host) = %v, want nil", got)
	}
}

func TestInterASLinkEndpoints(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	for _, l := range top.Links {
		if l.Rel == Internal {
			continue
		}
		fromAS := top.Router(l.From).AS
		toAS := top.Router(l.To).AS
		if fromAS == toAS {
			t.Fatalf("inter-AS link %d has both ends in AS %d", l.ID, fromAS)
		}
		ids := top.InterASLinks(fromAS, toAS)
		found := false
		for _, id := range ids {
			if id == l.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("link %d missing from InterASLinks(%d,%d)", l.ID, fromAS, toAS)
		}
	}
}

func TestPeerLinksAtExchanges(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	n := 0
	for _, l := range top.Links {
		if l.Rel == PeerToPeer {
			if l.Exchange < 0 || l.Exchange >= top.ExchangeCount {
				t.Fatalf("peer link %d has exchange %d outside [0,%d)", l.ID, l.Exchange, top.ExchangeCount)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no peer links generated")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumTier1 = 1 },
		func(c *Config) { c.NumTransit = 0 },
		func(c *Config) { c.NumStub = 1 },
		func(c *Config) { c.NumHosts = 1 },
		func(c *Config) { c.NumHosts = c.NumStub + 1 },
		func(c *Config) { c.RoutersStub = 0 },
		func(c *Config) { c.NumExchanges = 0 },
		func(c *Config) { c.MultihomeProb = 1.5 },
		func(c *Config) { c.TransitPeerProb = -0.1 },
		func(c *Config) { c.PolicyBiasProb = 2 },
		func(c *Config) { c.RateLimitProb = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(Era1999)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLinkDelaysReflectGeography(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	for _, l := range top.Links {
		a, b := top.Router(l.From).Loc, top.Router(l.To).Loc
		min := geo.PropagationDelayMs(a, b)
		if l.PropDelayMs < min-1e-9 {
			t.Fatalf("link %d delay %.3f below propagation bound %.3f", l.ID, l.PropDelayMs, min)
		}
	}
}

func TestRelationshipInvert(t *testing.T) {
	cases := map[Relationship]Relationship{
		ProviderToCustomer: CustomerToProvider,
		CustomerToProvider: ProviderToCustomer,
		PeerToPeer:         PeerToPeer,
		Internal:           Internal,
	}
	for r, want := range cases {
		if got := r.Invert(); got != want {
			t.Errorf("%v.Invert() = %v, want %v", r, got, want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Tier1.String() != "tier1" || Transit.String() != "transit" || Stub.String() != "stub" {
		t.Error("ASClass strings wrong")
	}
	if Era1995.String() != "era-1995" || Era1999.String() != "era-1999" {
		t.Error("Era strings wrong")
	}
	if PeerToPeer.String() != "peer-to-peer" || Internal.String() != "internal" {
		t.Error("Relationship strings wrong")
	}
	top := mustGenerate(t, DefaultConfig(Era1999))
	if top.Stats().String() == "" {
		t.Error("Stats string empty")
	}
}

func TestLookupOutOfRange(t *testing.T) {
	top := mustGenerate(t, DefaultConfig(Era1999))
	if top.Router(-1) != nil || top.Router(RouterID(len(top.Routers))) != nil {
		t.Error("out-of-range Router lookup should return nil")
	}
	if top.Host(-1) != nil || top.Host(HostID(len(top.Hosts))) != nil {
		t.Error("out-of-range Host lookup should return nil")
	}
	if top.Link(-1) != nil || top.Link(LinkID(len(top.Links))) != nil {
		t.Error("out-of-range Link lookup should return nil")
	}
	if top.AS(-1) != nil {
		t.Error("unknown AS lookup should return nil")
	}
	if top.NeighborASes(-1) != nil {
		t.Error("NeighborASes of unknown AS should be nil")
	}
}

func TestWorldRegionHostsSpread(t *testing.T) {
	cfg := DefaultConfig(Era1995)
	cfg.Region = geo.World
	cfg.NumHosts = 30
	top := mustGenerate(t, cfg)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	inNA := 0
	for _, h := range top.Hosts {
		if geo.Contains(geo.NorthAmerica, h.Loc) {
			inNA++
		}
	}
	if inNA == len(top.Hosts) {
		t.Error("world-region topology placed every host in North America")
	}
	if inNA == 0 {
		t.Error("world-region topology placed no host in North America")
	}
}
