package topology

import "testing"

func BenchmarkGenerate(b *testing.B) {
	for _, era := range []Era{Era1995, Era1999} {
		b.Run(era.String(), func(b *testing.B) {
			cfg := DefaultConfig(era)
			for i := 0; i < b.N; i++ {
				top, err := Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(top.Hosts) == 0 {
					b.Fatal("no hosts")
				}
			}
		})
	}
}
