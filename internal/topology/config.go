package topology

import (
	"fmt"

	"pathsel/internal/geo"
)

// Era selects a vintage of Internet infrastructure. The paper's D2/N2
// datasets were collected in 1995 on a sparser, slower, more congested
// Internet than the 1998-99 UW datasets; the era preset reproduces that
// contrast.
type Era int

const (
	// Era1995 models the mid-90s Internet: fewer providers, slower
	// links, congested public exchange points (the NAP era).
	Era1995 Era = iota
	// Era1999 models the late-90s Internet: denser peering, faster
	// backbones, more private interconnects.
	Era1999
)

// String implements fmt.Stringer.
func (e Era) String() string {
	switch e {
	case Era1995:
		return "era-1995"
	case Era1999:
		return "era-1999"
	default:
		return fmt.Sprintf("era(%d)", int(e))
	}
}

// Config controls topology generation. The zero value is not useful; use
// DefaultConfig (or an era preset) and override fields as needed.
type Config struct {
	Seed int64
	Era  Era

	// Region from which stub ASes and hosts are drawn. Tier-1 and
	// transit ASes always span the world (backbones are global).
	Region geo.Region

	NumTier1   int
	NumTransit int
	NumStub    int

	// Routers per AS by class.
	RoutersTier1   int
	RoutersTransit int
	RoutersStub    int

	// NumHosts end hosts are attached to randomly chosen stub ASes. By
	// default each stub hosts at most one measurement host, matching the
	// paper's geographically diverse server sets; HostsPerStub raises
	// that cap for planet-scale configurations.
	NumHosts int

	// HostsPerStub caps how many hosts may share one stub AS. Zero or
	// one keeps the paper's one-host-per-stub rule; larger values let
	// host counts exceed the stub count (hosts are spread round-robin
	// over the stubs).
	HostsPerStub int

	// NumExchanges is the number of public exchange points at which
	// peer-to-peer links concentrate.
	NumExchanges int

	// MultihomeProb is the probability that a stub AS buys transit from
	// two providers instead of one.
	MultihomeProb float64

	// TransitPeerProb is the probability that a pair of same-region
	// transit ASes establishes a settlement-free peering link.
	TransitPeerProb float64

	// PolicyBiasProb is the probability that an AS applies a non-default
	// local-pref bias to one of its neighbors (modeling cost- or
	// contract-driven policy that ignores performance).
	PolicyBiasProb float64

	// RateLimitProb is the probability that a host (and its attachment
	// router) rate-limits ICMP, as some of the paper's traceroute
	// targets did.
	RateLimitProb float64

	// RemoteProviderProb is the probability that a stub buys transit
	// from a geographically arbitrary provider instead of a nearby one,
	// as mid-90s edge networks attached to distant NSFNET regionals or
	// corporate backbones did. Remote providers are a major source of
	// the geographic path inflation the paper measures.
	RemoteProviderProb float64
}

// DefaultConfig returns the baseline configuration for the given era,
// sized so that whole-campaign experiments run in seconds.
func DefaultConfig(era Era) Config {
	c := Config{
		Seed:               1,
		Era:                era,
		Region:             geo.NorthAmerica,
		NumTier1:           8,
		NumTransit:         24,
		NumStub:            120,
		RoutersTier1:       10,
		RoutersTransit:     6,
		RoutersStub:        3,
		NumHosts:           40,
		NumExchanges:       6,
		MultihomeProb:      0.35,
		TransitPeerProb:    0.08,
		PolicyBiasProb:     0.30,
		RateLimitProb:      0.15,
		RemoteProviderProb: 0.10,
	}
	if era == Era1995 {
		// Sparser mid-90s Internet: fewer providers, little private
		// peering, a handful of overloaded NAPs.
		c.NumTier1 = 5
		c.NumTransit = 16
		c.NumStub = 90
		c.NumExchanges = 4
		c.MultihomeProb = 0.15
		c.TransitPeerProb = 0.03
		c.PolicyBiasProb = 0.40
		c.RemoteProviderProb = 0.35
	}
	return c
}

// Validate reports a descriptive error for configurations that cannot be
// generated.
func (c Config) Validate() error {
	switch {
	case c.NumTier1 < 2:
		return fmt.Errorf("topology: need at least 2 tier-1 ASes, have %d", c.NumTier1)
	case c.NumTransit < 1:
		return fmt.Errorf("topology: need at least 1 transit AS, have %d", c.NumTransit)
	case c.NumStub < 2:
		return fmt.Errorf("topology: need at least 2 stub ASes, have %d", c.NumStub)
	case c.NumHosts < 2:
		return fmt.Errorf("topology: need at least 2 hosts, have %d", c.NumHosts)
	case c.HostsPerStub < 0:
		return fmt.Errorf("topology: HostsPerStub %d negative", c.HostsPerStub)
	case c.NumHosts > c.NumStub*c.hostsPerStub():
		return fmt.Errorf("topology: %d hosts exceed %d stub ASes x %d hosts per stub",
			c.NumHosts, c.NumStub, c.hostsPerStub())
	case c.RoutersTier1 < 2 || c.RoutersTransit < 2 || c.RoutersStub < 1:
		return fmt.Errorf("topology: router counts too small (tier1=%d transit=%d stub=%d)",
			c.RoutersTier1, c.RoutersTransit, c.RoutersStub)
	case c.NumExchanges < 1:
		return fmt.Errorf("topology: need at least 1 exchange point, have %d", c.NumExchanges)
	case c.MultihomeProb < 0 || c.MultihomeProb > 1:
		return fmt.Errorf("topology: MultihomeProb %.2f out of [0,1]", c.MultihomeProb)
	case c.TransitPeerProb < 0 || c.TransitPeerProb > 1:
		return fmt.Errorf("topology: TransitPeerProb %.2f out of [0,1]", c.TransitPeerProb)
	case c.PolicyBiasProb < 0 || c.PolicyBiasProb > 1:
		return fmt.Errorf("topology: PolicyBiasProb %.2f out of [0,1]", c.PolicyBiasProb)
	case c.RateLimitProb < 0 || c.RateLimitProb > 1:
		return fmt.Errorf("topology: RateLimitProb %.2f out of [0,1]", c.RateLimitProb)
	case c.RemoteProviderProb < 0 || c.RemoteProviderProb > 1:
		return fmt.Errorf("topology: RemoteProviderProb %.2f out of [0,1]", c.RemoteProviderProb)
	}
	return nil
}

// hostsPerStub returns the effective per-stub host cap (zero means one).
func (c Config) hostsPerStub() int {
	if c.HostsPerStub < 1 {
		return 1
	}
	return c.HostsPerStub
}

// capacity classes in Mbps by era and link role.
type capacities struct {
	core     float64 // tier1 internal and tier1-tier1 private links
	transit  float64 // transit internal, tier1-transit
	edge     float64 // stub links, transit-stub
	access   float64 // host access links (campus LAN + uplink share)
	exchange float64 // public exchange-point fabrics (peer links)
}

func (c Config) capacities() capacities {
	if c.Era == Era1995 {
		// T3 backbones, Ethernet/T3 regional links, fractional-T3 stub
		// uplinks, and the famously saturated FDDI NAP fabrics.
		return capacities{core: 45, transit: 10, edge: 4, access: 10, exchange: 10}
	}
	// OC-3 backbones, T3 regionals, Ethernet-class edges, faster but
	// still heavily shared public exchanges.
	return capacities{core: 155, transit: 45, edge: 10, access: 10, exchange: 45}
}
