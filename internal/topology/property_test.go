package topology

import (
	"testing"
	"testing/quick"

	"pathsel/internal/geo"
)

// TestPropertyGenerateAlwaysValid: any in-range configuration generates
// a topology satisfying every structural invariant.
func TestPropertyGenerateAlwaysValid(t *testing.T) {
	f := func(seed int64, t1, tr, st, h, ex uint8, multi, peer, bias, rl, remote uint8) bool {
		cfg := Config{
			Seed:               seed,
			Era:                Era(int(seed) & 1),
			Region:             geo.NorthAmerica,
			NumTier1:           2 + int(t1)%5,
			NumTransit:         1 + int(tr)%8,
			NumStub:            4 + int(st)%20,
			RoutersTier1:       2 + int(t1)%4,
			RoutersTransit:     2 + int(tr)%3,
			RoutersStub:        1 + int(st)%3,
			NumExchanges:       1 + int(ex)%8,
			MultihomeProb:      float64(multi%101) / 100,
			TransitPeerProb:    float64(peer%101) / 100,
			PolicyBiasProb:     float64(bias%101) / 100,
			RateLimitProb:      float64(rl%101) / 100,
			RemoteProviderProb: float64(remote%101) / 100,
		}
		cfg.NumHosts = 2 + int(h)%(cfg.NumStub-1)
		top, err := Generate(cfg)
		if err != nil {
			return false
		}
		return top.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLinksAlwaysPaired: the i-th and (i+1)-th links always form
// a direction pair with equal delay and capacity.
func TestPropertyLinksAlwaysPaired(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig(Era1999)
		cfg.Seed = seed
		cfg.NumStub = 30
		cfg.NumTransit = 8
		cfg.NumTier1 = 4
		cfg.NumHosts = 8
		top, err := Generate(cfg)
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(top.Links); i += 2 {
			a, b := top.Links[i], top.Links[i+1]
			if a.From != b.To || a.To != b.From {
				return false
			}
			if a.PropDelayMs != b.PropDelayMs || a.CapacityMbps != b.CapacityMbps {
				return false
			}
			if a.Exchange != b.Exchange {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
