// Package topology generates and represents the synthetic Internet over
// which the reproduction's measurements are taken: a hierarchy of
// autonomous systems (tier-1 backbones, transit providers, and stub edge
// networks), routers within each AS, inter-AS links with business
// relationships, and end hosts attached to stub networks.
//
// The generator is fully deterministic given a seed, so every experiment
// in the paper reproduction can be re-run bit-for-bit.
package topology

import (
	"fmt"

	"pathsel/internal/geo"
)

// ASN identifies an autonomous system.
type ASN int

// RouterID identifies a router globally (across all ASes).
type RouterID int

// HostID identifies an end host.
type HostID int

// ASClass is the tier of an autonomous system in the routing hierarchy.
type ASClass int

const (
	// Tier1 ASes form the default-free core; they peer with each other
	// and sell transit to everyone below.
	Tier1 ASClass = iota
	// Transit ASes are regional providers: customers of tier-1s (or other
	// transits), providers of stubs, and occasionally peers of each other.
	Transit
	// Stub ASes are edge networks (universities, enterprises). End hosts
	// attach only to stubs.
	Stub
)

// String implements fmt.Stringer.
func (c ASClass) String() string {
	switch c {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Relationship describes the business relationship of an inter-AS link,
// from the perspective of the link's From AS.
type Relationship int

const (
	// ProviderToCustomer: From sells transit to To.
	ProviderToCustomer Relationship = iota
	// CustomerToProvider: From buys transit from To.
	CustomerToProvider
	// PeerToPeer: settlement-free peering.
	PeerToPeer
	// Internal: both endpoints are in the same AS.
	Internal
)

// String implements fmt.Stringer.
func (r Relationship) String() string {
	switch r {
	case ProviderToCustomer:
		return "provider-to-customer"
	case CustomerToProvider:
		return "customer-to-provider"
	case PeerToPeer:
		return "peer-to-peer"
	case Internal:
		return "internal"
	default:
		return fmt.Sprintf("relationship(%d)", int(r))
	}
}

// Invert returns the relationship as seen from the other side of the link.
func (r Relationship) Invert() Relationship {
	switch r {
	case ProviderToCustomer:
		return CustomerToProvider
	case CustomerToProvider:
		return ProviderToCustomer
	default:
		return r
	}
}

// AS is an autonomous system.
type AS struct {
	ASN     ASN
	Class   ASClass
	Home    geo.Point  // geographic center of the AS
	Routers []RouterID // routers belonging to this AS

	// Providers, Customers, and Peers list neighbor ASes by relationship.
	Providers []ASN
	Customers []ASN
	Peers     []ASN

	// LocalPrefBias perturbs BGP route selection to model per-network
	// policies that are not performance-driven (contracts, cost).
	// Keyed by neighbor ASN; higher is preferred within a relationship
	// class. Zero for neighbors not present.
	LocalPrefBias map[ASN]int
}

// Router is a single router.
type Router struct {
	ID  RouterID
	AS  ASN
	Loc geo.Point
	// Border reports whether the router terminates at least one
	// inter-AS link.
	Border bool
	// RateLimitICMP marks routers that rate-limit ICMP responses
	// (traceroute replies), as observed for some hosts in the paper's
	// datasets; the dataset layer filters or corrects for these.
	RateLimitICMP bool
}

// LinkID identifies a link globally.
type LinkID int

// Link is a unidirectional network link between two routers. Links are
// generated in pairs (one for each direction) sharing capacity class and
// propagation delay but with independent congestion state, which lets the
// simulator reproduce the asymmetric path performance Paxson observed.
type Link struct {
	ID   LinkID
	From RouterID
	To   RouterID
	// Rel is the business relationship as seen from the From side
	// (Internal for intra-AS links).
	Rel Relationship
	// PropDelayMs is the one-way propagation delay.
	PropDelayMs float64
	// CapacityMbps is the nominal link capacity.
	CapacityMbps float64
	// Exchange is the exchange-point index for inter-AS links placed at
	// a shared public exchange, or -1. Links at the same exchange share
	// congestion in the network simulator, modeling the congested
	// exchange points the paper discusses.
	Exchange int
}

// Host is a measurement endpoint: in the paper these are public
// traceroute servers and npd daemons at edge networks.
type Host struct {
	ID     HostID
	Name   string
	AS     ASN
	Attach RouterID  // first-hop router
	Loc    geo.Point // host location (near its attachment router)
	// AccessDelayMs is the delay of the host's access link (one way).
	AccessDelayMs float64
	// AccessCapacityMbps is the capacity of the host's access link.
	AccessCapacityMbps float64
	// RateLimitICMP marks hosts that rate-limit ICMP echo replies.
	RateLimitICMP bool
}
