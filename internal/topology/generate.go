package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"pathsel/internal/geo"
)

// exchangeSites are candidate exchange-point locations (major
// interconnection cities, mid-90s NAPs among them).
var exchangeSites = []geo.Point{
	{LatDeg: 38.99, LonDeg: -77.03},  // Washington DC (MAE-East)
	{LatDeg: 37.37, LonDeg: -121.92}, // San Jose (MAE-West)
	{LatDeg: 41.88, LonDeg: -87.63},  // Chicago (AADS NAP)
	{LatDeg: 40.74, LonDeg: -74.17},  // Pennsauken/NY (Sprint NAP)
	{LatDeg: 51.51, LonDeg: -0.13},   // London (LINX)
	{LatDeg: 52.37, LonDeg: 4.90},    // Amsterdam (AMS-IX)
	{LatDeg: 35.68, LonDeg: 139.69},  // Tokyo
	{LatDeg: 33.75, LonDeg: -84.39},  // Atlanta
	{LatDeg: 32.78, LonDeg: -96.80},  // Dallas
	{LatDeg: 47.61, LonDeg: -122.33}, // Seattle (SIX)
}

// router placement radii by AS class, in km. Tier-1 backbones span a
// continent; stubs are campus networks.
const (
	tier1SpreadKm   = 2500
	transitSpreadKm = 700
	stubSpreadKm    = 30
)

// Generate builds a topology from the configuration. The result is
// deterministic in cfg.Seed.
func Generate(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	caps := cfg.capacities()

	t := &Topology{
		Config:  cfg,
		asByNum: map[ASN]*AS{},
		interAS: map[[2]ASN][]LinkID{},
	}

	nEx := cfg.NumExchanges
	if nEx > len(exchangeSites) {
		nEx = len(exchangeSites)
	}
	t.ExchangeCount = nEx

	// --- ASes ---
	next := ASN(1)
	newAS := func(class ASClass, home geo.Point) *AS {
		as := &AS{ASN: next, Class: class, Home: home, LocalPrefBias: map[ASN]int{}}
		next++
		t.ASList = append(t.ASList, as)
		t.asByNum[as.ASN] = as
		return as
	}

	var tier1s, transits, stubs []*AS
	for i := 0; i < cfg.NumTier1; i++ {
		// Tier-1 backbones are headquartered near exchanges.
		home := geo.Jitter(rng, exchangeSites[i%nEx], 100)
		tier1s = append(tier1s, newAS(Tier1, home))
	}
	for i := 0; i < cfg.NumTransit; i++ {
		// Most transit providers serve the configured region; a minority
		// are international so that world-wide host sets have transit.
		region := cfg.Region
		if rng.Float64() < 0.25 {
			region = geo.World
		}
		transits = append(transits, newAS(Transit, geo.RandomPoint(rng, region)))
	}
	for i := 0; i < cfg.NumStub; i++ {
		stubs = append(stubs, newAS(Stub, geo.RandomPoint(rng, cfg.Region)))
	}

	// --- Routers ---
	newRouter := func(as *AS, spreadKm float64) *Router {
		r := &Router{ID: RouterID(len(t.Routers)), AS: as.ASN, Loc: geo.Jitter(rng, as.Home, spreadKm)}
		t.Routers = append(t.Routers, r)
		as.Routers = append(as.Routers, r.ID)
		return r
	}
	for _, as := range tier1s {
		for i := 0; i < cfg.RoutersTier1; i++ {
			newRouter(as, tier1SpreadKm)
		}
	}
	for _, as := range transits {
		for i := 0; i < cfg.RoutersTransit; i++ {
			newRouter(as, transitSpreadKm)
		}
	}
	for _, as := range stubs {
		for i := 0; i < cfg.RoutersStub; i++ {
			newRouter(as, stubSpreadKm)
		}
	}

	// --- Intra-AS links: ring plus random chords ---
	for _, as := range t.ASList {
		capMbps := caps.edge
		switch as.Class {
		case Tier1:
			capMbps = caps.core
		case Transit:
			capMbps = caps.transit
		}
		n := len(as.Routers)
		if n == 1 {
			continue
		}
		for i := 0; i < n; i++ {
			a, b := as.Routers[i], as.Routers[(i+1)%n]
			if n == 2 && i == 1 {
				break // avoid a duplicate pair for two-router ASes
			}
			t.addLinkPair(a, b, Internal, internalDelay(t, a, b), capMbps, -1)
		}
		// Chords make larger backbones better connected than a bare ring.
		chords := n / 3
		for c := 0; c < chords; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || j == (i+1)%n || i == (j+1)%n {
				continue
			}
			t.addLinkPair(as.Routers[i], as.Routers[j], Internal,
				internalDelay(t, as.Routers[i], as.Routers[j]), capMbps, -1)
		}
	}

	// --- Inter-AS links ---
	// Tier-1 full peer mesh. Every pair interconnects at the exchange
	// the dominant (lower-numbered) provider prefers; some pairs add a
	// second session at the other party's preferred exchange, giving
	// hot-potato egress selection a real choice there — the early-exit
	// behaviour the paper's Section 3 calls out.
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			a, b := tier1s[i], tier1s[j]
			exA := nearestExchange(a.Home, b.Home, nEx)
			exB := nearestExchange(b.Home, a.Home, nEx)
			exchanges := []int{exA}
			if exB != exA && rng.Float64() < 0.35 {
				exchanges = append(exchanges, exB)
			}
			for _, ex := range exchanges {
				exLoc := exchangeSites[ex]
				ra := nearestRouter(t, a, exLoc)
				rb := nearestRouter(t, b, exLoc)
				t.addLinkPair(ra, rb, PeerToPeer, interDelay(t, ra, rb), caps.exchange, ex)
			}
			a.Peers = append(a.Peers, b.ASN)
			b.Peers = append(b.Peers, a.ASN)
		}
	}

	// Transit ASes: one or two tier-1/earlier-transit providers
	// (acyclic provider relation), plus occasional transit peering.
	for i, as := range transits {
		prov := tier1s[rng.Intn(len(tier1s))]
		connectProviderCustomer(t, prov, as, caps.transit)
		if rng.Float64() < cfg.MultihomeProb {
			second := pickSecondProvider(rng, tier1s, transits[:i], prov.ASN)
			if second != nil {
				connectProviderCustomer(t, second, as, caps.transit)
			}
		}
	}
	for i := 0; i < len(transits); i++ {
		for j := i + 1; j < len(transits); j++ {
			if rng.Float64() >= cfg.TransitPeerProb {
				continue
			}
			a, b := transits[i], transits[j]
			ex := nearestExchange(a.Home, b.Home, nEx)
			ra := nearestRouter(t, a, exchangeSites[ex])
			rb := nearestRouter(t, b, exchangeSites[ex])
			t.addLinkPair(ra, rb, PeerToPeer, interDelay(t, ra, rb), caps.exchange, ex)
			a.Peers = append(a.Peers, b.ASN)
			b.Peers = append(b.Peers, a.ASN)
		}
	}

	// Stub ASes: one or two transit providers, chosen with a preference
	// for nearby providers (as real edge networks do), via occasional
	// direct tier-1 connections for well-connected sites.
	for _, as := range stubs {
		var pool []*AS
		if rng.Float64() < 0.10 {
			pool = tier1s
		} else {
			pool = transits
		}
		var prov *AS
		if rng.Float64() < cfg.RemoteProviderProb {
			// A geographically arbitrary provider (distant NSFNET
			// regional, corporate backbone): traffic to and from this
			// stub detours through the provider's service region.
			prov = pool[rng.Intn(len(pool))]
		} else {
			prov = nearestOf(rng, pool, as.Home, 4)
		}
		connectProviderCustomer(t, prov, as, caps.edge)
		if rng.Float64() < cfg.MultihomeProb {
			second := nearestOf(rng, transits, as.Home, 8)
			if second.ASN != prov.ASN {
				connectProviderCustomer(t, second, as, caps.edge)
			}
		}
	}

	// --- Policy bias ---
	for _, as := range t.ASList {
		if rng.Float64() >= cfg.PolicyBiasProb {
			continue
		}
		neigh := t.NeighborASes(as.ASN)
		if len(neigh) == 0 {
			continue
		}
		n := neigh[rng.Intn(len(neigh))]
		if rng.Float64() < 0.5 {
			as.LocalPrefBias[n] = 1 // prefer (e.g. cheaper contract)
		} else {
			as.LocalPrefBias[n] = -1 // avoid (e.g. per-byte billing)
		}
	}

	// --- Hosts ---
	// Hosts are assigned round-robin over a shuffled stub order, so each
	// stub gets at most ceil(NumHosts/NumStub) hosts — within the
	// HostsPerStub cap Validate enforces.
	hostStubs := make([]*AS, len(stubs))
	copy(hostStubs, stubs)
	rng.Shuffle(len(hostStubs), func(i, j int) { hostStubs[i], hostStubs[j] = hostStubs[j], hostStubs[i] })
	for i := 0; i < cfg.NumHosts; i++ {
		as := hostStubs[i%len(hostStubs)]
		attach := as.Routers[rng.Intn(len(as.Routers))]
		rl := rng.Float64() < cfg.RateLimitProb
		h := &Host{
			ID:                 HostID(len(t.Hosts)),
			Name:               fmt.Sprintf("host%02d.as%d", i, as.ASN),
			AS:                 as.ASN,
			Attach:             attach,
			Loc:                geo.Jitter(rng, t.Router(attach).Loc, 5),
			AccessDelayMs:      0.3 + rng.Float64()*1.7,
			AccessCapacityMbps: caps.access,
			RateLimitICMP:      rl,
		}
		if rl {
			t.Router(attach).RateLimitICMP = true
		}
		t.Hosts = append(t.Hosts, h)
	}

	sortNeighbors(t)
	// Pack the out-link adjacency before the topology escapes, so
	// concurrent consumers only ever read the finished slabs.
	t.packOutLinks()
	return t, nil
}

// connectProviderCustomer wires a provider-customer link between the two
// ASes using the closest router pair, and records the relationship.
func connectProviderCustomer(t *Topology, prov, cust *AS, capMbps float64) {
	rp := nearestRouter(t, prov, cust.Home)
	rc := nearestRouter(t, cust, t.Router(rp).Loc)
	t.addLinkPair(rp, rc, ProviderToCustomer, interDelay(t, rp, rc), capMbps, -1)
	prov.Customers = append(prov.Customers, cust.ASN)
	cust.Providers = append(cust.Providers, prov.ASN)
}

// pickSecondProvider selects a second provider distinct from first, from
// tier-1s plus already-created transits (keeping the provider DAG acyclic).
func pickSecondProvider(rng *rand.Rand, tier1s, earlierTransits []*AS, first ASN) *AS {
	pool := make([]*AS, 0, len(tier1s)+len(earlierTransits))
	pool = append(pool, tier1s...)
	pool = append(pool, earlierTransits...)
	// Random order scan for the first non-duplicate.
	for _, i := range rng.Perm(len(pool)) {
		if pool[i].ASN != first {
			return pool[i]
		}
	}
	return nil
}

// nearestOf picks uniformly among the k ASes nearest to p, modeling a
// site choosing one of its local providers.
func nearestOf(rng *rand.Rand, pool []*AS, p geo.Point, k int) *AS {
	type cand struct {
		as *AS
		d  float64
	}
	cands := make([]cand, len(pool))
	for i, as := range pool {
		cands[i] = cand{as, geo.DistanceKm(as.Home, p)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].as.ASN < cands[j].as.ASN
	})
	if k > len(cands) {
		k = len(cands)
	}
	return cands[rng.Intn(k)].as
}

// nearestRouter returns the router of as closest to p.
func nearestRouter(t *Topology, as *AS, p geo.Point) RouterID {
	best := as.Routers[0]
	bestD := geo.DistanceKm(t.Router(best).Loc, p)
	for _, r := range as.Routers[1:] {
		if d := geo.DistanceKm(t.Router(r).Loc, p); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// nearestExchange returns the exchange site where two ASes interconnect.
// Real peering sessions are placed where the dominant provider prefers,
// not at the geographic midpoint, so the exchange is the one nearest the
// first AS's home — for traffic between far-away endpoints this produces
// the off-route interconnection points (and the consequent path
// inflation) the paper attributes to routing policy.
func nearestExchange(a, b geo.Point, n int) int {
	best, bestD := 0, geo.DistanceKm(exchangeSites[0], a)
	for i := 1; i < n; i++ {
		if d := geo.DistanceKm(exchangeSites[i], a); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func internalDelay(t *Topology, a, b RouterID) float64 {
	d := geo.PropagationDelayMs(t.Router(a).Loc, t.Router(b).Loc)
	if d < 0.05 {
		d = 0.05 // switch fabric floor
	}
	return d
}

func interDelay(t *Topology, a, b RouterID) float64 {
	d := geo.PropagationDelayMs(t.Router(a).Loc, t.Router(b).Loc)
	if d < 0.2 {
		d = 0.2 // cross-connect floor
	}
	return d
}

// sortNeighbors puts every AS's neighbor lists in ascending ASN order so
// downstream iteration is deterministic.
func sortNeighbors(t *Topology) {
	for _, as := range t.ASList {
		sort.Slice(as.Providers, func(i, j int) bool { return as.Providers[i] < as.Providers[j] })
		sort.Slice(as.Customers, func(i, j int) bool { return as.Customers[i] < as.Customers[j] })
		sort.Slice(as.Peers, func(i, j int) bool { return as.Peers[i] < as.Peers[j] })
	}
}
