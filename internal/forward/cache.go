package forward

import (
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// Cache memoizes host-pair paths of a static Forwarder, and adapts it to
// the time-indexed PathAt interface the prober uses (a converged network
// has the same path at every instant, so the time argument is ignored).
// Not safe for concurrent use, matching the single-threaded measurement
// campaigns.
type Cache struct {
	fwd   *Forwarder
	paths map[[2]topology.HostID]Path
}

// NewCache wraps a Forwarder.
func NewCache(f *Forwarder) *Cache {
	return &Cache{fwd: f, paths: map[[2]topology.HostID]Path{}}
}

// PathAt returns the (memoized) forwarding path between two hosts.
func (c *Cache) PathAt(src, dst topology.HostID, _ netsim.Time) (Path, error) {
	key := [2]topology.HostID{src, dst}
	if p, ok := c.paths[key]; ok {
		return p, nil
	}
	p, err := c.fwd.HostPath(src, dst)
	if err != nil {
		return Path{}, err
	}
	c.paths[key] = p
	return p, nil
}
