package forward

import (
	"fmt"

	"pathsel/internal/topology"
)

// LooseSourcePath returns the router-level path from src to dst forced
// through the attachment routers of the given relay hosts, in order —
// IP loose source routing, the mechanism the paper notes is "disabled by
// many AS's because of security concerns" and therefore unavailable to
// the original study. The simulator can evaluate it, which lets the
// reproduction validate the paper's conservativity claim: a synthetic
// alternate composed of host-to-host measurements pays each relay's
// access link twice, whereas the source-routed path visits only the
// relay's first-hop router.
//
// The returned path may traverse a link more than once (as the paper
// observes of its synthetic alternates, "many of our alternate paths
// traverse the same Internet links twice, on their way into and out of
// intermediate hosts").
func (f *Forwarder) LooseSourcePath(src topology.HostID, via []topology.HostID, dst topology.HostID) (Path, error) {
	hs, hd := f.top.Host(src), f.top.Host(dst)
	if hs == nil || hd == nil {
		return Path{}, fmt.Errorf("forward: unknown host %d or %d", src, dst)
	}
	full := Path{Src: src, Dst: dst, Routers: []topology.RouterID{hs.Attach}}
	cur := hs.Attach
	waypoints := make([]*topology.Host, 0, len(via)+1)
	for _, v := range via {
		hv := f.top.Host(v)
		if hv == nil {
			return Path{}, fmt.Errorf("forward: unknown relay host %d", v)
		}
		waypoints = append(waypoints, hv)
	}
	waypoints = append(waypoints, hd)
	for _, wp := range waypoints {
		seg, err := f.routerPath(cur, wp)
		if err != nil {
			return Path{}, fmt.Errorf("forward: source route via %s: %w", wp.Name, err)
		}
		full.Links = append(full.Links, seg.Links...)
		full.Routers = append(full.Routers, seg.Routers[1:]...)
		cur = wp.Attach
	}
	return full, nil
}
