package forward

import (
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/igp"
	"pathsel/internal/topology"
)

type fixture struct {
	top *topology.Topology
	fwd *Forwarder
	bgp *bgp.Table
}

func newFixture(t *testing.T, era topology.Era) *fixture {
	t.Helper()
	top, err := topology.Generate(topology.DefaultConfig(era))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatalf("bgp.Compute: %v", err)
	}
	return &fixture{top: top, fwd: New(top, g, table), bgp: table}
}

func TestAllHostPairsHavePaths(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	for _, a := range fx.top.Hosts {
		for _, b := range fx.top.Hosts {
			if a.ID == b.ID {
				continue
			}
			p, err := fx.fwd.HostPath(a.ID, b.ID)
			if err != nil {
				t.Fatalf("HostPath(%s,%s): %v", a.Name, b.Name, err)
			}
			if p.Routers[0] != a.Attach {
				t.Fatalf("path starts at %d, want %d", p.Routers[0], a.Attach)
			}
			if p.Routers[len(p.Routers)-1] != b.Attach {
				t.Fatalf("path ends at %d, want %d", p.Routers[len(p.Routers)-1], b.Attach)
			}
		}
	}
}

func TestPathContinuity(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	hosts := fx.top.Hosts
	for i := 0; i < len(hosts); i++ {
		for j := 0; j < len(hosts); j++ {
			if i == j {
				continue
			}
			p, err := fx.fwd.HostPath(hosts[i].ID, hosts[j].ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Routers) != len(p.Links)+1 {
				t.Fatalf("router/link count mismatch: %d routers, %d links", len(p.Routers), len(p.Links))
			}
			for k, lid := range p.Links {
				l := fx.top.Link(lid)
				if l.From != p.Routers[k] || l.To != p.Routers[k+1] {
					t.Fatalf("link %d does not connect %d -> %d", lid, p.Routers[k], p.Routers[k+1])
				}
			}
		}
	}
}

func TestPathFollowsBGP(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	a, b := fx.top.Hosts[0], fx.top.Hosts[7]
	p, err := fx.fwd.HostPath(a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	asPath := p.ASPath(fx.top)
	want := fx.bgp.ASPath(a.AS, b.AS)
	if len(asPath) != len(want) {
		t.Fatalf("router-level AS path %v, BGP path %v", asPath, want)
	}
	for i := range want {
		if asPath[i] != want[i] {
			t.Fatalf("router-level AS path %v, BGP path %v", asPath, want)
		}
	}
}

func TestNoRouterLoops(t *testing.T) {
	fx := newFixture(t, topology.Era1995)
	hosts := fx.top.Hosts
	for i := 0; i < len(hosts); i++ {
		for j := 0; j < len(hosts); j++ {
			if i == j {
				continue
			}
			p, err := fx.fwd.HostPath(hosts[i].ID, hosts[j].ID)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[topology.RouterID]bool{}
			for _, r := range p.Routers {
				if seen[r] {
					t.Fatalf("router %d repeated in path %s -> %s", r, hosts[i].Name, hosts[j].Name)
				}
				seen[r] = true
			}
		}
	}
}

// TestAsymmetry checks that at least some host pairs route differently in
// the two directions, reproducing Paxson's observation (hot-potato egress
// makes this very likely).
func TestAsymmetry(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	hosts := fx.top.Hosts
	asym := 0
	pairs := 0
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			fwd, err := fx.fwd.HostPath(hosts[i].ID, hosts[j].ID)
			if err != nil {
				t.Fatal(err)
			}
			rev, err := fx.fwd.HostPath(hosts[j].ID, hosts[i].ID)
			if err != nil {
				t.Fatal(err)
			}
			pairs++
			if !sameReversed(fwd.Routers, rev.Routers) {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Error("no asymmetric paths found; hot-potato routing should produce some")
	}
	t.Logf("%d of %d pairs asymmetric (%.0f%%)", asym, pairs, 100*float64(asym)/float64(pairs))
}

func sameReversed(a, b []topology.RouterID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[len(b)-1-i] {
			return false
		}
	}
	return true
}

func TestRouterPath(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	src, dst := fx.top.Hosts[1], fx.top.Hosts[2]
	p, err := fx.fwd.HostPath(src.ID, dst.ID)
	if err != nil {
		t.Fatal(err)
	}
	// From every intermediate router there must be a return path to the
	// source host (the traceroute reply path).
	for _, r := range p.Routers {
		rp, err := fx.fwd.RouterPath(r, src.ID)
		if err != nil {
			t.Fatalf("RouterPath(%d, %s): %v", r, src.Name, err)
		}
		if rp.Routers[0] != r || rp.Routers[len(rp.Routers)-1] != src.Attach {
			t.Fatalf("return path endpoints wrong: %v", rp.Routers)
		}
	}
}

func TestUnknownEndpoints(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	if _, err := fx.fwd.HostPath(-1, fx.top.Hosts[0].ID); err == nil {
		t.Error("expected error for unknown src host")
	}
	if _, err := fx.fwd.HostPath(fx.top.Hosts[0].ID, topology.HostID(len(fx.top.Hosts))); err == nil {
		t.Error("expected error for unknown dst host")
	}
	if _, err := fx.fwd.RouterPath(-5, fx.top.Hosts[0].ID); err == nil {
		t.Error("expected error for unknown router")
	}
}

func TestPropDelayPositive(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	p, err := fx.fwd.HostPath(fx.top.Hosts[0].ID, fx.top.Hosts[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.PropDelayMs(fx.top); d <= 0 {
		t.Errorf("path propagation delay %f, want > 0", d)
	}
	if p.Hops() != len(p.Links) {
		t.Errorf("Hops() = %d, want %d", p.Hops(), len(p.Links))
	}
}

func TestSameASPathCollapsed(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	p, err := fx.fwd.HostPath(fx.top.Hosts[0].ID, fx.top.Hosts[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	asPath := p.ASPath(fx.top)
	for i := 0; i+1 < len(asPath); i++ {
		if asPath[i] == asPath[i+1] {
			t.Fatalf("consecutive duplicate AS in %v", asPath)
		}
	}
}

// TestHotPotatoPrefersNearEgress builds a case where the chosen egress
// must be the IGP-nearest one among multiple links to the next AS.
func TestHotPotatoPrefersNearEgress(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	g := igp.New(fx.top, igp.DefaultConfig())
	checked := 0
	for _, a := range fx.top.Hosts {
		for _, b := range fx.top.Hosts {
			if a.ID == b.ID {
				continue
			}
			p, err := fx.fwd.HostPath(a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			// Walk the path; at each AS crossing verify minimality.
			for k, lid := range p.Links {
				l := fx.top.Link(lid)
				if l.Rel == topology.Internal {
					continue
				}
				// Router where the packet entered this AS (or source attach).
				entry := p.Routers[0]
				for m := k - 1; m >= 0; m-- {
					if fx.top.Link(p.Links[m]).Rel != topology.Internal {
						entry = p.Routers[m+1]
						break
					}
				}
				curAS := fx.top.Router(l.From).AS
				nextAS := fx.top.Router(l.To).AS
				dChosen, _ := g.Dist(entry, l.From)
				for _, cand := range fx.top.InterASLinks(curAS, nextAS) {
					dCand, ok := g.Dist(entry, fx.top.Link(cand).From)
					if ok && dCand < dChosen-1e-9 {
						t.Fatalf("egress %d (dist %f) not hot-potato minimal; %d has dist %f",
							lid, dChosen, cand, dCand)
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no AS crossings checked")
	}
}
