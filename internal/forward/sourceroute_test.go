package forward

import (
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/igp"
	"pathsel/internal/topology"
)

func TestLooseSourcePathVisitsRelays(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	src, relay, dst := fx.top.Hosts[0], fx.top.Hosts[4], fx.top.Hosts[8]
	p, err := fx.fwd.LooseSourcePath(src.ID, []topology.HostID{relay.ID}, dst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Routers[0] != src.Attach || p.Routers[len(p.Routers)-1] != dst.Attach {
		t.Fatal("endpoints wrong")
	}
	found := false
	for _, r := range p.Routers {
		if r == relay.Attach {
			found = true
		}
	}
	if !found {
		t.Fatal("source-routed path skips the relay's attachment router")
	}
	// Continuity.
	if len(p.Routers) != len(p.Links)+1 {
		t.Fatalf("router/link count mismatch")
	}
	for k, lid := range p.Links {
		l := fx.top.Link(lid)
		if l.From != p.Routers[k] || l.To != p.Routers[k+1] {
			t.Fatalf("discontinuity at %d", k)
		}
	}
}

func TestLooseSourcePathNoRelaysEqualsDefault(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	src, dst := fx.top.Hosts[1], fx.top.Hosts[2]
	direct, err := fx.fwd.HostPath(src.ID, dst.ID)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := fx.fwd.LooseSourcePath(src.ID, nil, dst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Links) != len(sr.Links) {
		t.Fatalf("lengths differ: %d vs %d", len(direct.Links), len(sr.Links))
	}
	for i := range direct.Links {
		if direct.Links[i] != sr.Links[i] {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestLooseSourcePathMultipleRelays(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	hosts := fx.top.Hosts
	p, err := fx.fwd.LooseSourcePath(hosts[0].ID, []topology.HostID{hosts[3].ID, hosts[6].ID}, hosts[9].ID)
	if err != nil {
		t.Fatal(err)
	}
	// Both relays appear in order.
	i3, i6 := -1, -1
	for i, r := range p.Routers {
		if r == hosts[3].Attach && i3 == -1 {
			i3 = i
		}
		if r == hosts[6].Attach && i6 == -1 {
			i6 = i
		}
	}
	if i3 == -1 || i6 == -1 || i3 > i6 {
		t.Fatalf("relays not visited in order: %d, %d", i3, i6)
	}
}

func TestLooseSourcePathErrors(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	h := fx.top.Hosts[0].ID
	if _, err := fx.fwd.LooseSourcePath(-1, nil, h); err == nil {
		t.Error("unknown src should error")
	}
	if _, err := fx.fwd.LooseSourcePath(h, []topology.HostID{-5}, fx.top.Hosts[1].ID); err == nil {
		t.Error("unknown relay should error")
	}
}

// TestSourceRouteAtMostHostComposition verifies the paper's
// conservativity argument structurally: the source-routed path through a
// relay never has more propagation delay than the composition of the two
// host paths (which traverses the relay's access segment twice).
func TestSourceRouteAtMostHostComposition(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	hosts := fx.top.Hosts
	checked := 0
	for i := 0; i < 4; i++ {
		for j := 5; j < 9; j++ {
			for r := 9; r < len(hosts); r++ {
				src, dst, relay := hosts[i], hosts[j], hosts[r]
				sr, err := fx.fwd.LooseSourcePath(src.ID, []topology.HostID{relay.ID}, dst.ID)
				if err != nil {
					t.Fatal(err)
				}
				leg1, err := fx.fwd.HostPath(src.ID, relay.ID)
				if err != nil {
					t.Fatal(err)
				}
				leg2, err := fx.fwd.HostPath(relay.ID, dst.ID)
				if err != nil {
					t.Fatal(err)
				}
				composed := leg1.PropDelayMs(fx.top) + leg2.PropDelayMs(fx.top) +
					2*relay.AccessDelayMs // host composition pays the relay's access twice
				if got := sr.PropDelayMs(fx.top); got > composed+1e-9 {
					t.Fatalf("source route %f ms exceeds host composition %f ms", got, composed)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no triples checked")
	}
}

func TestColdPotatoDiffers(t *testing.T) {
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	hot := New(top, g, table)
	cold := NewWithEgress(top, g, table, ColdPotato)
	differ := 0
	pairs := 0
	for i := 0; i < len(top.Hosts); i++ {
		for j := 0; j < len(top.Hosts); j++ {
			if i == j {
				continue
			}
			ph, err := hot.HostPath(top.Hosts[i].ID, top.Hosts[j].ID)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := cold.HostPath(top.Hosts[i].ID, top.Hosts[j].ID)
			if err != nil {
				t.Fatal(err)
			}
			pairs++
			if !samePath(ph, pc) {
				differ++
			}
			// Both policies must follow the same AS-level route.
			ah, ac := ph.ASPath(top), pc.ASPath(top)
			if len(ah) != len(ac) {
				t.Fatalf("AS paths differ in length for pair %d-%d", i, j)
			}
			for k := range ah {
				if ah[k] != ac[k] {
					t.Fatalf("AS paths differ for pair %d-%d", i, j)
				}
			}
		}
	}
	if differ == 0 {
		t.Error("cold potato never changed any router-level path")
	}
	t.Logf("%d of %d pairs differ between hot and cold potato", differ, pairs)
}

func samePath(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}

func TestEgressPolicyString(t *testing.T) {
	if HotPotato.String() != "hot-potato" || ColdPotato.String() != "cold-potato" {
		t.Error("policy strings wrong")
	}
	if EgressPolicy(9).String() != "policy(9)" {
		t.Error("unknown policy string wrong")
	}
}

func TestExclusionsAvoidLinks(t *testing.T) {
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	base := New(top, g, table)
	src, dst := top.Hosts[0].ID, top.Hosts[5].ID
	p, err := base.HostPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Exclude the first inter-AS link of the default path; if the AS
	// pair has another link, the excluded forwarder must avoid it.
	var target topology.LinkID = -1
	for _, lid := range p.Links {
		l := top.Link(lid)
		if l.Rel != topology.Internal {
			a, bAS := top.Router(l.From).AS, top.Router(l.To).AS
			if len(top.InterASLinks(a, bAS)) > 1 {
				target = lid
				break
			}
		}
	}
	if target == -1 {
		t.Skip("default path has no multi-link AS crossing to exclude")
	}
	excluded := map[topology.LinkID]bool{target: true}
	fwd2 := NewWithExclusions(top, g, table, excluded)
	p2, err := fwd2.HostPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, lid := range p2.Links {
		if lid == target {
			t.Fatal("excluded link still used")
		}
	}
}

func TestCacheMemoizes(t *testing.T) {
	fx := newFixture(t, topology.Era1999)
	c := NewCache(fx.fwd)
	src, dst := fx.top.Hosts[0].ID, fx.top.Hosts[1].ID
	p1, err := c.PathAt(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.PathAt(src, dst, 999999) // time is irrelevant for a static network
	if err != nil {
		t.Fatal(err)
	}
	if !samePath(p1, p2) {
		t.Error("cache returned different paths for the same pair")
	}
	direct, err := fx.fwd.HostPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !samePath(p1, direct) {
		t.Error("cached path differs from direct computation")
	}
	if _, err := c.PathAt(-1, dst, 0); err == nil {
		t.Error("unknown host should propagate the error")
	}
	// Errors are not cached as successes.
	if _, err := c.PathAt(-1, dst, 0); err == nil {
		t.Error("repeated bad lookup should still error")
	}
}

func TestExclusionOfOnlyLinkBreaksForwarding(t *testing.T) {
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	base := New(top, g, table)
	src, dst := top.Hosts[0].ID, top.Hosts[5].ID
	p, err := base.HostPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Exclude every link of the first AS crossing: with the BGP route
	// unchanged, forwarding must fail rather than sneak through.
	excluded := map[topology.LinkID]bool{}
	for _, lid := range p.Links {
		l := top.Link(lid)
		if l.Rel != topology.Internal {
			a, bAS := top.Router(l.From).AS, top.Router(l.To).AS
			for _, id := range top.InterASLinks(a, bAS) {
				excluded[id] = true
			}
			break
		}
	}
	if len(excluded) == 0 {
		t.Skip("path never crosses an AS boundary")
	}
	fwd2 := NewWithExclusions(top, g, table, excluded)
	if _, err := fwd2.HostPath(src, dst); err == nil {
		t.Error("forwarding over a fully excluded adjacency should fail")
	}
}
