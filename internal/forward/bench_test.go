package forward

import (
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/igp"
	"pathsel/internal/topology"
)

func BenchmarkHostPath(b *testing.B) {
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		b.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		b.Fatal(err)
	}
	fwd := New(top, g, table)
	hosts := top.Hosts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+7)%len(hosts)]
		if src.ID == dst.ID {
			continue
		}
		if _, err := fwd.HostPath(src.ID, dst.ID); err != nil {
			b.Fatal(err)
		}
	}
}
