// Package tcpsim simulates a single TCP Reno flow over a measured path
// state, using the classic rounds model: each round the sender transmits
// a congestion window of segments, waits one round-trip time, and reacts
// to losses (halving on fast retransmit, collapsing to one segment on
// timeout). The paper converts measured RTT and loss into bandwidth with
// the closed-form Mathis model; this simulator provides an independent
// check that the model's predictions hold on the reproduction's own
// substrate (see experiments.ValidateTCPModel).
package tcpsim

import (
	"errors"
	"math/rand"
)

// Config parameterizes the flow.
type Config struct {
	// MSSBytes is the segment size.
	MSSBytes float64
	// InitialSSThresh caps the initial slow-start phase, in segments.
	InitialSSThresh float64
	// MaxWindow caps the congestion window, in segments (receiver
	// window / bandwidth-delay ceiling).
	MaxWindow float64
	// RTOMultiple is the timeout penalty: a timeout costs this many
	// RTTs of idle time (retransmission timer backoff).
	RTOMultiple float64
}

// DefaultConfig mirrors a late-90s TCP stack: 1460-byte segments, 64 KB
// receiver window (~45 segments).
func DefaultConfig() Config {
	return Config{
		MSSBytes:        1460,
		InitialSSThresh: 32,
		MaxWindow:       45,
		RTOMultiple:     4,
	}
}

// Validate reports problems with the configuration.
func (c Config) Validate() error {
	switch {
	case c.MSSBytes <= 0:
		return errors.New("tcpsim: MSSBytes must be positive")
	case c.InitialSSThresh < 1:
		return errors.New("tcpsim: InitialSSThresh must be at least 1")
	case c.MaxWindow < 2:
		return errors.New("tcpsim: MaxWindow must be at least 2")
	case c.RTOMultiple < 1:
		return errors.New("tcpsim: RTOMultiple must be at least 1")
	}
	return nil
}

// Result summarizes a simulated transfer.
type Result struct {
	// ThroughputKBs is delivered payload over elapsed time.
	ThroughputKBs float64
	// Delivered is the number of segments acknowledged.
	Delivered int
	// Rounds is the number of RTT rounds simulated.
	Rounds int
	// Timeouts counts retransmission timeouts (multiple losses in one
	// window).
	Timeouts int
	// FastRetransmits counts single-loss window halvings.
	FastRetransmits int
}

// Simulate runs a Reno flow for the given duration over a path with the
// given round-trip time (ms) and per-segment loss probability. The rng
// drives per-segment loss draws.
func Simulate(cfg Config, rng *rand.Rand, rttMs, loss float64, durationSec float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if rttMs <= 0 {
		return Result{}, errors.New("tcpsim: RTT must be positive")
	}
	if loss < 0 || loss > 1 {
		return Result{}, errors.New("tcpsim: loss must be in [0,1]")
	}
	if durationSec <= 0 {
		return Result{}, errors.New("tcpsim: duration must be positive")
	}

	var res Result
	cwnd := 1.0
	ssthresh := cfg.InitialSSThresh
	elapsedMs := 0.0
	durationMs := durationSec * 1000

	for elapsedMs < durationMs {
		res.Rounds++
		send := int(cwnd)
		if send < 1 {
			send = 1
		}
		// Count losses in this window.
		lost := 0
		for i := 0; i < send; i++ {
			if rng.Float64() < loss {
				lost++
			}
		}
		res.Delivered += send - lost
		switch {
		case lost == 0:
			if cwnd < ssthresh {
				cwnd *= 2 // slow start
			} else {
				cwnd++ // congestion avoidance
			}
			if cwnd > cfg.MaxWindow {
				cwnd = cfg.MaxWindow
			}
			elapsedMs += rttMs
		case lost == 1 && cwnd >= 4:
			// Fast retransmit: halve and continue.
			res.FastRetransmits++
			ssthresh = cwnd / 2
			if ssthresh < 2 {
				ssthresh = 2
			}
			cwnd = ssthresh
			elapsedMs += rttMs
		default:
			// Multiple losses (or a tiny window): timeout.
			res.Timeouts++
			ssthresh = cwnd / 2
			if ssthresh < 2 {
				ssthresh = 2
			}
			cwnd = 1
			elapsedMs += rttMs * cfg.RTOMultiple
		}
	}
	res.ThroughputKBs = float64(res.Delivered) * cfg.MSSBytes / durationMs
	return res, nil
}
