package tcpsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsel/internal/tcpmodel"
)

func simulate(t *testing.T, rtt, loss float64) Result {
	t.Helper()
	res, err := Simulate(DefaultConfig(), rand.New(rand.NewSource(1)), rtt, loss, 600)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLosslessFlowFillsWindow(t *testing.T) {
	res := simulate(t, 100, 0)
	// With no loss the flow pins at MaxWindow: throughput =
	// MaxWindow*MSS/RTT = 45*1460/0.1s = 657 kB/s.
	want := DefaultConfig().MaxWindow * DefaultConfig().MSSBytes / 100
	if math.Abs(res.ThroughputKBs-want) > want*0.1 {
		t.Errorf("lossless throughput %.1f, want ~%.1f", res.ThroughputKBs, want)
	}
	if res.Timeouts != 0 || res.FastRetransmits != 0 {
		t.Errorf("lossless flow saw loss events: %+v", res)
	}
}

func TestThroughputMonotonicity(t *testing.T) {
	lowLoss := simulate(t, 100, 0.005)
	highLoss := simulate(t, 100, 0.05)
	if lowLoss.ThroughputKBs <= highLoss.ThroughputKBs {
		t.Errorf("more loss should mean less throughput: %.1f vs %.1f",
			lowLoss.ThroughputKBs, highLoss.ThroughputKBs)
	}
	fastRTT := simulate(t, 50, 0.01)
	slowRTT := simulate(t, 400, 0.01)
	if fastRTT.ThroughputKBs <= slowRTT.ThroughputKBs {
		t.Errorf("lower RTT should mean more throughput: %.1f vs %.1f",
			fastRTT.ThroughputKBs, slowRTT.ThroughputKBs)
	}
}

// TestMathisAgreement: in the congestion-avoidance regime (loss high
// enough that MaxWindow does not bind) the simulated throughput should
// agree with the Mathis model within a small constant factor.
func TestMathisAgreement(t *testing.T) {
	model := tcpmodel.Default()
	for _, tc := range []struct{ rtt, loss float64 }{
		{80, 0.01}, {150, 0.02}, {250, 0.01}, {100, 0.04},
	} {
		// Average a few independent runs to damp simulation noise.
		var sum float64
		const runs = 8
		for i := 0; i < runs; i++ {
			res, err := Simulate(DefaultConfig(), rand.New(rand.NewSource(int64(i+1))), tc.rtt, tc.loss, 600)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.ThroughputKBs
		}
		sim := sum / runs
		pred, err := model.BandwidthKBs(tc.rtt, tc.loss)
		if err != nil {
			t.Fatal(err)
		}
		ratio := sim / pred
		if ratio < 0.4 || ratio > 2.0 {
			t.Errorf("rtt=%.0f loss=%.3f: simulated %.1f vs Mathis %.1f (ratio %.2f)",
				tc.rtt, tc.loss, sim, pred, ratio)
		}
	}
}

func TestTimeoutsUnderHeavyLoss(t *testing.T) {
	res := simulate(t, 100, 0.3)
	if res.Timeouts == 0 {
		t.Error("30% loss should cause timeouts")
	}
	if res.ThroughputKBs > 100 {
		t.Errorf("throughput %.1f implausibly high at 30%% loss", res.ThroughputKBs)
	}
}

func TestSimulateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(DefaultConfig(), rng, 0, 0.1, 10); err == nil {
		t.Error("zero RTT accepted")
	}
	if _, err := Simulate(DefaultConfig(), rng, 100, -0.1, 10); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := Simulate(DefaultConfig(), rng, 100, 1.1, 10); err == nil {
		t.Error("loss > 1 accepted")
	}
	if _, err := Simulate(DefaultConfig(), rng, 100, 0.1, 0); err == nil {
		t.Error("zero duration accepted")
	}
	bad := DefaultConfig()
	bad.MSSBytes = 0
	if _, err := Simulate(bad, rng, 100, 0.1, 10); err == nil {
		t.Error("bad config accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MSSBytes = -1 },
		func(c *Config) { c.InitialSSThresh = 0 },
		func(c *Config) { c.MaxWindow = 1 },
		func(c *Config) { c.RTOMultiple = 0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestPropertySimulationBounds: throughput is always non-negative and
// never exceeds the window-limited ceiling.
func TestPropertySimulationBounds(t *testing.T) {
	f := func(seed int64, rttRaw, lossRaw uint16) bool {
		rtt := 10 + float64(rttRaw%1000)
		loss := float64(lossRaw%1000) / 1000
		res, err := Simulate(DefaultConfig(), rand.New(rand.NewSource(seed)), rtt, loss, 60)
		if err != nil {
			return false
		}
		ceiling := DefaultConfig().MaxWindow * DefaultConfig().MSSBytes / rtt
		return res.ThroughputKBs >= 0 && res.ThroughputKBs <= ceiling*1.05 && res.Rounds > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Simulate(DefaultConfig(), rand.New(rand.NewSource(7)), 120, 0.02, 120)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(DefaultConfig(), rand.New(rand.NewSource(7)), 120, 0.02, 120)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave different results: %+v vs %+v", a, b)
	}
}
