package optimal

import (
	"math"
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/geo"
	"pathsel/internal/igp"
	"pathsel/internal/topology"
)

func testTop(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestRouterDelaySelfAndSymmetry(t *testing.T) {
	top := testTop(t)
	o := New(top)
	r := top.Routers[0].ID
	if d, err := o.RouterDelay(r, r); err != nil || d != 0 {
		t.Errorf("self delay %f, %v", d, err)
	}
	// Links come in symmetric pairs, so optimal delays are symmetric.
	for i := 0; i < 20; i++ {
		a := top.Routers[(i*17)%len(top.Routers)].ID
		b := top.Routers[(i*31+5)%len(top.Routers)].ID
		d1, err1 := o.RouterDelay(a, b)
		d2, err2 := o.RouterDelay(b, a)
		if err1 != nil || err2 != nil {
			t.Fatalf("unreachable routers: %v %v", err1, err2)
		}
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric optimal delay %f vs %f", d1, d2)
		}
	}
}

func TestOptimalNeverWorseThanDefault(t *testing.T) {
	top := testTop(t)
	o := New(top)
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	fwd := forward.New(top, g, table)
	for i := 0; i < len(top.Hosts); i++ {
		for j := 0; j < len(top.Hosts); j++ {
			if i == j {
				continue
			}
			src, dst := top.Hosts[i], top.Hosts[j]
			p, err := fwd.HostPath(src.ID, dst.ID)
			if err != nil {
				t.Fatal(err)
			}
			defDelay := p.PropDelayMs(top) + src.AccessDelayMs + dst.AccessDelayMs
			opt, err := o.HostDelay(src.ID, dst.ID)
			if err != nil {
				t.Fatal(err)
			}
			if opt > defDelay+1e-9 {
				t.Fatalf("optimal %f exceeds default %f for %s->%s", opt, defDelay, src.Name, dst.Name)
			}
		}
	}
}

func TestOptimalAtLeastGeographic(t *testing.T) {
	// No path can beat straight-line fiber propagation between the
	// endpoints.
	top := testTop(t)
	o := New(top)
	for i := 0; i < len(top.Hosts); i++ {
		for j := i + 1; j < len(top.Hosts); j++ {
			a, b := top.Hosts[i], top.Hosts[j]
			opt, err := o.HostDelay(a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			floor := geo.PropagationDelayMs(top.Router(a.Attach).Loc, top.Router(b.Attach).Loc) / geo.RouteIndirection
			if opt < floor-1e-6 {
				t.Fatalf("optimal %f below geographic floor %f", opt, floor)
			}
		}
	}
}

func TestInflationExists(t *testing.T) {
	// Policy routing must inflate at least some paths, or the entire
	// study would be moot.
	top := testTop(t)
	o := New(top)
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	fwd := forward.New(top, g, table)
	inflated := 0
	pairs := 0
	for i := 0; i < len(top.Hosts); i++ {
		for j := 0; j < len(top.Hosts); j++ {
			if i == j {
				continue
			}
			src, dst := top.Hosts[i], top.Hosts[j]
			p, err := fwd.HostPath(src.ID, dst.ID)
			if err != nil {
				t.Fatal(err)
			}
			defDelay := p.PropDelayMs(top) + src.AccessDelayMs + dst.AccessDelayMs
			opt, err := o.HostDelay(src.ID, dst.ID)
			if err != nil {
				t.Fatal(err)
			}
			pairs++
			if defDelay > opt*1.2 {
				inflated++
			}
		}
	}
	if inflated == 0 {
		t.Error("no path inflated by >=20%; policy routing is suspiciously optimal")
	}
	t.Logf("%d of %d pairs inflated by >=20%% over optimal", inflated, pairs)
}

func TestHostRTT(t *testing.T) {
	top := testTop(t)
	o := New(top)
	a, b := top.Hosts[0].ID, top.Hosts[1].ID
	rtt, err := o.HostRTT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ow, err := o.HostDelay(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rtt-2*ow) > 1e-9 {
		t.Errorf("RTT %f should be twice the one-way %f", rtt, ow)
	}
}

func TestUnknownIDs(t *testing.T) {
	top := testTop(t)
	o := New(top)
	if _, err := o.RouterDelay(-1, top.Routers[0].ID); err == nil {
		t.Error("unknown router accepted")
	}
	if _, err := o.HostDelay(-1, top.Hosts[0].ID); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := o.HostRTT(top.Hosts[0].ID, -2); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestMemoization(t *testing.T) {
	top := testTop(t)
	o := New(top)
	a, b := top.Hosts[0].ID, top.Hosts[1].ID
	d1, _ := o.HostDelay(a, b)
	d2, _ := o.HostDelay(a, b)
	if d1 != d2 {
		t.Error("memoized result differs")
	}
	if len(o.dist) == 0 {
		t.Error("no trees memoized")
	}
}
