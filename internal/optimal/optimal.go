// Package optimal computes globally optimal router-level paths over the
// full link graph, ignoring routing policy entirely. The paper can only
// compare default paths against host-relayed alternates; the simulator
// can also answer the underlying question directly — how far from
// optimal is policy routing? — and then measure how much of that
// optimality gap the paper's synthetic alternates recover.
//
// "Optimal" here minimizes propagation delay, the policy-free baseline
// that later path-inflation studies (e.g. Tangmunarunkit et al.) used.
package optimal

import (
	"container/heap"
	"fmt"

	"pathsel/internal/topology"
)

// Router-level shortest paths over every link in the topology,
// regardless of AS boundaries, business relationships, or export rules.
type Router struct {
	top *topology.Topology
	// dist[src] maps destination routers to minimal propagation delay.
	dist map[topology.RouterID]map[topology.RouterID]float64
}

// New creates an optimal-path calculator. Shortest-path trees are
// computed lazily per source and memoized.
func New(top *topology.Topology) *Router {
	return &Router{top: top, dist: map[topology.RouterID]map[topology.RouterID]float64{}}
}

type item struct {
	r topology.RouterID
	d float64
}

type queue []item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].d != q[j].d {
		return q[i].d < q[j].d
	}
	return q[i].r < q[j].r
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(item)) }
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// tree runs Dijkstra from src over all links, minimizing propagation
// delay.
func (o *Router) tree(src topology.RouterID) map[topology.RouterID]float64 {
	if d, ok := o.dist[src]; ok {
		return d
	}
	dist := map[topology.RouterID]float64{src: 0}
	done := map[topology.RouterID]bool{}
	q := &queue{{r: src, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if done[it.r] {
			continue
		}
		done[it.r] = true
		for _, lid := range o.top.OutLinks(it.r) {
			l := o.top.Link(lid)
			nd := dist[it.r] + l.PropDelayMs
			if old, ok := dist[l.To]; !ok || nd < old {
				dist[l.To] = nd
				heap.Push(q, item{r: l.To, d: nd})
			}
		}
	}
	o.dist[src] = dist
	return dist
}

// RouterDelay returns the minimal propagation delay between two routers.
func (o *Router) RouterDelay(src, dst topology.RouterID) (float64, error) {
	if o.top.Router(src) == nil || o.top.Router(dst) == nil {
		return 0, fmt.Errorf("optimal: unknown router %d or %d", src, dst)
	}
	d, ok := o.tree(src)[dst]
	if !ok {
		return 0, fmt.Errorf("optimal: router %d unreachable from %d", dst, src)
	}
	return d, nil
}

// HostDelay returns the minimal one-way propagation delay between two
// hosts, including their access links.
func (o *Router) HostDelay(src, dst topology.HostID) (float64, error) {
	hs, hd := o.top.Host(src), o.top.Host(dst)
	if hs == nil || hd == nil {
		return 0, fmt.Errorf("optimal: unknown host %d or %d", src, dst)
	}
	d, err := o.RouterDelay(hs.Attach, hd.Attach)
	if err != nil {
		return 0, err
	}
	return d + hs.AccessDelayMs + hd.AccessDelayMs, nil
}

// HostRTT returns the minimal round-trip propagation delay between two
// hosts (forward plus reverse optimal paths; links are symmetric so this
// is twice the one-way optimum).
func (o *Router) HostRTT(src, dst topology.HostID) (float64, error) {
	fwd, err := o.HostDelay(src, dst)
	if err != nil {
		return 0, err
	}
	rev, err := o.HostDelay(dst, src)
	if err != nil {
		return 0, err
	}
	return fwd + rev, nil
}
