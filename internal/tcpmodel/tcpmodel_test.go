package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBandwidthKnownValue(t *testing.T) {
	m := Model{MSSBytes: 1460, C: 1, MinLoss: 0}
	// 100 ms RTT, 1% loss: 1460/0.1 * 1/0.1 = 146000 B/s = 146 kB/s.
	got, err := m.BandwidthKBs(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-146) > 1e-9 {
		t.Errorf("BandwidthKBs = %f, want 146", got)
	}
}

func TestBandwidthMonotonicity(t *testing.T) {
	m := Default()
	b1, _ := m.BandwidthKBs(50, 0.01)
	b2, _ := m.BandwidthKBs(100, 0.01)
	if b1 <= b2 {
		t.Errorf("lower RTT should give more bandwidth: %f vs %f", b1, b2)
	}
	b3, _ := m.BandwidthKBs(50, 0.04)
	if b3 >= b1 {
		t.Errorf("higher loss should give less bandwidth: %f vs %f", b3, b1)
	}
	// Quadrupling loss halves bandwidth (inverse square root).
	if math.Abs(b3-b1/2) > 1e-9 {
		t.Errorf("4x loss should halve bandwidth: %f vs %f", b3, b1/2)
	}
}

func TestLossFloor(t *testing.T) {
	m := Default()
	b0, err := m.BandwidthKBs(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	bMin, _ := m.BandwidthKBs(100, m.MinLoss)
	if b0 != bMin {
		t.Errorf("zero loss should be floored: %f vs %f", b0, bMin)
	}
	if math.IsInf(b0, 0) || math.IsNaN(b0) {
		t.Error("zero loss should not diverge")
	}
}

func TestBandwidthCap(t *testing.T) {
	m := Default()
	m.MaxBandwidthKBs = 100
	b, err := m.BandwidthKBs(1, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if b != 100 {
		t.Errorf("capped bandwidth = %f, want 100", b)
	}
}

func TestBandwidthErrors(t *testing.T) {
	m := Default()
	if _, err := m.BandwidthKBs(0, 0.1); err == nil {
		t.Error("zero RTT should error")
	}
	if _, err := m.BandwidthKBs(-5, 0.1); err == nil {
		t.Error("negative RTT should error")
	}
	if _, err := m.BandwidthKBs(10, -0.1); err == nil {
		t.Error("negative loss should error")
	}
	if _, err := m.BandwidthKBs(10, 1.1); err == nil {
		t.Error("loss > 1 should error")
	}
}

func TestBandwidthAlwaysPositive(t *testing.T) {
	m := Default()
	f := func(rttRaw, lossRaw float64) bool {
		rtt := 0.1 + math.Mod(math.Abs(rttRaw), 10000)
		loss := math.Mod(math.Abs(lossRaw), 1)
		if math.IsNaN(rtt) || math.IsNaN(loss) {
			return true
		}
		b, err := m.BandwidthKBs(rtt, loss)
		return err == nil && b > 0 && !math.IsInf(b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
