// Package tcpmodel implements the macroscopic TCP throughput model of
// Mathis, Semke, Mahdavi and Ott ("The Macroscopic Behavior of the TCP
// Congestion Avoidance Algorithm", CCR 1997), which the paper uses to
// convert measured round-trip time and loss rate into the bandwidth a
// TCP connection would obtain along a path:
//
//	BW = (MSS / RTT) * (C / sqrt(p))
//
// with C a constant near 1 that depends on the acknowledgment strategy
// and loss model.
package tcpmodel

import (
	"errors"
	"math"
)

// DefaultMSS is the segment size used when none is specified (bytes);
// 1460 is the Ethernet-path MTU minus TCP/IP headers, typical of the
// paper's era.
const DefaultMSS = 1460

// DefaultC is the Mathis constant for periodic loss with delayed ACKs.
const DefaultC = math.Sqrt2 // ≈ 1.22 is also common; sqrt(3/2)·... varies by derivation

// Model computes TCP throughput estimates.
type Model struct {
	// MSSBytes is the maximum segment size in bytes.
	MSSBytes float64
	// C is the Mathis constant.
	C float64
	// MinLoss floors the loss rate: with p = 0 the model diverges, and
	// the paper's datasets cannot resolve loss rates below one lost
	// packet per session anyway.
	MinLoss float64
	// MaxBandwidthKBs optionally caps the estimate (e.g. at the
	// bottleneck access capacity); zero means uncapped.
	MaxBandwidthKBs float64
}

// Default returns the model configuration used throughout the
// reproduction.
func Default() Model {
	return Model{MSSBytes: DefaultMSS, C: DefaultC, MinLoss: 1e-4}
}

// BandwidthKBs returns the model throughput in kilobytes per second for
// a path with the given round-trip time (ms) and loss probability.
func (m Model) BandwidthKBs(rttMs, loss float64) (float64, error) {
	if rttMs <= 0 {
		return 0, errors.New("tcpmodel: RTT must be positive")
	}
	if loss < 0 || loss > 1 {
		return 0, errors.New("tcpmodel: loss must be in [0,1]")
	}
	p := loss
	if p < m.MinLoss {
		p = m.MinLoss
	}
	rttSec := rttMs / 1000
	bytesPerSec := m.MSSBytes / rttSec * m.C / math.Sqrt(p)
	kbs := bytesPerSec / 1000
	if m.MaxBandwidthKBs > 0 && kbs > m.MaxBandwidthKBs {
		kbs = m.MaxBandwidthKBs
	}
	return kbs, nil
}
