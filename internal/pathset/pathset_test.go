package pathset

import (
	"math"
	"reflect"
	"testing"

	"pathsel/internal/topology"
)

func hops(ids ...topology.HostID) []topology.HostID { return ids }

func TestLinkDisjointness(t *testing.T) {
	direct := Path{Hops: hops(0, 1)}
	viaTwo := Path{Hops: hops(0, 2, 1)}
	viaTwoThree := Path{Hops: hops(0, 2, 3, 1)}
	cases := []struct {
		name string
		a, b Path
		want float64
	}{
		{"identical", direct, direct, 0},
		{"fully disjoint", direct, viaTwo, 1},
		{"shares first hop", viaTwo, viaTwoThree, 0.5},
		{"empty", Path{}, direct, 1},
	}
	for _, c := range cases {
		if got := Disjointness(LevelLink, c.a, c.b); got != c.want {
			t.Errorf("%s: %g, want %g", c.name, got, c.want)
		}
		if got := Disjointness(LevelLink, c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): %g, want %g", c.name, got, c.want)
		}
	}
}

func TestASDisjointness(t *testing.T) {
	a := Path{ASes: []topology.ASN{10, 20, 30}}
	b := Path{ASes: []topology.ASN{20, 40}}
	if got := Disjointness(LevelAS, a, b); got != 0.5 {
		t.Errorf("one of two shared: %g, want 0.5", got)
	}
	c := Path{ASes: []topology.ASN{40, 50}}
	if got := Disjointness(LevelAS, a, c); got != 1 {
		t.Errorf("nothing shared: %g, want 1", got)
	}
	if got := Disjointness(LevelAS, a, Path{}); got != 1 {
		t.Errorf("empty AS set: %g, want 1 (vacuously disjoint)", got)
	}
	if got := Disjointness(LevelAS, a, a); got != 0 {
		t.Errorf("identical sets: %g, want 0", got)
	}
}

func TestFilterAndMaxDisjoint(t *testing.T) {
	ref := Path{Hops: hops(0, 1)}
	s := PathSet{Paths: []Path{
		{Hops: hops(0, 1, 2, 1)}, // shares the 0->1 edge (contrived)
		{Hops: hops(0, 2, 1)},
		{Hops: hops(0, 3, 1)},
	}}
	if got := s.MaxDisjointness(LevelLink, ref); got != 1 {
		t.Errorf("max disjointness %g, want 1", got)
	}
	kept := s.FilterDisjoint(LevelLink, ref, 1)
	if kept.Len() != 2 {
		t.Fatalf("kept %d, want 2", kept.Len())
	}
	for _, p := range kept.Paths {
		if Disjointness(LevelLink, ref, p) < 1 {
			t.Errorf("leaked %v", p.Hops)
		}
	}
	if got := s.FilterDisjoint(LevelLink, ref, 0); got.Len() != s.Len() {
		t.Error("minD=0 must keep everything")
	}
	if got := (PathSet{}).MaxDisjointness(LevelLink, ref); got != 0 {
		t.Errorf("empty set max %g, want 0", got)
	}
}

func TestByLatencySortsNaNLast(t *testing.T) {
	s := PathSet{Paths: []Path{
		{Hops: hops(0, 2, 1), Weight: 1, LatencyMs: math.NaN()},
		{Hops: hops(0, 3, 1), Weight: 2, LatencyMs: 50},
		{Hops: hops(0, 4, 1), Weight: 3, LatencyMs: 20},
	}}
	got := ByLatency{}.Select(Path{}, s, 0)
	want := []topology.HostID{4, 3, 2}
	for i, p := range got.Paths {
		if p.Hops[1] != want[i] {
			t.Fatalf("order %v, want via %v", got.Paths, want)
		}
	}
	// Original set untouched.
	if s.Paths[0].Hops[1] != 2 {
		t.Error("strategy mutated its input")
	}
	if top := (ByLatency{}).Select(Path{}, s, 1); top.Len() != 1 || top.Paths[0].Hops[1] != 4 {
		t.Errorf("n=1 pick %v", top.Paths)
	}
}

func TestMostDisjointGreedy(t *testing.T) {
	ref := Path{Hops: hops(0, 1), ASes: []topology.ASN{100}}
	shared := Path{Hops: hops(0, 2, 1), Weight: 1, ASes: []topology.ASN{100, 200}}
	clean := Path{Hops: hops(0, 3, 1), Weight: 2, ASes: []topology.ASN{300}}
	cleanToo := Path{Hops: hops(0, 4, 1), Weight: 3, ASes: []topology.ASN{300, 400}}
	s := PathSet{Paths: []Path{shared, clean, cleanToo}}
	got := MostDisjoint{Level: LevelAS}.Select(ref, s, 2)
	if got.Len() != 2 {
		t.Fatalf("kept %d, want 2", got.Len())
	}
	// First pick: fully disjoint from ref; ties broken by lower weight.
	if got.Paths[0].Hops[1] != 3 {
		t.Errorf("first pick via %d, want 3 (disjoint, lighter)", got.Paths[0].Hops[1])
	}
	// Second pick maximizes the min against ref AND the first pick:
	// cleanToo shares AS 300 with clean (0.5), shared shares 100 with
	// ref (0.5); equal scores fall to the lower weight -> shared.
	if got.Paths[1].Hops[1] != 2 {
		t.Errorf("second pick via %d, want 2", got.Paths[1].Hops[1])
	}
	if (MostDisjoint{Level: LevelAS}).Name() != "disjoint-as" {
		t.Error("name")
	}
}

func TestStrategyFunc(t *testing.T) {
	reverse := StrategyFunc{
		Label: "reverse",
		Fn: func(_ Path, set PathSet, n int) PathSet {
			out := set.Clone()
			for i, j := 0, len(out.Paths)-1; i < j; i, j = i+1, j-1 {
				out.Paths[i], out.Paths[j] = out.Paths[j], out.Paths[i]
			}
			return truncate(out, n)
		},
	}
	s := PathSet{Paths: []Path{{Hops: hops(0, 2, 1)}, {Hops: hops(0, 3, 1)}}}
	got := reverse.Select(Path{}, s, 0)
	if reverse.Name() != "reverse" || got.Paths[0].Hops[1] != 3 {
		t.Errorf("custom strategy: %v", got.Paths)
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{Hops: hops(0, 2, 3, 1)}
	if !reflect.DeepEqual(p.Via(), hops(2, 3)) {
		t.Errorf("via %v", p.Via())
	}
	if (Path{Hops: hops(0, 1)}).Via() != nil {
		t.Error("direct path should have nil via")
	}
	if !p.Equal(p) || p.Equal(Path{Hops: hops(0, 2, 1)}) {
		t.Error("Equal")
	}
	s := PathSet{Paths: []Path{p}}
	if best, ok := s.Best(); !ok || !best.Equal(p) {
		t.Error("Best")
	}
	if _, ok := (PathSet{}).Best(); ok {
		t.Error("empty Best must report !ok")
	}
	c := s.Clone()
	c.Paths[0] = Path{}
	if !s.Paths[0].Equal(p) {
		t.Error("Clone shares the path slice")
	}
	if LevelLink.String() != "link" || LevelAS.String() != "as" {
		t.Error("Level strings")
	}
}
