// Package pathset models *sets* of candidate paths between one host
// pair, the disjointness relationships between them, and pluggable
// selection strategies over the set — the vocabulary the paper's
// closing discussion calls for but its single-best-alternate
// methodology cannot express. The core engine produces PathSets (see
// core.Analyzer.Query); this package owns the representation so
// selection policy composes without touching the search machinery,
// in the style of scion-path-discovery's PathSet/CustomPathSelectAlg.
//
// Everything here is a pure function of its inputs with deterministic
// tie-breaks, so results are identical across runs and worker counts
// (the package is on repolint's detrand list).
package pathset

import (
	"math"
	"sort"

	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// Path is one concrete candidate path between a host pair, annotated
// with everything selection strategies score on.
type Path struct {
	// Hops is the full host sequence including both endpoints; a direct
	// path has exactly two hops.
	Hops []topology.HostID
	// Weight is the search engine's additive cost for the path under
	// the query's metric (for bandwidth queries, the negated throughput
	// so ascending weight still means best-first). Candidate sets are
	// ordered by ascending Weight.
	Weight float64
	// Value is the metric in natural units: ms for RTT/propagation,
	// loss probability for loss, kB/s for bandwidth.
	Value float64
	// Summary carries mean and variance for confidence intervals, when
	// the producing query computes them (zero otherwise).
	Summary stats.Summary
	// LatencyMs and Loss are cross-metric annotations: the path's
	// composed round-trip time and loss rate regardless of which metric
	// selected it. NaN when the producing query did not (or could not)
	// annotate them.
	LatencyMs float64
	Loss      float64
	// ASes lists the interior ASes the path traverses — every AS
	// observed on the constituent measured hops' traceroutes except the
	// two endpoint hosts' own ASes — sorted ascending and deduplicated.
	// Empty when the underlying dataset recorded no AS paths.
	ASes []topology.ASN
}

// Via returns the intermediate hosts (hops without the endpoints).
func (p Path) Via() []topology.HostID {
	if len(p.Hops) <= 2 {
		return nil
	}
	return p.Hops[1 : len(p.Hops)-1]
}

// Equal reports whether two paths traverse the same hop sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Hops) != len(q.Hops) {
		return false
	}
	for i := range p.Hops {
		if p.Hops[i] != q.Hops[i] {
			return false
		}
	}
	return true
}

// PathSet is an ordered collection of candidate paths for one host
// pair. Producers emit sets in ascending Weight order; strategies may
// reorder their copy.
type PathSet struct {
	Paths []Path
}

// Len returns the number of paths in the set.
func (s PathSet) Len() int { return len(s.Paths) }

// Empty reports whether the set has no paths.
func (s PathSet) Empty() bool { return len(s.Paths) == 0 }

// Best returns the first path of the set, ok=false when empty.
func (s PathSet) Best() (Path, bool) {
	if len(s.Paths) == 0 {
		return Path{}, false
	}
	return s.Paths[0], true
}

// Clone returns a set whose path slice is independent of the receiver
// (the Path contents — hop and AS slices — stay shared; strategies
// reorder and filter, they never mutate a path).
func (s PathSet) Clone() PathSet {
	return PathSet{Paths: append([]Path(nil), s.Paths...)}
}

// Level selects the granularity of disjointness comparison.
type Level int

const (
	// LevelLink compares the directed measured hops (host-pair edges)
	// the paths are composed from.
	LevelLink Level = iota
	// LevelAS compares the interior AS sets inferred from traceroutes,
	// per Qazi & Moors' disjoint-path selection methodology.
	LevelAS
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelLink:
		return "link"
	case LevelAS:
		return "as"
	default:
		return "level(?)"
	}
}

// Disjointness scores how little two paths share at the given level:
// 1 − |shared| / min(|a|, |b|), so 1 means fully disjoint and 0 means
// the smaller path's elements all appear in the larger one. At
// LevelLink the elements are directed hop edges; at LevelAS the
// interior AS sets. When either AS set is empty (no traceroute data)
// the paths share nothing observable and the score is 1.
func Disjointness(level Level, a, b Path) float64 {
	switch level {
	case LevelAS:
		return setDisjointness(a.ASes, b.ASes)
	default:
		return linkDisjointness(a, b)
	}
}

// linkDisjointness compares directed hop edges.
func linkDisjointness(a, b Path) float64 {
	na, nb := len(a.Hops)-1, len(b.Hops)-1
	if na <= 0 || nb <= 0 {
		return 1
	}
	shared := 0
	for i := 0; i+1 < len(a.Hops); i++ {
		for j := 0; j+1 < len(b.Hops); j++ {
			if a.Hops[i] == b.Hops[j] && a.Hops[i+1] == b.Hops[j+1] {
				shared++
				break
			}
		}
	}
	minN := na
	if nb < minN {
		minN = nb
	}
	return 1 - float64(shared)/float64(minN)
}

// setDisjointness compares two ascending-sorted AS sets.
func setDisjointness(a, b []topology.ASN) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	shared, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			shared++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	minN := len(a)
	if len(b) < minN {
		minN = len(b)
	}
	return 1 - float64(shared)/float64(minN)
}

// MaxDisjointness returns the best disjointness any path of the set
// achieves against ref (0 when the set is empty).
func (s PathSet) MaxDisjointness(level Level, ref Path) float64 {
	best := 0.0
	for _, p := range s.Paths {
		if d := Disjointness(level, ref, p); d > best {
			best = d
		}
	}
	return best
}

// FilterDisjoint returns the subset whose disjointness against ref at
// the given level is at least minD, preserving order.
func (s PathSet) FilterDisjoint(level Level, ref Path, minD float64) PathSet {
	if minD <= 0 {
		return s
	}
	out := PathSet{}
	for _, p := range s.Paths {
		if Disjointness(level, ref, p) >= minD {
			out.Paths = append(out.Paths, p)
		}
	}
	return out
}

// lexLess orders paths by hop sequence, the deterministic tie-break of
// every strategy: shorter prefix first, then lowest differing host.
func lexLess(a, b Path) bool {
	n := len(a.Hops)
	if len(b.Hops) < n {
		n = len(b.Hops)
	}
	for i := 0; i < n; i++ {
		if a.Hops[i] != b.Hops[i] {
			return a.Hops[i] < b.Hops[i]
		}
	}
	return len(a.Hops) < len(b.Hops)
}

// scoreLess orders by an ascending score with NaN last, falling back
// to Weight and finally the lexicographic hop order, so every sort in
// this package is a total, deterministic order.
func scoreLess(a, b Path, sa, sb float64) bool {
	an, bn := math.IsNaN(sa), math.IsNaN(sb)
	if an != bn {
		return bn // the known score wins
	}
	if !an && sa != sb {
		return sa < sb
	}
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	return lexLess(a, b)
}

// truncate keeps the first n paths (n <= 0 keeps all).
func truncate(s PathSet, n int) PathSet {
	if n > 0 && len(s.Paths) > n {
		s.Paths = s.Paths[:n]
	}
	return s
}

// sortBy returns a copy of set ordered by the score function.
func sortBy(set PathSet, score func(Path) float64) PathSet {
	out := set.Clone()
	sort.SliceStable(out.Paths, func(i, j int) bool {
		return scoreLess(out.Paths[i], out.Paths[j], score(out.Paths[i]), score(out.Paths[j]))
	})
	return out
}
