package pathset

// SelectionStrategy ranks a candidate PathSet and keeps the n best
// paths under some policy. ref is the pair's default path, which
// disjointness-aware strategies score against; n <= 0 keeps every
// path. Implementations must not mutate the input set and must be
// deterministic functions of their arguments (see the package's
// determinism contract).
type SelectionStrategy interface {
	// Name identifies the strategy in exhibit tables and logs.
	Name() string
	// Select returns the chosen paths, best first.
	Select(ref Path, set PathSet, n int) PathSet
}

// StrategyFunc adapts a plain function to SelectionStrategy — the
// analog of scion-path-discovery's CustomPathSelectAlg hook, for
// callers that want a one-off policy without a named type.
type StrategyFunc struct {
	Label string
	Fn    func(ref Path, set PathSet, n int) PathSet
}

// Name implements SelectionStrategy.
func (s StrategyFunc) Name() string { return s.Label }

// Select implements SelectionStrategy.
func (s StrategyFunc) Select(ref Path, set PathSet, n int) PathSet {
	return s.Fn(ref, set, n)
}

// ByLatency keeps the n paths with the lowest round-trip time. Paths
// without a latency annotation sort after annotated ones, falling back
// to the set's native Weight order.
type ByLatency struct{}

// Name implements SelectionStrategy.
func (ByLatency) Name() string { return "latency" }

// Select implements SelectionStrategy.
func (ByLatency) Select(ref Path, set PathSet, n int) PathSet {
	return truncate(sortBy(set, func(p Path) float64 { return p.LatencyMs }), n)
}

// ByLoss keeps the n paths with the lowest loss rate, unannotated
// paths last.
type ByLoss struct{}

// Name implements SelectionStrategy.
func (ByLoss) Name() string { return "loss" }

// Select implements SelectionStrategy.
func (ByLoss) Select(ref Path, set PathSet, n int) PathSet {
	return truncate(sortBy(set, func(p Path) float64 { return p.Loss }), n)
}

// MostDisjoint greedily picks the path maximizing the minimum
// disjointness against the default path and every path already chosen
// — the max-min construction of a mutually disjoint working set, per
// Qazi & Moors. Ties fall to the lower Weight, then the lexicographic
// hop order.
type MostDisjoint struct {
	Level Level
}

// Name implements SelectionStrategy.
func (s MostDisjoint) Name() string { return "disjoint-" + s.Level.String() }

// Select implements SelectionStrategy.
func (s MostDisjoint) Select(ref Path, set PathSet, n int) PathSet {
	if n <= 0 || n > len(set.Paths) {
		n = len(set.Paths)
	}
	remaining := set.Clone().Paths
	chosen := PathSet{Paths: make([]Path, 0, n)}
	against := []Path{ref}
	for len(chosen.Paths) < n && len(remaining) > 0 {
		bestIdx := -1
		bestScore := -1.0
		for i, p := range remaining {
			score := 1.0
			for _, q := range against {
				if d := Disjointness(s.Level, q, p); d < score {
					score = d
				}
			}
			if bestIdx == -1 || score > bestScore {
				bestIdx, bestScore = i, score
				continue
			}
			//repolint:allow floateq -- deterministic tie-break: equal max-min scores fall to weight, then hop order
			if score == bestScore {
				b := remaining[bestIdx]
				if p.Weight < b.Weight || (p.Weight == b.Weight && lexLess(p, b)) {
					bestIdx = i
				}
			}
		}
		pick := remaining[bestIdx]
		chosen.Paths = append(chosen.Paths, pick)
		against = append(against, pick)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return chosen
}
