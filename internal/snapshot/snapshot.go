// Package snapshot persists built experiment suites as versioned,
// deterministic flat binary files, so a serving process can warm-start
// by decoding campaign data instead of re-running the campaigns. The
// codec stores the six primary datasets (the expensive, seconds-to-
// minutes part of a build) in fixed-width little-endian sections behind
// a checksummed header; the measurement substrate — topologies, IGP
// tables, BGP routes, the congestion model — is a pure function of the
// suite configuration and is regenerated in milliseconds on load via
// experiments.Reassemble. Encoding is canonical: the same suite always
// produces the same bytes (paths and episode entries are written in
// sorted pair order, floats as IEEE-754 bit patterns), so snapshots can
// be compared, cached and content-addressed.
//
// File layout (all integers little-endian):
//
//	[0..8)    magic "PSELSNAP"
//	[8..12)   format version (uint32)
//	[12..16)  preset (int32)
//	[16..24)  seed (int64)
//	[24..28)  section count (uint32)
//	[28..32)  reserved
//	[32..40)  payload length (uint64)
//	[40..48)  CRC-64/ECMA of the payload (uint64)
//	[48..64)  reserved
//	[64..)    payload: section table, then 8-byte-aligned sections
//
// The section table holds one 32-byte entry per dataset (16-byte name,
// offset and length relative to the payload start), so a reader can
// locate any dataset without scanning the file — the layout is
// mmap-friendly: every numeric slab is fixed-width and 8-byte aligned.
// Version skew, a bad magic and a checksum mismatch are distinguished
// sentinel errors so callers can fall back to a cold rebuild.
package snapshot

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"sort"

	"pathsel/internal/dataset"
	"pathsel/internal/experiments"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// Version is the snapshot format version. It must be bumped whenever
// the byte layout changes or when the substrate generation code
// changes incompatibly (a snapshot only stores campaign data; the
// substrate is regenerated from the configuration, so a generation
// change would silently desynchronize old snapshots from fresh builds).
const Version = 1

// magic identifies a snapshot file.
var magic = [8]byte{'P', 'S', 'E', 'L', 'S', 'N', 'A', 'P'}

// headerSize is the fixed byte length of the file header.
const headerSize = 64

// crcTable is the CRC-64/ECMA table used for the payload checksum.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Sentinel errors callers use to distinguish "not a snapshot" and
// "stale snapshot" (both of which warrant a cold rebuild) from I/O
// failures.
var (
	ErrMagic    = errors.New("snapshot: not a suite snapshot")
	ErrVersion  = errors.New("snapshot: format version mismatch")
	ErrChecksum = errors.New("snapshot: payload checksum mismatch")
)

// FileName returns the canonical snapshot file name for a suite
// configuration; every component that persists or looks up snapshots
// routes through it so the on-disk keyspace is consistent.
func FileName(cfg experiments.Config) string {
	return fmt.Sprintf("suite-%s-seed%d.snap", cfg.Preset, cfg.Seed)
}

// --- encoding ---

// enc is an append-only little-endian buffer.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// pad8 aligns the buffer to an 8-byte boundary with zero bytes.
func (e *enc) pad8() {
	for len(e.b)%8 != 0 {
		e.b = append(e.b, 0)
	}
}

// sortedPairs returns m's keys in (Src, Dst) order; canonical encoding
// requires a deterministic walk over every map.
func sortedPairs(m map[dataset.PairKey]float64) []dataset.PairKey {
	keys := make([]dataset.PairKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	return keys
}

// encodeDataset appends one dataset section (without its table entry).
func encodeDataset(e *enc, d *dataset.Dataset) {
	keys := d.PairKeys()
	e.u32(uint32(len(d.Hosts)))
	e.u32(uint32(len(keys)))
	e.u32(uint32(len(d.Episodes)))
	e.u32(0) // reserved
	for _, h := range d.Hosts {
		e.i64(int64(h))
	}
	for _, k := range keys {
		p := d.Paths[k]
		e.i64(int64(k.Src))
		e.i64(int64(k.Dst))
		e.i64(int64(p.Measurements))
		e.u32(uint32(len(p.RTT)))
		e.u32(uint32(len(p.Loss)))
		e.u32(uint32(len(p.Transfers)))
		e.u32(uint32(len(p.ASPath)))
		for _, s := range p.RTT {
			e.f64(float64(s.At))
			e.f64(s.RTTMs)
		}
		for _, s := range p.Loss {
			e.f64(float64(s.At))
			if s.Lost {
				e.u8(1)
			} else {
				e.u8(0)
			}
		}
		e.pad8()
		for _, s := range p.Transfers {
			e.f64(float64(s.At))
			e.f64(s.MeanRTTMs)
			e.f64(s.LossRate)
			e.i64(int64(s.Packets))
		}
		for _, asn := range p.ASPath {
			e.i64(int64(asn))
		}
	}
	for _, ep := range d.Episodes {
		e.f64(float64(ep.At))
		e.u32(uint32(len(ep.RTTMs)))
		e.u32(0) // reserved
		for _, k := range sortedPairs(ep.RTTMs) {
			e.i64(int64(k.Src))
			e.i64(int64(k.Dst))
			e.f64(ep.RTTMs[k])
		}
	}
}

// Encode serializes the suite's campaign data to the snapshot format.
// The output is canonical: encoding the same suite (or a decoded copy
// of it) always yields identical bytes.
func Encode(s *experiments.Suite) ([]byte, error) {
	names := experiments.PrimaryDatasetNames()

	// Sections first, each encoded into the shared buffer at an aligned
	// offset, with table entries recorded as we go.
	type entry struct {
		name     string
		off, len uint64
	}
	table := make([]entry, 0, len(names))
	var body enc
	for _, name := range names {
		d, ok := s.Dataset(name)
		if !ok || d == nil {
			return nil, fmt.Errorf("snapshot: suite has no dataset %q", name)
		}
		if len(name) > 16 {
			return nil, fmt.Errorf("snapshot: dataset name %q exceeds 16 bytes", name)
		}
		body.pad8()
		start := len(body.b)
		encodeDataset(&body, d)
		table = append(table, entry{name: name, off: uint64(start), len: uint64(len(body.b) - start)})
	}

	// Payload = section table + section bodies; body offsets are
	// relative to the payload start, so shift them by the table size.
	tableSize := uint64(32 * len(table))
	var payload enc
	payload.b = make([]byte, 0, int(tableSize)+len(body.b))
	for _, ent := range table {
		var name [16]byte
		copy(name[:], ent.name)
		payload.b = append(payload.b, name[:]...)
		payload.u64(ent.off + tableSize)
		payload.u64(ent.len)
	}
	payload.b = append(payload.b, body.b...)

	var out enc
	out.b = make([]byte, 0, headerSize+len(payload.b))
	out.b = append(out.b, magic[:]...)
	out.u32(Version)
	out.u32(uint32(int32(s.Config.Preset)))
	out.i64(s.Config.Seed)
	out.u32(uint32(len(table)))
	out.u32(0)
	out.u64(uint64(len(payload.b)))
	out.u64(crc64.Checksum(payload.b, crcTable))
	out.u64(0)
	out.u64(0)
	out.b = append(out.b, payload.b...)
	return out.b, nil
}

// --- decoding ---

// dec is a bounds-checked little-endian reader.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) || n < 0 {
		d.fail("truncated payload at offset %d (+%d of %d)", d.off, n, len(d.b))
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) pad8() {
	for d.off%8 != 0 && d.err == nil {
		d.u8()
	}
}

// sliceCount guards a count field against hostile or corrupt lengths:
// every element occupies at least minBytes, so a count implying more
// bytes than remain is rejected before allocation.
func (d *dec) sliceCount(n uint32, minBytes int) int {
	if d.err != nil {
		return 0
	}
	if int(n) > (len(d.b)-d.off)/minBytes {
		d.fail("implausible element count %d at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

// decodeDataset parses one dataset section.
func decodeDataset(d *dec, name string) *dataset.Dataset {
	nHosts := d.sliceCount(d.u32(), 8)
	nPaths := d.sliceCount(d.u32(), 40)
	nEpisodes := d.sliceCount(d.u32(), 16)
	d.u32() // reserved
	hosts := make([]topology.HostID, 0, nHosts)
	for i := 0; i < nHosts; i++ {
		hosts = append(hosts, topology.HostID(d.i64()))
	}
	paths := make(map[dataset.PairKey]*dataset.PathData, nPaths)
	for i := 0; i < nPaths; i++ {
		k := dataset.PairKey{Src: topology.HostID(d.i64()), Dst: topology.HostID(d.i64())}
		p := &dataset.PathData{Key: k, Measurements: int(d.i64())}
		nRTT := d.sliceCount(d.u32(), 16)
		nLoss := d.sliceCount(d.u32(), 9)
		nTransfers := d.sliceCount(d.u32(), 32)
		nASPath := d.sliceCount(d.u32(), 8)
		if nRTT > 0 {
			p.RTT = make([]dataset.RTTSample, 0, nRTT)
			for j := 0; j < nRTT; j++ {
				p.RTT = append(p.RTT, dataset.RTTSample{At: netsim.Time(d.f64()), RTTMs: d.f64()})
			}
		}
		if nLoss > 0 {
			p.Loss = make([]dataset.LossSample, 0, nLoss)
			for j := 0; j < nLoss; j++ {
				p.Loss = append(p.Loss, dataset.LossSample{At: netsim.Time(d.f64()), Lost: d.u8() != 0})
			}
		}
		d.pad8()
		if nTransfers > 0 {
			p.Transfers = make([]dataset.TransferSample, 0, nTransfers)
			for j := 0; j < nTransfers; j++ {
				p.Transfers = append(p.Transfers, dataset.TransferSample{
					At: netsim.Time(d.f64()), MeanRTTMs: d.f64(), LossRate: d.f64(), Packets: int(d.i64()),
				})
			}
		}
		if nASPath > 0 {
			p.ASPath = make([]topology.ASN, 0, nASPath)
			for j := 0; j < nASPath; j++ {
				p.ASPath = append(p.ASPath, topology.ASN(d.i64()))
			}
		}
		if d.err != nil {
			return nil
		}
		paths[k] = p
	}
	var episodes []*dataset.Episode
	for i := 0; i < nEpisodes; i++ {
		ep := &dataset.Episode{At: netsim.Time(d.f64())}
		n := d.sliceCount(d.u32(), 24)
		d.u32() // reserved
		ep.RTTMs = make(map[dataset.PairKey]float64, n)
		for j := 0; j < n; j++ {
			k := dataset.PairKey{Src: topology.HostID(d.i64()), Dst: topology.HostID(d.i64())}
			ep.RTTMs[k] = d.f64()
		}
		if d.err != nil {
			return nil
		}
		episodes = append(episodes, ep)
	}
	if d.err != nil {
		return nil
	}
	// Hosts were written from an already-sorted slice, so constructing
	// the struct directly preserves the exact order and avoids the
	// re-sort in dataset.New.
	return &dataset.Dataset{Name: name, Hosts: hosts, Paths: paths, Episodes: episodes}
}

// Decode parses a snapshot produced by Encode, returning the suite
// configuration (seed and preset; concurrency is a runtime knob, not
// part of suite identity) and the primary datasets keyed by name.
func Decode(data []byte) (experiments.Config, map[string]*dataset.Dataset, error) {
	var cfg experiments.Config
	if len(data) < headerSize {
		return cfg, nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrMagic, len(data))
	}
	if [8]byte(data[:8]) != magic {
		return cfg, nil, ErrMagic
	}
	h := &dec{b: data, off: 8}
	version := h.u32()
	preset := int32(h.u32())
	seed := h.i64()
	sections := h.u32()
	h.u32()
	payloadLen := h.u64()
	sum := h.u64()
	if version != Version {
		return cfg, nil, fmt.Errorf("%w: file has version %d, this binary reads %d", ErrVersion, version, Version)
	}
	if uint64(len(data)-headerSize) != payloadLen {
		return cfg, nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrChecksum, len(data)-headerSize, payloadLen)
	}
	payload := data[headerSize:]
	if got := crc64.Checksum(payload, crcTable); got != sum {
		return cfg, nil, fmt.Errorf("%w: computed %016x, header says %016x", ErrChecksum, got, sum)
	}
	cfg.Seed = seed
	cfg.Preset = experiments.Preset(preset)

	if int(sections) > len(payload)/32 {
		return cfg, nil, fmt.Errorf("snapshot: implausible section count %d", sections)
	}
	out := make(map[string]*dataset.Dataset, sections)
	t := &dec{b: payload}
	for i := 0; i < int(sections); i++ {
		nameBytes := t.take(16)
		off := t.u64()
		length := t.u64()
		if t.err != nil {
			return cfg, nil, t.err
		}
		name := string(trimZero(nameBytes))
		if off > uint64(len(payload)) || off+length > uint64(len(payload)) || off+length < off {
			return cfg, nil, fmt.Errorf("snapshot: section %q out of bounds (off %d len %d of %d)", name, off, length, len(payload))
		}
		sd := &dec{b: payload[off : off+length]}
		ds := decodeDataset(sd, name)
		if sd.err != nil {
			return cfg, nil, fmt.Errorf("section %q: %w", name, sd.err)
		}
		out[name] = ds
	}
	return cfg, out, nil
}

// trimZero strips the zero padding of a fixed-width name field.
func trimZero(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}

// Restore decodes a snapshot and reassembles the full suite: datasets
// from the file, substrate regenerated from the embedded configuration.
// concurrency is stamped into the restored suite's config (it is a
// runtime knob, deliberately not part of the snapshot identity).
func Restore(ctx context.Context, data []byte, concurrency int) (*experiments.Suite, error) {
	cfg, primary, err := Decode(data)
	if err != nil {
		return nil, err
	}
	cfg.Concurrency = concurrency
	return experiments.Reassemble(ctx, cfg, primary)
}

// Write encodes the suite and persists it atomically (temp file, then
// rename) under dir using the canonical FileName.
func Write(dir string, s *experiments.Suite) (string, error) {
	data, err := Encode(s)
	if err != nil {
		return "", err
	}
	path := dir + string(os.PathSeparator) + FileName(s.Config)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot: rename %s: %w", path, err)
	}
	return path, nil
}

// Load reads the snapshot for cfg from dir and restores the suite.
// os.IsNotExist(err) distinguishes a cache miss from a corrupt file.
func Load(ctx context.Context, dir string, cfg experiments.Config) (*experiments.Suite, error) {
	data, err := os.ReadFile(dir + string(os.PathSeparator) + FileName(cfg))
	if err != nil {
		return nil, err
	}
	s, err := Restore(ctx, data, cfg.Concurrency)
	if err != nil {
		return nil, err
	}
	if s.Config.Seed != cfg.Seed || s.Config.Preset != cfg.Preset {
		return nil, fmt.Errorf("snapshot: file is for seed %d preset %s, want seed %d preset %s",
			s.Config.Seed, s.Config.Preset, cfg.Seed, cfg.Preset)
	}
	return s, nil
}
