package snapshot

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pathsel/internal/experiments"
)

// quickSuite builds (once) the quick-preset suite shared by the tests.
var quickSuite = sync.OnceValues(func() (*experiments.Suite, error) {
	return experiments.Build(experiments.Config{Seed: 1, Preset: experiments.Quick})
})

func buildQuick(t *testing.T) *experiments.Suite {
	t.Helper()
	s, err := quickSuite()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

// TestEncodeCanonical: encoding the same suite twice yields identical
// bytes (the format has no nondeterministic map walks or timestamps).
func TestEncodeCanonical(t *testing.T) {
	s := buildQuick(t)
	a, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same suite differ")
	}
}

// TestRoundTripReEncode: encode → decode → reassemble → re-encode is
// byte-identical, so a snapshot survives arbitrarily many load/persist
// cycles without drifting.
func TestRoundTripReEncode(t *testing.T) {
	s := buildQuick(t)
	first, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(context.Background(), first, s.Config.Concurrency)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	second, err := Encode(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode differs: first %d bytes, second %d bytes", len(first), len(second))
	}
}

// jsonBytes marshals v, failing the test on error.
func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// compareSuites asserts that every table and figure driver produces
// byte-identical output on the two suites.
func compareSuites(t *testing.T, fresh, restored *experiments.Suite) {
	t.Helper()
	if got, want := jsonBytes(t, experiments.Table1(restored)), jsonBytes(t, experiments.Table1(fresh)); !bytes.Equal(got, want) {
		t.Errorf("Table1 differs:\nfresh:    %s\nrestored: %s", want, got)
	}
	tables := map[string]func(*experiments.Suite) ([]experiments.VerdictRow, error){
		"Table2": experiments.Table2, "Table3": experiments.Table3,
	}
	for name, fn := range tables {
		w, err := fn(fresh)
		if err != nil {
			t.Fatalf("%s(fresh): %v", name, err)
		}
		g, err := fn(restored)
		if err != nil {
			t.Fatalf("%s(restored): %v", name, err)
		}
		if !bytes.Equal(jsonBytes(t, g), jsonBytes(t, w)) {
			t.Errorf("%s differs", name)
		}
	}
	figures := map[string]func(*experiments.Suite) ([]experiments.Series, error){
		"Figure1": experiments.Figure1, "Figure2": experiments.Figure2,
		"Figure3": experiments.Figure3, "Figure4": experiments.Figure4,
		"Figure5": experiments.Figure5, "Figure6": experiments.Figure6,
		"Figure9": experiments.Figure9, "Figure10": experiments.Figure10,
		"Figure11": experiments.Figure11, "Figure15": experiments.Figure15,
	}
	for name, fn := range figures {
		w, err := fn(fresh)
		if err != nil {
			t.Fatalf("%s(fresh): %v", name, err)
		}
		g, err := fn(restored)
		if err != nil {
			t.Fatalf("%s(restored): %v", name, err)
		}
		if !bytes.Equal(jsonBytes(t, g), jsonBytes(t, w)) {
			t.Errorf("%s differs", name)
		}
	}
}

// TestRestoredSuiteFigureIdentity: every figure and table response from
// a snapshot-restored quick suite is byte-identical to the freshly
// built one — the acceptance invariant the serve warm path relies on.
func TestRestoredSuiteFigureIdentity(t *testing.T) {
	fresh := buildQuick(t)
	data, err := Encode(fresh)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(context.Background(), data, fresh.Config.Concurrency)
	if err != nil {
		t.Fatal(err)
	}
	compareSuites(t, fresh, restored)
}

// TestRestoredSuiteFigureIdentityFull repeats the identity check at the
// full preset (the paper's real campaign sizes). Skipped under -short:
// it pays one ~10 s cold build.
func TestRestoredSuiteFigureIdentityFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-preset build takes ~10s")
	}
	fresh, err := experiments.Build(experiments.Config{Seed: 1, Preset: experiments.Full})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Encode(fresh)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(context.Background(), first, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Encode(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("full-preset re-encode differs")
	}
	compareSuites(t, fresh, restored)
}

func TestWriteLoad(t *testing.T) {
	s := buildQuick(t)
	dir := t.TempDir()
	path, err := Write(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(s.Config) {
		t.Errorf("wrote %s, want file name %s", path, FileName(s.Config))
	}
	got, err := Load(context.Background(), dir, s.Config)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.Seed != s.Config.Seed || got.Config.Preset != s.Config.Preset {
		t.Errorf("loaded config %+v, want %+v", got.Config, s.Config)
	}
	if len(got.UW3.Paths) != len(s.UW3.Paths) {
		t.Errorf("restored UW3 has %d paths, want %d", len(got.UW3.Paths), len(s.UW3.Paths))
	}
	// A miss is os.IsNotExist, so callers can fall back to a build.
	if _, err := Load(context.Background(), dir, experiments.Config{Seed: 99, Preset: experiments.Quick}); !os.IsNotExist(err) {
		t.Errorf("missing snapshot gave %v, want IsNotExist", err)
	}
}

// TestDecodeRejectsCorruption: magic, version and checksum failures are
// the documented sentinel errors, and arbitrary corruption never
// panics.
func TestDecodeRejectsCorruption(t *testing.T) {
	s := buildQuick(t)
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, err := Decode(bad); err == nil || !isErr(err, ErrMagic) {
		t.Errorf("bad magic gave %v, want ErrMagic", err)
	}

	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[8:], Version+7)
	if _, _, err := Decode(bad); err == nil || !isErr(err, ErrVersion) {
		t.Errorf("version skew gave %v, want ErrVersion", err)
	}

	bad = append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xff
	if _, _, err := Decode(bad); err == nil || !isErr(err, ErrChecksum) {
		t.Errorf("payload corruption gave %v, want ErrChecksum", err)
	}

	if _, _, err := Decode(data[:40]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := Decode(data[:len(data)-9]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func isErr(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestReassembleMissingDataset: a snapshot that lost a section is
// rejected instead of producing a suite with nil datasets.
func TestReassembleMissingDataset(t *testing.T) {
	s := buildQuick(t)
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	_, primary, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	delete(primary, "N2")
	if _, err := experiments.Reassemble(context.Background(), s.Config, primary); err == nil {
		t.Fatal("reassemble with a missing dataset succeeded")
	}
}

// FuzzDecode drives the decoder with arbitrary bytes: it must reject or
// accept but never panic or over-allocate.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("PSELSNAP"))
	f.Add(make([]byte, 64))
	f.Add([]byte("PSELSNAP\x01\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, ds, err := Decode(data)
		if err == nil {
			// Accepted input must at least carry a coherent config.
			_ = cfg
			_ = ds
		}
	})
}
