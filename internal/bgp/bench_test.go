package bgp

import (
	"testing"

	"pathsel/internal/topology"
)

func BenchmarkCompute(b *testing.B) {
	for _, era := range []topology.Era{topology.Era1995, topology.Era1999} {
		b.Run(era.String(), func(b *testing.B) {
			top, err := topology.Generate(topology.DefaultConfig(era))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(top); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
