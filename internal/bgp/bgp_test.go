package bgp

import (
	"testing"

	"pathsel/internal/topology"
)

func compute(t *testing.T, era topology.Era) (*topology.Topology, *Table) {
	t.Helper()
	top, err := topology.Generate(topology.DefaultConfig(era))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	table, err := Compute(top)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return top, table
}

func TestFullReachability(t *testing.T) {
	for _, era := range []topology.Era{topology.Era1995, topology.Era1999} {
		top, table := compute(t, era)
		for _, src := range top.ASList {
			for _, dst := range top.ASList {
				if table.Route(src.ASN, dst.ASN) == nil {
					t.Fatalf("%v: no route %d -> %d", era, src.ASN, dst.ASN)
				}
			}
		}
	}
}

func TestPathsStartAndEndCorrectly(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	for _, src := range top.ASList {
		for _, dst := range top.ASList {
			p := table.ASPath(src.ASN, dst.ASN)
			if p[0] != src.ASN || p[len(p)-1] != dst.ASN {
				t.Fatalf("path %v does not run %d -> %d", p, src.ASN, dst.ASN)
			}
		}
	}
}

func TestPathsAreLoopFree(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	for _, src := range top.ASList {
		for _, dst := range top.ASList {
			p := table.ASPath(src.ASN, dst.ASN)
			seen := map[topology.ASN]bool{}
			for _, a := range p {
				if seen[a] {
					t.Fatalf("loop in path %v", p)
				}
				seen[a] = true
			}
		}
	}
}

func TestPathsFollowASAdjacency(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	for _, src := range top.ASList {
		for _, dst := range top.ASList {
			p := table.ASPath(src.ASN, dst.ASN)
			for i := 0; i+1 < len(p); i++ {
				if len(top.InterASLinks(p[i], p[i+1])) == 0 {
					t.Fatalf("path %v uses nonexistent adjacency %d-%d", p, p[i], p[i+1])
				}
			}
		}
	}
}

// TestForwardingConsistency verifies the fixpoint property: if A routes to
// D via next-hop N, then A's path equals A prepended to N's path. This is
// what makes hop-by-hop forwarding loop-free.
func TestForwardingConsistency(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	for _, src := range top.ASList {
		for _, dst := range top.ASList {
			if src.ASN == dst.ASN {
				continue
			}
			p := table.ASPath(src.ASN, dst.ASN)
			next := p[1]
			np := table.ASPath(next, dst.ASN)
			if len(np) != len(p)-1 {
				t.Fatalf("inconsistent: %d->%d path %v but next hop %d has path %v", src.ASN, dst.ASN, p, next, np)
			}
			for i := range np {
				if np[i] != p[i+1] {
					t.Fatalf("inconsistent: %d->%d path %v vs next-hop path %v", src.ASN, dst.ASN, p, np)
				}
			}
		}
	}
}

// TestValleyFree checks the Gao–Rexford property on every converged path:
// once a path goes "down" (provider-to-customer) or crosses a peer edge,
// it may never go "up" or cross another peer edge again.
func TestValleyFree(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	rel := func(a, b topology.ASN) topology.Relationship {
		asA := top.AS(a)
		for _, c := range asA.Customers {
			if c == b {
				return topology.ProviderToCustomer
			}
		}
		for _, p := range asA.Providers {
			if p == b {
				return topology.CustomerToProvider
			}
		}
		return topology.PeerToPeer
	}
	for _, src := range top.ASList {
		for _, dst := range top.ASList {
			p := table.ASPath(src.ASN, dst.ASN)
			phase := 0 // 0 = up, 1 = after peer, 2 = down
			for i := 0; i+1 < len(p); i++ {
				switch rel(p[i], p[i+1]) {
				case topology.CustomerToProvider:
					if phase != 0 {
						t.Fatalf("valley in path %v at %d", p, i)
					}
				case topology.PeerToPeer:
					if phase >= 1 {
						t.Fatalf("second peer edge in path %v at %d", p, i)
					}
					phase = 1
				case topology.ProviderToCustomer:
					phase = 2
				}
			}
		}
	}
}

// TestCustomerPreferredOverProvider: when a destination is reachable via a
// customer, the selected route class must be ViaCustomer (Gao-Rexford
// preference ordering), regardless of path lengths.
func TestClassPreferenceRespected(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	for _, src := range top.ASList {
		for _, dst := range top.ASList {
			if src.ASN == dst.ASN {
				continue
			}
			r := table.Route(src.ASN, dst.ASN)
			// The chosen class must be at least as preferred as any
			// single-hop alternative we can verify directly: if dst is a
			// direct customer, the route must be class ViaCustomer.
			for _, c := range src.Customers {
				if c == dst.ASN && r.Class != ViaCustomer {
					t.Fatalf("%d -> customer %d selected %v route %v", src.ASN, dst.ASN, r.Class, r.Path)
				}
			}
		}
	}
}

func TestNextAS(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	src, dst := top.ASList[0].ASN, top.ASList[len(top.ASList)-1].ASN
	next, ok := table.NextAS(src, dst)
	if !ok {
		t.Fatal("no next AS")
	}
	p := table.ASPath(src, dst)
	if next != p[1] {
		t.Fatalf("NextAS = %d, path %v", next, p)
	}
	if n, ok := table.NextAS(src, src); !ok || n != src {
		t.Fatalf("NextAS to self = %d,%v", n, ok)
	}
	if _, ok := table.NextAS(-1, dst); ok {
		t.Fatal("NextAS from unknown AS should fail")
	}
}

func TestDeterminism(t *testing.T) {
	top1, t1 := compute(t, topology.Era1999)
	_, t2 := compute(t, topology.Era1999)
	for _, src := range top1.ASList {
		for _, dst := range top1.ASList {
			p1 := t1.ASPath(src.ASN, dst.ASN)
			p2 := t2.ASPath(src.ASN, dst.ASN)
			if len(p1) != len(p2) {
				t.Fatalf("nondeterministic path %d->%d: %v vs %v", src.ASN, dst.ASN, p1, p2)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("nondeterministic path %d->%d: %v vs %v", src.ASN, dst.ASN, p1, p2)
				}
			}
		}
	}
}

// TestPolicyCausesInflation verifies the premise of the whole study: BGP
// paths are sometimes longer (in AS hops) than the shortest AS-graph path,
// because policy filtering forbids valleys.
func TestPolicyCausesInflation(t *testing.T) {
	top, table := compute(t, topology.Era1995)
	// Unrestricted shortest AS-path by BFS on the undirected AS graph.
	inflated := 0
	total := 0
	for _, src := range top.ASList {
		dist := bfsAS(top, src.ASN)
		for _, dst := range top.ASList {
			if src.ASN == dst.ASN {
				continue
			}
			total++
			p := table.ASPath(src.ASN, dst.ASN)
			if len(p)-1 > dist[dst.ASN] {
				inflated++
			}
		}
	}
	if inflated == 0 {
		t.Error("expected some policy-inflated AS paths, found none")
	}
	t.Logf("inflated %d of %d AS paths (%.1f%%)", inflated, total, 100*float64(inflated)/float64(total))
}

func bfsAS(top *topology.Topology, src topology.ASN) map[topology.ASN]int {
	dist := map[topology.ASN]int{src: 0}
	queue := []topology.ASN{src}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, n := range top.NeighborASes(a) {
			if _, ok := dist[n]; !ok {
				dist[n] = dist[a] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

func TestRouteClassString(t *testing.T) {
	for c, want := range map[RouteClass]string{
		ViaProvider: "via-provider", ViaPeer: "via-peer",
		ViaCustomer: "via-customer", Own: "own", RouteClass(8): "class(8)",
	} {
		if c.String() != want {
			t.Errorf("RouteClass(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestOwnRoute(t *testing.T) {
	top, table := compute(t, topology.Era1999)
	for _, as := range top.ASList {
		r := table.Route(as.ASN, as.ASN)
		if r.Class != Own || len(r.Path) != 1 || r.Path[0] != as.ASN {
			t.Fatalf("self route of %d is %+v", as.ASN, r)
		}
	}
}
