// Package bgp computes inter-AS routes with a BGP-style decision process.
//
// As the paper's Section 3 describes, BGP does not minimize a global
// performance metric. Route selection here follows the standard policy
// model: routes learned from customers are preferred over routes learned
// from peers, which are preferred over routes learned from providers
// (Gao–Rexford local preference); ties are broken by AS-path length and
// then lowest neighbor ASN. Per-AS LocalPrefBias perturbs preference
// within a relationship class, modeling contract- and cost-driven
// policies that ignore performance. Export filtering is valley-free:
// routes learned from a peer or provider are re-advertised only to
// customers.
//
// The computation is a synchronous path-vector iteration to fixpoint,
// with AS-path loop prevention. Under Gao–Rexford preferences and an
// acyclic provider graph (both guaranteed by the topology generator) the
// iteration converges.
package bgp

import (
	"fmt"

	"pathsel/internal/topology"
)

// RouteClass records how a route was learned, which determines both its
// local preference and whether it is exported to non-customers.
type RouteClass int

const (
	// ViaProvider routes were learned from a provider (lowest pref).
	ViaProvider RouteClass = iota
	// ViaPeer routes were learned from a settlement-free peer.
	ViaPeer
	// ViaCustomer routes were learned from a customer (highest pref,
	// since customer traffic is revenue).
	ViaCustomer
	// Own is the AS's route to itself.
	Own
)

// String implements fmt.Stringer.
func (c RouteClass) String() string {
	switch c {
	case ViaProvider:
		return "via-provider"
	case ViaPeer:
		return "via-peer"
	case ViaCustomer:
		return "via-customer"
	case Own:
		return "own"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Route is a converged BGP route from an AS to a destination AS.
type Route struct {
	// Path is the AS path, starting at the route's owner and ending at
	// the destination.
	Path []topology.ASN
	// Class is how the first hop of the path was learned.
	Class RouteClass
}

// NextAS returns the next AS on the path, or the destination itself for
// the trivial route.
func (r *Route) NextAS() topology.ASN {
	if len(r.Path) >= 2 {
		return r.Path[1]
	}
	return r.Path[0]
}

// Table holds converged routes for all (source AS, destination AS) pairs.
type Table struct {
	top    *topology.Topology
	routes map[topology.ASN]map[topology.ASN]*Route // [src][dst]
	// Rounds is the number of synchronous iterations needed to converge,
	// maximized over destinations (exported for tests and diagnostics).
	Rounds int
}

// Compute runs the path-vector protocol to convergence over the AS graph.
func Compute(top *topology.Topology) (*Table, error) {
	return ComputeExcluding(top, nil)
}

// AdjacencyKey identifies an undirected AS adjacency, with the lower ASN
// first.
type AdjacencyKey [2]topology.ASN

// MakeAdjacencyKey normalizes an AS pair into an AdjacencyKey.
func MakeAdjacencyKey(a, b topology.ASN) AdjacencyKey {
	if a > b {
		a, b = b, a
	}
	return AdjacencyKey{a, b}
}

// ComputeExcluding converges the protocol with the given AS adjacencies
// treated as down (failed BGP sessions); the dynamics package uses this
// to model reconvergence after link failures. Routes to destinations
// that become unreachable are simply absent from the table.
func ComputeExcluding(top *topology.Topology, failed map[AdjacencyKey]bool) (*Table, error) {
	t := &Table{
		top:    top,
		routes: make(map[topology.ASN]map[topology.ASN]*Route, len(top.ASList)),
	}
	for _, as := range top.ASList {
		t.routes[as.ASN] = make(map[topology.ASN]*Route, len(top.ASList))
	}
	// neighbors[A] lists (neighbor, relationship-of-neighbor-to-A) pairs
	// in deterministic order: the relationship is from A's perspective
	// (what the neighbor is to A).
	type neigh struct {
		asn   topology.ASN
		class RouteClass // class a route learned from this neighbor gets
	}
	up := func(a, b topology.ASN) bool {
		return failed == nil || !failed[MakeAdjacencyKey(a, b)]
	}
	neighbors := map[topology.ASN][]neigh{}
	for _, as := range top.ASList {
		var ns []neigh
		for _, c := range as.Customers {
			if up(as.ASN, c) {
				ns = append(ns, neigh{c, ViaCustomer})
			}
		}
		for _, p := range as.Peers {
			if up(as.ASN, p) {
				ns = append(ns, neigh{p, ViaPeer})
			}
		}
		for _, p := range as.Providers {
			if up(as.ASN, p) {
				ns = append(ns, neigh{p, ViaProvider})
			}
		}
		neighbors[as.ASN] = ns
	}

	maxRounds := 4 * len(top.ASList)
	for _, dest := range top.ASList {
		d := dest.ASN
		t.routes[d][d] = &Route{Path: []topology.ASN{d}, Class: Own}
		converged := false
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, as := range top.ASList {
				a := as.ASN
				if a == d {
					continue
				}
				// Recompute the selection from scratch so that a
				// neighbor changing its route cascades correctly; at
				// the fixpoint every rib path therefore matches the
				// hop-by-hop forwarding path.
				var best *Route
				for _, n := range neighbors[a] {
					nr := t.routes[n.asn][d]
					if nr == nil {
						continue
					}
					if !exports(nr.Class, n.class) {
						continue
					}
					if containsAS(nr.Path, a) {
						continue // loop prevention
					}
					cand := &Route{Path: prepend(a, nr.Path), Class: n.class}
					if better(top.AS(a), cand, best) {
						best = cand
					}
				}
				if !sameRoute(best, t.routes[a][d]) {
					t.routes[a][d] = best
					changed = true
				}
			}
			if !changed {
				converged = true
				if round > t.Rounds {
					t.Rounds = round
				}
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("bgp: no convergence for destination AS %d after %d rounds", d, maxRounds)
		}
	}
	return t, nil
}

// exports reports whether a route of class routeClass is advertised to a
// neighbor that regards the advertiser as neighborIs (valley-free rule:
// everything goes to customers; only own and customer routes go to peers
// and providers).
//
// neighborIs is the class a route learned from the advertiser would have
// at the receiver: ViaCustomer means the receiver is the advertiser's
// provider (the advertiser is the receiver's customer), and so on.
func exports(routeClass, neighborIs RouteClass) bool {
	// If the receiver learns routes from the advertiser as ViaCustomer
	// or ViaPeer, the advertiser is sending to a provider or peer: only
	// own/customer routes may flow. If the receiver learns them as
	// ViaProvider, the advertiser is sending to its customer: all routes
	// flow.
	if neighborIs == ViaProvider {
		return true
	}
	return routeClass == Own || routeClass == ViaCustomer
}

// better reports whether candidate should replace current for owner.
func better(owner *topology.AS, cand, cur *Route) bool {
	if cur == nil {
		return true
	}
	cp, xp := pref(owner, cand), pref(owner, cur)
	if cp != xp {
		return cp > xp
	}
	if len(cand.Path) != len(cur.Path) {
		return len(cand.Path) < len(cur.Path)
	}
	return cand.NextAS() < cur.NextAS()
}

// pref computes local preference: relationship class dominates, with the
// per-neighbor policy bias adjusting within a class.
func pref(owner *topology.AS, r *Route) int {
	base := 0
	switch r.Class {
	case ViaCustomer:
		base = 30
	case ViaPeer:
		base = 20
	case ViaProvider:
		base = 10
	case Own:
		base = 100
	}
	return base + owner.LocalPrefBias[r.NextAS()]
}

func containsAS(path []topology.ASN, a topology.ASN) bool {
	for _, p := range path {
		if p == a {
			return true
		}
	}
	return false
}

func prepend(a topology.ASN, path []topology.ASN) []topology.ASN {
	out := make([]topology.ASN, 0, len(path)+1)
	out = append(out, a)
	out = append(out, path...)
	return out
}

func sameRoute(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Class != b.Class || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// Route returns the converged route from src to dst, or nil if none.
func (t *Table) Route(src, dst topology.ASN) *Route { return t.routes[src][dst] }

// NextAS returns the next AS on the path from src to dst.
func (t *Table) NextAS(src, dst topology.ASN) (topology.ASN, bool) {
	r := t.routes[src][dst]
	if r == nil {
		return 0, false
	}
	return r.NextAS(), true
}

// ASPath returns the full AS path from src to dst (starting with src,
// ending with dst), or nil if unreachable.
func (t *Table) ASPath(src, dst topology.ASN) []topology.ASN {
	r := t.routes[src][dst]
	if r == nil {
		return nil
	}
	return r.Path
}
