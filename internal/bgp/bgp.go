// Package bgp computes inter-AS routes with a BGP-style decision process.
//
// As the paper's Section 3 describes, BGP does not minimize a global
// performance metric. Route selection here follows the standard policy
// model: routes learned from customers are preferred over routes learned
// from peers, which are preferred over routes learned from providers
// (Gao–Rexford local preference); ties are broken by AS-path length and
// then lowest neighbor ASN. Per-AS LocalPrefBias perturbs preference
// within a relationship class, modeling contract- and cost-driven
// policies that ignore performance. Export filtering is valley-free:
// routes learned from a peer or provider are re-advertised only to
// customers.
//
// The computation is a synchronous path-vector iteration to fixpoint,
// with AS-path loop prevention. Under Gao–Rexford preferences and an
// acyclic provider graph (both guaranteed by the topology generator) the
// iteration converges.
//
// Destinations converge independently, so the table computes one
// destination column at a time, on first use, from a packed neighbor
// adjacency (CSR offsets over precomputed per-neighbor preferences).
// A converged column stores only next-hop/class/length per source AS —
// full paths materialize on demand by walking next hops, which at the
// fixpoint reproduces exactly the rib path the iteration selected.
// Lazy faulting is safe for concurrent readers; a campaign that touches
// only a few destination ASes pays for only those columns.
package bgp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pathsel/internal/topology"
)

// RouteClass records how a route was learned, which determines both its
// local preference and whether it is exported to non-customers.
type RouteClass int

const (
	// ViaProvider routes were learned from a provider (lowest pref).
	ViaProvider RouteClass = iota
	// ViaPeer routes were learned from a settlement-free peer.
	ViaPeer
	// ViaCustomer routes were learned from a customer (highest pref,
	// since customer traffic is revenue).
	ViaCustomer
	// Own is the AS's route to itself.
	Own
)

// String implements fmt.Stringer.
func (c RouteClass) String() string {
	switch c {
	case ViaProvider:
		return "via-provider"
	case ViaPeer:
		return "via-peer"
	case ViaCustomer:
		return "via-customer"
	case Own:
		return "own"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Route is a converged BGP route from an AS to a destination AS.
type Route struct {
	// Path is the AS path, starting at the route's owner and ending at
	// the destination.
	Path []topology.ASN
	// Class is how the first hop of the path was learned.
	Class RouteClass
}

// NextAS returns the next AS on the path, or the destination itself for
// the trivial route.
func (r *Route) NextAS() topology.ASN {
	if len(r.Path) >= 2 {
		return r.Path[1]
	}
	return r.Path[0]
}

// col is one converged destination column over AS indices: for each
// source AS i, the next-hop AS index (noRoute when unreachable, the
// destination's own index at the destination), the route class, and the
// AS-path length. Columns are immutable once ready.
type col struct {
	done  chan struct{} // closed once the column is filled
	ready atomic.Bool   // set after fill; lock-free fast path
	err   error         // non-convergence (defensive; see computeColumn)

	next  []int32
	class []RouteClass
	plen  []int32
}

const noRoute = int32(-1)

// Table holds converged routes for all (source AS, destination AS)
// pairs, computed per destination on first access.
type Table struct {
	top     *topology.Topology
	asns    []topology.ASN // AS index -> ASN, in ASList order
	asIndex map[topology.ASN]int32

	// Packed neighbor adjacency: AS i's usable neighbor sessions occupy
	// slots nOff[i]:nOff[i+1], in the old customers-peers-providers
	// order. nPref[s] precomputes the local preference (class base plus
	// LocalPrefBias) of any route learned over slot s.
	nOff   []int32
	nAS    []int32
	nClass []RouteClass
	nPref  []int32

	cols []atomic.Pointer[col]

	mu      sync.Mutex // serializes column creation and Rounds updates
	scratch sync.Pool  // *colScratch

	// Rounds is the number of synchronous iterations needed to converge,
	// maximized over the destination columns computed so far (exported
	// for tests and diagnostics).
	Rounds int
}

// Compute runs the path-vector protocol to convergence over the AS graph.
func Compute(top *topology.Topology) (*Table, error) {
	return ComputeExcluding(top, nil)
}

// AdjacencyKey identifies an undirected AS adjacency, with the lower ASN
// first.
type AdjacencyKey [2]topology.ASN

// MakeAdjacencyKey normalizes an AS pair into an AdjacencyKey.
func MakeAdjacencyKey(a, b topology.ASN) AdjacencyKey {
	if a > b {
		a, b = b, a
	}
	return AdjacencyKey{a, b}
}

// ComputeExcluding builds a table with the given AS adjacencies treated
// as down (failed BGP sessions); the dynamics package uses this to model
// reconvergence after link failures. Routes to destinations that become
// unreachable are simply absent from the table. Destination columns
// converge lazily on first lookup; a destination that fails to converge
// (impossible for generated topologies, which satisfy Gao–Rexford)
// reports all its routes as absent.
func ComputeExcluding(top *topology.Topology, failed map[AdjacencyKey]bool) (*Table, error) {
	n := len(top.ASList)
	t := &Table{
		top:     top,
		asns:    make([]topology.ASN, n),
		asIndex: make(map[topology.ASN]int32, n),
		nOff:    make([]int32, n+1),
		cols:    make([]atomic.Pointer[col], n),
	}
	for i, as := range top.ASList {
		t.asns[i] = as.ASN
		t.asIndex[as.ASN] = int32(i)
	}
	up := func(a, b topology.ASN) bool {
		return failed == nil || !failed[MakeAdjacencyKey(a, b)]
	}
	for i, as := range top.ASList {
		add := func(nb topology.ASN, class RouteClass) {
			if !up(as.ASN, nb) {
				return
			}
			base := 0
			switch class {
			case ViaCustomer:
				base = 30
			case ViaPeer:
				base = 20
			case ViaProvider:
				base = 10
			}
			t.nAS = append(t.nAS, t.asIndex[nb])
			t.nClass = append(t.nClass, class)
			t.nPref = append(t.nPref, int32(base+as.LocalPrefBias[nb]))
		}
		for _, c := range as.Customers {
			add(c, ViaCustomer)
		}
		for _, p := range as.Peers {
			add(p, ViaPeer)
		}
		for _, p := range as.Providers {
			add(p, ViaProvider)
		}
		t.nOff[i+1] = int32(len(t.nAS))
	}
	return t, nil
}

// colScratch is the per-column convergence state: materialized paths per
// source AS, exactly as the synchronous iteration stored them before
// columns were packed. Pooled across column computations.
type colScratch struct {
	paths [][]topology.ASN
	class []RouteClass
}

// column returns the converged column for destination index di, faulting
// it in on first use. Concurrent callers for the same destination share
// one computation. Returns nil if the column failed to converge.
func (t *Table) column(di int32) *col {
	c := t.cols[di].Load()
	if c == nil {
		t.mu.Lock()
		c = t.cols[di].Load()
		if c == nil {
			c = &col{done: make(chan struct{})}
			t.cols[di].Store(c)
			t.mu.Unlock()
			t.computeColumn(di, c)
			c.ready.Store(true)
			close(c.done)
		} else {
			t.mu.Unlock()
		}
	}
	if !c.ready.Load() {
		<-c.done
	}
	if c.err != nil {
		return nil
	}
	return c
}

// computeColumn runs the synchronous path-vector iteration for one
// destination to fixpoint and packs the result. The iteration is the
// original whole-table algorithm restricted to one destination: ASes
// recompute their selection from scratch each round, in ASList order,
// reading neighbors' current (frozen-copy) paths, so the fixpoint — and
// every intermediate round — matches the eager computation exactly.
func (t *Table) computeColumn(di int32, c *col) {
	n := len(t.asns)
	s, _ := t.scratch.Get().(*colScratch)
	if s == nil {
		s = &colScratch{}
	}
	if cap(s.paths) < n {
		s.paths = make([][]topology.ASN, n)
		s.class = make([]RouteClass, n)
	}
	s.paths = s.paths[:n]
	s.class = s.class[:n]
	for i := range s.paths {
		s.paths[i] = nil
		s.class[i] = 0
	}
	d := t.asns[di]
	s.paths[di] = []topology.ASN{d}
	s.class[di] = Own

	maxRounds := 4 * n
	converged := false
	rounds := 0
	for round := 0; round < maxRounds; round++ {
		changed := false
		for ai := 0; ai < n; ai++ {
			if int32(ai) == di {
				continue
			}
			a := t.asns[ai]
			// Recompute the selection from scratch so that a neighbor
			// changing its route cascades correctly; at the fixpoint
			// every rib path therefore matches the hop-by-hop
			// forwarding path. Candidates are compared by (pref,
			// path length, neighbor ASN) without materializing them.
			bestSlot := -1
			bestPref, bestPlen := 0, 0
			var bestNext topology.ASN
			for slot := t.nOff[ai]; slot < t.nOff[ai+1]; slot++ {
				ni := t.nAS[slot]
				np := s.paths[ni]
				if np == nil {
					continue
				}
				if !exports(s.class[ni], t.nClass[slot]) {
					continue
				}
				if containsAS(np, a) {
					continue // loop prevention
				}
				cp, cl, cn := int(t.nPref[slot]), len(np)+1, t.asns[ni]
				if bestSlot == -1 || cp > bestPref ||
					(cp == bestPref && (cl < bestPlen || (cl == bestPlen && cn < bestNext))) {
					bestSlot, bestPref, bestPlen, bestNext = int(slot), cp, cl, cn
				}
			}
			if bestSlot == -1 {
				if s.paths[ai] != nil {
					s.paths[ai] = nil
					changed = true
				}
				continue
			}
			ni := t.nAS[bestSlot]
			cls := t.nClass[bestSlot]
			cur := s.paths[ai]
			if cur != nil && s.class[ai] == cls && len(cur) == bestPlen && pathEqual(cur[1:], s.paths[ni]) {
				continue
			}
			s.paths[ai] = prepend(a, s.paths[ni])
			s.class[ai] = cls
			changed = true
		}
		if !changed {
			converged = true
			rounds = round
			break
		}
	}
	if !converged {
		c.err = fmt.Errorf("bgp: no convergence for destination AS %d after %d rounds", d, maxRounds)
		t.scratch.Put(s)
		return
	}

	c.next = make([]int32, n)
	c.class = make([]RouteClass, n)
	c.plen = make([]int32, n)
	for i := 0; i < n; i++ {
		p := s.paths[i]
		if p == nil {
			c.next[i] = noRoute
			continue
		}
		if int32(i) == di {
			c.next[i] = di
		} else {
			c.next[i] = t.asIndex[p[1]]
		}
		c.class[i] = s.class[i]
		c.plen[i] = int32(len(p))
	}
	t.scratch.Put(s)

	t.mu.Lock()
	if rounds > t.Rounds {
		t.Rounds = rounds
	}
	t.mu.Unlock()
}

// exports reports whether a route of class routeClass is advertised to a
// neighbor that regards the advertiser as neighborIs (valley-free rule:
// everything goes to customers; only own and customer routes go to peers
// and providers).
//
// neighborIs is the class a route learned from the advertiser would have
// at the receiver: ViaCustomer means the receiver is the advertiser's
// provider (the advertiser is the receiver's customer), and so on.
func exports(routeClass, neighborIs RouteClass) bool {
	// If the receiver learns routes from the advertiser as ViaCustomer
	// or ViaPeer, the advertiser is sending to a provider or peer: only
	// own/customer routes may flow. If the receiver learns them as
	// ViaProvider, the advertiser is sending to its customer: all routes
	// flow.
	if neighborIs == ViaProvider {
		return true
	}
	return routeClass == Own || routeClass == ViaCustomer
}

func containsAS(path []topology.ASN, a topology.ASN) bool {
	for _, p := range path {
		if p == a {
			return true
		}
	}
	return false
}

func prepend(a topology.ASN, path []topology.ASN) []topology.ASN {
	out := make([]topology.ASN, 0, len(path)+1)
	out = append(out, a)
	out = append(out, path...)
	return out
}

func pathEqual(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pair resolves a source/destination ASN pair to indices and the
// destination's converged column, reporting ok=false when either AS is
// unknown or the source has no route.
func (t *Table) pair(src, dst topology.ASN) (si int32, c *col, ok bool) {
	si, okS := t.asIndex[src]
	di, okD := t.asIndex[dst]
	if !okS || !okD {
		return 0, nil, false
	}
	c = t.column(di)
	if c == nil || c.next[si] == noRoute {
		return 0, nil, false
	}
	return si, c, true
}

// Route returns the converged route from src to dst, or nil if none.
func (t *Table) Route(src, dst topology.ASN) *Route {
	si, c, ok := t.pair(src, dst)
	if !ok {
		return nil
	}
	return &Route{Path: t.walk(c, si), Class: c.class[si]}
}

// walk materializes the AS path from source index si by following the
// column's next hops; at the fixpoint this is exactly the rib path.
func (t *Table) walk(c *col, si int32) []topology.ASN {
	path := make([]topology.ASN, 0, c.plen[si])
	cur := si
	for {
		path = append(path, t.asns[cur])
		next := c.next[cur]
		if next == cur {
			return path
		}
		cur = next
	}
}

// NextAS returns the next AS on the path from src to dst.
func (t *Table) NextAS(src, dst topology.ASN) (topology.ASN, bool) {
	si, c, ok := t.pair(src, dst)
	if !ok {
		return 0, false
	}
	return t.asns[c.next[si]], true
}

// ASPath returns the full AS path from src to dst (starting with src,
// ending with dst), or nil if unreachable.
func (t *Table) ASPath(src, dst topology.ASN) []topology.ASN {
	si, c, ok := t.pair(src, dst)
	if !ok {
		return nil
	}
	return t.walk(c, si)
}
