// Package trace renders and parses textual traceroute records in the
// classic `traceroute` output style. The original study drove public
// traceroute servers and parsed their text output; this package closes
// the same loop for the simulator: probe results can be dumped to the
// wire format and re-ingested, so archived campaigns are plain text a
// human (or an unrelated tool) can read.
//
// Format, one record per traceroute:
//
//	traceroute to host03.as112 (3) from host00.as79 (0) at 1732.5
//	 1  router362 AS79  1.563 ms
//	 2  router143 AS19  3.371 ms
//	 ...
//	rtt: 142.1 ms  188.9 ms  *
//
// A `*` marks a lost echo sample, as in the real tool.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

// Record is a parsed textual traceroute.
type Record struct {
	Src, Dst topology.HostID
	SrcName  string
	DstName  string
	At       netsim.Time
	// Hops lists the forward routers with their AS numbers.
	Hops []Hop
	// Samples are the end-to-end echo results.
	Samples []probe.Sample
}

// Hop is one line of the hop list.
type Hop struct {
	Router     topology.RouterID
	AS         topology.ASN
	CumDelayMs float64
}

// Write renders a probe result in the textual format. Per-hop cumulative
// delays are taken from the path's links evaluated at the probe time.
func Write(w io.Writer, top *topology.Topology, net *netsim.Network, res probe.Result) error {
	if res.Failed {
		_, err := fmt.Fprintf(w, "traceroute to %s (%d) from %s (%d) at %.1f: no response\n\n",
			hostName(top, res.Dst), res.Dst, hostName(top, res.Src), res.Src, float64(res.At))
		return err
	}
	if _, err := fmt.Fprintf(w, "traceroute to %s (%d) from %s (%d) at %.1f\n",
		hostName(top, res.Dst), res.Dst, hostName(top, res.Src), res.Src, float64(res.At)); err != nil {
		return err
	}
	cum := 0.0
	for i, r := range res.HopRouters {
		router := top.Router(r)
		if router == nil {
			return fmt.Errorf("trace: unknown router %d in result", r)
		}
		if i > 0 {
			// Locate the connecting link to accumulate delay.
			for _, lid := range top.OutLinks(res.HopRouters[i-1]) {
				if top.Link(lid).To == r {
					cum += net.LinkDelayMs(lid, res.At)
					break
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%2d  router%d AS%d  %.3f ms\n", i+1, r, router.AS, cum); err != nil {
			return err
		}
	}
	var b strings.Builder
	b.WriteString("rtt:")
	for _, s := range res.Samples {
		if s.Lost {
			b.WriteString("  *")
		} else {
			fmt.Fprintf(&b, "  %.3f ms", s.RTTMs)
		}
	}
	_, err := fmt.Fprintf(w, "%s\n\n", b.String())
	return err
}

func hostName(top *topology.Topology, id topology.HostID) string {
	if h := top.Host(id); h != nil {
		return h.Name
	}
	return fmt.Sprintf("host%d", id)
}

// Parse reads all records from textual traceroute output. Failed
// traceroutes ("no response") are skipped, matching how the paper's
// pipeline treated unanswered requests.
func Parse(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Record
	var cur *Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "traceroute to "):
			if strings.HasSuffix(line, ": no response") {
				cur = nil
				continue
			}
			rec, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			out = append(out, rec)
			cur = &out[len(out)-1]
		case strings.HasPrefix(line, "rtt:"):
			if cur == nil {
				continue
			}
			samples, err := parseSamples(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			cur.Samples = samples
			cur = nil
		default:
			if cur == nil {
				continue
			}
			hop, err := parseHop(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			cur.Hops = append(cur.Hops, hop)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// parseHeader parses "traceroute to NAME (ID) from NAME (ID) at T".
func parseHeader(line string) (Record, error) {
	var rec Record
	rest := strings.TrimPrefix(line, "traceroute to ")
	parts := strings.Split(rest, " from ")
	if len(parts) != 2 {
		return rec, fmt.Errorf("malformed header %q", line)
	}
	var err error
	rec.DstName, rec.Dst, err = parseNameID(parts[0])
	if err != nil {
		return rec, err
	}
	tail := strings.Split(parts[1], " at ")
	if len(tail) != 2 {
		return rec, fmt.Errorf("malformed header tail %q", parts[1])
	}
	rec.SrcName, rec.Src, err = parseNameID(tail[0])
	if err != nil {
		return rec, err
	}
	at, err := strconv.ParseFloat(strings.TrimSpace(tail[1]), 64)
	if err != nil {
		return rec, fmt.Errorf("bad timestamp %q", tail[1])
	}
	rec.At = netsim.Time(at)
	return rec, nil
}

// parseNameID parses "name (id)".
func parseNameID(s string) (string, topology.HostID, error) {
	s = strings.TrimSpace(s)
	open := strings.LastIndex(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", 0, fmt.Errorf("malformed name/id %q", s)
	}
	id, err := strconv.Atoi(s[open+1 : len(s)-1])
	if err != nil {
		return "", 0, fmt.Errorf("bad host id in %q", s)
	}
	return strings.TrimSpace(s[:open]), topology.HostID(id), nil
}

// parseHop parses " 1  router362 AS79  1.563 ms".
func parseHop(line string) (Hop, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[4] != "ms" {
		return Hop{}, fmt.Errorf("malformed hop %q", line)
	}
	if !strings.HasPrefix(fields[1], "router") || !strings.HasPrefix(fields[2], "AS") {
		return Hop{}, fmt.Errorf("malformed hop identifiers %q", line)
	}
	r, err := strconv.Atoi(strings.TrimPrefix(fields[1], "router"))
	if err != nil {
		return Hop{}, fmt.Errorf("bad router in %q", line)
	}
	asn, err := strconv.Atoi(strings.TrimPrefix(fields[2], "AS"))
	if err != nil {
		return Hop{}, fmt.Errorf("bad AS in %q", line)
	}
	d, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Hop{}, fmt.Errorf("bad delay in %q", line)
	}
	return Hop{Router: topology.RouterID(r), AS: topology.ASN(asn), CumDelayMs: d}, nil
}

// parseSamples parses "rtt:  142.1 ms  *  90.3 ms".
func parseSamples(line string) ([]probe.Sample, error) {
	fields := strings.Fields(strings.TrimPrefix(line, "rtt:"))
	var out []probe.Sample
	for i := 0; i < len(fields); i++ {
		if fields[i] == "*" {
			out = append(out, probe.Sample{Lost: true})
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample %q", fields[i])
		}
		if i+1 >= len(fields) || fields[i+1] != "ms" {
			return nil, fmt.Errorf("sample %q missing unit", fields[i])
		}
		i++
		out = append(out, probe.Sample{RTTMs: v})
	}
	return out, nil
}

// ToEcho converts a parsed record into the dataset layer's echo-record
// arguments: RTT values and loss flags plus the AS path.
func (r Record) ToEcho() (rtts []float64, lost []bool, asPath []topology.ASN) {
	for _, s := range r.Samples {
		rtts = append(rtts, s.RTTMs)
		lost = append(lost, s.Lost)
	}
	var last topology.ASN = -1
	for _, h := range r.Hops {
		if h.AS != last {
			asPath = append(asPath, h.AS)
			last = h.AS
		}
	}
	return rtts, lost, asPath
}
