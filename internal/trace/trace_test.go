package trace

import (
	"strings"
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

type fixture struct {
	top *topology.Topology
	net *netsim.Network
	prb *probe.Prober
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Era1999)
	cfg.NumHosts = 8
	top, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	fwd := forward.New(top, g, table)
	net := netsim.New(top, netsim.DefaultConfig())
	prbCfg := probe.DefaultConfig()
	prbCfg.ContactFailProb = 0
	return &fixture{top: top, net: net, prb: probe.New(top, fwd, net, prbCfg)}
}

func TestWriteParseRoundTrip(t *testing.T) {
	fx := newFixture(t)
	var b strings.Builder
	var want []probe.Result
	for i := 0; i < 5; i++ {
		res, err := fx.prb.Traceroute(fx.top.Hosts[i].ID, fx.top.Hosts[i+1].ID, netsim.Time(1000*i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
		if err := Write(&b, fx.top, fx.net, res); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse: %v\noutput was:\n%s", err, b.String())
	}
	if len(recs) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		w := want[i]
		if rec.Src != w.Src || rec.Dst != w.Dst || rec.At != w.At {
			t.Fatalf("record %d header mismatch: %+v vs src=%d dst=%d at=%v", i, rec, w.Src, w.Dst, w.At)
		}
		if len(rec.Hops) != len(w.HopRouters) {
			t.Fatalf("record %d: %d hops, want %d", i, len(rec.Hops), len(w.HopRouters))
		}
		for j, h := range rec.Hops {
			if h.Router != w.HopRouters[j] {
				t.Fatalf("record %d hop %d: router %d, want %d", i, j, h.Router, w.HopRouters[j])
			}
			if h.AS != fx.top.Router(w.HopRouters[j]).AS {
				t.Fatalf("record %d hop %d: AS mismatch", i, j)
			}
		}
		if len(rec.Samples) != len(w.Samples) {
			t.Fatalf("record %d: %d samples, want %d", i, len(rec.Samples), len(w.Samples))
		}
		for j, s := range rec.Samples {
			if s.Lost != w.Samples[j].Lost {
				t.Fatalf("record %d sample %d: lost mismatch", i, j)
			}
			if !s.Lost && !closeEnough(s.RTTMs, w.Samples[j].RTTMs) {
				t.Fatalf("record %d sample %d: rtt %f vs %f", i, j, s.RTTMs, w.Samples[j].RTTMs)
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 0.001 // the format keeps three decimals
}

func TestFailedTracerouteSkipped(t *testing.T) {
	fx := newFixture(t)
	var b strings.Builder
	failed := probe.Result{Src: 0, Dst: 1, At: 5, Failed: true}
	if err := Write(&b, fx.top, fx.net, failed); err != nil {
		t.Fatal(err)
	}
	ok, err := fx.prb.Traceroute(fx.top.Hosts[0].ID, fx.top.Hosts[1].ID, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, fx.top, fx.net, ok); err != nil {
		t.Fatal(err)
	}
	recs, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1 (failed skipped)", len(recs))
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"traceroute to x from y at notatime\nrtt: 1 ms\n",
		"traceroute to h (1) from g (0) at 5\n 1  bogus AS7  1.0 ms\nrtt: 1.0 ms\n",
		"traceroute to h (1) from g (0) at 5\n 1  router3 AS7  abc ms\nrtt: 1.0 ms\n",
		"traceroute to h (1) from g (0) at 5\nrtt: nonsense\n",
		"traceroute to h (one) from g (0) at 5\nrtt: 1.0 ms\n",
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestParseIgnoresStrayLines(t *testing.T) {
	input := "rtt: 5.0 ms\n 1  router3 AS7  1.0 ms\n\n"
	recs, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("stray lines produced %d records", len(recs))
	}
}

func TestToEcho(t *testing.T) {
	rec := Record{
		Samples: []probe.Sample{{RTTMs: 10}, {Lost: true}, {RTTMs: 12}},
		Hops: []Hop{
			{Router: 1, AS: 7}, {Router: 2, AS: 7}, {Router: 3, AS: 9}, {Router: 4, AS: 12},
		},
	}
	rtts, lost, asPath := rec.ToEcho()
	if len(rtts) != 3 || len(lost) != 3 {
		t.Fatalf("echo lengths %d/%d", len(rtts), len(lost))
	}
	if !lost[1] || lost[0] || lost[2] {
		t.Error("loss flags wrong")
	}
	if len(asPath) != 3 || asPath[0] != 7 || asPath[1] != 9 || asPath[2] != 12 {
		t.Errorf("AS path %v", asPath)
	}
}

// TestIngestIntoDataset closes the loop: textual records feed a dataset
// whose aggregates match the original probe results.
func TestIngestIntoDataset(t *testing.T) {
	fx := newFixture(t)
	var b strings.Builder
	src, dst := fx.top.Hosts[0].ID, fx.top.Hosts[1].ID
	for i := 0; i < 40; i++ {
		res, err := fx.prb.Traceroute(src, dst, netsim.Time(i*600))
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, fx.top, fx.net, res); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New("ingest", []topology.HostID{src, dst})
	for _, rec := range recs {
		rtts, lost, asPath := rec.ToEcho()
		ds.RecordEcho(dataset.PairKey{Src: rec.Src, Dst: rec.Dst}, rec.At, rtts, lost, asPath, len(lost))
	}
	sum, ok := ds.MeanRTT(dataset.PairKey{Src: src, Dst: dst})
	if !ok || sum.N == 0 {
		t.Fatal("no RTT data after ingestion")
	}
	if sum.Mean <= 0 {
		t.Errorf("mean RTT %f", sum.Mean)
	}
	p := ds.Paths[dataset.PairKey{Src: src, Dst: dst}]
	if len(p.ASPath) < 2 {
		t.Errorf("AS path %v too short", p.ASPath)
	}
}
