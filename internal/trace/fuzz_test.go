package trace

import (
	"strings"
	"testing"
)

// FuzzParse ensures the traceroute parser never panics: arbitrary input
// either parses or errors.
func FuzzParse(f *testing.F) {
	f.Add("traceroute to h (1) from g (0) at 5\n 1  router3 AS7  1.000 ms\nrtt:  10.000 ms  *\n\n")
	f.Add("traceroute to h (1) from g (0) at 5: no response\n\n")
	f.Add("garbage\nrtt: zzz\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := Parse(strings.NewReader(input))
		if err == nil {
			for _, r := range recs {
				_, _, _ = r.ToEcho()
			}
		}
	})
}
