package server

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
	"pathsel/internal/snapshot"
)

// TestSnapshotSourceWarmPath walks the full snapshot lifecycle through
// the serving stack: cold build persists a snapshot, the next process
// (fresh source over the same dir) decodes instead of rebuilding, a
// corrupted file falls back to a rebuild that replaces it — with every
// transition visible in the snapshot counters and on /metrics.
func TestSnapshotSourceWarmPath(t *testing.T) {
	dir := t.TempDir()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := experiments.Config{Seed: 1, Preset: experiments.Quick}

	var builds atomic.Int64
	counting := func(ctx context.Context, c experiments.Config) (*experiments.Suite, error) {
		builds.Add(1)
		return experiments.BuildContext(ctx, c)
	}

	// Cold process: miss, build, persist.
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	source := NewSnapshotSource(dir, counting, m, logger)
	cold, err := source(context.Background(), cfg)
	if err != nil {
		t.Fatalf("cold build: %v", err)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("cold path ran %d builds, want 1", got)
	}
	if got := m.snapshotPersists.Value(); got != 1 {
		t.Fatalf("snapshotPersists = %d, want 1", got)
	}
	if got := m.snapshotLoads.Value(); got != 0 {
		t.Fatalf("snapshotLoads = %d after cold build, want 0", got)
	}
	file := filepath.Join(dir, snapshot.FileName(cfg))
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}

	// Warm process: decode, no build.
	reg2 := obs.NewRegistry()
	m2 := NewMetrics(reg2)
	source2 := NewSnapshotSource(dir, counting, m2, logger)
	warm, err := source2(context.Background(), cfg)
	if err != nil {
		t.Fatalf("warm load: %v", err)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("warm path ran a build (total %d), want decode only", got)
	}
	if got := m2.snapshotLoads.Value(); got != 1 {
		t.Fatalf("snapshotLoads = %d, want 1", got)
	}
	if got := m2.decodeDuration.Count(); got != 1 {
		t.Fatalf("decodeDuration observations = %d, want 1", got)
	}

	// The restored suite serves figures byte-identically to the built one.
	hCold := NewHandler(readyCache(t, cfg, cold), cfg, obs.NewRegistry())
	hWarm := NewHandler(readyCache(t, cfg, warm), cfg, obs.NewRegistry())
	for _, path := range []string{"/api/figure/2", "/api/table1", "/api/table/2"} {
		a, b := get(t, hCold, path), get(t, hWarm, path)
		if a.Code != http.StatusOK || a.Body.String() != b.Body.String() {
			t.Errorf("%s: restored response differs from built (status %d/%d)", path, a.Code, b.Code)
		}
	}

	// Corrupted snapshot: load error counted, rebuild, re-persist.
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reg3 := obs.NewRegistry()
	m3 := NewMetrics(reg3)
	source3 := NewSnapshotSource(dir, counting, m3, logger)
	if _, err := source3(context.Background(), cfg); err != nil {
		t.Fatalf("rebuild after corruption: %v", err)
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("corruption fallback ran %d total builds, want 2", got)
	}
	if got := m3.snapshotLoadErrors.Value(); got != 1 {
		t.Fatalf("snapshotLoadErrors = %d, want 1", got)
	}
	if got := m3.snapshotPersists.Value(); got != 1 {
		t.Fatalf("re-persist after corruption: snapshotPersists = %d, want 1", got)
	}

	// All snapshot metrics are exported on /metrics next to the
	// build-duration histogram they should be compared against.
	h := NewHandler(NewSuiteCache(2, 2, 0, source3, m3), cfg, reg3)
	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"suite_snapshot_loads_total",
		"suite_snapshot_load_errors_total 1",
		"suite_snapshot_persists_total 1",
		"suite_snapshot_persist_errors_total",
		"suite_decode_duration_seconds_bucket",
		"suite_build_duration_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// readyCache returns a suite cache pre-populated with s, so handlers
// can serve without building.
func readyCache(t *testing.T, cfg experiments.Config, s *experiments.Suite) *SuiteCache {
	t.Helper()
	cache := NewSuiteCache(2, 2, 0,
		func(context.Context, experiments.Config) (*experiments.Suite, error) { return s, nil },
		NewMetrics(obs.NewRegistry()))
	if _, err := cache.Get(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	return cache
}

// TestSnapshotSourceEmptyDirPassthrough checks that an empty -snapshot-dir
// leaves the build path untouched.
func TestSnapshotSourceEmptyDirPassthrough(t *testing.T) {
	called := false
	build := func(context.Context, experiments.Config) (*experiments.Suite, error) {
		called = true
		return nil, context.Canceled
	}
	source := NewSnapshotSource("", build, nil, nil)
	source(context.Background(), experiments.Config{}) //nolint:errcheck
	if !called {
		t.Fatal("passthrough source did not call build")
	}
}
