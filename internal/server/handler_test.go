package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
)

var (
	serveOnce sync.Once
	served    http.Handler
	servedErr error
)

// testHandler returns a handler backed by a real suite cache, with the
// default quick suite built once and shared across tests.
func testHandler(t *testing.T) http.Handler {
	t.Helper()
	serveOnce.Do(func() {
		reg := obs.NewRegistry()
		cache := NewSuiteCache(4, 2, 0, experiments.BuildContext, NewMetrics(reg))
		defaults := experiments.Config{Seed: 1, Preset: experiments.Quick}
		if _, servedErr = cache.Get(context.Background(), defaults); servedErr != nil {
			return
		}
		served = NewHandler(cache, defaults, reg)
	})
	if servedErr != nil {
		t.Fatalf("Build: %v", servedErr)
	}
	return served
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIndex(t *testing.T) {
	h := testHandler(t)
	rec := get(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Figure 16") || !strings.Contains(body, "Table 1") {
		t.Errorf("index missing links:\n%s", body)
	}
	if !strings.Contains(body, "/metrics") || !strings.Contains(body, "/api/suites") {
		t.Errorf("index missing operations links:\n%s", body)
	}
}

func TestTable1JSON(t *testing.T) {
	h := testHandler(t)
	rec := get(t, h, "/api/table1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var rows []struct {
		Name         string
		Hosts        int
		Measurements int
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Name != "D2-NA" || rows[0].Hosts == 0 {
		t.Errorf("unexpected first row %+v", rows[0])
	}
}

func TestVerdictTables(t *testing.T) {
	h := testHandler(t)
	for _, n := range []string{"2", "3"} {
		rec := get(t, h, "/api/table/"+n)
		if rec.Code != http.StatusOK {
			t.Fatalf("table %s: status %d", n, rec.Code)
		}
		var rows []struct {
			Dataset       string  `json:"dataset"`
			Better        float64 `json:"betterPct"`
			Indeterminate float64 `json:"indeterminatePct"`
			Worse         float64 `json:"worsePct"`
			BothZero      float64 `json:"bothZeroPct"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
			t.Fatalf("table %s: bad JSON: %v", n, err)
		}
		if len(rows) != 4 {
			t.Fatalf("table %s: %d rows", n, len(rows))
		}
		sum := rows[0].Better + rows[0].Indeterminate + rows[0].Worse + rows[0].BothZero
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("table %s: percentages sum to %f", n, sum)
		}
	}
	if rec := get(t, h, "/api/table/9"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown table gave status %d", rec.Code)
	}
}

func TestEveryFigureServes(t *testing.T) {
	h := testHandler(t)
	for _, n := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16"} {
		rec := get(t, h, "/api/figure/"+n)
		if rec.Code != http.StatusOK {
			t.Fatalf("figure %s: status %d: %s", n, rec.Code, rec.Body.String())
		}
		var series []struct {
			Name string `json:"name"`
			N    int    `json:"n"`
			CDF  string `json:"cdf"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
			t.Fatalf("figure %s: bad JSON: %v", n, err)
		}
		if len(series) == 0 {
			t.Fatalf("figure %s: no series", n)
		}
		for _, sr := range series {
			if sr.N == 0 {
				t.Errorf("figure %s series %s empty", n, sr.Name)
			}
		}
	}
	if rec := get(t, h, "/api/figure/99"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown figure gave status %d", rec.Code)
	}
}

func TestCDFEndpoint(t *testing.T) {
	h := testHandler(t)
	// Discover a series name from figure 1's JSON.
	rec := get(t, h, "/api/figure/1")
	var series []struct {
		CDF string `json:"cdf"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
		t.Fatal(err)
	}
	rec = get(t, h, series[0].CDF)
	if rec.Code != http.StatusOK {
		t.Fatalf("cdf endpoint %s: status %d", series[0].CDF, rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d CDF lines", len(lines))
	}
	for _, ln := range lines {
		if len(strings.Split(ln, "\t")) != 2 {
			t.Fatalf("line %q not 2 columns", ln)
		}
	}
	// Final fraction reaches 1.
	if !strings.HasSuffix(lines[len(lines)-1], "1.0000") {
		t.Errorf("last line %q should reach 1.0", lines[len(lines)-1])
	}
	if rec := get(t, h, "/api/cdf/1/el-chupacabra"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown series gave status %d", rec.Code)
	}
}

func TestOverlayEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("overlay exhibit replays hours of control loop")
	}
	h := testHandler(t)
	rec := get(t, h, "/api/overlay")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out overlayJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Nodes == 0 || out.Pairs == 0 || out.Epochs < 2 {
		t.Fatalf("degenerate exhibit: %+v", out)
	}
	if len(out.Budgets) != 3 {
		t.Fatalf("got %d budgets, want 3", len(out.Budgets))
	}
	for _, b := range out.Budgets {
		if !(b.AvailDefault < b.AvailOverlay && b.AvailOverlay < b.AvailOptimal) {
			t.Errorf("budget %g: availability not ordered: %+v", b.ProbesPerSec, b)
		}
		if b.Reactions == 0 || b.MedianReactionSec <= 0 {
			t.Errorf("budget %g: no reaction times: %+v", b.ProbesPerSec, b)
		}
	}
	// The memoized second hit is byte-identical.
	if again := get(t, h, "/api/overlay"); again.Body.String() != rec.Body.String() {
		t.Error("repeated overlay request differs")
	}
}

func TestMultipathEndpoint(t *testing.T) {
	h := testHandler(t)
	rec := get(t, h, "/api/multipath")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out experiments.MultipathResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Pairs == 0 || len(out.Curve) != experiments.MultipathK {
		t.Fatalf("degenerate exhibit: %+v", out)
	}
	if len(out.Strategies) != 3 {
		t.Fatalf("got %d strategy rows, want 3", len(out.Strategies))
	}
	// The memoized second hit is byte-identical.
	if again := get(t, h, "/api/multipath"); again.Body.String() != rec.Body.String() {
		t.Error("repeated multipath request differs")
	}
}

func TestBadQueryParams(t *testing.T) {
	h := testHandler(t)
	for _, path := range []string{
		"/api/table1?seed=abc",
		"/api/table1?preset=bogus",
		"/api/figure/1?seed=1.5",
		"/api/cdf/1/x?preset=medium",
		"/api/table/2?seed=",
	} {
		rec := get(t, h, path)
		want := http.StatusBadRequest
		if strings.Contains(path, "seed=&") || strings.HasSuffix(path, "seed=") {
			// Empty values fall back to defaults; that request is valid.
			want = http.StatusOK
		}
		if rec.Code != want {
			t.Errorf("%s: status %d, want %d: %s", path, rec.Code, want, rec.Body.String())
		}
	}
}

// TestQueryParamsReachBuild proves ?seed and ?preset select the suite
// configuration handed to the build function.
func TestQueryParamsReachBuild(t *testing.T) {
	var mu sync.Mutex
	var got []experiments.Config
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		mu.Lock()
		got = append(got, cfg)
		mu.Unlock()
		return nil, context.DeadlineExceeded // don't cache; config capture is the point
	}
	reg := obs.NewRegistry()
	cache := NewSuiteCache(4, 4, 1, build, NewMetrics(reg))
	h := NewHandler(cache, experiments.Config{Seed: 1, Preset: experiments.Quick}, reg)

	get(t, h, "/api/table1?seed=42&preset=full")
	get(t, h, "/api/table1") // defaults
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("build called %d times", len(got))
	}
	if got[0].Seed != 42 || got[0].Preset != experiments.Full {
		t.Errorf("first build config %+v, want seed 42 full", got[0])
	}
	if got[1].Seed != 1 || got[1].Preset != experiments.Quick {
		t.Errorf("default build config %+v, want seed 1 quick", got[1])
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	h := testHandler(t)
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"suite_cache_misses_total", "suite_builds_inflight", "suite_build_duration_seconds_bucket"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s:\n%s", want, body)
		}
	}
}

func TestSuitesEndpoint(t *testing.T) {
	h := testHandler(t)
	rec := get(t, h, "/api/suites")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var rows []suiteStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no cached suites reported")
	}
	found := false
	for _, row := range rows {
		if row.Seed == 1 && row.Preset == "quick" && row.State == "ready" {
			found = true
		}
	}
	if !found {
		t.Errorf("default suite missing from %+v", rows)
	}
}

// TestDeterministicAcrossCacheState checks the acceptance invariant:
// a response served from the warm cache is byte-identical to the same
// request against a freshly built suite.
func TestDeterministicAcrossCacheState(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a second suite")
	}
	warm := testHandler(t)
	first := get(t, warm, "/api/figure/2")
	again := get(t, warm, "/api/figure/2") // memoized path
	if first.Body.String() != again.Body.String() {
		t.Fatal("repeated request against warm cache differs")
	}

	reg := obs.NewRegistry()
	cache := NewSuiteCache(1, 1, 0, experiments.BuildContext, NewMetrics(reg))
	fresh := NewHandler(cache, experiments.Config{Seed: 1, Preset: experiments.Quick}, reg)
	cold := get(t, fresh, "/api/figure/2")
	if cold.Code != http.StatusOK {
		t.Fatalf("fresh build: status %d: %s", cold.Code, cold.Body.String())
	}
	if first.Body.String() != cold.Body.String() {
		t.Errorf("warm-cache response differs from fresh build:\nwarm: %s\ncold: %s",
			first.Body.String(), cold.Body.String())
	}
}

func TestConcurrentRequests(t *testing.T) {
	h := testHandler(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := []string{"1", "3", "9", "15"}[i%4]
			rec := get(t, h, "/api/figure/"+n)
			if rec.Code != http.StatusOK {
				t.Errorf("figure %s: status %d", n, rec.Code)
			}
		}(i)
	}
	wg.Wait()
}
