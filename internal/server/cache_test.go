package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
)

func testCache(t *testing.T, max, maxBuild int, build BuildFunc) (*SuiteCache, *Metrics) {
	t.Helper()
	m := NewMetrics(obs.NewRegistry())
	return NewSuiteCache(max, maxBuild, 1, build, m), m
}

func quickCfg(seed int64) experiments.Config {
	return experiments.Config{Seed: seed, Preset: experiments.Quick}
}

// TestCacheSingleflight: N concurrent requests for the same
// configuration share one build.
func TestCacheSingleflight(t *testing.T) {
	var builds atomic.Int64
	release := make(chan struct{})
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		builds.Add(1)
		<-release
		return &experiments.Suite{}, nil
	}
	c, m := testCache(t, 4, 4, build)

	const n = 8
	var wg sync.WaitGroup
	entries := make([]*suiteEntry, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], errs[i] = c.Get(context.Background(), quickCfg(1))
		}(i)
	}
	// Wait until the single build has started and the other waiters have
	// joined it, then release.
	deadline := time.After(5 * time.Second)
	for m.cacheDedup.Value() < n-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d requests joined the in-flight build", m.cacheDedup.Value())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if entries[i] != entries[0] {
			t.Fatalf("request %d got a different entry", i)
		}
	}
	if m.cacheMisses.Value() != 1 {
		t.Errorf("misses %d, want 1", m.cacheMisses.Value())
	}
}

// TestCacheHitAndLRUEviction: the size bound is enforced and evictions
// show up in metrics; a re-request of an evicted suite rebuilds it.
func TestCacheHitAndLRUEviction(t *testing.T) {
	var builds atomic.Int64
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		builds.Add(1)
		return &experiments.Suite{}, nil
	}
	c, m := testCache(t, 2, 2, build)
	ctx := context.Background()

	for _, seed := range []int64{1, 2} {
		if _, err := c.Get(ctx, quickCfg(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(ctx, quickCfg(1)); err != nil { // hit; 1 is now MRU
		t.Fatal(err)
	}
	if m.cacheHits.Value() != 1 {
		t.Fatalf("hits %d, want 1", m.cacheHits.Value())
	}

	if _, err := c.Get(ctx, quickCfg(3)); err != nil { // evicts seed 2 (LRU)
		t.Fatal(err)
	}
	if m.cacheEvictions.Value() != 1 {
		t.Fatalf("evictions %d, want 1", m.cacheEvictions.Value())
	}
	if got := m.cacheEntries.Value(); got != 2 {
		t.Fatalf("resident entries %d, want 2", got)
	}

	// Seed 1 survived (it was touched), seed 2 did not.
	if _, err := c.Get(ctx, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 3 {
		t.Fatalf("builds %d, want 3 (seed 1 should still be cached)", builds.Load())
	}
	if _, err := c.Get(ctx, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 4 {
		t.Fatalf("builds %d, want 4 (seed 2 should have been evicted)", builds.Load())
	}
}

// TestCacheCancellation: when the last waiting client disconnects, the
// in-flight build's context is cancelled and the slot is released.
func TestCacheCancellation(t *testing.T) {
	buildStarted := make(chan struct{})
	buildCancelled := make(chan struct{})
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		close(buildStarted)
		<-ctx.Done() // a real build observes this via BuildContext
		close(buildCancelled)
		return nil, ctx.Err()
	}
	c, m := testCache(t, 4, 4, build)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, quickCfg(1))
		errCh <- err
	}()

	<-buildStarted
	cancel() // the only client disconnects
	select {
	case <-buildCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("build context was not cancelled after the last client left")
	}
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("get returned %v, want context.Canceled", err)
	}

	// The aborted build must not poison the cache: a fresh request with
	// a live context builds again and succeeds.
	waitFor(t, func() bool { return m.buildsCancelled.Value() == 1 })
	waitFor(t, func() bool { return m.cacheEntries.Value() == 0 })
}

// TestCacheSurvivingWaiterKeepsBuild: one of two clients disconnecting
// must NOT cancel the shared build.
func TestCacheSurvivingWaiterKeepsBuild(t *testing.T) {
	buildStarted := make(chan struct{})
	release := make(chan struct{})
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		close(buildStarted)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &experiments.Suite{}, nil
		}
	}
	c, m := testCache(t, 4, 4, build)

	first := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), quickCfg(1))
		first <- err
	}()
	<-buildStarted

	ctx2, cancel2 := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx2, quickCfg(1))
		second <- err
	}()
	waitFor(t, func() bool { return m.cacheDedup.Value() == 1 })

	cancel2() // the second client leaves; the first is still waiting
	if err := <-second; !errors.Is(err, context.Canceled) {
		t.Fatalf("second get: %v", err)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first get: %v (build was cancelled by a non-final waiter?)", err)
	}
	if m.buildsCancelled.Value() != 0 {
		t.Errorf("buildsCancelled %d, want 0", m.buildsCancelled.Value())
	}
}

// TestCacheAdmissionControl: once maxBuild builds are in flight, a
// request for a new configuration is rejected with errBusy.
func TestCacheAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		select {
		case <-release:
			return &experiments.Suite{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c, m := testCache(t, 4, 1, build)

	started := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), quickCfg(1))
		started <- err
	}()
	waitFor(t, func() bool { return m.buildsInflight.Value() == 1 })

	if _, err := c.Get(context.Background(), quickCfg(2)); !errors.Is(err, errBusy) {
		t.Fatalf("second build got %v, want errBusy", err)
	}
	if m.buildsRejected.Value() != 1 {
		t.Errorf("rejected %d, want 1", m.buildsRejected.Value())
	}
	// Joining the existing build is still allowed while saturated.
	joined := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), quickCfg(1))
		joined <- err
	}()
	waitFor(t, func() bool { return m.cacheDedup.Value() == 1 })

	close(release)
	if err := <-started; err != nil {
		t.Fatal(err)
	}
	if err := <-joined; err != nil {
		t.Fatal(err)
	}
	// Capacity freed: new configurations build again.
	if _, err := c.Get(context.Background(), quickCfg(2)); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestCacheRetryAfterAbandonedBuild: a client that joins a build in
// the window after its last waiter cancelled it but before the result
// is published transparently restarts the build instead of surfacing
// the stale context.Canceled.
func TestCacheRetryAfterAbandonedBuild(t *testing.T) {
	var builds atomic.Int64
	firstStarted := make(chan struct{})
	secondJoined := make(chan struct{})
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		if builds.Add(1) == 1 {
			close(firstStarted)
			<-ctx.Done()
			<-secondJoined // hold publication open until the second client joins
			return nil, ctx.Err()
		}
		return &experiments.Suite{}, nil
	}
	c, m := testCache(t, 4, 4, build)

	ctx1, cancel1 := context.WithCancel(context.Background())
	first := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx1, quickCfg(1))
		first <- err
	}()
	<-firstStarted
	cancel1() // last (only) waiter leaves: the build context is cancelled
	if err := <-first; !errors.Is(err, context.Canceled) {
		t.Fatalf("first get: %v", err)
	}

	// The cancelled build has not published yet, so this request joins
	// it, then sees it fail with Canceled while its own context is live.
	second := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), quickCfg(1))
		second <- err
	}()
	waitFor(t, func() bool { return m.cacheDedup.Value() == 1 })
	close(secondJoined)

	if err := <-second; err != nil {
		t.Fatalf("second get: %v (retry loop failed)", err)
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("builds %d, want 2 (cancelled build retried once)", got)
	}
}

// TestClientDisconnectCancelsBuildHTTP drives cancellation through the
// full HTTP handler: a request arrives, starts a suite build, the
// client disconnects, and the build's context is cancelled.
func TestClientDisconnectCancelsBuildHTTP(t *testing.T) {
	buildStarted := make(chan struct{})
	buildCancelled := make(chan struct{})
	build := func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		close(buildStarted)
		<-ctx.Done()
		close(buildCancelled)
		return nil, ctx.Err()
	}
	reg := obs.NewRegistry()
	cache := NewSuiteCache(4, 4, 1, build, NewMetrics(reg))
	h := NewHandler(cache, quickCfg(1), reg)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptestRequestWithContext(ctx, "/api/table1?seed=7")
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(discardResponse{}, req)
		close(done)
	}()

	<-buildStarted
	cancel() // client disconnect
	select {
	case <-buildCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("suite build kept running after the client disconnected")
	}
	<-done
}

func httptestRequestWithContext(ctx context.Context, path string) *http.Request {
	return httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
}

// discardResponse stands in for a connection whose client has gone.
type discardResponse struct{}

func (discardResponse) Header() http.Header         { return http.Header{} }
func (discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (discardResponse) WriteHeader(int)             {}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
