// Package server is the serving core behind cmd/serve and
// cmd/loadtest: the suite-analysis HTTP handler, the LRU suite cache
// with singleflight builds, the snapshot warm path, and the
// consistent-hash shard router. cmd/serve wires these to flags and
// signals; cmd/loadtest assembles the same router + worker stack
// in-process so load tests exercise the real serving path without
// spawning processes.
//
// A process serves one of two roles. A worker (or standalone server)
// holds a SuiteCache keyed by (seed, preset) and answers every
// analysis endpoint from fully built suites; NewSnapshotSource gives
// its cache a warm path that decodes persisted snapshots instead of
// rebuilding. A Router owns no suites at all: it consistent-hashes the
// same (seed, preset) keyspace over worker base URLs (internal/shard)
// and forwards with bounded retries, so each suite is built and cached
// on exactly one worker and fleet cache capacity scales with size.
package server
