package server

import (
	"context"
	"errors"
	"log/slog"
	"os"
	"time"

	"pathsel/internal/experiments"
	"pathsel/internal/snapshot"
)

// NewSnapshotSource wraps a BuildFunc with a snapshot warm path: a
// requested suite is first looked up in dir (decode + substrate
// regeneration, milliseconds), and only on a miss — no file, version
// skew, or corruption — does the cold build run, after which the result
// is persisted so the next process start is warm. An empty dir disables
// the warm path entirely. Persist failures are logged and counted but
// never fail the request: the built suite is usable either way.
func NewSnapshotSource(dir string, build BuildFunc, m *Metrics, logger *slog.Logger) BuildFunc {
	if dir == "" {
		return build
	}
	return func(ctx context.Context, cfg experiments.Config) (*experiments.Suite, error) {
		start := time.Now()
		s, err := snapshot.Load(ctx, dir, cfg)
		if err == nil {
			m.snapshotLoads.Inc()
			m.decodeDuration.Observe(time.Since(start).Seconds())
			return s, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !os.IsNotExist(err) {
			// A present-but-unusable snapshot (stale version, bad
			// checksum, torn write) falls back to a rebuild that will
			// overwrite it with a current one.
			m.snapshotLoadErrors.Inc()
			logger.Warn("snapshot restore failed; rebuilding",
				"dir", dir, "seed", cfg.Seed, "preset", cfg.Preset.String(), "err", err)
			if errors.Is(err, snapshot.ErrVersion) {
				logger.Info("snapshot version skew; a fresh snapshot will replace it")
			}
		}
		s, err = build(ctx, cfg)
		if err != nil {
			return nil, err
		}
		if _, perr := snapshot.Write(dir, s); perr != nil {
			m.snapshotPersistErrors.Inc()
			logger.Warn("snapshot persist failed", "dir", dir, "err", perr)
		} else {
			m.snapshotPersists.Inc()
		}
		return s, nil
	}
}
