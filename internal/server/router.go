package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
	"pathsel/internal/shard"
)

// routerWorker is one backend in the fleet: its base URL, liveness as
// last observed by the health checker, and its per-worker metrics.
type routerWorker struct {
	base string
	up   atomic.Bool

	forwards *obs.Counter
	errors   *obs.Counter
	upGauge  *obs.Gauge
}

// router consistent-hashes the (seed, preset) suite keyspace over a
// fixed set of worker processes: every configuration has one owner, so
// each suite is built and cached on exactly one worker and the fleet's
// aggregate cache capacity scales with its size. Requests are
// forwarded with bounded retries along the ring's successor order, so
// a dead worker degrades only its own shard (those keys remap to the
// successor) instead of the whole service.
type Router struct {
	defaults experiments.Config
	client   *http.Client
	retries  int

	mu      sync.Mutex
	ring    *shard.Ring
	workers map[string]*routerWorker

	reg *obs.Registry
	mux *http.ServeMux

	forwardLatency *obs.Histogram
	retried        *obs.Counter
	unavailable    *obs.Counter
}

// NewRouter wires a router over the given worker base URLs. Workers
// start optimistically healthy; the health loop (or an explicit
// CheckAll) downgrades them.
func NewRouter(backends []string, defaults experiments.Config, retries int, reg *obs.Registry) *Router {
	rt := &Router{
		defaults: defaults,
		client:   &http.Client{}, // per-request contexts bound the forwards
		retries:  retries,
		ring:     shard.New(0),
		workers:  map[string]*routerWorker{},
		reg:      reg,
		mux:      http.NewServeMux(),
		forwardLatency: reg.Histogram("router_forward_duration_seconds",
			"Wall-clock latency of forwarded requests, as seen by the router."),
		retried: reg.Counter("router_retries_total",
			"Forward attempts retried on a ring successor after a worker failure."),
		unavailable: reg.Counter("router_unavailable_total",
			"Requests failed because no healthy worker could serve them."),
	}
	for _, base := range backends {
		w := &routerWorker{
			base: base,
			forwards: reg.Counter("router_worker_forwards_total",
				"Requests forwarded to this worker.", "worker", base),
			errors: reg.Counter("router_worker_errors_total",
				"Forward attempts to this worker that failed (transport error or retryable status).", "worker", base),
			upGauge: reg.Gauge("router_worker_up",
				"1 when the worker's last health check succeeded.", "worker", base),
		}
		w.up.Store(true)
		w.upGauge.Set(1)
		rt.workers[base] = w
		rt.ring.Add(base)
	}
	rt.mux.HandleFunc("GET /{$}", rt.index)
	rt.mux.HandleFunc("GET /api/suites", rt.suites)
	rt.mux.HandleFunc("GET /api/workers", rt.workerStatus)
	rt.mux.HandleFunc("GET /api/", rt.forward)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	rt.mux.Handle("GET /metrics", reg.Handler())
	return rt
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// candidatesFor returns the forward order for a configuration: the
// ring owner and enough successors to cover the retry budget, healthy
// workers first. Unhealthy workers stay in the list as a last resort —
// a stale health verdict should degrade to a slow error, not mask a
// live worker.
func (rt *Router) candidatesFor(cfg experiments.Config) []*routerWorker {
	rt.mu.Lock()
	names := rt.ring.Lookup(shard.Key(cfg.Seed, cfg.Preset.String()), 1+rt.retries)
	out := make([]*routerWorker, 0, len(names))
	down := make([]*routerWorker, 0, len(names))
	for _, n := range names {
		w := rt.workers[n]
		if w == nil {
			continue
		}
		if w.up.Load() {
			out = append(out, w)
		} else {
			down = append(down, w)
		}
	}
	rt.mu.Unlock()
	return append(out, down...)
}

// retryableStatus reports whether a worker response indicates the
// worker (not the request) is the problem, so a ring successor may
// fare better. 429 is the worker's admission control saturating; 5xx
// gateway-class statuses are infrastructure failures. A plain 500 is a
// deterministic compute error — every worker would fail the same way,
// so it is passed through.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forward proxies an API request to the owner of its suite
// configuration, retrying along the ring on worker failure. Response
// bodies are streamed (io.Copy), so large figure payloads flow
// incrementally instead of buffering in the router.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request) {
	cfg, err := suiteConfigFrom(rt.defaults, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	candidates := rt.candidatesFor(cfg)
	if len(candidates) == 0 {
		rt.unavailable.Inc()
		http.Error(w, "no workers configured", http.StatusServiceUnavailable)
		return
	}
	start := time.Now()
	var lastErr error
	for i, wk := range candidates {
		if i > 0 {
			rt.retried.Inc()
		}
		resp, err := rt.tryWorker(r, wk)
		if err != nil {
			wk.errors.Inc()
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) && i < len(candidates)-1 {
			wk.errors.Inc()
			lastErr = fmt.Errorf("worker %s: status %d", wk.base, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		wk.forwards.Inc()
		rt.forwardLatency.Observe(time.Since(start).Seconds())
		copyResponse(w, resp, wk.base)
		return
	}
	rt.unavailable.Inc()
	http.Error(w, fmt.Sprintf("all workers failed for seed %d preset %s: %v", cfg.Seed, cfg.Preset, lastErr),
		http.StatusBadGateway)
}

// tryWorker issues the forwarded request to one worker, bounded by the
// client's context.
func (rt *Router) tryWorker(r *http.Request, wk *routerWorker) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, wk.base+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", r.Header.Get("Accept"))
	return rt.client.Do(req)
}

// copyResponse relays a worker response to the client, tagging which
// worker served it.
func copyResponse(w http.ResponseWriter, resp *http.Response, worker string) {
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Pathsel-Worker", worker)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client disconnects surface as copy errors; nothing to do
}

// workerRow is one row of the /api/workers status report.
type workerRow struct {
	Worker string `json:"worker"`
	Up     bool   `json:"up"`
}

func (rt *Router) workerList() []*routerWorker {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*routerWorker, 0, len(rt.workers))
	for _, name := range rt.ring.Nodes() {
		out = append(out, rt.workers[name])
	}
	return out
}

func (rt *Router) workerStatus(w http.ResponseWriter, _ *http.Request) {
	rows := []workerRow{}
	for _, wk := range rt.workerList() {
		rows = append(rows, workerRow{Worker: wk.base, Up: wk.up.Load()})
	}
	writeJSON(w, rows)
}

// routedSuiteStatus is a worker's cache row annotated with its owner.
type routedSuiteStatus struct {
	suiteStatus
	Worker string `json:"worker"`
}

// suites fans out to every worker and merges the cache reports, so one
// request shows where each suite lives in the fleet.
func (rt *Router) suites(w http.ResponseWriter, r *http.Request) {
	rows := []routedSuiteStatus{}
	for _, wk := range rt.workerList() {
		resp, err := rt.tryWorker(r, wk)
		if err != nil || resp.StatusCode != http.StatusOK {
			if err == nil {
				resp.Body.Close()
			}
			continue
		}
		var local []suiteStatus
		err = json.NewDecoder(resp.Body).Decode(&local)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, st := range local {
			rows = append(rows, routedSuiteStatus{suiteStatus: st, Worker: wk.base})
		}
	}
	writeJSON(w, rows)
}

func (rt *Router) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html>\n<html><head><title>pathsel router</title></head><body>\n")
	fmt.Fprintf(w, "<h1>pathsel shard router</h1>\n<p>Default suite: %s preset, seed %d. ", rt.defaults.Preset, rt.defaults.Seed)
	fmt.Fprintf(w, "API requests are consistent-hashed over the workers by (seed, preset).</p>\n<ul>\n")
	for _, wk := range rt.workerList() {
		state := "down"
		if wk.up.Load() {
			state = "up"
		}
		fmt.Fprintf(w, "<li>%s — %s</li>\n", wk.base, state)
	}
	fmt.Fprintf(w, "</ul>\n<p><a href=\"/api/suites\">fleet suites</a> · <a href=\"/api/workers\">workers</a> · <a href=\"/metrics\">metrics</a></p>\n</body></html>\n")
}

// CheckAll probes every worker's /healthz once and updates liveness.
func (rt *Router) CheckAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, wk := range rt.workerList() {
		wg.Add(1)
		go func(wk *routerWorker) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			up := false
			req, err := http.NewRequestWithContext(cctx, http.MethodGet, wk.base+"/healthz", nil)
			if err == nil {
				resp, err := rt.client.Do(req)
				if err == nil {
					up = resp.StatusCode == http.StatusOK
					resp.Body.Close()
				}
			}
			wk.up.Store(up)
			if up {
				wk.upGauge.Set(1)
			} else {
				wk.upGauge.Set(0)
			}
		}(wk)
	}
	wg.Wait()
}

// HealthLoop re-probes workers until ctx is cancelled.
func (rt *Router) HealthLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckAll(ctx)
		}
	}
}
