package server

import "pathsel/internal/obs"

// Metrics bundles the analysis service's own metrics; HTTP-level
// request counters and latencies are added per route by obs.Instrument.
type Metrics struct {
	reg *obs.Registry

	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheDedup      *obs.Counter
	cacheEvictions  *obs.Counter
	buildsRejected  *obs.Counter
	buildsCancelled *obs.Counter

	buildsInflight *obs.Gauge
	cacheEntries   *obs.Gauge

	buildDuration *obs.Histogram

	// Snapshot warm-path metrics: how often cold-start work was avoided
	// by decoding a persisted suite, and what each path costs. The
	// decode histogram next to buildDuration is the build-vs-decode
	// latency comparison on /metrics.
	snapshotLoads         *obs.Counter
	snapshotLoadErrors    *obs.Counter
	snapshotPersists      *obs.Counter
	snapshotPersistErrors *obs.Counter
	decodeDuration        *obs.Histogram
}

func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		cacheHits: reg.Counter("suite_cache_hits_total",
			"Requests served from a completed cached suite."),
		cacheMisses: reg.Counter("suite_cache_misses_total",
			"Requests that started a new suite build."),
		cacheDedup: reg.Counter("suite_cache_dedup_total",
			"Requests that joined an in-flight build instead of starting one."),
		cacheEvictions: reg.Counter("suite_cache_evictions_total",
			"Completed suites evicted by the LRU size bound."),
		buildsRejected: reg.Counter("suite_builds_rejected_total",
			"Requests rejected with 429 because build concurrency was saturated."),
		buildsCancelled: reg.Counter("suite_builds_cancelled_total",
			"In-flight builds cancelled because every waiter disconnected."),
		buildsInflight: reg.Gauge("suite_builds_inflight",
			"Suite builds currently running."),
		cacheEntries: reg.Gauge("suite_cache_entries",
			"Suites resident in the cache (including in-flight builds)."),
		buildDuration: reg.Histogram("suite_build_duration_seconds",
			"Wall-clock duration of successful suite builds."),
		snapshotLoads: reg.Counter("suite_snapshot_loads_total",
			"Suites restored from a persisted snapshot instead of a cold rebuild."),
		snapshotLoadErrors: reg.Counter("suite_snapshot_load_errors_total",
			"Snapshot restore attempts that fell back to a cold rebuild (missing files excluded)."),
		snapshotPersists: reg.Counter("suite_snapshot_persists_total",
			"Built suites persisted to the snapshot directory."),
		snapshotPersistErrors: reg.Counter("suite_snapshot_persist_errors_total",
			"Snapshot persist attempts that failed."),
		decodeDuration: reg.Histogram("suite_decode_duration_seconds",
			"Wall-clock duration of successful snapshot restores (decode plus substrate regeneration)."),
	}
}
