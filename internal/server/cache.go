package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"pathsel/internal/experiments"
)

// errBusy is returned when the cache would need to start a new suite
// build but the configured build concurrency is saturated; the HTTP
// layer maps it to 429 with a Retry-After header.
var errBusy = errors.New("suite build capacity saturated; retry later")

// suiteKey identifies one cached configuration. Concurrency is
// deliberately excluded: it changes wall-clock time, never results, so
// all worker settings share one cache slot.
type suiteKey struct {
	seed   int64
	preset experiments.Preset
}

// suiteEntry is one cache slot: either an in-flight build (ready open)
// or a completed one (ready closed, suite/err set). Completed entries
// also memoize figure computations per figure key, so repeated figure
// requests against a cached suite are cheap while distinct figures
// still compute concurrently.
type suiteEntry struct {
	cfg experiments.Config

	ready chan struct{} // closed when the build finishes
	suite *experiments.Suite
	err   error

	// waiters and cancel are guarded by the cache mutex: every request
	// waiting on this entry holds one reference, and when the last
	// waiter disconnects before the build completes, the build context
	// is cancelled.
	waiters int
	cancel  context.CancelFunc

	// figMu guards figures; each figure gets its own future so two
	// different figures never serialize behind one lock (and the same
	// figure computes exactly once per suite).
	figMu   sync.Mutex
	figures map[string]*figFuture

	// ovMu guards overlay, the memoized overlay-exhibit computation.
	ovMu    sync.Mutex
	overlay *overlayFuture

	// mpMu guards multipath, the memoized path-set exhibit.
	mpMu      sync.Mutex
	multipath *multipathFuture

	// pvMu guards packet, the memoized packet-level validation.
	pvMu   sync.Mutex
	packet *packetFuture
}

// figFuture memoizes one figure computation on a suite.
type figFuture struct {
	done   chan struct{}
	series []experiments.Series
	err    error
}

// overlayFuture memoizes the overlay exhibit on a suite.
type overlayFuture struct {
	done chan struct{}
	res  experiments.OverlayResult
	err  error
}

// multipathFuture memoizes the path-set exhibit on a suite.
type multipathFuture struct {
	done chan struct{}
	res  experiments.MultipathResult
	err  error
}

// packetFuture memoizes the packet-level validation on a suite.
type packetFuture struct {
	done chan struct{}
	res  experiments.PacketValidation
	err  error
}

// BuildFunc builds a suite; production wires experiments.BuildContext,
// tests substitute fakes.
type BuildFunc func(context.Context, experiments.Config) (*experiments.Suite, error)

// SuiteCache is a size-bounded LRU of built suites with singleflight
// deduplication and admission control. Concurrent requests for the
// same configuration share one build; requests for distinct
// configurations build concurrently up to maxBuilds, beyond which new
// configurations are rejected with errBusy. Completed suites are
// evicted least-recently-used once more than max are resident, so
// memory stays bounded no matter how many seeds are explored.
type SuiteCache struct {
	build       BuildFunc
	concurrency int // analysis workers stamped into every config

	mu       sync.Mutex
	max      int
	maxBuild int
	building int
	entries  map[suiteKey]*suiteEntry
	order    []suiteKey // least-recently-used first

	metrics *Metrics
}

// NewSuiteCache builds a cache holding up to max completed suites and
// running up to maxBuild concurrent builds.
func NewSuiteCache(max, maxBuild, concurrency int, build BuildFunc, m *Metrics) *SuiteCache {
	if max < 1 {
		max = 1
	}
	if maxBuild < 1 {
		maxBuild = 1
	}
	return &SuiteCache{
		build:       build,
		concurrency: concurrency,
		max:         max,
		maxBuild:    maxBuild,
		entries:     map[suiteKey]*suiteEntry{},
		metrics:     m,
	}
}

// get returns the entry for cfg, building it on demand. The returned
// entry's build has completed successfully (entry.suite is usable).
// Cancelling ctx abandons the wait; if that makes the waiter count
// reach zero the in-flight build itself is cancelled.
func (c *SuiteCache) Get(ctx context.Context, cfg experiments.Config) (*suiteEntry, error) {
	cfg.Concurrency = c.concurrency
	key := suiteKey{seed: cfg.Seed, preset: cfg.Preset}
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.ready:
				// Completed entry: a pure cache hit.
				c.touchLocked(key)
				c.metrics.cacheHits.Inc()
				c.mu.Unlock()
				return e, e.err
			default:
			}
			// In-flight build: join it instead of starting another.
			e.waiters++
			c.metrics.cacheDedup.Inc()
			c.mu.Unlock()
			entry, err := c.wait(ctx, e)
			if err != nil && errors.Is(err, context.Canceled) && ctx.Err() == nil {
				// The build we joined was cancelled by its other waiters
				// disconnecting, but our client is still here: retry.
				continue
			}
			return entry, err
		}
		// Miss: admission control before starting a build.
		if c.building >= c.maxBuild {
			c.metrics.buildsRejected.Inc()
			c.mu.Unlock()
			return nil, errBusy
		}
		// A build is shared by every waiter, so it must outlive any single
		// requester's context; the waiter refcount cancels it when the
		// last client disconnects.
		//repolint:allow ctxflow -- deliberate detach, cancellation handled by waiter refcounting
		bctx, cancel := context.WithCancel(context.Background())
		e := &suiteEntry{
			cfg:     cfg,
			ready:   make(chan struct{}),
			cancel:  cancel,
			waiters: 1,
			figures: map[string]*figFuture{},
		}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.building++
		c.metrics.cacheMisses.Inc()
		c.metrics.buildsInflight.Inc()
		c.metrics.cacheEntries.Set(int64(len(c.entries)))
		c.mu.Unlock()
		go c.run(bctx, key, e)
		return c.wait(ctx, e)
	}
}

// run executes the build on its own goroutine (detached from any one
// request) and publishes the result.
func (c *SuiteCache) run(ctx context.Context, key suiteKey, e *suiteEntry) {
	start := time.Now()
	suite, err := c.build(ctx, e.cfg)
	e.suite, e.err = suite, err

	c.mu.Lock()
	close(e.ready)
	c.building--
	c.metrics.buildsInflight.Dec()
	if err != nil {
		// Failed (or cancelled) builds are not cached: drop the entry so
		// the next request retries cleanly.
		c.removeLocked(key)
		if errors.Is(err, context.Canceled) {
			c.metrics.buildsCancelled.Inc()
		}
	} else {
		c.metrics.buildDuration.Observe(time.Since(start).Seconds())
		c.evictLocked()
	}
	c.metrics.cacheEntries.Set(int64(len(c.entries)))
	c.mu.Unlock()
	e.cancel() // release the context's resources
}

// wait blocks until the entry is ready or ctx is cancelled, keeping the
// waiter refcount accurate either way.
func (c *SuiteCache) wait(ctx context.Context, e *suiteEntry) (*suiteEntry, error) {
	select {
	case <-e.ready:
		c.mu.Lock()
		e.waiters--
		c.mu.Unlock()
		return e, e.err
	case <-ctx.Done():
		c.mu.Lock()
		e.waiters--
		if e.waiters == 0 {
			select {
			case <-e.ready:
				// Build finished in the meantime; keep the result.
			default:
				// Every client interested in this configuration has
				// disconnected: abort the build.
				e.cancel()
			}
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// touchLocked marks a key most-recently-used.
func (c *SuiteCache) touchLocked(key suiteKey) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// removeLocked drops a key from the map and LRU order.
func (c *SuiteCache) removeLocked(key suiteKey) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked enforces the size bound over completed entries, oldest
// first. In-flight builds are never evicted (their waiters hold them).
func (c *SuiteCache) evictLocked() {
	ready := 0
	for _, e := range c.entries {
		select {
		case <-e.ready:
			ready++
		default:
		}
	}
	for i := 0; ready > c.max && i < len(c.order); {
		key := c.order[i]
		e := c.entries[key]
		select {
		case <-e.ready:
			c.removeLocked(key)
			c.metrics.cacheEvictions.Inc()
			ready--
			// order shifted left; re-examine index i.
		default:
			i++
		}
	}
}

// snapshot lists the cached configurations (for the index page),
// most-recently-used last, marking in-flight builds.
func (c *SuiteCache) snapshot() []suiteStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]suiteStatus, 0, len(c.order))
	for _, key := range c.order {
		e := c.entries[key]
		st := suiteStatus{Seed: key.seed, Preset: key.preset.String()}
		select {
		case <-e.ready:
			st.State = "ready"
		default:
			st.State = "building"
		}
		out = append(out, st)
	}
	return out
}

// suiteStatus is one row of the cache snapshot.
type suiteStatus struct {
	Seed   int64  `json:"seed"`
	Preset string `json:"preset"`
	State  string `json:"state"`
}
