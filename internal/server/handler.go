package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
	"pathsel/internal/stats"
)

// handler serves every suite analysis on demand: endpoints take
// ?seed=N&preset=quick|full|scale query parameters (falling back to the
// server's default configuration) and are backed by the LRU suite
// cache, so the same process answers any configuration without a
// restart.
type handler struct {
	cache    *SuiteCache
	defaults experiments.Config
	reg      *obs.Registry
	mux      *http.ServeMux
}

// NewHandler wires the routes. defaults supplies the seed and preset
// used when a request does not specify them.
func NewHandler(cache *SuiteCache, defaults experiments.Config, reg *obs.Registry) http.Handler {
	h := &handler{cache: cache, defaults: defaults, reg: reg, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /{$}", h.index)
	h.mux.HandleFunc("GET /api/table1", h.table1)
	h.mux.HandleFunc("GET /api/table/{n}", h.verdictTable)
	h.mux.HandleFunc("GET /api/figure/{n}", h.figure)
	h.mux.HandleFunc("GET /api/cdf/{fig}/{series}", h.cdf)
	h.mux.HandleFunc("GET /api/overlay", h.overlay)
	h.mux.HandleFunc("GET /api/multipath", h.multipath)
	h.mux.HandleFunc("GET /api/packetlevel", h.packetlevel)
	h.mux.HandleFunc("GET /api/suites", h.suites)
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.Handle("GET /metrics", reg.Handler())
	h.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	h.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return h
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// configFrom resolves the request's suite configuration from the seed
// and preset query parameters, defaulting to the server configuration.
func (h *handler) configFrom(r *http.Request) (experiments.Config, error) {
	return suiteConfigFrom(h.defaults, r)
}

// suiteConfigFrom parses the ?seed and ?preset query parameters on top
// of the given defaults. The worker handler and the shard router share
// this one parser, so a request hashes to the same configuration the
// worker will resolve it to.
func suiteConfigFrom(defaults experiments.Config, r *http.Request) (experiments.Config, error) {
	cfg := defaults
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad seed %q: want an integer", v)
		}
		cfg.Seed = seed
	}
	if v := q.Get("preset"); v != "" {
		preset, err := experiments.ParsePreset(v)
		if err != nil {
			return cfg, err
		}
		cfg.Preset = preset
	}
	return cfg, nil
}

// entryFor parses the request configuration and resolves it through
// the cache, writing the appropriate error response (400 for bad
// parameters, 429 when build capacity is saturated, 500 for build
// failures) and returning ok=false when the caller should not proceed.
func (h *handler) entryFor(w http.ResponseWriter, r *http.Request) (*suiteEntry, bool) {
	cfg, err := h.configFrom(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	e, err := h.cache.Get(r.Context(), cfg)
	switch {
	case err == nil:
		return e, true
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", "10")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case r.Context().Err() != nil:
		// The client is gone; nothing useful can be written.
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return nil, false
}

// seriesFigures maps figure numbers to their drivers. Figures with
// non-series output (7, 8, 12, 13, 14, 16) are adapted in
// computeSeries.
var seriesFigures = map[string]func(*experiments.Suite) ([]experiments.Series, error){
	"1": experiments.Figure1, "2": experiments.Figure2, "3": experiments.Figure3,
	"4": experiments.Figure4, "5": experiments.Figure5, "6": experiments.Figure6,
	"9": experiments.Figure9, "10": experiments.Figure10, "11": experiments.Figure11,
	"15": experiments.Figure15,
}

// errUnknownFigure distinguishes a 404 from a computation failure.
var errUnknownFigure = errors.New("unknown figure")

// adaptedFigures are the non-series figures computeSeries adapts.
var adaptedFigures = map[string]bool{"7": true, "8": true, "12": true, "13": true, "14": true, "16": true}

// validFigure reports whether n names a servable figure; checked before
// resolving the suite so an unknown figure 404s without building
// anything.
func validFigure(n string) bool {
	_, ok := seriesFigures[n]
	return ok || adaptedFigures[n]
}

// computeSeries runs one figure driver on the suite, adapting the
// non-series figures to CDF curves.
func computeSeries(s *experiments.Suite, n string) ([]experiments.Series, error) {
	switch n {
	case "7", "8":
		fn := experiments.Figure7
		if n == "8" {
			fn = experiments.Figure8
		}
		pts, err := fn(s)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p.Improvement
		}
		return []experiments.Series{{Name: "improvement", CDF: stats.NewCDF(vals)}}, nil
	case "12":
		res, err := experiments.Figure12(s)
		if err != nil {
			return nil, err
		}
		return []experiments.Series{res.All, res.Without}, nil
	case "13":
		sr, err := experiments.Figure13(s)
		if err != nil {
			return nil, err
		}
		return []experiments.Series{sr}, nil
	case "14":
		counts, err := experiments.Figure14(s)
		if err != nil {
			return nil, err
		}
		direct := make([]float64, len(counts))
		alt := make([]float64, len(counts))
		for i, c := range counts {
			direct[i] = float64(c.Direct)
			alt[i] = float64(c.Alternate)
		}
		return []experiments.Series{
			{Name: "direct", CDF: stats.NewCDF(direct)},
			{Name: "alternate", CDF: stats.NewCDF(alt)},
		}, nil
	case "16":
		decs, err := experiments.Figure16(s)
		if err != nil {
			return nil, err
		}
		total := make([]float64, len(decs))
		prop := make([]float64, len(decs))
		for i, d := range decs {
			total[i] = d.TotalDiff
			prop[i] = d.PropDiff
		}
		return []experiments.Series{
			{Name: "total", CDF: stats.NewCDF(total)},
			{Name: "propagation", CDF: stats.NewCDF(prop)},
		}, nil
	default:
		fn, ok := seriesFigures[n]
		if !ok {
			return nil, fmt.Errorf("%w %q", errUnknownFigure, n)
		}
		return fn(s)
	}
}

// seriesFor returns the (memoized) curves for a figure number on a
// cached suite. Each figure key has its own future, so distinct
// figures compute concurrently and the same figure computes once per
// suite; a computation aborted by its requester's disconnection is
// forgotten so the next request retries.
func (h *handler) seriesFor(ctx context.Context, e *suiteEntry, n string) ([]experiments.Series, error) {
	for {
		e.figMu.Lock()
		f, ok := e.figures[n]
		if !ok {
			f = &figFuture{done: make(chan struct{})}
			e.figures[n] = f
			e.figMu.Unlock()
			f.series, f.err = computeSeries(e.suite.WithContext(ctx), n)
			if f.err != nil && errors.Is(f.err, context.Canceled) {
				// Cancelled mid-computation: drop the future before
				// publishing so waiters joined on it can retry.
				e.figMu.Lock()
				delete(e.figures, n)
				e.figMu.Unlock()
			}
			close(f.done)
			return f.series, f.err
		}
		e.figMu.Unlock()
		select {
		case <-f.done:
			if f.err != nil && errors.Is(f.err, context.Canceled) && ctx.Err() == nil {
				continue // the computing request disconnected; retry as owner
			}
			return f.series, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *handler) table1(w http.ResponseWriter, r *http.Request) {
	e, ok := h.entryFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, experiments.Table1(e.suite))
}

type verdictJSON struct {
	Dataset       string  `json:"dataset"`
	Better        float64 `json:"betterPct"`
	Indeterminate float64 `json:"indeterminatePct"`
	Worse         float64 `json:"worsePct"`
	BothZero      float64 `json:"bothZeroPct"`
}

func (h *handler) verdictTable(w http.ResponseWriter, r *http.Request) {
	var fn func(*experiments.Suite) ([]experiments.VerdictRow, error)
	switch r.PathValue("n") {
	case "2":
		fn = experiments.Table2
	case "3":
		fn = experiments.Table3
	default:
		http.Error(w, "unknown table (want 2 or 3)", http.StatusNotFound)
		return
	}
	e, ok := h.entryFor(w, r)
	if !ok {
		return
	}
	rows, err := fn(e.suite.WithContext(r.Context()))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]verdictJSON, len(rows))
	for i, row := range rows {
		b, ind, wo, z := row.Counts.Percent()
		out[i] = verdictJSON{Dataset: row.Dataset, Better: b, Indeterminate: ind, Worse: wo, BothZero: z}
	}
	writeJSON(w, out)
}

type seriesJSON struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Median      float64 `json:"median"`
	P90         float64 `json:"p90"`
	FracAbove0  float64 `json:"fracAboveZero"`
	CDFEndpoint string  `json:"cdf"`
}

// cdfQuery reproduces the request's configuration parameters on nested
// endpoint links, so a figure fetched for one seed links to CDFs of
// the same seed.
func cdfQuery(r *http.Request) string {
	q := r.URL.Query()
	keep := make([]string, 0, 2)
	for _, k := range []string{"seed", "preset"} {
		if v := q.Get(k); v != "" {
			keep = append(keep, k+"="+v)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return "?" + strings.Join(keep, "&")
}

func (h *handler) figure(w http.ResponseWriter, r *http.Request) {
	n := r.PathValue("n")
	if !validFigure(n) {
		http.Error(w, fmt.Sprintf("unknown figure %q", n), http.StatusNotFound)
		return
	}
	e, ok := h.entryFor(w, r)
	if !ok {
		return
	}
	series, err := h.seriesFor(r.Context(), e, n)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errUnknownFigure) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	out := make([]seriesJSON, 0, len(series))
	for _, sr := range series {
		med, _ := sr.CDF.Quantile(0.5)
		p90, _ := sr.CDF.Quantile(0.9)
		out = append(out, seriesJSON{
			Name: sr.Name, N: sr.CDF.N(), Median: med, P90: p90,
			FracAbove0:  sr.CDF.FractionAbove(0),
			CDFEndpoint: fmt.Sprintf("/api/cdf/%s/%s%s", n, slug(sr.Name), cdfQuery(r)),
		})
	}
	writeJSON(w, out)
}

func (h *handler) cdf(w http.ResponseWriter, r *http.Request) {
	if n := r.PathValue("fig"); !validFigure(n) {
		http.Error(w, fmt.Sprintf("unknown figure %q", n), http.StatusNotFound)
		return
	}
	e, ok := h.entryFor(w, r)
	if !ok {
		return
	}
	series, err := h.seriesFor(r.Context(), e, r.PathValue("fig"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errUnknownFigure) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	want := r.PathValue("series")
	for _, sr := range series {
		if slug(sr.Name) != want {
			continue
		}
		w.Header().Set("Content-Type", "text/tab-separated-values")
		for _, p := range sr.CDF.Points() {
			fmt.Fprintf(w, "%g\t%.4f\n", p.X, p.Frac)
		}
		return
	}
	http.Error(w, "unknown series", http.StatusNotFound)
}

// overlayBudgetJSON is one probing-budget row of the overlay exhibit.
type overlayBudgetJSON struct {
	ProbesPerSec float64 `json:"probesPerSec"`
	AvailDefault float64 `json:"availDefault"`
	AvailOverlay float64 `json:"availOverlay"`
	AvailOptimal float64 `json:"availOptimal"`
	RTTDefaultMs float64 `json:"rttDefaultMs"`
	RTTOverlayMs float64 `json:"rttOverlayMs"`
	RTTOptimalMs float64 `json:"rttOptimalMs"`
	RelayShare   float64 `json:"relayShare"`

	Reactions         int     `json:"reactions"`
	MedianReactionSec float64 `json:"medianReactionSec"`
	P90ReactionSec    float64 `json:"p90ReactionSec"`

	ProbesSent      int `json:"probesSent"`
	Switches        int `json:"switches"`
	OutagesDetected int `json:"outagesDetected"`
}

type overlayJSON struct {
	Nodes   int                 `json:"nodes"`
	Pairs   int                 `json:"pairs"`
	Epochs  int                 `json:"epochs"`
	Budgets []overlayBudgetJSON `json:"budgets"`
}

// overlayFor returns the (memoized) overlay exhibit for a cached
// suite, with the same cancel-retry semantics as seriesFor: an exhibit
// aborted by its requester's disconnection is forgotten so the next
// request recomputes it.
func (h *handler) overlayFor(ctx context.Context, e *suiteEntry) (experiments.OverlayResult, error) {
	for {
		e.ovMu.Lock()
		f := e.overlay
		if f == nil {
			f = &overlayFuture{done: make(chan struct{})}
			e.overlay = f
			e.ovMu.Unlock()
			f.res, f.err = experiments.Overlay(e.suite.WithContext(ctx), e.cfg.Seed)
			if f.err != nil && errors.Is(f.err, context.Canceled) {
				e.ovMu.Lock()
				e.overlay = nil
				e.ovMu.Unlock()
			}
			close(f.done)
			return f.res, f.err
		}
		e.ovMu.Unlock()
		select {
		case <-f.done:
			if f.err != nil && errors.Is(f.err, context.Canceled) && ctx.Err() == nil {
				continue // the computing request disconnected; retry as owner
			}
			return f.res, f.err
		case <-ctx.Done():
			return experiments.OverlayResult{}, ctx.Err()
		}
	}
}

func (h *handler) overlay(w http.ResponseWriter, r *http.Request) {
	e, ok := h.entryFor(w, r)
	if !ok {
		return
	}
	res, err := h.overlayFor(r.Context(), e)
	if err != nil {
		if r.Context().Err() == nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	out := overlayJSON{Nodes: res.Nodes, Pairs: res.Pairs, Epochs: res.Epochs}
	for _, b := range res.Budgets {
		row := overlayBudgetJSON{
			ProbesPerSec: b.ProbesPerSec,
			AvailDefault: b.Default.Availability,
			AvailOverlay: b.Overlay.Availability,
			AvailOptimal: b.Optimal.Availability,
			RTTDefaultMs: b.Default.MeanRTTMs,
			RTTOverlayMs: b.Overlay.MeanRTTMs,
			RTTOptimalMs: b.Optimal.MeanRTTMs,
			RelayShare:   b.RelayShare,

			Reactions:       len(b.Reactions),
			ProbesSent:      b.ProbesSent,
			Switches:        b.Switches,
			OutagesDetected: b.OutagesDetected,
		}
		c := stats.NewCDF(b.Reactions)
		if med, err := c.Quantile(0.5); err == nil {
			row.MedianReactionSec = med
		}
		if p90, err := c.Quantile(0.9); err == nil {
			row.P90ReactionSec = p90
		}
		out.Budgets = append(out.Budgets, row)
	}
	writeJSON(w, out)
}

// multipathFor returns the (memoized) path-set exhibit for a cached
// suite, with the same cancel-retry semantics as seriesFor and
// overlayFor.
func (h *handler) multipathFor(ctx context.Context, e *suiteEntry) (experiments.MultipathResult, error) {
	for {
		e.mpMu.Lock()
		f := e.multipath
		if f == nil {
			f = &multipathFuture{done: make(chan struct{})}
			e.multipath = f
			e.mpMu.Unlock()
			f.res, f.err = experiments.Multipath(e.suite.WithContext(ctx))
			if f.err != nil && errors.Is(f.err, context.Canceled) {
				e.mpMu.Lock()
				e.multipath = nil
				e.mpMu.Unlock()
			}
			close(f.done)
			return f.res, f.err
		}
		e.mpMu.Unlock()
		select {
		case <-f.done:
			if f.err != nil && errors.Is(f.err, context.Canceled) && ctx.Err() == nil {
				continue // the computing request disconnected; retry as owner
			}
			return f.res, f.err
		case <-ctx.Done():
			return experiments.MultipathResult{}, ctx.Err()
		}
	}
}

// packetFor returns the (memoized) packet-level validation for a
// cached suite, with the same cancel-retry semantics as seriesFor,
// overlayFor and multipathFor.
func (h *handler) packetFor(ctx context.Context, e *suiteEntry) (experiments.PacketValidation, error) {
	for {
		e.pvMu.Lock()
		f := e.packet
		if f == nil {
			f = &packetFuture{done: make(chan struct{})}
			e.packet = f
			e.pvMu.Unlock()
			f.res, f.err = experiments.ValidatePacketLevel(e.suite.WithContext(ctx))
			if f.err != nil && errors.Is(f.err, context.Canceled) {
				e.pvMu.Lock()
				e.packet = nil
				e.pvMu.Unlock()
			}
			close(f.done)
			return f.res, f.err
		}
		e.pvMu.Unlock()
		select {
		case <-f.done:
			if f.err != nil && errors.Is(f.err, context.Canceled) && ctx.Err() == nil {
				continue // the computing request disconnected; retry as owner
			}
			return f.res, f.err
		case <-ctx.Done():
			return experiments.PacketValidation{}, ctx.Err()
		}
	}
}

func (h *handler) packetlevel(w http.ResponseWriter, r *http.Request) {
	e, ok := h.entryFor(w, r)
	if !ok {
		return
	}
	res, err := h.packetFor(r.Context(), e)
	if err != nil {
		if r.Context().Err() == nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, res)
}

func (h *handler) multipath(w http.ResponseWriter, r *http.Request) {
	e, ok := h.entryFor(w, r)
	if !ok {
		return
	}
	res, err := h.multipathFor(r.Context(), e)
	if err != nil {
		if r.Context().Err() == nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, res)
}

// suites reports the cache contents: which configurations are resident
// and whether each is ready or still building.
func (h *handler) suites(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, h.cache.snapshot())
}

func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>pathsel results</title></head><body>
<h1>The End-to-End Effects of Internet Path Selection — reproduction</h1>
<p>Default suite: {{.Preset}} preset, seed {{.Seed}}. Every /api
endpoint accepts <code>?seed=N&amp;preset=quick|full|scale</code> and builds
the requested suite on demand (cached, LRU-bounded).</p>
<ul>
<li><a href="/api/table1">Table 1: dataset characteristics</a></li>
<li><a href="/api/table/2">Table 2: RTT verdicts</a> · <a href="/api/table/3">Table 3: loss verdicts</a></li>
{{range .Figures}}<li><a href="/api/figure/{{.}}">Figure {{.}}</a></li>
{{end}}<li><a href="/api/overlay">Overlay exhibit: online path selection vs default vs offline optimum</a></li>
<li><a href="/api/multipath">Multipath exhibit: k-alternate path sets and AS disjointness</a></li>
<li><a href="/api/packetlevel">Packet-level exhibit: TCP over simulated links vs Mathis vs rounds model</a></li>
</ul>
<p>Operations: <a href="/api/suites">cached suites</a> ·
<a href="/metrics">metrics</a> · <a href="/healthz">health</a> ·
<a href="/debug/pprof/">pprof</a></p>
</body></html>`))

func (h *handler) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	figures := []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16"}
	err := indexTmpl.Execute(w, map[string]any{
		"Preset":  h.defaults.Preset.String(),
		"Seed":    h.defaults.Seed,
		"Figures": figures,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// slug normalizes a series name for URLs.
func slug(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
}
