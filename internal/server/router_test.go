package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
	"pathsel/internal/shard"
)

// stubWorker is a fake backend that identifies itself in every
// response, so tests can see where the router sent a request.
func stubWorker(name string, status int) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, "ok")
		case "/api/suites":
			writeJSON(w, []suiteStatus{{Seed: 1, Preset: "quick", State: "ready"}})
		default:
			w.WriteHeader(status)
			fmt.Fprint(w, name)
		}
	}))
}

func testRouter(t *testing.T, backends ...string) *Router {
	t.Helper()
	defaults := experiments.Config{Seed: 1, Preset: experiments.Quick}
	return NewRouter(backends, defaults, 2, obs.NewRegistry())
}

// ownerOf replicates the router's placement so tests can construct
// requests that land on a specific worker.
func ownerOf(seed int64, backends []string) string {
	r := shard.New(0)
	for _, b := range backends {
		r.Add(b)
	}
	return r.Lookup(shard.Key(seed, "quick"), 1)[0]
}

func TestRouterForwardsConsistently(t *testing.T) {
	w1 := stubWorker("w1", http.StatusOK)
	defer w1.Close()
	w2 := stubWorker("w2", http.StatusOK)
	defer w2.Close()
	rt := testRouter(t, w1.URL, w2.URL)

	hit := map[string]bool{}
	for seed := 0; seed < 40; seed++ {
		path := fmt.Sprintf("/api/table1?seed=%d", seed)
		first := get(t, rt, path)
		if first.Code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, first.Code, first.Body.String())
		}
		again := get(t, rt, path)
		if first.Body.String() != again.Body.String() {
			t.Fatalf("seed %d routed to %s then %s", seed, first.Body.String(), again.Body.String())
		}
		if got, want := first.Body.String(), first.Header().Get("X-Pathsel-Worker"); (got == "w1") != (want == w1.URL) {
			t.Errorf("seed %d: body %s but X-Pathsel-Worker %s", seed, got, want)
		}
		hit[first.Body.String()] = true
	}
	if !hit["w1"] || !hit["w2"] {
		t.Errorf("40 seeds all routed to one worker: %v", hit)
	}
}

func TestRouterRetriesOntoSuccessor(t *testing.T) {
	sick := stubWorker("sick", http.StatusServiceUnavailable)
	defer sick.Close()
	well := stubWorker("well", http.StatusOK)
	defer well.Close()
	rt := testRouter(t, sick.URL, well.URL)

	// Every request must end on the healthy worker, whichever owner the
	// ring picked; keys owned by the sick worker arrive via retry.
	retriedSome := false
	for seed := 0; seed < 20; seed++ {
		rec := get(t, rt, fmt.Sprintf("/api/figure/1?seed=%d", seed))
		if rec.Code != http.StatusOK || rec.Body.String() != "well" {
			t.Fatalf("seed %d: status %d body %q", seed, rec.Code, rec.Body.String())
		}
		if ownerOf(int64(seed), []string{sick.URL, well.URL}) == sick.URL {
			retriedSome = true
		}
	}
	if !retriedSome {
		t.Skip("ring gave every test key to the healthy worker; widen the seed range")
	}
	metrics := get(t, rt, "/metrics").Body.String()
	if !strings.Contains(metrics, "router_retries_total") {
		t.Errorf("metrics missing retry counter:\n%s", metrics)
	}
}

func TestRouterRetriesDeadTransport(t *testing.T) {
	dead := stubWorker("dead", http.StatusOK)
	dead.Close() // connection refused from the start
	well := stubWorker("well", http.StatusOK)
	defer well.Close()
	rt := testRouter(t, dead.URL, well.URL)

	for seed := 0; seed < 20; seed++ {
		rec := get(t, rt, fmt.Sprintf("/api/table1?seed=%d", seed))
		if rec.Code != http.StatusOK || rec.Body.String() != "well" {
			t.Fatalf("seed %d: status %d body %q", seed, rec.Code, rec.Body.String())
		}
	}
}

// TestRouterPassesThrough500 checks that a deterministic compute error
// is NOT retried: every worker would fail identically, so the first
// worker's 500 goes straight to the client.
func TestRouterPassesThrough500(t *testing.T) {
	buggy := stubWorker("buggy", http.StatusInternalServerError)
	defer buggy.Close()
	fine := stubWorker("fine", http.StatusOK)
	defer fine.Close()
	rt := testRouter(t, buggy.URL, fine.URL)

	// Find a seed owned by the buggy worker.
	for seed := 0; seed < 100; seed++ {
		if ownerOf(int64(seed), []string{buggy.URL, fine.URL}) != buggy.URL {
			continue
		}
		rec := get(t, rt, fmt.Sprintf("/api/table1?seed=%d", seed))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("seed %d: status %d, want 500 passed through", seed, rec.Code)
		}
		if rec.Body.String() != "buggy" {
			t.Fatalf("500 was retried onto %q", rec.Body.String())
		}
		return
	}
	t.Fatal("no seed in 0..99 owned by buggy worker")
}

func TestRouterAllWorkersFailing(t *testing.T) {
	a := stubWorker("a", http.StatusServiceUnavailable)
	defer a.Close()
	b := stubWorker("b", http.StatusServiceUnavailable)
	defer b.Close()
	rt := testRouter(t, a.URL, b.URL)
	rec := get(t, rt, "/api/table1")
	if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502/503 when the whole fleet is failing", rec.Code)
	}
}

func TestRouterHealthCheck(t *testing.T) {
	live := stubWorker("live", http.StatusOK)
	defer live.Close()
	gone := stubWorker("gone", http.StatusOK)
	gone.Close()
	rt := testRouter(t, live.URL, gone.URL)

	rt.CheckAll(context.Background())
	rec := get(t, rt, "/api/workers")
	var rows []workerRow
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d worker rows", len(rows))
	}
	for _, row := range rows {
		want := row.Worker == live.URL
		if row.Up != want {
			t.Errorf("worker %s up=%v, want %v", row.Worker, row.Up, want)
		}
	}
	// Liveness also shows on the index and in metrics.
	if body := get(t, rt, "/").Body.String(); !strings.Contains(body, "down") {
		t.Errorf("index does not show the dead worker:\n%s", body)
	}
	if body := get(t, rt, "/metrics").Body.String(); !strings.Contains(body, "router_worker_up") {
		t.Errorf("metrics missing router_worker_up:\n%s", body)
	}
}

func TestRouterSuitesFanOut(t *testing.T) {
	w1 := stubWorker("w1", http.StatusOK)
	defer w1.Close()
	w2 := stubWorker("w2", http.StatusOK)
	defer w2.Close()
	rt := testRouter(t, w1.URL, w2.URL)

	rec := get(t, rt, "/api/suites")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var rows []routedSuiteStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d merged rows, want one per worker", len(rows))
	}
	workers := map[string]bool{}
	for _, row := range rows {
		if row.Seed != 1 || row.State != "ready" {
			t.Errorf("unexpected row %+v", row)
		}
		workers[row.Worker] = true
	}
	if !workers[w1.URL] || !workers[w2.URL] {
		t.Errorf("rows not annotated with both workers: %+v", rows)
	}
}

func TestRouterBadQueryNotForwarded(t *testing.T) {
	w1 := stubWorker("w1", http.StatusOK)
	defer w1.Close()
	rt := testRouter(t, w1.URL)
	rec := get(t, rt, "/api/table1?preset=bogus")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 before any forward", rec.Code)
	}
}

// TestRouterEndToEndByteIdentical drives a real worker (the shared
// quick-suite handler) through the router and checks the proxied
// figure response is byte-identical to a direct request.
func TestRouterEndToEndByteIdentical(t *testing.T) {
	h := testHandler(t)
	w1 := httptest.NewServer(h)
	defer w1.Close()
	w2 := httptest.NewServer(h)
	defer w2.Close()
	rt := testRouter(t, w1.URL, w2.URL)

	direct := get(t, h, "/api/figure/3?seed=1&preset=quick")
	routed := get(t, rt, "/api/figure/3?seed=1&preset=quick")
	if routed.Code != http.StatusOK {
		t.Fatalf("routed status %d: %s", routed.Code, routed.Body.String())
	}
	if routed.Body.String() != direct.Body.String() {
		t.Error("routed figure response differs from direct response")
	}
	if ct := routed.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type %q not relayed", ct)
	}
	if routed.Header().Get("X-Pathsel-Worker") == "" {
		t.Error("router did not tag the serving worker")
	}
}
