// Package probe implements the measurement instruments the paper's
// datasets were collected with: a simulated traceroute (three RTT echo
// samples per invocation, per-hop router discovery, ICMP rate-limiting
// behaviour at some targets), a single-shot ping, and an npd-style TCP
// transfer measurement that records the RTT and loss a TCP session
// observes (used for the N2 bandwidth dataset).
//
// Echo round-trip times traverse the forward path to the target and the
// (possibly different) reverse path back, so routing asymmetry shows up
// in the measurements just as it did for the paper's authors.
package probe

import (
	"fmt"
	"math/rand"

	"pathsel/internal/forward"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// SamplesPerTraceroute is the number of echo samples a single traceroute
// invocation takes to the final host ("Each traceroute invocation takes
// three consecutive samples of the round trip time to the end host").
const SamplesPerTraceroute = 3

// Config tunes instrument behaviour.
type Config struct {
	// Seed feeds the prober's sampling randomness.
	Seed int64
	// ContactFailProb is the chance the control host cannot contact the
	// remote server at all, so no measurement is made.
	ContactFailProb float64
	// RateLimitDropProb is the probability that a rate-limiting target
	// drops each echo sample after the first.
	RateLimitDropProb float64
	// TransferPackets is the number of packets observed by a TCP
	// transfer measurement.
	TransferPackets int
}

// DefaultConfig returns instrument settings matching the paper's setup.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		ContactFailProb:   0.02,
		RateLimitDropProb: 0.75,
		TransferPackets:   200,
	}
}

// Sample is one echo round-trip measurement.
type Sample struct {
	RTTMs float64
	Lost  bool
}

// Result is the outcome of one traceroute or ping invocation.
type Result struct {
	Src, Dst topology.HostID
	At       netsim.Time
	// Failed is set when the control host could not contact the server;
	// no other fields besides Src/Dst/At are meaningful.
	Failed bool
	// Samples are the echo samples to the destination host.
	Samples []Sample
	// HopRouters is the forward path revealed by the traceroute
	// (attachment router of the source through attachment router of the
	// destination). Empty for pings.
	HopRouters []topology.RouterID
	// ASPath is the forward AS-level path (derived from HopRouters).
	ASPath []topology.ASN
}

// LostCount returns how many samples were lost.
func (r Result) LostCount() int {
	n := 0
	for _, s := range r.Samples {
		if s.Lost {
			n++
		}
	}
	return n
}

// TransferResult is an npd/tcpanaly-style measurement of a TCP session.
type TransferResult struct {
	Src, Dst topology.HostID
	At       netsim.Time
	Failed   bool
	// MeanRTTMs is the session's mean round-trip time.
	MeanRTTMs float64
	// LossRate is the fraction of the session's packets that were lost.
	LossRate float64
	// Packets is the number of packets the session sent.
	Packets int
}

// PathProvider supplies the forwarding path between two hosts at a
// simulated time. A static *forward.Forwarder (wrapped in a cache)
// satisfies it for converged-network campaigns; the dynamics package's
// Timeline satisfies it for campaigns over a failing, reconverging
// network.
type PathProvider interface {
	PathAt(src, dst topology.HostID, at netsim.Time) (forward.Path, error)
}

// Prober issues simulated measurements over a forwarding plane and
// network model.
type Prober struct {
	top   *topology.Topology
	paths PathProvider
	net   *netsim.Network
	cfg   Config
	rng   *rand.Rand
}

// New creates a Prober over a static converged forwarding plane.
func New(top *topology.Topology, fwd *forward.Forwarder, net *netsim.Network, cfg Config) *Prober {
	return NewWithProvider(top, forward.NewCache(fwd), net, cfg)
}

// NewWithProvider creates a Prober over an arbitrary (possibly
// time-dependent) path provider.
func NewWithProvider(top *topology.Topology, paths PathProvider, net *netsim.Network, cfg Config) *Prober {
	return &Prober{
		top: top, paths: paths, net: net, cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// path returns the forwarding path between two hosts at time t.
func (p *Prober) path(src, dst topology.HostID, at netsim.Time) (forward.Path, error) {
	return p.paths.PathAt(src, dst, at)
}

// echo draws one echo sample over the forward and reverse paths at time t.
func (p *Prober) echo(fwdPath, revPath forward.Path, src, dst topology.HostID, t netsim.Time) (Sample, error) {
	fst, err := p.net.EvalHostPath(src, dst, fwdPath.Links, t)
	if err != nil {
		return Sample{}, err
	}
	rst, err := p.net.EvalHostPath(dst, src, revPath.Links, t)
	if err != nil {
		return Sample{}, err
	}
	lossProb := 1 - (1-fst.LossProb)*(1-rst.LossProb)
	if p.rng.Float64() < lossProb {
		return Sample{Lost: true}, nil
	}
	rtt := p.net.SampleDelay(p.rng, fst, fwdPath.Hops()) + p.net.SampleDelay(p.rng, rst, revPath.Hops())
	return Sample{RTTMs: rtt}, nil
}

// Traceroute issues one traceroute from src to dst at time t: the forward
// hop list plus SamplesPerTraceroute echo samples. Rate-limiting targets
// drop echo samples after the first with RateLimitDropProb, inflating the
// apparent loss rate exactly as in the paper's D2 discussion.
func (p *Prober) Traceroute(src, dst topology.HostID, t netsim.Time) (Result, error) {
	if p.top.Host(src) == nil || p.top.Host(dst) == nil {
		return Result{}, fmt.Errorf("probe: unknown host %d or %d", src, dst)
	}
	res := Result{Src: src, Dst: dst, At: t}
	if p.rng.Float64() < p.cfg.ContactFailProb {
		res.Failed = true
		return res, nil
	}
	// A pair with no usable route (e.g. during an outage epoch) yields
	// a failed measurement, exactly as the paper's control host
	// "occasionally unable to contact the server it selected".
	fwdPath, err := p.path(src, dst, t)
	if err != nil {
		res.Failed = true
		return res, nil
	}
	revPath, err := p.path(dst, src, t)
	if err != nil {
		res.Failed = true
		return res, nil
	}
	res.HopRouters = fwdPath.Routers
	res.ASPath = fwdPath.ASPath(p.top)

	rateLimited := p.top.Host(dst).RateLimitICMP
	// Successive samples are a few seconds apart (each TTL round takes
	// time); the offsets keep samples inside the same network state.
	for i := 0; i < SamplesPerTraceroute; i++ {
		at := t + netsim.Time(float64(i)*2.5)
		s, err := p.echo(fwdPath, revPath, src, dst, at)
		if err != nil {
			return Result{}, err
		}
		if rateLimited && i > 0 && p.rng.Float64() < p.cfg.RateLimitDropProb {
			s = Sample{Lost: true}
		}
		res.Samples = append(res.Samples, s)
	}
	return res, nil
}

// Ping issues a single echo sample without hop discovery.
func (p *Prober) Ping(src, dst topology.HostID, t netsim.Time) (Result, error) {
	if p.top.Host(src) == nil || p.top.Host(dst) == nil {
		return Result{}, fmt.Errorf("probe: unknown host %d or %d", src, dst)
	}
	res := Result{Src: src, Dst: dst, At: t}
	if p.rng.Float64() < p.cfg.ContactFailProb {
		res.Failed = true
		return res, nil
	}
	fwdPath, err := p.path(src, dst, t)
	if err != nil {
		res.Failed = true
		return res, nil
	}
	revPath, err := p.path(dst, src, t)
	if err != nil {
		res.Failed = true
		return res, nil
	}
	s, err := p.echo(fwdPath, revPath, src, dst, t)
	if err != nil {
		return Result{}, err
	}
	res.Samples = []Sample{s}
	return res, nil
}

// Transfer simulates an npd-style TCP transfer: the session observes the
// network's forward-path loss and both-way delay over TransferPackets
// packets. TCP acknowledges over the reverse path, so RTT includes it;
// data loss is dominated by the forward path.
func (p *Prober) Transfer(src, dst topology.HostID, t netsim.Time) (TransferResult, error) {
	if p.top.Host(src) == nil || p.top.Host(dst) == nil {
		return TransferResult{}, fmt.Errorf("probe: unknown host %d or %d", src, dst)
	}
	res := TransferResult{Src: src, Dst: dst, At: t, Packets: p.cfg.TransferPackets}
	if p.rng.Float64() < p.cfg.ContactFailProb {
		res.Failed = true
		return res, nil
	}
	fwdPath, err := p.path(src, dst, t)
	if err != nil {
		res.Failed = true
		return res, nil
	}
	revPath, err := p.path(dst, src, t)
	if err != nil {
		res.Failed = true
		return res, nil
	}
	// A transfer lasts tens of seconds; sample the network state a few
	// times across it and accumulate.
	const states = 5
	rttSum := 0.0
	lost := 0
	perState := p.cfg.TransferPackets / states
	for k := 0; k < states; k++ {
		at := t + netsim.Time(float64(k)*8)
		fst, err := p.net.EvalHostPath(src, dst, fwdPath.Links, at)
		if err != nil {
			return TransferResult{}, err
		}
		rst, err := p.net.EvalHostPath(dst, src, revPath.Links, at)
		if err != nil {
			return TransferResult{}, err
		}
		rttSum += fst.DelayMs + rst.DelayMs
		for i := 0; i < perState; i++ {
			if p.rng.Float64() < fst.LossProb {
				lost++
			}
		}
	}
	res.MeanRTTMs = rttSum / states
	res.LossRate = float64(lost) / float64(perState*states)
	res.Packets = perState * states
	return res, nil
}
