package probe

import (
	"math"
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

type fixture struct {
	top *topology.Topology
	prb *Prober
}

func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatalf("bgp.Compute: %v", err)
	}
	fwd := forward.New(top, g, table)
	net := netsim.New(top, netsim.DefaultConfig())
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	return &fixture{top: top, prb: New(top, fwd, net, cfg)}
}

func pickHost(t *testing.T, fx *fixture, rateLimited bool, exclude topology.HostID) *topology.Host {
	t.Helper()
	for _, h := range fx.top.Hosts {
		if h.RateLimitICMP == rateLimited && h.ID != exclude {
			return h
		}
	}
	t.Skipf("no host with RateLimitICMP=%v", rateLimited)
	return nil
}

func TestTracerouteBasics(t *testing.T) {
	fx := newFixture(t, func(c *Config) { c.ContactFailProb = 0 })
	src := pickHost(t, fx, false, -1)
	dst := pickHost(t, fx, false, src.ID)
	res, err := fx.prb.Traceroute(src.ID, dst.ID, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("unexpected failure with ContactFailProb=0")
	}
	if len(res.Samples) != SamplesPerTraceroute {
		t.Fatalf("got %d samples, want %d", len(res.Samples), SamplesPerTraceroute)
	}
	if len(res.HopRouters) < 2 {
		t.Fatalf("expected hop list, got %v", res.HopRouters)
	}
	if res.HopRouters[0] != src.Attach || res.HopRouters[len(res.HopRouters)-1] != dst.Attach {
		t.Fatal("hop list endpoints wrong")
	}
	if len(res.ASPath) < 2 {
		t.Fatalf("AS path too short: %v", res.ASPath)
	}
	if res.ASPath[0] != src.AS || res.ASPath[len(res.ASPath)-1] != dst.AS {
		t.Fatalf("AS path endpoints wrong: %v", res.ASPath)
	}
	for _, s := range res.Samples {
		if !s.Lost && s.RTTMs <= 0 {
			t.Fatalf("non-lost sample with RTT %f", s.RTTMs)
		}
	}
}

func TestRTTExceedsPropagationBound(t *testing.T) {
	fx := newFixture(t, func(c *Config) { c.ContactFailProb = 0 })
	src, dst := fx.top.Hosts[0], fx.top.Hosts[1]
	fwdPath, err := fx.prb.path(src.ID, dst.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	revPath, err := fx.prb.path(dst.ID, src.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := fwdPath.PropDelayMs(fx.top) + revPath.PropDelayMs(fx.top) +
		src.AccessDelayMs + dst.AccessDelayMs // one-way access each direction is symmetric here
	for i := 0; i < 30; i++ {
		res, err := fx.prb.Ping(src.ID, dst.ID, netsim.Time(i*1000))
		if err != nil {
			t.Fatal(err)
		}
		s := res.Samples[0]
		if s.Lost {
			continue
		}
		if s.RTTMs < bound {
			t.Fatalf("RTT %f below physical bound %f", s.RTTMs, bound)
		}
	}
}

func TestRateLimitedTargetsLoseTrailingSamples(t *testing.T) {
	fx := newFixture(t, func(c *Config) { c.ContactFailProb = 0 })
	src := pickHost(t, fx, false, -1)
	rl := pickHost(t, fx, true, src.ID)
	firstLost, trailingLost, trailingTotal := 0, 0, 0
	const n = 300
	for i := 0; i < n; i++ {
		res, err := fx.prb.Traceroute(src.ID, rl.ID, netsim.Time(i*600))
		if err != nil {
			t.Fatal(err)
		}
		if res.Samples[0].Lost {
			firstLost++
		}
		for _, s := range res.Samples[1:] {
			trailingTotal++
			if s.Lost {
				trailingLost++
			}
		}
	}
	firstRate := float64(firstLost) / n
	trailingRate := float64(trailingLost) / float64(trailingTotal)
	if trailingRate < firstRate+0.3 {
		t.Errorf("rate limiting should inflate trailing-sample loss: first %.3f, trailing %.3f",
			firstRate, trailingRate)
	}
}

func TestContactFailures(t *testing.T) {
	fx := newFixture(t, func(c *Config) { c.ContactFailProb = 0.5 })
	src, dst := fx.top.Hosts[0], fx.top.Hosts[1]
	failed := 0
	const n = 400
	for i := 0; i < n; i++ {
		res, err := fx.prb.Traceroute(src.ID, dst.ID, netsim.Time(i*100))
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			failed++
			if len(res.Samples) != 0 {
				t.Fatal("failed result should have no samples")
			}
		}
	}
	frac := float64(failed) / n
	if math.Abs(frac-0.5) > 0.1 {
		t.Errorf("failure fraction %f, want ~0.5", frac)
	}
}

func TestPing(t *testing.T) {
	fx := newFixture(t, func(c *Config) { c.ContactFailProb = 0 })
	src, dst := fx.top.Hosts[2], fx.top.Hosts[3]
	res, err := fx.prb.Ping(src.ID, dst.ID, 7200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("ping should produce 1 sample, got %d", len(res.Samples))
	}
	if len(res.HopRouters) != 0 {
		t.Error("ping should not reveal hops")
	}
}

func TestTransfer(t *testing.T) {
	fx := newFixture(t, func(c *Config) { c.ContactFailProb = 0 })
	src, dst := fx.top.Hosts[4], fx.top.Hosts[5]
	res, err := fx.prb.Transfer(src.ID, dst.ID, 3*86400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("unexpected failure")
	}
	if res.MeanRTTMs <= 0 {
		t.Errorf("MeanRTT %f, want > 0", res.MeanRTTMs)
	}
	if res.LossRate < 0 || res.LossRate > 1 {
		t.Errorf("LossRate %f out of range", res.LossRate)
	}
	if res.Packets <= 0 {
		t.Errorf("Packets %d, want > 0", res.Packets)
	}
}

func TestUnknownHosts(t *testing.T) {
	fx := newFixture(t, nil)
	if _, err := fx.prb.Traceroute(-1, fx.top.Hosts[0].ID, 0); err == nil {
		t.Error("Traceroute with unknown src should error")
	}
	if _, err := fx.prb.Ping(fx.top.Hosts[0].ID, -2, 0); err == nil {
		t.Error("Ping with unknown dst should error")
	}
	if _, err := fx.prb.Transfer(topology.HostID(999), fx.top.Hosts[0].ID, 0); err == nil {
		t.Error("Transfer with unknown src should error")
	}
}

func TestLostCount(t *testing.T) {
	r := Result{Samples: []Sample{{Lost: true}, {RTTMs: 10}, {Lost: true}}}
	if r.LostCount() != 2 {
		t.Errorf("LostCount = %d, want 2", r.LostCount())
	}
}

func TestPeakHoursSlower(t *testing.T) {
	// Mean RTT at peak hours should exceed mean RTT at night for the
	// same pair — the diurnal congestion that drives the paper's
	// Figure 9 analysis.
	fx := newFixture(t, func(c *Config) { c.ContactFailProb = 0 })
	src, dst := fx.top.Hosts[0], fx.top.Hosts[6]
	meanAt := func(hour int) float64 {
		sum, n := 0.0, 0
		for day := 0; day < 5; day++ {
			for rep := 0; rep < 10; rep++ {
				at := netsim.Time(day*86400 + hour*3600 + rep*300)
				res, err := fx.prb.Ping(src.ID, dst.ID, at)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Samples[0].Lost {
					sum += res.Samples[0].RTTMs
					n++
				}
			}
		}
		if n == 0 {
			t.Fatal("all samples lost")
		}
		return sum / float64(n)
	}
	peak := meanAt(13)
	night := meanAt(3)
	if peak <= night {
		t.Errorf("peak RTT %f should exceed night RTT %f", peak, night)
	}
}
