// Package linttest runs a lint.Analyzer over a testdata fixture and
// checks its findings against expectations embedded in the fixture
// itself, in the style of golang.org/x/tools/go/analysis/analysistest:
// a comment
//
//	x := rand.Intn(10) // want `global math/rand`
//
// asserts that the analyzer reports a diagnostic on that line matching
// the backquoted regular expression. Every reported diagnostic must
// match a want on its line and every want must be matched, so fixtures
// prove both that the analyzer catches seeded violations and that it
// stays quiet on the clean code (and //repolint:allow escapes) around
// them.
package linttest

import (
	"path/filepath"
	"regexp"
	"testing"

	"pathsel/internal/analysis/lint"
)

// wantRe extracts the expectation patterns from a comment: each
// backquoted or double-quoted string after "want".
var wantRe = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkg> relative to the calling test's
// directory, applies the analyzer, and compares diagnostics against the
// fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	p, err := lint.NewLoader().LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run(p, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	// wants[file][line] holds that line's expectations in order.
	wants := map[string]map[int][]*want{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := indexWord(text, "want")
				if i < 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = map[int][]*want{}
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants[pos.Filename][pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.re)
				}
			}
		}
	}
}

// indexWord finds "want" as a standalone word in a comment, returning
// the index just past it, or -1.
func indexWord(s, word string) int {
	for i := 0; i+len(word) <= len(s); i++ {
		if s[i:i+len(word)] != word {
			continue
		}
		beforeOK := i == 0 || !isWordChar(s[i-1])
		afterOK := i+len(word) == len(s) || !isWordChar(s[i+len(word)])
		if beforeOK && afterOK {
			return i + len(word)
		}
	}
	return -1
}

func isWordChar(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}
