// Package linttest runs a lint.Analyzer over a testdata fixture and
// checks its findings against expectations embedded in the fixture
// itself, in the style of golang.org/x/tools/go/analysis/analysistest:
// a comment
//
//	x := rand.Intn(10) // want `global math/rand`
//
// asserts that the analyzer reports a diagnostic on that line matching
// the backquoted regular expression. Every reported diagnostic must
// match a want on its line and every want must be matched, so fixtures
// prove both that the analyzer catches seeded violations and that it
// stays quiet on the clean code (and //repolint:allow escapes) around
// them.
//
// Every directory under testdata/src is loaded as one package (its
// base name is its import path), and fixtures may import each other —
// how the interprocedural analyzers get a multi-package program to
// chew on. When a fixture file has a sibling <name>.golden, the
// analyzer's suggested fixes are applied to the fixture and the result
// must match the golden byte for byte; a golden without fixes, or
// fixes without a golden, fail the test.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"pathsel/internal/analysis/lint"
)

// wantRe extracts the expectation patterns from a comment: each
// backquoted or double-quoted string after "want".
var wantRe = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// Run loads every fixture package under testdata/src relative to the
// calling test's directory, applies the analyzer to the whole program,
// and compares diagnostics against the fixtures' want comments and
// suggested fixes against their golden files. pkg names the primary
// fixture (it must exist; sibling packages are loaded with it).
func Run(t *testing.T, a *lint.Analyzer, pkg string) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	if _, err := os.Stat(filepath.Join(root, pkg)); err != nil {
		t.Fatalf("fixture package %s: %v", pkg, err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading %s: %v", root, err)
	}
	loader := lint.NewLoader().WithSourceRoot(root)
	var pkgs []*lint.Package
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		p, err := loader.LoadDir(filepath.Join(root, e.Name()), e.Name())
		if err != nil {
			t.Fatalf("loading fixture %s: %v", e.Name(), err)
		}
		pkgs = append(pkgs, p)
	}
	prog := lint.NewProgram(pkgs)
	diags, err := prog.Run([]*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, prog, diags)
	checkGoldens(t, prog, diags)
}

// checkWants matches every diagnostic against the fixture's want
// comments, and every want against the diagnostics.
func checkWants(t *testing.T, prog *lint.Program, diags []lint.Diagnostic) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	// wants[file][line] holds that line's expectations in order.
	wants := map[string]map[int][]*want{}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					i := indexWord(text, "want")
					if i < 0 {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						if wants[pos.Filename] == nil {
							wants[pos.Filename] = map[int][]*want{}
						}
						wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &want{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants[pos.Filename][pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.re)
				}
			}
		}
	}
}

// checkGoldens applies the diagnostics' suggested fixes and compares
// each rewritten fixture file against its <name>.golden sibling.
func checkGoldens(t *testing.T, prog *lint.Program, diags []lint.Diagnostic) {
	t.Helper()
	fixed, err := lint.ApplyFixes(prog.Fset, diags, os.ReadFile)
	if err != nil {
		t.Fatalf("applying suggested fixes: %v", err)
	}
	// Every fixed file needs a golden...
	for name, content := range fixed {
		golden := name + ".golden"
		wantBytes, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("suggested fixes rewrite %s but no golden file exists: %v", name, err)
			continue
		}
		if string(content) != string(wantBytes) {
			t.Errorf("fixed %s differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
				name, golden, content, wantBytes)
		}
	}
	// ...and every golden must be exercised by some fix.
	var goldens []string
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			if _, err := os.Stat(name + ".golden"); err == nil {
				goldens = append(goldens, name)
			}
		}
	}
	sort.Strings(goldens)
	for _, name := range goldens {
		if _, ok := fixed[name]; !ok {
			t.Errorf("%s.golden exists but the analyzer suggested no fixes for %s", name, name)
		}
	}
}

// indexWord finds "want" as a standalone word in a comment, returning
// the index just past it, or -1.
func indexWord(s, word string) int {
	for i := 0; i+len(word) <= len(s); i++ {
		if s[i:i+len(word)] != word {
			continue
		}
		beforeOK := i == 0 || !isWordChar(s[i-1])
		afterOK := i+len(word) == len(s) || !isWordChar(s[i+len(word)])
		if beforeOK && afterOK {
			return i + len(word)
		}
	}
	return -1
}

func isWordChar(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}
