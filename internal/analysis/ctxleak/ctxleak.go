// Package ctxleak defines an analyzer for the two concurrency-shaped
// ways the cancellation chain leaks rather than severs (ctxflow's
// beat): a goroutine launched from a function that holds a ctx but
// does not pass it on — the goroutine outlives every deadline and
// client disconnect the caller promised to honor — and a
// context.WithCancel/WithTimeout/WithDeadline whose cancel function
// does not reach a call or defer on every path to return, which pins
// the context's resources (and its parent's reference to it) for the
// parent's lifetime.
package ctxleak

import (
	"go/ast"
	"go/types"

	"pathsel/internal/analysis/lint"
)

// Analyzer flags ctx-less goroutines and lost cancel functions.
var Analyzer = &lint.Analyzer{
	Name: "ctxleak",
	Doc: "flag goroutines launched without the enclosing function's ctx, and " +
		"context.WithCancel/WithTimeout/WithDeadline cancel funcs that are not called or deferred on every path",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGoroutines(pass, fn)
			checkLostCancels(pass, fn)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether the function declares a usable (named,
// non-blank) context.Context parameter.
func hasCtxParam(pass *lint.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		if !isContextType(pass.Info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

// checkGoroutines flags `go` statements that reference no context
// value anywhere in the spawned call, inside a function that holds a
// ctx it could have passed. Mentioning any ctx — as an argument, in a
// captured closure body, even a derived one — counts: the goroutine's
// author visibly connected it to the cancellation tree.
func checkGoroutines(pass *lint.Pass, fn *ast.FuncDecl) {
	if !hasCtxParam(pass, fn) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !mentionsContext(pass, g.Call) {
			pass.Reportf(g.Pos(), "goroutine launched without the enclosing ctx; pass ctx (or one derived from it) so cancellation reaches it")
		}
		return true
	})
}

// mentionsContext reports whether any expression within n (the go
// statement's call: fun, args, closure bodies) has type
// context.Context.
func mentionsContext(pass *lint.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := pass.Info.TypeOf(expr); t != nil && isContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// cancelFuncs are the context constructors returning (Context,
// CancelFunc) whose cancel must not be lost.
var cancelFuncs = map[string]bool{
	"WithCancel":        true,
	"WithTimeout":       true,
	"WithDeadline":      true,
	"WithCancelCause":   true,
	"WithTimeoutCause":  true,
	"WithDeadlineCause": true,
}

// checkLostCancels finds `ctx, cancel := context.WithX(...)`
// assignments and verifies cancel reaches a call or defer on every
// path from the assignment to function exit. A blank cancel is always
// a leak; a cancel that escapes (passed, stored, returned) is assumed
// handled.
func checkLostCancels(pass *lint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
				continue
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || !isCancelConstructor(pass, call) {
				continue
			}
			id, ok := assign.Lhs[1].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				pass.Reportf(id.Pos(), "the cancel func from context.%s is discarded; the derived context leaks until its parent ends — call or defer it", constructorName(call))
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id] // `=` rather than `:=`
			}
			if obj == nil || escapes(fn.Body, pass, obj, call) {
				continue
			}
			if coverState(block.List[i+1:], pass, obj) != covered {
				pass.Reportf(id.Pos(), "the cancel func from context.%s is not called on every path to return; defer %s() right after the assignment", constructorName(call), id.Name)
			}
		}
		return true
	})
}

// isCancelConstructor reports whether call is context.WithX returning
// a CancelFunc.
func isCancelConstructor(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return cancelFuncs[fn.Name()]
}

func constructorName(call *ast.CallExpr) string {
	return call.Fun.(*ast.SelectorExpr).Sel.Name
}

// escapes reports whether obj is used in any way other than a direct
// call or defer — passed as an argument, assigned, returned, captured
// into a composite — after which tracking it is out of scope.
func escapes(body *ast.BlockStmt, pass *lint.Pass, obj types.Object, decl ast.Node) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		// A use is "safe" when it is the Fun of a call statement or
		// defer; any other reference is an escape.
		switch s := n.(type) {
		case *ast.ExprStmt:
			if isCallOf(s.X, pass, obj) {
				return false // don't descend: this use is accounted for
			}
		case *ast.AssignStmt:
			// `_ = cancel` keeps the compiler quiet without handing the
			// func anywhere; it neither escapes nor cancels.
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				lhs, lok := s.Lhs[0].(*ast.Ident)
				rhs, rok := ast.Unparen(s.Rhs[0]).(*ast.Ident)
				if lok && rok && lhs.Name == "_" && pass.Info.Uses[rhs] == obj {
					return false
				}
			}
		case *ast.DeferStmt:
			if fun, ok := ast.Unparen(s.Call.Fun).(*ast.Ident); ok && pass.Info.Uses[fun] == obj {
				return false
			}
		case *ast.Ident:
			if pass.Info.Uses[s] == obj {
				esc = true
				return false
			}
		}
		return true
	})
	return esc
}

// isCallOf reports whether e is a bare call of obj: `cancel()`.
func isCallOf(e ast.Expr, pass *lint.Pass, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// coverage is the tri-state result of walking a statement list with
// respect to one cancel func: every path through it calls the cancel
// (covered), some path exits the function without calling it
// (uncoveredExit — a definite leak), or execution can fall through the
// end still uncovered (fallthru — the caller keeps scanning).
type coverage int

const (
	fallthru coverage = iota
	covered
	uncoveredExit
)

// coverState walks stmts sequentially. Loops, switches without
// defaults, selects, and gotos are treated conservatively: coverage
// inside them does not count (they may execute zero times or jump),
// but an uncovered return inside them is still a leak.
func coverState(stmts []ast.Stmt, pass *lint.Pass, obj types.Object) coverage {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if isCallOf(s.X, pass, obj) {
				return covered
			}
			if isPanicCall(s.X) {
				return covered // panics unwind defers; the leak question is moot
			}
		case *ast.DeferStmt:
			if fun, ok := ast.Unparen(s.Call.Fun).(*ast.Ident); ok && pass.Info.Uses[fun] == obj {
				return covered
			}
		case *ast.ReturnStmt:
			return uncoveredExit
		case *ast.BlockStmt:
			switch coverState(s.List, pass, obj) {
			case covered:
				return covered
			case uncoveredExit:
				return uncoveredExit
			}
		case *ast.IfStmt:
			thenState := coverState(s.Body.List, pass, obj)
			elseState := fallthru
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseState = coverState(e.List, pass, obj)
				case *ast.IfStmt:
					elseState = coverState([]ast.Stmt{e}, pass, obj)
				}
			}
			if thenState == uncoveredExit || elseState == uncoveredExit {
				return uncoveredExit
			}
			if thenState == covered && elseState == covered {
				return covered
			}
		default:
			// Conservative container scan: any uncovered return hiding
			// in a loop/switch/select body is a leak; coverage inside
			// does not propagate out.
			if hasUncoveredReturn(stmt, pass, obj) {
				return uncoveredExit
			}
		}
	}
	return fallthru
}

// hasUncoveredReturn reports whether stmt contains a return not
// preceded (within the same simple scan) by a cancel call. It is a
// coarse check for the conservative branches of coverState: any
// return inside is treated as uncovered unless the container also
// guarantees a cancel before it — which the simple scan approximates
// by descending with coverState on nested blocks.
func hasUncoveredReturn(stmt ast.Stmt, pass *lint.Pass, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // separate function: its returns are its own
		case *ast.BlockStmt:
			if coverState(s.List, pass, obj) == uncoveredExit {
				found = true
			}
			return false
		case *ast.CaseClause:
			if coverState(s.Body, pass, obj) == uncoveredExit {
				found = true
			}
			return false
		case *ast.CommClause:
			if coverState(s.Body, pass, obj) == uncoveredExit {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
