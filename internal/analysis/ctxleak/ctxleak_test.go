package ctxleak_test

import (
	"testing"

	"pathsel/internal/analysis/ctxleak"
	"pathsel/internal/analysis/linttest"
)

func TestCtxleak(t *testing.T) {
	linttest.Run(t, ctxleak.Analyzer, "ctxleak")
}
