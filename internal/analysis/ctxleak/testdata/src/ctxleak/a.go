// Package ctxleak is a fixture for the ctxleak analyzer: ctx-less
// goroutines and lost cancel funcs are violations; threaded contexts,
// deferred cancels, every-path cancels, escapes, and annotated
// escapes are not.
package ctxleak

import (
	"context"
	"time"
)

func work()                       {}
func workCtx(ctx context.Context) {}

// --- goroutine rule ---

func leakyGo(ctx context.Context) {
	go work() // want `goroutine launched without the enclosing ctx`
}

func goWithCtxArg(ctx context.Context) {
	go workCtx(ctx) // ctx passed directly
}

func goWithCapturedCtx(ctx context.Context) {
	go func() {
		<-ctx.Done() // ctx captured by the closure
	}()
}

func goWithDerivedCtx(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	go workCtx(sub) // a derived ctx still connects the tree
}

func noCtxToThread() {
	go work() // enclosing function holds no ctx: nothing to pass
}

func allowedDetached(ctx context.Context) {
	//repolint:allow ctxleak -- fixture: deliberate fire-and-forget
	go work()
}

// --- lost-cancel rule ---

func lostCancel(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx) // want `cancel func from context.WithCancel is not called on every path`
	_ = sub
	_ = cancel
}

func discardedCancel(ctx context.Context) {
	sub, _ := context.WithTimeout(ctx, time.Second) // want `cancel func from context.WithTimeout is discarded`
	_ = sub
}

func earlyReturnLeak(ctx context.Context, fail bool) error {
	sub, cancel := context.WithTimeout(ctx, time.Second) // want `cancel func from context.WithTimeout is not called on every path`
	if fail {
		return context.Canceled // leaves without cancelling
	}
	workCtx(sub)
	cancel()
	return nil
}

func deferredCancel(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	workCtx(sub)
}

func bothBranchesCancel(ctx context.Context, fast bool) {
	sub, cancel := context.WithCancel(ctx)
	workCtx(sub)
	if fast {
		cancel()
	} else {
		workCtx(sub)
		cancel()
	}
}

func cancelEscapes(ctx context.Context) (context.Context, context.CancelFunc) {
	sub, cancel := context.WithCancel(ctx)
	return sub, cancel // handed to the caller: their responsibility now
}

func loopReturnLeak(ctx context.Context, n int) {
	sub, cancel := context.WithCancel(ctx) // want `cancel func from context.WithCancel is not called on every path`
	for i := 0; i < n; i++ {
		if i == 3 {
			return // exits from inside the loop without cancelling
		}
		workCtx(sub)
	}
	cancel()
}

func allowedLeak(ctx context.Context) {
	//repolint:allow ctxleak -- fixture: demonstrating the escape hatch
	sub, _ := context.WithCancel(ctx)
	_ = sub
}
