// Package detflowaux is the helper package of the detflow fixture: it
// is NOT in the deterministic set, so nothing here is flagged — but
// several of its helpers reach nondeterminism sources, and calls to
// them from the deterministic fixture package must be.
package detflowaux

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: directly tainted.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter draws from the process-wide generator: directly tainted.
func Jitter(n int) int { return rand.Intn(n) }

// Indirect reaches the clock through another hop: transitively tainted.
func Indirect() int64 { return Stamp() + 1 }

// Pure is clean arithmetic.
func Pure(a, b int) int { return a + b }

// Seeded draws from an explicitly seeded generator: clean.
func Seeded(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// Ticker is implemented by one tainted and one clean type, so an
// interface call resolves (via CHA) to both.
type Ticker interface{ Tick() int64 }

// WallTicker reads the clock.
type WallTicker struct{}

func (WallTicker) Tick() int64 { return Stamp() }

// FixedTicker is deterministic.
type FixedTicker struct{ V int64 }

func (f FixedTicker) Tick() int64 { return f.V }
