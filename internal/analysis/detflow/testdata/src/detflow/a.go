// Package detflow is the deterministic fixture package: calls to
// helpers that transitively reach a nondeterminism source are
// violations, clean helpers and annotated escapes are not.
package detflow

import "detflowaux"

func badDirectHelper() int64 {
	return detflowaux.Stamp() // want `call to detflowaux.Stamp reaches a nondeterminism source \(detflowaux.Stamp → time.Now\)`
}

func badGlobalRandHelper(n int) int {
	return detflowaux.Jitter(n) // want `call to detflowaux.Jitter reaches a nondeterminism source \(detflowaux.Jitter → rand.Intn\)`
}

func badTwoHops() int64 {
	return detflowaux.Indirect() // want `detflowaux.Indirect → detflowaux.Stamp → time.Now`
}

func badInClosure() func() int64 {
	return func() int64 {
		return detflowaux.Stamp() // want `call to detflowaux.Stamp reaches a nondeterminism source`
	}
}

func badViaInterface(t detflowaux.Ticker) int64 {
	return t.Tick() // want `call to detflowaux.WallTicker.Tick reaches a nondeterminism source`
}

func goodHelpers(seed int64, n int) int {
	return detflowaux.Pure(1, 2) + detflowaux.Seeded(seed, n)
}

func goodConcreteClean(f detflowaux.FixedTicker) int64 {
	return f.Tick() // concrete receiver, clean implementation
}

func localHelper(x int) int { return x * 2 }

func goodLocalCall(x int) int {
	// Calls within the deterministic set are detrand/detflow's job at
	// the callee's own body, not at this call site.
	return localHelper(x)
}

func allowedEscape() int64 {
	//repolint:allow detflow -- fixture: demonstrating the escape hatch
	return detflowaux.Stamp()
}
