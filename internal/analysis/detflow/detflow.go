// Package detflow defines the interprocedural generalization of
// detrand: the determinism contract must hold across *compositions* of
// helpers, not just line by line. detrand flags a direct time.Now()
// inside a deterministic package; detflow flags a call from a
// deterministic package to a helper — declared in any package of the
// program — whose transitive call graph reaches the wall clock or the
// global math/rand generator. Without it, hoisting a banned call into
// a utility package silently launders the nondeterminism past the
// per-package check.
package detflow

import (
	"go/ast"
	"go/types"
	"strings"

	"pathsel/internal/analysis/detrand"
	"pathsel/internal/analysis/lint"
)

// Analyzer flags calls in deterministic packages whose callees
// transitively reach a nondeterminism source.
var Analyzer = &lint.Analyzer{
	Name: "detflow",
	Doc: "flag calls from deterministic packages to helpers (in any package) that transitively reach " +
		"time.Now/Since/Until or the global math/rand state; the determinism contract must survive composition",
	Run: run,
}

// isSource reports the nondeterminism roots, mirroring detrand's
// per-line rules: wall-clock reads and the hidden global generator
// (constructors of seeded generators are the sanctioned path).
func isSource(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"
	case "math/rand", "math/rand/v2":
		return !strings.HasPrefix(fn.Name(), "New")
	}
	return false
}

// taintKey keys the shared whole-program taint fact.
type taintKey struct{}

func run(pass *lint.Pass) error {
	if !detrand.Packages[pass.Path] || pass.Prog == nil {
		return nil
	}
	g := pass.Prog.CallGraph()
	taint := pass.Prog.Cached(taintKey{}, func() any { return g.Taint(isSource) }).(*lint.Taint)

	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := g.Node(fn)
			if node == nil {
				continue
			}
			reportTaintedCalls(pass, taint, node)
		}
	}
	return nil
}

// reportTaintedCalls walks one function's outgoing edges and reports
// each call site whose callee is tainted. Sites are grouped so an
// interface call expanded to several implementations yields one
// diagnostic (for the alphabetically first tainted callee), and three
// exclusions keep detflow complementary to detrand rather than an
// echo of it:
//   - callees that *are* sources (detrand already flags the line);
//   - callees inside the deterministic set (their own bodies are
//     where detrand/detflow report the real violation);
//   - call sites in test files.
func reportTaintedCalls(pass *lint.Pass, taint *lint.Taint, node *lint.CallNode) {
	reported := map[*ast.CallExpr]bool{}
	for _, e := range node.Out {
		if reported[e.Site] || pass.InTestFile(e.Site.Pos()) {
			continue
		}
		callee := e.Callee.Func
		if isSource(callee) || !taint.Tainted(callee) {
			continue
		}
		if callee.Pkg() != nil && detrand.Packages[callee.Pkg().Path()] {
			continue
		}
		reported[e.Site] = true
		pass.Reportf(e.Site.Pos(), "call to %s reaches a nondeterminism source (%s); deterministic packages must derive all state from the seed",
			displayName(callee), chain(taint.Path(callee)))
	}
}

// chain renders a witness path "helper → deeper → time.Now".
func chain(path []*types.Func) string {
	names := make([]string, len(path))
	for i, fn := range path {
		names[i] = displayName(fn)
	}
	return strings.Join(names, " → ")
}

// displayName renders pkg.Func or pkg.Type.Method without the module
// prefix noise.
func displayName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
