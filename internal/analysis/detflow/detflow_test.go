package detflow_test

import (
	"testing"

	"pathsel/internal/analysis/detflow"
	"pathsel/internal/analysis/detrand"
	"pathsel/internal/analysis/linttest"
)

func TestDetflow(t *testing.T) {
	// The fixture's deterministic package is "detflow"; its helper
	// package "detflowaux" deliberately is not, so taint must cross the
	// package boundary to be seen.
	detrand.Packages["detflow"] = true
	defer delete(detrand.Packages, "detflow")
	linttest.Run(t, detflow.Analyzer, "detflow")
}
