package ctxflow_test

import (
	"testing"

	"pathsel/internal/analysis/ctxflow"
	"pathsel/internal/analysis/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "ctxflow")
}
