// Package ctxflow defines an analyzer guarding the cancellation chain
// built in PR 2: an HTTP client disconnect must propagate through
// experiments.BuildContext → measure.RunContext → core.Analyzer →
// parallelFor and actually stop the work. Two bugs quietly break that
// chain: minting a fresh context.Background()/TODO() deep in library
// code (detaching everything below it from the caller's cancellation),
// and accepting a ctx parameter but never consulting it.
package ctxflow

import (
	"go/ast"
	"go/types"

	"pathsel/internal/analysis/lint"
)

// Analyzer flags dropped or severed context plumbing.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/TODO() outside package main and tests, and exported functions " +
		"that accept a ctx parameter without ever using it; both sever the cancellation chain",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkFreshContexts(pass, f)
		checkUnusedCtxParams(pass, f)
	}
	return nil
}

// checkFreshContexts flags context.Background()/context.TODO() in
// library packages. main packages own the root of the context tree, so
// they are exempt.
func checkFreshContexts(pass *lint.Pass, f *ast.File) {
	if pass.Pkg.Name() == "main" {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(id.Pos(), "context.%s() in a library package detaches callees from the caller's cancellation; accept and thread a ctx instead", fn.Name())
		}
		return true
	})
}

// checkUnusedCtxParams flags exported functions that take a named
// context.Context parameter and never read it: the signature promises
// cancellation the body does not deliver.
func checkUnusedCtxParams(pass *lint.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() {
			continue
		}
		for _, field := range fn.Type.Params.List {
			if !isContextType(pass.Info.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue // explicitly discarded: the author opted out visibly
				}
				obj := pass.Info.Defs[name]
				if obj != nil && !usedIn(pass, fn.Body, obj) {
					pass.Reportf(name.Pos(), "exported %s accepts ctx but never uses it; thread it into callees or rename the parameter to _", fn.Name.Name)
				}
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usedIn reports whether obj is referenced anywhere in body.
func usedIn(pass *lint.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
