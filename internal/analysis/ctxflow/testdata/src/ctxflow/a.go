// Package ctxflow is a fixture for the ctxflow analyzer: fresh root
// contexts in library code and dropped ctx parameters are violations;
// threading, explicit discards, and annotated escapes are not.
package ctxflow

import "context"

func work(ctx context.Context) error {
	return ctx.Err()
}

func badFresh() error {
	return work(context.Background()) // want `context.Background\(\) in a library package detaches callees`
}

func badTODO() error {
	return work(context.TODO()) // want `context.TODO\(\) in a library package detaches callees`
}

func BadDropped(ctx context.Context, n int) int { // want `exported BadDropped accepts ctx but never uses it`
	return n * 2
}

func GoodThreaded(ctx context.Context) error {
	return work(ctx)
}

func GoodDiscarded(_ context.Context, n int) int {
	// Renaming to _ is the visible opt-out: the signature keeps its
	// shape for interface satisfaction without promising cancellation.
	return n * 2
}

// unexportedDropped is not flagged: the contract is enforced at the
// package boundary, and unexported helpers show up when their exported
// callers thread ctx into them.
func unexportedDropped(ctx context.Context, n int) int {
	return n * 2
}

func AllowedEscape() error {
	//repolint:allow ctxflow -- fixture: demonstrating the escape hatch
	return work(context.Background())
}
