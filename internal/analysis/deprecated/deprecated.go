// Package deprecated defines an analyzer that flags calls to in-repo
// APIs whose doc comment carries a "Deprecated:" paragraph — the Go
// convention the standard tooling shows but nothing here enforced.
// The repo retires APIs by keeping them as thin adapters (PR 7 turned
// BestAlternates/BestBandwidthAlternates into one-line wrappers over
// Query), so every remaining caller is migration debt; this analyzer
// surfaces it, and for the two legacy Analyzer entry points it carries
// a machine-applicable suggested fix rewriting the call to the Query
// form (`repolint -fix -only deprecated` applies it).
package deprecated

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pathsel/internal/analysis/lint"
)

// Analyzer flags calls to in-repo Deprecated: APIs.
var Analyzer = &lint.Analyzer{
	Name: "deprecated",
	Doc: "flag calls to in-repo functions documented as Deprecated:, with a machine-applicable " +
		"fix rewriting BestAlternates/BestBandwidthAlternates calls to the Query equivalent",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	cg := pass.Prog.CallGraph()
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// A deprecated adapter chaining to another deprecated
			// helper is the retirement mechanism, not migration debt.
			if deprecationNote(fn.Doc) != "" {
				continue
			}
			if err := checkFunc(pass, cg, f, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkFunc reports every deprecated call in fn, attaching a suggested
// fix where the call matches the rewritable assignment pattern.
func checkFunc(pass *lint.Pass, cg *lint.CallGraph, file *ast.File, fn *ast.FuncDecl) error {
	namer := newNamer(pass, fn)
	var walkErr error
	// Assignment statements get first crack so the fixable pattern is
	// recognized with its statement context; the calls they claim are
	// excluded from the generic sweep below.
	claimed := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if walkErr != nil {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, note := deprecatedCallee(pass, cg, call)
		if callee == nil {
			return true
		}
		claimed[call] = true
		d := lint.Diagnostic{
			Pos:     call.Pos(),
			Message: fmt.Sprintf("call to deprecated %s: %s", callee.Name(), note),
		}
		if fix, err := buildQueryFix(pass, file, assign, call, callee, namer); err != nil {
			walkErr = err
		} else if fix != nil {
			d.SuggestedFixes = []lint.SuggestedFix{*fix}
		}
		pass.Report(d)
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || claimed[call] {
			return true
		}
		callee, note := deprecatedCallee(pass, cg, call)
		if callee == nil {
			return true
		}
		pass.Reportf(call.Pos(), "call to deprecated %s: %s", callee.Name(), note)
		return true
	})
	return nil
}

// deprecatedCallee resolves call's static callee and, when the callee
// is declared in the program with a Deprecated: doc paragraph, returns
// it along with the deprecation note.
func deprecatedCallee(pass *lint.Pass, cg *lint.CallGraph, call *ast.CallExpr) (*types.Func, string) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = pass.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil {
		return nil, ""
	}
	decl := cg.Decl(fn)
	if decl == nil {
		return nil, ""
	}
	note := deprecationNote(decl.Doc)
	if note == "" {
		return nil, ""
	}
	return fn, note
}

// deprecationNote extracts the Deprecated: paragraph from a doc
// comment — the marker line and its continuation lines up to the next
// blank line, joined — or "" if there is none.
func deprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	lines := strings.Split(doc.Text(), "\n")
	for i, line := range lines {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Deprecated:")
		if !ok {
			continue
		}
		note := []string{strings.TrimSpace(rest)}
		for _, cont := range lines[i+1:] {
			cont = strings.TrimSpace(cont)
			if cont == "" {
				break
			}
			note = append(note, cont)
		}
		return strings.Join(note, " ")
	}
	return ""
}

// rewrites maps the two legacy entry points to their Query spelling.
var rewrites = map[string]struct {
	spec    string // format: qualifier, arg0, arg1
	flatten string // ResultSet converter restoring the legacy shape
}{
	"BestAlternates": {
		spec:    "%[1]sQuerySpec{Metric: %[2]s, MaxVia: %[3]s}",
		flatten: "PairResults",
	},
	"BestBandwidthAlternates": {
		spec:    "%[1]sQuerySpec{Bandwidth: &%[1]sBandwidthQuery{Model: %[2]s, Mode: %[3]s}}",
		flatten: "BandwidthResults",
	},
}

// buildQueryFix constructs the mechanical rewrite for
//
//	res, err := recv.BestAlternates(metric, maxVia)
//
// into
//
//	rs, err := recv.Query(QuerySpec{Metric: metric, MaxVia: maxVia})
//	res := rs.PairResults()
//
// (Query returns a value ResultSet whose converters are nil-safe on
// the zero value, so hoisting the flatten above the caller's err check
// preserves behavior.) Returns nil when the callee or statement shape
// is not rewritable.
func buildQueryFix(pass *lint.Pass, file *ast.File, assign *ast.AssignStmt, call *ast.CallExpr, callee *types.Func, namer *namer) (*lint.SuggestedFix, error) {
	rw, ok := rewrites[callee.Name()]
	if !ok || callee.Signature().Recv() == nil || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return nil, nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	resID, ok1 := assign.Lhs[0].(*ast.Ident)
	errID, ok2 := assign.Lhs[1].(*ast.Ident)
	if !ok1 || !ok2 {
		return nil, nil
	}
	prog := pass.Prog
	recv, err := prog.Source(sel.X.Pos(), sel.X.End())
	if err != nil {
		return nil, err
	}
	arg0, err := prog.Source(call.Args[0].Pos(), call.Args[0].End())
	if err != nil {
		return nil, err
	}
	arg1, err := prog.Source(call.Args[1].Pos(), call.Args[1].End())
	if err != nil {
		return nil, err
	}
	indent, err := prog.Indentation(assign.Pos())
	if err != nil {
		return nil, err
	}
	qual := packageQualifier(pass, file, callee.Pkg())
	spec := fmt.Sprintf(rw.spec, qual, arg0, arg1)
	var text string
	if resID.Name == "_" {
		// The results are discarded; no flatten line needed.
		text = fmt.Sprintf("_, %s := %s.Query(%s)", errID.Name, recv, spec)
	} else {
		rs := namer.fresh("rs")
		text = fmt.Sprintf("%s, %s := %s.Query(%s)\n%s%s := %s.%s()",
			rs, errID.Name, recv, spec, indent, resID.Name, rs, rw.flatten)
	}
	return &lint.SuggestedFix{
		Message: fmt.Sprintf("rewrite %s call to Query + %s", callee.Name(), rw.flatten),
		Edits:   []lint.TextEdit{{Pos: assign.Pos(), End: assign.End(), NewText: text}},
	}, nil
}

// packageQualifier resolves how pkg is referred to from the current
// file: "" within the declaring package, otherwise the import's local
// name (alias or package name) plus a dot.
func packageQualifier(pass *lint.Pass, file *ast.File, pkg *types.Package) string {
	if pkg == nil || pkg == pass.Pkg {
		return ""
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != pkg.Path() {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name + "."
		}
		return pkg.Name() + "."
	}
	return pkg.Name() + "."
}

// A namer hands out identifier names that collide with nothing in the
// enclosing function (nor with its own previous picks), so multi-fix
// rewrites stay compilable.
type namer struct {
	used map[string]bool
}

func newNamer(pass *lint.Pass, fn *ast.FuncDecl) *namer {
	n := &namer{used: map[string]bool{}}
	ast.Inspect(fn, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			n.used[id.Name] = true
		}
		return true
	})
	return n
}

func (n *namer) fresh(base string) string {
	if !n.used[base] {
		n.used[base] = true
		return base
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s%d", base, i)
		if !n.used[name] {
			n.used[name] = true
			return name
		}
	}
}
