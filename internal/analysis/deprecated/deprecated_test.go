package deprecated_test

import (
	"testing"

	"pathsel/internal/analysis/deprecated"
	"pathsel/internal/analysis/linttest"
)

func TestDeprecated(t *testing.T) {
	linttest.Run(t, deprecated.Analyzer, "deprecated")
}
