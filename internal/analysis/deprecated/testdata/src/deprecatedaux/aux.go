// Package deprecatedaux mimics the core package's retired query
// surface: a unified Query entry point plus Deprecated: adapters kept
// as one-line wrappers over it, exactly the shape PR 7 left behind.
package deprecatedaux

type Metric int

const (
	MetricRTT Metric = iota
	MetricLoss
)

type Model int

const ModelReno Model = 0

type BandwidthMode int

const ModeBulk BandwidthMode = 0

type PairResult struct{ Src, Dst int }

type BandwidthResult struct{ Src, Dst int }

type BandwidthQuery struct {
	Model Model
	Mode  BandwidthMode
}

type QuerySpec struct {
	Metric    Metric
	MaxVia    int
	Bandwidth *BandwidthQuery
}

// ResultSet's converters are nil-safe on the zero value, which is what
// makes hoisting them above the caller's error check sound.
type ResultSet struct {
	pairs []PairResult
	bw    []BandwidthResult
}

func (rs ResultSet) PairResults() []PairResult           { return rs.pairs }
func (rs ResultSet) BandwidthResults() []BandwidthResult { return rs.bw }

type Analyzer struct{}

func (a *Analyzer) Query(spec QuerySpec) (ResultSet, error) {
	return ResultSet{}, nil
}

// BestAlternates returns the best alternate per pair.
//
// Deprecated: use Query with a QuerySpec; this adapter will be removed.
func (a *Analyzer) BestAlternates(metric Metric, maxVia int) ([]PairResult, error) {
	rs, err := a.Query(QuerySpec{Metric: metric, MaxVia: maxVia})
	return rs.PairResults(), err
}

// BestBandwidthAlternates returns the best bandwidth alternate per pair.
//
// Deprecated: use Query with a Bandwidth spec.
func (a *Analyzer) BestBandwidthAlternates(model Model, mode BandwidthMode) ([]BandwidthResult, error) {
	rs, err := a.Query(QuerySpec{Bandwidth: &BandwidthQuery{Model: model, Mode: mode}})
	return rs.BandwidthResults(), err
}

// OldCost is the legacy scalar cost with no mechanical rewrite.
//
// Deprecated: use Cost.
func OldCost(v int) int { return Cost(v) }

func Cost(v int) int { return v }
