// Package deprecated exercises the deprecated analyzer: callers of the
// aux package's Deprecated: APIs are flagged, and the two legacy query
// entry points carry a mechanical fix to the Query form (asserted
// against a.go.golden).
package deprecated

import (
	"deprecatedaux"
)

func fixable(a *deprecatedaux.Analyzer) ([]deprecatedaux.PairResult, error) {
	res, err := a.BestAlternates(deprecatedaux.MetricRTT, 2) // want `call to deprecated BestAlternates`
	if err != nil {
		return nil, err
	}
	return res, nil
}

func fixableBandwidth(a *deprecatedaux.Analyzer) ([]deprecatedaux.BandwidthResult, error) {
	res, err := a.BestBandwidthAlternates(deprecatedaux.ModelReno, deprecatedaux.ModeBulk) // want `call to deprecated BestBandwidthAlternates`
	if err != nil {
		return nil, err
	}
	return res, nil
}

// collision proves the rewrite picks a fresh name when rs is taken.
func collision(a *deprecatedaux.Analyzer) int {
	rs := 7
	res, err := a.BestAlternates(deprecatedaux.MetricLoss, rs) // want `call to deprecated BestAlternates`
	if err != nil {
		return 0
	}
	return len(res) + rs
}

// discarded keeps only the error: the fix needs no flatten line.
func discarded(a *deprecatedaux.Analyzer) error {
	_, err := a.BestAlternates(deprecatedaux.MetricRTT, 1) // want `call to deprecated BestAlternates`
	return err
}

// notFixable is flagged but carries no fix: OldCost has no mechanical
// Query spelling.
func notFixable() int {
	return deprecatedaux.OldCost(3) // want `call to deprecated OldCost`
}

// allowed shows the escape hatch for a deliberate legacy call.
func allowed() int {
	//repolint:allow deprecated -- benchmarking the legacy entry point on purpose
	return deprecatedaux.OldCost(4)
}
