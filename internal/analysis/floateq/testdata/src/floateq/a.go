// Package floateq is a fixture for the floateq analyzer: float and
// complex equality are violations; integer equality, ordered float
// comparisons, and annotated escapes are not.
package floateq

type ms float64 // named float types inherit the hazard

func badEq(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

func badNeq(a, b float32) bool {
	return a != b // want `!= on floating-point operands`
}

func badNamed(a, b ms) bool {
	return a == b // want `== on floating-point operands`
}

func badComplex(a, b complex128) bool {
	return a == b // want `== on floating-point operands`
}

func badMixed(a float64) bool {
	return a == 0 // want `== on floating-point operands`
}

func goodInt(a, b int) bool { return a == b }

func goodOrdered(a, b float64) bool { return a < b || a > b }

func goodTolerance(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

func allowedEscape(a float64) bool {
	//repolint:allow floateq -- fixture: demonstrating the escape hatch
	return a == 0
}
