// Package floateq defines an analyzer flagging == and != on
// floating-point operands in the numeric heart of the reproduction
// (internal/stats, internal/tcpmodel, internal/core). Float equality is
// almost always a bug there — summaries, confidence intervals and path
// costs come out of accumulations where representation error makes
// exact comparison meaningless. The engine does contain deliberate
// exact comparisons (the +Inf distance sentinel, tie-breaking replayed
// Dijkstra costs); those carry a //repolint:allow floateq directive
// explaining why exactness is sound, which is precisely the visibility
// this analyzer exists to force.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"pathsel/internal/analysis/lint"
)

// Packages is the set of import paths checked. Tests may extend it to
// cover fixture packages.
var Packages = map[string]bool{
	"pathsel/internal/stats":    true,
	"pathsel/internal/tcpmodel": true,
	"pathsel/internal/core":     true,
}

// Analyzer flags float equality comparisons.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc: "flag == and != between floating-point operands in numeric packages; compare with a tolerance, " +
		"or annotate the sentinel/tie-break cases where exact equality is deliberate",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !Packages[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.Info.TypeOf(be.X)) || isFloat(pass.Info.TypeOf(be.Y)) {
				pass.Reportf(be.OpPos, "%s on floating-point operands; use a tolerance, or annotate why exact equality is sound here", be.Op)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point or
// complex type (complex equality inherits the same hazard).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
