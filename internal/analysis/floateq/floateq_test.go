package floateq_test

import (
	"testing"

	"pathsel/internal/analysis/floateq"
	"pathsel/internal/analysis/linttest"
)

func TestFloateq(t *testing.T) {
	floateq.Packages["floateq"] = true
	defer delete(floateq.Packages, "floateq")
	linttest.Run(t, floateq.Analyzer, "floateq")
}
