// Package maporder is a fixture for the maporder analyzer: unsorted
// accumulation and direct writes during map iteration are violations;
// the collect-then-sort idiom, pure reductions, and annotated escapes
// are not.
package maporder

import (
	"fmt"
	"hash"
	"io"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `keys is appended to in map-iteration order and never sorted`
		keys = append(keys, k)
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func badPrint(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over map writes in nondeterministic order`
	}
}

func badHash(m map[string]int, h hash.Hash) {
	for k := range m {
		h.Write([]byte(k)) // want `method Write inside range over map writes in nondeterministic order`
	}
}

func badBuilder(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `method WriteString inside range over map writes in nondeterministic order`
	}
}

func goodReduction(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodLoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var evens []int // declared inside the loop: order cannot leak out
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		n += len(evens)
	}
	return n
}

func allowedEscape(m map[string]int) {
	for k := range m {
		//repolint:allow maporder -- fixture: demonstrating the escape hatch
		fmt.Println(k)
	}
}
