// Package maporder defines an analyzer for the classic Go
// nondeterminism bug: ranging over a map while producing ordered
// output. Map iteration order is deliberately randomized by the
// runtime, so a loop that appends to a slice, writes to an output
// stream, or feeds a hash during `range someMap` yields a different
// ordering every run — exactly the silent reproducibility break the
// repo's bit-identical-output contract forbids.
//
// Appending to a slice is allowed when the enclosing function
// observably sorts that slice afterwards (the collect-then-sort idiom);
// writes and hashing inside the loop body have no such repair and are
// always flagged.
package maporder

import (
	"go/ast"
	"go/types"

	"pathsel/internal/analysis/lint"
)

// Analyzer flags nondeterministic map iteration.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops that append to an unsorted slice, write output, or feed a hash; " +
		"map iteration order is randomized per run, so collect keys and sort them instead",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// Walk function by function so the sorted-afterwards check can
		// see the statements that follow each loop.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc inspects one function body for map-range loops with
// order-sensitive effects.
func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

// checkMapRange reports order-sensitive effects in the body of one
// range-over-map loop.
func checkMapRange(pass *lint.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	var appended []types.Object // outer slices appended to in the loop
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested range over a map is analyzed on its own by
			// checkFunc; don't descend into it here or its effects
			// would be reported twice.
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.AssignStmt:
			// x = append(x, ...) where x outlives the loop.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				obj := rootObject(pass, n.Lhs[i])
				if obj != nil && obj.Pos() < rng.Pos() {
					appended = append(appended, obj)
				}
			}
		case *ast.CallExpr:
			if name, ok := writerCall(pass, n); ok {
				pass.Reportf(n.Pos(), "%s inside range over map writes in nondeterministic order; iterate over sorted keys", name)
			}
		}
		return true
	})
	for _, obj := range appended {
		if !sortedAfter(pass, fnBody, rng, obj) {
			pass.Reportf(rng.Pos(), "%s is appended to in map-iteration order and never sorted in this function; collect and sort, or sort the keys first", obj.Name())
		}
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the variable at the root of an lvalue: x, x.f and
// x[i] all resolve to x.
func rootObject(pass *lint.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// writerCall reports whether call emits bytes somewhere order matters:
// the fmt print family, or a Write*-ish method (io.Writer, hash.Hash,
// strings.Builder, bufio.Writer all share the shape).
func writerCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Signature().Recv() == nil {
				switch fn.Name() {
				case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
					return "fmt." + fn.Name(), true
				}
			}
			if fn.Signature().Recv() != nil {
				switch name {
				case "Write", "WriteString", "WriteByte", "WriteRune", "Sum":
					return "method " + name, true
				}
			}
		}
	}
	return "", false
}

// sortedAfter reports whether some statement after rng (inside fnBody)
// passes obj to a sort.* or slices.* function — the accepted repair for
// collect-in-map-order.
func sortedAfter(pass *lint.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// refersTo reports whether expr mentions obj, directly or inside a
// closure (sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })).
func refersTo(pass *lint.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
