package maporder_test

import (
	"testing"

	"pathsel/internal/analysis/linttest"
	"pathsel/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "maporder")
}
