// Package hotalloc defines an analyzer enforcing the scratch-arena
// contract on the repo's hot kernels: functions annotated
//
//	//repolint:hotpath
//
// (the CSR search/relax loops, the Yen spur search, the landmark
// Dijkstras) run per pair inside batched analyses, so a single
// allocation in one of them multiplies by millions of pairs and
// becomes the dominant cost PR 1 and PR 6 engineered away with pooled
// scratches. The analyzer flags the constructs that introduce
// allocations — make, new, append, slice/map composite literals,
// &T{}, capturing closures, and concrete-to-interface boxing at call
// sites — inside annotated functions. Deliberate allocations (e.g.
// amortized growth of a pooled backing array) stay visible behind
// //repolint:allow with a reason.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"pathsel/internal/analysis/lint"
)

// Analyzer flags allocation-introducing constructs in functions
// annotated //repolint:hotpath.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-introducing constructs (make/new/append, slice/map literals, capturing closures, " +
		"interface boxing) inside functions annotated //repolint:hotpath; hot kernels must run on pooled scratch",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !lint.HasDirective(fn.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, e)
		case *ast.CompositeLit:
			checkCompositeLit(pass, e)
		case *ast.UnaryExpr:
			// &T{} heap-allocates; the composite-lit case below skips
			// plain struct literals, so catch the addressed form here.
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal allocates in a hot path; reuse a pooled object instead")
				}
			}
		case *ast.FuncLit:
			checkClosure(pass, fn, e)
			return false // the literal's own body belongs to the closure
		}
		return true
	})
}

// checkCall flags the allocating builtins and concrete-to-interface
// boxing of arguments.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in a hot path; write into preallocated scratch")
			case "make":
				pass.Reportf(call.Pos(), "make allocates in a hot path; hoist the buffer into the search scratch")
			case "new":
				pass.Reportf(call.Pos(), "new allocates in a hot path; reuse a pooled object instead")
			}
			return
		}
	}
	// Type conversions: flag conversions to interface types.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			pass.Reportf(call.Pos(), "conversion to interface boxes the value (allocates) in a hot path")
		}
		return
	}
	// Ordinary calls: a concrete argument passed to an interface
	// parameter is boxed at the call boundary.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if isUntypedNil(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it (allocates) in a hot path", types.TypeString(at, types.RelativeTo(pass.Pkg)))
	}
}

// checkCompositeLit flags slice and map literals; plain struct
// literals by value live on the stack and pass.
func checkCompositeLit(pass *lint.Pass, lit *ast.CompositeLit) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates in a hot path; hoist it to a package var or scratch field")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates in a hot path; hoist it out or use a dense index")
	}
}

// checkClosure flags function literals that capture variables from the
// enclosing function — those closures heap-allocate their environment
// per execution. Non-capturing literals compile to static functions
// and pass.
func checkClosure(pass *lint.Pass, enclosing *ast.FuncDecl, lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function (params,
		// receiver, locals) but outside the literal itself.
		if v.Pos() >= enclosing.Pos() && v.Pos() < enclosing.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = id.Name
		}
		return true
	})
	if captured != "" {
		pass.Reportf(lit.Pos(), "closure captures %s and allocates its environment in a hot path; pass state explicitly or hoist the func", captured)
	}
}

// isUntypedNil reports whether e is the untyped nil literal.
func isUntypedNil(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
