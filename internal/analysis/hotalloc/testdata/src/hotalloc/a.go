// Package hotalloc is a fixture for the hotalloc analyzer: the
// annotated function demonstrates every flagged construct; the
// unannotated one allocates freely without a peep.
package hotalloc

func sink(v any)      {}
func sinkInt(v int)   {}
func sinkErr(e error) {}

type boxed struct{ v int }

func (b boxed) Error() string { return "boxed" }

// relax is a stand-in for a CSR relaxation kernel.
//
//repolint:hotpath
func relax(dist []float64, frontier []int32, n int) {
	buf := make([]int32, n) // want `make allocates in a hot path`
	_ = buf
	frontier = append(frontier, 0) // want `append may grow its backing array`
	seen := map[int32]bool{}       // want `map literal allocates in a hot path`
	_ = seen
	weights := []float64{1, 2} // want `slice literal allocates in a hot path`
	_ = weights
	p := new(boxed) // want `new allocates in a hot path`
	_ = p
	q := &boxed{v: 1} // want `&composite literal allocates`
	_ = q
	f := func() { dist[0] = 0 } // want `closure captures dist and allocates its environment`
	f()
	sink(n)                // want `passing int to interface parameter boxes it`
	sinkErr(boxed{v: 2})   // want `passing boxed to interface parameter boxes it`
	_ = error(boxed{v: 3}) // want `conversion to interface boxes the value`
}

// stackOnly shows the constructs that stay quiet: stack values,
// non-capturing closures, nil interfaces, pre-sized writes.
//
//repolint:hotpath
func stackOnly(dist []float64, scratch []int32) {
	b := boxed{v: 1} // struct literal by value: stack
	_ = b
	g := func(i int) int { return i * 2 } // captures nothing: static func
	sinkInt(g(1))
	sinkErr(nil) // untyped nil boxes nothing
	for i := range scratch {
		scratch[i] = int32(i) // writing into preallocated scratch
	}
	dist[0] = 0
}

// amortized demonstrates the escape hatch for a deliberate allocation.
//
//repolint:hotpath
func amortized(heap []int32, v int32) []int32 {
	//repolint:allow hotalloc -- amortized growth reuses the pooled backing array across searches
	heap = append(heap, v)
	return heap
}

// coldPath is not annotated: allocation is free to happen.
func coldPath(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
