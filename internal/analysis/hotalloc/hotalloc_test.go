package hotalloc_test

import (
	"testing"

	"pathsel/internal/analysis/hotalloc"
	"pathsel/internal/analysis/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hotalloc")
}
