package obsmetric_test

import (
	"testing"

	"pathsel/internal/analysis/linttest"
	"pathsel/internal/analysis/obsmetric"
)

func TestObsmetric(t *testing.T) {
	linttest.Run(t, obsmetric.Analyzer, "obsmetric")
}
