// Package obsmetric defines an analyzer validating internal/obs
// registration call sites. The obs registry only detects a metric name
// registered under two different kinds at runtime — as a panic in
// whatever handler happens to touch it first — and never detects an
// exposition-illegal name at all (Prometheus just drops the scrape).
// Both are static properties of the call sites, so check them
// statically: names must be compile-time string constants, must match
// the Prometheus metric-name grammar, and must keep one kind per name
// within a package.
package obsmetric

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"pathsel/internal/analysis/lint"
)

// Analyzer validates obs.Registry metric registrations.
var Analyzer = &lint.Analyzer{
	Name: "obsmetric",
	Doc: "require obs.Registry Counter/Gauge/Histogram names to be literal constants, Prometheus-legal " +
		"([a-zA-Z_:][a-zA-Z0-9_:]*), and registered under a single kind per package",
	Run: run,
}

// obsPath is the import path of the metrics package whose registry
// calls are validated.
const obsPath = "pathsel/internal/obs"

// registerKinds are the Registry methods that mint a metric family.
var registerKinds = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

var legalName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// firstUse remembers where a metric name was first registered and as
// what kind, for the one-kind-per-name check.
type firstUse struct {
	kind string
	pos  token.Pos
}

func run(pass *lint.Pass) error {
	seen := map[string]firstUse{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
				return true
			}
			if !registerKinds[fn.Name()] || fn.Signature().Recv() == nil || len(call.Args) == 0 {
				return true
			}
			kind := fn.Name()
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "obs metric name must be a compile-time string constant so dashboards and alerts can be greppable and lintable")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !legalName.MatchString(name) {
				pass.Reportf(arg.Pos(), "obs metric name %q is not Prometheus-legal (want [a-zA-Z_:][a-zA-Z0-9_:]*); the scrape endpoint would emit an unparseable exposition", name)
				return true
			}
			if prev, ok := seen[name]; ok && prev.kind != kind {
				pass.Reportf(arg.Pos(), "obs metric %q registered as %s here but as %s at %s; the registry panics on the first kind mismatch at runtime", name, kind, prev.kind, pass.Fset.Position(prev.pos))
				return true
			}
			if _, ok := seen[name]; !ok {
				seen[name] = firstUse{kind: kind, pos: arg.Pos()}
			}
			return true
		})
	}
	return nil
}
