// Package obsmetric is a fixture for the obsmetric analyzer: dynamic
// names, exposition-illegal names, and kind conflicts are violations;
// constant legal names (including labeled re-registrations of the same
// family) and annotated escapes are not.
package obsmetric

import "pathsel/internal/obs"

const histName = "build_duration_seconds"

func register(r *obs.Registry, dynamic string) {
	r.Counter("requests_total", "Requests served.")
	r.Counter("requests_total", "Requests served.", "code", "200") // same family, same kind: labeled variant
	r.Gauge("inflight", "Requests in flight.")
	r.Histogram(histName, "Build latency.") // named constants are compile-time too

	r.Gauge("requests_total", "oops")   // want `registered as Gauge here but as Counter at`
	r.Counter(dynamic, "dynamic name")  // want `must be a compile-time string constant`
	r.Counter("bad-name", "bad chars")  // want `not Prometheus-legal`
	r.Counter("0leading", "bad prefix") // want `not Prometheus-legal`

	//repolint:allow obsmetric -- fixture: demonstrating the escape hatch
	r.Counter(dynamic, "allowed dynamic name")
}
