// Package detrand defines an analyzer enforcing the reproduction's
// core contract: every dataset is a deterministic function of the
// configured seed. The paper's headline numbers (30–80% of pairs with
// a better alternate path) are only reproducible if same-seed runs are
// bit-identical, so inside the simulation and analysis packages all
// randomness must flow from an explicitly seeded *rand.Rand and no
// result may depend on the wall clock.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"pathsel/internal/analysis/lint"
)

// Packages is the set of import paths held to the determinism
// contract. Serving-layer packages (cmd/serve, internal/server,
// internal/obs) are exempt: wall-clock timestamps and jitter are part
// of their job. internal/loadgen generates its request mix from a
// seed, but it measures wall-clock latencies, so it stays exempt too.
// Tests may extend this set to cover fixture packages.
var Packages = map[string]bool{}

func init() {
	for _, name := range []string{
		"topology", "igp", "bgp", "netsim", "measure", "core",
		"experiments", "stats", "tcpmodel", "tcpsim", "dynamics",
		"geo", "probe", "optimal", "overlay", "csr", "pathset",
		"packetnet", "snapshot",
	} {
		Packages["pathsel/internal/"+name] = true
	}
}

// Analyzer flags global math/rand state and wall-clock reads in
// deterministic packages.
var Analyzer = &lint.Analyzer{
	Name: "detrand",
	Doc: "flag global math/rand functions and time.Now/Since/Until in deterministic packages; " +
		"all randomness there must come from an explicitly seeded *rand.Rand so same-seed runs are bit-identical",
	Run: run,
}

// clockFuncs are the package time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *lint.Pass) error {
	if !Packages[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Signature().Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				// The constructors (New, NewSource, NewZipf, ...) build
				// the explicitly seeded generators we require; every
				// other package-level function touches the hidden
				// global generator.
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(id.Pos(), "global %s.%s uses process-wide random state; draw from an explicitly seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
				}
			case "time":
				if clockFuncs[fn.Name()] {
					pass.Reportf(id.Pos(), "time.%s reads the wall clock in a deterministic package; results must be a function of the seed only", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
