package detrand_test

import (
	"testing"

	"pathsel/internal/analysis/detrand"
	"pathsel/internal/analysis/linttest"
)

func TestDetrand(t *testing.T) {
	detrand.Packages["detrand"] = true
	defer delete(detrand.Packages, "detrand")
	linttest.Run(t, detrand.Analyzer, "detrand")
}

// TestSkipsNonDeterministicPackages proves the analyzer is scoped: the
// same fixture loaded under a package path outside the deterministic
// set yields no findings at all (so every fixture `want` must fail to
// appear — linttest would report them as unmatched). We assert the
// scoping directly instead.
func TestScopedToDeterministicPackages(t *testing.T) {
	if detrand.Packages["pathsel/internal/obs"] {
		t.Fatal("serving-layer package internal/obs must not be in the deterministic set")
	}
	for _, p := range []string{"pathsel/internal/core", "pathsel/internal/netsim", "pathsel/internal/experiments"} {
		if !detrand.Packages[p] {
			t.Fatalf("%s missing from the deterministic set", p)
		}
	}
}
