package detrand

import (
	"math/rand"
	"time"
)

// Test files are exempt: benchmarks and fixtures may consult the clock
// and the global generator freely. Nothing here should be reported.
func testOnlyHelper() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}
