// Package detrand is a fixture for the detrand analyzer: global
// math/rand and wall-clock reads are violations, seeded generators and
// annotated escapes are not.
package detrand

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func badGlobals(n int) int {
	x := rand.Intn(n)        // want `global rand.Intn uses process-wide random state`
	y := rand.Float64()      // want `global rand.Float64 uses process-wide random state`
	rand.Seed(42)            // want `global rand.Seed uses process-wide random state`
	z := randv2.IntN(n)      // want `global rand.IntN uses process-wide random state`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand.Shuffle uses process-wide random state`
	return x + int(y) + z
}

func badClock() float64 {
	start := time.Now() // want `time.Now reads the wall clock`
	return time.Since(start).Seconds() // want `time.Since reads the wall clock`
}

func goodSeeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the sanctioned path
	v2 := randv2.New(randv2.NewPCG(1, 2))
	return r.Intn(n) + v2.IntN(n) // methods on seeded generators are fine
}

func goodDurations(d time.Duration) float64 {
	// Pure duration arithmetic never touches the clock.
	return (d + time.Millisecond).Seconds()
}

func allowedEscape() int64 {
	//repolint:allow detrand -- fixture: demonstrating the escape hatch
	return time.Now().UnixNano()
}
