package repolint

import "testing"

// TestSuiteWellFormed guards the registry the driver and CI run: every
// analyzer present, named uniquely (names double as //repolint:allow
// keys, so a collision would make directives ambiguous), and documented.
func TestSuiteWellFormed(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("suite has %d analyzers, want 9", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
