// Package repolint assembles the repo's analyzer suite in one place so
// the cmd/repolint driver and the clean-tree regression test run the
// exact same checks.
package repolint

import (
	"pathsel/internal/analysis/ctxflow"
	"pathsel/internal/analysis/ctxleak"
	"pathsel/internal/analysis/deprecated"
	"pathsel/internal/analysis/detflow"
	"pathsel/internal/analysis/detrand"
	"pathsel/internal/analysis/floateq"
	"pathsel/internal/analysis/hotalloc"
	"pathsel/internal/analysis/lint"
	"pathsel/internal/analysis/maporder"
	"pathsel/internal/analysis/obsmetric"
)

// All returns every analyzer in the suite, in reporting order. The
// first five are intraprocedural (v1); ctxleak, deprecated, detflow,
// and hotalloc arrived with the call-graph engine and consume the
// shared Program facts.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxflow.Analyzer,
		ctxleak.Analyzer,
		deprecated.Analyzer,
		detflow.Analyzer,
		detrand.Analyzer,
		floateq.Analyzer,
		hotalloc.Analyzer,
		maporder.Analyzer,
		obsmetric.Analyzer,
	}
}
