// Package repolint assembles the repo's analyzer suite in one place so
// the cmd/repolint driver and the clean-tree regression test run the
// exact same checks.
package repolint

import (
	"pathsel/internal/analysis/ctxflow"
	"pathsel/internal/analysis/detrand"
	"pathsel/internal/analysis/floateq"
	"pathsel/internal/analysis/lint"
	"pathsel/internal/analysis/maporder"
	"pathsel/internal/analysis/obsmetric"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxflow.Analyzer,
		detrand.Analyzer,
		floateq.Analyzer,
		maporder.Analyzer,
		obsmetric.Analyzer,
	}
}
