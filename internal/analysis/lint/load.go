package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Loader parses and type-checks packages for analysis, sharing one
// FileSet and one type-check cache across every package it touches. It
// needs no network, no module downloads, and no compiled export data:
// in-module imports are resolved by type-checking their sources through
// the same cache the analyzers read (so a *types.Func seen at a call
// site in one package is the identical object the defining package's
// AST maps to — the property the call graph depends on), and stdlib
// imports fall back to the standard source importer. Each package is
// checked exactly once per Loader no matter how many importers and
// analyzers ask for it.
type Loader struct {
	fset *token.FileSet
	conf types.Config

	// fallback resolves packages outside the module (the stdlib).
	fallback types.Importer

	// pkgs caches every package this loader has checked, by import
	// path. Both Load/LoadDir results and import resolution share it.
	pkgs map[string]*Package

	// filesOf maps import paths go list reported to their non-test Go
	// files; dirs resolved another way are scanned directly.
	filesOf map[string][]string

	// modPath/modDir locate the enclosing module so in-module import
	// paths can be resolved to directories even when go list did not
	// report them explicitly.
	modPath, modDir string

	// sourceRoot, when set, resolves otherwise-unknown import paths as
	// subdirectories of this root — the fixture convention: a package
	// "aux" imported by a testdata fixture lives at sourceRoot/aux.
	sourceRoot string
}

// NewLoader returns a Loader with a fresh FileSet and empty cache.
func NewLoader() *Loader {
	l := &Loader{
		fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
		filesOf: map[string][]string{},
	}
	l.fallback = importer.ForCompiler(l.fset, "source", nil)
	l.conf = types.Config{Importer: l}
	return l
}

// WithSourceRoot makes the loader resolve unknown import paths as
// subdirectories of root, the way analysistest treats testdata/src.
// It returns the loader for chaining.
func (l *Loader) WithSourceRoot(root string) *Loader {
	l.sourceRoot = root
	return l
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Module     *struct{ Path, Dir string }
}

// Load expands the go package patterns (e.g. "./...") with the go
// command and returns each matched package parsed and type-checked.
// Only non-test files are loaded: the analyzers' contracts concern
// shipped code, and the ones where tests matter exempt them anyway.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var paths []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Module != nil && l.modPath == "" {
			l.modPath, l.modDir = lp.Module.Path, lp.Module.Dir
		}
		if len(lp.GoFiles) == 0 {
			continue // test-only or empty package
		}
		files := make([]string, len(lp.GoFiles))
		for i, name := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, name)
		}
		l.filesOf[lp.ImportPath] = files
		paths = append(paths, lp.ImportPath)
	}
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly under dir as
// one package with the given import path. It backs the analyzers'
// testdata fixtures, where the files live outside any go-list-visible
// package tree.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	files, err := goFilesIn(dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(path, files)
}

// Import implements types.Importer: it resolves an import path to a
// type-checked package, preferring the loader's own source cache (any
// in-module or fixture package) and falling back to the stdlib source
// importer. This is what makes the whole load one shared program.
func (l *Loader) Import(path string) (*types.Package, error) {
	pkg, err := l.load(path)
	if err == nil {
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// load resolves path through the cache, go list's file map, the module
// layout, and the fixture source root, in that order. It fails for
// paths it has no source mapping for (the caller then falls back to the
// stdlib importer).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if files, ok := l.filesOf[path]; ok {
		return l.check(path, files)
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		dir := filepath.Join(l.modDir, strings.TrimPrefix(path, l.modPath))
		files, err := goFilesIn(dir, false)
		if err == nil && len(files) > 0 {
			return l.check(path, files)
		}
	}
	if l.sourceRoot != "" {
		dir := filepath.Join(l.sourceRoot, path)
		if files, err := goFilesIn(dir, true); err == nil && len(files) > 0 {
			return l.check(path, files)
		}
	}
	return nil, fmt.Errorf("lint: no source for package %q", path)
}

// goFilesIn lists dir's .go files, sorted. Fixture dirs keep _test.go
// files (they are part of the fixture); module dirs resolved without go
// list drop them, matching go list's GoFiles.
func goFilesIn(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// check parses the files and type-checks them as one package,
// registering the result in the cache.
func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := l.conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Fset: l.fset, Path: path, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
