package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Loader parses and type-checks packages for analysis. It wraps the
// standard library's source importer, so it needs no network, no
// module downloads, and no compiled export data: imports (both stdlib
// and in-module) are resolved by type-checking their sources, and the
// importer's cache makes loading every package of this module a
// few-second, one-process operation.
type Loader struct {
	fset *token.FileSet
	conf types.Config
}

// NewLoader returns a Loader with a fresh FileSet and import cache.
func NewLoader() *Loader {
	l := &Loader{fset: token.NewFileSet()}
	l.conf = types.Config{Importer: importer.ForCompiler(l.fset, "source", nil)}
	return l
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load expands the go package patterns (e.g. "./...") with the go
// command and returns each matched package parsed and type-checked.
// Only non-test files are loaded: the analyzers' contracts concern
// shipped code, and the ones where tests matter exempt them anyway.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue // test-only or empty package
		}
		files := make([]string, len(lp.GoFiles))
		for i, name := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, name)
		}
		pkg, err := l.check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly under dir as
// one package with the given import path. It backs the analyzers'
// testdata fixtures, where the files live outside any go-list-visible
// package tree.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(path, files)
}

// check parses the files and type-checks them as one package.
func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := l.conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Fset: l.fset, Path: path, Files: files, Types: tpkg, Info: info}, nil
}
