package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by diags and returns
// the rewritten content of each touched file. Edits are validated
// against the FileSet, sorted, and checked for overlap: two fixes
// touching the same bytes are a conflict, reported as an error rather
// than silently mangling source. read supplies original file contents
// (os.ReadFile in the driver; a fixture snapshot in tests).
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, read func(string) ([]byte, error)) (map[string][]byte, error) {
	type span struct {
		start, end int
		text       string
	}
	perFile := map[string][]span{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.Edits {
				if !e.Pos.IsValid() || e.End < e.Pos {
					return nil, fmt.Errorf("lint: invalid edit range in fix %q", fix.Message)
				}
				pos, end := fset.Position(e.Pos), fset.Position(e.End)
				if end.Filename != pos.Filename {
					return nil, fmt.Errorf("lint: edit in fix %q spans files %s and %s", fix.Message, pos.Filename, end.Filename)
				}
				perFile[pos.Filename] = append(perFile[pos.Filename], span{pos.Offset, end.Offset, e.NewText})
			}
		}
	}
	out := map[string][]byte{}
	files := make([]string, 0, len(perFile))
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		spans := perFile[name]
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].end < spans[j].end
		})
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				return nil, fmt.Errorf("lint: conflicting fixes in %s around offset %d", name, spans[i].start)
			}
		}
		src, err := read(name)
		if err != nil {
			return nil, err
		}
		var buf []byte
		last := 0
		for _, s := range spans {
			if s.end > len(src) {
				return nil, fmt.Errorf("lint: edit past end of %s", name)
			}
			buf = append(buf, src[last:s.start]...)
			buf = append(buf, s.text...)
			last = s.end
		}
		buf = append(buf, src[last:]...)
		out[name] = buf
	}
	return out, nil
}

// WriteFixes applies the fixes in diags to the files on disk in place,
// returning the rewritten file names, sorted.
func WriteFixes(fset *token.FileSet, diags []Diagnostic) ([]string, error) {
	fixed, err := ApplyFixes(fset, diags, os.ReadFile)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(fixed))
	for name := range fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(name, fixed[name], info.Mode().Perm()); err != nil {
			return nil, err
		}
	}
	return names, nil
}
