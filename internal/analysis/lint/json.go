package lint

import "go/token"

// The JSON shapes below are the machine-readable face of the suite:
// `repolint -json` emits a Report, CI archives it as a build artifact,
// and editor tooling can apply the byte-offset edits directly.

// A JSONEdit is one text replacement in byte offsets within File.
type JSONEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// A JSONFix is one machine-applicable rewrite.
type JSONFix struct {
	Message string     `json:"message"`
	Edits   []JSONEdit `json:"edits"`
}

// A JSONDiagnostic is one finding with its file position resolved.
type JSONDiagnostic struct {
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Column   int       `json:"column"`
	Analyzer string    `json:"analyzer"`
	Message  string    `json:"message"`
	Fixes    []JSONFix `json:"fixes,omitempty"`
}

// A Report is the top-level -json document.
type Report struct {
	Count    int              `json:"count"`
	Findings []JSONDiagnostic `json:"findings"`
}

// NewReport resolves diagnostics against the FileSet into a Report.
// Findings is always non-nil so the JSON document carries [] rather
// than null when the tree is clean.
func NewReport(fset *token.FileSet, diags []Diagnostic) Report {
	findings := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		jd := JSONDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		for _, f := range d.SuggestedFixes {
			jf := JSONFix{Message: f.Message}
			for _, e := range f.Edits {
				start, end := fset.Position(e.Pos), fset.Position(e.End)
				jf.Edits = append(jf.Edits, JSONEdit{
					File:    start.Filename,
					Start:   start.Offset,
					End:     end.Offset,
					NewText: e.NewText,
				})
			}
			jd.Fixes = append(jd.Fixes, jf)
		}
		findings = append(findings, jd)
	}
	return Report{Count: len(findings), Findings: findings}
}
