// Package lint is a small, dependency-free static-analysis framework
// in the image of golang.org/x/tools/go/analysis: an Analyzer inspects
// one type-checked package at a time through a Pass and reports
// position-anchored Diagnostics. It exists because the reproduction's
// determinism and cancellation contracts ("bit-identical output for a
// given seed", "cancelling ctx aborts the build") are invariants the
// compiler cannot see, so they need repo-specific checkers runnable in
// CI; and because this module is deliberately stdlib-only, the x/tools
// framework is reimplemented here at the scale the repo needs rather
// than vendored.
//
// Findings can be suppressed at a call site with a directive comment on
// the offending line or the line above:
//
//	//repolint:allow detrand -- seeding the demo from wall-clock is the point
//
// The directive names one or more analyzers; everything after "--" is
// an (encouraged) justification. Deliberate exceptions stay visible and
// greppable instead of silently rotting the contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"sync"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow directives. It must look like a Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why, shown by `repolint -list`.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf. Returning an error aborts the whole lint run: it
	// signals a broken analyzer, not a finding.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// SuggestedFixes are machine-applicable rewrites resolving the
	// finding, applied by `repolint -fix` and asserted against golden
	// files by linttest. Most diagnostics carry none.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite: applying all of its
// edits together resolves the diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End inserts.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Pass connects an Analyzer to the Package it is inspecting.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the whole loaded program when the pass runs under
	// Program.Run (always, for the repolint driver and linttest); it
	// carries the shared call graph and taint facts the
	// interprocedural analyzers consume.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed finding (typically one carrying
// suggested fixes). The Analyzer field is filled in from the pass.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// InTestFile reports whether pos lies in a _test.go file. Several
// analyzers exempt tests: tests may legitimately consult wall clocks,
// use throwaway contexts, or compare floats they just constructed.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Program is one shared load: every package the analyzers will
// inspect, plus lazily-built whole-program facts (the call graph,
// taint sets, source bytes) computed once and reused by every
// analyzer. The repolint driver builds one Program per invocation —
// that single type-checked load is what every analyzer shares.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	cgOnce sync.Once
	cg     *CallGraph

	mu    sync.Mutex
	src   map[string][]byte
	cache map[any]any
}

// NewProgram bundles the loaded packages into one analyzable program.
// The packages must share one FileSet (one Loader guarantees this).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs, src: map[string][]byte{}, cache: map[any]any{}}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	return p
}

// Package returns the loaded package with the given import path, or
// nil. Only packages named in the load are present — not their
// imports' imports.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Cached memoizes a whole-program fact under key: the first caller's
// build result is returned to every later caller. Analyzers use it so
// per-package Run invocations share one computation (e.g. one taint
// propagation) across the program.
func (p *Program) Cached(key any, build func() any) any {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := build()
	p.cache[key] = v
	return v
}

// FileContent returns (and caches) the raw bytes of a source file the
// program was parsed from. Fix builders read it to splice original
// expression text into rewrites.
func (p *Program) FileContent(name string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.src[name]; ok {
		return b, nil
	}
	b, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	p.src[name] = b
	return b, nil
}

// Source returns the original source text in [pos, end).
func (p *Program) Source(pos, end token.Pos) (string, error) {
	start, stop := p.Fset.Position(pos), p.Fset.Position(end)
	if start.Filename != stop.Filename {
		return "", fmt.Errorf("lint: source range spans files %s and %s", start.Filename, stop.Filename)
	}
	b, err := p.FileContent(start.Filename)
	if err != nil {
		return "", err
	}
	if stop.Offset > len(b) || start.Offset > stop.Offset {
		return "", fmt.Errorf("lint: source range [%d, %d) out of bounds for %s", start.Offset, stop.Offset, start.Filename)
	}
	return string(b[start.Offset:stop.Offset]), nil
}

// Indentation returns the leading whitespace of the line pos sits on,
// so inserted statements can match the surrounding indentation.
func (p *Program) Indentation(pos token.Pos) (string, error) {
	at := p.Fset.Position(pos)
	b, err := p.FileContent(at.Filename)
	if err != nil {
		return "", err
	}
	lineStart := at.Offset - (at.Column - 1)
	if lineStart < 0 || at.Offset > len(b) {
		return "", fmt.Errorf("lint: position out of bounds for %s", at.Filename)
	}
	indent := b[lineStart:at.Offset]
	for _, c := range indent {
		if c != ' ' && c != '\t' {
			return "", nil // mid-line position: no usable indent
		}
	}
	return string(indent), nil
}

// Run applies every analyzer to every package of the program, drops
// findings suppressed by //repolint:allow directives, and returns the
// rest sorted by position.
func (p *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		allow := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     p,
			}
			pass.report = func(d Diagnostic) {
				if !allow.suppressed(pkg.Fset, d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := p.Fset.Position(diags[i].Pos), p.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Run applies every analyzer to the single package pkg. It wraps a
// one-package Program; analyzers needing cross-package facts see only
// pkg. The multichecker and linttest use Program.Run directly.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewProgram([]*Package{pkg}).Run(analyzers)
}

// directivePrefix introduces every repolint source annotation
// (//repolint:allow, //repolint:hotpath, ...).
const directivePrefix = "//repolint:"

// HasDirective reports whether the comment group contains the given
// repolint directive (e.g. "hotpath"), ignoring any arguments after it.
func HasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix+name)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// allowKey locates one //repolint:allow directive: a (file, line,
// analyzer) triple.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

const allowPrefix = "//repolint:allow"

// collectAllows scans every comment in the package for allow
// directives.
func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				// Everything after "--" is justification, not names.
				names, _, _ := strings.Cut(rest, "--")
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(names) {
					set[allowKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return set
}

// suppressed reports whether d is covered by a directive on its own
// line or the line immediately above (the two places Go convention puts
// an explanatory comment).
func (s allowSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s[allowKey{pos.Filename, pos.Line, d.Analyzer}] ||
		s[allowKey{pos.Filename, pos.Line - 1, d.Analyzer}]
}
