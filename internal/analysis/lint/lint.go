// Package lint is a small, dependency-free static-analysis framework
// in the image of golang.org/x/tools/go/analysis: an Analyzer inspects
// one type-checked package at a time through a Pass and reports
// position-anchored Diagnostics. It exists because the reproduction's
// determinism and cancellation contracts ("bit-identical output for a
// given seed", "cancelling ctx aborts the build") are invariants the
// compiler cannot see, so they need repo-specific checkers runnable in
// CI; and because this module is deliberately stdlib-only, the x/tools
// framework is reimplemented here at the scale the repo needs rather
// than vendored.
//
// Findings can be suppressed at a call site with a directive comment on
// the offending line or the line above:
//
//	//repolint:allow detrand -- seeding the demo from wall-clock is the point
//
// The directive names one or more analyzers; everything after "--" is
// an (encouraged) justification. Deliberate exceptions stay visible and
// greppable instead of silently rotting the contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow directives. It must look like a Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why, shown by `repolint -list`.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf. Returning an error aborts the whole lint run: it
	// signals a broken analyzer, not a finding.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Pass connects an Analyzer to the Package it is inspecting.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Several
// analyzers exempt tests: tests may legitimately consult wall clocks,
// use throwaway contexts, or compare floats they just constructed.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies every analyzer to pkg, drops findings suppressed by
// //repolint:allow directives, and returns the rest sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := collectAllows(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !allow.suppressed(pkg.Fset, d) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowKey locates one //repolint:allow directive: a (file, line,
// analyzer) triple.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

const allowPrefix = "//repolint:allow"

// collectAllows scans every comment in the package for allow
// directives.
func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				// Everything after "--" is justification, not names.
				names, _, _ := strings.Cut(rest, "--")
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(names) {
					set[allowKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return set
}

// suppressed reports whether d is covered by a directive on its own
// line or the line immediately above (the two places Go convention puts
// an explanatory comment).
func (s allowSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s[allowKey{pos.Filename, pos.Line, d.Analyzer}] ||
		s[allowKey{pos.Filename, pos.Line - 1, d.Analyzer}]
}
