package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSnippet parses src as a single-file package without
// type-checking, enough to exercise directive handling.
func loadSnippet(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Path: "snippet", Files: []*ast.File{f}}
}

func TestAllowDirectiveSuppression(t *testing.T) {
	src := `package p

func a() int { return 1 } // plain comment, not a directive

//repolint:allow fake -- same analyzer, line above
func b() int { return 2 }

func c() int { return 3 } //repolint:allow fake other -- same line, two names

//repolint:allow other -- different analyzer only
func d() int { return 4 }
`
	pkg := loadSnippet(t, src)
	fake := &Analyzer{
		Name: "fake",
		Doc:  "reports every function declaration",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					pass.Reportf(d.Pos(), "decl")
				}
			}
			return nil
		},
	}
	diags, err := Run(pkg, []*Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, pkg.Fset.Position(d.Pos).Line)
	}
	// a (line 3) and d (line 11) survive; b and c are suppressed.
	if len(lines) != 2 || lines[0] != 3 || lines[1] != 11 {
		t.Fatalf("surviving diagnostic lines = %v, want [3 11]", lines)
	}
}

func TestRunSortsDiagnostics(t *testing.T) {
	src := "package p\n\nfunc z() {}\n\nfunc a() {}\n"
	pkg := loadSnippet(t, src)
	rev := &Analyzer{
		Name: "rev",
		Doc:  "reports decls in reverse order",
		Run: func(pass *Pass) error {
			decls := pass.Files[0].Decls
			for i := len(decls) - 1; i >= 0; i-- {
				pass.Reportf(decls[i].Pos(), "decl %d", i)
			}
			return nil
		},
	}
	diags, err := Run(pkg, []*Analyzer{rev})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || pkg.Fset.Position(diags[0].Pos).Line != 3 {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}

func TestLoaderLoadsThisPackage(t *testing.T) {
	pkgs, err := NewLoader().Load("pathsel/internal/analysis/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types.Name() != "lint" {
		t.Fatalf("unexpected load result: %+v", pkgs)
	}
	for _, f := range pkgs[0].Files {
		name := pkgs[0].Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader included test file %s", name)
		}
	}
}

func TestLoadDirRejectsEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "empty")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoader().LoadDir(dir, "empty"); err == nil {
		t.Fatal("LoadDir of an empty dir should fail")
	}
}
