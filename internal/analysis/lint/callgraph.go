package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// This file gives the framework its interprocedural spine: a CHA-style
// call graph over the loaded program and a forward taint engine on top
// of it. Class-hierarchy analysis resolves an interface method call to
// every loaded concrete type implementing the interface — sound for
// code whose implementations are all in the load, deliberately
// over-approximate (a call site may gain callees that can never run
// there), and cheap enough to build once per repolint invocation.
//
// Known unsoundness, accepted and documented in DESIGN.md §12: calls
// through function *values* (parameters, struct fields, map entries)
// and reflection are not edges, and bodies of packages outside the
// load (the stdlib) are opaque — their functions are graph leaves.
// Closures are attributed to their enclosing declared function: a
// FuncLit's calls become edges out of the declaration it lexically
// sits in, which is exactly the granularity //repolint:allow and the
// analyzers' reports work at.

// A CallGraph is the program-wide static call graph.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
}

// A CallNode is one function (declared in the program, or referenced
// as a leaf — e.g. a stdlib function) with its in/out edges.
type CallNode struct {
	Func *types.Func
	// Decl is the function's declaration when its package is in the
	// program; nil for leaves.
	Decl *ast.FuncDecl
	// Pkg is the loaded package declaring the function, nil for leaves.
	Pkg *Package
	Out []*CallEdge
	In  []*CallEdge
}

// A CallEdge connects a call site in Caller to one possible Callee.
type CallEdge struct {
	Caller, Callee *CallNode
	// Site is the *ast.CallExpr (inside go and defer statements too).
	Site *ast.CallExpr
	// Dynamic marks edges resolved by class-hierarchy analysis of an
	// interface method call: one edge per implementing type.
	Dynamic bool
}

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p) })
	return p.cg
}

// Node returns the graph node for f (or its generic origin), nil if f
// never appears in the program.
func (g *CallGraph) Node(f *types.Func) *CallNode {
	if f == nil {
		return nil
	}
	return g.nodes[canonicalFunc(f)]
}

// Decl returns the program-local declaration of f, nil for leaves.
func (g *CallGraph) Decl(f *types.Func) *ast.FuncDecl {
	if n := g.Node(f); n != nil {
		return n.Decl
	}
	return nil
}

// canonicalFunc maps instantiated generic functions back to their
// declared origin so edges and facts agree on one object per function.
func canonicalFunc(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

func (g *CallGraph) node(f *types.Func) *CallNode {
	f = canonicalFunc(f)
	n, ok := g.nodes[f]
	if !ok {
		n = &CallNode{Func: f}
		g.nodes[f] = n
	}
	return n
}

func (g *CallGraph) edge(caller *CallNode, callee *types.Func, site *ast.CallExpr, dynamic bool) {
	to := g.node(callee)
	e := &CallEdge{Caller: caller, Callee: to, Site: site, Dynamic: dynamic}
	caller.Out = append(caller.Out, e)
	to.In = append(to.In, e)
}

func buildCallGraph(p *Program) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*CallNode{}}
	// Pass 1: a node per declared function, so CHA method lookup and
	// taint seeding see every candidate even before any edge exists.
	for _, pkg := range p.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.node(fn)
				n.Decl, n.Pkg = fd, pkg
			}
		}
	}
	concrete := collectConcreteTypes(p)
	// Pass 2: edges out of every declared body. Closure bodies are
	// attributed to the enclosing declaration (see package comment).
	for _, pkg := range p.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := g.node(fn)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						g.resolveCall(pkg, caller, call, concrete)
					}
					return true
				})
			}
		}
	}
	return g
}

// resolveCall adds edges for one call expression: direct calls and
// package-qualified calls resolve statically; interface method calls
// expand to every loaded implementation (CHA). Calls through function
// values, builtins, and type conversions add no edges.
func (g *CallGraph) resolveCall(pkg *Package, caller *CallNode, call *ast.CallExpr, concrete []types.Type) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			g.edge(caller, fn, call, false)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return // field of function type: a dynamic call
			}
			if types.IsInterface(sel.Recv()) {
				g.expandInterfaceCall(caller, sel.Recv(), fn, call, concrete)
			} else {
				g.edge(caller, fn, call, false)
			}
			return
		}
		// No selection: pkg-qualified call like time.Now().
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			g.edge(caller, fn, call, false)
		}
	}
}

// expandInterfaceCall adds one dynamic edge per concrete loaded type
// that implements the receiver interface, targeting that type's own
// method.
func (g *CallGraph) expandInterfaceCall(caller *CallNode, recv types.Type, m *types.Func, call *ast.CallExpr, concrete []types.Type) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, t := range concrete {
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, m.Pkg(), m.Name())
		if impl, ok := obj.(*types.Func); ok {
			g.edge(caller, impl, call, true)
		}
	}
}

// collectConcreteTypes gathers every non-interface named type declared
// in the program, in a deterministic order, as the class hierarchy CHA
// dispatches over.
func collectConcreteTypes(p *Program) []types.Type {
	var out []types.Type
	var names []string
	for _, pkg := range p.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, obj := range pkg.Info.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() || tn.Pkg() == nil {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			out = append(out, named)
			// Position breaks ties between same-named local types.
			names = append(names, fmt.Sprintf("%s.%s.%d", tn.Pkg().Path(), tn.Name(), tn.Pos()))
		}
	}
	sort.Sort(&typesByName{out, names})
	return out
}

type typesByName struct {
	ts    []types.Type
	names []string
}

func (s *typesByName) Len() int           { return len(s.ts) }
func (s *typesByName) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *typesByName) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.names[i], s.names[j] = s.names[j], s.names[i]
}

// sortedNodes returns the graph's nodes ordered by full name then
// position, so every whole-program iteration is deterministic.
func (g *CallGraph) sortedNodes() []*CallNode {
	nodes := make([]*CallNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		ni, nj := nodes[i].Func.FullName(), nodes[j].Func.FullName()
		if ni != nj {
			return ni < nj
		}
		return nodes[i].Func.Pos() < nodes[j].Func.Pos()
	})
	return nodes
}

// A Taint is the result of one backward reachability propagation: the
// set of functions from which some source function is reachable
// through call edges, with a witness path per tainted function.
type Taint struct {
	// next maps each tainted function to its successor on a shortest
	// witness path toward a source (nil successor = is a source).
	next map[*types.Func]*types.Func
}

// Taint propagates "can reach a source" backward over the call graph:
// a function is tainted if isSource reports it, or if any of its
// callees is tainted. The BFS order is deterministic, so witness paths
// are stable run to run.
func (g *CallGraph) Taint(isSource func(*types.Func) bool) *Taint {
	t := &Taint{next: map[*types.Func]*types.Func{}}
	var queue []*CallNode
	for _, n := range g.sortedNodes() {
		if isSource(n.Func) {
			t.next[n.Func] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.In {
			caller := e.Caller
			if _, seen := t.next[caller.Func]; seen {
				continue
			}
			t.next[caller.Func] = n.Func
			queue = append(queue, caller)
		}
	}
	return t
}

// Tainted reports whether f can reach a source.
func (t *Taint) Tainted(f *types.Func) bool {
	_, ok := t.next[canonicalFunc(f)]
	return ok
}

// Path returns a witness call chain from f to a source, inclusive:
// [f, ..., source]. Nil if f is not tainted.
func (t *Taint) Path(f *types.Func) []*types.Func {
	f = canonicalFunc(f)
	if _, ok := t.next[f]; !ok {
		return nil
	}
	var path []*types.Func
	for f != nil {
		path = append(path, f)
		f = t.next[f]
	}
	return path
}
