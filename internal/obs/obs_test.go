package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Requests.", "code", "200").Add(3)
	reg.Counter("requests_total", "Requests.", "code", "404").Inc()
	g := reg.Gauge("inflight", "In-flight builds.")
	g.Inc()
	g.Inc()
	g.Dec()

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{code="200"} 3`,
		`requests_total{code="404"} 1`,
		"# TYPE inflight gauge",
		"inflight 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with two label sets.
	if strings.Count(out, "# TYPE requests_total") != 1 {
		t.Errorf("TYPE line repeated:\n%s", out)
	}
}

func TestCounterIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counter identity broken")
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("build_seconds", "Build durations.")
	for _, v := range []float64{0.0001, 0.3, 0.3, 7, 1e6} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`build_seconds_bucket{le="0.001"} 1`,
		`build_seconds_bucket{le="0.5"} 3`,
		`build_seconds_bucket{le="10"} 4`,
		`build_seconds_bucket{le="+Inf"} 5`,
		"build_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(j) / 100)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestInstrument(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/thing/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	h := Instrument(reg, nil, mux)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/thing/42", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status %d", rec.Code)
	}

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	// Metrics are keyed by the route pattern, not the concrete path, so
	// cardinality stays bounded.
	if !strings.Contains(out, `http_requests_total{route="GET /api/thing/{id}",code="418"} 1`) {
		t.Errorf("missing pattern-labeled counter:\n%s", out)
	}
	if strings.Contains(out, "/api/thing/42") {
		t.Errorf("raw path leaked into metric labels:\n%s", out)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}
