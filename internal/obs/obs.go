// Package obs is a small, dependency-free metrics library for the
// serving layer: counters, gauges and duration histograms registered in
// a Registry and exposed in the Prometheus text format. It exists so
// the analysis service can report request rates, latencies, cache
// behavior and build concurrency without pulling an external client
// library into the reproduction.
package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets, plus a
// running sum and count, matching the Prometheus histogram exposition.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending
	counts []int64   // non-cumulative per-bucket counts; len(bounds)+1 with +Inf last
	sum    float64
	n      int64
}

// DefBuckets covers milliseconds to minutes, suitable for both request
// latencies and suite build durations (seconds).
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// ObserveSince records the duration since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// metricKind tags the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered family member: a name, optional label
// pairs, and the backing collector.
type metric struct {
	family string
	help   string
	kind   metricKind
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds registered metrics and renders them. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

// renderLabels formats label key/value pairs deterministically. pairs
// alternates key, value; values are escaped per the text format.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: odd label pair count")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(pairs[i+1])
		fmt.Fprintf(&b, `%s="%s"`, pairs[i], v)
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the metric for family+labels, creating it on first
// use. Kind mismatches on the same family panic: that is a programming
// error, not a runtime condition.
func (r *Registry) register(family, help string, kind metricKind, labelPairs []string) *metric {
	labels := renderLabels(labelPairs)
	key := family + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind", key))
		}
		return m
	}
	m := &metric{family: family, help: help, kind: kind, labels: labels}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: append([]float64(nil), DefBuckets...)}
		h.counts = make([]int64, len(h.bounds)+1)
		m.h = h
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter returns the counter with the given family name and label
// pairs (key, value, key, value, ...), creating it on first use.
func (r *Registry) Counter(family, help string, labelPairs ...string) *Counter {
	return r.register(family, help, kindCounter, labelPairs).c
}

// Gauge returns the gauge with the given family name and label pairs.
func (r *Registry) Gauge(family, help string, labelPairs ...string) *Gauge {
	return r.register(family, help, kindGauge, labelPairs).g
}

// Histogram returns the histogram with the given family name and label
// pairs.
func (r *Registry) Histogram(family, help string, labelPairs ...string) *Histogram {
	return r.register(family, help, kindHistogram, labelPairs).h
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, grouping families and emitting HELP/TYPE headers
// once per family.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	// Stable output: sort by family then label set, preserving HELP/TYPE
	// grouping.
	sort.SliceStable(metrics, func(i, j int) bool {
		if metrics[i].family != metrics[j].family {
			return metrics[i].family < metrics[j].family
		}
		return metrics[i].labels < metrics[j].labels
	})
	lastFamily := ""
	for _, m := range metrics {
		if m.family != lastFamily {
			lastFamily = m.family
			kind := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[m.kind]
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.family, kind)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", m.family, m.labels, m.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %d\n", m.family, m.labels, m.g.Value())
		case kindHistogram:
			m.h.mu.Lock()
			cum := int64(0)
			for i, b := range m.h.bounds {
				cum += m.h.counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.family, mergeLabels(m.labels, fmt.Sprintf(`le="%g"`, b)), cum)
			}
			cum += m.h.counts[len(m.h.bounds)]
			fmt.Fprintf(w, "%s_bucket%s %d\n", m.family, mergeLabels(m.labels, `le="+Inf"`), cum)
			fmt.Fprintf(w, "%s_sum%s %g\n", m.family, m.labels, m.h.sum)
			fmt.Fprintf(w, "%s_count%s %d\n", m.family, m.labels, m.h.n)
			m.h.mu.Unlock()
		}
	}
}

// mergeLabels appends extra (a raw k="v" fragment) to an existing
// rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Handler serves the registry as a text/plain metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteText(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
}
