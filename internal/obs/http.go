package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response code and size for logging and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument wraps an http.Handler with structured access logging and
// per-route request metrics: http_requests_total{route,code} counters
// and an http_request_duration_seconds{route} histogram. route is
// derived from the matched pattern when the inner handler is a
// ServeMux-routed handler, falling back to the raw path; logger may be
// nil to disable access logs.
func Instrument(reg *Registry, logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		elapsed := time.Since(start)
		reg.Counter("http_requests_total", "HTTP requests by route and status code.",
			"route", route, "code", strconv.Itoa(sw.status)).Inc()
		reg.Histogram("http_request_duration_seconds", "HTTP request latency.",
			"route", route).Observe(elapsed.Seconds())
		if logger != nil {
			logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"query", r.URL.RawQuery,
				"status", sw.status,
				"bytes", sw.bytes,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}
	})
}
