package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"pathsel/internal/dataset"
	"pathsel/internal/stats"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/topology"
)

// PairResult compares one default path with its best synthetic alternate.
type PairResult struct {
	Key dataset.PairKey
	// Default and Alternate are the metric summaries (mean in natural
	// units, with variance information for confidence intervals).
	Default, Alternate stats.Summary
	// DefaultValue and AltValue are the metric values in natural units.
	DefaultValue, AltValue float64
	// Via lists the intermediate hosts of the best alternate, in order.
	Via []topology.HostID
}

// Improvement is default minus alternate: positive when the alternate
// path is superior for cost metrics (RTT, loss, propagation delay).
func (r PairResult) Improvement() float64 { return r.DefaultValue - r.AltValue }

// Ratio is default over alternate: above 1 when the alternate is
// superior (the paper's Figure 2).
func (r PairResult) Ratio() float64 {
	//repolint:allow floateq -- exact-zero guard before division; any nonzero value divides fine
	if r.AltValue == 0 {
		return math.Inf(1)
	}
	return r.DefaultValue / r.AltValue
}

// Analyzer runs the paper's comparisons over one dataset.
type Analyzer struct {
	ds *dataset.Dataset

	// Concurrency caps the worker goroutines the engine shards pair and
	// candidate searches across: 0 (the default) means one worker per
	// available CPU, 1 forces the sequential engine, and any other
	// positive value is used as-is. Results are bit-identical for every
	// setting; the knob only trades wall-clock time for cores.
	Concurrency int

	// ctx, when set via WithContext, bounds every analysis entry point:
	// the engine stops handing out work and returns ctx.Err() as soon as
	// the context is cancelled. A nil ctx means never cancelled.
	ctx context.Context

	// graphMu guards the per-metric graph cache. Building a graph
	// touches every pair's sample set, so analyses that revisit a
	// metric (figure drivers, the greedy-removal loop, benchmarks)
	// reuse the build; the cache is dropped when the dataset's
	// revision or pair count changes.
	graphMu   sync.Mutex
	graphs    map[Metric]*graph
	graphsRev int64
	graphsLen int
}

// graphFor returns the measurement graph for a metric, building and
// caching it on first use.
func (a *Analyzer) graphFor(metric Metric) (*graph, error) {
	a.graphMu.Lock()
	defer a.graphMu.Unlock()
	if rev, n := a.ds.Revision(), len(a.ds.Paths); a.graphs == nil || rev != a.graphsRev || n != a.graphsLen {
		a.graphs = map[Metric]*graph{}
		a.graphsRev, a.graphsLen = rev, n
	}
	if g, ok := a.graphs[metric]; ok {
		return g, nil
	}
	g, err := buildGraph(a.ds, metric)
	if err != nil {
		return nil, err
	}
	a.graphs[metric] = g
	return g, nil
}

// NewAnalyzer wraps a dataset.
func NewAnalyzer(ds *dataset.Dataset) *Analyzer { return &Analyzer{ds: ds} }

// WithConcurrency sets the Concurrency knob and returns the analyzer,
// for chaining at construction sites.
func (a *Analyzer) WithConcurrency(n int) *Analyzer {
	a.Concurrency = n
	return a
}

// WithContext binds the analyzer's entry points to ctx and returns the
// analyzer, for chaining: a long-running analysis (BestAlternates,
// AnalyzeEpisodes, GreedyRemoveTop, the bandwidth searches) aborts with
// ctx.Err() when ctx is cancelled, e.g. because an HTTP client
// disconnected or a per-request deadline fired.
func (a *Analyzer) WithContext(ctx context.Context) *Analyzer {
	a.ctx = ctx
	return a
}

// context resolves the bound context (nil means never cancelled).
func (a *Analyzer) context() context.Context {
	if a.ctx != nil {
		return a.ctx
	}
	//repolint:allow ctxflow -- documented fallback: an unbound Analyzer is never cancelled
	return context.Background()
}

// workers resolves the Concurrency knob to a worker count.
func (a *Analyzer) workers() int { return autoWorkers(a.Concurrency) }

// Dataset returns the underlying dataset.
func (a *Analyzer) Dataset() *dataset.Dataset { return a.ds }

// BestAlternates compares every measured default path against its best
// synthetic alternate for the given metric. maxVia limits alternate
// length in intermediate hosts (0 = unlimited). Pairs without a measured
// default path or without any alternate are skipped. Results are in
// deterministic (PairKeys) order regardless of Concurrency.
//
// Deprecated: use Query with a QuerySpec{Metric, MaxVia} and
// ResultSet.PairResults, which this adapter wraps byte-identically.
func (a *Analyzer) BestAlternates(metric Metric, maxVia int) ([]PairResult, error) {
	rs, err := a.Query(QuerySpec{Metric: metric, MaxVia: maxVia})
	if err != nil {
		return nil, err
	}
	return rs.PairResults(), nil
}

// bestAlternatesOn runs the comparison on a prebuilt graph, optionally
// excluding hosts (used by the greedy-removal analysis), with the
// analyzer's configured concurrency.
func (a *Analyzer) bestAlternatesOn(g *graph, metric Metric, maxVia int, excluded []bool) ([]PairResult, error) {
	return a.bestAlternatesWith(g, metric, maxVia, excluded, a.workers())
}

// workerArenas hands each worker of a batched analysis a persistent
// pair of search scratches — one for source trees, one for per-pair
// fallback searches — borrowed once from the graph's pool for the whole
// shard instead of bouncing through the pool per pair.
type workerArenas struct {
	g      *graph
	arenas []struct{ tree, pair *searchScratch }
}

func newWorkerArenas(g *graph, workers int) *workerArenas {
	return &workerArenas{g: g, arenas: make([]struct{ tree, pair *searchScratch }, workers)}
}

func (wa *workerArenas) tree(w int) *searchScratch {
	if wa.arenas[w].tree == nil {
		wa.arenas[w].tree = wa.g.scratch.Get().(*searchScratch)
	}
	return wa.arenas[w].tree
}

func (wa *workerArenas) pair(w int) *searchScratch {
	if wa.arenas[w].pair == nil {
		wa.arenas[w].pair = wa.g.scratch.Get().(*searchScratch)
	}
	return wa.arenas[w].pair
}

func (wa *workerArenas) release() {
	for _, ar := range wa.arenas {
		if ar.tree != nil {
			wa.g.scratch.Put(ar.tree)
		}
		if ar.pair != nil {
			wa.g.scratch.Put(ar.pair)
		}
	}
}

// bestAlternatesWith is the engine under BestAlternates: pairs are
// prefiltered sequentially, searched across the given number of workers
// with results written into per-pair slots, then compacted in pair-key
// order — so the output is byte-identical for any worker count.
func (a *Analyzer) bestAlternatesWith(g *graph, metric Metric, maxVia int, excluded []bool, workers int) ([]PairResult, error) {
	g.freeze() // staged callers pack here, before the concurrent fan-out
	keys := a.ds.PairKeys()
	type pairJob struct {
		key    dataset.PairKey
		si, di int32
	}
	jobs := make([]pairJob, 0, len(keys))
	for _, k := range keys {
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			continue
		}
		if excluded != nil && (excluded[si] || excluded[di]) {
			continue
		}
		jobs = append(jobs, pairJob{key: k, si: int32(si), di: int32(di)})
	}
	results := make([]PairResult, len(jobs))
	valid := make([]bool, len(jobs))
	fill := func(i int, direct edge, path []int) error {
		j := jobs[i]
		altValue, altSum, err := g.composePath(metric, path)
		if err != nil {
			return err
		}
		res := PairResult{
			Key:          j.key,
			Default:      direct.summary,
			Alternate:    altSum,
			DefaultValue: direct.value,
			AltValue:     altValue,
		}
		for _, v := range path[1 : len(path)-1] {
			res.Via = append(res.Via, g.hosts[v])
		}
		results[i], valid[i] = res, true
		return nil
	}
	var err error
	if maxVia == 0 {
		// Unlimited searches share one shortest-path tree per source:
		// jobs are in PairKeys order, so equal sources are consecutive.
		type span struct{ start, end int }
		var groups []span
		for start := 0; start < len(jobs); {
			end := start + 1
			for end < len(jobs) && jobs[end].si == jobs[start].si {
				end++
			}
			groups = append(groups, span{start, end})
			start = end
		}
		wa := newWorkerArenas(g, workers)
		defer wa.release()
		err = parallelFor(a.context(), workers, len(groups), func(w, gi int) error {
			gr := groups[gi]
			src := int(jobs[gr.start].si)
			s := wa.tree(w)
			g.sourceTree(src, excluded, s)
			for i := gr.start; i < gr.end; i++ {
				di := int(jobs[i].di)
				direct, found := g.directEdge(src, di)
				if !found {
					continue
				}
				var path []int
				if p := s.prev[di]; p != -1 && int(p) != src {
					path, found = pathFromPrev(s.prev, src, di)
				} else if int(p) == src && !s.parent[di] {
					// The direct edge won but dst is a tree leaf: the
					// per-pair search can be replayed from the tree.
					path, found = g.replayLastHop(src, di, s)
				} else {
					// The direct edge won and dst is a tree interior
					// vertex (or dst is unreachable); search with the
					// direct edge excluded, in the worker's second
					// arena (the tree in s stays live for later pairs).
					path, found = g.shortestAlternateInto(wa.pair(w), src, di, 0, excluded)
				}
				if !found {
					continue
				}
				if err := fill(i, direct, path); err != nil {
					return err
				}
			}
			return nil
		})
	} else {
		wa := newWorkerArenas(g, workers)
		defer wa.release()
		err = parallelFor(a.context(), workers, len(jobs), func(w, i int) error {
			j := jobs[i]
			direct, found := g.directEdge(int(j.si), int(j.di))
			if !found {
				return nil
			}
			var path []int
			if maxVia == 1 {
				path, found = g.oneHopAlternate(int(j.si), int(j.di), excluded, wa.pair(w))
			} else {
				path, found = g.shortestAlternateInto(wa.pair(w), int(j.si), int(j.di), maxVia, excluded)
			}
			if !found {
				return nil
			}
			return fill(i, direct, path)
		})
	}
	if err != nil {
		return nil, err
	}
	out := make([]PairResult, 0, len(jobs))
	for i, ok := range valid {
		if ok {
			out = append(out, results[i])
		}
	}
	return out, nil
}

// ImprovementCDF builds the CDF of default-minus-alternate differences
// from pair results (the paper's Figures 1, 3, 15).
func ImprovementCDF(results []PairResult) stats.CDF {
	vals := make([]float64, len(results))
	for i, r := range results {
		vals[i] = r.Improvement()
	}
	return stats.NewCDF(vals)
}

// RatioCDF builds the CDF of default-over-alternate ratios (Figure 2).
func RatioCDF(results []PairResult) stats.CDF {
	var vals []float64
	for _, r := range results {
		if v := r.Ratio(); !math.IsInf(v, 0) && !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	return stats.NewCDF(vals)
}

// BandwidthMode selects how loss rates compose along a synthetic path
// for the bandwidth analysis (Section 5, Figures 4-5).
type BandwidthMode int

const (
	// Optimistic uses the maximum hop loss rate: the sending TCP is
	// assumed responsible for all observed loss, so the worst hop is
	// the bottleneck.
	Optimistic BandwidthMode = iota
	// Pessimistic composes hop losses as independent: none of the
	// observed loss is caused by the sender.
	Pessimistic
)

// String implements fmt.Stringer.
func (m BandwidthMode) String() string {
	switch m {
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// BandwidthResult compares Mathis-model bandwidth of default and best
// one-hop alternate paths.
type BandwidthResult struct {
	Key dataset.PairKey
	// DefaultKBs and AltKBs are modeled throughputs in kB/s.
	DefaultKBs, AltKBs float64
	// Via is the intermediate host of the best alternate.
	Via topology.HostID
}

// Improvement is alternate minus default: positive when the alternate
// offers more bandwidth (Figure 4 plots this difference).
func (r BandwidthResult) Improvement() float64 { return r.AltKBs - r.DefaultKBs }

// Ratio is alternate over default (Figure 5).
func (r BandwidthResult) Ratio() float64 {
	//repolint:allow floateq -- exact-zero guard before division; any nonzero value divides fine
	if r.DefaultKBs == 0 {
		return math.Inf(1)
	}
	return r.AltKBs / r.DefaultKBs
}

// BestBandwidthAlternates runs the N2-style bandwidth comparison: each
// path's RTT and loss come from its TCP transfer measurements, alternate
// paths are one hop ("to be computationally tractable, we only consider
// alternate paths of length one hop"), RTTs add, losses compose per the
// mode, and throughput follows the Mathis model.
//
// Deprecated: use Query with QuerySpec{Bandwidth: &BandwidthQuery{...}}
// and ResultSet.BandwidthResults, which this adapter wraps
// byte-identically.
func (a *Analyzer) BestBandwidthAlternates(model tcpmodel.Model, mode BandwidthMode) ([]BandwidthResult, error) {
	rs, err := a.Query(QuerySpec{Bandwidth: &BandwidthQuery{Model: model, Mode: mode}})
	if err != nil {
		return nil, err
	}
	return rs.BandwidthResults(), nil
}

// MedianResult compares medians (composed by convolution) alongside
// means for the same pair, both restricted to one-hop alternates
// (Section 6.1, Figure 6).
type MedianResult struct {
	Key dataset.PairKey
	// MeanImprovement is default mean minus best-alternate mean.
	MeanImprovement float64
	// MedianImprovement is default median minus best-alternate median,
	// where the alternate's distribution is the convolution of its two
	// hops' sample distributions.
	MedianImprovement float64
}

// BestMedianAlternates runs the mean-versus-median robustness check on
// round-trip time. Both statistics use one-hop alternates "to keep the
// computational costs reasonable"; each statistic selects its own best
// alternate.
func (a *Analyzer) BestMedianAlternates() ([]MedianResult, error) {
	g, err := a.graphFor(MetricRTT)
	if err != nil {
		return nil, err
	}
	// Precompute per-path distributions.
	dists := map[dataset.PairKey]stats.Dist{}
	medians := map[dataset.PairKey]float64{}
	for _, k := range a.ds.PairKeys() {
		d, ok := a.ds.RTTDist(k)
		if !ok {
			continue
		}
		m, err := d.Median()
		if err != nil {
			continue
		}
		dists[k] = d
		medians[k] = m
	}
	keys := a.ds.PairKeys()
	results := make([]MedianResult, len(keys))
	valid := make([]bool, len(keys))
	err = parallelFor(a.context(), a.workers(), len(keys), func(_, i int) error {
		k := keys[i]
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			return nil
		}
		direct, found := g.directEdge(si, di)
		if !found {
			return nil
		}
		directDist, ok := dists[k]
		if !ok {
			return nil
		}
		// Best one-hop alternate by mean.
		meanPath, foundMean := g.shortestAlternate(si, di, 1, nil)
		if !foundMean {
			return nil
		}
		meanVal, _, err := g.composePath(MetricRTT, meanPath)
		if err != nil {
			return err
		}
		// Best one-hop alternate by median: enumerate intermediates and
		// convolve.
		bestMedian := math.Inf(1)
		foundMedian := false
		for _, via := range a.ds.Hosts {
			if via == k.Src || via == k.Dst {
				continue
			}
			d1, ok1 := dists[dataset.PairKey{Src: k.Src, Dst: via}]
			d2, ok2 := dists[dataset.PairKey{Src: via, Dst: k.Dst}]
			if !ok1 || !ok2 {
				continue
			}
			conv, err := d1.Convolve(d2)
			if err != nil {
				continue
			}
			m, err := conv.Median()
			if err != nil {
				continue
			}
			if m < bestMedian {
				bestMedian = m
				foundMedian = true
			}
		}
		if !foundMedian {
			return nil
		}
		directMedian, err := directDist.Median()
		if err != nil {
			return nil
		}
		results[i] = MedianResult{
			Key:               k,
			MeanImprovement:   direct.value - meanVal,
			MedianImprovement: directMedian - bestMedian,
		}
		valid[i] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]MedianResult, 0, len(keys))
	for i, ok := range valid {
		if ok {
			out = append(out, results[i])
		}
	}
	return out, nil
}

// EpisodeAnalysis is the UW4-A simultaneous-measurement comparison
// (Section 6.4, Figure 11).
type EpisodeAnalysis struct {
	// PairAveraged has, per pair, the mean across episodes of
	// (default - best alternate) within each episode.
	PairAveraged []float64
	// Unaveraged has one entry per (pair, episode).
	Unaveraged []float64
	// RelayChurn is, per pair with at least two episode observations,
	// the fraction of consecutive episodes whose best alternate used a
	// different first relay — quantifying the paper's observation that
	// "not only are different alternate paths being selected as best in
	// each episode, the difference ... is highly variable".
	RelayChurn []float64
}

// AnalyzeEpisodes computes, within each episode, the best alternate path
// using only that episode's simultaneous measurements, and aggregates the
// per-episode differences both pair-averaged and raw. Episodes are
// independent, so they are analyzed concurrently; processing streams
// through fixed-size chunks whose outputs merge in episode order, so the
// aggregation is identical to the sequential one while peak memory stays
// bounded by the chunk, the per-worker graphs, and the running
// aggregates — not by the episode count.
func (a *Analyzer) AnalyzeEpisodes() (EpisodeAnalysis, error) {
	if len(a.ds.Episodes) == 0 {
		return EpisodeAnalysis{}, fmt.Errorf("core: dataset %q has no episodes", a.ds.Name)
	}
	index := map[topology.HostID]int{}
	var hosts []topology.HostID
	for _, h := range a.ds.Hosts {
		index[h] = len(hosts)
		hosts = append(hosts, h)
	}
	workers := a.workers()
	// Per-episode outputs, aligned: keys[i], diffs[i], relays[i]. The
	// chunk's slots (and their slices) are reused across chunks.
	type episodeOut struct {
		keys   []dataset.PairKey
		diffs  []float64
		relays []topology.HostID
	}
	chunk := workers * 4
	if chunk < 16 {
		chunk = 16
	}
	if chunk > len(a.ds.Episodes) {
		chunk = len(a.ds.Episodes)
	}
	outs := make([]episodeOut, chunk)
	// One graph per worker, rebuilt in place per episode: the CSR and
	// staging slabs are retained across resets, so steady-state episode
	// processing allocates almost nothing.
	graphs := make([]*graph, workers)
	// Running aggregates, merged chunk by chunk in episode order:
	// identical accumulation order to a sequential pass, so the result
	// is independent of worker count and chunking.
	perPair := map[dataset.PairKey]*stats.Accum{}
	relaySeq := map[dataset.PairKey][]topology.HostID{}
	var unaveraged []float64
	for base := 0; base < len(a.ds.Episodes); base += chunk {
		nb := len(a.ds.Episodes) - base
		if nb > chunk {
			nb = chunk
		}
		err := parallelFor(a.context(), workers, nb, func(w, i int) error {
			ep := a.ds.Episodes[base+i]
			g := graphs[w]
			if g == nil {
				g = newGraph(hosts, index)
				graphs[w] = g
			} else {
				g.reset()
			}
			// Deterministic edge insertion order.
			keys := make([]dataset.PairKey, 0, len(ep.RTTMs))
			for k := range ep.RTTMs {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].Src != keys[j].Src {
					return keys[i].Src < keys[j].Src
				}
				return keys[i].Dst < keys[j].Dst
			})
			for _, k := range keys {
				v := ep.RTTMs[k]
				si, di := index[k.Src], index[k.Dst]
				g.addEdge(si, edge{to: di, weight: v, value: v})
			}
			g.freeze()
			out := &outs[i]
			out.keys = out.keys[:0]
			out.diffs = out.diffs[:0]
			out.relays = out.relays[:0]
			for _, k := range keys {
				si, di := index[k.Src], index[k.Dst]
				path, found := g.shortestAlternate(si, di, 0, nil)
				if !found {
					continue
				}
				altVal, _, err := g.composePath(MetricRTT, path)
				if err != nil {
					return err
				}
				out.keys = append(out.keys, k)
				out.diffs = append(out.diffs, ep.RTTMs[k]-altVal)
				out.relays = append(out.relays, hosts[path[1]])
			}
			return nil
		})
		if err != nil {
			return EpisodeAnalysis{}, err
		}
		for oi := range outs[:nb] {
			out := &outs[oi]
			for i, k := range out.keys {
				unaveraged = append(unaveraged, out.diffs[i])
				acc, ok := perPair[k]
				if !ok {
					acc = &stats.Accum{}
					perPair[k] = acc
				}
				acc.Add(out.diffs[i])
				relaySeq[k] = append(relaySeq[k], out.relays[i])
			}
		}
	}
	var pairAveraged []float64
	pairKeys := make([]dataset.PairKey, 0, len(perPair))
	for k := range perPair {
		pairKeys = append(pairKeys, k)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i].Src != pairKeys[j].Src {
			return pairKeys[i].Src < pairKeys[j].Src
		}
		return pairKeys[i].Dst < pairKeys[j].Dst
	})
	var churn []float64
	for _, k := range pairKeys {
		pairAveraged = append(pairAveraged, perPair[k].Mean())
		seq := relaySeq[k]
		if len(seq) < 2 {
			continue
		}
		changes := 0
		for i := 1; i < len(seq); i++ {
			if seq[i] != seq[i-1] {
				changes++
			}
		}
		churn = append(churn, float64(changes)/float64(len(seq)-1))
	}
	return EpisodeAnalysis{PairAveraged: pairAveraged, Unaveraged: unaveraged, RelayChurn: churn}, nil
}
