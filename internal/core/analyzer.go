package core

import (
	"fmt"
	"math"
	"sort"

	"pathsel/internal/dataset"
	"pathsel/internal/stats"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/topology"
)

// PairResult compares one default path with its best synthetic alternate.
type PairResult struct {
	Key dataset.PairKey
	// Default and Alternate are the metric summaries (mean in natural
	// units, with variance information for confidence intervals).
	Default, Alternate stats.Summary
	// DefaultValue and AltValue are the metric values in natural units.
	DefaultValue, AltValue float64
	// Via lists the intermediate hosts of the best alternate, in order.
	Via []topology.HostID
}

// Improvement is default minus alternate: positive when the alternate
// path is superior for cost metrics (RTT, loss, propagation delay).
func (r PairResult) Improvement() float64 { return r.DefaultValue - r.AltValue }

// Ratio is default over alternate: above 1 when the alternate is
// superior (the paper's Figure 2).
func (r PairResult) Ratio() float64 {
	if r.AltValue == 0 {
		return math.Inf(1)
	}
	return r.DefaultValue / r.AltValue
}

// Analyzer runs the paper's comparisons over one dataset.
type Analyzer struct {
	ds *dataset.Dataset
}

// NewAnalyzer wraps a dataset.
func NewAnalyzer(ds *dataset.Dataset) *Analyzer { return &Analyzer{ds: ds} }

// Dataset returns the underlying dataset.
func (a *Analyzer) Dataset() *dataset.Dataset { return a.ds }

// BestAlternates compares every measured default path against its best
// synthetic alternate for the given metric. maxVia limits alternate
// length in intermediate hosts (0 = unlimited). Pairs without a measured
// default path or without any alternate are skipped. Results are in
// deterministic (PairKeys) order.
func (a *Analyzer) BestAlternates(metric Metric, maxVia int) ([]PairResult, error) {
	g, err := buildGraph(a.ds, metric)
	if err != nil {
		return nil, err
	}
	return a.bestAlternatesOn(g, metric, maxVia, nil)
}

// bestAlternatesOn runs the comparison on a prebuilt graph, optionally
// excluding hosts (used by the greedy-removal analysis).
func (a *Analyzer) bestAlternatesOn(g *graph, metric Metric, maxVia int, excluded []bool) ([]PairResult, error) {
	var out []PairResult
	for _, k := range a.ds.PairKeys() {
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			continue
		}
		if excluded != nil && (excluded[si] || excluded[di]) {
			continue
		}
		direct, found := g.directEdge(si, di)
		if !found {
			continue
		}
		path, found := g.shortestAlternate(si, di, maxVia, excluded)
		if !found {
			continue
		}
		altValue, altSum, err := g.composePath(metric, path)
		if err != nil {
			return nil, err
		}
		res := PairResult{
			Key:          k,
			Default:      direct.summary,
			Alternate:    altSum,
			DefaultValue: direct.value,
			AltValue:     altValue,
		}
		for _, v := range path[1 : len(path)-1] {
			res.Via = append(res.Via, g.hosts[v])
		}
		out = append(out, res)
	}
	return out, nil
}

// ImprovementCDF builds the CDF of default-minus-alternate differences
// from pair results (the paper's Figures 1, 3, 15).
func ImprovementCDF(results []PairResult) stats.CDF {
	vals := make([]float64, len(results))
	for i, r := range results {
		vals[i] = r.Improvement()
	}
	return stats.NewCDF(vals)
}

// RatioCDF builds the CDF of default-over-alternate ratios (Figure 2).
func RatioCDF(results []PairResult) stats.CDF {
	var vals []float64
	for _, r := range results {
		if v := r.Ratio(); !math.IsInf(v, 0) && !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	return stats.NewCDF(vals)
}

// BandwidthMode selects how loss rates compose along a synthetic path
// for the bandwidth analysis (Section 5, Figures 4-5).
type BandwidthMode int

const (
	// Optimistic uses the maximum hop loss rate: the sending TCP is
	// assumed responsible for all observed loss, so the worst hop is
	// the bottleneck.
	Optimistic BandwidthMode = iota
	// Pessimistic composes hop losses as independent: none of the
	// observed loss is caused by the sender.
	Pessimistic
)

// String implements fmt.Stringer.
func (m BandwidthMode) String() string {
	switch m {
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// BandwidthResult compares Mathis-model bandwidth of default and best
// one-hop alternate paths.
type BandwidthResult struct {
	Key dataset.PairKey
	// DefaultKBs and AltKBs are modeled throughputs in kB/s.
	DefaultKBs, AltKBs float64
	// Via is the intermediate host of the best alternate.
	Via topology.HostID
}

// Improvement is alternate minus default: positive when the alternate
// offers more bandwidth (Figure 4 plots this difference).
func (r BandwidthResult) Improvement() float64 { return r.AltKBs - r.DefaultKBs }

// Ratio is alternate over default (Figure 5).
func (r BandwidthResult) Ratio() float64 {
	if r.DefaultKBs == 0 {
		return math.Inf(1)
	}
	return r.AltKBs / r.DefaultKBs
}

// BestBandwidthAlternates runs the N2-style bandwidth comparison: each
// path's RTT and loss come from its TCP transfer measurements, alternate
// paths are one hop ("to be computationally tractable, we only consider
// alternate paths of length one hop"), RTTs add, losses compose per the
// mode, and throughput follows the Mathis model.
func (a *Analyzer) BestBandwidthAlternates(model tcpmodel.Model, mode BandwidthMode) ([]BandwidthResult, error) {
	type pathStat struct{ rtt, loss float64 }
	st := map[dataset.PairKey]pathStat{}
	for _, k := range a.ds.PairKeys() {
		rtt, loss, ok := a.ds.TransferMeans(k)
		if !ok {
			continue
		}
		st[k] = pathStat{rtt: rtt.Mean, loss: loss.Mean}
	}
	var out []BandwidthResult
	for _, k := range a.ds.PairKeys() {
		direct, ok := st[k]
		if !ok {
			continue
		}
		defBW, err := model.BandwidthKBs(direct.rtt, direct.loss)
		if err != nil {
			return nil, fmt.Errorf("core: default bandwidth for %v: %w", k, err)
		}
		bestBW := math.Inf(-1)
		bestVia := topology.HostID(-1)
		for _, via := range a.ds.Hosts {
			if via == k.Src || via == k.Dst {
				continue
			}
			s1, ok1 := st[dataset.PairKey{Src: k.Src, Dst: via}]
			s2, ok2 := st[dataset.PairKey{Src: via, Dst: k.Dst}]
			if !ok1 || !ok2 {
				continue
			}
			rtt := s1.rtt + s2.rtt
			var loss float64
			switch mode {
			case Optimistic:
				loss = math.Max(s1.loss, s2.loss)
			case Pessimistic:
				loss = 1 - (1-s1.loss)*(1-s2.loss)
			default:
				return nil, fmt.Errorf("core: unknown bandwidth mode %v", mode)
			}
			bw, err := model.BandwidthKBs(rtt, loss)
			if err != nil {
				return nil, fmt.Errorf("core: alternate bandwidth for %v via %d: %w", k, via, err)
			}
			if bw > bestBW {
				bestBW, bestVia = bw, via
			}
		}
		if bestVia == -1 {
			continue
		}
		out = append(out, BandwidthResult{Key: k, DefaultKBs: defBW, AltKBs: bestBW, Via: bestVia})
	}
	return out, nil
}

// MedianResult compares medians (composed by convolution) alongside
// means for the same pair, both restricted to one-hop alternates
// (Section 6.1, Figure 6).
type MedianResult struct {
	Key dataset.PairKey
	// MeanImprovement is default mean minus best-alternate mean.
	MeanImprovement float64
	// MedianImprovement is default median minus best-alternate median,
	// where the alternate's distribution is the convolution of its two
	// hops' sample distributions.
	MedianImprovement float64
}

// BestMedianAlternates runs the mean-versus-median robustness check on
// round-trip time. Both statistics use one-hop alternates "to keep the
// computational costs reasonable"; each statistic selects its own best
// alternate.
func (a *Analyzer) BestMedianAlternates() ([]MedianResult, error) {
	g, err := buildGraph(a.ds, MetricRTT)
	if err != nil {
		return nil, err
	}
	// Precompute per-path distributions.
	dists := map[dataset.PairKey]stats.Dist{}
	medians := map[dataset.PairKey]float64{}
	for _, k := range a.ds.PairKeys() {
		d, ok := a.ds.RTTDist(k)
		if !ok {
			continue
		}
		m, err := d.Median()
		if err != nil {
			continue
		}
		dists[k] = d
		medians[k] = m
	}
	var out []MedianResult
	for _, k := range a.ds.PairKeys() {
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			continue
		}
		direct, found := g.directEdge(si, di)
		if !found {
			continue
		}
		directDist, ok := dists[k]
		if !ok {
			continue
		}
		// Best one-hop alternate by mean.
		meanPath, foundMean := g.shortestAlternate(si, di, 1, nil)
		if !foundMean {
			continue
		}
		meanVal, _, err := g.composePath(MetricRTT, meanPath)
		if err != nil {
			return nil, err
		}
		// Best one-hop alternate by median: enumerate intermediates and
		// convolve.
		bestMedian := math.Inf(1)
		foundMedian := false
		for _, via := range a.ds.Hosts {
			if via == k.Src || via == k.Dst {
				continue
			}
			d1, ok1 := dists[dataset.PairKey{Src: k.Src, Dst: via}]
			d2, ok2 := dists[dataset.PairKey{Src: via, Dst: k.Dst}]
			if !ok1 || !ok2 {
				continue
			}
			conv, err := d1.Convolve(d2)
			if err != nil {
				continue
			}
			m, err := conv.Median()
			if err != nil {
				continue
			}
			if m < bestMedian {
				bestMedian = m
				foundMedian = true
			}
		}
		if !foundMedian {
			continue
		}
		directMedian, err := directDist.Median()
		if err != nil {
			continue
		}
		out = append(out, MedianResult{
			Key:               k,
			MeanImprovement:   direct.value - meanVal,
			MedianImprovement: directMedian - bestMedian,
		})
	}
	return out, nil
}

// EpisodeAnalysis is the UW4-A simultaneous-measurement comparison
// (Section 6.4, Figure 11).
type EpisodeAnalysis struct {
	// PairAveraged has, per pair, the mean across episodes of
	// (default - best alternate) within each episode.
	PairAveraged []float64
	// Unaveraged has one entry per (pair, episode).
	Unaveraged []float64
	// RelayChurn is, per pair with at least two episode observations,
	// the fraction of consecutive episodes whose best alternate used a
	// different first relay — quantifying the paper's observation that
	// "not only are different alternate paths being selected as best in
	// each episode, the difference ... is highly variable".
	RelayChurn []float64
}

// AnalyzeEpisodes computes, within each episode, the best alternate path
// using only that episode's simultaneous measurements, and aggregates the
// per-episode differences both pair-averaged and raw.
func (a *Analyzer) AnalyzeEpisodes() (EpisodeAnalysis, error) {
	if len(a.ds.Episodes) == 0 {
		return EpisodeAnalysis{}, fmt.Errorf("core: dataset %q has no episodes", a.ds.Name)
	}
	index := map[topology.HostID]int{}
	var hosts []topology.HostID
	for _, h := range a.ds.Hosts {
		index[h] = len(hosts)
		hosts = append(hosts, h)
	}
	perPair := map[dataset.PairKey]*stats.Accum{}
	relaySeq := map[dataset.PairKey][]topology.HostID{}
	var unaveraged []float64
	for _, ep := range a.ds.Episodes {
		g := &graph{hosts: hosts, index: index, adj: make([][]edge, len(hosts))}
		// Deterministic edge insertion order.
		keys := make([]dataset.PairKey, 0, len(ep.RTTMs))
		for k := range ep.RTTMs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Src != keys[j].Src {
				return keys[i].Src < keys[j].Src
			}
			return keys[i].Dst < keys[j].Dst
		})
		for _, k := range keys {
			v := ep.RTTMs[k]
			si, di := index[k.Src], index[k.Dst]
			g.adj[si] = append(g.adj[si], edge{to: di, weight: v, value: v})
		}
		for _, k := range keys {
			si, di := index[k.Src], index[k.Dst]
			path, found := g.shortestAlternate(si, di, 0, nil)
			if !found {
				continue
			}
			altVal, _, err := g.composePath(MetricRTT, path)
			if err != nil {
				return EpisodeAnalysis{}, err
			}
			diff := ep.RTTMs[k] - altVal
			unaveraged = append(unaveraged, diff)
			acc, ok := perPair[k]
			if !ok {
				acc = &stats.Accum{}
				perPair[k] = acc
			}
			acc.Add(diff)
			relaySeq[k] = append(relaySeq[k], hosts[path[1]])
		}
	}
	var pairAveraged []float64
	pairKeys := make([]dataset.PairKey, 0, len(perPair))
	for k := range perPair {
		pairKeys = append(pairKeys, k)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i].Src != pairKeys[j].Src {
			return pairKeys[i].Src < pairKeys[j].Src
		}
		return pairKeys[i].Dst < pairKeys[j].Dst
	})
	var churn []float64
	for _, k := range pairKeys {
		pairAveraged = append(pairAveraged, perPair[k].Mean())
		seq := relaySeq[k]
		if len(seq) < 2 {
			continue
		}
		changes := 0
		for i := 1; i < len(seq); i++ {
			if seq[i] != seq[i-1] {
				changes++
			}
		}
		churn = append(churn, float64(changes)/float64(len(seq)-1))
	}
	return EpisodeAnalysis{PairAveraged: pairAveraged, Unaveraged: unaveraged, RelayChurn: churn}, nil
}
