package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/pathset"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/topology"
)

// legacyBestAlternates is the pre-Query BestAlternates, preserved here
// verbatim as the oracle for the byte-identity property: Query with
// K=1 must reproduce its output exactly.
func legacyBestAlternates(a *Analyzer, metric Metric, maxVia int) ([]PairResult, error) {
	g, err := a.graphFor(metric)
	if err != nil {
		return nil, err
	}
	return a.bestAlternatesOn(g, metric, maxVia, nil)
}

// legacyBestBandwidthAlternates is the pre-Query bandwidth comparison,
// preserved verbatim as the oracle for the bandwidth branch.
func legacyBestBandwidthAlternates(a *Analyzer, model tcpmodel.Model, mode BandwidthMode) ([]BandwidthResult, error) {
	type pathStat struct{ rtt, loss float64 }
	st := map[dataset.PairKey]pathStat{}
	for _, k := range a.ds.PairKeys() {
		rtt, loss, ok := a.ds.TransferMeans(k)
		if !ok {
			continue
		}
		st[k] = pathStat{rtt: rtt.Mean, loss: loss.Mean}
	}
	var out []BandwidthResult
	for _, k := range a.ds.PairKeys() {
		direct, ok := st[k]
		if !ok {
			continue
		}
		defBW, err := model.BandwidthKBs(direct.rtt, direct.loss)
		if err != nil {
			return nil, err
		}
		bestBW := math.Inf(-1)
		bestVia := topology.HostID(-1)
		for _, via := range a.ds.Hosts {
			if via == k.Src || via == k.Dst {
				continue
			}
			s1, ok1 := st[dataset.PairKey{Src: k.Src, Dst: via}]
			s2, ok2 := st[dataset.PairKey{Src: via, Dst: k.Dst}]
			if !ok1 || !ok2 {
				continue
			}
			rtt := s1.rtt + s2.rtt
			var loss float64
			switch mode {
			case Optimistic:
				loss = math.Max(s1.loss, s2.loss)
			case Pessimistic:
				loss = 1 - (1-s1.loss)*(1-s2.loss)
			}
			bw, err := model.BandwidthKBs(rtt, loss)
			if err != nil {
				return nil, err
			}
			if bw > bestBW {
				bestBW, bestVia = bw, via
			}
		}
		if bestVia == -1 {
			continue
		}
		out = append(out, BandwidthResult{Key: k, DefaultKBs: defBW, AltKBs: bestBW, Via: bestVia})
	}
	return out, nil
}

func TestQueryK1ByteIdentical(t *testing.T) {
	ds := randomDataset(42, 12, 0.6)
	for _, metric := range []Metric{MetricRTT, MetricLoss} {
		for _, maxVia := range []int{0, 1, 2} {
			want, err := legacyBestAlternates(NewAnalyzer(ds), metric, maxVia)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("oracle empty for %v maxVia=%d", metric, maxVia)
			}
			for _, conc := range []int{1, 4, 0} {
				name := fmt.Sprintf("%v/maxVia=%d/conc=%d", metric, maxVia, conc)
				a := NewAnalyzer(ds).WithConcurrency(conc)
				rs, err := a.Query(QuerySpec{Metric: metric, MaxVia: maxVia})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got := rs.PairResults(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: Query K=1 diverges from legacy BestAlternates", name)
				}
				adapted, err := a.BestAlternates(metric, maxVia)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !reflect.DeepEqual(adapted, want) {
					t.Errorf("%s: deprecated adapter diverges from legacy", name)
				}
			}
		}
	}
}

func TestQueryBandwidthByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := dataset.New("n2", hostIDs(8))
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d || rng.Float64() > 0.7 {
				continue
			}
			addTransfer(ds, s, d, 20+200*rng.Float64(), 0.05*rng.Float64())
		}
	}
	model := tcpmodel.Default()
	for _, mode := range []BandwidthMode{Optimistic, Pessimistic} {
		want, err := legacyBestBandwidthAlternates(NewAnalyzer(ds), model, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("oracle empty for %v", mode)
		}
		for _, conc := range []int{1, 3, 0} {
			a := NewAnalyzer(ds).WithConcurrency(conc)
			rs, err := a.Query(QuerySpec{Bandwidth: &BandwidthQuery{Model: model, Mode: mode}})
			if err != nil {
				t.Fatal(err)
			}
			if got := rs.BandwidthResults(); !reflect.DeepEqual(got, want) {
				t.Errorf("%v conc=%d: bandwidth Query diverges from legacy", mode, conc)
			}
		}
	}
}

func TestQueryExclusions(t *testing.T) {
	ds := randomDataset(3, 10, 0.6)
	a := NewAnalyzer(ds)
	g, err := a.graphFor(MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, len(g.hosts))
	mask[g.index[topology.HostID(2)]] = true
	mask[g.index[topology.HostID(5)]] = true
	want, err := a.bestAlternatesOn(g, MetricRTT, 0, mask)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := a.Query(QuerySpec{Metric: MetricRTT, Exclude: Exclusions{Hosts: []topology.HostID{2, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.PairResults(); !reflect.DeepEqual(got, want) {
		t.Error("typed Exclusions diverge from the positional mask")
	}
	for _, r := range rs.PairResults() {
		if r.Key.Src == 2 || r.Key.Dst == 2 || r.Key.Src == 5 || r.Key.Dst == 5 {
			t.Fatalf("excluded endpoint surfaced: %v", r.Key)
		}
		for _, v := range r.Via {
			if v == 2 || v == 5 {
				t.Fatalf("excluded host used as relay: %v via %v", r.Key, r.Via)
			}
		}
	}
	if _, err := a.Query(QuerySpec{Metric: MetricRTT, Exclude: Exclusions{Hosts: []topology.HostID{99}}}); err == nil {
		t.Error("unknown excluded host should error")
	}
}

func TestQueryKPathSets(t *testing.T) {
	// 0->1 direct is slow; relays 2, 3, 4 offer alternates of
	// increasing cost; 0->2->3->1 adds a two-hop option.
	ds := dataset.New("k", hostIDs(5))
	addRTT(ds, 0, 1, 100)
	addRTT(ds, 0, 2, 10)
	addRTT(ds, 2, 1, 10)
	addRTT(ds, 0, 3, 20)
	addRTT(ds, 3, 1, 20)
	addRTT(ds, 0, 4, 35)
	addRTT(ds, 4, 1, 35)
	addRTT(ds, 2, 3, 5)
	a := NewAnalyzer(ds)
	rs, err := a.Query(QuerySpec{Metric: MetricRTT, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	var pp *PairPathSet
	for i := range rs.Pairs {
		if rs.Pairs[i].Key == (dataset.PairKey{Src: 0, Dst: 1}) {
			pp = &rs.Pairs[i]
		}
	}
	if pp == nil {
		t.Fatal("pair 0->1 missing")
	}
	paths := pp.Alternates.Paths
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	// Best-first, no duplicates, never the direct path.
	for i, p := range paths {
		if len(p.Hops) < 3 {
			t.Errorf("path %d is direct: %v", i, p.Hops)
		}
		if i > 0 && p.Weight < paths[i-1].Weight {
			t.Errorf("weights not ascending: %g after %g", p.Weight, paths[i-1].Weight)
		}
		for j := 0; j < i; j++ {
			if p.Equal(paths[j]) {
				t.Errorf("duplicate path %v", p.Hops)
			}
		}
	}
	wantBest := []topology.HostID{0, 2, 1}
	if !reflect.DeepEqual(paths[0].Hops, wantBest) {
		t.Errorf("best path %v, want %v", paths[0].Hops, wantBest)
	}
	// The Yen set must contain the two-hop deviation 0->2->3->1 (weight 35).
	found := false
	for _, p := range paths {
		if reflect.DeepEqual(p.Hops, []topology.HostID{0, 2, 3, 1}) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing deviation 0->2->3->1 in %v", paths)
	}
	// K=1's single path is exactly the K>1 set's head.
	rs1, err := a.Query(QuerySpec{Metric: MetricRTT, K: 1, Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p1 := range rs1.Pairs {
		if p1.Key == (dataset.PairKey{Src: 0, Dst: 1}) {
			if !p1.Alternates.Paths[0].Equal(paths[0]) {
				t.Error("K=1 head diverges from K=4 head")
			}
		}
	}
	// MaxVia bounds every returned path.
	rsb, err := a.Query(QuerySpec{Metric: MetricRTT, K: 4, MaxVia: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rsb.Pairs {
		for _, alt := range p.Alternates.Paths {
			if len(alt.Hops) > 3 {
				t.Errorf("maxVia=1 violated: %v", alt.Hops)
			}
		}
	}
	// Asking for more paths than exist returns what exists.
	rsx, err := a.Query(QuerySpec{Metric: MetricRTT, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rsx.Pairs {
		seen := map[string]bool{}
		for _, alt := range p.Alternates.Paths {
			key := fmt.Sprint(alt.Hops)
			if seen[key] {
				t.Fatalf("duplicate under large K: %v", alt.Hops)
			}
			seen[key] = true
		}
	}
}

func TestQueryAnnotate(t *testing.T) {
	ds := dataset.New("ann", hostIDs(3))
	as := func(asns ...topology.ASN) []topology.ASN { return asns }
	k01 := dataset.PairKey{Src: 0, Dst: 1}
	k02 := dataset.PairKey{Src: 0, Dst: 2}
	k21 := dataset.PairKey{Src: 2, Dst: 1}
	ds.RecordEcho(k01, netsim.Time(0), []float64{100}, []bool{false}, as(10, 30, 11), 1)
	ds.RecordEcho(k02, netsim.Time(0), []float64{10}, []bool{false}, as(10, 20, 12), 1)
	ds.RecordEcho(k21, netsim.Time(0), []float64{10}, []bool{false}, as(12, 21, 11), 1)
	addLoss(ds, 0, 1, 2, 20)
	addLoss(ds, 0, 2, 0, 20)
	addLoss(ds, 2, 1, 1, 20)
	rs, err := NewAnalyzer(ds).Query(QuerySpec{Metric: MetricRTT, Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Pairs) == 0 {
		t.Fatal("no pairs")
	}
	var pp PairPathSet
	for _, p := range rs.Pairs {
		if p.Key == k01 {
			pp = p
		}
	}
	alt := pp.Alternates.Paths[0]
	if alt.LatencyMs != alt.Value {
		t.Errorf("RTT query should self-annotate latency: %g vs %g", alt.LatencyMs, alt.Value)
	}
	if math.IsNaN(alt.Loss) || alt.Loss <= 0 {
		t.Errorf("cross-metric loss not composed: %g", alt.Loss)
	}
	// Interior ASes of 0->2->1: union {10,20,12,21,11} minus src AS 10
	// and dst AS 11.
	want := []topology.ASN{12, 20, 21}
	if !reflect.DeepEqual(alt.ASes, want) {
		t.Errorf("alt ASes %v, want %v", alt.ASes, want)
	}
	// Default path 0->1 interior: {10,30,11} minus endpoints.
	if !reflect.DeepEqual(pp.Default.ASes, []topology.ASN{30}) {
		t.Errorf("default ASes %v, want [30]", pp.Default.ASes)
	}
	if d := pathset.Disjointness(pathset.LevelAS, pp.Default, alt); d != 1 {
		t.Errorf("disjointness %g, want 1", d)
	}
}

func TestQueryDisjointnessAndStrategy(t *testing.T) {
	// Two relays: 2 shares a measured hop-set with nothing; both
	// alternates are link-disjoint from the direct default, so a
	// link-level filter keeps both, and MostDisjoint picks
	// deterministically.
	ds := randomDataset(11, 9, 0.6)
	a := NewAnalyzer(ds)
	base, err := a.Query(QuerySpec{Metric: MetricRTT, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := a.Query(QuerySpec{
		Metric:            MetricRTT,
		K:                 3,
		MinDisjointness:   0.5,
		DisjointnessLevel: pathset.LevelLink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Pairs) > len(base.Pairs) {
		t.Error("filter added pairs")
	}
	for _, p := range filtered.Pairs {
		for _, alt := range p.Alternates.Paths {
			if d := pathset.Disjointness(pathset.LevelLink, p.Default, alt); d < 0.5 {
				t.Errorf("filter leaked path with disjointness %g", d)
			}
		}
	}
	sel, err := a.Query(QuerySpec{
		Metric:   MetricRTT,
		K:        3,
		Strategy: pathset.ByLatency{},
		Keep:     1,
		Annotate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sel.Pairs {
		if p.Alternates.Len() != 1 {
			t.Fatalf("Keep=1 left %d paths", p.Alternates.Len())
		}
	}
	// Determinism across worker counts for the full K>1 pipeline.
	again, err := NewAnalyzer(ds).WithConcurrency(1).Query(QuerySpec{
		Metric:   MetricRTT,
		K:        3,
		Strategy: pathset.ByLatency{},
		Keep:     1,
		Annotate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel.Pairs, again.Pairs) {
		t.Error("K>1 query differs across worker counts")
	}
}

func TestQueryRejectsNegativeK(t *testing.T) {
	ds := randomDataset(1, 5, 0.6)
	if _, err := NewAnalyzer(ds).Query(QuerySpec{Metric: MetricRTT, K: -1}); err == nil {
		t.Error("negative K should error")
	}
}
