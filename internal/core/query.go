package core

import (
	"fmt"
	"math"
	"sort"

	"pathsel/internal/dataset"
	"pathsel/internal/pathset"
	"pathsel/internal/stats"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/topology"
)

// Exclusions names hosts the search must treat as absent: pairs with
// an excluded endpoint are skipped and excluded hosts never appear as
// intermediates. The typed option replaces the positional bool-slice
// argument the pre-Query entry points threaded next to maxVia (and
// that new call sites kept transposing); hosts are validated against
// the dataset's host list.
type Exclusions struct {
	Hosts []topology.HostID
}

// mask resolves the exclusions to the graph's dense vertex mask, nil
// when empty.
func (e Exclusions) mask(hosts []topology.HostID, index map[topology.HostID]int) ([]bool, error) {
	if len(e.Hosts) == 0 {
		return nil, nil
	}
	m := make([]bool, len(hosts))
	for _, h := range e.Hosts {
		i, ok := index[h]
		if !ok {
			return nil, fmt.Errorf("core: excluded host %d is not in the dataset host list", h)
		}
		m[i] = true
	}
	return m, nil
}

// BandwidthQuery switches a Query to the Mathis-model bandwidth
// comparison (the paper's N2 analysis): per-path RTT and loss come
// from TCP transfer measurements, alternates are one hop, and paths
// rank by modeled throughput (descending) instead of metric cost.
type BandwidthQuery struct {
	Model tcpmodel.Model
	Mode  BandwidthMode
}

// QuerySpec describes one path-set query. The zero value (plus a
// Metric) reproduces the classic single-best-alternate analysis; the
// other fields layer path-set behavior on top without new method
// families.
type QuerySpec struct {
	// Metric drives edge weights and path composition. Ignored when
	// Bandwidth is set.
	Metric Metric
	// K is the number of alternate paths to find per pair, best first
	// (Yen's algorithm); 0 and 1 both mean the single best.
	K int
	// MaxVia bounds the number of intermediate hosts per alternate
	// (0 = unlimited). Bandwidth queries are always one-hop, as in the
	// paper.
	MaxVia int
	// Exclude removes hosts from the analysis entirely.
	Exclude Exclusions
	// MinDisjointness drops alternates whose disjointness against the
	// pair's default path (at DisjointnessLevel) is below the
	// threshold; 0 keeps everything.
	MinDisjointness   float64
	DisjointnessLevel pathset.Level
	// Strategy re-ranks each pair's candidate set (after the
	// disjointness filter), keeping Keep paths (0 = all). Nil keeps
	// the engine's ascending-weight order.
	Strategy pathset.SelectionStrategy
	Keep     int
	// Annotate forces full cross-metric annotation: every path gets
	// LatencyMs and Loss composed from the RTT and loss measurement
	// graphs, plus its interior AS set, even on plain K=1 queries.
	// Without it, paths carry only the query metric's own annotation —
	// AS sets are still computed whenever something consumes them
	// (K > 1, MinDisjointness, or a Strategy).
	Annotate bool
	// Bandwidth, when non-nil, switches to the Mathis-model bandwidth
	// query (see BandwidthQuery).
	Bandwidth *BandwidthQuery
	// Concurrency overrides the Analyzer's worker knob for this query
	// when positive. Results are bit-identical for every setting.
	Concurrency int
}

// PairPathSet is one pair's query result: the measured default path
// and the selected alternate set, best first.
type PairPathSet struct {
	Key        dataset.PairKey
	Default    pathset.Path
	Alternates pathset.PathSet
}

// ResultSet is the outcome of one Query over every measured pair, in
// deterministic PairKeys order. Pairs without a measured default path
// or without any surviving alternate are omitted, matching the legacy
// single-alternate analyses.
type ResultSet struct {
	Spec  QuerySpec
	Pairs []PairPathSet
}

// PairResults flattens the set to the legacy one-alternate-per-pair
// form: each pair's first alternate versus its default. A K=1 query's
// PairResults are byte-identical to the pre-Query BestAlternates
// output.
func (rs ResultSet) PairResults() []PairResult {
	out := make([]PairResult, 0, len(rs.Pairs))
	for _, p := range rs.Pairs {
		best, ok := p.Alternates.Best()
		if !ok {
			continue
		}
		out = append(out, PairResult{
			Key:          p.Key,
			Default:      p.Default.Summary,
			Alternate:    best.Summary,
			DefaultValue: p.Default.Value,
			AltValue:     best.Value,
			Via:          best.Via(),
		})
	}
	return out
}

// BandwidthResults flattens a bandwidth query to the legacy form:
// modeled default and best-alternate throughputs per pair.
func (rs ResultSet) BandwidthResults() []BandwidthResult {
	out := make([]BandwidthResult, 0, len(rs.Pairs))
	for _, p := range rs.Pairs {
		best, ok := p.Alternates.Best()
		if !ok || len(best.Hops) < 3 {
			continue
		}
		out = append(out, BandwidthResult{
			Key:        p.Key,
			DefaultKBs: p.Default.Value,
			AltKBs:     best.Value,
			Via:        best.Hops[1],
		})
	}
	return out
}

// Query runs one path-set query. Output is in PairKeys order and
// bit-identical at any worker count: pairs are prefiltered
// sequentially, searched in parallel into per-pair slots, and
// compacted in order; every per-pair computation (Yen's candidate
// ordering, disjointness scoring, strategy selection) is a
// deterministic function of the frozen graph.
func (a *Analyzer) Query(spec QuerySpec) (ResultSet, error) {
	if spec.K < 0 {
		return ResultSet{}, fmt.Errorf("core: negative K %d", spec.K)
	}
	if spec.Bandwidth != nil {
		return a.queryBandwidth(spec)
	}
	g, err := a.graphFor(spec.Metric)
	if err != nil {
		return ResultSet{}, err
	}
	excluded, err := spec.Exclude.mask(g.hosts, g.index)
	if err != nil {
		return ResultSet{}, err
	}
	ann, err := a.annotationsFor(spec)
	if err != nil {
		return ResultSet{}, err
	}
	workers := a.workers()
	if spec.Concurrency > 0 {
		workers = spec.Concurrency
	}
	k := spec.K
	if k < 1 {
		k = 1
	}
	var pairs []PairPathSet
	if k == 1 {
		// The single-best case routes through the shared-source-tree
		// batch engine, the exact machinery the legacy BestAlternates
		// used — K=1 queries inherit its output verbatim.
		results, err := a.bestAlternatesWith(g, spec.Metric, spec.MaxVia, excluded, workers)
		if err != nil {
			return ResultSet{}, err
		}
		pairs = make([]PairPathSet, 0, len(results))
		for _, r := range results {
			hops := make([]topology.HostID, 0, len(r.Via)+2)
			hops = append(hops, r.Key.Src)
			hops = append(hops, r.Via...)
			hops = append(hops, r.Key.Dst)
			alt := pathset.Path{
				Hops:    hops,
				Weight:  a.hopsWeight(g, hops),
				Value:   r.AltValue,
				Summary: r.Alternate,
			}
			a.annotatePath(g, spec.Metric, ann, &alt)
			pairs = append(pairs, PairPathSet{
				Key:        r.Key,
				Default:    a.defaultPath(g, spec.Metric, ann, r),
				Alternates: pathset.PathSet{Paths: []pathset.Path{alt}},
			})
		}
	} else {
		pairs, err = a.queryK(g, spec, k, excluded, ann, workers)
		if err != nil {
			return ResultSet{}, err
		}
	}
	return ResultSet{Spec: spec, Pairs: a.finishPairs(spec, pairs)}, nil
}

// queryK is the K>1 engine: per-pair Yen searches sharded across
// workers, each with a persistent scratch arena and yenState.
func (a *Analyzer) queryK(g *graph, spec QuerySpec, k int, excluded []bool, ann annotations, workers int) ([]PairPathSet, error) {
	g.freeze()
	keys := a.ds.PairKeys()
	type pairJob struct {
		key    dataset.PairKey
		si, di int32
	}
	jobs := make([]pairJob, 0, len(keys))
	for _, key := range keys {
		si, ok1 := g.index[key.Src]
		di, ok2 := g.index[key.Dst]
		if !ok1 || !ok2 {
			continue
		}
		if excluded != nil && (excluded[si] || excluded[di]) {
			continue
		}
		jobs = append(jobs, pairJob{key: key, si: int32(si), di: int32(di)})
	}
	slots := make([]PairPathSet, len(jobs))
	valid := make([]bool, len(jobs))
	wa := newWorkerArenas(g, workers)
	defer wa.release()
	ys := make([]*yenState, workers)
	err := parallelFor(a.context(), workers, len(jobs), func(w, i int) error {
		j := jobs[i]
		direct, found := g.directEdge(int(j.si), int(j.di))
		if !found {
			return nil
		}
		y := ys[w]
		if y == nil {
			y = newYenState(len(g.hosts), excluded)
			ys[w] = y
		}
		vertexPaths := g.kAlternatesInto(wa.pair(w), y, int(j.si), int(j.di), k, spec.MaxVia)
		if len(vertexPaths) == 0 {
			return nil
		}
		set := pathset.PathSet{Paths: make([]pathset.Path, 0, len(vertexPaths))}
		for _, vp := range vertexPaths {
			p, err := a.composedPath(g, spec.Metric, ann, vp)
			if err != nil {
				return err
			}
			set.Paths = append(set.Paths, p)
		}
		def := PairResult{Key: j.key, Default: direct.summary, DefaultValue: direct.value}
		slots[i] = PairPathSet{
			Key:        j.key,
			Default:    a.defaultPath(g, spec.Metric, ann, def),
			Alternates: set,
		}
		valid[i] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]PairPathSet, 0, len(jobs))
	for i, ok := range valid {
		if ok {
			out = append(out, slots[i])
		}
	}
	return out, nil
}

// finishPairs applies the disjointness filter and the selection
// strategy, dropping pairs whose set empties out.
func (a *Analyzer) finishPairs(spec QuerySpec, pairs []PairPathSet) []PairPathSet {
	if spec.MinDisjointness <= 0 && spec.Strategy == nil {
		return pairs
	}
	out := make([]PairPathSet, 0, len(pairs))
	for _, p := range pairs {
		set := p.Alternates
		if spec.MinDisjointness > 0 {
			set = set.FilterDisjoint(spec.DisjointnessLevel, p.Default, spec.MinDisjointness)
		}
		if spec.Strategy != nil {
			set = spec.Strategy.Select(p.Default, set, spec.Keep)
		}
		if set.Empty() {
			continue
		}
		p.Alternates = set
		out = append(out, p)
	}
	return out
}

// annotations bundles the optional cross-metric graphs and the AS
// toggle resolved once per query.
type annotations struct {
	rtt, loss *graph // non-nil only under Annotate
	ases      bool
}

// annotationsFor resolves the annotation plan: AS sets whenever
// something consumes them, cross-metric graphs only under Annotate.
func (a *Analyzer) annotationsFor(spec QuerySpec) (annotations, error) {
	ann := annotations{
		ases: spec.Annotate || spec.K > 1 || spec.MinDisjointness > 0 || spec.Strategy != nil,
	}
	if !spec.Annotate {
		return ann, nil
	}
	rtt, err := a.graphFor(MetricRTT)
	if err != nil {
		return annotations{}, err
	}
	loss, err := a.graphFor(MetricLoss)
	if err != nil {
		return annotations{}, err
	}
	ann.rtt, ann.loss = rtt, loss
	return ann, nil
}

// composedPath materializes one Yen vertex path as a pathset.Path.
func (a *Analyzer) composedPath(g *graph, metric Metric, ann annotations, vp []int) (pathset.Path, error) {
	value, sum, err := g.composePath(metric, vp)
	if err != nil {
		return pathset.Path{}, err
	}
	hops := make([]topology.HostID, len(vp))
	for i, v := range vp {
		hops[i] = g.hosts[v]
	}
	p := pathset.Path{Hops: hops, Weight: g.pathWeight(vp), Value: value, Summary: sum}
	a.annotatePath(g, metric, ann, &p)
	return p, nil
}

// defaultPath builds the pair's default (direct) path from a legacy
// result row.
func (a *Analyzer) defaultPath(g *graph, metric Metric, ann annotations, r PairResult) pathset.Path {
	p := pathset.Path{
		Hops:    []topology.HostID{r.Key.Src, r.Key.Dst},
		Value:   r.DefaultValue,
		Summary: r.Default,
	}
	if metric == MetricLoss {
		p.Weight = lossWeight(r.DefaultValue)
	} else {
		p.Weight = r.DefaultValue
	}
	a.annotatePath(g, metric, ann, &p)
	return p
}

// hopsWeight computes the stored-edge weight sum for a host sequence.
func (a *Analyzer) hopsWeight(g *graph, hops []topology.HostID) float64 {
	w := 0.0
	for i := 0; i+1 < len(hops); i++ {
		si, ok1 := g.index[hops[i]]
		di, ok2 := g.index[hops[i+1]]
		if !ok1 || !ok2 {
			return math.Inf(1)
		}
		e, found := g.directEdge(si, di)
		if !found {
			return math.Inf(1)
		}
		w += e.weight
	}
	return w
}

// annotatePath fills the cross-metric and AS annotations per the
// query's plan. The metric's own value always populates its slot;
// the other metric composes from its measurement graph only under
// Annotate (NaN when a hop is unmeasured there).
func (a *Analyzer) annotatePath(g *graph, metric Metric, ann annotations, p *pathset.Path) {
	p.LatencyMs, p.Loss = math.NaN(), math.NaN()
	switch metric {
	case MetricRTT:
		p.LatencyMs = p.Value
	case MetricLoss:
		p.Loss = p.Value
	}
	if ann.rtt != nil && math.IsNaN(p.LatencyMs) {
		if v, ok := a.composeOn(ann.rtt, MetricRTT, p.Hops); ok {
			p.LatencyMs = v
		}
	}
	if ann.loss != nil && math.IsNaN(p.Loss) {
		if v, ok := a.composeOn(ann.loss, MetricLoss, p.Hops); ok {
			p.Loss = v
		}
	}
	if ann.ases {
		p.ASes = a.pathASes(p.Hops)
	}
}

// composeOn evaluates a host path on another metric's graph.
func (a *Analyzer) composeOn(g *graph, metric Metric, hops []topology.HostID) (float64, bool) {
	vp := make([]int, len(hops))
	for i, h := range hops {
		v, ok := g.index[h]
		if !ok {
			return 0, false
		}
		vp[i] = v
	}
	value, _, err := g.composePath(metric, vp)
	if err != nil {
		return 0, false
	}
	return value, true
}

// pathASes unions the traceroute-observed ASes of a path's measured
// hops and strips the two endpoint hosts' own ASes (identified from
// the first and last hop AS paths), leaving the interior — the set
// AS-level disjointness compares, per Qazi & Moors. Sorted ascending.
func (a *Analyzer) pathASes(hops []topology.HostID) []topology.ASN {
	if len(hops) < 2 {
		return nil
	}
	var all []topology.ASN
	seen := map[topology.ASN]bool{}
	var srcAS, dstAS topology.ASN
	haveSrc, haveDst := false, false
	for i := 0; i+1 < len(hops); i++ {
		p := a.ds.Paths[dataset.PairKey{Src: hops[i], Dst: hops[i+1]}]
		if p == nil || len(p.ASPath) == 0 {
			continue
		}
		if i == 0 {
			srcAS, haveSrc = p.ASPath[0], true
		}
		if i+2 == len(hops) {
			dstAS, haveDst = p.ASPath[len(p.ASPath)-1], true
		}
		for _, asn := range p.ASPath {
			if !seen[asn] {
				seen[asn] = true
				all = append(all, asn)
			}
		}
	}
	out := all[:0]
	for _, asn := range all {
		if (haveSrc && asn == srcAS) || (haveDst && asn == dstAS) {
			continue
		}
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// queryBandwidth is the Mathis-model branch of Query: one-hop relay
// enumeration in dataset host order, ranked by descending modeled
// throughput with the earliest host winning ties — for K=1 exactly
// the pre-Query BestBandwidthAlternates selection.
func (a *Analyzer) queryBandwidth(spec QuerySpec) (ResultSet, error) {
	bq := spec.Bandwidth
	k := spec.K
	if k < 1 {
		k = 1
	}
	excludedSet := map[topology.HostID]bool{}
	if len(spec.Exclude.Hosts) > 0 {
		hostSet := map[topology.HostID]bool{}
		for _, h := range a.ds.Hosts {
			hostSet[h] = true
		}
		for _, h := range spec.Exclude.Hosts {
			if !hostSet[h] {
				return ResultSet{}, fmt.Errorf("core: excluded host %d is not in the dataset host list", h)
			}
			excludedSet[h] = true
		}
	}
	ann := annotations{ases: spec.Annotate || k > 1 || spec.MinDisjointness > 0 || spec.Strategy != nil}
	type pathStat struct{ rtt, loss float64 }
	st := map[dataset.PairKey]pathStat{}
	for _, key := range a.ds.PairKeys() {
		rtt, loss, ok := a.ds.TransferMeans(key)
		if !ok {
			continue
		}
		st[key] = pathStat{rtt: rtt.Mean, loss: loss.Mean}
	}
	workers := a.workers()
	if spec.Concurrency > 0 {
		workers = spec.Concurrency
	}
	keys := a.ds.PairKeys()
	slots := make([]PairPathSet, len(keys))
	valid := make([]bool, len(keys))
	err := parallelFor(a.context(), workers, len(keys), func(_, i int) error {
		key := keys[i]
		if excludedSet[key.Src] || excludedSet[key.Dst] {
			return nil
		}
		direct, ok := st[key]
		if !ok {
			return nil
		}
		defBW, err := bq.Model.BandwidthKBs(direct.rtt, direct.loss)
		if err != nil {
			return fmt.Errorf("core: default bandwidth for %v: %w", key, err)
		}
		type bwCand struct {
			via       topology.HostID
			pos       int
			bw        float64
			rtt, loss float64
		}
		var cands []bwCand
		for pos, via := range a.ds.Hosts {
			if via == key.Src || via == key.Dst || excludedSet[via] {
				continue
			}
			s1, ok1 := st[dataset.PairKey{Src: key.Src, Dst: via}]
			s2, ok2 := st[dataset.PairKey{Src: via, Dst: key.Dst}]
			if !ok1 || !ok2 {
				continue
			}
			rtt := s1.rtt + s2.rtt
			var loss float64
			switch bq.Mode {
			case Optimistic:
				loss = math.Max(s1.loss, s2.loss)
			case Pessimistic:
				loss = 1 - (1-s1.loss)*(1-s2.loss)
			default:
				return fmt.Errorf("core: unknown bandwidth mode %v", bq.Mode)
			}
			bw, err := bq.Model.BandwidthKBs(rtt, loss)
			if err != nil {
				return fmt.Errorf("core: alternate bandwidth for %v via %d: %w", key, via, err)
			}
			cands = append(cands, bwCand{via: via, pos: pos, bw: bw, rtt: rtt, loss: loss})
		}
		if len(cands) == 0 {
			return nil
		}
		sort.Slice(cands, func(x, y int) bool {
			//repolint:allow floateq -- deterministic tie-break: equal throughputs fall to host order
			if cands[x].bw != cands[y].bw {
				return cands[x].bw > cands[y].bw
			}
			return cands[x].pos < cands[y].pos
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		def := pathset.Path{
			Hops:      []topology.HostID{key.Src, key.Dst},
			Weight:    -defBW,
			Value:     defBW,
			Summary:   stats.Summary{Mean: defBW},
			LatencyMs: direct.rtt,
			Loss:      direct.loss,
		}
		if ann.ases {
			def.ASes = a.pathASes(def.Hops)
		}
		set := pathset.PathSet{Paths: make([]pathset.Path, 0, len(cands))}
		for _, c := range cands {
			p := pathset.Path{
				Hops:      []topology.HostID{key.Src, c.via, key.Dst},
				Weight:    -c.bw,
				Value:     c.bw,
				Summary:   stats.Summary{Mean: c.bw},
				LatencyMs: c.rtt,
				Loss:      c.loss,
			}
			if ann.ases {
				p.ASes = a.pathASes(p.Hops)
			}
			set.Paths = append(set.Paths, p)
		}
		slots[i] = PairPathSet{Key: key, Default: def, Alternates: set}
		valid[i] = true
		return nil
	})
	if err != nil {
		return ResultSet{}, err
	}
	pairs := make([]PairPathSet, 0, len(keys))
	for i, ok := range valid {
		if ok {
			pairs = append(pairs, slots[i])
		}
	}
	return ResultSet{Spec: spec, Pairs: a.finishPairs(spec, pairs)}, nil
}
