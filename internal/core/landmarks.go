package core

import "math"

// numLandmarks is the ALT landmark budget. Eight landmarks cost
// 2·8·n float64 cells (128 bytes per vertex) and typically prune the
// large majority of finalizations in goal-directed searches on the
// sparse sampled-pair graphs of the scale preset.
const numLandmarks = 8

// landmarks holds ALT (A*, landmarks, triangle inequality) distance
// tables: for each landmark l, the forward distance d(l→v) and the
// reverse distance d(v→l) for every vertex v, computed on the full
// graph. Both tables use math.MaxFloat64 as the "unreachable" sentinel.
//
// For any vertices u, t the triangle inequality gives two lower bounds
// on d(u→t):
//
//	d(u→t) >= d(l→t) − d(l→u)   (forward table)
//	d(u→t) >= d(u→l) − d(t→l)   (reverse table)
//
// The bounds stay admissible for every search this package runs: the
// searches only restrict the graph (excluded vertices, the forbidden
// direct edge), and restricting a graph can only increase distances, so
// a full-graph lower bound still under-estimates. The sentinel even
// sharpens the bound correctly: d(l→t) = ∞ with d(l→u) finite proves t
// unreachable from u (a u→t path would extend l→u), and the huge
// difference prunes everything, which is exact.
type landmarks struct {
	n   int
	k   int
	fwd []float64 // fwd[l*n+v] = d(landmark l → v)
	rev []float64 // rev[l*n+v] = d(v → landmark l)
}

// lowerBound returns the best landmark lower bound on d(u→dst),
// never negative.
//
//repolint:hotpath
func (lm *landmarks) lowerBound(u, dst int) float64 {
	best := 0.0
	for l := 0; l < lm.k; l++ {
		base := l * lm.n
		if d := lm.fwd[base+dst] - lm.fwd[base+u]; d > best {
			best = d
		}
		if d := lm.rev[base+u] - lm.rev[base+dst]; d > best {
			best = d
		}
	}
	return best
}

// landmarksFor returns the graph's landmark tables for a per-pair
// search, building them on first use. Source-tree searches (dst < 0)
// cannot use goal direction and get nil.
func (g *graph) landmarksFor(dst int) *landmarks {
	if dst < 0 {
		return nil
	}
	g.lmOnce.Do(g.buildLandmarks)
	return g.lm
}

// buildLandmarks selects landmarks by deterministic farthest-point
// traversal and fills their forward/reverse distance tables. The first
// landmark is the lowest-numbered non-isolated vertex; each subsequent
// one is the non-isolated vertex farthest (by forward distance) from
// all chosen landmarks, unreachable vertices counting as farthest and
// ties resolving to the lowest vertex. The selection depends only on
// the frozen slabs, so it is identical across runs and worker counts.
func (g *graph) buildLandmarks() {
	n := len(g.hosts)
	m := g.ix.NumEdges()
	if n == 0 || m == 0 {
		return // leaves g.lm nil: searches simply skip pruning
	}

	isolated := make([]bool, n)
	for v := range isolated {
		isolated[v] = true
	}
	for u := 0; u < n; u++ {
		lo, hi := g.ix.Row(int32(u))
		if lo != hi {
			isolated[u] = false
		}
		for slot := lo; slot < hi; slot++ {
			isolated[g.ix.Tgt[slot]] = false
		}
	}

	lm := &landmarks{n: n}
	minTo := make([]float64, n) // min forward distance from any landmark
	for i := range minTo {
		minTo[i] = math.MaxFloat64
	}
	chosen := make([]bool, n)
	var q pq
	for lm.k < numLandmarks {
		pick := -1
		if lm.k == 0 {
			for v := 0; v < n; v++ {
				if !isolated[v] {
					pick = v
					break
				}
			}
		} else {
			best := -1.0
			for v := 0; v < n; v++ {
				if isolated[v] || chosen[v] {
					continue
				}
				if d := minTo[v]; d > best {
					best, pick = d, v
				}
			}
		}
		if pick == -1 {
			break
		}
		chosen[pick] = true
		base := lm.k * n
		lm.fwd = append(lm.fwd, make([]float64, n)...)
		lm.rev = append(lm.rev, make([]float64, n)...)
		dijkstraFrom(g.ix.Off, g.ix.Tgt, g.wt, pick, lm.fwd[base:base+n], &q)
		dijkstraFrom(g.rix.Off, g.rix.Tgt, g.rwt, pick, lm.rev[base:base+n], &q)
		for v := 0; v < n; v++ {
			if d := lm.fwd[base+v]; d < minTo[v] {
				minTo[v] = d
			}
		}
		lm.k++
	}
	if lm.k > 0 {
		g.lm = lm
	}
}

// dijkstraFrom runs an unrestricted single-source shortest-path search
// over raw CSR slabs, filling dist (math.MaxFloat64 = unreachable).
//
//repolint:hotpath
func dijkstraFrom(off, tgt []int32, wt []float64, src int, dist []float64, q *pq) {
	for i := range dist {
		dist[i] = math.MaxFloat64
	}
	dist[src] = 0
	h := (*q)[:0]
	h.push(pqItem{vertex: src, dist: 0})
	for len(h) > 0 {
		it := h.pop()
		u := it.vertex
		if it.dist > dist[u] {
			continue // stale heap entry
		}
		lo, hi := off[u], off[u+1]
		for slot := lo; slot < hi; slot++ {
			v := int(tgt[slot])
			if nd := it.dist + wt[slot]; nd < dist[v] {
				dist[v] = nd
				h.push(pqItem{vertex: v, dist: nd})
			}
		}
	}
	*q = h[:0]
}
