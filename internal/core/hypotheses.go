package core

import (
	"fmt"
	"math"
	"sort"

	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// VerdictCounts classifies every pair comparison with a Welch t-test at
// the given confidence level, producing the paper's Tables 2 and 3:
// whether the best alternate is significantly better, significantly
// worse, exactly zero on both sides (loss only), or indeterminate.
type VerdictCounts struct {
	Better, Worse, Indeterminate, BothZero int
}

// Total returns the number of classified pairs.
func (v VerdictCounts) Total() int {
	return v.Better + v.Worse + v.Indeterminate + v.BothZero
}

// Percent returns the four counts as percentages of the total.
func (v VerdictCounts) Percent() (better, indeterminate, worse, bothZero float64) {
	t := float64(v.Total())
	//repolint:allow floateq -- t is an integer count converted to float; zero is exact
	if t == 0 {
		return 0, 0, 0, 0
	}
	return 100 * float64(v.Better) / t, 100 * float64(v.Indeterminate) / t,
		100 * float64(v.Worse) / t, 100 * float64(v.BothZero) / t
}

// ClassifyVerdicts runs the t-test over pair results. "Better" means the
// alternate's mean is significantly below the default's.
func ClassifyVerdicts(results []PairResult, confidence float64) VerdictCounts {
	var out VerdictCounts
	for _, r := range results {
		switch stats.CompareMeans(r.Alternate, r.Default, confidence) {
		case stats.FirstSmaller:
			out.Better++
		case stats.FirstLarger:
			out.Worse++
		case stats.BothZero:
			out.BothZero++
		default:
			out.Indeterminate++
		}
	}
	return out
}

// CIPoint is one CDF point annotated with its 95% confidence half-width,
// for the error-bar Figures 7 and 8.
type CIPoint struct {
	Improvement float64
	HalfWidth   float64
}

// ImprovementsWithCI returns the sorted improvements with per-pair
// confidence half-widths for the mean difference.
func ImprovementsWithCI(results []PairResult, confidence float64) []CIPoint {
	pts := make([]CIPoint, len(results))
	for i, r := range results {
		pts[i] = CIPoint{
			Improvement: r.Improvement(),
			HalfWidth:   stats.MeanDiffCI(r.Default, r.Alternate, confidence),
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Improvement < pts[j].Improvement })
	return pts
}

// BucketResults computes pair results for one time-of-day bucket
// (Section 6.3, Figures 9 and 10): edge weights are bucket-restricted
// means.
func (a *Analyzer) BucketResults(metric Metric, b netsim.Bucket, maxVia int) ([]PairResult, error) {
	if metric != MetricRTT && metric != MetricLoss {
		return nil, fmt.Errorf("core: bucketed analysis supports RTT and loss, not %v", metric)
	}
	g := newGraph(a.ds.Hosts, nil)
	for _, k := range a.ds.PairKeys() {
		si, di := g.index[k.Src], g.index[k.Dst]
		var s stats.Summary
		var ok bool
		if metric == MetricRTT {
			s, ok = a.ds.MeanRTTBucket(k, b)
		} else {
			s, ok = a.ds.LossRateBucket(k, b)
		}
		if !ok {
			continue
		}
		g.addEdge(si, metricEdge(metric, di, s))
	}
	return a.bestAlternatesOn(g, metric, maxVia, nil)
}

// RemovalStep records one iteration of the greedy host-removal analysis.
type RemovalStep struct {
	Removed topology.HostID
	// MeanImprovement is the mean of the improvement CDF after this
	// removal (the quantity the greedy step minimizes).
	MeanImprovement float64
}

// GreedyRemoveTop implements the paper's Figure 12 experiment: repeatedly
// remove the host whose removal shifts the improvement CDF farthest left
// (here: minimizes the mean improvement over remaining pairs), n times.
// It returns the removal sequence and the pair results after all
// removals. Candidate removals within one iteration are independent, so
// they are evaluated concurrently (each worker owns a private exclusion
// buffer); the winning host is reduced in candidate order, making the
// sequence identical to the sequential engine's.
func (a *Analyzer) GreedyRemoveTop(metric Metric, maxVia, n int) ([]RemovalStep, []PairResult, error) {
	g, err := a.graphFor(metric)
	if err != nil {
		return nil, nil, err
	}
	excluded := make([]bool, len(g.hosts))
	workers := a.workers()
	// Per-worker exclusion buffers, refreshed from the committed set each
	// iteration; the per-pair searches inside a candidate evaluation run
	// sequentially because the candidates already saturate the workers.
	bufs := make([][]bool, workers)
	for w := range bufs {
		bufs[w] = make([]bool, len(g.hosts))
	}
	var steps []RemovalStep
	for iter := 0; iter < n; iter++ {
		candidates := make([]int, 0, len(g.hosts))
		for h := range g.hosts {
			if !excluded[h] {
				candidates = append(candidates, h)
			}
		}
		for w := range bufs {
			copy(bufs[w], excluded)
		}
		means := make([]float64, len(candidates))
		counts := make([]int, len(candidates))
		err := parallelFor(a.context(), workers, len(candidates), func(w, i int) error {
			h := candidates[i]
			excl := bufs[w]
			excl[h] = true
			results, err := a.bestAlternatesWith(g, metric, maxVia, excl, 1)
			excl[h] = false
			if err != nil {
				return err
			}
			counts[i] = len(results)
			if len(results) == 0 {
				return nil
			}
			sum := 0.0
			for _, r := range results {
				sum += r.Improvement()
			}
			means[i] = sum / float64(len(results))
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		bestHost := -1
		bestMean := math.Inf(1)
		for i, h := range candidates {
			if counts[i] == 0 {
				continue
			}
			if means[i] < bestMean {
				bestMean, bestHost = means[i], h
			}
		}
		if bestHost == -1 {
			break
		}
		excluded[bestHost] = true
		steps = append(steps, RemovalStep{Removed: g.hosts[bestHost], MeanImprovement: bestMean})
	}
	final, err := a.bestAlternatesOn(g, metric, maxVia, excluded)
	if err != nil {
		return nil, nil, err
	}
	return steps, final, nil
}

// Contribution is a host's normalized improvement contribution: how often
// it appears as an intermediate in a superior alternate path, weighted by
// how much better that alternate is (Figure 13).
type Contribution struct {
	Host  topology.HostID
	Value float64
}

// ImprovementContributions computes per-host contributions over superior
// one-hop alternates (every superior alternate, not just the best),
// normalized so the mean contribution is 100 — giving the paper's
// "normalized improvement contribution" axis. The per-host sums are
// computed concurrently, one relay host per task; each host's sum
// accumulates in pair-key order, so the result is independent of worker
// count.
func (a *Analyzer) ImprovementContributions(metric Metric) ([]Contribution, error) {
	g, err := a.graphFor(metric)
	if err != nil {
		return nil, err
	}
	// Prefilter the pairs once: vertex indices plus the direct value.
	type pairRef struct {
		si, di int32
		direct float64
	}
	var pairs []pairRef
	for _, k := range a.ds.PairKeys() {
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			continue
		}
		direct, found := g.directEdge(si, di)
		if !found {
			continue
		}
		pairs = append(pairs, pairRef{si: int32(si), di: int32(di), direct: direct.value})
	}
	vals := make([]float64, len(g.hosts))
	err = parallelFor(a.context(), a.workers(), len(g.hosts), func(_, vi int) error {
		total := 0.0
		for _, p := range pairs {
			si, di := int(p.si), int(p.di)
			if vi == si || vi == di {
				continue
			}
			e1, f1 := g.directEdge(si, vi)
			if !f1 {
				continue
			}
			e2, f2 := g.directEdge(vi, di)
			if !f2 {
				continue
			}
			altWeight := e1.weight + e2.weight
			var altValue float64
			if metric == MetricLoss {
				altValue = lossFromWeight(altWeight)
			} else {
				altValue = altWeight
			}
			if improvement := p.direct - altValue; improvement > 0 {
				total += improvement
			}
		}
		vals[vi] = total
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Normalize to mean 100.
	total := 0.0
	for _, v := range vals {
		total += v
	}
	out := make([]Contribution, 0, len(vals))
	mean := total / float64(len(vals))
	for vi, h := range g.hosts {
		v := vals[vi]
		if mean > 0 {
			v = 100 * v / mean
		}
		out = append(out, Contribution{Host: h, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out, nil
}

// ASCount pairs an AS with the number of default paths and best alternate
// paths in which it appears (Figure 14's scatterplot).
type ASCount struct {
	AS        topology.ASN
	Direct    int
	Alternate int
}

// ASAppearances counts, for each AS observed in any traceroute, how many
// default paths and how many best-alternate paths (for the given metric)
// traverse it. An alternate path traverses the union of the ASes of its
// constituent measured hops.
func (a *Analyzer) ASAppearances(metric Metric, maxVia int) ([]ASCount, error) {
	rs, err := a.Query(QuerySpec{Metric: metric, MaxVia: maxVia})
	if err != nil {
		return nil, err
	}
	results := rs.PairResults()
	direct := map[topology.ASN]int{}
	alt := map[topology.ASN]int{}
	asesOf := func(k dataset.PairKey) []topology.ASN {
		p := a.ds.Paths[k]
		if p == nil {
			return nil
		}
		return p.ASPath
	}
	for _, r := range results {
		seen := map[topology.ASN]bool{}
		for _, asn := range asesOf(r.Key) {
			if !seen[asn] {
				seen[asn] = true
				direct[asn]++
			}
		}
		// The alternate path's hops: src->via1->...->dst.
		hopEnds := append([]topology.HostID{r.Key.Src}, r.Via...)
		hopEnds = append(hopEnds, r.Key.Dst)
		seenAlt := map[topology.ASN]bool{}
		for i := 0; i+1 < len(hopEnds); i++ {
			k := dataset.PairKey{Src: hopEnds[i], Dst: hopEnds[i+1]}
			for _, asn := range asesOf(k) {
				if !seenAlt[asn] {
					seenAlt[asn] = true
					alt[asn]++
				}
			}
		}
	}
	all := map[topology.ASN]bool{}
	for asn := range direct {
		all[asn] = true
	}
	for asn := range alt {
		all[asn] = true
	}
	out := make([]ASCount, 0, len(all))
	for asn := range all {
		out = append(out, ASCount{AS: asn, Direct: direct[asn], Alternate: alt[asn]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out, nil
}

// DelayGroup is the paper's six-way classification of the scatterplot in
// Figure 16, by sign of the mean-latency difference and its relationship
// to the propagation-delay difference.
type DelayGroup int

const (
	// GroupUnclassified is returned for points on a boundary.
	GroupUnclassified DelayGroup = iota
	// Group1: alternate superior; better in both queuing and propagation.
	Group1
	// Group2: alternate superior; propagation difference exceeds the
	// total difference (queuing is worse along the alternate).
	Group2
	// Group3: alternate superior in mean but with worse propagation
	// (wins entirely by avoiding congestion... for default-superior
	// side; see paper). Points here have opposite-sign propagation.
	Group3
	// Group4: default superior; better in both components.
	Group4
	// Group5: default superior; propagation difference exceeds total.
	Group5
	// Group6: default superior in mean but alternate has better
	// propagation — the superior (default) path has much smaller
	// queuing delay.
	Group6
)

// DelayDecomposition is one pair's split of the round-trip difference
// into propagation and queuing components (Figure 16).
type DelayDecomposition struct {
	Key dataset.PairKey
	// TotalDiff is default mean RTT minus best-alternate mean RTT (x
	// axis; positive = alternate superior).
	TotalDiff float64
	// PropDiff is default propagation estimate minus the alternate's
	// composed propagation estimate (y axis).
	PropDiff float64
	Group    DelayGroup
}

// QueueDiff is the queuing component: total minus propagation.
func (d DelayDecomposition) QueueDiff() float64 { return d.TotalDiff - d.PropDiff }

// classifyDelay assigns the paper's six groups. x is the total mean
// difference, y the propagation difference; the sextants are delimited by
// the two axes and the line y = x.
func classifyDelay(x, y float64) DelayGroup {
	switch {
	case x > 0 && y > 0 && y <= x:
		return Group1 // alternate better in both; prop gain <= total gain
	case x > 0 && y > x:
		return Group2 // prop gain exceeds total: queuing worse on alternate
	case x > 0 && y <= 0:
		return Group6 // alternate better despite worse/equal propagation
	case x < 0 && y < 0 && y >= x:
		return Group4 // default better in both
	case x < 0 && y < x:
		return Group5 // prop deficit exceeds total: queuing better on alternate
	case x < 0 && y >= 0:
		return Group3 // default better despite worse/equal propagation
	default:
		return GroupUnclassified
	}
}

// DecomposeDelay selects best alternates by mean RTT, then splits each
// pair's difference into propagation (tenth-percentile) and queuing
// components (Section 7.2, Figure 16).
func (a *Analyzer) DecomposeDelay() ([]DelayDecomposition, error) {
	rs, err := a.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		return nil, err
	}
	results := rs.PairResults()
	prop := map[dataset.PairKey]float64{}
	for _, k := range a.ds.PairKeys() {
		if v, ok := a.ds.PropagationDelay(k, PropagationQuantile); ok {
			prop[k] = v
		}
	}
	var out []DelayDecomposition
	for _, r := range results {
		defProp, ok := prop[r.Key]
		if !ok {
			continue
		}
		hopEnds := append([]topology.HostID{r.Key.Src}, r.Via...)
		hopEnds = append(hopEnds, r.Key.Dst)
		altProp := 0.0
		missing := false
		for i := 0; i+1 < len(hopEnds); i++ {
			v, ok := prop[dataset.PairKey{Src: hopEnds[i], Dst: hopEnds[i+1]}]
			if !ok {
				missing = true
				break
			}
			altProp += v
		}
		if missing {
			continue
		}
		d := DelayDecomposition{
			Key:       r.Key,
			TotalDiff: r.Improvement(),
			PropDiff:  defProp - altProp,
		}
		d.Group = classifyDelay(d.TotalDiff, d.PropDiff)
		out = append(out, d)
	}
	return out, nil
}

// GroupCensus counts decomposition points per group.
func GroupCensus(ds []DelayDecomposition) map[DelayGroup]int {
	out := map[DelayGroup]int{}
	for _, d := range ds {
		out[d.Group]++
	}
	return out
}

// CrossMetricResult judges an alternate selected under one metric by a
// different metric: does the RTT-best detour also improve loss? The
// paper selects alternates "according to a different metric in each
// graph" and never crosses them; overlay systems must, because they
// route one flow and care about every property at once.
type CrossMetricResult struct {
	Key dataset.PairKey
	// SelectImprovement is the improvement under the selecting metric.
	SelectImprovement float64
	// JudgeImprovement is the same alternate's improvement under the
	// judging metric.
	JudgeImprovement float64
}

// CrossMetric selects best alternates with selectMetric and evaluates
// those same paths under judgeMetric. Pairs whose chosen alternate has
// an unmeasured hop under the judging metric are skipped.
func (a *Analyzer) CrossMetric(selectMetric, judgeMetric Metric, maxVia int) ([]CrossMetricResult, error) {
	if selectMetric == judgeMetric {
		return nil, fmt.Errorf("core: select and judge metrics are both %v", selectMetric)
	}
	selGraph, err := a.graphFor(selectMetric)
	if err != nil {
		return nil, err
	}
	judgeGraph, err := a.graphFor(judgeMetric)
	if err != nil {
		return nil, err
	}
	var out []CrossMetricResult
	for _, k := range a.ds.PairKeys() {
		si, ok1 := selGraph.index[k.Src]
		di, ok2 := selGraph.index[k.Dst]
		if !ok1 || !ok2 {
			continue
		}
		selDirect, found := selGraph.directEdge(si, di)
		if !found {
			continue
		}
		judgeDirect, found := judgeGraph.directEdge(si, di)
		if !found {
			continue
		}
		path, found := selGraph.shortestAlternate(si, di, maxVia, nil)
		if !found {
			continue
		}
		selValue, _, err := selGraph.composePath(selectMetric, path)
		if err != nil {
			return nil, err
		}
		judgeValue, _, err := judgeGraph.composePath(judgeMetric, path)
		if err != nil {
			continue // a hop lacks judge-metric measurements
		}
		out = append(out, CrossMetricResult{
			Key:               k,
			SelectImprovement: selDirect.value - selValue,
			JudgeImprovement:  judgeDirect.value - judgeValue,
		})
	}
	return out, nil
}
