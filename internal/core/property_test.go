package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsel/internal/dataset"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// randomDataset builds a random measurement graph from a quick-generated
// seed; helper for the property tests below.
func randomDataset(seed int64, n int, density float64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	hosts := make([]topology.HostID, n)
	for i := range hosts {
		hosts[i] = topology.HostID(i)
	}
	ds := dataset.New("prop", hosts)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() > density {
				continue
			}
			addRTT(ds, i, j, 1+math.Floor(rng.Float64()*200))
			// Give the same pair a loss history too.
			k := dataset.PairKey{Src: topology.HostID(i), Dst: topology.HostID(j)}
			lossN := 20
			lost := rng.Intn(5)
			for s := 0; s < lossN; s++ {
				isLost := s < lost
				ds.RecordEcho(k, 1000, []float64{5}, []bool{isLost}, nil, 1)
			}
		}
	}
	return ds
}

// TestPropertyOneHopIsUpperBoundForUnrestricted: the unrestricted best
// alternate is never worse than the best one-hop alternate (superset of
// candidate paths).
func TestPropertyOneHopIsUpperBoundForUnrestricted(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomDataset(seed, 6, 0.6)
		a := NewAnalyzer(ds)
		oneHop, err := a.BestAlternates(MetricRTT, 1)
		if err != nil {
			return false
		}
		unrestricted, err := a.BestAlternates(MetricRTT, 0)
		if err != nil {
			return false
		}
		byKey := map[dataset.PairKey]float64{}
		for _, r := range unrestricted {
			byKey[r.Key] = r.AltValue
		}
		for _, r := range oneHop {
			u, ok := byKey[r.Key]
			if !ok {
				// Unrestricted search must find at least everything
				// one-hop finds.
				return false
			}
			if u > r.AltValue+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLossValuesAreProbabilities: composed loss along any best
// alternate stays within [0, 1] and improvement never exceeds the
// default loss rate.
func TestPropertyLossValuesAreProbabilities(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomDataset(seed, 6, 0.6)
		a := NewAnalyzer(ds)
		results, err := a.BestAlternates(MetricLoss, 0)
		if err != nil {
			return false
		}
		for _, r := range results {
			if r.AltValue < 0 || r.AltValue > 1 {
				return false
			}
			if r.DefaultValue < 0 || r.DefaultValue > 1 {
				return false
			}
			if r.Improvement() > r.DefaultValue+1e-12 {
				return false // cannot improve by more than the whole loss
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAlternateNeverUsesDirectEdge: the best alternate's relay
// list is nonempty — it never degenerates to the direct path.
func TestPropertyAlternateNeverUsesDirectEdge(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomDataset(seed, 7, 0.5)
		a := NewAnalyzer(ds)
		for _, metric := range []Metric{MetricRTT, MetricLoss, MetricPropDelay} {
			results, err := a.BestAlternates(metric, 0)
			if err != nil {
				return false
			}
			for _, r := range results {
				if len(r.Via) == 0 {
					return false
				}
				for _, v := range r.Via {
					if v == r.Key.Src || v == r.Key.Dst {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVerdictsPartition: the four verdict classes always
// partition the result set.
func TestPropertyVerdictsPartition(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomDataset(seed, 6, 0.6)
		a := NewAnalyzer(ds)
		results, err := a.BestAlternates(MetricRTT, 0)
		if err != nil {
			return false
		}
		v := ClassifyVerdicts(results, 0.95)
		return v.Total() == len(results) &&
			v.Better >= 0 && v.Worse >= 0 && v.Indeterminate >= 0 && v.BothZero >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEpisodeBestIsMinimal: within an episode, the reported best
// alternate for a pair is at most the cost through any specific relay.
func TestPropertyEpisodeBestIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 5
		hosts := make([]topology.HostID, n)
		for i := range hosts {
			hosts[i] = topology.HostID(i)
		}
		ds := dataset.New("ep", hosts)
		ep := &dataset.Episode{At: 0, RTTMs: map[dataset.PairKey]float64{}}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.2 {
					continue
				}
				ep.RTTMs[dataset.PairKey{Src: hosts[i], Dst: hosts[j]}] = 1 + rng.Float64()*100
			}
		}
		ds.AddEpisode(ep)
		res, err := NewAnalyzer(ds).AnalyzeEpisodes()
		if err != nil {
			// No pair had an alternate; acceptable for sparse draws.
			return true
		}
		// Reconstruct: for each pair with direct+relay coverage, the
		// unaveraged diff must be >= direct - (via relay cost) for every
		// relay (the best alternate is minimal, so diff is maximal).
		idx := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				k := dataset.PairKey{Src: hosts[i], Dst: hosts[j]}
				direct, ok := ep.RTTMs[k]
				if !ok {
					continue
				}
				// Does any alternate (of any length) exist? BFS over the
				// episode's edges, forbidding the direct hop.
				if !altReachable(ep, hosts, i, j) {
					continue
				}
				// Best one-hop relay cost, if any (infinity otherwise).
				bestRelayCost := math.Inf(1)
				for r := 0; r < n; r++ {
					if r == i || r == j {
						continue
					}
					c1, ok1 := ep.RTTMs[dataset.PairKey{Src: hosts[i], Dst: hosts[r]}]
					c2, ok2 := ep.RTTMs[dataset.PairKey{Src: hosts[r], Dst: hosts[j]}]
					if ok1 && ok2 && c1+c2 < bestRelayCost {
						bestRelayCost = c1 + c2
					}
				}
				if idx >= len(res.Unaveraged) {
					return false
				}
				diff := res.Unaveraged[idx]
				idx++
				// The best alternate can use longer chains, so it is at
				// least as good as the best one-hop relay.
				if diff < direct-bestRelayCost-1e-9 {
					return false
				}
			}
		}
		return idx == len(res.Unaveraged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySumSummariesNeverShrinksVariance: composing hop summaries
// produces a squared standard error equal to the sum of the parts'.
func TestPropertyComposedSEMatchesParts(t *testing.T) {
	f := func(m1, m2 float64, v1, v2 uint8) bool {
		if math.IsNaN(m1) || math.IsNaN(m2) {
			return true
		}
		a := stats.Summary{N: 10, Mean: m1, Var: float64(v1)}
		b := stats.Summary{N: 20, Mean: m2, Var: float64(v2)}
		sum := stats.SumSummaries(a, b)
		want := a.SE2() + b.SE2()
		return math.Abs(sum.SE2()-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// altReachable reports whether dst is reachable from src over the
// episode's edges without using the direct src->dst edge.
func altReachable(ep *dataset.Episode, hosts []topology.HostID, src, dst int) bool {
	n := len(hosts)
	seen := make([]bool, n)
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if seen[v] || v == u {
				continue
			}
			if u == src && v == dst {
				continue // forbidden direct edge
			}
			if _, ok := ep.RTTMs[dataset.PairKey{Src: hosts[u], Dst: hosts[v]}]; !ok {
				continue
			}
			if v == dst {
				return true
			}
			seen[v] = true
			queue = append(queue, v)
		}
	}
	return false
}
