package core

import "math"

// This file implements the k-shortest-alternates search: Yen's
// algorithm specialized to the measurement graph's "alternate path"
// semantics (a candidate may never be the bare direct src->dst edge)
// and to its pooled scratch machinery. The crucial fit is the spur
// step: every edge Yen bans while searching from a spur node
// originates *at that spur node*, which is also the sub-search's
// source — so the engine's banned-first-hop mask (searchScratch.banTo,
// the generalization of the old hard-coded direct-edge ban) expresses
// all of Yen's deviation constraints with zero overhead for the
// ordinary single-path searches. ALT landmark pruning stays admissible
// throughout: bans and root exclusions only remove options, and
// restricting a graph never shrinks a distance (see landmarks.go).

// yenState is the per-worker reusable state of the k-alternates
// search: the root-exclusion mask (base query exclusions plus the
// current root path's interior), undo lists for mask entries, and the
// candidate pool. One yenState serves many pairs; everything is reset
// by bookkeeping, never reallocated.
type yenState struct {
	excl   []bool // base exclusions ∪ current root vertices
	marked []int  // root vertices to unmark after the spur loop
	banned []int  // banTo entries to clear after one spur search
	cands  []yenCand
}

// yenCand is one pending deviation path.
type yenCand struct {
	path   []int
	weight float64
}

// newYenState builds a worker's search state over an n-vertex graph,
// seeding the exclusion mask from the query's exclusions (nil = none).
func newYenState(n int, excluded []bool) *yenState {
	y := &yenState{excl: make([]bool, n)}
	copy(y.excl, excluded)
	return y
}

// candLess orders candidates by (weight, length, lexicographic hops),
// a total deterministic order.
func candLess(a, b yenCand) bool {
	//repolint:allow floateq -- deterministic tie-break: equal weights fall through to length and hop order
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	if len(a.path) != len(b.path) {
		return len(a.path) < len(b.path)
	}
	for i := range a.path {
		if a.path[i] != b.path[i] {
			return a.path[i] < b.path[i]
		}
	}
	return false
}

// samePath reports vertex-sequence equality.
func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spurSearch finds the minimum-weight path sp->dst honoring the
// scratch's banTo mask (forbidden first hops out of sp) and the
// exclusion mask, with at most r intermediate vertices (r < 0 =
// unlimited). Unlike shortestAlternateInto it permits the direct
// sp->dst edge unless banTo[dst] is set — a spur path that ends a
// longer root is not the pair's direct path.
//
//repolint:hotpath
func (g *graph) spurSearch(s *searchScratch, sp, dst, r int, excluded []bool) (path []int, ok bool) {
	switch {
	case r == 0:
		if s.banTo[dst] {
			return nil, false
		}
		if _, found := g.directEdge(sp, dst); !found {
			return nil, false
		}
		//repolint:allow hotalloc -- the spur path escapes into the candidate set: one slice per accepted spur
		return []int{sp, dst}, true
	case r > 0:
		return g.boundedAlternate(sp, dst, r, excluded, s)
	default:
		return g.dijkstraAlternate(sp, dst, excluded, s)
	}
}

// kAlternatesInto returns up to k alternate paths src->dst in
// ascending (weight, length, lex) candidate order, each a fresh vertex
// slice including both endpoints. The first path is exactly the one
// shortestAlternateInto finds, so a k=1 query degenerates to the
// legacy single-best search; subsequent paths are Yen deviations: for
// each spur position along the latest accepted path, the root's
// interior is excluded, the next hop of every accepted path sharing
// the root is banned, and the remaining maxVia budget bounds the spur.
// No duplicates are produced (bans rule out re-deriving accepted
// paths; pending candidates are deduplicated on insert). maxVia == 0
// means unlimited; excluded must be the mask y was built with.
func (g *graph) kAlternatesInto(s *searchScratch, y *yenState, src, dst, k, maxVia int) [][]int {
	first, ok := g.shortestAlternateInto(s, src, dst, maxVia, y.excl)
	if !ok || k < 1 {
		return nil
	}
	accepted := make([][]int, 0, k)
	accepted = append(accepted, first)
	cands := y.cands[:0]
	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		for i := 0; i+1 < len(prev); i++ {
			if i > 0 {
				// prev[i-1] joins the root: the spur must not revisit it.
				if v := prev[i-1]; !y.excl[v] {
					y.excl[v] = true
					y.marked = append(y.marked, v)
				}
			}
			r := -1 // unlimited
			if maxVia > 0 {
				if r = maxVia - i; r < 0 {
					continue
				}
			}
			sp := prev[i]
			// Ban the deviation edges: the next hop of every accepted
			// path that shares this root, plus — when spurring from the
			// source itself — the direct edge, which no alternate may be.
			for _, p := range accepted {
				if len(p) > i+1 && samePath(p[:i+1], prev[:i+1]) {
					if v := p[i+1]; !s.banTo[v] {
						s.banTo[v] = true
						y.banned = append(y.banned, v)
					}
				}
			}
			if i == 0 && !s.banTo[dst] {
				s.banTo[dst] = true
				y.banned = append(y.banned, dst)
			}
			spur, found := g.spurSearch(s, sp, dst, r, y.excl)
			for _, v := range y.banned {
				s.banTo[v] = false
			}
			y.banned = y.banned[:0]
			if !found {
				continue
			}
			total := make([]int, 0, i+len(spur))
			total = append(total, prev[:i]...)
			total = append(total, spur...)
			cands = addYenCandidate(g, cands, accepted, total)
		}
		for _, v := range y.marked {
			y.excl[v] = false
		}
		y.marked = y.marked[:0]
		if len(cands) == 0 {
			break
		}
		bi := 0
		for i := 1; i < len(cands); i++ {
			if candLess(cands[i], cands[bi]) {
				bi = i
			}
		}
		accepted = append(accepted, cands[bi].path)
		cands = append(cands[:bi], cands[bi+1:]...)
	}
	y.cands = cands[:0] // keep capacity, drop leftover candidates
	return accepted
}

// addYenCandidate appends a deviation path unless it duplicates an
// accepted path or a pending candidate.
func addYenCandidate(g *graph, cands []yenCand, accepted [][]int, path []int) []yenCand {
	for _, p := range accepted {
		if samePath(p, path) {
			return cands
		}
	}
	for _, c := range cands {
		if samePath(c.path, path) {
			return cands
		}
	}
	w := g.pathWeight(path)
	if math.IsInf(w, 1) {
		return cands
	}
	return append(cands, yenCand{path: path, weight: w})
}
