package core

import (
	"math/rand"
	"reflect"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/topology"
)

// These tests lock the CSR graph against the previous dense-table /
// sparse-map implementation, preserved verbatim in
// oldgraph_fixture_test.go. Both engines must report identical edges,
// identical alternate paths (bitwise, not just equal cost), and
// identical composed values for every metric, across sizes straddling
// both the scan/heap switch (512) and the old dense/sparse boundary
// (2048).

// hostIndexOf builds the host -> vertex index both constructors expect.
func hostIndexOf(hosts []topology.HostID) map[topology.HostID]int {
	index := make(map[topology.HostID]int, len(hosts))
	for i, h := range hosts {
		index[h] = i
	}
	return index
}

// stageRandom stages up to m random directed edges (no self-loops, no
// duplicate pairs — production staging iterates unique pair keys, and
// the old engine was itself inconsistent about parallel edges) into
// both graphs in identical order. Weights are positive and
// value == weight, so composed costs are comparable under every metric.
func stageRandom(rng *rand.Rand, g *graph, og *oldGraph, n, m int) {
	seen := make(map[int64]bool, m)
	for i := 0; i < m; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		key := int64(src)<<32 | int64(dst)
		if seen[key] {
			continue
		}
		seen[key] = true
		w := 1 + rng.Float64()*99
		g.addEdge(src, edge{to: dst, weight: w, value: w})
		og.addEdge(src, edge{to: dst, weight: w, value: w})
	}
}

// comparePair checks one (src, dst, maxVia, excluded) query on both
// engines: same found flag, bitwise-identical path, and identical
// composed value and summary under every metric.
func comparePair(t *testing.T, g *graph, og *oldGraph, src, dst, maxVia int, excluded []bool) {
	t.Helper()
	path, ok := g.shortestAlternate(src, dst, maxVia, excluded)
	oldPath, oldOK := og.shortestAlternate(src, dst, maxVia, excluded)
	if ok != oldOK {
		t.Fatalf("pair %d->%d maxVia=%d: found=%v, old found=%v", src, dst, maxVia, ok, oldOK)
	}
	if !ok {
		return
	}
	if !reflect.DeepEqual(path, oldPath) {
		t.Fatalf("pair %d->%d maxVia=%d: path %v, old path %v", src, dst, maxVia, path, oldPath)
	}
	for _, metric := range []Metric{MetricRTT, MetricLoss, MetricPropDelay} {
		v, sum, err := g.composePath(metric, path)
		ov, osum, oerr := og.composePath(metric, oldPath)
		if (err == nil) != (oerr == nil) {
			t.Fatalf("pair %d->%d %v: compose err %v, old %v", src, dst, metric, err, oerr)
		}
		if err != nil {
			continue
		}
		if v != ov || !reflect.DeepEqual(sum, osum) {
			t.Fatalf("pair %d->%d %v: composed %v/%+v, old %v/%+v", src, dst, metric, v, sum, ov, osum)
		}
	}
}

// TestDifferentialStagedSizes cross-checks the engines on random staged
// graphs at sizes below the scan/heap switch, between it and the old
// dense/sparse boundary, and above that boundary.
func TestDifferentialStagedSizes(t *testing.T) {
	sizes := []struct {
		n, m, pairs int
	}{
		{48, 48 * 6, 300},    // scan path, old dense table
		{600, 600 * 6, 120},  // heap path, old dense table
		{2100, 2100 * 6, 60}, // heap path, old sparse map
	}
	for _, sz := range sizes {
		rng := rand.New(rand.NewSource(int64(sz.n)))
		hosts := hostIDs(sz.n)
		g := newGraph(hosts, hostIndexOf(hosts))
		og := newOldGraph(hosts, hostIndexOf(hosts))
		stageRandom(rng, g, og, sz.n, sz.m)

		// directEdge agrees for every staged pair plus random misses.
		for k := 0; k < 500; k++ {
			src, dst := rng.Intn(sz.n), rng.Intn(sz.n)
			e, ok := g.directEdge(src, dst)
			oe, ook := og.directEdge(src, dst)
			if ok != ook || e != oe {
				t.Fatalf("n=%d directEdge(%d,%d): %+v/%v old %+v/%v", sz.n, src, dst, e, ok, oe, ook)
			}
		}

		for k := 0; k < sz.pairs; k++ {
			src, dst := rng.Intn(sz.n), rng.Intn(sz.n)
			if src == dst {
				continue
			}
			for _, maxVia := range []int{0, 1, 2} {
				comparePair(t, g, og, src, dst, maxVia, nil)
			}
			// Sampled exclusions: knock out a handful of random
			// vertices and require identical behavior.
			excluded := make([]bool, sz.n)
			for x := 0; x < 5; x++ {
				excluded[rng.Intn(sz.n)] = true
			}
			excluded[src], excluded[dst] = false, false
			comparePair(t, g, og, src, dst, 0, excluded)
			comparePair(t, g, og, src, dst, 2, excluded)
		}
	}
}

// TestDifferentialDatasetBuild cross-checks the full build path —
// buildGraph versus buildOldGraph from one measured dataset — for every
// metric, including summaries carried on the edges.
func TestDifferentialDatasetBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 40
	ds := dataset.New("diff", hostIDs(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() < 0.5 {
				continue
			}
			base := 5 + rng.Float64()*80
			addRTT(ds, i, j, base, base*1.1, base*0.95)
			if rng.Float64() < 0.3 {
				addLoss(ds, i, j, 1+rng.Intn(3), 10)
			}
		}
	}
	for _, metric := range []Metric{MetricRTT, MetricLoss, MetricPropDelay} {
		g, err := buildGraph(ds, metric)
		if err != nil {
			t.Fatal(err)
		}
		og, err := buildOldGraph(ds, metric)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				e, ok := g.directEdge(i, j)
				oe, ook := og.directEdge(i, j)
				if ok != ook || e != oe {
					t.Fatalf("%v directEdge(%d,%d): %+v/%v old %+v/%v", metric, i, j, e, ok, oe, ook)
				}
			}
		}
		for k := 0; k < 400; k++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			for _, maxVia := range []int{0, 1, 2} {
				comparePair(t, g, og, src, dst, maxVia, nil)
			}
		}
	}
}
