package core

import (
	"math"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/topology"
)

func TestBestAlternatesRTT(t *testing.T) {
	ds := dataset.New("x", hostIDs(3))
	addRTT(ds, 0, 1, 100, 102, 98)
	addRTT(ds, 1, 0, 100, 100)
	addRTT(ds, 0, 2, 20, 22, 18)
	addRTT(ds, 2, 1, 20, 21, 19)
	a := NewAnalyzer(ds)
	results, err := a.BestAlternates(MetricRTT, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs with an alternate: only 0->1 (others lack alternates).
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1: %+v", len(results), results)
	}
	r := results[0]
	if r.Key != (dataset.PairKey{Src: 0, Dst: 1}) {
		t.Fatalf("key %v", r.Key)
	}
	if math.Abs(r.DefaultValue-100) > 1e-9 || math.Abs(r.AltValue-40) > 1e-9 {
		t.Errorf("default %f alt %f", r.DefaultValue, r.AltValue)
	}
	if math.Abs(r.Improvement()-60) > 1e-9 {
		t.Errorf("improvement %f", r.Improvement())
	}
	if math.Abs(r.Ratio()-2.5) > 1e-9 {
		t.Errorf("ratio %f", r.Ratio())
	}
	if len(r.Via) != 1 || r.Via[0] != 2 {
		t.Errorf("via %v", r.Via)
	}
	if r.Alternate.SE2() <= 0 {
		t.Error("alternate summary should carry variance")
	}
}

func TestBestAlternatesLossComposition(t *testing.T) {
	ds := dataset.New("x", hostIDs(3))
	addLoss(ds, 0, 1, 20, 100) // 20%
	addLoss(ds, 0, 2, 5, 100)  // 5%
	addLoss(ds, 2, 1, 5, 100)  // 5%
	a := NewAnalyzer(ds)
	results, err := a.BestAlternates(MetricLoss, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	want := 1 - 0.95*0.95
	if math.Abs(r.AltValue-want) > 1e-9 {
		t.Errorf("alt loss %f, want %f", r.AltValue, want)
	}
	if r.Improvement() <= 0 {
		t.Error("alternate should be better")
	}
}

func TestBestAlternatesWorseAlternate(t *testing.T) {
	// The only alternate is worse than the default: improvement < 0 but
	// the result is still reported (the CDF's negative side).
	ds := dataset.New("x", hostIDs(3))
	addRTT(ds, 0, 1, 10)
	addRTT(ds, 0, 2, 50)
	addRTT(ds, 2, 1, 50)
	a := NewAnalyzer(ds)
	results, err := a.BestAlternates(MetricRTT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Improvement() >= 0 {
		t.Fatalf("expected one negative-improvement result, got %+v", results)
	}
}

func TestImprovementAndRatioCDF(t *testing.T) {
	results := []PairResult{
		{DefaultValue: 100, AltValue: 50},
		{DefaultValue: 100, AltValue: 150},
		{DefaultValue: 60, AltValue: 60},
	}
	c := ImprovementCDF(results)
	if c.N() != 3 {
		t.Fatalf("N=%d", c.N())
	}
	// FractionBelow is P(X <= x): the -50 and 0 improvements count.
	if f := c.FractionBelow(0); math.Abs(f-2.0/3.0) > 1e-9 {
		t.Errorf("fraction at or below 0 = %f", f)
	}
	rc := RatioCDF(results)
	if rc.N() != 3 {
		t.Fatalf("ratio N=%d", rc.N())
	}
	if f := rc.FractionAbove(1.5); math.Abs(f-1.0/3.0) > 1e-9 {
		t.Errorf("ratio fraction above 1.5 = %f", f)
	}
	// Infinite ratios are excluded.
	rc2 := RatioCDF([]PairResult{{DefaultValue: 5, AltValue: 0}})
	if rc2.N() != 0 {
		t.Error("infinite ratio should be dropped")
	}
}

func addTransfer(ds *dataset.Dataset, src, dst int, rtt, loss float64) {
	k := dataset.PairKey{Src: topology.HostID(src), Dst: topology.HostID(dst)}
	ds.RecordTransfer(k, dataset.TransferSample{At: 0, MeanRTTMs: rtt, LossRate: loss, Packets: 100})
}

func TestBestBandwidthAlternates(t *testing.T) {
	ds := dataset.New("n2", hostIDs(3))
	addTransfer(ds, 0, 1, 200, 0.04) // slow lossy default
	addTransfer(ds, 0, 2, 50, 0.01)
	addTransfer(ds, 2, 1, 50, 0.01)
	a := NewAnalyzer(ds)
	model := tcpmodel.Default()

	for _, mode := range []BandwidthMode{Optimistic, Pessimistic} {
		results, err := a.BestBandwidthAlternates(model, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 {
			t.Fatalf("%v: got %d results", mode, len(results))
		}
		r := results[0]
		if r.Via != 2 {
			t.Errorf("%v: via %d", mode, r.Via)
		}
		defBW, _ := model.BandwidthKBs(200, 0.04)
		if math.Abs(r.DefaultKBs-defBW) > 1e-9 {
			t.Errorf("%v: default %f, want %f", mode, r.DefaultKBs, defBW)
		}
		var wantLoss float64
		if mode == Optimistic {
			wantLoss = 0.01
		} else {
			wantLoss = 1 - 0.99*0.99
		}
		altBW, _ := model.BandwidthKBs(100, wantLoss)
		if math.Abs(r.AltKBs-altBW) > 1e-9 {
			t.Errorf("%v: alt %f, want %f", mode, r.AltKBs, altBW)
		}
		if r.Improvement() <= 0 || r.Ratio() <= 1 {
			t.Errorf("%v: alternate should win: %+v", mode, r)
		}
	}
}

func TestOptimisticAtLeastPessimistic(t *testing.T) {
	// The optimistic composition never has more loss than the
	// pessimistic one, so its bandwidth is at least as high.
	ds := dataset.New("n2", hostIDs(4))
	addTransfer(ds, 0, 1, 120, 0.03)
	addTransfer(ds, 0, 2, 60, 0.02)
	addTransfer(ds, 2, 1, 70, 0.025)
	addTransfer(ds, 0, 3, 40, 0.01)
	addTransfer(ds, 3, 1, 90, 0.04)
	a := NewAnalyzer(ds)
	model := tcpmodel.Default()
	opt, err := a.BestBandwidthAlternates(model, Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	pess, err := a.BestBandwidthAlternates(model, Pessimistic)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != len(pess) {
		t.Fatalf("result lengths differ")
	}
	for i := range opt {
		if opt[i].AltKBs < pess[i].AltKBs-1e-9 {
			t.Errorf("optimistic %f below pessimistic %f", opt[i].AltKBs, pess[i].AltKBs)
		}
	}
}

func TestBandwidthModeString(t *testing.T) {
	if Optimistic.String() != "optimistic" || Pessimistic.String() != "pessimistic" {
		t.Error("mode strings wrong")
	}
	if BandwidthMode(5).String() != "mode(5)" {
		t.Error("unknown mode string wrong")
	}
}

func TestBestMedianAlternates(t *testing.T) {
	ds := dataset.New("x", hostIDs(3))
	// Symmetric-ish distributions: mean and median should agree well.
	addRTT(ds, 0, 1, 95, 100, 105, 98, 102)
	addRTT(ds, 0, 2, 18, 20, 22)
	addRTT(ds, 2, 1, 19, 20, 21)
	a := NewAnalyzer(ds)
	results, err := a.BestMedianAlternates()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if math.Abs(r.MeanImprovement-60) > 1e-9 {
		t.Errorf("mean improvement %f, want 60", r.MeanImprovement)
	}
	if math.Abs(r.MedianImprovement-60) > 2 {
		t.Errorf("median improvement %f, want ~60", r.MedianImprovement)
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	// A single huge outlier on the default path skews the mean but not
	// the median: the two columns must diverge.
	ds := dataset.New("x", hostIDs(3))
	addRTT(ds, 0, 1, 50, 50, 50, 50, 5000)
	addRTT(ds, 0, 2, 30, 30, 30)
	addRTT(ds, 2, 1, 30, 30, 30)
	a := NewAnalyzer(ds)
	results, err := a.BestMedianAlternates()
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	// Mean default = 1040 -> improvement 980. Median default = 50 ->
	// improvement -10 (alternate worse by median).
	if r.MeanImprovement < 900 {
		t.Errorf("mean improvement %f, want ~980", r.MeanImprovement)
	}
	if r.MedianImprovement > 0 {
		t.Errorf("median improvement %f, want negative", r.MedianImprovement)
	}
}

func TestAnalyzeEpisodes(t *testing.T) {
	ds := dataset.New("uw4a", hostIDs(3))
	k01 := dataset.PairKey{Src: 0, Dst: 1}
	k02 := dataset.PairKey{Src: 0, Dst: 2}
	k21 := dataset.PairKey{Src: 2, Dst: 1}
	// Episode 1: alternate 0->2->1 = 30 vs default 100: diff 70.
	ds.AddEpisode(&dataset.Episode{At: 0, RTTMs: map[dataset.PairKey]float64{
		k01: 100, k02: 15, k21: 15,
	}})
	// Episode 2: alternate = 130 vs default 100: diff -30.
	ds.AddEpisode(&dataset.Episode{At: 1000, RTTMs: map[dataset.PairKey]float64{
		k01: 100, k02: 65, k21: 65,
	}})
	a := NewAnalyzer(ds)
	res, err := a.AnalyzeEpisodes()
	if err != nil {
		t.Fatal(err)
	}
	// Only pair 0->1 has alternates in both episodes.
	if len(res.Unaveraged) != 2 {
		t.Fatalf("unaveraged %v", res.Unaveraged)
	}
	if len(res.PairAveraged) != 1 {
		t.Fatalf("pairAveraged %v", res.PairAveraged)
	}
	if math.Abs(res.PairAveraged[0]-20) > 1e-9 { // (70 + -30)/2
		t.Errorf("pair average %f, want 20", res.PairAveraged[0])
	}
	seen := map[float64]bool{}
	for _, v := range res.Unaveraged {
		seen[math.Round(v)] = true
	}
	if !seen[70] || !seen[-30] {
		t.Errorf("unaveraged %v, want {70,-30}", res.Unaveraged)
	}
}

func TestAnalyzeEpisodesEmpty(t *testing.T) {
	ds := dataset.New("x", hostIDs(2))
	if _, err := NewAnalyzer(ds).AnalyzeEpisodes(); err == nil {
		t.Error("no episodes should error")
	}
}

func TestBestAlternatesDeterministic(t *testing.T) {
	ds := dataset.New("x", hostIDs(5))
	vals := []struct{ s, d, v int }{
		{0, 1, 50}, {0, 2, 10}, {2, 1, 10}, {0, 3, 20}, {3, 1, 20},
		{1, 0, 50}, {2, 0, 10}, {1, 2, 10}, {4, 1, 5}, {0, 4, 5},
	}
	for _, e := range vals {
		addRTT(ds, e.s, e.d, float64(e.v))
	}
	a := NewAnalyzer(ds)
	r1, err := a.BestAlternates(MetricRTT, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.BestAlternates(MetricRTT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("nondeterministic result count")
	}
	for i := range r1 {
		if r1[i].Key != r2[i].Key || r1[i].AltValue != r2[i].AltValue {
			t.Fatalf("nondeterministic result %d", i)
		}
	}
}

func TestEpisodeRelayChurn(t *testing.T) {
	ds := dataset.New("churn", hostIDs(4))
	k01 := dataset.PairKey{Src: 0, Dst: 1}
	k02 := dataset.PairKey{Src: 0, Dst: 2}
	k21 := dataset.PairKey{Src: 2, Dst: 1}
	k03 := dataset.PairKey{Src: 0, Dst: 3}
	k31 := dataset.PairKey{Src: 3, Dst: 1}
	// Episode 1: relay 2 best; episode 2: relay 3 best; episode 3: relay 2.
	ds.AddEpisode(&dataset.Episode{At: 0, RTTMs: map[dataset.PairKey]float64{
		k01: 100, k02: 10, k21: 10, k03: 40, k31: 40,
	}})
	ds.AddEpisode(&dataset.Episode{At: 1, RTTMs: map[dataset.PairKey]float64{
		k01: 100, k02: 40, k21: 40, k03: 10, k31: 10,
	}})
	ds.AddEpisode(&dataset.Episode{At: 2, RTTMs: map[dataset.PairKey]float64{
		k01: 100, k02: 10, k21: 10, k03: 40, k31: 40,
	}})
	res, err := NewAnalyzer(ds).AnalyzeEpisodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RelayChurn) != 1 {
		t.Fatalf("churn entries %v", res.RelayChurn)
	}
	// Relay flips at both transitions: churn = 2/2 = 1.
	if math.Abs(res.RelayChurn[0]-1) > 1e-12 {
		t.Errorf("churn %f, want 1", res.RelayChurn[0])
	}
}
