package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(worker, i) for every i in [0, n), fanning the
// indices out across at most workers goroutines (clamped to n; one or
// fewer workers runs inline with no goroutines). Indices are handed out
// dynamically, so callers get determinism by writing only to slot i of
// pre-sized slices — never by relying on execution order — and by
// keying any mutable buffers off the worker number, which is unique per
// concurrently running goroutine. Errors are collected per index and
// the lowest-index error is returned, so the reported failure does not
// depend on scheduling either. Cancelling ctx stops handing out new
// indices and returns ctx's error; in-flight items finish first.
func parallelFor(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || ctx.Err() != nil {
					return
				}
				if err := fn(w, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// autoWorkers resolves a Concurrency knob: 0 means one worker per
// available CPU, anything positive is taken literally.
func autoWorkers(concurrency int) int {
	if concurrency > 0 {
		return concurrency
	}
	return runtime.GOMAXPROCS(0)
}
