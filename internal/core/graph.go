// Package core implements the paper's central methodology (Section 4.1):
// constructing a weighted graph whose vertices are measured hosts and
// whose edges are measured host-to-host paths, then — for every host pair
// — removing the direct edge and computing the best synthetic alternate
// path by composing the remaining measured paths. Alternate paths are
// compared with default paths per metric (round-trip time, loss rate,
// propagation delay, and Mathis-model bandwidth), with the robustness
// analyses of Section 6 (confidence-interval t-tests, median-by-
// convolution, simultaneous-episode analysis) and the hypothesis
// evaluations of Section 7 (host/AS influence, congestion vs. propagation
// decomposition).
//
// The alternate search is embarrassingly parallel across host pairs, and
// the engine exploits that: graphs pack their adjacency into CSR slabs
// with a binary-search edge index, each search borrows its working
// arrays from a pool (or a per-worker arena) instead of allocating,
// per-pair searches on large graphs prune with ALT landmark lower
// bounds, and the Analyzer shards pairs across a worker pool (see
// Analyzer.Concurrency). Output is bit-identical regardless of worker
// count.
package core

import (
	"fmt"
	"math"
	"sync"

	"pathsel/internal/csr"
	"pathsel/internal/dataset"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// Metric selects which path-quality measure drives the analysis.
type Metric int

const (
	// MetricRTT is mean round-trip time in ms (additive composition).
	MetricRTT Metric = iota
	// MetricLoss is mean loss rate (composed assuming independent hop
	// losses, as in the paper's Figure 3).
	MetricLoss
	// MetricPropDelay is the propagation-delay estimate: the tenth
	// percentile of round-trip samples (additive composition),
	// Section 7.2.
	MetricPropDelay
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricRTT:
		return "rtt"
	case MetricLoss:
		return "loss"
	case MetricPropDelay:
		return "propagation"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// PropagationQuantile is the RTT quantile used to estimate propagation
// delay ("we chose to take the tenth percentile rather than the actual
// minimum observation to protect against noise").
const PropagationQuantile = 0.10

// edge is a measured directed path usable as a hop of a synthetic
// alternate path.
type edge struct {
	to int // vertex index
	// weight is the additive Dijkstra cost: the mean itself for RTT and
	// propagation delay, -log(1-p) for loss.
	weight float64
	// value is the metric in natural units (ms or loss probability).
	value float64
	// summary carries mean and variance for confidence intervals.
	summary stats.Summary
}

// graph is the measurement graph for one metric, packed in compressed-
// sparse-row form: a shared offset/target index (see internal/csr) plus
// parallel weight/value/summary slabs, sorted by target within each row.
// One layout serves every size — the former dense O(n²) table and its
// per-lookup hash-map fallback are gone, and loss weights are computed
// once at staging time and stored in the slab, never recomputed at
// lookup.
//
// Edges are staged by addEdge and packed by freeze (idempotent; invoked
// by buildGraph and lazily by lookups). A frozen graph is read-only and
// safe for concurrent searches; freeze itself is not safe to race with
// searches, so concurrent users must build — or freeze — before fanning
// out, which every Analyzer entry point does.
type graph struct {
	hosts []topology.HostID
	index map[topology.HostID]int

	// Staged edges, consumed by freeze but retained so a reset graph
	// reuses their capacity (the episode analysis rebuilds one graph per
	// episode over a fixed host list).
	stageSrc []int32
	stageDst []int32
	stageWt  []float64
	stageVal []float64
	stageSum []stats.Summary

	frozen bool
	ix     csr.Index
	wt     []float64       // Dijkstra cost per slot
	val    []float64       // metric value in natural units per slot
	sum    []stats.Summary // per-slot summary
	perm   []int32         // freeze scratch, kept for reuse

	// Reverse adjacency over the same edges: rix rows are incoming
	// neighbors sorted by source, rwt the matching weights. The one-hop
	// and replay searches gather a destination's in-weights into a dense
	// per-scratch array through it, and the landmark builder runs its
	// reverse Dijkstras over it.
	rix   csr.Index
	rwt   []float64
	rperm []int32

	// scratch pools per-search working state (distance/predecessor arrays
	// and the priority queue) so searches allocate nothing proportional
	// to the graph.
	scratch sync.Pool

	// ALT landmark tables for goal-directed pruning of per-pair searches
	// on large graphs; built lazily by the first search that uses them.
	lmOnce sync.Once
	lm     *landmarks
}

// newGraph creates an empty graph over the given hosts. If index is nil
// a host-to-vertex index is built (hosts must then be duplicate-free);
// passing a prebuilt index lets callers share one across many graphs.
func newGraph(hosts []topology.HostID, index map[topology.HostID]int) *graph {
	if index == nil {
		index = make(map[topology.HostID]int, len(hosts))
		for i, h := range hosts {
			index[h] = i
		}
	}
	n := len(hosts)
	g := &graph{hosts: hosts, index: index}
	g.scratch.New = func() any { return newSearchScratch(n) }
	return g
}

// addEdge stages a directed edge for the next freeze. At most one edge
// may exist per (src, dst) pair.
func (g *graph) addEdge(src int, e edge) {
	g.stageSrc = append(g.stageSrc, int32(src))
	g.stageDst = append(g.stageDst, int32(e.to))
	g.stageWt = append(g.stageWt, e.weight)
	g.stageVal = append(g.stageVal, e.value)
	g.stageSum = append(g.stageSum, e.summary)
	g.frozen = false
}

// freeze packs the staged edges into the CSR slabs. Idempotent; called
// by buildGraph and lazily by the first lookup or search on a staged
// graph. Not safe to race with concurrent searches.
func (g *graph) freeze() {
	if g.frozen {
		return
	}
	m := len(g.stageSrc)
	g.perm = g.ix.Rebuild(len(g.hosts), g.stageSrc, g.stageDst, g.perm)
	g.wt = growFloats(g.wt, m)
	g.val = growFloats(g.val, m)
	g.sum = growSummaries(g.sum, m)
	for slot := 0; slot < m; slot++ {
		src := g.perm[slot]
		g.wt[slot] = g.stageWt[src]
		g.val[slot] = g.stageVal[src]
		g.sum[slot] = g.stageSum[src]
	}
	// The reverse index packs the same staged edges with the endpoints
	// swapped; only the weight payload is needed on that side.
	g.rperm = g.rix.Rebuild(len(g.hosts), g.stageDst, g.stageSrc, g.rperm)
	g.rwt = growFloats(g.rwt, m)
	for slot := 0; slot < m; slot++ {
		g.rwt[slot] = g.stageWt[g.rperm[slot]]
	}
	g.frozen = true
}

// fillInWeights loads the weights of dst's incoming edges into the
// dense array wTo, indexed by source vertex. wTo must hold +Inf
// everywhere on entry (the searchScratch invariant); the first staged
// edge wins on duplicates, matching csr.Find. Callers must restore the
// invariant with clearInWeights.
//
//repolint:hotpath
func (g *graph) fillInWeights(dst int, wTo []float64) {
	lo, hi := g.rix.Row(int32(dst))
	for slot := lo; slot < hi; slot++ {
		v := g.rix.Tgt[slot]
		if math.IsInf(wTo[v], 1) {
			wTo[v] = g.rwt[slot]
		}
	}
}

// clearInWeights resets the entries written by fillInWeights to +Inf.
//
//repolint:hotpath
func (g *graph) clearInWeights(dst int, wTo []float64) {
	lo, hi := g.rix.Row(int32(dst))
	for slot := lo; slot < hi; slot++ {
		wTo[g.rix.Tgt[slot]] = math.Inf(1)
	}
}

// reset returns the graph to the empty staged state over the same host
// list, retaining slab capacity. Landmarks are discarded with the edges.
func (g *graph) reset() {
	g.stageSrc = g.stageSrc[:0]
	g.stageDst = g.stageDst[:0]
	g.stageWt = g.stageWt[:0]
	g.stageVal = g.stageVal[:0]
	g.stageSum = g.stageSum[:0]
	g.frozen = false
	g.lmOnce = sync.Once{}
	g.lm = nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growSummaries(s []stats.Summary, n int) []stats.Summary {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]stats.Summary, n)
}

// lossWeight converts a loss probability to an additive cost.
func lossWeight(p float64) float64 {
	if p >= 1 {
		p = 0.999999
	}
	if p < 0 {
		p = 0
	}
	return -math.Log1p(-p)
}

// lossFromWeight inverts lossWeight.
func lossFromWeight(w float64) float64 {
	return -math.Expm1(-w)
}

// metricEdge builds the edge for one measured pair under a metric: the
// value is the summary mean in natural units, and the Dijkstra weight is
// the (clamped) loss weight for loss or the mean itself otherwise. Every
// graph construction routes through this helper so the weight logic
// cannot drift between call sites.
func metricEdge(metric Metric, to int, s stats.Summary) edge {
	e := edge{to: to, value: s.Mean, summary: s}
	if metric == MetricLoss {
		e.weight = lossWeight(s.Mean)
	} else {
		e.weight = s.Mean
	}
	return e
}

// buildGraph constructs the per-metric measurement graph from a dataset,
// returning it frozen and ready for concurrent searches.
func buildGraph(ds *dataset.Dataset, metric Metric) (*graph, error) {
	g := newGraph(ds.Hosts, nil)
	if err := stageGraph(g, ds, metric); err != nil {
		return nil, err
	}
	g.freeze()
	return g, nil
}

// stageGraph stages a dataset's measured pairs into an existing (reset)
// graph; callers that pool graphs reuse the staging and CSR slabs across
// builds.
func stageGraph(g *graph, ds *dataset.Dataset, metric Metric) error {
	for _, k := range ds.PairKeys() {
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			return fmt.Errorf("core: path %v references host outside dataset host list", k)
		}
		var s stats.Summary
		switch metric {
		case MetricRTT:
			sum, ok := ds.MeanRTT(k)
			if !ok {
				continue
			}
			s = sum
		case MetricLoss:
			sum, ok := ds.LossRate(k)
			if !ok {
				continue
			}
			s = sum
		case MetricPropDelay:
			v, ok := ds.PropagationDelay(k, PropagationQuantile)
			if !ok {
				continue
			}
			s = stats.Summary{N: ds.Paths[k].Measurements, Mean: v}
		default:
			return fmt.Errorf("core: unknown metric %v", metric)
		}
		g.addEdge(si, metricEdge(metric, di, s))
	}
	return nil
}

// directEdge returns the direct edge between two vertices, if measured:
// a binary search of dst within src's sorted CSR row.
func (g *graph) directEdge(src, dst int) (edge, bool) {
	if !g.frozen {
		g.freeze()
	}
	slot := g.ix.Find(int32(src), int32(dst))
	if slot < 0 {
		return edge{}, false
	}
	return g.edgeAt(slot), true
}

// edgeAt materializes the edge stored at a CSR slot.
func (g *graph) edgeAt(slot int32) edge {
	return edge{
		to:      int(g.ix.Tgt[slot]),
		weight:  g.wt[slot],
		value:   g.val[slot],
		summary: g.sum[slot],
	}
}

// pqItem is one priority-queue entry of the Dijkstra search.
type pqItem struct {
	vertex int
	dist   float64
}

// pqLess orders items by distance, breaking ties by vertex so the pop
// order (and therefore the search) is fully deterministic.
func pqLess(a, b pqItem) bool {
	//repolint:allow floateq -- deterministic tie-break: equal costs fall through to the vertex comparison
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.vertex < b.vertex
}

// pq is a hand-rolled binary min-heap. Unlike container/heap it moves
// concrete pqItem values, so pushes never box through an interface and
// the search allocates only when the backing array grows (amortized to
// nothing once the scratch is warm).
type pq []pqItem

//repolint:hotpath
func (q *pq) push(it pqItem) {
	//repolint:allow hotalloc -- amortized: the heap's pooled backing array grows to steady state once, then never again
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

//repolint:hotpath
func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && pqLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && pqLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// searchScratch is the reusable working state of one shortest-path
// search: Dijkstra's arrays, the heap, and (grown on demand) the layered
// buffers of the bounded DP. Scratches live in the graph's pool; a
// search borrows one, so concurrent searches never share state. The
// batched analyses instead hold one arena per worker for the duration
// of a whole shard (see bestAlternatesWith).
type searchScratch struct {
	dist []float64
	prev []int32
	done []bool
	// order records vertices in finalize order; replayLastHop walks it
	// to re-create the relaxation sequence of a per-pair search.
	order []int32
	// parent[v] reports whether v is an interior vertex of the latest
	// source tree (some vertex's predecessor).
	parent []bool
	// wTo is a dense in-weight gather array for one destination at a
	// time: wTo[v] = weight of the v->dst edge, +Inf when absent.
	// Invariant: all +Inf between fillInWeights/clearInWeights windows.
	wTo []float64
	// banTo marks forbidden first hops out of the search source: the
	// edge src->v is skipped when banTo[v] is set. The classic
	// alternate-path search bans exactly {dst} (the direct edge); the
	// k-alternates spur searches ban the next hop of every previously
	// accepted path sharing the spur's root (all such banned edges
	// originate at the sub-search's source, which is what makes one
	// dense mask sufficient). Invariant: all false between searches;
	// setters restore the entries they flip.
	banTo []bool
	q     pq
	// Layered DP state for boundedAlternate: (maxEdges+1)*n cells each,
	// laid out as layer*n+vertex.
	ldist []float64
	lprev []int32
}

func newSearchScratch(n int) *searchScratch {
	s := &searchScratch{
		dist:   make([]float64, n),
		prev:   make([]int32, n),
		done:   make([]bool, n),
		order:  make([]int32, 0, n),
		parent: make([]bool, n),
		wTo:    make([]float64, n),
		banTo:  make([]bool, n),
		q:      make(pq, 0, 64),
	}
	for i := range s.wTo {
		s.wTo[i] = math.Inf(1)
	}
	return s
}

// shortestAlternate finds the minimum-weight path src->dst that does not
// use the direct src->dst edge, optionally excluding a set of vertices
// (for the host-removal analysis). maxVia limits the number of
// intermediate hosts: 0 means unlimited, 1 restricts to one-hop
// alternates (the paper's bandwidth and median analyses). It returns the
// vertex sequence including endpoints, or ok=false if no alternate
// exists. Safe for concurrent use on a frozen graph.
func (g *graph) shortestAlternate(src, dst, maxVia int, excluded []bool) (path []int, ok bool) {
	if !g.frozen {
		g.freeze()
	}
	s := g.scratch.Get().(*searchScratch)
	defer g.scratch.Put(s)
	return g.shortestAlternateInto(s, src, dst, maxVia, excluded)
}

// shortestAlternateInto is shortestAlternate with a caller-owned scratch,
// so batched analyses reuse one arena per worker instead of bouncing
// through the pool for every pair.
func (g *graph) shortestAlternateInto(s *searchScratch, src, dst, maxVia int, excluded []bool) (path []int, ok bool) {
	if !g.frozen {
		g.freeze()
	}
	// Ban the direct edge by marking dst as a forbidden first hop; the
	// entry's previous value is restored so callers (the k-alternates
	// spur loop) can stack additional bans around this search.
	wasBanned := s.banTo[dst]
	s.banTo[dst] = true
	defer func() { s.banTo[dst] = wasBanned }()
	switch {
	case maxVia == 1:
		return g.oneHopAlternate(src, dst, excluded, s)
	case maxVia > 1:
		return g.boundedAlternate(src, dst, maxVia, excluded, s)
	default:
		return g.dijkstraAlternate(src, dst, excluded, s)
	}
}

// oneHopAlternate enumerates src->via->dst candidates directly. The
// destination's in-weights are gathered once into the scratch's dense
// array, so the scan over src's row costs O(1) per candidate instead of
// a binary search each.
//
//repolint:hotpath
func (g *graph) oneHopAlternate(src, dst int, excluded []bool, s *searchScratch) (path []int, ok bool) {
	best := math.Inf(1)
	bestVia := -1
	wTo := s.wTo
	g.fillInWeights(dst, wTo)
	lo, hi := g.ix.Row(int32(src))
	for slot := lo; slot < hi; slot++ {
		via := int(g.ix.Tgt[slot])
		if via == dst || via == src || s.banTo[via] || (excluded != nil && excluded[via]) {
			continue
		}
		w := g.wt[slot] + wTo[via]
		//repolint:allow floateq -- deterministic tie-break on identical sums of the same stored weights
		if w < best || (w == best && via < bestVia) {
			best, bestVia = w, via
		}
	}
	g.clearInWeights(dst, wTo)
	if bestVia == -1 {
		return nil, false
	}
	//repolint:allow hotalloc -- the found path escapes to the caller: one slice per successful query, not per relaxation
	return []int{src, bestVia, dst}, true
}

// scanMinVertices is the size below which the unlimited search uses the
// O(n^2) array-scan Dijkstra instead of the heap. Measurement graphs are
// often small (tens of hosts) and nearly complete, so scanning an
// n-element distance array for the next vertex is cheaper than
// maintaining a heap over ~n^2 lazily deleted entries; above the
// threshold the sparser heap variant (with ALT pruning for per-pair
// queries) wins.
const scanMinVertices = 512

// dijkstraAlternate is the unlimited-length search. Both variants
// finalize vertices in (distance, vertex) order, so they produce
// identical paths.
func (g *graph) dijkstraAlternate(src, dst int, excluded []bool, s *searchScratch) (path []int, ok bool) {
	n := len(g.hosts)
	dist, prev, done := s.dist, s.prev, s.done
	for i := 0; i < n; i++ {
		dist[i], prev[i], done[i] = math.MaxFloat64, -1, false
	}
	dist[src] = 0
	s.order = s.order[:0]
	if n <= scanMinVertices {
		g.dijkstraScan(src, dst, excluded, s)
	} else {
		g.dijkstraHeap(src, dst, excluded, s, g.landmarksFor(dst))
	}
	return pathFromPrev(prev, src, dst)
}

// pathFromPrev reconstructs the src->dst vertex sequence from a
// predecessor array.
func pathFromPrev(prev []int32, src, dst int) (path []int, ok bool) {
	if prev[dst] == -1 {
		return nil, false
	}
	for v := dst; v != -1; v = int(prev[v]) {
		path = append(path, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != src {
		return nil, false
	}
	return path, true
}

// sourceTree runs one full Dijkstra from src with every direct edge
// present (dst=-1 disables both the early exit and the direct-edge
// exclusion) into a scratch borrowed by the caller. Whenever the
// resulting tree reaches a destination through a relay — prev[dst] is
// neither src nor -1 — the tree path is exactly what the per-pair
// direct-edge-excluded search would find: src pops first and seeds
// dst with the direct edge, so a different predecessor means some
// relayed path won a strict improvement, and the two searches accept
// the same improvement sequence below the direct weight. Only when the
// direct edge wins (prev[dst]==src) does the caller need the per-pair
// fallback. This amortizes one search per source across all its
// destinations.
//
//repolint:hotpath
func (g *graph) sourceTree(src int, excluded []bool, s *searchScratch) {
	if !g.frozen {
		g.freeze()
	}
	n := len(g.hosts)
	for i := 0; i < n; i++ {
		s.dist[i], s.prev[i], s.done[i], s.parent[i] = math.MaxFloat64, -1, false, false
	}
	s.dist[src] = 0
	s.order = s.order[:0]
	if n <= scanMinVertices {
		g.dijkstraScan(src, -1, excluded, s)
	} else {
		g.dijkstraHeap(src, -1, excluded, s, nil)
	}
	for v := 0; v < n; v++ {
		if p := s.prev[v]; p >= 0 {
			s.parent[p] = true
		}
	}
}

// replayLastHop resolves a pair whose direct edge won the source tree
// and whose destination is a tree leaf, without another search. When
// dst has no tree children, removing the direct edge changes nothing
// about the rest of the tree: every other vertex keeps its distance and
// predecessor, and the per-pair search would finalize them in exactly
// the recorded order, stopping once dst itself becomes the minimum. So
// the search's whole effect on dst can be replayed from the tree: walk
// the finalize order, apply each vertex's relaxation of dst (skipping
// the forbidden direct edge), and stop where dst would have popped.
// Returns the alternate path per-pair Dijkstra would return, or
// ok=false if none exists. Only valid when !s.parent[dst] and
// s.prev[dst]==src.
//
//repolint:hotpath
func (g *graph) replayLastHop(src, dst int, s *searchScratch) (path []int, ok bool) {
	cur := math.MaxFloat64
	best := -1
	wTo := s.wTo
	g.fillInWeights(dst, wTo)
	for _, u32 := range s.order {
		u := int(u32)
		// dst pops before u does: the search is over.
		//repolint:allow floateq -- replays the pop order's exact tie-break; values are copies, not recomputations
		if s.dist[u] > cur || (s.dist[u] == cur && u > dst) {
			break
		}
		if u == src || u == dst {
			continue
		}
		if nd := s.dist[u] + wTo[u]; nd < cur {
			cur, best = nd, u
		}
	}
	g.clearInWeights(dst, wTo)
	if best == -1 {
		return nil, false
	}
	path, ok = pathFromPrev(s.prev, src, best)
	if !ok {
		return nil, false
	}
	//repolint:allow hotalloc -- appends the final hop to the escaping result path: once per resolved pair
	return append(path, dst), true
}

// dijkstraScan selects the next vertex by scanning the distance array:
// strict less-than keeps the lowest vertex on ties, matching the heap's
// (distance, vertex) pop order.
//
//repolint:hotpath
func (g *graph) dijkstraScan(src, dst int, excluded []bool, s *searchScratch) {
	n := len(g.hosts)
	dist, prev, done := s.dist, s.prev, s.done
	for {
		u, du := -1, math.MaxFloat64
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < du {
				u, du = v, dist[v]
			}
		}
		if u == -1 || u == dst {
			return
		}
		done[u] = true
		//repolint:allow hotalloc -- amortized: order's pooled backing array reaches n capacity once, then never grows
		s.order = append(s.order, int32(u))
		lo, hi := g.ix.Row(int32(u))
		tgt, wts := g.ix.Tgt[lo:hi], g.wt[lo:hi]
		for i, v32 := range tgt {
			v := int(v32)
			if done[v] {
				continue
			}
			if excluded != nil && excluded[v] && v != dst {
				continue
			}
			if u == src && s.banTo[v] {
				continue // forbidden first hop (direct edge, or a spur ban)
			}
			nd := du + wts[i]
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = int32(u)
			}
		}
	}
}

// dijkstraHeap is the classic lazy-deletion heap variant for large
// sparse graphs. For per-pair queries (dst >= 0) a non-nil lm applies
// ALT landmark pruning: a finalized vertex whose distance plus the
// landmark lower bound to dst strictly exceeds the tentative distance
// of dst cannot lie on any optimal path to dst, so its expansion is
// skipped. Every vertex of the returned path satisfies
// dist[v] + lb(v,dst) <= d(dst), so the pruned search finalizes and
// relaxes the path's vertices exactly as the unpruned one does — paths
// stay bit-identical (see DESIGN.md §10).
//
//repolint:hotpath
func (g *graph) dijkstraHeap(src, dst int, excluded []bool, s *searchScratch, lm *landmarks) {
	dist, prev, done := s.dist, s.prev, s.done
	q := s.q[:0]
	q.push(pqItem{vertex: src, dist: 0})
	for len(q) > 0 {
		it := q.pop()
		u := it.vertex
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		//repolint:allow hotalloc -- amortized: order's pooled backing array reaches n capacity once, then never grows
		s.order = append(s.order, int32(u))
		if lm != nil && it.dist+lm.lowerBound(u, dst) > dist[dst] {
			continue // ALT prune: u cannot improve any path to dst
		}
		lo, hi := g.ix.Row(int32(u))
		tgt, wts := g.ix.Tgt[lo:hi], g.wt[lo:hi]
		for i, v32 := range tgt {
			v := int(v32)
			if done[v] {
				continue
			}
			if excluded != nil && excluded[v] && v != dst {
				continue
			}
			if u == src && s.banTo[v] {
				continue // forbidden first hop (direct edge, or a spur ban)
			}
			nd := it.dist + wts[i]
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = int32(u)
				q.push(pqItem{vertex: v, dist: nd})
			}
		}
	}
	s.q = q[:0] // keep the grown backing array for the next search
}

// boundedAlternate finds the minimum-weight alternate using at most
// maxVia intermediate hosts (i.e. maxVia+1 edges), by dynamic
// programming over (edge count, vertex) states — plain Dijkstra with a
// hop cap is incorrect because the cheapest unlimited path can exceed
// the cap while a costlier short path satisfies it.
func (g *graph) boundedAlternate(src, dst, maxVia int, excluded []bool, s *searchScratch) (path []int, ok bool) {
	n := len(g.hosts)
	maxEdges := maxVia + 1
	const inf = math.MaxFloat64
	// dist[h*n+v]: min weight of a path src->v with <=h edges.
	cells := (maxEdges + 1) * n
	if cap(s.ldist) < cells {
		s.ldist = make([]float64, cells)
		s.lprev = make([]int32, cells)
	}
	dist := s.ldist[:cells]
	prev := s.lprev[:cells]
	for i := range dist {
		dist[i], prev[i] = inf, -1
	}
	dist[src] = 0
	for h := 1; h <= maxEdges; h++ {
		cur, last := dist[h*n:(h+1)*n], dist[(h-1)*n:h*n]
		curPrev, lastPrev := prev[h*n:(h+1)*n], prev[(h-1)*n:h*n]
		copy(cur, last)
		copy(curPrev, lastPrev)
		for u := 0; u < n; u++ {
			//repolint:allow floateq -- +Inf sentinel for "unreached"; no arithmetic ever produces it
			if last[u] == inf {
				continue
			}
			lo, hi := g.ix.Row(int32(u))
			tgt, wts := g.ix.Tgt[lo:hi], g.wt[lo:hi]
			du := last[u]
			for i, v32 := range tgt {
				v := int(v32)
				if excluded != nil && excluded[v] && v != dst {
					continue
				}
				if u == src && s.banTo[v] {
					continue // forbidden first hop
				}
				if v == src {
					continue
				}
				nd := du + wts[i]
				if nd < cur[v] {
					cur[v] = nd
					curPrev[v] = int32(u)
				}
			}
		}
	}
	//repolint:allow floateq -- +Inf sentinel for "unreached"; no arithmetic ever produces it
	if dist[maxEdges*n+dst] == inf {
		return nil, false
	}
	// Reconstruct by walking layers backwards.
	v := dst
	h := maxEdges
	var rev []int
	for v != -1 {
		rev = append(rev, v)
		if v == src {
			break
		}
		// Find the layer where v's best distance was set.
		//repolint:allow floateq -- layers copy values verbatim, so equality means "unchanged", bit for bit
		for h > 0 && dist[(h-1)*n+v] == dist[h*n+v] && prev[(h-1)*n+v] == prev[h*n+v] {
			h--
		}
		v = int(prev[h*n+v])
		h--
		if len(rev) > maxEdges+2 {
			return nil, false // defensive
		}
	}
	if len(rev) == 0 || rev[len(rev)-1] != src {
		return nil, false
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// composePath combines the edges along a vertex sequence into the
// alternate path's metric value and summary. For loss the values compose
// by independence; for RTT and propagation delay they add. The summary's
// squared standard errors always add (independent hops).
func (g *graph) composePath(metric Metric, path []int) (value float64, sum stats.Summary, err error) {
	if len(path) < 2 {
		return 0, stats.Summary{}, fmt.Errorf("core: path too short: %v", path)
	}
	parts := make([]stats.Summary, 0, len(path)-1)
	weightTotal := 0.0
	for i := 0; i+1 < len(path); i++ {
		e, found := g.directEdge(path[i], path[i+1])
		if !found {
			return 0, stats.Summary{}, fmt.Errorf("core: missing edge %d->%d in composed path", path[i], path[i+1])
		}
		weightTotal += e.weight
		parts = append(parts, e.summary)
	}
	sum = stats.SumSummaries(parts...)
	switch metric {
	case MetricLoss:
		value = lossFromWeight(weightTotal)
		// The summary mean for loss must be the composed probability,
		// not the sum of hop probabilities.
		sum.Mean = value
	default:
		value = weightTotal
	}
	return value, sum, nil
}

// pathWeight sums the stored edge weights along a vertex sequence,
// +Inf when a hop is unmeasured. Candidate ordering in the
// k-alternates search keys on this exact sum.
func (g *graph) pathWeight(path []int) float64 {
	w := 0.0
	for i := 0; i+1 < len(path); i++ {
		e, found := g.directEdge(path[i], path[i+1])
		if !found {
			return math.Inf(1)
		}
		w += e.weight
	}
	return w
}
