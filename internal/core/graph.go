// Package core implements the paper's central methodology (Section 4.1):
// constructing a weighted graph whose vertices are measured hosts and
// whose edges are measured host-to-host paths, then — for every host pair
// — removing the direct edge and computing the best synthetic alternate
// path by composing the remaining measured paths. Alternate paths are
// compared with default paths per metric (round-trip time, loss rate,
// propagation delay, and Mathis-model bandwidth), with the robustness
// analyses of Section 6 (confidence-interval t-tests, median-by-
// convolution, simultaneous-episode analysis) and the hypothesis
// evaluations of Section 7 (host/AS influence, congestion vs. propagation
// decomposition).
package core

import (
	"container/heap"
	"fmt"
	"math"

	"pathsel/internal/dataset"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// Metric selects which path-quality measure drives the analysis.
type Metric int

const (
	// MetricRTT is mean round-trip time in ms (additive composition).
	MetricRTT Metric = iota
	// MetricLoss is mean loss rate (composed assuming independent hop
	// losses, as in the paper's Figure 3).
	MetricLoss
	// MetricPropDelay is the propagation-delay estimate: the tenth
	// percentile of round-trip samples (additive composition),
	// Section 7.2.
	MetricPropDelay
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricRTT:
		return "rtt"
	case MetricLoss:
		return "loss"
	case MetricPropDelay:
		return "propagation"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// PropagationQuantile is the RTT quantile used to estimate propagation
// delay ("we chose to take the tenth percentile rather than the actual
// minimum observation to protect against noise").
const PropagationQuantile = 0.10

// edge is a measured directed path usable as a hop of a synthetic
// alternate path.
type edge struct {
	to int // vertex index
	// weight is the additive Dijkstra cost: the mean itself for RTT and
	// propagation delay, -log(1-p) for loss.
	weight float64
	// value is the metric in natural units (ms or loss probability).
	value float64
	// summary carries mean and variance for confidence intervals.
	summary stats.Summary
}

// graph is the measurement graph for one metric.
type graph struct {
	hosts []topology.HostID
	index map[topology.HostID]int
	adj   [][]edge // adjacency by vertex index
}

// lossWeight converts a loss probability to an additive cost.
func lossWeight(p float64) float64 {
	if p >= 1 {
		p = 0.999999
	}
	if p < 0 {
		p = 0
	}
	return -math.Log1p(-p)
}

// lossFromWeight inverts lossWeight.
func lossFromWeight(w float64) float64 {
	return -math.Expm1(-w)
}

// buildGraph constructs the per-metric measurement graph from a dataset.
func buildGraph(ds *dataset.Dataset, metric Metric) (*graph, error) {
	g := &graph{index: map[topology.HostID]int{}}
	for _, h := range ds.Hosts {
		g.index[h] = len(g.hosts)
		g.hosts = append(g.hosts, h)
	}
	g.adj = make([][]edge, len(g.hosts))
	for _, k := range ds.PairKeys() {
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: path %v references host outside dataset host list", k)
		}
		e := edge{to: di}
		switch metric {
		case MetricRTT:
			s, ok := ds.MeanRTT(k)
			if !ok {
				continue
			}
			e.weight, e.value, e.summary = s.Mean, s.Mean, s
		case MetricLoss:
			s, ok := ds.LossRate(k)
			if !ok {
				continue
			}
			e.weight, e.value, e.summary = lossWeight(s.Mean), s.Mean, s
		case MetricPropDelay:
			v, ok := ds.PropagationDelay(k, PropagationQuantile)
			if !ok {
				continue
			}
			e.weight, e.value = v, v
			e.summary = stats.Summary{N: ds.Paths[k].Measurements, Mean: v}
		default:
			return nil, fmt.Errorf("core: unknown metric %v", metric)
		}
		g.adj[si] = append(g.adj[si], e)
	}
	return g, nil
}

// directEdge returns the direct edge between two vertices, if measured.
func (g *graph) directEdge(src, dst int) (edge, bool) {
	for _, e := range g.adj[src] {
		if e.to == dst {
			return e, true
		}
	}
	return edge{}, false
}

type pqItem struct {
	vertex int
	dist   float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].vertex < q[j].vertex
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// shortestAlternate finds the minimum-weight path src->dst that does not
// use the direct src->dst edge, optionally excluding a set of vertices
// (for the host-removal analysis). maxVia limits the number of
// intermediate hosts: 0 means unlimited, 1 restricts to one-hop
// alternates (the paper's bandwidth and median analyses). It returns the
// vertex sequence including endpoints, or ok=false if no alternate
// exists.
func (g *graph) shortestAlternate(src, dst, maxVia int, excluded []bool) (path []int, ok bool) {
	switch {
	case maxVia == 1:
		// The alternate must be src->via->dst; enumerate directly.
		best := math.Inf(1)
		bestVia := -1
		for _, e1 := range g.adj[src] {
			if e1.to == dst || e1.to == src || (excluded != nil && excluded[e1.to]) {
				continue
			}
			e2, found := g.directEdge(e1.to, dst)
			if !found {
				continue
			}
			w := e1.weight + e2.weight
			if w < best || (w == best && e1.to < bestVia) {
				best, bestVia = w, e1.to
			}
		}
		if bestVia == -1 {
			return nil, false
		}
		return []int{src, bestVia, dst}, true
	case maxVia > 1:
		return g.boundedAlternate(src, dst, maxVia, excluded)
	default:
		return g.dijkstraAlternate(src, dst, excluded)
	}
}

// dijkstraAlternate is the unlimited-length search.
func (g *graph) dijkstraAlternate(src, dst int, excluded []bool) (path []int, ok bool) {
	n := len(g.hosts)
	const inf = math.MaxFloat64
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i], prev[i] = inf, -1
	}
	dist[src] = 0
	q := &pq{{vertex: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.vertex
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, e := range g.adj[u] {
			v := e.to
			if excluded != nil && excluded[v] && v != dst {
				continue
			}
			if u == src && v == dst {
				continue // forbid the direct edge
			}
			nd := dist[u] + e.weight
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				heap.Push(q, pqItem{vertex: v, dist: nd})
			}
		}
	}
	if prev[dst] == -1 {
		return nil, false
	}
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != src {
		return nil, false
	}
	return path, true
}

// boundedAlternate finds the minimum-weight alternate using at most
// maxVia intermediate hosts (i.e. maxVia+1 edges), by dynamic
// programming over (edge count, vertex) states — plain Dijkstra with a
// hop cap is incorrect because the cheapest unlimited path can exceed
// the cap while a costlier short path satisfies it.
func (g *graph) boundedAlternate(src, dst, maxVia int, excluded []bool) (path []int, ok bool) {
	n := len(g.hosts)
	maxEdges := maxVia + 1
	const inf = math.MaxFloat64
	// dist[h][v]: min weight of a path src->v with exactly <=h edges.
	dist := make([][]float64, maxEdges+1)
	prev := make([][]int, maxEdges+1) // predecessor vertex at layer h
	for h := range dist {
		dist[h] = make([]float64, n)
		prev[h] = make([]int, n)
		for v := range dist[h] {
			dist[h][v], prev[h][v] = inf, -1
		}
	}
	dist[0][src] = 0
	for h := 1; h <= maxEdges; h++ {
		copy(dist[h], dist[h-1])
		copy(prev[h], prev[h-1])
		for u := 0; u < n; u++ {
			if dist[h-1][u] == inf {
				continue
			}
			for _, e := range g.adj[u] {
				v := e.to
				if excluded != nil && excluded[v] && v != dst {
					continue
				}
				if u == src && v == dst {
					continue
				}
				if v == src {
					continue
				}
				nd := dist[h-1][u] + e.weight
				if nd < dist[h][v] {
					dist[h][v] = nd
					prev[h][v] = u
				}
			}
		}
	}
	if dist[maxEdges][dst] == inf {
		return nil, false
	}
	// Reconstruct by walking layers backwards.
	v := dst
	h := maxEdges
	var rev []int
	for v != -1 {
		rev = append(rev, v)
		if v == src {
			break
		}
		// Find the layer where v's best distance was set.
		for h > 0 && dist[h-1][v] == dist[h][v] && prev[h-1][v] == prev[h][v] {
			h--
		}
		v = prev[h][v]
		h--
		if len(rev) > maxEdges+2 {
			return nil, false // defensive
		}
	}
	if len(rev) == 0 || rev[len(rev)-1] != src {
		return nil, false
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// composePath combines the edges along a vertex sequence into the
// alternate path's metric value and summary. For loss the values compose
// by independence; for RTT and propagation delay they add. The summary's
// squared standard errors always add (independent hops).
func (g *graph) composePath(metric Metric, path []int) (value float64, sum stats.Summary, err error) {
	if len(path) < 2 {
		return 0, stats.Summary{}, fmt.Errorf("core: path too short: %v", path)
	}
	var parts []stats.Summary
	weightTotal := 0.0
	for i := 0; i+1 < len(path); i++ {
		e, found := g.directEdge(path[i], path[i+1])
		if !found {
			return 0, stats.Summary{}, fmt.Errorf("core: missing edge %d->%d in composed path", path[i], path[i+1])
		}
		weightTotal += e.weight
		parts = append(parts, e.summary)
	}
	sum = stats.SumSummaries(parts...)
	switch metric {
	case MetricLoss:
		value = lossFromWeight(weightTotal)
		// The summary mean for loss must be the composed probability,
		// not the sum of hop probabilities.
		sum.Mean = value
	default:
		value = weightTotal
	}
	return value, sum, nil
}
