package core

import (
	"math/rand"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// benchDataset builds a dense random measurement graph of n hosts.
func benchDataset(n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(2))
	hosts := make([]topology.HostID, n)
	for i := range hosts {
		hosts[i] = topology.HostID(i)
	}
	ds := dataset.New("bench", hosts)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() < 0.1 {
				continue
			}
			k := dataset.PairKey{Src: topology.HostID(i), Dst: topology.HostID(j)}
			base := 20 + rng.Float64()*180
			for s := 0; s < 40; s++ {
				rtt := base + rng.ExpFloat64()*30
				lost := rng.Float64() < 0.02
				if lost {
					rtt = 0
				}
				ds.RecordEcho(k, netsim.Time(s*600), []float64{rtt}, []bool{lost}, nil, 1)
			}
		}
	}
	return ds
}

func BenchmarkBestAlternates(b *testing.B) {
	ds := benchDataset(40)
	a := NewAnalyzer(ds)
	for _, bc := range []struct {
		name   string
		metric Metric
		maxVia int
	}{
		{"rtt-unrestricted", MetricRTT, 0},
		{"rtt-onehop", MetricRTT, 1},
		{"loss-unrestricted", MetricLoss, 0},
		{"prop-unrestricted", MetricPropDelay, 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := a.BestAlternates(bc.metric, bc.maxVia)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// BenchmarkBestAlternatesParallel compares the sequential engine with
// the worker pool on the same dataset. With one CPU the two are
// expected to be on par; the parallel/auto case shows the scaling on
// multicore machines.
func BenchmarkBestAlternatesParallel(b *testing.B) {
	ds := benchDataset(40)
	for _, bc := range []struct {
		name        string
		concurrency int
	}{
		{"sequential", 1},
		{"parallel-auto", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			a := NewAnalyzer(ds).WithConcurrency(bc.concurrency)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := a.BestAlternates(MetricRTT, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// BenchmarkGreedyRemoveTop exercises the iterated remove-the-best-relay
// hypothesis test, the heaviest analysis in the paper's Section 6.2.
func BenchmarkGreedyRemoveTop(b *testing.B) {
	ds := benchDataset(40)
	for _, bc := range []struct {
		name        string
		concurrency int
	}{
		{"sequential", 1},
		{"parallel-auto", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			a := NewAnalyzer(ds).WithConcurrency(bc.concurrency)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				steps, _, err := a.GreedyRemoveTop(MetricRTT, 0, 3)
				if err != nil {
					b.Fatal(err)
				}
				if len(steps) == 0 {
					b.Fatal("no steps")
				}
			}
		})
	}
}

// benchSparseDataset builds a sparse random measurement graph: n hosts
// with ~deg measured destinations each and 8 samples per pair. Unlike
// benchDataset it stays linear in n, so it can exercise the substrate
// at sizes where a dense mesh would not fit in a benchmark run.
func benchSparseDataset(n, deg int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(3))
	hosts := make([]topology.HostID, n)
	for i := range hosts {
		hosts[i] = topology.HostID(i)
	}
	ds := dataset.New("bench-sparse", hosts)
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			k := dataset.PairKey{Src: hosts[i], Dst: hosts[j]}
			base := 20 + rng.Float64()*180
			for s := 0; s < 8; s++ {
				rtt := base + rng.ExpFloat64()*30
				lost := rng.Float64() < 0.02
				if lost {
					rtt = 0
				}
				ds.RecordEcho(k, netsim.Time(s*600), []float64{rtt}, []bool{lost}, nil, 1)
			}
		}
	}
	return ds
}

// BenchmarkBuildGraphSizes tracks CSR graph construction across the
// size curve, straddling the scan/heap engine threshold; the edge count
// is reported so slab growth shows up next to the timing.
func BenchmarkBuildGraphSizes(b *testing.B) {
	for _, bc := range []struct {
		name string
		n    int
	}{{"n64", 64}, {"n512", 512}, {"n2048", 2048}} {
		ds := benchSparseDataset(bc.n, 32)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var edges int
			for i := 0; i < b.N; i++ {
				g, err := buildGraph(ds, MetricRTT)
				if err != nil {
					b.Fatal(err)
				}
				edges = len(g.wt)
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkShortestAlternateSizes tracks the per-pair alternate search
// across the same size curve: the small case uses the array scan, the
// larger ones the binary heap with ALT landmark pruning.
func BenchmarkShortestAlternateSizes(b *testing.B) {
	for _, bc := range []struct {
		name string
		n    int
	}{{"n64", 64}, {"n512", 512}, {"n2048", 2048}} {
		ds := benchSparseDataset(bc.n, 32)
		g, err := buildGraph(ds, MetricRTT)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			found := 0
			for i := 0; i < b.N; i++ {
				if _, ok := g.shortestAlternate(i%bc.n, (i+bc.n/2)%bc.n, 0, nil); ok {
					found++
				}
			}
			if b.N > 100 && found == 0 {
				b.Fatal("never found an alternate")
			}
		})
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	ds := benchDataset(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildGraph(ds, MetricRTT); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestAlternate(b *testing.B) {
	ds := benchDataset(40)
	g, err := buildGraph(ds, MetricRTT)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		if _, ok := g.shortestAlternate(i%40, (i+11)%40, 0, nil); ok {
			found++
		}
	}
	if b.N > 100 && found == 0 {
		b.Fatal("never found an alternate")
	}
}
