package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"pathsel/internal/topology"
)

// TestParallelMatchesSequential is the bit-identical guarantee: the
// worker pool must produce exactly the same []PairResult as the
// sequential engine for every metric and via restriction, including
// result order, relay choices and confidence intervals.
func TestParallelMatchesSequential(t *testing.T) {
	ds := benchDataset(24)
	seq := NewAnalyzer(ds).WithConcurrency(1)
	par := NewAnalyzer(ds).WithConcurrency(8)
	for _, metric := range []Metric{MetricRTT, MetricLoss, MetricPropDelay} {
		for _, maxVia := range []int{0, 1, 2} {
			want, err := seq.BestAlternates(metric, maxVia)
			if err != nil {
				t.Fatalf("%v/maxVia=%d sequential: %v", metric, maxVia, err)
			}
			got, err := par.BestAlternates(metric, maxVia)
			if err != nil {
				t.Fatalf("%v/maxVia=%d parallel: %v", metric, maxVia, err)
			}
			if len(want) == 0 {
				t.Fatalf("%v/maxVia=%d: no comparable pairs", metric, maxVia)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v/maxVia=%d: parallel results differ from sequential", metric, maxVia)
			}
		}
	}
}

// TestParallelGreedyRemoveTop checks that candidate-level parallelism
// preserves the greedy removal sequence, including the lowest-host
// tie-break.
func TestParallelGreedyRemoveTop(t *testing.T) {
	ds := benchDataset(24)
	wantSteps, wantFinal, err := NewAnalyzer(ds).WithConcurrency(1).GreedyRemoveTop(MetricRTT, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotSteps, gotFinal, err := NewAnalyzer(ds).WithConcurrency(8).GreedyRemoveTop(MetricRTT, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSteps, wantSteps) {
		t.Errorf("removal steps differ: got %+v want %+v", gotSteps, wantSteps)
	}
	if !reflect.DeepEqual(gotFinal, wantFinal) {
		t.Error("final pair results differ")
	}
}

// TestParallelImprovementContributions checks the per-relay
// contribution census, whose float sums are sensitive to accumulation
// order.
func TestParallelImprovementContributions(t *testing.T) {
	ds := benchDataset(24)
	want, err := NewAnalyzer(ds).WithConcurrency(1).ImprovementContributions(MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewAnalyzer(ds).WithConcurrency(8).ImprovementContributions(MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("contributions differ between sequential and parallel")
	}
}

// TestParallelMedianAlternates covers the median-of-medians engine,
// which walks a different code path than BestAlternates.
func TestParallelMedianAlternates(t *testing.T) {
	ds := benchDataset(24)
	seq := NewAnalyzer(ds).WithConcurrency(1)
	par := NewAnalyzer(ds).WithConcurrency(8)

	wantMed, err := seq.BestMedianAlternates()
	if err != nil {
		t.Fatal(err)
	}
	gotMed, err := par.BestMedianAlternates()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMed, wantMed) {
		t.Error("median results differ")
	}
}

// TestDijkstraScanMatchesHeap locks the two unlimited-search variants
// together: the array-scan version used for small graphs must find the
// same path as the heap version used for large ones, for every pair.
func TestDijkstraScanMatchesHeap(t *testing.T) {
	ds := benchDataset(24)
	g, err := buildGraph(ds, MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	n := len(g.hosts)
	run := func(variant func(src, dst int, excluded []bool, s *searchScratch), src, dst int) ([]int, bool) {
		s := g.scratch.Get().(*searchScratch)
		defer g.scratch.Put(s)
		for i := 0; i < n; i++ {
			s.dist[i], s.prev[i], s.done[i] = math.MaxFloat64, -1, false
		}
		s.dist[src] = 0
		variant(src, dst, nil, s)
		if s.prev[dst] == -1 {
			return nil, false
		}
		var path []int
		for v := dst; v != -1; v = int(s.prev[v]) {
			path = append(path, v)
			if v == src {
				break
			}
		}
		return path, true
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			scanPath, scanOK := run(g.dijkstraScan, src, dst)
			heapPath, heapOK := run(func(src, dst int, excluded []bool, s *searchScratch) {
				g.dijkstraHeap(src, dst, excluded, s, nil)
			}, src, dst)
			if scanOK != heapOK || !reflect.DeepEqual(scanPath, heapPath) {
				t.Fatalf("pair %d->%d: scan %v/%v heap %v/%v",
					src, dst, scanPath, scanOK, heapPath, heapOK)
			}
			altPath, altOK := run(func(src, dst int, excluded []bool, s *searchScratch) {
				g.dijkstraHeap(src, dst, excluded, s, g.landmarksFor(dst))
			}, src, dst)
			if altOK != heapOK || !reflect.DeepEqual(altPath, heapPath) {
				t.Fatalf("pair %d->%d: ALT-pruned heap %v/%v, plain heap %v/%v",
					src, dst, altPath, altOK, heapPath, heapOK)
			}
		}
	}
}

// TestSharedTreeMatchesPerPair locks the per-source shared-tree fast
// path against the plain per-pair search: every reported relay sequence
// must be exactly what a fresh direct-edge-excluded search finds.
func TestSharedTreeMatchesPerPair(t *testing.T) {
	ds := benchDataset(24)
	for _, metric := range []Metric{MetricRTT, MetricLoss, MetricPropDelay} {
		results, err := NewAnalyzer(ds).WithConcurrency(1).BestAlternates(metric, 0)
		if err != nil {
			t.Fatal(err)
		}
		g, err := buildGraph(ds, metric)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			si, di := g.index[r.Key.Src], g.index[r.Key.Dst]
			path, ok := g.shortestAlternate(si, di, 0, nil)
			if !ok {
				t.Fatalf("%v %v: engine found an alternate, per-pair search did not", metric, r.Key)
			}
			want := make([]topology.HostID, 0, len(path)-2)
			for _, v := range path[1 : len(path)-1] {
				want = append(want, g.hosts[v])
			}
			if !reflect.DeepEqual(r.Via, want) {
				t.Fatalf("%v %v: engine relay %v, per-pair search %v", metric, r.Key, r.Via, want)
			}
		}
	}
}

func TestParallelFor(t *testing.T) {
	// Every index runs exactly once.
	n := 1000
	hits := make([]int32, n)
	if err := parallelFor(context.Background(), 7, n, func(_, i int) error {
		hits[i]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}

	// The lowest-index error wins regardless of scheduling.
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := parallelFor(context.Background(), 7, n, func(_, i int) error {
		if i == 3 {
			return errLow
		}
		if i == n-1 {
			return errHigh
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
		t.Fatalf("unexpected error %v", err)
	}

	// Sequential fallback (workers<=1) must behave identically.
	if err := parallelFor(context.Background(), 1, 5, func(w, i int) error {
		if w != 0 {
			t.Fatalf("sequential worker id %d", w)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelForCancellation: a cancelled context stops the loop and
// surfaces context.Canceled, in both parallel and sequential modes.
func TestParallelForCancellation(t *testing.T) {
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 7} {
		ran := int32(0)
		err := parallelFor(pre, workers, 1000, func(_, i int) error {
			ran++
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d pre-cancelled: err %v", workers, err)
		}
	}

	// Sequential mode cancelled mid-loop: exactly one iteration runs
	// (the check precedes each index, and cancel fires inside the first).
	ctx, cancelMid := context.WithCancel(context.Background())
	ran := 0
	err := parallelFor(ctx, 1, 1000, func(_, i int) error {
		ran++
		cancelMid()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-loop cancel: err %v", err)
	}
	if ran != 1 {
		t.Fatalf("sequential ran %d iterations after cancel, want 1", ran)
	}

	// An analyzer bound to a cancelled context aborts its computation.
	ds := benchDataset(24)
	if _, err := NewAnalyzer(ds).WithConcurrency(4).WithContext(pre).BestAlternates(MetricRTT, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("BestAlternates under cancelled ctx: %v", err)
	}
}
