// This file preserves the pre-CSR graph implementation — the dense
// src*n+dst table below oldMaxDenseVertices and the hash-map fallback
// above it — verbatim, as a reference oracle for the differential
// property tests in differential_test.go. It must behave exactly like
// the implementation that shipped before the CSR rewrite; do not
// "improve" it.
//
// Identifiers carry an old/Old prefix so the fixture can coexist with
// the live implementation in graph.go. Shared leaf declarations
// (Metric, edge, lossWeight, metricEdge) are used from the live file so
// both implementations interpret measurements identically.

package core

import (
	"fmt"
	"math"
	"sync"

	"pathsel/internal/dataset"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// oldMaxDenseVertices bounds the flat src*n+dst edge index: up to this many
// vertices the index costs n*n int32 cells (16 MiB at the limit); larger
// graphs fall back to a map keyed by the packed vertex pair.
const oldMaxDenseVertices = 2048

// oldGraph is the measurement oldGraph for one metric. After construction
// (addEdge calls) it is read-only and safe for concurrent searches.
type oldGraph struct {
	hosts []topology.HostID
	index map[topology.HostID]int
	adj   [][]edge // adjacency by vertex index

	// Directed-edge index for O(1) lookup: the stored value is the edge's
	// position within adj[src] plus one, so zero means absent. Exactly one
	// of dense/sparse is non-nil.
	dense  []int32         // dense[src*n+dst], for small vertex counts
	sparse map[int64]int32 // keyed src<<32|dst, for large vertex counts

	// scratch pools per-search working state (distance/predecessor arrays
	// and the priority queue) so searches allocate nothing proportional
	// to the oldGraph.
	scratch sync.Pool
}

// newOldGraph creates an empty oldGraph over the given hosts. If index is nil
// a host-to-vertex index is built (hosts must then be duplicate-free);
// passing a prebuilt index lets callers share one across many graphs.
func newOldGraph(hosts []topology.HostID, index map[topology.HostID]int) *oldGraph {
	if index == nil {
		index = make(map[topology.HostID]int, len(hosts))
		for i, h := range hosts {
			index[h] = i
		}
	}
	n := len(hosts)
	g := &oldGraph{hosts: hosts, index: index, adj: make([][]edge, n)}
	if n <= oldMaxDenseVertices {
		g.dense = make([]int32, n*n)
	} else {
		g.sparse = make(map[int64]int32)
	}
	g.scratch.New = func() any { return newOldSearchScratch(n) }
	return g
}

// addEdge appends a directed edge and records it in the O(1) index. At
// most one edge may exist per (src, dst) pair.
func (g *oldGraph) addEdge(src int, e edge) {
	g.adj[src] = append(g.adj[src], e)
	pos := int32(len(g.adj[src])) // position + 1; 0 means absent
	if g.dense != nil {
		g.dense[src*len(g.hosts)+e.to] = pos
	} else {
		g.sparse[int64(src)<<32|int64(uint32(e.to))] = pos
	}
}

// buildOldGraph constructs the per-metric measurement oldGraph from a dataset.
func buildOldGraph(ds *dataset.Dataset, metric Metric) (*oldGraph, error) {
	g := newOldGraph(ds.Hosts, nil)
	for _, k := range ds.PairKeys() {
		si, ok1 := g.index[k.Src]
		di, ok2 := g.index[k.Dst]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: path %v references host outside dataset host list", k)
		}
		var s stats.Summary
		switch metric {
		case MetricRTT:
			sum, ok := ds.MeanRTT(k)
			if !ok {
				continue
			}
			s = sum
		case MetricLoss:
			sum, ok := ds.LossRate(k)
			if !ok {
				continue
			}
			s = sum
		case MetricPropDelay:
			v, ok := ds.PropagationDelay(k, PropagationQuantile)
			if !ok {
				continue
			}
			s = stats.Summary{N: ds.Paths[k].Measurements, Mean: v}
		default:
			return nil, fmt.Errorf("core: unknown metric %v", metric)
		}
		g.addEdge(si, metricEdge(metric, di, s))
	}
	return g, nil
}

// directEdge returns the direct edge between two vertices, if measured.
func (g *oldGraph) directEdge(src, dst int) (edge, bool) {
	var pos int32
	if g.dense != nil {
		pos = g.dense[src*len(g.hosts)+dst]
	} else {
		pos = g.sparse[int64(src)<<32|int64(uint32(dst))]
	}
	if pos == 0 {
		return edge{}, false
	}
	return g.adj[src][pos-1], true
}

// oldPQItem is one priority-queue entry of the Dijkstra search.
type oldPQItem struct {
	vertex int
	dist   float64
}

// oldPQLess orders items by distance, breaking ties by vertex so the pop
// order (and therefore the search) is fully deterministic.
func oldPQLess(a, b oldPQItem) bool {
	//repolint:allow floateq -- deterministic tie-break: equal costs fall through to the vertex comparison
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.vertex < b.vertex
}

// oldPQ is a hand-rolled binary min-heap. Unlike container/heap it moves
// concrete oldPQItem values, so pushes never box through an interface and
// the search allocates only when the backing array grows (amortized to
// nothing once the scratch is warm).
type oldPQ []oldPQItem

func (q *oldPQ) push(it oldPQItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !oldPQLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *oldPQ) pop() oldPQItem {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && oldPQLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && oldPQLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// oldSearchScratch is the reusable working state of one shortest-path
// search: Dijkstra's arrays, the heap, and (grown on demand) the layered
// buffers of the bounded DP. Scratches live in the oldGraph's pool; a
// search borrows one, so concurrent searches never share state.
type oldSearchScratch struct {
	dist []float64
	prev []int32
	done []bool
	// order records vertices in finalize order; replayLastHop walks it
	// to re-create the relaxation sequence of a per-pair search.
	order []int32
	// parent[v] reports whether v is an interior vertex of the latest
	// source tree (some vertex's predecessor).
	parent []bool
	q      oldPQ
	// Layered DP state for boundedAlternate: (maxEdges+1)*n cells each,
	// laid out as layer*n+vertex.
	ldist []float64
	lprev []int32
}

func newOldSearchScratch(n int) *oldSearchScratch {
	return &oldSearchScratch{
		dist:   make([]float64, n),
		prev:   make([]int32, n),
		done:   make([]bool, n),
		order:  make([]int32, 0, n),
		parent: make([]bool, n),
		q:      make(oldPQ, 0, 64),
	}
}

// shortestAlternate finds the minimum-weight path src->dst that does not
// use the direct src->dst edge, optionally excluding a set of vertices
// (for the host-removal analysis). maxVia limits the number of
// intermediate hosts: 0 means unlimited, 1 restricts to one-hop
// alternates (the paper's bandwidth and median analyses). It returns the
// vertex sequence including endpoints, or ok=false if no alternate
// exists. Safe for concurrent use on a fully built oldGraph.
func (g *oldGraph) shortestAlternate(src, dst, maxVia int, excluded []bool) (path []int, ok bool) {
	switch {
	case maxVia == 1:
		// The alternate must be src->via->dst; enumerate directly.
		best := math.Inf(1)
		bestVia := -1
		for _, e1 := range g.adj[src] {
			if e1.to == dst || e1.to == src || (excluded != nil && excluded[e1.to]) {
				continue
			}
			e2, found := g.directEdge(e1.to, dst)
			if !found {
				continue
			}
			w := e1.weight + e2.weight
			//repolint:allow floateq -- deterministic tie-break on identical sums of the same stored weights
			if w < best || (w == best && e1.to < bestVia) {
				best, bestVia = w, e1.to
			}
		}
		if bestVia == -1 {
			return nil, false
		}
		return []int{src, bestVia, dst}, true
	case maxVia > 1:
		return g.boundedAlternate(src, dst, maxVia, excluded)
	default:
		return g.dijkstraAlternate(src, dst, excluded)
	}
}

// oldScanMinVertices is the size below which the unlimited search uses the
// O(n^2) array-scan Dijkstra instead of the heap. Measurement graphs are
// small (tens of hosts) and nearly complete, so scanning an n-element
// distance array for the next vertex is cheaper than maintaining a heap
// over ~n^2 lazily deleted entries; above the threshold the sparser
// heap variant wins.
const oldScanMinVertices = 512

// dijkstraAlternate is the unlimited-length search. Both variants
// finalize vertices in (distance, vertex) order, so they produce
// identical paths.
func (g *oldGraph) dijkstraAlternate(src, dst int, excluded []bool) (path []int, ok bool) {
	n := len(g.hosts)
	s := g.scratch.Get().(*oldSearchScratch)
	defer g.scratch.Put(s)
	dist, prev, done := s.dist, s.prev, s.done
	for i := 0; i < n; i++ {
		dist[i], prev[i], done[i] = math.MaxFloat64, -1, false
	}
	dist[src] = 0
	s.order = s.order[:0]
	if n <= oldScanMinVertices {
		g.dijkstraScan(src, dst, excluded, s)
	} else {
		g.dijkstraHeap(src, dst, excluded, s)
	}
	return oldPathFromPrev(prev, src, dst)
}

// oldPathFromPrev reconstructs the src->dst vertex sequence from a
// predecessor array.
func oldPathFromPrev(prev []int32, src, dst int) (path []int, ok bool) {
	if prev[dst] == -1 {
		return nil, false
	}
	for v := dst; v != -1; v = int(prev[v]) {
		path = append(path, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != src {
		return nil, false
	}
	return path, true
}

// sourceTree runs one full Dijkstra from src with every direct edge
// present (dst=-1 disables both the early exit and the direct-edge
// exclusion) into a scratch borrowed by the caller. Whenever the
// resulting tree reaches a destination through a relay — prev[dst] is
// neither src nor -1 — the tree path is exactly what the per-pair
// direct-edge-excluded search would find: src pops first and seeds
// dst with the direct edge, so a different predecessor means some
// relayed path won a strict improvement, and the two searches accept
// the same improvement sequence below the direct weight. Only when the
// direct edge wins (prev[dst]==src) does the caller need the per-pair
// fallback. This amortizes one search per source across all its
// destinations.
func (g *oldGraph) sourceTree(src int, excluded []bool, s *oldSearchScratch) {
	n := len(g.hosts)
	for i := 0; i < n; i++ {
		s.dist[i], s.prev[i], s.done[i], s.parent[i] = math.MaxFloat64, -1, false, false
	}
	s.dist[src] = 0
	s.order = s.order[:0]
	if n <= oldScanMinVertices {
		g.dijkstraScan(src, -1, excluded, s)
	} else {
		g.dijkstraHeap(src, -1, excluded, s)
	}
	for v := 0; v < n; v++ {
		if p := s.prev[v]; p >= 0 {
			s.parent[p] = true
		}
	}
}

// replayLastHop resolves a pair whose direct edge won the source tree
// and whose destination is a tree leaf, without another search. When
// dst has no tree children, removing the direct edge changes nothing
// about the rest of the tree: every other vertex keeps its distance and
// predecessor, and the per-pair search would finalize them in exactly
// the recorded order, stopping once dst itself becomes the minimum. So
// the search's whole effect on dst can be replayed from the tree: walk
// the finalize order, apply each vertex's relaxation of dst (skipping
// the forbidden direct edge), and stop where dst would have popped.
// Returns the alternate path per-pair Dijkstra would return, or
// ok=false if none exists. Only valid when !s.parent[dst] and
// s.prev[dst]==src.
func (g *oldGraph) replayLastHop(src, dst int, s *oldSearchScratch) (path []int, ok bool) {
	cur := math.MaxFloat64
	best := -1
	for _, u32 := range s.order {
		u := int(u32)
		// dst pops before u does: the search is over.
		//repolint:allow floateq -- replays the pop order's exact tie-break; values are copies, not recomputations
		if s.dist[u] > cur || (s.dist[u] == cur && u > dst) {
			break
		}
		if u == src || u == dst {
			continue
		}
		e, found := g.directEdge(u, dst)
		if !found {
			continue
		}
		if nd := s.dist[u] + e.weight; nd < cur {
			cur, best = nd, u
		}
	}
	if best == -1 {
		return nil, false
	}
	path, ok = oldPathFromPrev(s.prev, src, best)
	if !ok {
		return nil, false
	}
	return append(path, dst), true
}

// dijkstraScan selects the next vertex by scanning the distance array:
// strict less-than keeps the lowest vertex on ties, matching the heap's
// (distance, vertex) pop order.
func (g *oldGraph) dijkstraScan(src, dst int, excluded []bool, s *oldSearchScratch) {
	n := len(g.hosts)
	dist, prev, done := s.dist, s.prev, s.done
	for {
		u, du := -1, math.MaxFloat64
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < du {
				u, du = v, dist[v]
			}
		}
		if u == -1 || u == dst {
			return
		}
		done[u] = true
		s.order = append(s.order, int32(u))
		for _, e := range g.adj[u] {
			v := e.to
			if done[v] {
				continue
			}
			if excluded != nil && excluded[v] && v != dst {
				continue
			}
			if u == src && v == dst {
				continue // forbid the direct edge
			}
			nd := du + e.weight
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = int32(u)
			}
		}
	}
}

// dijkstraHeap is the classic lazy-deletion heap variant for large
// sparse graphs.
func (g *oldGraph) dijkstraHeap(src, dst int, excluded []bool, s *oldSearchScratch) {
	dist, prev, done := s.dist, s.prev, s.done
	q := s.q[:0]
	q.push(oldPQItem{vertex: src, dist: 0})
	for len(q) > 0 {
		it := q.pop()
		u := it.vertex
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		s.order = append(s.order, int32(u))
		for _, e := range g.adj[u] {
			v := e.to
			if done[v] {
				continue
			}
			if excluded != nil && excluded[v] && v != dst {
				continue
			}
			if u == src && v == dst {
				continue // forbid the direct edge
			}
			nd := it.dist + e.weight
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = int32(u)
				q.push(oldPQItem{vertex: v, dist: nd})
			}
		}
	}
	s.q = q[:0] // keep the grown backing array for the next search
}

// boundedAlternate finds the minimum-weight alternate using at most
// maxVia intermediate hosts (i.e. maxVia+1 edges), by dynamic
// programming over (edge count, vertex) states — plain Dijkstra with a
// hop cap is incorrect because the cheapest unlimited path can exceed
// the cap while a costlier short path satisfies it.
func (g *oldGraph) boundedAlternate(src, dst, maxVia int, excluded []bool) (path []int, ok bool) {
	n := len(g.hosts)
	maxEdges := maxVia + 1
	const inf = math.MaxFloat64
	s := g.scratch.Get().(*oldSearchScratch)
	defer g.scratch.Put(s)
	// dist[h*n+v]: min weight of a path src->v with <=h edges.
	cells := (maxEdges + 1) * n
	if cap(s.ldist) < cells {
		s.ldist = make([]float64, cells)
		s.lprev = make([]int32, cells)
	}
	dist := s.ldist[:cells]
	prev := s.lprev[:cells]
	for i := range dist {
		dist[i], prev[i] = inf, -1
	}
	dist[src] = 0
	for h := 1; h <= maxEdges; h++ {
		cur, last := dist[h*n:(h+1)*n], dist[(h-1)*n:h*n]
		curPrev, lastPrev := prev[h*n:(h+1)*n], prev[(h-1)*n:h*n]
		copy(cur, last)
		copy(curPrev, lastPrev)
		for u := 0; u < n; u++ {
			//repolint:allow floateq -- +Inf sentinel for "unreached"; no arithmetic ever produces it
			if last[u] == inf {
				continue
			}
			for _, e := range g.adj[u] {
				v := e.to
				if excluded != nil && excluded[v] && v != dst {
					continue
				}
				if u == src && v == dst {
					continue
				}
				if v == src {
					continue
				}
				nd := last[u] + e.weight
				if nd < cur[v] {
					cur[v] = nd
					curPrev[v] = int32(u)
				}
			}
		}
	}
	//repolint:allow floateq -- +Inf sentinel for "unreached"; no arithmetic ever produces it
	if dist[maxEdges*n+dst] == inf {
		return nil, false
	}
	// Reconstruct by walking layers backwards.
	v := dst
	h := maxEdges
	var rev []int
	for v != -1 {
		rev = append(rev, v)
		if v == src {
			break
		}
		// Find the layer where v's best distance was set.
		//repolint:allow floateq -- layers copy values verbatim, so equality means "unchanged", bit for bit
		for h > 0 && dist[(h-1)*n+v] == dist[h*n+v] && prev[(h-1)*n+v] == prev[h*n+v] {
			h--
		}
		v = int(prev[h*n+v])
		h--
		if len(rev) > maxEdges+2 {
			return nil, false // defensive
		}
	}
	if len(rev) == 0 || rev[len(rev)-1] != src {
		return nil, false
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// composePath combines the edges along a vertex sequence into the
// alternate path's metric value and summary. For loss the values compose
// by independence; for RTT and propagation delay they add. The summary's
// squared standard errors always add (independent hops).
func (g *oldGraph) composePath(metric Metric, path []int) (value float64, sum stats.Summary, err error) {
	if len(path) < 2 {
		return 0, stats.Summary{}, fmt.Errorf("core: path too short: %v", path)
	}
	parts := make([]stats.Summary, 0, len(path)-1)
	weightTotal := 0.0
	for i := 0; i+1 < len(path); i++ {
		e, found := g.directEdge(path[i], path[i+1])
		if !found {
			return 0, stats.Summary{}, fmt.Errorf("core: missing edge %d->%d in composed path", path[i], path[i+1])
		}
		weightTotal += e.weight
		parts = append(parts, e.summary)
	}
	sum = stats.SumSummaries(parts...)
	switch metric {
	case MetricLoss:
		value = lossFromWeight(weightTotal)
		// The summary mean for loss must be the composed probability,
		// not the sum of hop probabilities.
		sum.Mean = value
	default:
		value = weightTotal
	}
	return value, sum, nil
}
