package core

import (
	"math"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

func TestClassifyVerdicts(t *testing.T) {
	mk := func(defMean, altMean, v float64, n int) PairResult {
		return PairResult{
			Default:   stats.Summary{N: n, Mean: defMean, Var: v},
			Alternate: stats.Summary{N: n, Mean: altMean, Var: v},
		}
	}
	results := []PairResult{
		mk(100, 10, 1, 50), // clearly better alternate
		mk(10, 100, 1, 50), // clearly worse
		mk(50, 51, 1e6, 5), // indeterminate
		mk(0, 0, 0, 50),    // both zero
	}
	v := ClassifyVerdicts(results, 0.95)
	if v.Better != 1 || v.Worse != 1 || v.Indeterminate != 1 || v.BothZero != 1 {
		t.Fatalf("verdicts %+v", v)
	}
	if v.Total() != 4 {
		t.Errorf("total %d", v.Total())
	}
	b, i, w, z := v.Percent()
	if b != 25 || i != 25 || w != 25 || z != 25 {
		t.Errorf("percents %f %f %f %f", b, i, w, z)
	}
	var empty VerdictCounts
	if b, i, w, z := empty.Percent(); b != 0 || i != 0 || w != 0 || z != 0 {
		t.Error("empty percent should be zero")
	}
}

func TestImprovementsWithCI(t *testing.T) {
	results := []PairResult{
		{Default: stats.Summary{N: 30, Mean: 50, Var: 4}, Alternate: stats.Summary{N: 30, Mean: 40, Var: 4},
			DefaultValue: 50, AltValue: 40},
		{Default: stats.Summary{N: 30, Mean: 20, Var: 4}, Alternate: stats.Summary{N: 30, Mean: 35, Var: 4},
			DefaultValue: 20, AltValue: 35},
	}
	pts := ImprovementsWithCI(results, 0.95)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Improvement > pts[1].Improvement {
		t.Error("points not sorted")
	}
	for _, p := range pts {
		if p.HalfWidth <= 0 {
			t.Errorf("CI half width %f should be positive", p.HalfWidth)
		}
	}
}

func TestBucketResults(t *testing.T) {
	ds := dataset.New("x", hostIDs(3))
	k01 := dataset.PairKey{Src: 0, Dst: 1}
	k02 := dataset.PairKey{Src: 0, Dst: 2}
	k21 := dataset.PairKey{Src: 2, Dst: 1}
	morning := netsim.Time(8 * 3600)
	night := netsim.Time(2 * 3600)
	// Morning: default congested (200), alternate 60.
	for i := 0; i < 5; i++ {
		ds.RecordEcho(k01, morning+netsim.Time(i), []float64{200}, []bool{false}, nil, 1)
		ds.RecordEcho(k02, morning+netsim.Time(i), []float64{30}, []bool{false}, nil, 1)
		ds.RecordEcho(k21, morning+netsim.Time(i), []float64{30}, []bool{false}, nil, 1)
		// Night: default fine (50), alternate 60.
		ds.RecordEcho(k01, night+netsim.Time(i), []float64{50}, []bool{false}, nil, 1)
		ds.RecordEcho(k02, night+netsim.Time(i), []float64{30}, []bool{false}, nil, 1)
		ds.RecordEcho(k21, night+netsim.Time(i), []float64{30}, []bool{false}, nil, 1)
	}
	a := NewAnalyzer(ds)
	mres, err := a.BucketResults(MetricRTT, netsim.BucketMorning, 0)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := a.BucketResults(MetricRTT, netsim.BucketNight, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mres) != 1 || len(nres) != 1 {
		t.Fatalf("results %d/%d", len(mres), len(nres))
	}
	if math.Abs(mres[0].Improvement()-140) > 1e-9 {
		t.Errorf("morning improvement %f, want 140", mres[0].Improvement())
	}
	if math.Abs(nres[0].Improvement()-(-10)) > 1e-9 {
		t.Errorf("night improvement %f, want -10", nres[0].Improvement())
	}
	if _, err := a.BucketResults(MetricPropDelay, netsim.BucketNight, 0); err == nil {
		t.Error("prop-delay bucketing should be rejected")
	}
}

func TestGreedyRemoveTop(t *testing.T) {
	// Host 4 is a magic shortcut for two slow pairs; removing it should
	// be the greedy choice, and the improvement should collapse.
	ds := dataset.New("x", hostIDs(5))
	addRTT(ds, 0, 1, 200)
	addRTT(ds, 2, 3, 200)
	addRTT(ds, 0, 4, 10)
	addRTT(ds, 4, 1, 10)
	addRTT(ds, 2, 4, 10)
	addRTT(ds, 4, 3, 10)
	// A mediocre alternate for 0->1 via 2 so a result survives removal.
	addRTT(ds, 0, 2, 150)
	addRTT(ds, 2, 1, 150)
	a := NewAnalyzer(ds)
	steps, final, err := a.GreedyRemoveTop(MetricRTT, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Fatalf("steps %v", steps)
	}
	if steps[0].Removed != 4 {
		t.Errorf("removed %d, want host 4", steps[0].Removed)
	}
	// After removal only 0->1 has an alternate (via 2, worse than
	// default).
	if len(final) != 1 || final[0].Improvement() >= 0 {
		t.Errorf("final %+v", final)
	}
}

func TestGreedyRemoveStopsWhenExhausted(t *testing.T) {
	ds := dataset.New("x", hostIDs(3))
	addRTT(ds, 0, 1, 100)
	addRTT(ds, 0, 2, 10)
	addRTT(ds, 2, 1, 10)
	a := NewAnalyzer(ds)
	steps, _, err := a.GreedyRemoveTop(MetricRTT, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) > 3 {
		t.Errorf("removed %d hosts from a 3-host dataset", len(steps))
	}
}

func TestImprovementContributions(t *testing.T) {
	ds := dataset.New("x", hostIDs(4))
	addRTT(ds, 0, 1, 100)
	addRTT(ds, 0, 2, 10)
	addRTT(ds, 2, 1, 10) // via 2: improvement 80
	addRTT(ds, 0, 3, 45)
	addRTT(ds, 3, 1, 45) // via 3: improvement 10
	a := NewAnalyzer(ds)
	contribs, err := a.ImprovementContributions(MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	byHost := map[topology.HostID]float64{}
	total := 0.0
	for _, c := range contribs {
		byHost[c.Host] = c.Value
		total += c.Value
	}
	// Normalized to mean 100 over 4 hosts -> total 400.
	if math.Abs(total-400) > 1e-6 {
		t.Errorf("total %f, want 400", total)
	}
	if byHost[2] <= byHost[3] || byHost[3] <= 0 {
		t.Errorf("contributions %v: host 2 should dominate host 3", byHost)
	}
	if byHost[0] != 0 || byHost[1] != 0 {
		t.Errorf("endpoints should contribute 0: %v", byHost)
	}
	// Weighting check: 80/10 ratio preserved.
	if math.Abs(byHost[2]/byHost[3]-8) > 1e-6 {
		t.Errorf("ratio %f, want 8", byHost[2]/byHost[3])
	}
}

func TestASAppearances(t *testing.T) {
	ds := dataset.New("x", hostIDs(3))
	k01 := dataset.PairKey{Src: 0, Dst: 1}
	k02 := dataset.PairKey{Src: 0, Dst: 2}
	k21 := dataset.PairKey{Src: 2, Dst: 1}
	record := func(k dataset.PairKey, rtt float64, asPath []topology.ASN) {
		ds.RecordEcho(k, 0, []float64{rtt}, []bool{false}, asPath, 1)
	}
	record(k01, 100, []topology.ASN{10, 50, 11}) // default crosses AS 50
	record(k02, 20, []topology.ASN{10, 60, 12})
	record(k21, 20, []topology.ASN{12, 60, 11}) // alternate crosses AS 60
	a := NewAnalyzer(ds)
	counts, err := a.ASAppearances(MetricRTT, 0)
	if err != nil {
		t.Fatal(err)
	}
	byAS := map[topology.ASN]ASCount{}
	for _, c := range counts {
		byAS[c.AS] = c
	}
	if c := byAS[50]; c.Direct != 1 || c.Alternate != 0 {
		t.Errorf("AS 50: %+v", c)
	}
	if c := byAS[60]; c.Direct != 0 || c.Alternate != 1 {
		t.Errorf("AS 60: %+v", c)
	}
	// AS 12 appears once in the alternate (dedup across hops).
	if c := byAS[12]; c.Alternate != 1 {
		t.Errorf("AS 12: %+v", c)
	}
}

func TestClassifyDelayGroups(t *testing.T) {
	cases := []struct {
		x, y float64
		want DelayGroup
	}{
		{10, 5, Group1},   // alternate better in both
		{10, 15, Group2},  // prop gain exceeds total
		{10, -5, Group6},  // alternate wins despite worse propagation
		{-10, -5, Group4}, // default better in both
		{-10, -15, Group5},
		{-10, 5, Group3}, // default wins despite worse propagation
		{0, 5, GroupUnclassified},
	}
	for _, c := range cases {
		if got := classifyDelay(c.x, c.y); got != c.want {
			t.Errorf("classifyDelay(%f,%f) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestDecomposeDelay(t *testing.T) {
	ds := dataset.New("x", hostIDs(3))
	// Default: propagation ~50 with heavy congestion tail (mean ~110).
	defVals := []float64{50, 50, 50, 50, 150, 150, 150, 150, 100, 100}
	addRTT(ds, 0, 1, defVals...)
	// Alternate hops: propagation 30 each, no congestion.
	addRTT(ds, 0, 2, 30, 30, 30, 30, 30)
	addRTT(ds, 2, 1, 30, 30, 30, 30, 30)
	a := NewAnalyzer(ds)
	decs, err := a.DecomposeDelay()
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 1 {
		t.Fatalf("%d decompositions", len(decs))
	}
	d := decs[0]
	if d.TotalDiff <= 0 {
		t.Errorf("alternate should win on mean: %f", d.TotalDiff)
	}
	// Default propagation est ~50, alternate 60: PropDiff ~ -10.
	if d.PropDiff > 0 {
		t.Errorf("alternate should have worse propagation: %f", d.PropDiff)
	}
	if d.Group != Group6 {
		t.Errorf("group %v, want Group6 (congestion avoidance)", d.Group)
	}
	if math.Abs(d.QueueDiff()-(d.TotalDiff-d.PropDiff)) > 1e-12 {
		t.Error("QueueDiff inconsistent")
	}
	census := GroupCensus(decs)
	if census[Group6] != 1 {
		t.Errorf("census %v", census)
	}
}

func TestCrossMetric(t *testing.T) {
	// The RTT-best alternate (via 2) is lossier than the default; the
	// loss-best alternate (via 3) is slower.
	ds := dataset.New("x", hostIDs(4))
	record := func(src, dst int, rtt float64, lost, total int) {
		k := dataset.PairKey{Src: topology.HostID(src), Dst: topology.HostID(dst)}
		for i := 0; i < total; i++ {
			isLost := i < lost
			r := []float64{rtt}
			ds.RecordEcho(k, netsim.Time(i), r, []bool{isLost}, nil, 1)
		}
	}
	record(0, 1, 100, 1, 100) // default: 100 ms, 1% loss
	record(0, 2, 20, 5, 100)  // fast but lossy relay
	record(2, 1, 20, 5, 100)
	record(0, 3, 60, 0, 100) // slow but clean relay
	record(3, 1, 60, 0, 100)

	a := NewAnalyzer(ds)
	res, err := a.CrossMetric(MetricRTT, MetricLoss, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	r := res[0]
	if r.SelectImprovement <= 0 {
		t.Errorf("RTT improvement %f should be positive", r.SelectImprovement)
	}
	// Composed loss via 2: 1-(0.95)^2 = 9.75% vs default 1%: worse.
	if r.JudgeImprovement >= 0 {
		t.Errorf("loss judgement %f should be negative (fast relay is lossy)", r.JudgeImprovement)
	}

	// The reverse cross: loss-selected alternate is slower than default?
	// Via 3 loss-best: RTT 120 vs default 100 -> negative RTT judgement.
	res2, err := a.CrossMetric(MetricLoss, MetricRTT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 1 {
		t.Fatalf("got %d results", len(res2))
	}
	if res2[0].SelectImprovement <= 0 {
		t.Errorf("loss improvement %f should be positive", res2[0].SelectImprovement)
	}
	if res2[0].JudgeImprovement >= 0 {
		t.Errorf("RTT judgement %f should be negative (clean relay is slow)", res2[0].JudgeImprovement)
	}

	if _, err := a.CrossMetric(MetricRTT, MetricRTT, 1); err == nil {
		t.Error("same-metric cross accepted")
	}
}
