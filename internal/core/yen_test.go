package core

import (
	"reflect"
	"testing"

	"pathsel/internal/dataset"
)

// yenGraph builds the analyzer's RTT graph for a dataset and hands the
// test a scratch + yenState over it.
func yenGraph(t *testing.T, ds *dataset.Dataset) (*graph, *searchScratch, *yenState) {
	t.Helper()
	a := NewAnalyzer(ds)
	g, err := a.graphFor(MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	g.freeze()
	s := g.scratch.Get().(*searchScratch)
	t.Cleanup(func() { g.scratch.Put(s) })
	return g, s, newYenState(len(g.hosts), nil)
}

func TestKAlternatesMatchesSingleSearch(t *testing.T) {
	ds := randomDataset(5, 10, 0.7)
	g, s, y := yenGraph(t, ds)
	for si := 0; si < len(g.hosts); si++ {
		for di := 0; di < len(g.hosts); di++ {
			if si == di {
				continue
			}
			single, ok := g.shortestAlternateInto(s, si, di, 0, nil)
			paths := g.kAlternatesInto(s, y, si, di, 1, 0)
			if !ok {
				if len(paths) != 0 {
					t.Fatalf("%d->%d: k=1 found %v, single search found nothing", si, di, paths)
				}
				continue
			}
			if len(paths) != 1 || !samePath(paths[0], single) {
				t.Fatalf("%d->%d: k=1 %v, single %v", si, di, paths, single)
			}
		}
	}
}

func TestKAlternatesProperties(t *testing.T) {
	ds := randomDataset(9, 10, 0.7)
	g, s, y := yenGraph(t, ds)
	const k = 5
	for si := 0; si < len(g.hosts); si++ {
		for di := 0; di < len(g.hosts); di++ {
			if si == di {
				continue
			}
			paths := g.kAlternatesInto(s, y, si, di, k, 0)
			for i, p := range paths {
				if len(p) < 3 {
					t.Fatalf("%d->%d: direct or degenerate path %v", si, di, p)
				}
				if p[0] != si || p[len(p)-1] != di {
					t.Fatalf("%d->%d: endpoints wrong in %v", si, di, p)
				}
				if i > 0 && g.pathWeight(p) < g.pathWeight(paths[i-1]) {
					t.Fatalf("%d->%d: weights not ascending: %v", si, di, paths)
				}
				for j := 0; j < i; j++ {
					if samePath(p, paths[j]) {
						t.Fatalf("%d->%d: duplicate %v", si, di, p)
					}
				}
				seen := map[int]bool{}
				for _, v := range p {
					if seen[v] {
						t.Fatalf("%d->%d: vertex revisited in %v", si, di, p)
					}
					seen[v] = true
				}
			}
		}
	}
	// The per-worker state must be clean between pairs: masks all false.
	for v, b := range y.excl {
		if b {
			t.Fatalf("exclusion mask leaked at vertex %d", v)
		}
	}
	for v, b := range s.banTo {
		if b {
			t.Fatalf("ban mask leaked at vertex %d", v)
		}
	}
}

func TestKAlternatesMaxVia(t *testing.T) {
	ds := randomDataset(13, 10, 0.7)
	g, s, y := yenGraph(t, ds)
	for _, maxVia := range []int{1, 2} {
		for si := 0; si < len(g.hosts); si++ {
			for di := 0; di < len(g.hosts); di++ {
				if si == di {
					continue
				}
				for _, p := range g.kAlternatesInto(s, y, si, di, 4, maxVia) {
					if len(p)-2 > maxVia {
						t.Fatalf("maxVia=%d violated by %v", maxVia, p)
					}
				}
			}
		}
	}
}

func TestKAlternatesRespectsExclusions(t *testing.T) {
	ds := randomDataset(21, 10, 0.7)
	a := NewAnalyzer(ds)
	g, err := a.graphFor(MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	g.freeze()
	s := g.scratch.Get().(*searchScratch)
	defer g.scratch.Put(s)
	excluded := make([]bool, len(g.hosts))
	excluded[3] = true
	y := newYenState(len(g.hosts), excluded)
	for si := 0; si < len(g.hosts); si++ {
		for di := 0; di < len(g.hosts); di++ {
			if si == di || si == 3 || di == 3 {
				continue
			}
			for _, p := range g.kAlternatesInto(s, y, si, di, 4, 0) {
				for _, v := range p[1 : len(p)-1] {
					if v == 3 {
						t.Fatalf("excluded vertex used in %v", p)
					}
				}
			}
		}
	}
}

func TestCandLess(t *testing.T) {
	a := yenCand{path: []int{0, 1, 2}, weight: 5}
	b := yenCand{path: []int{0, 3, 2}, weight: 5}
	c := yenCand{path: []int{0, 1, 3, 2}, weight: 5}
	d := yenCand{path: []int{0, 9, 2}, weight: 4}
	if !candLess(d, a) || candLess(a, d) {
		t.Error("lower weight must win")
	}
	if !candLess(a, c) || candLess(c, a) {
		t.Error("shorter path must win at equal weight")
	}
	if !candLess(a, b) || candLess(b, a) {
		t.Error("lexicographic hops must break full ties")
	}
	if candLess(a, a) {
		t.Error("irreflexive")
	}
}

func TestSpurSearchHonorsBans(t *testing.T) {
	ds := dataset.New("spur", hostIDs(3))
	addRTT(ds, 0, 1, 50)
	addRTT(ds, 0, 2, 10)
	addRTT(ds, 2, 1, 10)
	g, s, y := yenGraph(t, ds)
	// Unbanned, the spur search may take the direct 0->1 edge.
	p, ok := g.spurSearch(s, 0, 1, -1, y.excl)
	if !ok || !reflect.DeepEqual(p, []int{0, 2, 1}) {
		t.Fatalf("unbanned spur: %v ok=%v (cheapest is via 2)", p, ok)
	}
	// Banning the first hop to 2 forces the direct edge.
	s.banTo[2] = true
	p, ok = g.spurSearch(s, 0, 1, -1, y.excl)
	s.banTo[2] = false
	if !ok || !reflect.DeepEqual(p, []int{0, 1}) {
		t.Fatalf("banned spur: %v ok=%v (must fall back to direct)", p, ok)
	}
}
