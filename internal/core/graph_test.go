package core

import (
	"math"
	"math/rand"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// addRTT records n RTT samples of the given values on a pair.
func addRTT(ds *dataset.Dataset, src, dst int, values ...float64) {
	k := dataset.PairKey{Src: topology.HostID(src), Dst: topology.HostID(dst)}
	for i, v := range values {
		ds.RecordEcho(k, netsim.Time(i), []float64{v}, []bool{false}, nil, 1)
	}
}

// addLoss records loss observations: losses lost out of total.
func addLoss(ds *dataset.Dataset, src, dst, lost, total int) {
	k := dataset.PairKey{Src: topology.HostID(src), Dst: topology.HostID(dst)}
	for i := 0; i < total; i++ {
		isLost := i < lost
		rtt := []float64{10}
		if isLost {
			rtt = []float64{0}
		}
		ds.RecordEcho(k, netsim.Time(i), rtt, []bool{isLost}, nil, 1)
	}
}

func hostIDs(n int) []topology.HostID {
	out := make([]topology.HostID, n)
	for i := range out {
		out[i] = topology.HostID(i)
	}
	return out
}

func TestLossWeightRoundTrip(t *testing.T) {
	for _, p := range []float64{0, 0.001, 0.1, 0.5, 0.99} {
		w := lossWeight(p)
		if got := lossFromWeight(w); math.Abs(got-p) > 1e-12 {
			t.Errorf("round trip %f -> %f", p, got)
		}
	}
	// Additivity: composing two losses via weights equals independence.
	p1, p2 := 0.1, 0.2
	composed := lossFromWeight(lossWeight(p1) + lossWeight(p2))
	want := 1 - (1-p1)*(1-p2)
	if math.Abs(composed-want) > 1e-12 {
		t.Errorf("composed %f, want %f", composed, want)
	}
	// Degenerate inputs are clamped, not NaN.
	if math.IsNaN(lossWeight(1.5)) || math.IsNaN(lossWeight(-0.5)) {
		t.Error("lossWeight should clamp out-of-range input")
	}
}

func TestBuildGraphRTT(t *testing.T) {
	ds := dataset.New("g", hostIDs(3))
	addRTT(ds, 0, 1, 10, 20, 30)
	addRTT(ds, 1, 2, 5, 5)
	g, err := buildGraph(ds, MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.hosts) != 3 {
		t.Fatalf("hosts %d", len(g.hosts))
	}
	e, ok := g.directEdge(0, 1)
	if !ok || e.value != 20 || e.summary.N != 3 {
		t.Fatalf("edge 0->1: %+v ok=%v", e, ok)
	}
	if _, ok := g.directEdge(0, 2); ok {
		t.Error("unmeasured edge should be absent")
	}
	if _, ok := g.directEdge(1, 0); ok {
		t.Error("reverse edge should be absent (directed graph)")
	}
}

func TestBuildGraphLoss(t *testing.T) {
	ds := dataset.New("g", hostIDs(2))
	addLoss(ds, 0, 1, 2, 10)
	g, err := buildGraph(ds, MetricLoss)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.directEdge(0, 1)
	if !ok {
		t.Fatal("missing edge")
	}
	if math.Abs(e.value-0.2) > 1e-12 {
		t.Errorf("loss value %f, want 0.2", e.value)
	}
	if math.Abs(e.weight-lossWeight(0.2)) > 1e-12 {
		t.Errorf("loss weight %f", e.weight)
	}
}

func TestBuildGraphProp(t *testing.T) {
	ds := dataset.New("g", hostIDs(2))
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	addRTT(ds, 0, 1, vals...)
	g, err := buildGraph(ds, MetricPropDelay)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.directEdge(0, 1)
	if !ok {
		t.Fatal("missing edge")
	}
	if e.value < 10 || e.value > 12 {
		t.Errorf("prop estimate %f, want ~10.9 (10th percentile)", e.value)
	}
}

func TestShortestAlternateSimple(t *testing.T) {
	ds := dataset.New("g", hostIDs(3))
	addRTT(ds, 0, 1, 100)
	addRTT(ds, 0, 2, 20)
	addRTT(ds, 2, 1, 20)
	g, err := buildGraph(ds, MetricRTT)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxVia := range []int{0, 1, 2} {
		path, ok := g.shortestAlternate(0, 1, maxVia, nil)
		if !ok {
			t.Fatalf("maxVia=%d: no alternate", maxVia)
		}
		if len(path) != 3 || path[0] != 0 || path[1] != 2 || path[2] != 1 {
			t.Fatalf("maxVia=%d: path %v, want [0 2 1]", maxVia, path)
		}
	}
}

func TestShortestAlternateNeverUsesDirectEdge(t *testing.T) {
	// Direct is fastest; the alternate must still avoid it.
	ds := dataset.New("g", hostIDs(3))
	addRTT(ds, 0, 1, 1)
	addRTT(ds, 0, 2, 50)
	addRTT(ds, 2, 1, 50)
	g, _ := buildGraph(ds, MetricRTT)
	path, ok := g.shortestAlternate(0, 1, 0, nil)
	if !ok {
		t.Fatal("no alternate")
	}
	if len(path) != 3 || path[1] != 2 {
		t.Fatalf("path %v should detour via 2", path)
	}
}

func TestShortestAlternateRespectsHopLimit(t *testing.T) {
	// Chain 0->2->3->1 costs 30; one-hop 0->4->1 costs 100.
	ds := dataset.New("g", hostIDs(5))
	addRTT(ds, 0, 1, 500)
	addRTT(ds, 0, 2, 10)
	addRTT(ds, 2, 3, 10)
	addRTT(ds, 3, 1, 10)
	addRTT(ds, 0, 4, 50)
	addRTT(ds, 4, 1, 50)
	g, _ := buildGraph(ds, MetricRTT)

	path, ok := g.shortestAlternate(0, 1, 0, nil)
	if !ok || len(path) != 4 {
		t.Fatalf("unrestricted path %v ok=%v, want chain of 4", path, ok)
	}
	path, ok = g.shortestAlternate(0, 1, 1, nil)
	if !ok || len(path) != 3 || path[1] != 4 {
		t.Fatalf("one-hop path %v ok=%v, want via 4", path, ok)
	}
	path, ok = g.shortestAlternate(0, 1, 2, nil)
	if !ok || len(path) != 4 {
		t.Fatalf("two-via path %v ok=%v, want chain", path, ok)
	}
}

func TestShortestAlternateExclusion(t *testing.T) {
	ds := dataset.New("g", hostIDs(4))
	addRTT(ds, 0, 1, 100)
	addRTT(ds, 0, 2, 10)
	addRTT(ds, 2, 1, 10)
	addRTT(ds, 0, 3, 30)
	addRTT(ds, 3, 1, 30)
	g, _ := buildGraph(ds, MetricRTT)
	excluded := make([]bool, 4)
	excluded[2] = true
	for _, maxVia := range []int{0, 1} {
		path, ok := g.shortestAlternate(0, 1, maxVia, excluded)
		if !ok || path[1] != 3 {
			t.Fatalf("maxVia=%d: path %v should avoid excluded host 2", maxVia, path)
		}
	}
}

func TestShortestAlternateNone(t *testing.T) {
	ds := dataset.New("g", hostIDs(3))
	addRTT(ds, 0, 1, 10)
	g, _ := buildGraph(ds, MetricRTT)
	for _, maxVia := range []int{0, 1, 3} {
		if _, ok := g.shortestAlternate(0, 1, maxVia, nil); ok {
			t.Fatalf("maxVia=%d: found alternate in edgeless graph", maxVia)
		}
	}
}

func TestComposePathLoss(t *testing.T) {
	ds := dataset.New("g", hostIDs(3))
	addLoss(ds, 0, 2, 1, 10) // 10%
	addLoss(ds, 2, 1, 2, 10) // 20%
	g, _ := buildGraph(ds, MetricLoss)
	v, sum, err := g.composePath(MetricLoss, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 0.9*0.8
	if math.Abs(v-want) > 1e-12 {
		t.Errorf("composed loss %f, want %f", v, want)
	}
	if math.Abs(sum.Mean-want) > 1e-12 {
		t.Errorf("summary mean %f, want %f", sum.Mean, want)
	}
	if sum.SE2() <= 0 {
		t.Error("composed SE should be positive")
	}
}

func TestComposePathErrors(t *testing.T) {
	ds := dataset.New("g", hostIDs(3))
	addRTT(ds, 0, 1, 10)
	g, _ := buildGraph(ds, MetricRTT)
	if _, _, err := g.composePath(MetricRTT, []int{0}); err == nil {
		t.Error("short path should error")
	}
	if _, _, err := g.composePath(MetricRTT, []int{0, 2}); err == nil {
		t.Error("missing edge should error")
	}
}

// TestBoundedMatchesBruteForce cross-checks the bounded DP against
// exhaustive enumeration on random graphs.
func TestBoundedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		n := 4 + rng.Intn(4)
		ds := dataset.New("g", hostIDs(n))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.35 {
					continue
				}
				addRTT(ds, i, j, 1+math.Floor(rng.Float64()*100))
			}
		}
		g, err := buildGraph(ds, MetricRTT)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := 0, 1
		maxVia := 2 + rng.Intn(2)
		path, ok := g.shortestAlternate(src, dst, maxVia, nil)
		bestW, bestOK := bruteBest(g, src, dst, maxVia)
		if ok != bestOK {
			t.Fatalf("trial %d: ok=%v brute=%v", trial, ok, bestOK)
		}
		if !ok {
			continue
		}
		w := 0.0
		for i := 0; i+1 < len(path); i++ {
			e, _ := g.directEdge(path[i], path[i+1])
			w += e.weight
		}
		if math.Abs(w-bestW) > 1e-9 {
			t.Fatalf("trial %d: DP found %f (path %v), brute force %f", trial, w, path, bestW)
		}
		if len(path) > maxVia+2 {
			t.Fatalf("trial %d: path %v exceeds via limit %d", trial, path, maxVia)
		}
	}
}

// bruteBest enumerates all simple alternate paths with <= maxVia
// intermediates.
func bruteBest(g *graph, src, dst, maxVia int) (float64, bool) {
	best := math.Inf(1)
	found := false
	g.freeze()
	var rec func(cur int, used map[int]bool, weight float64, vias int)
	rec = func(cur int, used map[int]bool, weight float64, vias int) {
		lo, hi := g.ix.Row(int32(cur))
		for s := lo; s < hi; s++ {
			to, w := int(g.ix.Tgt[s]), g.wt[s]
			if cur == src && to == dst {
				continue
			}
			if to == dst {
				if w := weight + w; w < best {
					best, found = w, true
				}
				continue
			}
			if used[to] || vias >= maxVia {
				continue
			}
			used[to] = true
			rec(to, used, weight+w, vias+1)
			delete(used, to)
		}
	}
	rec(src, map[int]bool{src: true}, 0, 0)
	return best, found
}

// TestUnlimitedMatchesBruteForce cross-checks Dijkstra similarly (simple
// paths suffice: weights are non-negative).
func TestUnlimitedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(3)
		ds := dataset.New("g", hostIDs(n))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.3 {
					continue
				}
				addRTT(ds, i, j, 1+math.Floor(rng.Float64()*50))
			}
		}
		g, err := buildGraph(ds, MetricRTT)
		if err != nil {
			t.Fatal(err)
		}
		path, ok := g.shortestAlternate(0, 1, 0, nil)
		bestW, bestOK := bruteBest(g, 0, 1, n)
		if ok != bestOK {
			t.Fatalf("trial %d: ok=%v brute=%v", trial, ok, bestOK)
		}
		if !ok {
			continue
		}
		w := 0.0
		for i := 0; i+1 < len(path); i++ {
			e, _ := g.directEdge(path[i], path[i+1])
			w += e.weight
		}
		if math.Abs(w-bestW) > 1e-9 {
			t.Fatalf("trial %d: dijkstra %f vs brute %f", trial, w, bestW)
		}
	}
}

func TestMetricString(t *testing.T) {
	if MetricRTT.String() != "rtt" || MetricLoss.String() != "loss" || MetricPropDelay.String() != "propagation" {
		t.Error("metric strings wrong")
	}
	if Metric(7).String() != "metric(7)" {
		t.Error("unknown metric string wrong")
	}
}
