// Package csr provides a compact compressed-sparse-row edge index shared
// by the graph substrates in core, topology, bgp, and igp. A CSR index
// packs a directed graph's adjacency into two flat slabs — an offset
// array and a target array sorted within each row — so that neighbor
// iteration is a contiguous scan, edge lookup is a binary search, and
// building involves no per-edge map or per-vertex slice churn.
//
// The package is deliberately payload-agnostic: Rebuild returns a
// permutation mapping packed slots back to input edge indices, and
// callers permute their own parallel payload slices (weights, summaries,
// link IDs) alongside the targets. This keeps one packing routine shared
// across graphs whose edges carry very different data.
package csr

import "sort"

// Index is a compressed-sparse-row adjacency over vertices 0..n-1: the
// targets of row u occupy Tgt[Off[u]:Off[u+1]], sorted ascending.
// Duplicate targets are permitted and keep their input order.
type Index struct {
	Off []int32 // len n+1; Off[0] == 0, Off[n] == len(Tgt)
	Tgt []int32

	cur []int32 // distribution cursors, reused across Rebuilds
}

// NumVertices returns the vertex count the index was built over.
func (ix *Index) NumVertices() int {
	if len(ix.Off) == 0 {
		return 0
	}
	return len(ix.Off) - 1
}

// NumEdges returns the packed edge count.
func (ix *Index) NumEdges() int { return len(ix.Tgt) }

// Row returns the slab bounds [lo, hi) of vertex u's targets.
//
//repolint:hotpath
func (ix *Index) Row(u int32) (lo, hi int32) { return ix.Off[u], ix.Off[u+1] }

// Find returns the slot of the first edge u -> v, or -1 if absent.
//
//repolint:hotpath
func (ix *Index) Find(u, v int32) int32 {
	lo, hi := ix.Off[u], ix.Off[u+1]
	end := hi
	for hi-lo > 8 {
		mid := lo + (hi-lo)/2
		if ix.Tgt[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// The first slot >= v lies in [lo, hi]; scan forward from lo and
	// stop at the first slot past v.
	for i := lo; i < end; i++ {
		switch {
		case ix.Tgt[i] == v:
			return i
		case ix.Tgt[i] > v:
			return -1
		}
	}
	return -1
}

// Rebuild repacks the directed edges src[i] -> dst[i] over n vertices
// into the index, reusing slab capacity from prior builds. It returns
// perm (grown as needed) where perm[slot] is the input index of the edge
// occupying that slot, so callers can gather payload slices:
// packed[slot] = payload[perm[slot]].
func (ix *Index) Rebuild(n int, src, dst []int32, perm []int32) []int32 {
	m := len(src)
	ix.Off = grow(ix.Off, n+1)
	for i := range ix.Off {
		ix.Off[i] = 0
	}
	ix.Tgt = grow(ix.Tgt, m)
	ix.cur = grow(ix.cur, n)
	perm = grow(perm, m)

	for _, u := range src {
		ix.Off[u+1]++
	}
	for u := 0; u < n; u++ {
		ix.Off[u+1] += ix.Off[u]
		ix.cur[u] = ix.Off[u]
	}
	for i, u := range src {
		p := ix.cur[u]
		ix.cur[u] = p + 1
		ix.Tgt[p] = dst[i]
		perm[p] = int32(i)
	}
	for u := 0; u < n; u++ {
		sortRow(ix.Tgt[ix.Off[u]:ix.Off[u+1]], perm[ix.Off[u]:ix.Off[u+1]])
	}
	return perm
}

// Build packs the directed edges src[i] -> dst[i] over n vertices into a
// fresh index, returning it with the slot -> input permutation.
func Build(n int, src, dst []int32) (*Index, []int32) {
	ix := &Index{}
	perm := ix.Rebuild(n, src, dst, nil)
	return ix, perm
}

// grow returns s resized to length n, reusing capacity when possible.
func grow(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// sortRow stably sorts one row's targets ascending, carrying the
// permutation entries along. Rows are usually short, so insertion sort
// handles the common case without allocation.
//
//repolint:hotpath
func sortRow(tgt, perm []int32) {
	if len(tgt) <= 64 {
		for i := 1; i < len(tgt); i++ {
			t, p := tgt[i], perm[i]
			j := i - 1
			for j >= 0 && tgt[j] > t {
				tgt[j+1], perm[j+1] = tgt[j], perm[j]
				j--
			}
			tgt[j+1], perm[j+1] = t, p
		}
		return
	}
	//repolint:allow hotalloc -- rows >64 wide are rare; one boxed sorter per such row, not per edge
	sort.Stable(&rowSorter{tgt, perm})
}

type rowSorter struct{ tgt, perm []int32 }

func (r *rowSorter) Len() int           { return len(r.tgt) }
func (r *rowSorter) Less(i, j int) bool { return r.tgt[i] < r.tgt[j] }
func (r *rowSorter) Swap(i, j int) {
	r.tgt[i], r.tgt[j] = r.tgt[j], r.tgt[i]
	r.perm[i], r.perm[j] = r.perm[j], r.perm[i]
}
