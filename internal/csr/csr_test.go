package csr

import (
	"math/rand"
	"testing"
)

// naive builds the reference adjacency: per-source target lists in
// input order, then stably sorted by target.
func naive(n int, src, dst []int32) [][]int32 {
	out := make([][]int32, n)
	for i := range src {
		out[src[i]] = append(out[src[i]], dst[i])
	}
	for u := range out {
		row := out[u]
		for i := 1; i < len(row); i++ {
			t := row[i]
			j := i - 1
			for j >= 0 && row[j] > t {
				row[j+1] = row[j]
				j--
			}
			row[j+1] = t
		}
	}
	return out
}

func TestBuildMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		m := rng.Intn(4 * n)
		src := make([]int32, m)
		dst := make([]int32, m)
		for i := range src {
			src[i] = int32(rng.Intn(n))
			dst[i] = int32(rng.Intn(n))
		}
		ix, perm := Build(n, src, dst)
		if ix.NumVertices() != n || ix.NumEdges() != m {
			t.Fatalf("trial %d: dims %d/%d, want %d/%d", trial, ix.NumVertices(), ix.NumEdges(), n, m)
		}
		want := naive(n, src, dst)
		for u := 0; u < n; u++ {
			lo, hi := ix.Row(int32(u))
			if int(hi-lo) != len(want[u]) {
				t.Fatalf("trial %d: row %d has %d targets, want %d", trial, u, hi-lo, len(want[u]))
			}
			for i := lo; i < hi; i++ {
				if ix.Tgt[i] != want[u][i-lo] {
					t.Fatalf("trial %d: row %d slot %d = %d, want %d", trial, u, i-lo, ix.Tgt[i], want[u][i-lo])
				}
				// The permutation must point at a matching input edge.
				e := perm[i]
				if src[e] != int32(u) || dst[e] != ix.Tgt[i] {
					t.Fatalf("trial %d: perm[%d]=%d names edge %d->%d, slot holds %d->%d",
						trial, i, e, src[e], dst[e], u, ix.Tgt[i])
				}
			}
		}
		// Find agrees with membership for a sample of pairs.
		for k := 0; k < 200; k++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			slot := ix.Find(u, v)
			member := false
			for _, w := range want[u] {
				if w == v {
					member = true
					break
				}
			}
			if (slot >= 0) != member {
				t.Fatalf("trial %d: Find(%d,%d)=%d, membership %v", trial, u, v, slot, member)
			}
			if slot >= 0 && (slot < ix.Off[u] || slot >= ix.Off[u+1] || ix.Tgt[slot] != v) {
				t.Fatalf("trial %d: Find(%d,%d) returned bad slot %d", trial, u, v, slot)
			}
		}
	}
}

func TestRebuildReusesCapacity(t *testing.T) {
	ix := &Index{}
	var perm []int32
	perm = ix.Rebuild(4, []int32{0, 1, 2, 3}, []int32{1, 2, 3, 0}, perm)
	tgtCap, offCap := cap(ix.Tgt), cap(ix.Off)
	perm = ix.Rebuild(3, []int32{2, 0}, []int32{0, 2}, perm)
	if cap(ix.Tgt) != tgtCap || cap(ix.Off) != offCap {
		t.Error("smaller rebuild should reuse slab capacity")
	}
	if ix.NumVertices() != 3 || ix.NumEdges() != 2 {
		t.Fatalf("dims after rebuild: %d/%d", ix.NumVertices(), ix.NumEdges())
	}
	if ix.Find(0, 2) < 0 || ix.Find(2, 0) < 0 || ix.Find(0, 1) >= 0 {
		t.Error("rebuild contents wrong")
	}
	_ = perm
}

func TestStableDuplicates(t *testing.T) {
	// Two parallel edges 0->1: packed order must match input order.
	ix, perm := Build(2, []int32{0, 0, 0}, []int32{1, 0, 1})
	lo, hi := ix.Row(0)
	if hi-lo != 3 || ix.Tgt[lo] != 0 || ix.Tgt[lo+1] != 1 || ix.Tgt[lo+2] != 1 {
		t.Fatalf("row 0: %v", ix.Tgt[lo:hi])
	}
	if perm[lo+1] != 0 || perm[lo+2] != 2 {
		t.Fatalf("duplicate order not stable: perm %v", perm[lo:hi])
	}
}

func TestEmpty(t *testing.T) {
	ix, _ := Build(0, nil, nil)
	if ix.NumVertices() != 0 || ix.NumEdges() != 0 {
		t.Fatal("empty build should have no vertices or edges")
	}
	ix2, _ := Build(3, nil, nil)
	if lo, hi := ix2.Row(1); lo != hi {
		t.Fatal("vertex with no edges should have an empty row")
	}
}
