package measure

import (
	"math"
	"sort"
	"testing"

	"pathsel/internal/dataset"
)

// gatherTimes collects every loss-observation timestamp in the dataset,
// sorted — a proxy for the measurement schedule.
func gatherTimes(ds *dataset.Dataset) []float64 {
	var ts []float64
	for _, k := range ds.PairKeys() {
		for _, s := range ds.Paths[k].Loss {
			ts = append(ts, float64(s.At))
		}
	}
	sort.Float64s(ts)
	return ts
}

// TestExponentialSchedulerStatistics: the arrival process must have the
// configured mean and exponential shape (CV ~ 1).
func TestExponentialSchedulerStatistics(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.MeanIntervalSec = 200
	spec.DurationSec = 4 * 86400
	spec.KeepSamples = 1
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := gatherTimes(ds)
	if len(ts) < 300 {
		t.Fatalf("only %d observations", len(ts))
	}
	var gaps []float64
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i]-ts[i-1])
	}
	mean, sd := meanStd(gaps)
	// ~2% of probes fail (no recorded time), and self-pair draws skip a
	// slot, so the observed mean gap runs slightly above the spec mean.
	if mean < spec.MeanIntervalSec*0.9 || mean > spec.MeanIntervalSec*1.35 {
		t.Errorf("mean gap %.1f, want ~%.0f", mean, spec.MeanIntervalSec)
	}
	// Exponential inter-arrivals have coefficient of variation 1.
	cv := sd / mean
	if cv < 0.8 || cv > 1.25 {
		t.Errorf("gap CV %.2f, want ~1 (exponential)", cv)
	}
}

// TestUniformSchedulerStatistics: per-server uniform scheduling bounds
// every gap by twice the mean and has CV well below 1.
func TestUniformSchedulerStatistics(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.Scheduler = PerServerUniform
	spec.MeanIntervalSec = 1200
	spec.DurationSec = 6 * 86400
	spec.KeepSamples = 1
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-source schedules.
	perSrc := map[int][]float64{}
	for _, k := range ds.PairKeys() {
		for _, s := range ds.Paths[k].Loss {
			perSrc[int(k.Src)] = append(perSrc[int(k.Src)], float64(s.At))
		}
	}
	checked := 0
	for src, ts := range perSrc {
		if len(ts) < 50 {
			continue
		}
		sort.Float64s(ts)
		var gaps []float64
		for i := 1; i < len(ts); i++ {
			gaps = append(gaps, ts[i]-ts[i-1])
		}
		mean, sd := meanStd(gaps)
		// Failures and self-draws can merge a few uniform intervals
		// (each bounded by 2x the mean), so allow three merged
		// intervals; an exponential schedule of this size would exceed
		// this with near-certainty.
		if max := maxOf(gaps); max > 3*2*spec.MeanIntervalSec {
			t.Errorf("src %d: gap %.0f far exceeds the uniform bound %.0f", src, max, 2*spec.MeanIntervalSec)
		}
		if mean < spec.MeanIntervalSec*0.8 || mean > spec.MeanIntervalSec*1.5 {
			t.Errorf("src %d: mean gap %.1f, want ~%.0f", src, mean, spec.MeanIntervalSec)
		}
		if cv := sd / mean; cv > 0.9 {
			t.Errorf("src %d: CV %.2f too high for a uniform schedule", src, cv)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no source had enough measurements")
	}
}

// TestEpisodeSpacing: episode start times are exponentially spaced with
// the configured mean.
func TestEpisodeSpacing(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.Scheduler = Episodes
	spec.Hosts = spec.Hosts[:6]
	spec.MeanIntervalSec = 1800
	spec.DurationSec = 6 * 86400
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Episodes) < 100 {
		t.Fatalf("only %d episodes", len(ds.Episodes))
	}
	var gaps []float64
	for i := 1; i < len(ds.Episodes); i++ {
		gaps = append(gaps, float64(ds.Episodes[i].At-ds.Episodes[i-1].At))
	}
	mean, sd := meanStd(gaps)
	if mean < spec.MeanIntervalSec*0.8 || mean > spec.MeanIntervalSec*1.2 {
		t.Errorf("mean episode gap %.1f, want ~%.0f", mean, spec.MeanIntervalSec)
	}
	if cv := sd / mean; cv < 0.75 || cv > 1.3 {
		t.Errorf("episode gap CV %.2f, want ~1", cv)
	}
	// Episodes are chronological.
	for i := 1; i < len(ds.Episodes); i++ {
		if ds.Episodes[i].At <= ds.Episodes[i-1].At {
			t.Fatal("episodes out of order")
		}
	}
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)-1))
	return mean, sd
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
