package measure

import (
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

type fixture struct {
	top *topology.Topology
	prb *probe.Prober
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Era1999)
	cfg.NumHosts = 12
	top, err := topology.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatalf("bgp.Compute: %v", err)
	}
	fwd := forward.New(top, g, table)
	net := netsim.New(top, netsim.DefaultConfig())
	return &fixture{top: top, prb: probe.New(top, fwd, net, probe.DefaultConfig())}
}

func hostIDs(top *topology.Topology) []topology.HostID {
	ids := make([]topology.HostID, len(top.Hosts))
	for i, h := range top.Hosts {
		ids[i] = h.ID
	}
	return ids
}

func baseSpec(fx *fixture) Spec {
	return Spec{
		Name:            "test",
		Hosts:           hostIDs(fx.top),
		Method:          MethodTraceroute,
		Scheduler:       ExponentialPairs,
		MeanIntervalSec: 120,
		DurationSec:     2 * 86400,
		Seed:            7,
	}
}

func TestExponentialPairsCampaign(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := ds.Characteristics()
	// Expect roughly duration/mean measurements minus failures/self-pairs.
	expected := spec.DurationSec / spec.MeanIntervalSec
	if float64(c.Measurements) < expected*0.7 || float64(c.Measurements) > expected*1.1 {
		t.Errorf("measurements = %d, want ~%.0f", c.Measurements, expected)
	}
	if c.Hosts != len(spec.Hosts) {
		t.Errorf("hosts = %d, want %d", c.Hosts, len(spec.Hosts))
	}
	if c.PercentCovered < 50 {
		t.Errorf("coverage %.1f%% unexpectedly low", c.PercentCovered)
	}
	// Every recorded path must have data and an AS path.
	for _, k := range ds.PairKeys() {
		p := ds.Paths[k]
		if p.Measurements == 0 {
			t.Fatalf("path %v recorded with zero measurements", k)
		}
		if len(p.Loss) == 0 {
			t.Fatalf("path %v has no loss observations", k)
		}
	}
}

func TestPerServerUniformCampaign(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.Scheduler = PerServerUniform
	spec.MeanIntervalSec = 900
	spec.DurationSec = 5 * 86400
	spec.RateLimit = FilterTargets
	spec.MirrorMissing = true
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Rate-limited hosts may appear as sources but never as targets
	// (before mirroring, which copies reverse data).
	rl := map[topology.HostID]bool{}
	for _, h := range fx.top.Hosts {
		if h.RateLimitICMP {
			rl[h.ID] = true
		}
	}
	if len(rl) == 0 {
		t.Skip("no rate-limited hosts in fixture")
	}
	// After mirroring, paths toward rate limiters should exist but carry
	// no AS path (they were never traced directly).
	foundMirrored := false
	for _, k := range ds.PairKeys() {
		if rl[k.Dst] {
			if p := ds.Paths[k]; p.ASPath == nil && len(p.RTT) > 0 {
				foundMirrored = true
			}
		}
	}
	if !foundMirrored {
		t.Error("expected mirrored paths toward rate-limited hosts")
	}
}

func TestEpisodesCampaign(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.Scheduler = Episodes
	spec.MeanIntervalSec = 3600
	spec.DurationSec = 86400
	spec.RateLimit = FilterHosts
	spec.Hosts = hostIDs(fx.top)[:8]
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Episodes) == 0 {
		t.Fatal("no episodes collected")
	}
	nHosts := len(ds.Hosts)
	maxPairs := nHosts * (nHosts - 1)
	for _, ep := range ds.Episodes {
		if len(ep.RTTMs) > maxPairs {
			t.Fatalf("episode has %d entries, max %d", len(ep.RTTMs), maxPairs)
		}
		// Most pairs should be present (only failures/losses missing).
		if len(ep.RTTMs) < maxPairs/2 {
			t.Errorf("episode at %v sparse: %d of %d pairs", ep.At, len(ep.RTTMs), maxPairs)
		}
	}
}

func TestFilterHostsRemovesRateLimiters(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.RateLimit = FilterHosts
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ds.Hosts {
		if fx.top.Host(h).RateLimitICMP {
			t.Errorf("rate-limited host %d still in dataset", h)
		}
	}
	for _, k := range ds.PairKeys() {
		if fx.top.Host(k.Src).RateLimitICMP || fx.top.Host(k.Dst).RateLimitICMP {
			t.Errorf("path %v touches rate limiter", k)
		}
	}
}

func TestMinMeasurementsFilter(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.DurationSec = 6 * 3600 // short: many sparse paths
	spec.MinMeasurements = dataset.MinMeasurementsPerPath
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ds.PairKeys() {
		if ds.Paths[k].Measurements < dataset.MinMeasurementsPerPath {
			t.Errorf("path %v kept with %d measurements", k, ds.Paths[k].Measurements)
		}
	}
}

func TestDeterministicCampaign(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.DurationSec = 86400
	a, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh prober with the same seed must reproduce the campaign.
	fx2 := newFixture(t)
	b, err := Run(fx2.top, fx2.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := a.PairKeys(), b.PairKeys()
	if len(ka) != len(kb) {
		t.Fatalf("path counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key %d differs", i)
		}
		sa, _ := a.MeanRTT(ka[i])
		sb, _ := b.MeanRTT(kb[i])
		if sa != sb {
			t.Fatalf("summaries differ for %v: %+v vs %+v", ka[i], sa, sb)
		}
	}
}

func TestTransferCampaign(t *testing.T) {
	fx := newFixture(t)
	spec := baseSpec(fx)
	spec.Method = MethodTransfer
	spec.DurationSec = 86400
	ds, err := Run(fx.top, fx.prb, spec)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range ds.PairKeys() {
		if len(ds.Paths[k].Transfers) > 0 {
			found = true
			if _, _, ok := ds.TransferMeans(k); !ok {
				t.Fatalf("no transfer means for %v", k)
			}
		}
	}
	if !found {
		t.Error("no transfers recorded")
	}
}

func TestSpecValidation(t *testing.T) {
	fx := newFixture(t)
	bad := []func(*Spec){
		func(s *Spec) { s.Hosts = s.Hosts[:1] },
		func(s *Spec) { s.MeanIntervalSec = 0 },
		func(s *Spec) { s.DurationSec = -1 },
		func(s *Spec) { s.Method = MethodTransfer; s.Scheduler = Episodes },
	}
	for i, mutate := range bad {
		spec := baseSpec(fx)
		mutate(&spec)
		if _, err := Run(fx.top, fx.prb, spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestStringers(t *testing.T) {
	if MethodTraceroute.String() != "traceroute" || MethodTransfer.String() != "tcpanaly" {
		t.Error("method strings wrong")
	}
	if PerServerUniform.String() != "per-server-uniform" || Episodes.String() != "episodes" {
		t.Error("scheduler strings wrong")
	}
	if KeepAll.String() != "keep-all" || FilterHosts.String() != "filter-hosts" {
		t.Error("policy strings wrong")
	}
}
