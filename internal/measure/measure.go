// Package measure drives measurement campaigns against the synthetic
// Internet, reproducing the collection disciplines of the paper's five
// dataset families (Section 4.2): per-server uniform scheduling with
// random targets (UW1), exponentially distributed random-pair selection
// (UW3, UW4-B, and the npd-style D2/N2), and simultaneous all-pairs
// episodes (UW4-A). It also applies each dataset's ICMP rate-limiter
// policy and post-collection filtering.
package measure

import (
	"context"
	"fmt"
	"math/rand"

	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

// Method selects the measurement instrument.
type Method int

const (
	// MethodTraceroute uses three-sample traceroutes (D2, UW datasets).
	MethodTraceroute Method = iota
	// MethodTransfer uses npd-style TCP transfer measurements (N2).
	MethodTransfer
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodTraceroute:
		return "traceroute"
	case MethodTransfer:
		return "tcpanaly"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Scheduler selects how measurement times and pairs are drawn.
type Scheduler int

const (
	// PerServerUniform gives every server its own uniform-interval
	// request clock with a random target each time (UW1: "chosen from a
	// per-server uniform distribution with a mean of 15 minutes").
	PerServerUniform Scheduler = iota
	// ExponentialPairs draws a single exponential arrival process and a
	// uniformly random ordered pair for each arrival (UW3, UW4-B, D2,
	// N2).
	ExponentialPairs
	// Episodes draws exponential episode times; in each episode every
	// ordered pair is measured "simultaneously" (UW4-A).
	Episodes
	// SampledPairs partitions the host pool into disjoint consecutive
	// clusters of Spec.ClusterSize and, at exponentially spaced rounds,
	// measures the full ordered mesh within each cluster. Pair coverage
	// stays dense while the pair count grows linearly in the pool size
	// instead of quadratically — the discipline the planet-scale preset
	// uses to keep 100k-host campaigns tractable.
	SampledPairs
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case PerServerUniform:
		return "per-server-uniform"
	case ExponentialPairs:
		return "exponential-pairs"
	case Episodes:
		return "episodes"
	case SampledPairs:
		return "sampled-pairs"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// RateLimitPolicy is how a campaign treats ICMP rate-limiting hosts.
type RateLimitPolicy int

const (
	// KeepAll measures rate limiters like everything else; the dataset
	// must correct for the inflated loss afterwards (D2's first-sample
	// heuristic).
	KeepAll RateLimitPolicy = iota
	// FilterTargets never selects a rate limiter as a target but still
	// uses it as a source (UW1).
	FilterTargets
	// FilterHosts removes rate limiters from the host set entirely
	// (UW3, UW4), allowing paired measurements on every path.
	FilterHosts
)

// String implements fmt.Stringer.
func (p RateLimitPolicy) String() string {
	switch p {
	case KeepAll:
		return "keep-all"
	case FilterTargets:
		return "filter-targets"
	case FilterHosts:
		return "filter-hosts"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Spec describes one measurement campaign.
type Spec struct {
	Name  string
	Hosts []topology.HostID
	// Method and Scheduler select instrument and timing.
	Method    Method
	Scheduler Scheduler
	// MeanIntervalSec is the mean of the scheduling distribution: per
	// server for PerServerUniform, per arrival for ExponentialPairs,
	// per episode for Episodes.
	MeanIntervalSec float64
	// StartSec and DurationSec bound the campaign in simulated time.
	StartSec    float64
	DurationSec float64
	// ClusterSize partitions Hosts into consecutive disjoint clusters
	// of this size for the SampledPairs scheduler; pairs are measured
	// only within a cluster (a short final cluster keeps the leftover
	// hosts). Ignored by other schedulers.
	ClusterSize int
	// KeepSamples caps how many echo samples per traceroute count as
	// loss observations (1 implements the D2 heuristic; 0 means all).
	KeepSamples int
	// RateLimit is the rate-limiter policy.
	RateLimit RateLimitPolicy
	// MirrorMissing fills unmeasured directed paths with the reverse
	// direction's samples (UW1: "we use the round-trip measurements
	// from traceroutes initiated in the opposite direction").
	MirrorMissing bool
	// MinMeasurements drops paths with fewer measurements after
	// collection; 0 disables filtering.
	MinMeasurements int
	// Seed drives the campaign's scheduling randomness.
	Seed int64
	// Observer, when set, receives every probe result as it happens
	// (including failures) — used to stream textual traces to disk.
	Observer func(probe.Result)
}

// Validate reports problems with the spec.
func (s Spec) Validate() error {
	switch {
	case len(s.Hosts) < 2:
		return fmt.Errorf("measure: %s: need at least 2 hosts, have %d", s.Name, len(s.Hosts))
	case s.MeanIntervalSec <= 0:
		return fmt.Errorf("measure: %s: MeanIntervalSec must be positive", s.Name)
	case s.DurationSec <= 0:
		return fmt.Errorf("measure: %s: DurationSec must be positive", s.Name)
	case s.Method == MethodTransfer && s.Scheduler != ExponentialPairs:
		return fmt.Errorf("measure: %s: transfer campaigns require ExponentialPairs", s.Name)
	case s.Scheduler == SampledPairs && s.ClusterSize < 2:
		return fmt.Errorf("measure: %s: SampledPairs needs ClusterSize >= 2, have %d", s.Name, s.ClusterSize)
	case s.Scheduler == SampledPairs && s.Method != MethodTraceroute:
		return fmt.Errorf("measure: %s: SampledPairs campaigns require traceroutes", s.Name)
	}
	return nil
}

// Run executes the campaign and returns the collected dataset.
func Run(top *topology.Topology, prb *probe.Prober, spec Spec) (*dataset.Dataset, error) {
	//repolint:allow ctxflow -- Run is the documented never-cancelled convenience root of RunContext
	return RunContext(context.Background(), top, prb, spec)
}

// RunContext is Run bounded by a context: the campaign checks ctx
// between probes and aborts with ctx.Err() once it is cancelled, so a
// caller building datasets on demand (e.g. an HTTP request that has
// been abandoned) does not finish a campaign nobody will read.
func RunContext(ctx context.Context, top *topology.Topology, prb *probe.Prober, spec Spec) (*dataset.Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	hosts := append([]topology.HostID(nil), spec.Hosts...)
	if spec.RateLimit == FilterHosts {
		hosts = filterRateLimited(top, hosts)
		if len(hosts) < 2 {
			return nil, fmt.Errorf("measure: %s: fewer than 2 hosts after rate-limit filtering", spec.Name)
		}
	}
	targets := hosts
	if spec.RateLimit == FilterTargets {
		targets = filterRateLimited(top, hosts)
		if len(targets) == 0 {
			return nil, fmt.Errorf("measure: %s: no valid targets after rate-limit filtering", spec.Name)
		}
	}

	ds := dataset.New(spec.Name, hosts)
	keep := spec.KeepSamples
	if keep <= 0 {
		keep = probe.SamplesPerTraceroute
	}

	var err error
	switch spec.Scheduler {
	case PerServerUniform:
		err = runPerServer(ctx, ds, top, prb, spec, rng, hosts, targets, keep)
	case ExponentialPairs:
		err = runExponentialPairs(ctx, ds, prb, spec, rng, hosts, targets, keep)
	case Episodes:
		err = runEpisodes(ctx, ds, prb, spec, rng, hosts, keep)
	case SampledPairs:
		err = runSampledPairs(ctx, ds, prb, spec, rng, hosts, keep)
	default:
		err = fmt.Errorf("measure: %s: unknown scheduler %v", spec.Name, spec.Scheduler)
	}
	if err != nil {
		return nil, err
	}

	if spec.MirrorMissing {
		mirrorMissing(ds)
	}
	if spec.MinMeasurements > 0 {
		ds.RemoveSparsePaths(spec.MinMeasurements)
	}
	return ds, nil
}

func filterRateLimited(top *topology.Topology, hosts []topology.HostID) []topology.HostID {
	var out []topology.HostID
	for _, h := range hosts {
		if !top.Host(h).RateLimitICMP {
			out = append(out, h)
		}
	}
	return out
}

// recordResult stores a traceroute result in the dataset.
func recordResult(ds *dataset.Dataset, res probe.Result, keep int) {
	if res.Failed {
		return
	}
	rtts := make([]float64, len(res.Samples))
	lost := make([]bool, len(res.Samples))
	for i, s := range res.Samples {
		rtts[i] = s.RTTMs
		lost[i] = s.Lost
	}
	ds.RecordEcho(dataset.PairKey{Src: res.Src, Dst: res.Dst}, res.At, rtts, lost, res.ASPath, keep)
}

func runPerServer(ctx context.Context, ds *dataset.Dataset, top *topology.Topology, prb *probe.Prober, spec Spec,
	rng *rand.Rand, hosts, targets []topology.HostID, keep int) error {
	end := spec.StartSec + spec.DurationSec
	// Each server has its own clock; we interleave by always advancing
	// the earliest one, keeping the global measurement order
	// chronological (and deterministic).
	clocks := make([]float64, len(hosts))
	for i := range clocks {
		clocks[i] = spec.StartSec + rng.Float64()*2*spec.MeanIntervalSec
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Find the earliest server clock.
		srcIdx, at := -1, end
		for i, c := range clocks {
			if c < at {
				srcIdx, at = i, c
			}
		}
		if srcIdx == -1 {
			return nil
		}
		clocks[srcIdx] += rng.Float64() * 2 * spec.MeanIntervalSec
		src := hosts[srcIdx]
		dst := targets[rng.Intn(len(targets))]
		if dst == src {
			continue
		}
		res, err := prb.Traceroute(src, dst, netsim.Time(at))
		if err != nil {
			return fmt.Errorf("measure: %s: %w", spec.Name, err)
		}
		if spec.Observer != nil {
			spec.Observer(res)
		}
		recordResult(ds, res, keep)
	}
}

func runExponentialPairs(ctx context.Context, ds *dataset.Dataset, prb *probe.Prober, spec Spec,
	rng *rand.Rand, hosts, targets []topology.HostID, keep int) error {
	end := spec.StartSec + spec.DurationSec
	at := spec.StartSec
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		at += rng.ExpFloat64() * spec.MeanIntervalSec
		if at >= end {
			return nil
		}
		src := hosts[rng.Intn(len(hosts))]
		dst := targets[rng.Intn(len(targets))]
		if src == dst {
			continue
		}
		switch spec.Method {
		case MethodTraceroute:
			res, err := prb.Traceroute(src, dst, netsim.Time(at))
			if err != nil {
				return fmt.Errorf("measure: %s: %w", spec.Name, err)
			}
			if spec.Observer != nil {
				spec.Observer(res)
			}
			recordResult(ds, res, keep)
		case MethodTransfer:
			res, err := prb.Transfer(src, dst, netsim.Time(at))
			if err != nil {
				return fmt.Errorf("measure: %s: %w", spec.Name, err)
			}
			if !res.Failed {
				ds.RecordTransfer(dataset.PairKey{Src: src, Dst: dst}, dataset.TransferSample{
					At: res.At, MeanRTTMs: res.MeanRTTMs, LossRate: res.LossRate, Packets: res.Packets,
				})
			}
		}
	}
}

func runEpisodes(ctx context.Context, ds *dataset.Dataset, prb *probe.Prober, spec Spec,
	rng *rand.Rand, hosts []topology.HostID, keep int) error {
	end := spec.StartSec + spec.DurationSec
	at := spec.StartSec
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		at += rng.ExpFloat64() * spec.MeanIntervalSec
		if at >= end {
			return nil
		}
		ep := &dataset.Episode{At: netsim.Time(at), RTTMs: map[dataset.PairKey]float64{}}
		// Every ordered pair, measured within a several-minute window
		// (each traceroute takes nonzero time, as the paper notes).
		offset := 0.0
		for _, src := range hosts {
			for _, dst := range hosts {
				if src == dst {
					continue
				}
				t := netsim.Time(at + offset)
				offset += 1.5 // staggered requests within the episode
				res, err := prb.Traceroute(src, dst, t)
				if err != nil {
					return fmt.Errorf("measure: %s: %w", spec.Name, err)
				}
				if spec.Observer != nil {
					spec.Observer(res)
				}
				recordResult(ds, res, keep)
				if res.Failed {
					continue
				}
				sum, n := 0.0, 0
				for _, s := range res.Samples {
					if !s.Lost {
						sum += s.RTTMs
						n++
					}
				}
				if n > 0 {
					ep.RTTMs[dataset.PairKey{Src: src, Dst: dst}] = sum / float64(n)
				}
			}
		}
		ds.AddEpisode(ep)
	}
}

// runSampledPairs measures, at each exponentially spaced round, the full
// ordered mesh within every disjoint cluster of ClusterSize consecutive
// hosts. Probes are staggered in time within the round like an episode's
// (each traceroute takes nonzero real time).
func runSampledPairs(ctx context.Context, ds *dataset.Dataset, prb *probe.Prober, spec Spec,
	rng *rand.Rand, hosts []topology.HostID, keep int) error {
	end := spec.StartSec + spec.DurationSec
	at := spec.StartSec
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		at += rng.ExpFloat64() * spec.MeanIntervalSec
		if at >= end {
			return nil
		}
		offset := 0.0
		for base := 0; base < len(hosts); base += spec.ClusterSize {
			hi := base + spec.ClusterSize
			if hi > len(hosts) {
				hi = len(hosts)
			}
			cluster := hosts[base:hi]
			for _, src := range cluster {
				for _, dst := range cluster {
					if src == dst {
						continue
					}
					t := netsim.Time(at + offset)
					offset += 1.5
					res, err := prb.Traceroute(src, dst, t)
					if err != nil {
						return fmt.Errorf("measure: %s: %w", spec.Name, err)
					}
					if spec.Observer != nil {
						spec.Observer(res)
					}
					recordResult(ds, res, keep)
				}
			}
		}
	}
}

// mirrorMissing fills each unmeasured directed path with the samples of
// its measured reverse, implementing UW1's use of opposite-direction
// traceroutes for rate-limited targets.
func mirrorMissing(ds *dataset.Dataset) {
	for _, k := range ds.PairKeys() {
		rev := k.Reverse()
		if _, ok := ds.Paths[rev]; ok {
			continue
		}
		src := ds.Paths[k]
		cp := &dataset.PathData{Key: rev, Measurements: src.Measurements}
		cp.RTT = append(cp.RTT, src.RTT...)
		cp.Loss = append(cp.Loss, src.Loss...)
		// The AS path of the mirror is unknown (the reverse direction
		// was never traced); leave it nil.
		ds.Paths[rev] = cp
	}
}
