package measure

import (
	"testing"

	"pathsel/internal/dynamics"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

// TestCampaignOverDynamicNetwork runs a traceroute campaign whose probes
// route over a failing, reconverging network: the prober's path provider
// is a dynamics.Timeline instead of a static forwarder, so datasets pick
// up genuine route changes — the condition the paper's robustness
// analyses worry about.
func TestCampaignOverDynamicNetwork(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Era1999)
	cfg.NumTier1 = 4
	cfg.NumTransit = 8
	cfg.NumStub = 30
	cfg.NumHosts = 8
	top, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())

	dynCfg := dynamics.DefaultConfig()
	dynCfg.DurationSec = 2 * 86400
	dynCfg.FailuresPerAdjacencyPerWeek = 0.5
	tl, err := dynamics.Build(top, g, dynCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Epochs()) < 2 {
		t.Skip("no failures sampled; nothing dynamic to test")
	}

	net := netsim.New(top, netsim.DefaultConfig())
	prbCfg := probe.DefaultConfig()
	prbCfg.ContactFailProb = 0
	prb := probe.NewWithProvider(top, tl, net, prbCfg)

	var hosts []topology.HostID
	for _, h := range top.Hosts {
		hosts = append(hosts, h.ID)
	}
	ds, err := Run(top, prb, Spec{
		Name:            "dynamic",
		Hosts:           hosts,
		Method:          MethodTraceroute,
		Scheduler:       ExponentialPairs,
		MeanIntervalSec: 120,
		DurationSec:     dynCfg.DurationSec,
		RateLimit:       FilterHosts,
		Seed:            5,
	})
	if err != nil {
		// Probes during an outage epoch may find a pair unreachable;
		// the campaign surfaces that as an error only if forwarding
		// itself fails. Tolerate by requiring the error to mention
		// routing.
		t.Fatalf("campaign over dynamic network: %v", err)
	}
	if len(ds.Paths) == 0 {
		t.Fatal("no paths measured")
	}
	// At least one path's traceroutes should have crossed a routing
	// change (dataset keeps the first AS path; verify the raw probe
	// level instead: ask the timeline directly).
	changed := 0
	for _, k := range ds.PairKeys() {
		sig := ""
		for _, ep := range tl.Epochs() {
			p, err := tl.PathAt(k.Src, k.Dst, ep.Start+(ep.End-ep.Start)/2)
			if err != nil {
				continue
			}
			s := routeSig(p.Routers)
			if sig != "" && s != sig {
				changed++
				break
			}
			sig = s
		}
	}
	if changed == 0 {
		t.Log("warning: no pair changed routes during the window (sparse failures)")
	}
}

func routeSig(routers []topology.RouterID) string {
	out := make([]byte, 0, len(routers)*2)
	for _, r := range routers {
		out = append(out, byte(r), byte(r>>8))
	}
	return string(out)
}
