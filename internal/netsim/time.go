package netsim

import "math"

// Time is simulated time in seconds since the epoch. The epoch is
// midnight PST on a Monday, so day-of-week and time-of-day bucketing (the
// paper's Section 6.3 analysis uses PST buckets) are simple arithmetic.
type Time float64

// SecondsPerDay is the length of a simulated day.
const SecondsPerDay = 86400

// SecondsPerWeek is the length of a simulated week.
const SecondsPerWeek = 7 * SecondsPerDay

// PSTHour returns the time of day in hours [0,24) in PST.
func (t Time) PSTHour() float64 {
	s := math.Mod(float64(t), SecondsPerDay)
	if s < 0 {
		s += SecondsPerDay
	}
	return s / 3600
}

// DayIndex returns the day number since the epoch (0 = Monday).
func (t Time) DayIndex() int {
	return int(math.Floor(float64(t) / SecondsPerDay))
}

// Weekend reports whether the time falls on Saturday or Sunday.
func (t Time) Weekend() bool {
	d := t.DayIndex() % 7
	if d < 0 {
		d += 7
	}
	return d >= 5
}

// LocalHour returns the time of day in hours [0,24) at the given
// longitude, using solar offset from PST (UTC-8, reference longitude
// -120°). Link load peaks during the local working day, which is what
// produces the east-coast-peaks-earlier effect visible in the paper's
// PST-bucketed graphs.
func (t Time) LocalHour(lonDeg float64) float64 {
	offset := (lonDeg + 120) / 15 // hours ahead of PST
	h := math.Mod(t.PSTHour()+offset, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// Bucket is a time-of-day class used by the paper's Figures 9 and 10:
// weekends, plus four six-hour weekday periods in PST.
type Bucket int

const (
	// BucketWeekend is Saturday and Sunday.
	BucketWeekend Bucket = iota
	// BucketNight is weekdays 00:00-06:00 PST.
	BucketNight
	// BucketMorning is weekdays 06:00-12:00 PST.
	BucketMorning
	// BucketAfternoon is weekdays 12:00-18:00 PST.
	BucketAfternoon
	// BucketEvening is weekdays 18:00-24:00 PST.
	BucketEvening
)

// String implements fmt.Stringer using the paper's axis labels.
func (b Bucket) String() string {
	switch b {
	case BucketWeekend:
		return "weekend"
	case BucketNight:
		return "0000-0600"
	case BucketMorning:
		return "0600-1200"
	case BucketAfternoon:
		return "1200-1800"
	case BucketEvening:
		return "1800-2400"
	default:
		return "unknown"
	}
}

// Buckets lists all time-of-day buckets in display order.
func Buckets() []Bucket {
	return []Bucket{BucketWeekend, BucketNight, BucketMorning, BucketAfternoon, BucketEvening}
}

// BucketOf classifies a time.
func BucketOf(t Time) Bucket {
	if t.Weekend() {
		return BucketWeekend
	}
	switch h := t.PSTHour(); {
	case h < 6:
		return BucketNight
	case h < 12:
		return BucketMorning
	case h < 18:
		return BucketAfternoon
	default:
		return BucketEvening
	}
}
