package netsim

import "math"

// Deterministic value noise. Every stochastic process in the network
// model (load drift, jitter, outages) is a pure function of (entity ID,
// time, seed), so that concurrent measurements of different paths observe
// a consistent network state — exactly what the paper's UW4-A
// "simultaneous episodes" methodology requires — and so that experiments
// are reproducible from the seed alone.

// hash64 mixes three 64-bit values into one (splitmix64-style finalizer).
func hash64(a, b, c uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F ^ c*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unit converts a hash to a float64 in [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// valueNoise returns a smooth pseudo-random signal in [0,1] for the given
// entity, evaluated at time t with the given period (seconds). Values at
// integer grid points are independent uniforms; between them the signal
// is cosine-interpolated.
func valueNoise(seed, entity uint64, t Time, period float64) float64 {
	x := float64(t) / period
	k := math.Floor(x)
	frac := x - k
	a := unit(hash64(seed, entity, uint64(int64(k))))
	b := unit(hash64(seed, entity, uint64(int64(k)+1)))
	// Cosine interpolation avoids derivative discontinuities at grid
	// points that linear interpolation would introduce.
	w := (1 - math.Cos(frac*math.Pi)) / 2
	return a*(1-w) + b*w
}

// eventAt reports whether a rare event (an outage window) is active for
// the entity at time t. Each window of length windowSec occurs within an
// hour-long slot with probability probPerHour, at a pseudo-random offset
// within the slot.
func eventAt(seed, entity uint64, t Time, probPerHour, windowSec float64) bool {
	slot := int64(math.Floor(float64(t) / 3600))
	h := hash64(seed^0xABCD, entity, uint64(slot))
	if unit(h) >= probPerHour {
		return false
	}
	// Window offset within the slot, from an independent hash.
	off := unit(hash64(seed^0xFEED, entity, uint64(slot))) * (3600 - windowSec)
	inSlot := float64(t) - float64(slot)*3600
	return inSlot >= off && inSlot < off+windowSec
}
