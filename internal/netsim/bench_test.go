package netsim

import (
	"math/rand"
	"testing"

	"pathsel/internal/topology"
)

func benchNetwork(b *testing.B) (*topology.Topology, *Network) {
	b.Helper()
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		b.Fatal(err)
	}
	return top, New(top, DefaultConfig())
}

func BenchmarkUtilization(b *testing.B) {
	top, n := benchNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Utilization(top.Links[i%len(top.Links)].ID, Time(i%86400))
	}
}

func BenchmarkEvalLinks20(b *testing.B) {
	top, n := benchNetwork(b)
	links := make([]topology.LinkID, 20)
	for i := range links {
		links[i] = top.Links[(i*37)%len(top.Links)].ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := n.EvalLinks(links, Time(i%86400))
		if st.DelayMs <= 0 {
			b.Fatal("no delay")
		}
	}
}

func BenchmarkSampleDelay(b *testing.B) {
	_, n := benchNetwork(b)
	rng := rand.New(rand.NewSource(1))
	st := PathState{DelayMs: 80, PropDelayMs: 55}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SampleDelay(rng, st, 20)
	}
}
