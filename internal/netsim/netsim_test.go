package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsel/internal/topology"
)

func testNetwork(t *testing.T) (*topology.Topology, *Network) {
	t.Helper()
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return top, New(top, DefaultConfig())
}

func TestUtilizationBounds(t *testing.T) {
	top, n := testNetwork(t)
	times := []Time{0, 3600, 12 * 3600, 86400 * 3, 86400*5 + 7200, 86400 * 6}
	for _, l := range top.Links {
		for _, tm := range times {
			u := n.Utilization(l.ID, tm)
			if u < 0.02-1e-12 || u > 0.99+1e-12 {
				t.Fatalf("utilization %f out of bounds for link %d at %v", u, l.ID, tm)
			}
		}
	}
}

func TestUtilizationDeterministic(t *testing.T) {
	top, n := testNetwork(t)
	n2 := New(top, DefaultConfig())
	for _, l := range top.Links[:20] {
		for _, tm := range []Time{100, 9999, 86400} {
			if n.Utilization(l.ID, tm) != n2.Utilization(l.ID, tm) {
				t.Fatalf("utilization not deterministic for link %d", l.ID)
			}
		}
	}
}

func TestDiurnalPattern(t *testing.T) {
	top, n := testNetwork(t)
	// Averaged across links, peak-hour utilization must exceed
	// night-time utilization on a weekday.
	peakSum, nightSum := 0.0, 0.0
	day := Time(2 * 86400) // Wednesday
	for _, l := range top.Links {
		peakSum += n.Utilization(l.ID, day+Time(13*3600)) // 13:00 PST
		nightSum += n.Utilization(l.ID, day+Time(3*3600)) // 03:00 PST
	}
	if peakSum <= nightSum*1.15 {
		t.Errorf("expected clear diurnal pattern: peak %f vs night %f", peakSum, nightSum)
	}
}

func TestWeekendQuieter(t *testing.T) {
	top, n := testNetwork(t)
	wkSum, weSum := 0.0, 0.0
	for _, l := range top.Links {
		wkSum += n.Utilization(l.ID, Time(2*86400+13*3600)) // Wednesday 13:00
		weSum += n.Utilization(l.ID, Time(5*86400+13*3600)) // Saturday 13:00
	}
	if weSum >= wkSum {
		t.Errorf("weekend load %f should be below weekday load %f", weSum, wkSum)
	}
}

func TestQueueDelayIncreasing(t *testing.T) {
	// The M/M/1 queue-delay curve must be monotone in utilization; we
	// verify indirectly: for a fixed link, higher utilization times give
	// at least as much queue delay.
	top, n := testNetwork(t)
	l := top.Links[0]
	type sample struct{ u, q float64 }
	var ss []sample
	for h := 0; h < 24; h++ {
		tm := Time(2*86400 + h*3600)
		ss = append(ss, sample{n.Utilization(l.ID, tm), n.QueueDelayMs(l.ID, tm)})
	}
	for i := range ss {
		for j := range ss {
			if ss[i].u < ss[j].u && ss[i].q > ss[j].q+1e-9 {
				t.Fatalf("queue delay not monotone in utilization: u=%f q=%f vs u=%f q=%f",
					ss[i].u, ss[i].q, ss[j].u, ss[j].q)
			}
		}
	}
}

func TestQueueDelayCappedByBuffer(t *testing.T) {
	top, n := testNetwork(t)
	cfg := n.Config()
	for _, l := range top.Links {
		s := cfg.PacketBytes * 8 / (l.CapacityMbps * 1000)
		for h := 0; h < 48; h++ {
			q := n.QueueDelayMs(l.ID, Time(h*1800))
			if q < 0 || q > s*cfg.BufferPackets+cfg.BufferMs+1e-9 {
				t.Fatalf("queue delay %f outside [0, %f] for link %d", q, s*cfg.BufferPackets+cfg.BufferMs, l.ID)
			}
		}
	}
}

func TestLossProbBounds(t *testing.T) {
	top, n := testNetwork(t)
	for _, l := range top.Links {
		for h := 0; h < 24; h++ {
			p := n.LossProb(l.ID, Time(3*86400+h*3600))
			if p < 0 || p > 1 {
				t.Fatalf("loss probability %f out of [0,1]", p)
			}
			if p < n.Config().BaseLoss {
				t.Fatalf("loss %f below floor %f", p, n.Config().BaseLoss)
			}
		}
	}
}

func TestOutagesHappen(t *testing.T) {
	top, n := testNetwork(t)
	// Over a simulated fortnight across all links, at least one outage
	// window must be active at some probe instant.
	found := false
	for _, l := range top.Links {
		for h := 0; h < 14*24 && !found; h++ {
			if n.LossProb(l.ID, Time(h*3600+1800)) > 0.5 {
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Error("no outage windows observed in two weeks across all links; flap model inactive?")
	}
}

func TestEvalLinksComposition(t *testing.T) {
	top, n := testNetwork(t)
	links := []topology.LinkID{top.Links[0].ID, top.Links[2].ID, top.Links[4].ID}
	tm := Time(3600 * 30)
	st := n.EvalLinks(links, tm)
	wantDelay, wantProp, surv := 0.0, 0.0, 1.0
	for _, lid := range links {
		wantDelay += n.LinkDelayMs(lid, tm)
		wantProp += n.LinkPropMs(lid, tm)
		surv *= 1 - n.LossProb(lid, tm)
	}
	if math.Abs(st.DelayMs-wantDelay) > 1e-9 {
		t.Errorf("DelayMs = %f, want %f", st.DelayMs, wantDelay)
	}
	if math.Abs(st.PropDelayMs-wantProp) > 1e-9 {
		t.Errorf("PropDelayMs = %f, want %f", st.PropDelayMs, wantProp)
	}
	if math.Abs(st.LossProb-(1-surv)) > 1e-12 {
		t.Errorf("LossProb = %f, want %f", st.LossProb, 1-surv)
	}
	if st.PropDelayMs > st.DelayMs {
		t.Errorf("propagation %f exceeds total %f", st.PropDelayMs, st.DelayMs)
	}
}

func TestEvalLinksEmptyPath(t *testing.T) {
	_, n := testNetwork(t)
	st := n.EvalLinks(nil, 0)
	if st.DelayMs != 0 || st.LossProb != 0 || st.PropDelayMs != 0 {
		t.Errorf("empty path state should be zero, got %+v", st)
	}
}

func TestEvalHostPathIncludesAccess(t *testing.T) {
	top, n := testNetwork(t)
	tm := Time(7 * 3600)
	bare := n.EvalLinks(nil, tm)
	full, err := n.EvalHostPath(top.Hosts[0].ID, top.Hosts[1].ID, nil, tm)
	if err != nil {
		t.Fatal(err)
	}
	if full.DelayMs <= bare.DelayMs {
		t.Error("host path must add access-link delay")
	}
	minProp := top.Hosts[0].AccessDelayMs + top.Hosts[1].AccessDelayMs
	if math.Abs(full.PropDelayMs-minProp) > 1e-9 {
		t.Errorf("prop delay %f, want access sum %f", full.PropDelayMs, minProp)
	}
	if _, err := n.EvalHostPath(-1, top.Hosts[1].ID, nil, tm); err == nil {
		t.Error("unknown host should error")
	}
}

func TestSampleDelayDistribution(t *testing.T) {
	_, n := testNetwork(t)
	rng := rand.New(rand.NewSource(1))
	st := PathState{DelayMs: 40, PropDelayMs: 25}
	var sum float64
	const draws = 40000
	for i := 0; i < draws; i++ {
		d := n.SampleDelay(rng, st, 10)
		if d < st.PropDelayMs {
			t.Fatalf("sample %f below propagation floor %f", d, st.PropDelayMs)
		}
		sum += d
	}
	// Mean must match the expected delay plus the per-hop jitter means.
	want := st.DelayMs + 10*n.Config().ProcessingJitterMs
	got := sum / draws
	if math.Abs(got-want) > 0.5 {
		t.Errorf("mean sample %f, want ~%f", got, want)
	}
}

func TestSampleLossMatchesProbability(t *testing.T) {
	_, n := testNetwork(t)
	rng := rand.New(rand.NewSource(2))
	st := PathState{LossProb: 0.3}
	lost := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if n.SampleLoss(rng, st) {
			lost++
		}
	}
	frac := float64(lost) / trials
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("observed loss fraction %f, want ~0.3", frac)
	}
}

func TestValueNoiseProperties(t *testing.T) {
	// Range check across many entities and times.
	f := func(entity uint16, tRaw uint32) bool {
		v := valueNoise(1, uint64(entity), Time(float64(tRaw)/7.0), 60)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Continuity: small time steps make small value steps.
	for i := 0; i < 1000; i++ {
		t0 := Time(float64(i) * 13.7)
		a := valueNoise(9, 42, t0, 600)
		b := valueNoise(9, 42, t0+1, 600)
		if math.Abs(a-b) > 0.02 {
			t.Fatalf("noise jumped %f -> %f over 1s with 600s period", a, b)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	if h := (Time(3600 * 5)).PSTHour(); h != 5 {
		t.Errorf("PSTHour = %f, want 5", h)
	}
	if (Time(0)).Weekend() {
		t.Error("epoch (Monday) should not be weekend")
	}
	if !(Time(5 * 86400)).Weekend() || !(Time(6*86400 + 100)).Weekend() {
		t.Error("Saturday/Sunday should be weekend")
	}
	if (Time(7 * 86400)).Weekend() {
		t.Error("second Monday should not be weekend")
	}
	// Local hour: longitude -75 (east coast) is 3 hours ahead of PST.
	if lh := (Time(0)).LocalHour(-75); math.Abs(lh-3) > 1e-9 {
		t.Errorf("LocalHour(-75) at midnight PST = %f, want 3", lh)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		t    Time
		want Bucket
	}{
		{Time(5 * 86400), BucketWeekend},
		{Time(3 * 3600), BucketNight},
		{Time(8 * 3600), BucketMorning},
		{Time(14 * 3600), BucketAfternoon},
		{Time(20 * 3600), BucketEvening},
		{Time(86400 + 11*3600), BucketMorning},
	}
	for _, c := range cases {
		if got := BucketOf(c.t); got != c.want {
			t.Errorf("BucketOf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if len(Buckets()) != 5 {
		t.Error("expected 5 buckets")
	}
	for _, b := range Buckets() {
		if b.String() == "unknown" {
			t.Errorf("bucket %d has no label", b)
		}
	}
}

func TestExchangeLinksMoreCongested(t *testing.T) {
	top, n := testNetwork(t)
	exSum, exN, privSum, privN := 0.0, 0, 0.0, 0
	tm := Time(2*86400 + 13*3600)
	for _, l := range top.Links {
		if l.Rel == topology.Internal {
			continue
		}
		u := n.Utilization(l.ID, tm)
		if l.Exchange >= 0 {
			exSum += u
			exN++
		} else {
			privSum += u
			privN++
		}
	}
	if exN == 0 || privN == 0 {
		t.Skip("need both exchange and private inter-AS links")
	}
	if exSum/float64(exN) <= privSum/float64(privN) {
		t.Errorf("exchange links (%f) should be more utilized than private ones (%f)",
			exSum/float64(exN), privSum/float64(privN))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := ConfigFor(topology.Era1995).Validate(); err != nil {
		t.Fatalf("1995 config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.PacketBytes = 0 },
		func(c *Config) { c.BufferPackets = -1 },
		func(c *Config) { c.BufferMs = -5 },
		func(c *Config) { c.QueueKnee = 1.2 },
		func(c *Config) { c.LossKnee = 0 },
		func(c *Config) { c.BaseLoss = 2 },
		func(c *Config) { c.CongestionLoss = -0.1 },
		func(c *Config) { c.FlapLoss = 1.5 },
		func(c *Config) { c.DriftPeriodSec = 0 },
		func(c *Config) { c.WeekendFactor = 2 },
		func(c *Config) { c.NightFloor = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPropertyLinkStateBounds(t *testing.T) {
	top, n := testNetwork(t)
	f := func(linkRaw uint16, tRaw uint32) bool {
		lid := top.Links[int(linkRaw)%len(top.Links)].ID
		tm := Time(float64(tRaw % (14 * 86400)))
		u := n.Utilization(lid, tm)
		p := n.LossProb(lid, tm)
		q := n.QueueDelayMs(lid, tm)
		prop := n.LinkPropMs(lid, tm)
		base := top.Link(lid).PropDelayMs
		amp := n.Config().RouteWanderAmp
		return u >= 0.02 && u <= 0.99 &&
			p >= 0 && p <= 1 &&
			q >= 0 &&
			prop >= base*(1-amp)-1e-9 && prop <= base*(1+amp)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestRouteWanderDisabled(t *testing.T) {
	top, _ := testNetwork(t)
	cfg := DefaultConfig()
	cfg.RouteWanderAmp = 0
	n := New(top, cfg)
	l := top.Links[3]
	for _, tm := range []Time{0, 3600, 86400} {
		if got := n.LinkPropMs(l.ID, tm); got != l.PropDelayMs {
			t.Fatalf("wander disabled but prop %f != %f", got, l.PropDelayMs)
		}
	}
}
