// Package netsim models the dynamic performance of the synthetic
// Internet: per-link background utilization with diurnal and weekly load
// patterns, utilization-dependent queuing delay and packet loss, shared
// congestion at exchange points, and brief outage windows that stand in
// for the route flaps and failures observed in the paper's datasets.
//
// The model is analytic rather than packet-level: the state of every link
// at every instant is a deterministic function of (seed, link, time), so
// simultaneous measurements of different paths see a mutually consistent
// network — the property the paper's UW4-A episodes depend on — and whole
// multi-week measurement campaigns run in milliseconds.
package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"pathsel/internal/topology"
)

// Config tunes the congestion model. Use DefaultConfig as a base.
type Config struct {
	// Seed decorrelates the network's stochastic processes from the
	// topology seed.
	Seed int64

	// BaseUtilization by link role at the height of the working day.
	UtilCore     float64
	UtilTransit  float64
	UtilEdge     float64
	UtilAccess   float64
	ExchangeBump float64 // extra utilization on exchange-point links
	// ExchangeNoiseAmp scales exchange-wide congestion swings shared by
	// every link at the same public exchange fabric.
	ExchangeNoiseAmp float64

	// DriftAmp and JitterAmp scale slow (minutes-scale) and fast
	// (seconds-scale) random load variation.
	DriftAmp  float64
	JitterAmp float64
	// DriftPeriodSec and JitterPeriodSec are the noise grid periods.
	DriftPeriodSec  float64
	JitterPeriodSec float64

	// NightFloor is the fraction of peak load present at the quietest
	// hour; weekends run at WeekendFactor of the weekday curve.
	NightFloor    float64
	WeekendFactor float64

	// BaseLoss is the floor loss probability per link; CongestionLoss
	// scales the loss added as utilization exceeds LossKnee.
	BaseLoss       float64
	CongestionLoss float64
	LossKnee       float64

	// BufferPackets caps the fine-grained (per-flow) queue length in
	// packets of PacketBytes.
	BufferPackets float64
	PacketBytes   float64

	// QueueKnee is the utilization above which persistent overload
	// builds standing queues; BufferMs is the full-buffer delay those
	// queues reach (mid/late-90s routers carried hundreds of
	// milliseconds of FIFO buffering at bottlenecks, independent of
	// line rate).
	QueueKnee float64
	BufferMs  float64

	// FlapProbPerHour is the chance a link suffers an outage window in
	// any given hour; FlapWindowSec is the window length; FlapLoss is
	// the loss probability during the window.
	FlapProbPerHour float64
	FlapWindowSec   float64
	FlapLoss        float64

	// ProcessingJitterMs is the mean of the exponential per-sample
	// jitter added to a measured RTT (router forwarding variance, host
	// scheduling).
	ProcessingJitterMs float64

	// RouteWanderAmp scales the slow per-link baseline-delay wander that
	// stands in for route changes: over days, the effective fixed delay
	// of a link drifts by up to this fraction of its propagation delay,
	// as reroutes did in the paper's datasets (Paxson's route
	// fluctuation). RouteWanderPeriodSec is the wander timescale.
	RouteWanderAmp       float64
	RouteWanderPeriodSec float64
}

// DefaultConfig returns the baseline congestion model (the 1998-99
// Internet of the UW datasets).
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		UtilCore:             0.42,
		UtilTransit:          0.52,
		UtilEdge:             0.45,
		UtilAccess:           0.35,
		ExchangeBump:         0.30,
		ExchangeNoiseAmp:     0.20,
		DriftAmp:             0.24,
		JitterAmp:            0.10,
		DriftPeriodSec:       600,
		JitterPeriodSec:      15,
		NightFloor:           0.30,
		WeekendFactor:        0.45,
		BaseLoss:             0.0004,
		CongestionLoss:       0.12,
		LossKnee:             0.70,
		BufferPackets:        512,
		PacketBytes:          1500,
		QueueKnee:            0.75,
		BufferMs:             400,
		FlapProbPerHour:      0.012,
		FlapWindowSec:        240,
		FlapLoss:             0.85,
		ProcessingJitterMs:   0.3,
		RouteWanderAmp:       0.22,
		RouteWanderPeriodSec: 100000,
	}
}

// ConfigFor returns the congestion model for an era. The mid-90s preset
// runs hotter — the NAP-congestion period the D2/N2 datasets were
// collected in — with more load variation and more frequent outages.
func ConfigFor(era topology.Era) Config {
	cfg := DefaultConfig()
	if era == topology.Era1995 {
		cfg.UtilCore = 0.48
		cfg.UtilTransit = 0.62
		cfg.UtilEdge = 0.55
		cfg.ExchangeBump = 0.40
		cfg.ExchangeNoiseAmp = 0.22
		cfg.DriftAmp = 0.28
		cfg.CongestionLoss = 0.16
		cfg.FlapProbPerHour = 0.02
		cfg.BufferMs = 520
	}
	return cfg
}

// Validate reports a descriptive error for configurations that the
// model cannot evaluate sensibly.
func (c Config) Validate() error {
	switch {
	case c.PacketBytes <= 0:
		return fmt.Errorf("netsim: PacketBytes must be positive")
	case c.BufferPackets <= 0:
		return fmt.Errorf("netsim: BufferPackets must be positive")
	case c.BufferMs < 0:
		return fmt.Errorf("netsim: BufferMs must be non-negative")
	case c.QueueKnee <= 0 || c.QueueKnee >= 1:
		return fmt.Errorf("netsim: QueueKnee %.2f outside (0,1)", c.QueueKnee)
	case c.LossKnee <= 0 || c.LossKnee >= 1:
		return fmt.Errorf("netsim: LossKnee %.2f outside (0,1)", c.LossKnee)
	case c.BaseLoss < 0 || c.BaseLoss > 1:
		return fmt.Errorf("netsim: BaseLoss %.4f outside [0,1]", c.BaseLoss)
	case c.CongestionLoss < 0 || c.CongestionLoss > 1:
		return fmt.Errorf("netsim: CongestionLoss %.2f outside [0,1]", c.CongestionLoss)
	case c.FlapLoss < 0 || c.FlapLoss > 1:
		return fmt.Errorf("netsim: FlapLoss %.2f outside [0,1]", c.FlapLoss)
	case c.DriftPeriodSec <= 0 || c.JitterPeriodSec <= 0:
		return fmt.Errorf("netsim: noise periods must be positive")
	case c.WeekendFactor < 0 || c.WeekendFactor > 1:
		return fmt.Errorf("netsim: WeekendFactor %.2f outside [0,1]", c.WeekendFactor)
	case c.NightFloor < 0 || c.NightFloor > 1:
		return fmt.Errorf("netsim: NightFloor %.2f outside [0,1]", c.NightFloor)
	}
	return nil
}

// Network evaluates link and path performance at simulated times.
type Network struct {
	top *topology.Topology
	cfg Config
}

// New creates a network model over a topology.
func New(top *topology.Topology, cfg Config) *Network {
	return &Network{top: top, cfg: cfg}
}

// Config returns the model configuration.
func (n *Network) Config() Config { return n.cfg }

// activity returns the diurnal load level in [0,1] for a point with the
// given longitude: a Gaussian bump peaked at 13:00 local time, damped on
// weekends.
func (n *Network) activity(t Time, lonDeg float64) float64 {
	h := t.LocalHour(lonDeg)
	// Distance to 13:00 on the 24h circle.
	d := math.Abs(h - 13)
	if d > 12 {
		d = 24 - d
	}
	a := math.Exp(-d * d / (2 * 4.5 * 4.5))
	if t.Weekend() {
		a *= n.cfg.WeekendFactor
	}
	return a
}

// exchangeSeverity returns the chronic congestion multiplier of an
// exchange point. Real exchanges differed enormously — mid-90s MAE-East
// ran saturated while others were fine — and this concentration is what
// lets detour paths route around specific meltdown points rather than
// facing uniform load everywhere.
func (n *Network) exchangeSeverity(exchange int) float64 {
	return 0.35 + 1.5*unit(hash64(uint64(n.cfg.Seed)^0x9999, uint64(exchange)+1, 0))
}

// baseUtil returns the peak-hour target utilization for a link.
func (n *Network) baseUtil(l *topology.Link) float64 {
	from := n.top.Router(l.From)
	cls := n.top.AS(from.AS).Class
	u := n.cfg.UtilEdge
	switch {
	case l.Rel != topology.Internal:
		// Inter-AS links inherit the higher of the two sides' classes.
		u = n.cfg.UtilTransit
		if cls == topology.Tier1 && n.top.AS(n.top.Router(l.To).AS).Class == topology.Tier1 {
			u = n.cfg.UtilCore
		}
	case cls == topology.Tier1:
		u = n.cfg.UtilCore
	case cls == topology.Transit:
		u = n.cfg.UtilTransit
	}
	if l.Exchange >= 0 {
		u += n.cfg.ExchangeBump * n.exchangeSeverity(l.Exchange)
	}
	return u
}

// linkLon returns the longitude used for the link's local-time load curve.
func (n *Network) linkLon(l *topology.Link) float64 {
	a := n.top.Router(l.From).Loc
	b := n.top.Router(l.To).Loc
	return (a.LonDeg + b.LonDeg) / 2
}

// Utilization returns the instantaneous utilization of a link in
// (0, 0.99].
func (n *Network) Utilization(lid topology.LinkID, t Time) float64 {
	l := n.top.Link(lid)
	cfg := n.cfg
	act := n.activity(t, n.linkLon(l))
	day := cfg.NightFloor + (1-cfg.NightFloor)*act
	u := n.baseUtil(l) * day

	seed := uint64(cfg.Seed)
	id := uint64(lid) + 1
	u += cfg.DriftAmp * (valueNoise(seed, id, t, cfg.DriftPeriodSec) - 0.5) * 2
	u += cfg.JitterAmp * (valueNoise(seed^0x5555, id, t, cfg.JitterPeriodSec) - 0.5) * 2
	if l.Exchange >= 0 {
		// Exchange-wide congestion shared by all links at the fabric.
		exID := uint64(l.Exchange) + 0x1000
		u += cfg.ExchangeNoiseAmp * (valueNoise(seed^0x7777, exID, t, cfg.DriftPeriodSec) - 0.5) * 2
	}
	return clamp(u, 0.02, 0.99)
}

// LinkPropMs returns the link's effective fixed delay at time t: the
// physical propagation delay modulated by the slow route-wander process
// (reroutes change path baselines for days at a time).
func (n *Network) LinkPropMs(lid topology.LinkID, t Time) float64 {
	l := n.top.Link(lid)
	amp := n.cfg.RouteWanderAmp
	if amp == 0 {
		return l.PropDelayMs
	}
	w := valueNoise(uint64(n.cfg.Seed)^0x3333, uint64(lid)+1, t, n.cfg.RouteWanderPeriodSec)
	return l.PropDelayMs * (1 + amp*(w-0.5)*2)
}

// serviceTimeMs is the transmission time of one packet on the link.
func (n *Network) serviceTimeMs(l *topology.Link) float64 {
	return n.cfg.PacketBytes * 8 / (l.CapacityMbps * 1000)
}

// QueueDelayMs returns the expected queuing delay on a link at time t:
// an M/M/1 waiting time (capped at the packet buffer) for the
// fine-grained component, plus a standing-queue component that grows
// quadratically once utilization crosses the overload knee — the
// persistent full buffers of congested mid-90s exchange fabrics, whose
// delay is set by buffer depth in time, not by a single packet's
// transmission time.
func (n *Network) QueueDelayMs(lid topology.LinkID, t Time) float64 {
	l := n.top.Link(lid)
	u := n.Utilization(lid, t)
	s := n.serviceTimeMs(l)
	w := s * u / (1 - u)
	if max := s * n.cfg.BufferPackets; w > max {
		w = max
	}
	if u > n.cfg.QueueKnee {
		x := (u - n.cfg.QueueKnee) / (1 - n.cfg.QueueKnee)
		w += n.cfg.BufferMs * x * x
	}
	return w
}

// LossProb returns the packet-loss probability on a link at time t,
// combining the loss floor, congestion loss above the knee, and outage
// windows (route flaps, failures).
func (n *Network) LossProb(lid topology.LinkID, t Time) float64 {
	cfg := n.cfg
	u := n.Utilization(lid, t)
	p := cfg.BaseLoss
	if u > cfg.LossKnee {
		x := (u - cfg.LossKnee) / (1 - cfg.LossKnee)
		p += cfg.CongestionLoss * x * x * x
	}
	if eventAt(uint64(cfg.Seed), uint64(lid)+1, t, cfg.FlapProbPerHour, cfg.FlapWindowSec) {
		p = 1 - (1-p)*(1-cfg.FlapLoss)
	}
	return clamp(p, 0, 1)
}

// LinkDelayMs returns the effective fixed delay plus expected queuing
// delay for a link.
func (n *Network) LinkDelayMs(lid topology.LinkID, t Time) float64 {
	return n.LinkPropMs(lid, t) + n.QueueDelayMs(lid, t)
}

// accessState models a host's access link as a synthetic link-like
// process keyed by the host ID.
func (n *Network) accessState(h *topology.Host, t Time) (delayMs, loss float64) {
	cfg := n.cfg
	act := n.activity(t, h.Loc.LonDeg)
	u := cfg.UtilAccess * (cfg.NightFloor + (1-cfg.NightFloor)*act)
	id := uint64(h.ID) + 0x9000000
	u += cfg.DriftAmp * (valueNoise(uint64(cfg.Seed)^0x1212, id, t, cfg.DriftPeriodSec) - 0.5) * 2
	u = clamp(u, 0.02, 0.99)
	s := cfg.PacketBytes * 8 / (h.AccessCapacityMbps * 1000)
	w := s * u / (1 - u)
	if max := s * cfg.BufferPackets; w > max {
		w = max
	}
	if u > cfg.QueueKnee {
		x := (u - cfg.QueueKnee) / (1 - cfg.QueueKnee)
		w += cfg.BufferMs * x * x
	}
	p := cfg.BaseLoss
	if u > cfg.LossKnee {
		x := (u - cfg.LossKnee) / (1 - cfg.LossKnee)
		p += cfg.CongestionLoss * x * x * x
	}
	return h.AccessDelayMs + w, clamp(p, 0, 1)
}

// PathState is the instantaneous expected performance of a one-way path.
type PathState struct {
	// DelayMs is propagation plus expected queuing delay, including the
	// endpoints' access links where hosts are involved.
	DelayMs float64
	// PropDelayMs is the fixed component only.
	PropDelayMs float64
	// LossProb is the probability that a packet is lost anywhere on the
	// path (links assumed independent).
	LossProb float64
}

// EvalLinks computes the instantaneous one-way state of a sequence of
// links at time t, without any host access links.
func (n *Network) EvalLinks(links []topology.LinkID, t Time) PathState {
	st := PathState{}
	surv := 1.0
	for _, lid := range links {
		prop := n.LinkPropMs(lid, t)
		st.PropDelayMs += prop
		st.DelayMs += prop + n.QueueDelayMs(lid, t)
		surv *= 1 - n.LossProb(lid, t)
	}
	st.LossProb = 1 - surv
	return st
}

// EvalHostPath computes the one-way state of a host-to-host path,
// including both access links.
func (n *Network) EvalHostPath(src, dst topology.HostID, links []topology.LinkID, t Time) (PathState, error) {
	hs, hd := n.top.Host(src), n.top.Host(dst)
	if hs == nil || hd == nil {
		return PathState{}, fmt.Errorf("netsim: unknown host %d or %d", src, dst)
	}
	st := n.EvalLinks(links, t)
	sd, sl := n.accessState(hs, t)
	dd, dl := n.accessState(hd, t)
	st.DelayMs += sd + dd
	st.PropDelayMs += hs.AccessDelayMs + hd.AccessDelayMs
	st.LossProb = 1 - (1-st.LossProb)*(1-sl)*(1-dl)
	return st, nil
}

// HostAccessState exposes the access-link model by host ID, for the
// packet-level data plane: the instantaneous one-way access delay
// (fixed plus expected queuing, in ms) and loss probability. ok is
// false when the host is unknown.
func (n *Network) HostAccessState(id topology.HostID, t Time) (delayMs, loss float64, ok bool) {
	h := n.top.Host(id)
	if h == nil {
		return 0, 0, false
	}
	d, l := n.accessState(h, t)
	return d, l, true
}

// SampleDelay draws one concrete one-way delay sample: the fixed
// propagation component, plus an exponentially distributed queuing draw
// whose mean is the expected queuing delay (the M/M/1 waiting time is
// approximately exponential), plus per-hop processing jitter. The
// resulting samples have the right mean, are right-skewed like real
// round-trip measurements, and make low quantiles a usable propagation
// estimator — the property the paper's Section 7.2 relies on.
func (n *Network) SampleDelay(rng *rand.Rand, st PathState, hops int) float64 {
	queue := st.DelayMs - st.PropDelayMs
	if queue < 0 {
		queue = 0
	}
	d := st.PropDelayMs + rng.ExpFloat64()*queue
	for i := 0; i < hops; i++ {
		d += rng.ExpFloat64() * n.cfg.ProcessingJitterMs
	}
	return d
}

// SampleLoss draws whether a packet is lost on a path in the given state.
func (n *Network) SampleLoss(rng *rand.Rand, st PathState) bool {
	return rng.Float64() < st.LossProb
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
