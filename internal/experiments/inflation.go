package experiments

import (
	"sort"

	"pathsel/internal/core"
	"pathsel/internal/optimal"
)

// InflationResult is one pair's comparison of three routings: the policy
// default, the best host-relayed alternate (the paper's remedy), and the
// globally optimal router-level path (the policy-free bound only the
// simulator can compute). All three are propagation round-trip delays.
type InflationResult struct {
	// DefaultMs is the default path's propagation estimate (tenth
	// percentile of measured RTTs).
	DefaultMs float64
	// AlternateMs is the best synthetic alternate's composed estimate.
	AlternateMs float64
	// OptimalMs is the true optimal round-trip propagation delay.
	OptimalMs float64
}

// Inflation is default over optimal (>= 1 up to measurement noise).
func (r InflationResult) Inflation() float64 { return r.DefaultMs / r.OptimalMs }

// Recovery is the fraction of the default-to-optimal gap the alternate
// closes: 0 = no better than default, 1 = fully optimal, negative =
// alternate worse than default. Pairs with no meaningful gap (default
// within 5% of optimal) report 0.
func (r InflationResult) Recovery() float64 {
	gap := r.DefaultMs - r.OptimalMs
	if gap <= 0.05*r.OptimalMs {
		return 0
	}
	return (r.DefaultMs - r.AlternateMs) / gap
}

// InflationSummary aggregates the study.
type InflationSummary struct {
	Pairs int
	// MedianInflation and P90Inflation summarize default/optimal.
	MedianInflation, P90Inflation float64
	// InflatedFraction is the share of pairs with >= 20% inflation.
	InflatedFraction float64
	// MeanRecovery averages the gap fraction recovered by alternates
	// over inflated pairs (clamped to [-1, 1] per pair to bound the
	// influence of outliers).
	MeanRecovery float64
	// HalfRecoveredFraction is the share of inflated pairs where the
	// alternate closes at least half of the gap.
	HalfRecoveredFraction float64
}

// PathInflation measures how far UW3's default paths are from the
// policy-free optimum, and how much of that optimality gap the paper's
// host-relayed alternates recover.
func PathInflation(s *Suite) ([]InflationResult, InflationSummary, error) {
	opt := optimal.New(s.TopoUW)
	a := s.analyzer(s.UW3)
	rs, err := a.Query(core.QuerySpec{Metric: core.MetricPropDelay})
	if err != nil {
		return nil, InflationSummary{}, err
	}
	results := rs.PairResults()
	var out []InflationResult
	for _, r := range results {
		optRTT, err := opt.HostRTT(r.Key.Src, r.Key.Dst)
		if err != nil {
			return nil, InflationSummary{}, err
		}
		out = append(out, InflationResult{
			DefaultMs:   r.DefaultValue,
			AlternateMs: r.AltValue,
			OptimalMs:   optRTT,
		})
	}

	sum := InflationSummary{Pairs: len(out)}
	if len(out) == 0 {
		return out, sum, nil
	}
	inflations := make([]float64, len(out))
	for i, r := range out {
		inflations[i] = r.Inflation()
	}
	sort.Float64s(inflations)
	sum.MedianInflation = inflations[len(inflations)/2]
	sum.P90Inflation = inflations[int(float64(len(inflations))*0.9)]
	inflated, halfRecovered := 0, 0
	recSum := 0.0
	for _, r := range out {
		if r.Inflation() < 1.2 {
			continue
		}
		inflated++
		rec := r.Recovery()
		if rec > 1 {
			rec = 1
		}
		if rec < -1 {
			rec = -1
		}
		recSum += rec
		if rec >= 0.5 {
			halfRecovered++
		}
	}
	sum.InflatedFraction = float64(inflated) / float64(len(out))
	if inflated > 0 {
		sum.MeanRecovery = recSum / float64(inflated)
		sum.HalfRecoveredFraction = float64(halfRecovered) / float64(inflated)
	}
	return out, sum, nil
}
