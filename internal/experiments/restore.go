package experiments

import (
	"context"
	"fmt"
	"sync"

	"pathsel/internal/dataset"
	"pathsel/internal/geo"
)

// PrimaryDatasetNames lists the datasets a snapshot must carry to
// reassemble a suite: the six campaign outputs. The two North American
// subsets (D2-NA, N2-NA) are derived views sharing path data with
// D2/N2, so Reassemble recomputes them instead of duplicating them on
// disk.
func PrimaryDatasetNames() []string {
	return []string{"UW1", "UW3", "UW4-A", "UW4-B", "D2", "N2"}
}

// Reassemble rebuilds a complete Suite from its persisted campaign
// outputs. The measurement substrate (topologies, IGP tables, BGP
// routes, congestion model, probers) is a pure function of cfg and is
// regenerated through the same helpers the cold build uses — at the
// full preset that costs milliseconds against the tens of seconds the
// campaigns themselves take, which is the entire point of snapshotting:
// only the expensive, already-deterministic campaign data rides on
// disk. primary must hold every PrimaryDatasetNames entry; the D2-NA
// and N2-NA subsets are recomputed from the restored topology exactly
// as the cold build derives them.
func Reassemble(ctx context.Context, cfg Config, primary map[string]*dataset.Dataset) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, name := range PrimaryDatasetNames() {
		if primary[name] == nil {
			return nil, fmt.Errorf("experiments: reassemble: missing dataset %q", name)
		}
	}
	sc := scaleFor(cfg.Preset)
	s := &Suite{Config: cfg}

	// The two planes are independent; regenerate them concurrently the
	// way BuildContext does.
	var wg sync.WaitGroup
	var uwErr, d2Err error
	var uwPlane, d2Plane *plane
	wg.Add(2)
	go func() {
		defer wg.Done()
		if uwErr = ctx.Err(); uwErr != nil {
			return
		}
		uwPlane, uwErr = buildPlane(uwTopologyConfig(cfg, sc), cfg.Seed+101, cfg.Seed+201)
	}()
	go func() {
		defer wg.Done()
		if d2Err = ctx.Err(); d2Err != nil {
			return
		}
		d2Plane, d2Err = buildPlane(d2TopologyConfig(cfg, sc), cfg.Seed+102, cfg.Seed+202)
	}()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if uwErr != nil {
		return nil, fmt.Errorf("experiments: reassemble UW plane: %w", uwErr)
	}
	if d2Err != nil {
		return nil, fmt.Errorf("experiments: reassemble D2 plane: %w", d2Err)
	}
	s.TopoUW, s.uwPlane = uwPlane.top, uwPlane
	s.TopoD2, s.d2Plane = d2Plane.top, d2Plane

	s.UW1 = primary["UW1"]
	s.UW3 = primary["UW3"]
	s.UW4A = primary["UW4-A"]
	s.UW4B = primary["UW4-B"]
	s.D2 = primary["D2"]
	s.N2 = primary["N2"]
	s.D2NA = s.D2.Subset("D2-NA", inRegion(d2Plane.top, s.D2.Hosts, geo.NorthAmerica))
	s.N2NA = s.N2.Subset("N2-NA", inRegion(d2Plane.top, s.N2.Hosts, geo.NorthAmerica))
	return s, nil
}
