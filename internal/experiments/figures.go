package experiments

import (
	"fmt"

	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/stats"
	"pathsel/internal/tcpmodel"
)

// Series is one labeled CDF curve of a figure.
type Series struct {
	Name string
	CDF  stats.CDF
}

// Confidence is the level used throughout the paper's Section 6.
const Confidence = 0.95

// improvementSeries runs the alternate-path comparison on several
// datasets and returns one improvement-CDF series per dataset.
func improvementSeries(s *Suite, dss []*dataset.Dataset, metric core.Metric, maxVia int) ([]Series, error) {
	var out []Series
	for _, ds := range dss {
		rs, err := s.analyzer(ds).Query(core.QuerySpec{Metric: metric, MaxVia: maxVia})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%v: %w", ds.Name, metric, err)
		}
		out = append(out, Series{Name: ds.Name, CDF: core.ImprovementCDF(rs.PairResults())})
	}
	return out, nil
}

// Figure1 is the CDF of the difference between each path's mean
// round-trip time and the best alternate's, for UW1, UW3, D2-NA and D2.
func Figure1(s *Suite) ([]Series, error) {
	return improvementSeries(s, s.Datasets(), core.MetricRTT, 0)
}

// Figure2 is the CDF of the ratio between default and best-alternate
// mean round-trip times for the same four datasets.
func Figure2(s *Suite) ([]Series, error) {
	var out []Series
	for _, ds := range s.Datasets() {
		rs, err := s.analyzer(ds).Query(core.QuerySpec{Metric: core.MetricRTT})
		if err != nil {
			return nil, err
		}
		out = append(out, Series{Name: ds.Name, CDF: core.RatioCDF(rs.PairResults())})
	}
	return out, nil
}

// Figure3 is the CDF of the difference in mean loss rate between default
// and best alternate paths.
func Figure3(s *Suite) ([]Series, error) {
	return improvementSeries(s, s.Datasets(), core.MetricLoss, 0)
}

// bandwidthSeries computes Figure 4/5 series for N2 and N2-NA under both
// loss-composition modes.
func bandwidthSeries(s *Suite, ratio bool) ([]Series, error) {
	model := tcpmodel.Default()
	var out []Series
	for _, ds := range []*dataset.Dataset{s.N2, s.N2NA} {
		for _, mode := range []core.BandwidthMode{core.Pessimistic, core.Optimistic} {
			rs, err := s.analyzer(ds).Query(core.QuerySpec{Bandwidth: &core.BandwidthQuery{Model: model, Mode: mode}})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s bandwidth: %w", ds.Name, err)
			}
			results := rs.BandwidthResults()
			vals := make([]float64, 0, len(results))
			for _, r := range results {
				if ratio {
					vals = append(vals, r.Ratio())
				} else {
					vals = append(vals, r.Improvement())
				}
			}
			out = append(out, Series{
				Name: fmt.Sprintf("%s %s", ds.Name, mode),
				CDF:  stats.NewCDF(vals),
			})
		}
	}
	return out, nil
}

// Figure4 is the CDF of the bandwidth difference (best one-hop alternate
// minus default) for N2 and N2-NA, optimistic and pessimistic.
func Figure4(s *Suite) ([]Series, error) { return bandwidthSeries(s, false) }

// Figure5 is the corresponding bandwidth-ratio CDF.
func Figure5(s *Suite) ([]Series, error) { return bandwidthSeries(s, true) }

// Figure6 compares mean-based and median-based (convolution) one-hop
// alternate improvements on the D2-NA dataset.
func Figure6(s *Suite) ([]Series, error) {
	a := s.analyzer(s.D2NA)
	results, err := a.BestMedianAlternates()
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(results))
	medians := make([]float64, len(results))
	for i, r := range results {
		means[i] = r.MeanImprovement
		medians[i] = r.MedianImprovement
	}
	return []Series{
		{Name: "mean (one-hop)", CDF: stats.NewCDF(means)},
		{Name: "median (one-hop)", CDF: stats.NewCDF(medians)},
	}, nil
}

// Figure7 is the UW3 round-trip improvement CDF annotated with 95%
// confidence half-widths per pair.
func Figure7(s *Suite) ([]core.CIPoint, error) {
	rs, err := s.analyzer(s.UW3).Query(core.QuerySpec{Metric: core.MetricRTT})
	if err != nil {
		return nil, err
	}
	return core.ImprovementsWithCI(rs.PairResults(), Confidence), nil
}

// Figure8 is the same for loss rate.
func Figure8(s *Suite) ([]core.CIPoint, error) {
	rs, err := s.analyzer(s.UW3).Query(core.QuerySpec{Metric: core.MetricLoss})
	if err != nil {
		return nil, err
	}
	return core.ImprovementsWithCI(rs.PairResults(), Confidence), nil
}

// bucketSeries runs the time-of-day breakdown on UW3 (Figures 9 and 10).
func bucketSeries(s *Suite, metric core.Metric) ([]Series, error) {
	a := s.analyzer(s.UW3)
	var out []Series
	for _, b := range netsim.Buckets() {
		results, err := a.BucketResults(metric, b, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, Series{Name: b.String(), CDF: core.ImprovementCDF(results)})
	}
	return out, nil
}

// Figure9 is the UW3 round-trip improvement CDF broken down by weekend
// and four six-hour weekday buckets (PST).
func Figure9(s *Suite) ([]Series, error) { return bucketSeries(s, core.MetricRTT) }

// Figure10 is the same breakdown for loss rate.
func Figure10(s *Suite) ([]Series, error) { return bucketSeries(s, core.MetricLoss) }

// Figure11 compares long-term averaging with simultaneous measurement:
// the UW4-B improvement CDF versus the UW4-A pair-averaged and
// unaveraged episode CDFs.
func Figure11(s *Suite) ([]Series, error) {
	brs, err := s.analyzer(s.UW4B).Query(core.QuerySpec{Metric: core.MetricRTT})
	if err != nil {
		return nil, err
	}
	bResults := brs.PairResults()
	ep, err := s.analyzer(s.UW4A).AnalyzeEpisodes()
	if err != nil {
		return nil, err
	}
	return []Series{
		{Name: "UW4-B", CDF: core.ImprovementCDF(bResults)},
		{Name: "pair-averaged UW4-A", CDF: stats.NewCDF(ep.PairAveraged)},
		{Name: "unaveraged UW4-A", CDF: stats.NewCDF(ep.Unaveraged)},
	}, nil
}

// TopTenHosts is how many hosts the Figure 12 greedy removal drops.
const TopTenHosts = 10

// Figure12Result carries the before/after CDFs and the removed hosts.
type Figure12Result struct {
	All     Series
	Without Series
	Removed []core.RemovalStep
}

// Figure12 removes the ten hosts with the greatest impact on the UW3
// round-trip CDF (greedy, as in the paper) and compares the curves.
func Figure12(s *Suite) (Figure12Result, error) {
	a := s.analyzer(s.UW3)
	allRS, err := a.Query(core.QuerySpec{Metric: core.MetricRTT})
	if err != nil {
		return Figure12Result{}, err
	}
	all := allRS.PairResults()
	// Removing ten of the paper's 39 hosts drops about a quarter of the
	// host set; cap the removal at that proportion so reduced host sets
	// (the quick preset) test the same question.
	n := TopTenHosts
	if quarter := len(s.UW3.Hosts) / 4; n > quarter {
		n = quarter
	}
	steps, after, err := a.GreedyRemoveTop(core.MetricRTT, 0, n)
	if err != nil {
		return Figure12Result{}, err
	}
	return Figure12Result{
		All:     Series{Name: "all " + s.UW3.Name + " hosts", CDF: core.ImprovementCDF(all)},
		Without: Series{Name: "without 'top ten'", CDF: core.ImprovementCDF(after)},
		Removed: steps,
	}, nil
}

// Figure13 is the CDF of per-host normalized improvement contributions
// in UW3.
func Figure13(s *Suite) (Series, error) {
	contribs, err := s.analyzer(s.UW3).ImprovementContributions(core.MetricRTT)
	if err != nil {
		return Series{}, err
	}
	vals := make([]float64, len(contribs))
	for i, c := range contribs {
		vals[i] = c.Value
	}
	return Series{Name: "normalized improvement contribution", CDF: stats.NewCDF(vals)}, nil
}

// Figure14 is the AS scatterplot for UW1: how many default paths and how
// many best alternate paths each AS appears in.
func Figure14(s *Suite) ([]core.ASCount, error) {
	return s.analyzer(s.UW1).ASAppearances(core.MetricRTT, 0)
}

// Figure15 compares the UW3 improvement CDFs for propagation delay
// (tenth-percentile estimate) and mean round-trip time.
func Figure15(s *Suite) ([]Series, error) {
	a := s.analyzer(s.UW3)
	prop, err := a.Query(core.QuerySpec{Metric: core.MetricPropDelay})
	if err != nil {
		return nil, err
	}
	rtt, err := a.Query(core.QuerySpec{Metric: core.MetricRTT})
	if err != nil {
		return nil, err
	}
	return []Series{
		{Name: "propagation delay", CDF: core.ImprovementCDF(prop.PairResults())},
		{Name: "mean round-trip", CDF: core.ImprovementCDF(rtt.PairResults())},
	}, nil
}

// Figure16 is the propagation-versus-queuing decomposition scatter for
// UW3, with the six-group census.
func Figure16(s *Suite) ([]core.DelayDecomposition, error) {
	return s.analyzer(s.UW3).DecomposeDelay()
}
