package experiments

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pathsel/internal/forward"
	"pathsel/internal/netsim"
	"pathsel/internal/packetnet"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/tcpsim"
)

// The packet-level validation re-runs the TCP comparison one rung below
// ValidateTCPModel: instead of feeding measured means to a rounds
// model, it runs real TCP Reno segments over the simulated links of the
// Paxson plane — queues, drop-tail losses, ack clocking and all — and
// asks where the closed-form Mathis prediction (and the tcpsim rounds
// model) diverge from packet dynamics, regime by regime.

// pvPeakTime is the transfer window start: Wednesday 13:00 local on
// the simulated calendar, a high-load instant on the netsim diurnal
// curve.
const pvPeakTime = netsim.Time(2*86400 + 13*3600)

// PacketPairResult is the comparison at one N2 pair.
type PacketPairResult struct {
	Pair string
	// RTTMs and Loss are the two-way path state netsim reports at the
	// transfer window — the inputs handed to Mathis and tcpsim, so the
	// three numbers below differ only in modeling depth.
	RTTMs float64
	Loss  float64
	// MeasuredRTTMs/MeasuredLoss are the N2 campaign's transfer means
	// for context (they average over the whole multi-week campaign, not
	// the exhibit's window).
	MeasuredRTTMs float64
	MeasuredLoss  float64

	PacketKBs float64 // packet-level goodput
	MathisKBs float64 // closed-form model
	SimKBs    float64 // tcpsim rounds model

	// Transport counters from the packet-level flow.
	Retransmits int
	Timeouts    int
	FastRetx    int
	OutOfOrder  int
}

// PacketRegime aggregates packet-vs-Mathis divergence over the pairs
// falling in one loss or RTT regime.
type PacketRegime struct {
	Name  string
	Pairs int
	// MedianRatio is the median packet/Mathis goodput ratio in the
	// regime; MedianAbsRelErr the median of |packet-Mathis|/Mathis.
	MedianRatio     float64
	MedianAbsRelErr float64
}

// PacketValidation is the exhibit result.
type PacketValidation struct {
	TotalPairs  int // N2 pairs with transfer measurements
	Pairs       int // pairs actually run (deterministic stride sample)
	DurationSec float64

	Results []PacketPairResult

	// Aggregates over Results: packet-level vs the Mathis model and vs
	// the tcpsim rounds model.
	MedianRatioMathis   float64
	MedianRatioSim      float64
	WithinFactor2Mathis float64
	WithinFactor2Sim    float64
	RankCorrMathis      float64
	RankCorrSim         float64

	// Divergence by operating regime, loss buckets then RTT buckets.
	Regimes []PacketRegime
}

// pvScale bounds the exhibit per preset: how many pairs to run and how
// long each transfer lasts.
func pvScale(p Preset) (maxPairs int, durationSec float64) {
	if p == Quick {
		return 24, 12
	}
	return 96, 30
}

// ValidatePacketLevel runs the packet-level comparison over a
// deterministic sample of N2 pairs. The result is bit-identical for a
// given suite seed at any Concurrency setting: pair i writes only slot
// i, and each pair's packet network is self-contained.
func ValidatePacketLevel(s *Suite) (PacketValidation, error) {
	fwd, ns := s.D2Forwarding()
	model := tcpmodel.Default()
	simCfg := tcpsim.DefaultConfig()

	keys := s.N2.PairKeys()
	type job struct {
		pair  string
		src   forward.Path
		rev   forward.Path
		mRTT  float64
		mLoss float64
	}
	var jobs []job
	for _, k := range keys {
		rtt, loss, ok := s.N2.TransferMeans(k)
		if !ok {
			continue
		}
		fp, err := fwd.HostPath(k.Src, k.Dst)
		if err != nil {
			continue
		}
		rp, err := fwd.HostPath(k.Dst, k.Src)
		if err != nil {
			continue
		}
		jobs = append(jobs, job{
			pair: k.String(), src: fp, rev: rp,
			mRTT: rtt.Mean, mLoss: loss.Mean,
		})
	}
	out := PacketValidation{TotalPairs: len(jobs)}
	maxPairs, duration := pvScale(s.Config.Preset)
	out.DurationSec = duration
	if len(jobs) == 0 {
		return out, nil
	}
	// Stride-sample so the selection spans the whole pair list instead
	// of favouring low host IDs.
	if len(jobs) > maxPairs {
		stride := (len(jobs) + maxPairs - 1) / maxPairs
		var picked []job
		for i := 0; i < len(jobs); i += stride {
			picked = append(picked, jobs[i])
		}
		jobs = picked
	}
	out.Pairs = len(jobs)

	ctx := s.ctx
	if ctx == nil {
		//repolint:allow ctxflow -- a suite without WithContext is the documented never-cancelled case
		ctx = context.Background()
	}
	results := make([]PacketPairResult, len(jobs))
	errs := make([]error, len(jobs))
	run := func(i int) {
		j := jobs[i]
		// Model inputs: the two-way netsim path state at the window.
		fs, err := ns.EvalHostPath(j.src.Src, j.src.Dst, j.src.Links, pvPeakTime)
		if err != nil {
			errs[i] = err
			return
		}
		rs, err := ns.EvalHostPath(j.rev.Src, j.rev.Dst, j.rev.Links, pvPeakTime)
		if err != nil {
			errs[i] = err
			return
		}
		rtt := fs.DelayMs + rs.DelayMs
		loss := 1 - (1-fs.LossProb)*(1-rs.LossProb)

		r := PacketPairResult{
			Pair: j.pair, RTTMs: rtt, Loss: loss,
			MeasuredRTTMs: j.mRTT, MeasuredLoss: j.mLoss,
		}
		r.MathisKBs, err = model.BandwidthKBs(rtt, loss)
		if err != nil {
			errs[i] = err
			return
		}
		rng := rand.New(rand.NewSource(s.Config.Seed + 7001*int64(i)))
		sim, err := tcpsim.Simulate(simCfg, rng, rtt, loss, duration)
		if err != nil {
			errs[i] = err
			return
		}
		r.SimKBs = sim.ThroughputKBs

		// Packet level: a fresh network (and path cache — forward.Cache
		// is single-threaded) per pair keeps slots independent.
		pcfg := packetnet.DefaultConfig()
		pcfg.Seed = s.Config.Seed + 9001*int64(i)
		pn, err := packetnet.New(s.TopoD2, ns, forward.NewCache(fwd), pcfg)
		if err != nil {
			errs[i] = err
			return
		}
		st, err := pn.Transfer(j.src.Src, j.src.Dst, pvPeakTime, duration)
		if err != nil {
			errs[i] = err
			return
		}
		r.PacketKBs = st.GoodputKBs
		r.Retransmits = st.Sender.Retransmits
		r.Timeouts = st.Sender.Timeouts
		r.FastRetx = st.Sender.FastRetransmits
		r.OutOfOrder = st.Receiver.OutOfOrder
		results[i] = r
	}
	if err := pvParallel(ctx, s.Config.Concurrency, len(jobs), run); err != nil {
		return PacketValidation{}, err
	}
	for _, err := range errs {
		if err != nil {
			return PacketValidation{}, err
		}
	}
	out.Results = results

	packet := make([]float64, len(results))
	mathis := make([]float64, len(results))
	simed := make([]float64, len(results))
	for i, r := range results {
		packet[i], mathis[i], simed[i] = r.PacketKBs, r.MathisKBs, r.SimKBs
	}
	out.MedianRatioMathis, out.WithinFactor2Mathis = ratioStats(packet, mathis)
	out.MedianRatioSim, out.WithinFactor2Sim = ratioStats(packet, simed)
	out.RankCorrMathis = spearman(mathis, packet)
	out.RankCorrSim = spearman(simed, packet)
	out.Regimes = packetRegimes(results)
	return out, nil
}

// ratioStats returns the median a/b ratio and the fraction of pairs
// within a factor of two.
func ratioStats(a, b []float64) (median, within2 float64) {
	ratios := make([]float64, 0, len(a))
	within := 0
	for i := range a {
		if b[i] <= 0 {
			continue
		}
		r := a[i] / b[i]
		ratios = append(ratios, r)
		if r >= 0.5 && r <= 2 {
			within++
		}
	}
	if len(ratios) == 0 {
		return 0, 0
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2], float64(within) / float64(len(ratios))
}

// packetRegimes buckets the pairs by loss and by RTT and summarizes
// packet-vs-Mathis divergence in each bucket.
func packetRegimes(results []PacketPairResult) []PacketRegime {
	type bucket struct {
		name string
		in   func(r PacketPairResult) bool
	}
	buckets := []bucket{
		{"loss<1%", func(r PacketPairResult) bool { return r.Loss < 0.01 }},
		{"loss 1-3%", func(r PacketPairResult) bool { return r.Loss >= 0.01 && r.Loss < 0.03 }},
		{"loss>=3%", func(r PacketPairResult) bool { return r.Loss >= 0.03 }},
		{"rtt<150ms", func(r PacketPairResult) bool { return r.RTTMs < 150 }},
		{"rtt 150-300ms", func(r PacketPairResult) bool { return r.RTTMs >= 150 && r.RTTMs < 300 }},
		{"rtt>=300ms", func(r PacketPairResult) bool { return r.RTTMs >= 300 }},
	}
	out := make([]PacketRegime, 0, len(buckets))
	for _, b := range buckets {
		var ratios, relerrs []float64
		for _, r := range results {
			if !b.in(r) || r.MathisKBs <= 0 {
				continue
			}
			ratio := r.PacketKBs / r.MathisKBs
			ratios = append(ratios, ratio)
			re := ratio - 1
			if re < 0 {
				re = -re
			}
			relerrs = append(relerrs, re)
		}
		reg := PacketRegime{Name: b.name, Pairs: len(ratios)}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			sort.Float64s(relerrs)
			reg.MedianRatio = ratios[len(ratios)/2]
			reg.MedianAbsRelErr = relerrs[len(relerrs)/2]
		}
		out = append(out, reg)
	}
	return out
}

// pvParallel runs fn(i) for i in [0,n) across the configured worker
// count (0 = one per CPU, 1 = sequential); callers write only slot i,
// so results are identical at any setting.
func pvParallel(ctx context.Context, concurrency, n int, fn func(i int)) error {
	workers := concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
