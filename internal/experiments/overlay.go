package experiments

import (
	"fmt"
	"sort"

	"pathsel/internal/bgp"
	"pathsel/internal/dynamics"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/overlay"
	"pathsel/internal/topology"
)

// OverlayBudget is one probing-budget point of the overlay exhibit: the
// online overlay, the always-direct default and the offline optimum
// evaluated over the same business day of injected BGP failures.
type OverlayBudget struct {
	ProbesPerSec float64

	Overlay overlay.VariantStats
	Default overlay.VariantStats
	Optimal overlay.VariantStats

	// RelayShare is the fraction of scored connection-intervals the
	// overlay routed through a one-hop relay.
	RelayShare float64
	// Reactions are the failover reaction times (seconds) observed at
	// this budget; more probes per second buy faster detection.
	Reactions []float64

	ProbesSent      int
	Switches        int
	OutagesDetected int
}

// OverlayResult is the overlay exhibit: the end-to-end effect of
// RON/Detour-style path selection that the paper's closing argument
// anticipates, quantified against the default routes and the offline
// optimum under injected session failures with delayed reconvergence.
type OverlayResult struct {
	Nodes  int
	Pairs  int
	Epochs int

	// Budgets are evaluated lowest to highest probing rate.
	Budgets []OverlayBudget

	// RefBudget indexes the budget whose per-connection RTT point
	// clouds are exported below for CDFs.
	RefBudget   int
	OverlayRTTs []float64
	DefaultRTTs []float64
	OptimalRTTs []float64
}

// overlayNodes picks n evenly spaced hosts from the suite's UW3 host
// set (sorted by ID for determinism).
func overlayNodes(s *Suite, n int) []topology.HostID {
	hosts := append([]topology.HostID(nil), s.UW3.Hosts...)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	if n > len(hosts) {
		n = len(hosts)
	}
	out := make([]topology.HostID, n)
	for i := range out {
		out[i] = hosts[i*len(hosts)/n]
	}
	return out
}

// pathAdjacencies collects the AS adjacencies crossed by the default
// paths between every pair of the given hosts, in both directions — the
// adjacencies the overlay actually depends on.
func pathAdjacencies(top *topology.Topology, fwd *forward.Forwarder, nodes []topology.HostID) ([]bgp.AdjacencyKey, error) {
	set := map[bgp.AdjacencyKey]bool{}
	var out []bgp.AdjacencyKey
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			p, err := fwd.HostPath(a, b)
			if err != nil {
				return nil, fmt.Errorf("experiments: overlay pair %d->%d unroutable: %w", a, b, err)
			}
			asPath := p.ASPath(top)
			for i := 0; i+1 < len(asPath); i++ {
				k := bgp.MakeAdjacencyKey(asPath[i], asPath[i+1])
				if !set[k] {
					set[k] = true
					out = append(out, k)
				}
			}
		}
	}
	return out, nil
}

// Overlay runs the overlay exhibit: a failure timeline with a BGP
// convergence delay over the suite's UW topology, replayed by the
// online overlay controller at several probing budgets. Failures are
// injected on the adjacencies the overlay pairs' default paths cross,
// so the exhibit measures reaction to outages that matter rather than
// background noise elsewhere in the topology.
func Overlay(s *Suite, seed int64) (OverlayResult, error) {
	top, _ := s.UWPlane()
	fwd, net := s.UWForwarding()
	g := igp.New(top, igp.DefaultConfig())

	// A business day (Wednesday) under an elevated failure regime:
	// enough ~10-minute outages that availability separates the three
	// variants, with a 240 s convergence delay so even reconverging BGP
	// blackholes traffic for a window the overlay can beat.
	dynCfg := dynamics.DefaultConfig()
	dynCfg.Seed = seed + 7
	dynCfg.FailuresPerAdjacencyPerWeek = 1
	dynCfg.MeanOutageSec = 600
	dynCfg.StartSec = 86400
	dynCfg.DurationSec = 2 * 86400
	dynCfg.MaxEpochs = 2000

	ovCfg := overlay.DefaultConfig()
	ovCfg.Seed = seed + 13
	ovCfg.Concurrency = s.Config.Concurrency
	// Score every control tick: failover reactions last only a few
	// ticks, and a coarser grid would step right over them.
	ovCfg.ScoreIntervalSec = ovCfg.TickSec

	nodes := 12
	start := netsim.Time(2 * 86400) // Wednesday 00:00
	end := start + 86400
	if s.Config.Preset == Quick {
		// A four-hour window with a proportionally hotter failure rate;
		// structure (warmup, outages, multiple budgets) is preserved.
		nodes = 8
		ovCfg.WarmupSec = 900
		end = start + 4*3600
		dynCfg.FailuresPerAdjacencyPerWeek = 12
		dynCfg.MeanOutageSec = 300
		dynCfg.StartSec = float64(start) - ovCfg.WarmupSec
		dynCfg.DurationSec = ovCfg.WarmupSec + 4*3600
	}

	nodeIDs := overlayNodes(s, nodes)
	adjs, err := pathAdjacencies(top, fwd, nodeIDs)
	if err != nil {
		return OverlayResult{}, err
	}
	dynCfg.Adjacencies = adjs

	tl, err := dynamics.Build(top, g, dynCfg)
	if err != nil {
		return OverlayResult{}, err
	}
	dtl, err := tl.WithConvergenceDelay(240)
	if err != nil {
		return OverlayResult{}, err
	}

	cond := overlay.Conditions{
		Paths: dtl,
		Net:   net,
		Nodes: nodeIDs,
		Start: start,
		End:   end,
	}

	out := OverlayResult{
		Nodes:  len(cond.Nodes),
		Epochs: len(tl.Epochs()),
	}
	budgets := []float64{0.5, 2, 8}
	out.RefBudget = 1
	for i, b := range budgets {
		cfg := ovCfg
		cfg.ProbesPerSec = b
		res, err := overlay.Evaluate(s.ctx, cond, cfg)
		if err != nil {
			return OverlayResult{}, err
		}
		out.Pairs = res.Pairs
		out.Budgets = append(out.Budgets, OverlayBudget{
			ProbesPerSec:    b,
			Overlay:         res.Overlay,
			Default:         res.Default,
			Optimal:         res.Optimal,
			RelayShare:      res.RelayShare,
			Reactions:       res.Reactions,
			ProbesSent:      res.ProbesSent,
			Switches:        res.Switches,
			OutagesDetected: res.OutagesDetected,
		})
		if i == out.RefBudget {
			out.OverlayRTTs = res.OverlayRTTs
			out.DefaultRTTs = res.DefaultRTTs
			out.OptimalRTTs = res.OptimalRTTs
		}
	}
	return out, nil
}
