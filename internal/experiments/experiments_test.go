package experiments

import (
	"math"
	"sync"
	"testing"

	"pathsel/internal/core"
	"pathsel/internal/stats"
)

// The integration tests run the whole pipeline (topology -> routing ->
// measurement campaigns -> analysis) on the Quick preset and check the
// paper's qualitative findings. Everything is deterministic in the seed,
// so the bounds below are stable; they are set with generous margins
// around the paper's reported ranges.

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = Build(Config{Seed: 1, Preset: Quick})
	})
	if suiteErr != nil {
		t.Fatalf("Build: %v", suiteErr)
	}
	return suite
}

func TestTable1Characteristics(t *testing.T) {
	s := testSuite(t)
	rows := Table1(s)
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	wantNames := []string{"D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B"}
	for i, r := range rows {
		if r.Name != wantNames[i] {
			t.Errorf("row %d name %q, want %q", i, r.Name, wantNames[i])
		}
		if r.Hosts < 2 {
			t.Errorf("%s: only %d hosts", r.Name, r.Hosts)
		}
		if r.Measurements < 500 {
			t.Errorf("%s: only %d measurements", r.Name, r.Measurements)
		}
		if r.PercentCovered < 50 || r.PercentCovered > 100 {
			t.Errorf("%s: coverage %.1f%%", r.Name, r.PercentCovered)
		}
	}
}

func TestFigure1RTTImprovement(t *testing.T) {
	s := testSuite(t)
	series, err := Figure1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	for _, sr := range series {
		frac := sr.CDF.FractionAbove(0)
		// The paper's headline: superior alternates for 30-55% of pairs
		// (D2-NA runs lower in our reproduction); nothing should be
		// outside a generous band.
		if frac < 0.05 || frac > 0.80 {
			t.Errorf("%s: better fraction %.2f outside [0.05, 0.80]", sr.Name, frac)
		}
		if sr.CDF.N() < 30 {
			t.Errorf("%s: only %d pairs", sr.Name, sr.CDF.N())
		}
	}
	// UW datasets must land in the paper's 30-55%+ band.
	for _, i := range []int{0, 1} {
		frac := series[i].CDF.FractionAbove(0)
		if frac < 0.30 || frac > 0.70 {
			t.Errorf("%s: better fraction %.2f outside [0.30, 0.70]", series[i].Name, frac)
		}
	}
}

func TestFigure2RatioShape(t *testing.T) {
	s := testSuite(t)
	series, err := Figure2(s)
	if err != nil {
		t.Fatal(err)
	}
	// A meaningful fraction of UW paths have >=1.5x better latency on
	// the alternate (paper: ~10%).
	uw3 := series[1]
	frac := uw3.CDF.FractionAbove(1.5)
	if frac < 0.05 || frac > 0.50 {
		t.Errorf("UW3 ratio>=1.5 fraction %.2f outside [0.05, 0.50]", frac)
	}
	// Ratios are positive by construction.
	for _, sr := range series {
		if v, _ := sr.CDF.Quantile(0); v <= 0 {
			t.Errorf("%s: nonpositive ratio %f", sr.Name, v)
		}
	}
}

func TestFigure3LossImprovement(t *testing.T) {
	s := testSuite(t)
	series, err := Figure3(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range series {
		frac := sr.CDF.FractionAbove(0)
		// Paper: 75-85% of paths have lower-loss alternates.
		if frac < 0.50 || frac > 0.98 {
			t.Errorf("%s: loss better fraction %.2f outside [0.50, 0.98]", sr.Name, frac)
		}
	}
	// D2 shows substantially more improvement than the UW datasets
	// (paper: "with D2 demonstrating substantially more improvement").
	d2Big := series[3].CDF.FractionAbove(0.05)
	uw3Big := series[1].CDF.FractionAbove(0.05)
	if d2Big <= uw3Big {
		t.Errorf("D2 large-improvement fraction %.2f should exceed UW3's %.2f", d2Big, uw3Big)
	}
}

func TestFigure4And5Bandwidth(t *testing.T) {
	s := testSuite(t)
	diff, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 4 {
		t.Fatalf("got %d series", len(diff))
	}
	// Paper: 70-80% of paths have alternates with improved bandwidth;
	// we accept a wider band.
	for _, sr := range diff {
		frac := sr.CDF.FractionAbove(0)
		if frac < 0.25 || frac > 0.95 {
			t.Errorf("%s: bandwidth better fraction %.2f outside [0.25, 0.95]", sr.Name, frac)
		}
	}
	// Optimistic composition dominates pessimistic for the same dataset
	// (series come in pessimistic, optimistic pairs).
	for i := 0; i+1 < len(diff); i += 2 {
		p := diff[i].CDF.FractionAbove(0)
		o := diff[i+1].CDF.FractionAbove(0)
		if o < p {
			t.Errorf("optimistic fraction %.2f below pessimistic %.2f for %s", o, p, diff[i].Name)
		}
	}
	ratio, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: for at least 10-20% of N2 paths the improvement is >= 3x.
	n2opt := ratio[1].CDF.FractionAbove(3)
	if n2opt < 0.03 || n2opt > 0.5 {
		t.Errorf("N2 optimistic >=3x fraction %.2f outside [0.03, 0.5]", n2opt)
	}
}

func TestFigure6MeanVsMedian(t *testing.T) {
	s := testSuite(t)
	series, err := Figure6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	mean, median := series[0].CDF, series[1].CDF
	if mean.N() == 0 || median.N() == 0 {
		t.Fatal("empty CDFs")
	}
	// Paper: "the difference is negligible" — the two curves must agree
	// on the better-alternate fraction within a loose margin.
	d := math.Abs(mean.FractionAbove(0) - median.FractionAbove(0))
	if d > 0.25 {
		t.Errorf("mean and median curves diverge by %.2f", d)
	}
}

func TestFigures7And8ConfidenceIntervals(t *testing.T) {
	s := testSuite(t)
	for name, fn := range map[string]func(*Suite) ([]core.CIPoint, error){
		"figure7": Figure7, "figure8": Figure8,
	} {
		pts, err := fn(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pts) < 30 {
			t.Fatalf("%s: only %d points", name, len(pts))
		}
		for i, p := range pts {
			if p.HalfWidth < 0 {
				t.Errorf("%s: negative CI half-width at %d", name, i)
			}
			if i > 0 && pts[i-1].Improvement > p.Improvement {
				t.Errorf("%s: points not sorted at %d", name, i)
			}
		}
	}
}

func TestTables2And3Verdicts(t *testing.T) {
	s := testSuite(t)
	t2, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 4 {
		t.Fatalf("got %d rows", len(t2))
	}
	for _, row := range t2 {
		if row.Counts.Total() == 0 {
			t.Errorf("%s: no classified pairs", row.Dataset)
		}
		b, i, w, z := row.Counts.Percent()
		if sum := b + i + w + z; math.Abs(sum-100) > 1e-9 {
			t.Errorf("%s: percentages sum to %.2f", row.Dataset, sum)
		}
		// RTT means are never exactly zero on both sides.
		if row.Counts.BothZero != 0 {
			t.Errorf("%s: BothZero %d for RTT", row.Dataset, row.Counts.BothZero)
		}
	}
	// Variation exists: at least one dataset shows indeterminate pairs,
	// and "better" fractions are nontrivial for UW3 (paper: ~30%).
	uw3 := t2[1]
	b, i, _, _ := uw3.Counts.Percent()
	if b < 15 || b > 65 {
		t.Errorf("UW3 better %.0f%% outside [15, 65]", b)
	}
	if i <= 0 {
		t.Error("UW3 should have indeterminate pairs")
	}

	t3, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t3 {
		if row.Counts.Total() == 0 {
			t.Errorf("%s: no classified pairs", row.Dataset)
		}
	}
	// Loss-rate variance is large (binary samples), so indeterminate
	// dominates even more than for RTT, as in the paper's Table 3.
	rttIndet := float64(t2[1].Counts.Indeterminate) / float64(t2[1].Counts.Total())
	lossIndet := float64(t3[1].Counts.Indeterminate) / float64(t3[1].Counts.Total())
	if lossIndet < rttIndet {
		t.Errorf("loss indeterminate fraction %.2f below RTT's %.2f", lossIndet, rttIndet)
	}
}

func TestFigures9And10TimeOfDay(t *testing.T) {
	s := testSuite(t)
	for name, fn := range map[string]func(*Suite) ([]Series, error){
		"figure9": Figure9, "figure10": Figure10,
	} {
		series, err := fn(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(series) != 5 {
			t.Fatalf("%s: got %d buckets", name, len(series))
		}
		// The effect holds in every bucket (paper: "the overall effect
		// occurs regardless of the time of day").
		for _, sr := range series {
			if sr.CDF.N() == 0 {
				t.Errorf("%s: empty bucket %s", name, sr.Name)
				continue
			}
			if frac := sr.CDF.FractionAbove(0); frac < 0.2 {
				t.Errorf("%s %s: better fraction %.2f too low", name, sr.Name, frac)
			}
		}
	}
	// RTT benefit magnitude peaks during the working day and dips on
	// the weekend (paper Section 6.3). Compare mean improvements:
	// weekend is series[0]; 06-18 are series[2] and [3].
	series, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	weekend := cdfMean(series[0].CDF)
	peak := (cdfMean(series[2].CDF) + cdfMean(series[3].CDF)) / 2
	if peak <= weekend {
		t.Errorf("peak-hour mean improvement %.1f should exceed weekend %.1f", peak, weekend)
	}
}

func cdfMean(c stats.CDF) float64 {
	sum := 0.0
	for _, v := range c.Values() {
		sum += v
	}
	return sum / float64(c.N())
}

func TestFigure11Episodes(t *testing.T) {
	s := testSuite(t)
	series, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	longTerm, pairAvg, raw := series[0].CDF, series[1].CDF, series[2].CDF
	// Simultaneous measurement finds good alternates at least as often
	// as long-term averaging (paper: "slightly more likely").
	if pairAvg.FractionAbove(0) < longTerm.FractionAbove(0)-0.05 {
		t.Errorf("pair-averaged fraction %.2f well below long-term %.2f",
			pairAvg.FractionAbove(0), longTerm.FractionAbove(0))
	}
	// The unaveraged curve has more points and broader tails.
	if raw.N() <= pairAvg.N() {
		t.Errorf("unaveraged N %d should exceed pair-averaged N %d", raw.N(), pairAvg.N())
	}
	rawSpread := quantileSpread(t, raw)
	avgSpread := quantileSpread(t, pairAvg)
	if rawSpread < avgSpread {
		t.Errorf("unaveraged spread %.1f should be at least pair-averaged spread %.1f", rawSpread, avgSpread)
	}
}

func quantileSpread(t *testing.T, c stats.CDF) float64 {
	t.Helper()
	lo, err := c.Quantile(0.05)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := c.Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	return hi - lo
}

func TestFigure12TopTenRemoval(t *testing.T) {
	s := testSuite(t)
	res, err := Figure12(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) == 0 {
		t.Fatal("no hosts removed")
	}
	// Removing the top hosts must not collapse the effect (the paper's
	// conclusion: the phenomenon is not attributable to a few hosts).
	after := res.Without.CDF.FractionAbove(0)
	if after < 0.10 {
		t.Errorf("better fraction %.2f after removal: effect collapsed", after)
	}
	// But the curve must shift left (the greedy step removes the most
	// helpful hosts).
	if cdfMean(res.Without.CDF) > cdfMean(res.All.CDF) {
		t.Errorf("removal did not shift the CDF left: %.2f -> %.2f",
			cdfMean(res.All.CDF), cdfMean(res.Without.CDF))
	}
	seen := map[string]bool{}
	for _, step := range res.Removed {
		id := string(rune(step.Removed))
		if seen[id] {
			t.Error("host removed twice")
		}
		seen[id] = true
	}
}

func TestFigure13Contributions(t *testing.T) {
	s := testSuite(t)
	sr, err := Figure13(s)
	if err != nil {
		t.Fatal(err)
	}
	vals := sr.CDF.Values()
	if len(vals) != len(s.UW3.Hosts) {
		t.Fatalf("got %d contributions for %d hosts", len(vals), len(s.UW3.Hosts))
	}
	sum := 0.0
	for _, v := range vals {
		if v < 0 {
			t.Errorf("negative contribution %f", v)
		}
		sum += v
	}
	mean := sum / float64(len(vals))
	if math.Abs(mean-100) > 1 {
		t.Errorf("mean contribution %.2f, want 100 (normalized)", mean)
	}
}

func TestFigure14ASScatter(t *testing.T) {
	s := testSuite(t)
	counts, err := Figure14(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) < 5 {
		t.Fatalf("only %d ASes observed", len(counts))
	}
	both := 0
	for _, c := range counts {
		if c.Direct < 0 || c.Alternate < 0 {
			t.Errorf("AS %d: negative counts %+v", c.AS, c)
		}
		if c.Direct > 0 && c.Alternate > 0 {
			both++
		}
	}
	// The paper's scatter hugs the diagonal: most ASes appear in both
	// default and alternate paths.
	if both < len(counts)/3 {
		t.Errorf("only %d of %d ASes appear in both defaults and alternates", both, len(counts))
	}
}

func TestFigure15Propagation(t *testing.T) {
	s := testSuite(t)
	series, err := Figure15(s)
	if err != nil {
		t.Fatal(err)
	}
	prop, rtt := series[0].CDF, series[1].CDF
	// Paper: superior alternates still exist for ~50% of paths on
	// propagation delay alone.
	frac := prop.FractionAbove(0)
	if frac < 0.25 || frac > 0.80 {
		t.Errorf("propagation better fraction %.2f outside [0.25, 0.80]", frac)
	}
	// The magnitude of differences shrinks when only propagation is
	// considered (queuing excluded): compare upper-mid quantiles. The
	// extreme tail is structural (provider geography) and shows up in
	// both metrics.
	pq, _ := prop.Quantile(0.75)
	rq, _ := rtt.Quantile(0.75)
	if pq > rq {
		t.Errorf("propagation p75 %.1f exceeds mean-RTT p75 %.1f", pq, rq)
	}
}

func TestFigure16Decomposition(t *testing.T) {
	s := testSuite(t)
	decs, err := Figure16(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) < 50 {
		t.Fatalf("only %d decompositions", len(decs))
	}
	census := core.GroupCensus(decs)
	// Typical groups (better in both components) must be populated.
	if census[core.Group1] == 0 || census[core.Group4] == 0 {
		t.Errorf("typical groups empty: %v", census)
	}
	// Paper: very few paths in group 3, more in group 6 (superior
	// alternates avoiding congestion at propagation cost).
	if census[core.Group3] > census[core.Group6] {
		t.Errorf("group 3 (%d) should not exceed group 6 (%d)", census[core.Group3], census[core.Group6])
	}
	total := 0
	for _, n := range census {
		total += n
	}
	if total != len(decs) {
		t.Errorf("census sums to %d, want %d", total, len(decs))
	}
}

func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("suite rebuild is slow")
	}
	a, err := Build(Config{Seed: 1, Preset: Quick})
	if err != nil {
		t.Fatal(err)
	}
	b := testSuite(t)
	ca, cb := a.UW3.Characteristics(), b.UW3.Characteristics()
	if ca != cb {
		t.Errorf("same-seed suites differ: %+v vs %+v", ca, cb)
	}
	for _, k := range a.UW3.PairKeys() {
		sa, _ := a.UW3.MeanRTT(k)
		sb, _ := b.UW3.MeanRTT(k)
		if sa != sb {
			t.Fatalf("path %v differs between same-seed suites", k)
		}
	}
}

func TestPresetString(t *testing.T) {
	if Full.String() != "full" || Quick.String() != "quick" || Preset(9).String() != "preset(9)" {
		t.Error("preset strings wrong")
	}
}
