package experiments

import (
	"reflect"
	"testing"
)

func TestOverlayExhibit(t *testing.T) {
	if testing.Short() {
		t.Skip("overlay exhibit replays hours of control loop")
	}
	s := testSuite(t)
	res, err := Overlay(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 8 || res.Pairs != 28 {
		t.Fatalf("quick exhibit has %d nodes / %d pairs", res.Nodes, res.Pairs)
	}
	if len(res.Budgets) != 3 {
		t.Fatalf("got %d budgets, want 3", len(res.Budgets))
	}
	if res.Epochs < 2 {
		t.Fatalf("failure timeline has only %d epochs; no outages to react to", res.Epochs)
	}
	if len(res.OverlayRTTs) == 0 ||
		len(res.OverlayRTTs) != len(res.DefaultRTTs) ||
		len(res.OverlayRTTs) != len(res.OptimalRTTs) {
		t.Fatalf("RTT point clouds inconsistent: %d/%d/%d",
			len(res.OverlayRTTs), len(res.DefaultRTTs), len(res.OptimalRTTs))
	}

	for _, b := range res.Budgets {
		// The acceptance ordering: overlay strictly between default and
		// the offline optimum on both availability and RTT.
		if !(b.Default.Availability < b.Overlay.Availability) ||
			!(b.Overlay.Availability < b.Optimal.Availability) {
			t.Errorf("budget %.1f: availability not ordered: default %.4f overlay %.4f optimal %.4f",
				b.ProbesPerSec, b.Default.Availability, b.Overlay.Availability, b.Optimal.Availability)
		}
		if !(b.Optimal.MeanRTTMs <= b.Overlay.MeanRTTMs) ||
			!(b.Overlay.MeanRTTMs < b.Default.MeanRTTMs) {
			t.Errorf("budget %.1f: RTT not ordered: optimal %.3f overlay %.3f default %.3f",
				b.ProbesPerSec, b.Optimal.MeanRTTMs, b.Overlay.MeanRTTMs, b.Default.MeanRTTMs)
		}
		if len(b.Reactions) == 0 {
			t.Errorf("budget %.1f: no failover reactions measured", b.ProbesPerSec)
		}
		if b.OutagesDetected == 0 || b.Switches == 0 {
			t.Errorf("budget %.1f: outages %d, switches %d", b.ProbesPerSec, b.OutagesDetected, b.Switches)
		}
	}

	// More probes must not cost more probes per second than configured
	// allows by orders of magnitude, and budgets must differ.
	if res.Budgets[0].ProbesSent >= res.Budgets[2].ProbesSent {
		t.Errorf("probe counts not increasing with budget: %d vs %d",
			res.Budgets[0].ProbesSent, res.Budgets[2].ProbesSent)
	}

	// Determinism: a second run is identical.
	res2, err := Overlay(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("overlay exhibit is not deterministic")
	}
}
