package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestParsePreset(t *testing.T) {
	cases := []struct {
		in   string
		want Preset
		ok   bool
	}{
		{"quick", Quick, true},
		{"full", Full, true},
		{"scale", Scale, true},
		{"Quick", 0, false},
		{"", 0, false},
		{"medium", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePreset(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePreset(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePreset(%q) = %v, want %v", c.in, got, c.want)
		}
		if !c.ok && !strings.Contains(err.Error(), "quick, full or scale") {
			t.Errorf("ParsePreset(%q) error %q should name the valid presets", c.in, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Preset: Quick}).Validate(); err != nil {
		t.Errorf("quick config: %v", err)
	}
	if err := (Config{Preset: Full, Concurrency: 8}).Validate(); err != nil {
		t.Errorf("full config: %v", err)
	}
	if err := (Config{Preset: Scale}).Validate(); err != nil {
		t.Errorf("scale config: %v", err)
	}
	if err := (Config{Preset: Preset(42)}).Validate(); err == nil {
		t.Error("bogus preset accepted")
	}
	if err := (Config{Preset: Quick, Concurrency: -1}).Validate(); err == nil {
		t.Error("negative concurrency accepted")
	}
}

// TestBuildContextCancelled: a suite build under a dead context stops
// instead of running the campaigns to completion.
func TestBuildContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildContext(ctx, Config{Seed: 1, Preset: Quick})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestBuildContextInvalidConfig(t *testing.T) {
	if _, err := BuildContext(context.Background(), Config{Preset: Preset(9)}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
