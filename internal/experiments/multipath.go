package experiments

import (
	"fmt"
	"math"

	"pathsel/internal/core"
	"pathsel/internal/pathset"
	"pathsel/internal/stats"
)

// MultipathK is how many alternates per pair the multipath exhibit
// requests — enough to see the k-vs-benefit curve flatten without
// leaving the paper's "a handful of alternates" regime.
const MultipathK = 6

// MultipathKPoint is one point of the k-vs-benefit curve: what the
// best-of-the-first-k alternates buy over the default path, and how
// AS-disjoint those first k get.
type MultipathKPoint struct {
	K int
	// MeanImprovementMs is the mean over pairs of default mean RTT
	// minus the best of {default, first k alternates}.
	MeanImprovementMs float64
	// FullyDisjointFrac is the fraction of pairs whose first k
	// alternates include one fully AS-disjoint from the default.
	FullyDisjointFrac float64
	// MeanMaxDisjointness is the mean over pairs of the best AS-level
	// disjointness among the first k alternates.
	MeanMaxDisjointness float64
}

// MultipathStrategyRow compares one selection strategy's top pick
// across all pairs.
type MultipathStrategyRow struct {
	Strategy string
	// MeanLatencyMs is the mean round-trip time of the strategy's top
	// pick (pairs whose pick lacks a latency annotation are skipped).
	MeanLatencyMs float64
	// MeanDisjointness is the mean AS-level disjointness of the top
	// pick against the default path.
	MeanDisjointness float64
}

// MultipathResult is the path-set exhibit: the single-best-alternate
// methodology extended to k alternates per pair, quantifying how fast
// the benefit saturates with k, how much AS-level failure independence
// the sets offer, and how the built-in selection strategies trade
// latency against disjointness.
type MultipathResult struct {
	Dataset string
	Pairs   int
	K       int

	// Curve has one point per k in 1..K.
	Curve []MultipathKPoint
	// Disjointness is the per-pair best AS-level disjointness over the
	// full k-set, in pair order (the CDF exhibit sorts it).
	Disjointness []float64
	// Strategies compares the built-in selection strategies' top picks.
	Strategies []MultipathStrategyRow
}

// Multipath runs the k-alternates query on UW3 by mean round-trip time
// and derives the exhibit. Deterministic: the query is bit-identical at
// any concurrency and everything here folds over it in pair order.
func Multipath(s *Suite) (MultipathResult, error) {
	rs, err := s.analyzer(s.UW3).Query(core.QuerySpec{
		Metric:   core.MetricRTT,
		K:        MultipathK,
		Annotate: true,
	})
	if err != nil {
		return MultipathResult{}, fmt.Errorf("experiments: multipath query: %w", err)
	}
	if len(rs.Pairs) == 0 {
		return MultipathResult{}, fmt.Errorf("experiments: multipath: no comparable pairs")
	}
	res := MultipathResult{Dataset: s.UW3.Name, Pairs: len(rs.Pairs), K: MultipathK}
	for k := 1; k <= MultipathK; k++ {
		var imp, maxD stats.Accum
		disjoint := 0
		for _, p := range rs.Pairs {
			set := p.Alternates
			if set.Len() > k {
				set.Paths = set.Paths[:k]
			}
			best := p.Default.Value
			for _, alt := range set.Paths {
				if alt.Value < best {
					best = alt.Value
				}
			}
			imp.Add(p.Default.Value - best)
			d := set.MaxDisjointness(pathset.LevelAS, p.Default)
			maxD.Add(d)
			if d >= 1 {
				disjoint++
			}
		}
		res.Curve = append(res.Curve, MultipathKPoint{
			K:                   k,
			MeanImprovementMs:   imp.Mean(),
			FullyDisjointFrac:   float64(disjoint) / float64(len(rs.Pairs)),
			MeanMaxDisjointness: maxD.Mean(),
		})
	}
	for _, p := range rs.Pairs {
		res.Disjointness = append(res.Disjointness, p.Alternates.MaxDisjointness(pathset.LevelAS, p.Default))
	}
	strategies := []pathset.SelectionStrategy{
		pathset.ByLatency{},
		pathset.ByLoss{},
		pathset.MostDisjoint{Level: pathset.LevelAS},
	}
	for _, strat := range strategies {
		var lat, dis stats.Accum
		for _, p := range rs.Pairs {
			pick, ok := strat.Select(p.Default, p.Alternates, 1).Best()
			if !ok {
				continue
			}
			if !math.IsNaN(pick.LatencyMs) {
				lat.Add(pick.LatencyMs)
			}
			dis.Add(pathset.Disjointness(pathset.LevelAS, p.Default, pick))
		}
		res.Strategies = append(res.Strategies, MultipathStrategyRow{
			Strategy:         strat.Name(),
			MeanLatencyMs:    lat.Mean(),
			MeanDisjointness: dis.Mean(),
		})
	}
	return res, nil
}
