package experiments

import (
	"fmt"

	"pathsel/internal/bgp"
	"pathsel/internal/core"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

// CauseVariant names one mechanism toggled off in the cause ablation.
type CauseVariant struct {
	Name string
	// mutateTop disables a topology-level mechanism.
	mutateTop func(*topology.Config)
	// mutateNet disables a congestion-model mechanism.
	mutateNet func(*netsim.Config)
	// egress overrides the egress policy (empty = hot potato).
	egress forward.EgressPolicy
}

// CauseResult is the headline effect under one variant.
type CauseResult struct {
	Variant string
	// BetterFraction is the share of pairs with a superior RTT
	// alternate.
	BetterFraction float64
	// MedianImprovement is the median of the improvement CDF (ms).
	MedianImprovement float64
	// MeanDefaultRTT is the mean default-path RTT (ms).
	MeanDefaultRTT float64
}

// CauseAblation decomposes the alternate-path phenomenon by switching
// off one modeled mechanism at a time and re-running a compact UW3-style
// campaign: geographically arbitrary providers, contract-driven policy
// bias, exchange-point congestion, diurnal load, and hot-potato egress.
// The paper could only hypothesize about these causes (Sections 3 and
// 7); the simulator can delete them.
func CauseAblation(cfg Config) ([]CauseResult, error) {
	variants := []CauseVariant{
		{Name: "baseline"},
		{Name: "no-remote-providers", mutateTop: func(c *topology.Config) { c.RemoteProviderProb = 0 }},
		{Name: "no-policy-bias", mutateTop: func(c *topology.Config) { c.PolicyBiasProb = 0 }},
		{Name: "no-exchange-congestion", mutateNet: func(c *netsim.Config) {
			c.ExchangeBump = 0
			c.ExchangeNoiseAmp = 0
		}},
		// Flattening the diurnal curve pins every link at its peak-hour
		// load around the clock (there is no single "average load" knob),
		// so the variant name says what it does.
		{Name: "constant-peak-load", mutateNet: func(c *netsim.Config) {
			c.NightFloor = 1
			c.WeekendFactor = 1
		}},
		{Name: "cold-potato-egress", egress: forward.ColdPotato},
	}

	var out []CauseResult
	for _, v := range variants {
		res, err := runCauseVariant(cfg, v)
		if err != nil {
			return nil, fmt.Errorf("experiments: variant %s: %w", v.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runCauseVariant(cfg Config, v CauseVariant) (CauseResult, error) {
	topCfg := topology.DefaultConfig(topology.Era1999)
	topCfg.Seed = cfg.Seed
	topCfg.NumHosts = 14
	if v.mutateTop != nil {
		v.mutateTop(&topCfg)
	}
	top, err := topology.Generate(topCfg)
	if err != nil {
		return CauseResult{}, err
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		return CauseResult{}, err
	}
	fwd := forward.NewWithEgress(top, g, table, v.egress)

	netCfg := netsim.ConfigFor(topology.Era1999)
	netCfg.Seed = cfg.Seed + 11
	if v.mutateNet != nil {
		v.mutateNet(&netCfg)
	}
	if err := netCfg.Validate(); err != nil {
		return CauseResult{}, err
	}
	net := netsim.New(top, netCfg)
	prbCfg := probe.DefaultConfig()
	prbCfg.Seed = cfg.Seed + 21
	prb := probe.New(top, fwd, net, prbCfg)

	var hosts []topology.HostID
	for _, h := range top.Hosts {
		hosts = append(hosts, h.ID)
	}
	ds, err := measure.Run(top, prb, measure.Spec{
		Name:            "cause-" + v.Name,
		Hosts:           hosts,
		Method:          measure.MethodTraceroute,
		Scheduler:       measure.ExponentialPairs,
		MeanIntervalSec: 55,
		DurationSec:     3 * 86400,
		RateLimit:       measure.FilterHosts,
		MinMeasurements: 20,
		Seed:            cfg.Seed + 31,
	})
	if err != nil {
		return CauseResult{}, err
	}
	rs, err := core.NewAnalyzer(ds).WithConcurrency(cfg.Concurrency).Query(core.QuerySpec{Metric: core.MetricRTT})
	if err != nil {
		return CauseResult{}, err
	}
	results := rs.PairResults()
	if len(results) == 0 {
		return CauseResult{}, fmt.Errorf("no comparable pairs")
	}
	cdf := core.ImprovementCDF(results)
	med, err := cdf.Quantile(0.5)
	if err != nil {
		return CauseResult{}, err
	}
	meanDef := 0.0
	for _, r := range results {
		meanDef += r.DefaultValue
	}
	return CauseResult{
		Variant:           v.Name,
		BetterFraction:    cdf.FractionAbove(0),
		MedianImprovement: med,
		MeanDefaultRTT:    meanDef / float64(len(results)),
	}, nil
}

// SeedSensitivity re-runs the headline analysis (UW3-style campaign,
// mean-RTT alternates) across independent seeds — a robustness check the
// paper could not perform on the one Internet it had. Returns the
// better-alternate fraction per seed.
func SeedSensitivity(baseSeed int64, seeds int) ([]float64, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiments: need at least 1 seed")
	}
	var out []float64
	for i := 0; i < seeds; i++ {
		res, err := runCauseVariant(Config{Seed: baseSeed + int64(i)*1000}, CauseVariant{Name: "baseline"})
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", i, err)
		}
		out = append(out, res.BetterFraction)
	}
	return out, nil
}
