package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// serializeSuite renders every dataset of a suite into one canonical
// byte stream: datasets in Table 1 order, pairs in sorted key order,
// samples in recorded order. Any nondeterminism anywhere in the
// pipeline — topology synthesis, routing, the network model, probing,
// or the campaign schedulers — shows up as a byte difference.
func serializeSuite(s *Suite) []byte {
	var buf bytes.Buffer
	for _, name := range DatasetNames() {
		ds, ok := s.Dataset(name)
		if !ok {
			panic("unknown dataset " + name)
		}
		fmt.Fprintf(&buf, "dataset %s hosts=%v\n", ds.Name, ds.Hosts)
		for _, k := range ds.PairKeys() {
			p := ds.Paths[k]
			fmt.Fprintf(&buf, "  pair %v n=%d as=%v\n", k, p.Measurements, p.ASPath)
			fmt.Fprintf(&buf, "    rtt=%v\n    loss=%v\n    xfer=%v\n", p.RTT, p.Loss, p.Transfers)
		}
		for _, e := range ds.Episodes {
			// fmt prints map contents in sorted key order, so the
			// episode RTT map serializes deterministically.
			fmt.Fprintf(&buf, "  episode at=%v rtts=%v\n", e.At, e.RTTMs)
		}
	}
	return buf.Bytes()
}

// TestBuildDeterministic is the regression test behind the repolint
// suite's reason for existing: two same-seed builds of the full
// measurement pipeline must produce byte-identical datasets. It backs
// the paper-reproduction claim that every reported number is a
// function of the seed alone, and it is exactly the test an unsorted
// map iteration or stray global-RNG call would trip.
func TestBuildDeterministic(t *testing.T) {
	build := func(conc int) []byte {
		s, err := Build(Config{Seed: 7, Preset: Quick, Concurrency: conc})
		if err != nil {
			t.Fatal(err)
		}
		return serializeSuite(s)
	}
	first := build(1)
	again := build(1)
	if !bytes.Equal(first, again) {
		t.Fatal("two sequential same-seed builds serialized differently")
	}
	// The parallel engine promises bit-identical results for any
	// worker count; cover the concurrent path against the sequential
	// baseline too.
	parallel := build(0)
	if !bytes.Equal(first, parallel) {
		t.Fatal("parallel same-seed build serialized differently from sequential build")
	}
}
