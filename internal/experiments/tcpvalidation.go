package experiments

import (
	"math/rand"
	"sort"

	"pathsel/internal/tcpmodel"
	"pathsel/internal/tcpsim"
)

// TCPModelValidation compares the closed-form Mathis model the paper's
// bandwidth analysis relies on (Section 5) against an independent TCP
// Reno simulation, both evaluated on the N2 dataset's measured RTT and
// loss means. If the model were badly wrong on this substrate, Figures 4
// and 5 would not be trustworthy.
type TCPModelValidation struct {
	Pairs int
	// MedianRatio is the median of simulated/predicted throughput.
	MedianRatio float64
	// WithinFactor2 is the fraction of pairs where the simulation is
	// within a factor of two of the model.
	WithinFactor2 float64
	// RankCorrelation is the Spearman rank correlation between model
	// and simulated throughput across pairs — the analysis only needs
	// the model to order paths correctly.
	RankCorrelation float64
}

// ValidateTCPModel runs the comparison over every N2 path with transfer
// measurements.
func ValidateTCPModel(s *Suite, seed int64) (TCPModelValidation, error) {
	model := tcpmodel.Default()
	simCfg := tcpsim.DefaultConfig()
	rng := rand.New(rand.NewSource(seed))

	var predicted, simulated []float64
	for _, k := range s.N2.PairKeys() {
		rtt, loss, ok := s.N2.TransferMeans(k)
		if !ok {
			continue
		}
		pred, err := model.BandwidthKBs(rtt.Mean, loss.Mean)
		if err != nil {
			return TCPModelValidation{}, err
		}
		res, err := tcpsim.Simulate(simCfg, rng, rtt.Mean, loss.Mean, 300)
		if err != nil {
			return TCPModelValidation{}, err
		}
		predicted = append(predicted, pred)
		simulated = append(simulated, res.ThroughputKBs)
	}

	out := TCPModelValidation{Pairs: len(predicted)}
	if len(predicted) == 0 {
		return out, nil
	}
	ratios := make([]float64, len(predicted))
	within := 0
	for i := range predicted {
		ratios[i] = simulated[i] / predicted[i]
		if ratios[i] >= 0.5 && ratios[i] <= 2 {
			within++
		}
	}
	sort.Float64s(ratios)
	out.MedianRatio = ratios[len(ratios)/2]
	out.WithinFactor2 = float64(within) / float64(len(ratios))
	out.RankCorrelation = spearman(predicted, simulated)
	return out, nil
}

// spearman computes the Spearman rank correlation of two equal-length
// series.
func spearman(a, b []float64) float64 {
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	if n < 2 {
		return 0
	}
	var num float64
	for i := range ra {
		d := ra[i] - rb[i]
		num += d * d
	}
	return 1 - 6*num/(n*(n*n-1))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for rank, i := range idx {
		out[i] = float64(rank)
	}
	return out
}
