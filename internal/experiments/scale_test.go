package experiments

import (
	"bufio"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"pathsel/internal/core"
)

// TestScaleSmoke builds the planet-scale suite end to end and checks
// the substrate really is planet-scale, that the build stays inside the
// memory budget, and that the analysis produces identical output at
// every concurrency. It runs only when PATHSEL_SCALE_SMOKE=1 (CI runs
// it as a dedicated job under GOMEMLIMIT and a wall-clock timeout).
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("PATHSEL_SCALE_SMOKE") != "1" {
		t.Skip("set PATHSEL_SCALE_SMOKE=1 to run the scale smoke test")
	}
	start := time.Now()
	s, err := Build(Config{Seed: 1, Preset: Scale})
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(start)
	t.Logf("scale suite built in %v", buildTime)

	stats := s.TopoUW.Stats()
	t.Logf("UW plane: %v", stats)
	if stats.ASes < 10000 {
		t.Errorf("scale preset has %d ASes, want >= 10000", stats.ASes)
	}
	if stats.Hosts < 100000 {
		t.Errorf("scale preset has %d hosts, want >= 100000", stats.Hosts)
	}
	if len(s.UW3.Hosts) < 500 {
		t.Errorf("UW3 pool has %d hosts, want >= 500 (heap searches must engage)", len(s.UW3.Hosts))
	}
	if n := len(s.UW3.PairKeys()); n == 0 {
		t.Error("UW3 collected no paths")
	} else {
		t.Logf("UW3: %d measured paths", n)
	}

	// Byte-identical analysis across concurrency on the scale dataset.
	var want []core.PairResult
	for _, workers := range []int{1, 4, 0} {
		a := core.NewAnalyzer(s.UW3).WithConcurrency(workers)
		got, err := a.BestAlternates(core.MetricRTT, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Errorf("BestAlternates differs at concurrency %d", workers)
		}
	}

	if hwm, ok := peakRSSKB(); ok {
		t.Logf("peak RSS: %d MB", hwm/1024)
		if hwm > 8*1024*1024 {
			t.Errorf("peak RSS %d KB exceeds the 8 GB budget", hwm)
		}
	}
}

// peakRSSKB reads the process high-water resident set size from
// /proc/self/status (Linux only; ok=false elsewhere).
func peakRSSKB() (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb, true
	}
	return 0, false
}
