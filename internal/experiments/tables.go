package experiments

import (
	"pathsel/internal/core"
	"pathsel/internal/dataset"
)

// Table1 returns the dataset characteristics rows in the paper's order:
// D2-NA, D2, N2-NA, N2, UW1, UW3, UW4-A, UW4-B.
func Table1(s *Suite) []dataset.Characteristics {
	rows := []*dataset.Dataset{s.D2NA, s.D2, s.N2NA, s.N2, s.UW1, s.UW3, s.UW4A, s.UW4B}
	out := make([]dataset.Characteristics, len(rows))
	for i, ds := range rows {
		out[i] = ds.Characteristics()
	}
	return out
}

// VerdictRow is one dataset's t-test classification (a column of the
// paper's Tables 2 and 3).
type VerdictRow struct {
	Dataset string
	Counts  core.VerdictCounts
}

// verdictTable classifies every dataset's pair comparisons at the 95%
// level for the given metric.
func verdictTable(s *Suite, metric core.Metric) ([]VerdictRow, error) {
	var out []VerdictRow
	for _, ds := range s.Datasets() {
		rs, err := s.analyzer(ds).Query(core.QuerySpec{Metric: metric})
		if err != nil {
			return nil, err
		}
		out = append(out, VerdictRow{
			Dataset: ds.Name,
			Counts:  core.ClassifyVerdicts(rs.PairResults(), Confidence),
		})
	}
	return out, nil
}

// Table2 classifies mean round-trip differences: the percentage of paths
// whose best alternate is better, worse, or indeterminate at 95%.
func Table2(s *Suite) ([]VerdictRow, error) { return verdictTable(s, core.MetricRTT) }

// Table3 does the same for loss rate, with the extra "is zero" class for
// pairs with no losses on either path.
func Table3(s *Suite) ([]VerdictRow, error) { return verdictTable(s, core.MetricLoss) }
