package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func runPacketValidation(t *testing.T, conc int) PacketValidation {
	t.Helper()
	base := *testSuite(t)
	cfg := base.Config
	cfg.Concurrency = conc
	base.Config = cfg
	res, err := ValidatePacketLevel(&base)
	if err != nil {
		t.Fatalf("ValidatePacketLevel(conc=%d): %v", conc, err)
	}
	return res
}

func TestPacketValidation(t *testing.T) {
	res := runPacketValidation(t, 0)
	if res.TotalPairs == 0 || res.Pairs == 0 {
		t.Fatalf("no pairs ran: %+v", res)
	}
	if res.Pairs > res.TotalPairs {
		t.Fatalf("sampled %d of %d pairs", res.Pairs, res.TotalPairs)
	}
	if len(res.Results) != res.Pairs {
		t.Fatalf("%d results for %d pairs", len(res.Results), res.Pairs)
	}
	for _, r := range res.Results {
		if r.PacketKBs <= 0 {
			t.Errorf("%s: packet flow made no progress (%.2f KB/s)", r.Pair, r.PacketKBs)
		}
		if r.MathisKBs <= 0 || r.SimKBs <= 0 {
			t.Errorf("%s: degenerate model prediction mathis=%.2f sim=%.2f", r.Pair, r.MathisKBs, r.SimKBs)
		}
		if r.RTTMs <= 0 || r.Loss < 0 || r.Loss >= 1 {
			t.Errorf("%s: implausible path state rtt=%.1fms loss=%.4f", r.Pair, r.RTTMs, r.Loss)
		}
	}
	// The three estimators describe the same paths: ranks must agree
	// strongly, and the bulk of pairs should be within a factor of two
	// of the rounds model (the closest sibling).
	if res.RankCorrMathis < 0.5 || res.RankCorrSim < 0.5 {
		t.Errorf("weak rank agreement: mathis=%.2f sim=%.2f", res.RankCorrMathis, res.RankCorrSim)
	}
	if res.WithinFactor2Sim < 0.5 {
		t.Errorf("only %.0f%% of pairs within 2x of tcpsim", 100*res.WithinFactor2Sim)
	}
	if res.MedianRatioMathis <= 0 || res.MedianRatioSim <= 0 {
		t.Errorf("degenerate median ratios: %+v", res)
	}
	if len(res.Regimes) != 6 {
		t.Fatalf("got %d regimes, want 6", len(res.Regimes))
	}
	covered := 0
	for _, reg := range res.Regimes {
		covered += reg.Pairs
	}
	if covered == 0 {
		t.Fatal("no pair fell into any regime bucket")
	}
	t.Logf("pairs %d/%d: packet/mathis median %.2f (%.0f%% within 2x, rank %.2f); packet/sim median %.2f (%.0f%% within 2x, rank %.2f)",
		res.Pairs, res.TotalPairs,
		res.MedianRatioMathis, 100*res.WithinFactor2Mathis, res.RankCorrMathis,
		res.MedianRatioSim, 100*res.WithinFactor2Sim, res.RankCorrSim)
	for _, reg := range res.Regimes {
		t.Logf("  %-14s pairs=%-3d median ratio %.2f, median |rel err| %.2f", reg.Name, reg.Pairs, reg.MedianRatio, reg.MedianAbsRelErr)
	}
}

// TestPacketValidationDeterministic is the acceptance property: the
// exhibit is byte-identical at Concurrency 1, 4, and auto.
func TestPacketValidationDeterministic(t *testing.T) {
	var want []byte
	for _, conc := range []int{1, 4, 0} {
		res := runPacketValidation(t, conc)
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("conc=%d: exhibit bytes diverge from sequential run", conc)
		}
	}
}
