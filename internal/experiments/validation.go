package experiments

import (
	"fmt"

	"pathsel/internal/bgp"
	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// This file holds extension experiments the original study could not
// run: the Internet offered the authors no way to source-route packets
// along their synthetic alternates ("loose source routing ... is
// disabled by many AS's because of security concerns"), so the paper's
// conservativity argument — that host-composed alternates underestimate
// the real routing inefficiency — went unverified. The simulator can
// evaluate the router-level source-routed paths directly.

// ConservativityResult summarizes the source-routing validation.
type ConservativityResult struct {
	// Pairs is the number of pairs with a one-hop synthetic alternate.
	Pairs int
	// PredictedBetter counts pairs whose synthetic alternate estimate
	// beats the default path's measured mean.
	PredictedBetter int
	// ConfirmedBetter counts predicted-better pairs whose true
	// source-routed path (relay router, no host detour) also beats the
	// default path's true expected RTT.
	ConfirmedBetter int
	// SourceRouteBeatsEstimate counts predicted-better pairs where the
	// true source-routed RTT is at most the synthetic estimate — each
	// such pair is a case where the paper's methodology was indeed
	// conservative.
	SourceRouteBeatsEstimate int
}

// ConservativeFraction is the share of predicted-better pairs where the
// synthetic estimate was conservative (true source-routed performance at
// least as good as predicted).
func (r ConservativityResult) ConservativeFraction() float64 {
	if r.PredictedBetter == 0 {
		return 0
	}
	return float64(r.SourceRouteBeatsEstimate) / float64(r.PredictedBetter)
}

// ConfirmationFraction is the share of predicted-better pairs whose
// advantage survives when the alternate is actually source-routed.
func (r ConservativityResult) ConfirmationFraction() float64 {
	if r.PredictedBetter == 0 {
		return 0
	}
	return float64(r.ConfirmedBetter) / float64(r.PredictedBetter)
}

// validationSampleTimes returns probe instants spread across the UW3
// campaign window for evaluating true expected path RTTs.
func validationSampleTimes() []netsim.Time {
	var out []netsim.Time
	for day := 0; day < 7; day++ {
		for hour := 1; hour < 24; hour += 3 {
			out = append(out, netsim.Time(day*86400+hour*3600+247))
		}
	}
	return out
}

// trueRTT returns the mean expected round-trip time of a forward/reverse
// path pair across the sample times, including endpoint access links.
func trueRTT(net *netsim.Network, fwdPath, revPath forward.Path, src, dst topology.HostID, times []netsim.Time) (float64, error) {
	var acc stats.Accum
	for _, t := range times {
		fst, err := net.EvalHostPath(src, dst, fwdPath.Links, t)
		if err != nil {
			return 0, err
		}
		rst, err := net.EvalHostPath(dst, src, revPath.Links, t)
		if err != nil {
			return 0, err
		}
		acc.Add(fst.DelayMs + rst.DelayMs)
	}
	return acc.Mean(), nil
}

// ValidateConservativity runs the source-routing validation on the UW3
// dataset: for every pair with a one-hop synthetic alternate, compare
// the paper-style estimate (composition of two measured host paths,
// which pays the relay's access link twice) against the true expected
// RTT of the loose-source-routed router path through the same relay.
func ValidateConservativity(s *Suite) (ConservativityResult, error) {
	fwd, net := s.UWForwarding()
	a := s.analyzer(s.UW3)
	rs, err := a.Query(core.QuerySpec{Metric: core.MetricRTT, MaxVia: 1})
	if err != nil {
		return ConservativityResult{}, err
	}
	results := rs.PairResults()
	times := validationSampleTimes()
	var out ConservativityResult
	for _, r := range results {
		if len(r.Via) != 1 {
			continue
		}
		out.Pairs++
		if r.Improvement() <= 0 {
			continue
		}
		out.PredictedBetter++

		srFwd, err := fwd.LooseSourcePath(r.Key.Src, r.Via, r.Key.Dst)
		if err != nil {
			return ConservativityResult{}, fmt.Errorf("validate %v: %w", r.Key, err)
		}
		srRev, err := fwd.LooseSourcePath(r.Key.Dst, r.Via, r.Key.Src)
		if err != nil {
			return ConservativityResult{}, fmt.Errorf("validate %v reverse: %w", r.Key, err)
		}
		srTrue, err := trueRTT(net, srFwd, srRev, r.Key.Src, r.Key.Dst, times)
		if err != nil {
			return ConservativityResult{}, err
		}

		defFwd, err := fwd.HostPath(r.Key.Src, r.Key.Dst)
		if err != nil {
			return ConservativityResult{}, err
		}
		defRev, err := fwd.HostPath(r.Key.Dst, r.Key.Src)
		if err != nil {
			return ConservativityResult{}, err
		}
		defTrue, err := trueRTT(net, defFwd, defRev, r.Key.Src, r.Key.Dst, times)
		if err != nil {
			return ConservativityResult{}, err
		}

		if srTrue < defTrue {
			out.ConfirmedBetter++
		}
		if srTrue <= r.AltValue {
			out.SourceRouteBeatsEstimate++
		}
	}
	return out, nil
}

// EgressAblation compares default-path quality and alternate-path
// opportunity under hot-potato versus cold-potato egress selection,
// quantifying how much of the measured inefficiency early-exit routing
// contributes (the paper's Section 3 names it as a suspect but cannot
// isolate it).
type EgressAblation struct {
	Policy forward.EgressPolicy
	// MeanDefaultRTT is the mean measured default-path RTT across pairs.
	MeanDefaultRTT float64
	// BetterFraction is the share of pairs with a superior alternate.
	BetterFraction float64
	// MedianImprovement is the median of the improvement CDF.
	MedianImprovement float64
}

// AblateEgress reruns a compact UW3-style campaign under each egress
// policy and reports the comparison. It builds its own topology so the
// suite's datasets are untouched.
func AblateEgress(cfg Config) ([]EgressAblation, error) {
	topCfg := topology.DefaultConfig(topology.Era1999)
	topCfg.Seed = cfg.Seed
	topCfg.NumHosts = 14
	top, err := topology.Generate(topCfg)
	if err != nil {
		return nil, err
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		return nil, err
	}
	netCfg := netsim.ConfigFor(topology.Era1999)
	netCfg.Seed = cfg.Seed + 11
	net := netsim.New(top, netCfg)

	var hosts []topology.HostID
	for _, h := range top.Hosts {
		hosts = append(hosts, h.ID)
	}
	var out []EgressAblation
	for _, policy := range []forward.EgressPolicy{forward.HotPotato, forward.ColdPotato} {
		fwd := forward.NewWithEgress(top, g, table, policy)
		prbCfg := probe.DefaultConfig()
		prbCfg.Seed = cfg.Seed + 21
		prb := probe.New(top, fwd, net, prbCfg)
		ds, err := measure.Run(top, prb, measure.Spec{
			Name:            "egress-" + policy.String(),
			Hosts:           hosts,
			Method:          measure.MethodTraceroute,
			Scheduler:       measure.ExponentialPairs,
			MeanIntervalSec: 55,
			DurationSec:     3 * 86400,
			RateLimit:       measure.FilterHosts,
			MinMeasurements: 20,
			Seed:            cfg.Seed + 31,
		})
		if err != nil {
			return nil, err
		}
		a := core.NewAnalyzer(ds).WithConcurrency(cfg.Concurrency)
		rs, err := a.Query(core.QuerySpec{Metric: core.MetricRTT})
		if err != nil {
			return nil, err
		}
		results := rs.PairResults()
		var meanDefault stats.Accum
		for _, r := range results {
			meanDefault.Add(r.DefaultValue)
		}
		cdf := core.ImprovementCDF(results)
		med, err := cdf.Quantile(0.5)
		if err != nil {
			return nil, err
		}
		out = append(out, EgressAblation{
			Policy:            policy,
			MeanDefaultRTT:    meanDefault.Mean(),
			BetterFraction:    cdf.FractionAbove(0),
			MedianImprovement: med,
		})
	}
	return out, nil
}

// TriangulationResult is one pair's IDMaps-style distance estimate: the
// paper notes its tool suite independently reproduces Francis et al.'s
// host-distance graphs by triangulating propagation delays through
// intermediate hosts.
type TriangulationResult struct {
	Key dataset.PairKey
	// DirectMs is the direct path's propagation estimate (tenth
	// percentile of measured RTTs).
	DirectMs float64
	// BestTriangleMs is the smallest relay sum prop(a,r) + prop(r,b).
	BestTriangleMs float64
}

// ViolatesTriangle reports whether the relay estimate undercuts the
// direct one — a triangle-inequality violation in measured Internet
// delay space, evidence of default-path inflation.
func (r TriangulationResult) ViolatesTriangle() bool {
	return r.BestTriangleMs < r.DirectMs
}

// Triangulation runs the host-distance triangulation over the UW3
// dataset using one-hop relays.
func Triangulation(s *Suite) ([]TriangulationResult, error) {
	a := s.analyzer(s.UW3)
	rs, err := a.Query(core.QuerySpec{Metric: core.MetricPropDelay, MaxVia: 1})
	if err != nil {
		return nil, err
	}
	results := rs.PairResults()
	out := make([]TriangulationResult, 0, len(results))
	for _, r := range results {
		out = append(out, TriangulationResult{
			Key:            r.Key,
			DirectMs:       r.DefaultValue,
			BestTriangleMs: r.AltValue,
		})
	}
	return out, nil
}

// CrossMetricSummary reports how often the RTT-best alternate also
// improves loss, and vice versa — the question an overlay router (which
// carries one flow that cares about both) actually faces.
type CrossMetricSummary struct {
	// RTTWinners is the number of pairs whose RTT-best alternate beats
	// the default on RTT; RTTAlsoLoss of them also improve loss.
	RTTWinners, RTTAlsoLoss int
	// LossWinners / LossAlsoRTT are the reverse direction.
	LossWinners, LossAlsoRTT int
}

// CrossMetrics runs both cross-metric evaluations over UW3.
func CrossMetrics(s *Suite) (CrossMetricSummary, error) {
	a := s.analyzer(s.UW3)
	var out CrossMetricSummary
	rtt, err := a.CrossMetric(core.MetricRTT, core.MetricLoss, 0)
	if err != nil {
		return out, err
	}
	for _, r := range rtt {
		if r.SelectImprovement > 0 {
			out.RTTWinners++
			if r.JudgeImprovement > 0 {
				out.RTTAlsoLoss++
			}
		}
	}
	loss, err := a.CrossMetric(core.MetricLoss, core.MetricRTT, 0)
	if err != nil {
		return out, err
	}
	for _, r := range loss {
		if r.SelectImprovement > 0 {
			out.LossWinners++
			if r.JudgeImprovement > 0 {
				out.LossAlsoRTT++
			}
		}
	}
	return out, nil
}
