package experiments

import (
	"strings"
	"testing"
)

// FuzzParsePreset drives the preset parser and config validation with
// arbitrary input: parsing either fails cleanly or yields a preset
// that validates and round-trips through String.
func FuzzParsePreset(f *testing.F) {
	f.Add("quick")
	f.Add("full")
	f.Add("")
	f.Add("QUICK")
	f.Add("full ")
	f.Add("preset(1)")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePreset(s)
		if err != nil {
			if !strings.Contains(err.Error(), "unknown preset") {
				t.Fatalf("ParsePreset(%q): unexpected error shape: %v", s, err)
			}
			return
		}
		if p.String() != s {
			t.Fatalf("ParsePreset(%q) = %v which renders as %q; accepted names must round-trip", s, p, p.String())
		}
		cfg := Config{Seed: 1, Preset: p}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("config with parsed preset %v failed validation: %v", p, err)
		}
		if err := (Config{Preset: p, Concurrency: -1}).Validate(); err == nil {
			t.Fatal("negative concurrency must not validate")
		}
	})
}
