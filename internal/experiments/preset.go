package experiments

import "fmt"

// ParsePreset resolves a campaign-scale name ("quick", "full" or
// "scale") to its Preset. Every command that exposes a -preset flag
// (and the serve query parameter) routes through this one parser, so
// the accepted names and the error message stay consistent across the
// toolchain.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	case "scale":
		return Scale, nil
	default:
		return 0, fmt.Errorf("unknown preset %q (want quick, full or scale)", s)
	}
}

// Validate reports whether the configuration can build a suite: the
// preset must be one of the defined scales and the concurrency knob
// non-negative. Build rejects invalid configurations with this error,
// so callers may skip calling it themselves.
func (c Config) Validate() error {
	switch c.Preset {
	case Quick, Full, Scale:
	default:
		return fmt.Errorf("experiments: invalid preset %v", c.Preset)
	}
	if c.Concurrency < 0 {
		return fmt.Errorf("experiments: negative concurrency %d", c.Concurrency)
	}
	return nil
}
