package experiments

import (
	"sort"

	"pathsel/internal/dynamics"
	"pathsel/internal/igp"
	"pathsel/internal/topology"
)

// RouteDynamicsSummary reports the Paxson-style route-prevalence census
// over the suite's UW topology under a week of BGP session failures —
// the routing-dynamics backdrop the paper builds on ("Internet paths are
// generally dominated by a single route, but some networks do experience
// significant route fluctuation", Section 2).
type RouteDynamicsSummary struct {
	// Epochs is the number of distinct routing states over the window.
	Epochs int
	// Pairs is the number of host pairs sampled.
	Pairs int
	// DominatedPairs counts pairs whose most common route carried at
	// least 80% of samples.
	DominatedPairs int
	// MultiRoutePairs counts pairs that saw more than one route.
	MultiRoutePairs int
	// MeanDominantFraction averages the dominant-route share.
	MeanDominantFraction float64
	// MaxDistinctRoutes is the largest number of routes any pair saw.
	MaxDistinctRoutes int
}

// RouteDynamics builds a one-week failure timeline over the suite's UW
// topology and samples every host pair's route prevalence.
func RouteDynamics(s *Suite, seed int64) (RouteDynamicsSummary, error) {
	top, _ := s.UWPlane()
	g := igp.New(top, igp.DefaultConfig())
	cfg := dynamics.DefaultConfig()
	cfg.Seed = seed
	// The default rate is calibrated to leave most adjacencies untouched
	// in a week; raise it slightly so the census observes some route
	// changes among the sampled pairs.
	cfg.FailuresPerAdjacencyPerWeek = 0.15
	if s.Config.Preset == Quick {
		cfg.DurationSec = 2 * 86400
		cfg.FailuresPerAdjacencyPerWeek = 0.2
	}
	tl, err := dynamics.Build(top, g, cfg)
	if err != nil {
		return RouteDynamicsSummary{}, err
	}

	// Sample the UW3 hosts (the suite's primary host set).
	hosts := append([]topology.HostID(nil), s.UW3.Hosts...)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	out := RouteDynamicsSummary{Epochs: len(tl.Epochs())}
	var domSum float64
	// Outages last ~30 minutes in a multi-day window; the census needs
	// enough temporal resolution to land samples inside them.
	const samples = 400
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			st, err := tl.RouteDominance(hosts[i], hosts[j], samples)
			if err != nil {
				return RouteDynamicsSummary{}, err
			}
			out.Pairs++
			domSum += st.DominantFraction
			if st.DominantFraction >= 0.8 {
				out.DominatedPairs++
			}
			if st.DistinctRoutes > 1 {
				out.MultiRoutePairs++
			}
			if st.DistinctRoutes > out.MaxDistinctRoutes {
				out.MaxDistinctRoutes = st.DistinctRoutes
			}
		}
	}
	if out.Pairs > 0 {
		out.MeanDominantFraction = domSum / float64(out.Pairs)
	}
	return out, nil
}
