package experiments

import (
	"reflect"
	"testing"

	"pathsel/internal/core"
)

func TestMultipath(t *testing.T) {
	s := testSuite(t)
	res, err := Multipath(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 || res.K != MultipathK {
		t.Fatalf("empty exhibit: %+v", res)
	}
	if len(res.Curve) != MultipathK {
		t.Fatalf("curve has %d points, want %d", len(res.Curve), MultipathK)
	}
	if len(res.Disjointness) != res.Pairs {
		t.Fatalf("disjointness cloud %d values for %d pairs", len(res.Disjointness), res.Pairs)
	}
	for i, pt := range res.Curve {
		if pt.K != i+1 {
			t.Errorf("curve[%d].K = %d", i, pt.K)
		}
		// Best-of-k improvement and max disjointness are monotone in k:
		// adding a path can only help.
		if i > 0 {
			prev := res.Curve[i-1]
			if pt.MeanImprovementMs < prev.MeanImprovementMs {
				t.Errorf("k=%d improvement %g below k=%d's %g",
					pt.K, pt.MeanImprovementMs, prev.K, prev.MeanImprovementMs)
			}
			if pt.FullyDisjointFrac < prev.FullyDisjointFrac {
				t.Errorf("k=%d disjoint fraction fell", pt.K)
			}
			if pt.MeanMaxDisjointness < prev.MeanMaxDisjointness {
				t.Errorf("k=%d mean max disjointness fell", pt.K)
			}
		}
		if pt.FullyDisjointFrac < 0 || pt.FullyDisjointFrac > 1 {
			t.Errorf("k=%d fraction out of range: %g", pt.K, pt.FullyDisjointFrac)
		}
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("strategy rows: %d", len(res.Strategies))
	}
	names := map[string]bool{}
	for _, row := range res.Strategies {
		names[row.Strategy] = true
		if row.MeanDisjointness < 0 || row.MeanDisjointness > 1 {
			t.Errorf("%s: disjointness %g out of range", row.Strategy, row.MeanDisjointness)
		}
	}
	for _, want := range []string{"latency", "loss", "disjoint-as"} {
		if !names[want] {
			t.Errorf("missing strategy row %q", want)
		}
	}
}

// TestMultipathDeterministic checks the exhibit end to end across
// worker counts: the k-set query, disjointness scoring, and strategy
// selection must be bit-identical however the search is sharded.
func TestMultipathDeterministic(t *testing.T) {
	s := testSuite(t)
	base := *s
	run := func(conc int) MultipathResult {
		cfg := base.Config
		cfg.Concurrency = conc
		withConc := base
		withConc.Config = cfg
		res, err := Multipath(&withConc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sequential := run(1)
	parallel := run(0)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatal("multipath exhibit differs across worker counts")
	}
}

// TestQueryPresetEquivalence is the acceptance property at suite
// scale: on a built preset's UW3 dataset, Query with K=1 reproduces
// the deprecated BestAlternates byte-for-byte at several worker
// counts. The quick preset always runs; the full preset is covered
// unless -short.
func TestQueryPresetEquivalence(t *testing.T) {
	check := func(t *testing.T, s *Suite) {
		want, err := core.NewAnalyzer(s.UW3).WithConcurrency(1).BestAlternates(core.MetricRTT, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatal("no pairs")
		}
		for _, conc := range []int{1, 4, 0} {
			rs, err := core.NewAnalyzer(s.UW3).WithConcurrency(conc).Query(core.QuerySpec{Metric: core.MetricRTT})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rs.PairResults(), want) {
				t.Fatalf("conc=%d: Query K=1 diverges from BestAlternates on %s", conc, s.UW3.Name)
			}
		}
	}
	t.Run("quick", func(t *testing.T) { check(t, testSuite(t)) })
	t.Run("full", func(t *testing.T) {
		if testing.Short() {
			t.Skip("full preset build in -short mode")
		}
		s, err := Build(Config{Seed: 1, Preset: Full})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s)
	})
}
