package experiments

import (
	"math"
	"testing"

	"pathsel/internal/forward"
)

func TestValidateConservativity(t *testing.T) {
	s := testSuite(t)
	res, err := ValidateConservativity(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs validated")
	}
	if res.PredictedBetter == 0 {
		t.Fatal("no predicted-better pairs; the headline effect vanished")
	}
	if res.ConfirmedBetter > res.PredictedBetter || res.SourceRouteBeatsEstimate > res.PredictedBetter {
		t.Fatalf("inconsistent counts: %+v", res)
	}
	// The paper's conservativity claim: composing host paths
	// underestimates what router-level routing could achieve. The
	// source-routed path skips the relay's access links and so should
	// beat the estimate for the overwhelming majority of pairs.
	if f := res.ConservativeFraction(); f < 0.80 {
		t.Errorf("conservative fraction %.2f; expected >= 0.80 (%+v)", f, res)
	}
	// And most predicted wins should be real wins when source-routed.
	if f := res.ConfirmationFraction(); f < 0.60 {
		t.Errorf("confirmation fraction %.2f; expected >= 0.60 (%+v)", f, res)
	}
	t.Logf("conservativity: %+v (conservative %.0f%%, confirmed %.0f%%)",
		res, 100*res.ConservativeFraction(), 100*res.ConfirmationFraction())
}

func TestAblateEgress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two measurement campaigns")
	}
	res, err := AblateEgress(Config{Seed: 1, Preset: Quick})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Policy != forward.HotPotato || res[1].Policy != forward.ColdPotato {
		t.Fatalf("unexpected policy order: %v, %v", res[0].Policy, res[1].Policy)
	}
	for _, r := range res {
		if r.MeanDefaultRTT <= 0 {
			t.Errorf("%v: nonpositive mean default RTT", r.Policy)
		}
		if r.BetterFraction < 0 || r.BetterFraction > 1 {
			t.Errorf("%v: better fraction %f out of range", r.Policy, r.BetterFraction)
		}
	}
	t.Logf("hot:  meanRTT=%.1f better=%.2f medianGain=%.1f", res[0].MeanDefaultRTT, res[0].BetterFraction, res[0].MedianImprovement)
	t.Logf("cold: meanRTT=%.1f better=%.2f medianGain=%.1f", res[1].MeanDefaultRTT, res[1].BetterFraction, res[1].MedianImprovement)
}

func TestTriangulation(t *testing.T) {
	s := testSuite(t)
	res, err := Triangulation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no triangulation results")
	}
	violations := 0
	for _, r := range res {
		if r.DirectMs <= 0 || r.BestTriangleMs <= 0 {
			t.Fatalf("nonpositive estimate: %+v", r)
		}
		if r.ViolatesTriangle() {
			violations++
		}
		if r.ViolatesTriangle() != (r.BestTriangleMs < r.DirectMs) {
			t.Fatal("ViolatesTriangle inconsistent")
		}
	}
	// Default-path inflation means measured delay space is not metric:
	// a meaningful fraction of pairs must have triangle violations.
	frac := float64(violations) / float64(len(res))
	if frac < 0.10 {
		t.Errorf("triangle violation fraction %.2f; expected >= 0.10", frac)
	}
	t.Logf("triangle violations: %d of %d (%.0f%%)", violations, len(res), 100*frac)
}

func TestRouteDynamics(t *testing.T) {
	s := testSuite(t)
	sum, err := RouteDynamics(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs == 0 || sum.Epochs == 0 {
		t.Fatalf("empty summary %+v", sum)
	}
	// Paxson's finding: paths are generally dominated by a single route.
	if frac := float64(sum.DominatedPairs) / float64(sum.Pairs); frac < 0.5 {
		t.Errorf("only %.0f%% of pairs route-dominated; expected most", 100*frac)
	}
	if sum.MeanDominantFraction < 0.5 || sum.MeanDominantFraction > 1 {
		t.Errorf("mean dominant fraction %f out of range", sum.MeanDominantFraction)
	}
	t.Logf("route dynamics: %+v", sum)
}

func TestPathInflation(t *testing.T) {
	s := testSuite(t)
	results, sum, err := PathInflation(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs == 0 || len(results) != sum.Pairs {
		t.Fatalf("bad summary %+v", sum)
	}
	// The default path's measured propagation should rarely beat the
	// optimum meaningfully (wander can dip slightly below).
	for _, r := range results {
		if r.Inflation() < 0.6 {
			t.Fatalf("default implausibly below optimal: %+v", r)
		}
	}
	if sum.MedianInflation < 1.0 {
		t.Errorf("median inflation %.2f; expected >= 1", sum.MedianInflation)
	}
	// Policy routing must leave a meaningful inflated population, and
	// alternates must recover a real share of the gap for some of them.
	if sum.InflatedFraction < 0.2 {
		t.Errorf("inflated fraction %.2f; expected >= 0.2", sum.InflatedFraction)
	}
	if sum.HalfRecoveredFraction <= 0 {
		t.Error("no inflated pair recovers half its gap via an alternate")
	}
	t.Logf("inflation: %+v", sum)
}

func TestValidateTCPModel(t *testing.T) {
	s := testSuite(t)
	res, err := ValidateTCPModel(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs validated")
	}
	// Mathis is only an approximation, but on this substrate it must
	// order paths essentially correctly and sit within a small constant
	// factor for most pairs — otherwise Figures 4-5 are meaningless.
	if res.RankCorrelation < 0.7 {
		t.Errorf("rank correlation %.2f; expected >= 0.7", res.RankCorrelation)
	}
	if res.WithinFactor2 < 0.5 {
		t.Errorf("within-factor-2 fraction %.2f; expected >= 0.5", res.WithinFactor2)
	}
	if res.MedianRatio < 0.3 || res.MedianRatio > 3 {
		t.Errorf("median ratio %.2f outside [0.3, 3]", res.MedianRatio)
	}
	t.Logf("tcp model validation: %+v", res)
}

func TestCauseAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six measurement campaigns")
	}
	res, err := CauseAblation(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("got %d variants", len(res))
	}
	byName := map[string]CauseResult{}
	for _, r := range res {
		byName[r.Variant] = r
		if r.BetterFraction < 0 || r.BetterFraction > 1 {
			t.Errorf("%s: fraction %f out of range", r.Variant, r.BetterFraction)
		}
		if r.MeanDefaultRTT <= 0 {
			t.Errorf("%s: nonpositive mean RTT", r.Variant)
		}
		t.Logf("%-24s better=%.2f medianGain=%.1f meanRTT=%.1f",
			r.Variant, r.BetterFraction, r.MedianImprovement, r.MeanDefaultRTT)
	}
	// Mechanism removal regenerates the topology (different random
	// draws), so directional effects are confounded; the structural
	// requirements are that each variant runs, and that the mechanisms
	// matter at all — the variants must not all coincide.
	base := byName["baseline"]
	allSame := true
	for _, r := range res {
		if r.Variant == "baseline" {
			continue
		}
		if math.Abs(r.BetterFraction-base.BetterFraction) > 0.01 ||
			math.Abs(r.MeanDefaultRTT-base.MeanDefaultRTT) > 1 {
			allSame = false
		}
	}
	if allSame {
		t.Error("no mechanism removal changed anything; ablation is inert")
	}
	// Removing remote providers must shorten default paths (less
	// geographic detour), whatever it does to the alternate fraction.
	if byName["no-remote-providers"].MeanDefaultRTT >= base.MeanDefaultRTT {
		t.Errorf("removing remote providers should reduce mean default RTT: %.1f vs %.1f",
			byName["no-remote-providers"].MeanDefaultRTT, base.MeanDefaultRTT)
	}
}

func TestSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across seeds")
	}
	fracs, err := SeedSensitivity(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fracs) != 3 {
		t.Fatalf("got %d fractions", len(fracs))
	}
	for i, f := range fracs {
		// The headline effect must appear for every seed: the paper's
		// conclusion is not an artifact of one topology draw.
		if f < 0.15 || f > 0.9 {
			t.Errorf("seed %d: better fraction %.2f outside [0.15, 0.9]", i, f)
		}
	}
	t.Logf("seed sensitivity: %v", fracs)
	if _, err := SeedSensitivity(1, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}

func TestCrossMetrics(t *testing.T) {
	s := testSuite(t)
	sum, err := CrossMetrics(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.RTTWinners == 0 || sum.LossWinners == 0 {
		t.Fatalf("no winners: %+v", sum)
	}
	if sum.RTTAlsoLoss > sum.RTTWinners || sum.LossAlsoRTT > sum.LossWinners {
		t.Fatalf("inconsistent counts: %+v", sum)
	}
	t.Logf("cross metrics: %+v (rtt-best also improves loss %.0f%%, loss-best also improves rtt %.0f%%)",
		sum, 100*float64(sum.RTTAlsoLoss)/float64(sum.RTTWinners),
		100*float64(sum.LossAlsoRTT)/float64(sum.LossWinners))
}
