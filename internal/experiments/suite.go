// Package experiments reproduces the paper's evaluation: it builds the
// eight dataset rows of Table 1 on the synthetic Internet (the UW
// campaigns on a 1998-99 North American topology; D2/N2 on a sparser
// 1995 world topology) and provides one driver per table and figure,
// returning the same rows and series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"pathsel/internal/bgp"
	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/geo"
	"pathsel/internal/igp"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

// Preset selects the campaign scale.
type Preset int

const (
	// Full reproduces the paper's dataset sizes (tens to hundreds of
	// thousands of measurements); building the suite takes on the order
	// of a minute.
	Full Preset = iota
	// Quick shrinks host counts and campaign lengths for tests and
	// development while preserving every structural property (multi-day
	// spans with weekends, >30 measurements per path, episodes).
	Quick
	// Scale runs the UW campaigns on a planet-scale substrate — ten
	// thousand stub ASes and one hundred thousand hosts — with the UW3
	// campaign sampling clustered pair meshes from a 560-host pool so
	// pair coverage stays dense while the pair count grows linearly.
	// The D2/N2 plane keeps the full-preset sizes (the 1995 Internet
	// was not planet-scale).
	Scale
)

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case Full:
		return "full"
	case Quick:
		return "quick"
	case Scale:
		return "scale"
	default:
		return fmt.Sprintf("preset(%d)", int(p))
	}
}

// Config configures suite construction.
type Config struct {
	Seed   int64
	Preset Preset
	// Concurrency is passed to every core.Analyzer the drivers build:
	// 0 = one worker per CPU, 1 = sequential. Results are identical for
	// every setting (the engine is deterministic); see core.Analyzer.
	Concurrency int
}

// DefaultConfig returns the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Seed: 1, Preset: Full} }

// Suite holds every dataset of Table 1 plus the substrate handles needed
// by the figure drivers.
type Suite struct {
	Config Config

	// UW datasets: 1998-99 North American topology.
	UW1, UW3, UW4A, UW4B *dataset.Dataset
	// Paxson-era datasets: 1995 world topology.
	D2, D2NA, N2, N2NA *dataset.Dataset

	// TopoUW and TopoD2 are the underlying topologies (for AS metadata
	// and host locations).
	TopoUW, TopoD2 *topology.Topology

	uwPlane *plane
	d2Plane *plane

	// ctx bounds the analyses run through the suite's drivers; set with
	// WithContext, nil means never cancelled.
	ctx context.Context
}

// WithContext returns a shallow copy of the suite whose analyzers are
// bound to ctx: every figure and table driver invoked on the copy
// aborts with ctx.Err() once ctx is cancelled. The underlying datasets
// are shared, so a cached suite can serve many requests, each bounded
// by its own request context.
func (s *Suite) WithContext(ctx context.Context) *Suite {
	c := *s
	c.ctx = ctx
	return &c
}

// datasetsByName maps the Table 1 row names to suite fields.
func (s *Suite) datasetsByName() map[string]*dataset.Dataset {
	return map[string]*dataset.Dataset{
		"UW1": s.UW1, "UW3": s.UW3, "UW4-A": s.UW4A, "UW4-B": s.UW4B,
		"D2": s.D2, "D2-NA": s.D2NA, "N2": s.N2, "N2-NA": s.N2NA,
	}
}

// Dataset returns the suite dataset with the given Table 1 name (UW1,
// UW3, UW4-A, UW4-B, D2, D2-NA, N2, N2-NA), or false if the name is
// unknown. It gives tools a uniform way to address any of the eight
// datasets without reaching into suite fields.
func (s *Suite) Dataset(name string) (*dataset.Dataset, bool) {
	ds, ok := s.datasetsByName()[name]
	return ds, ok
}

// DatasetNames lists the names accepted by Dataset, in Table 1 order.
func DatasetNames() []string {
	return []string{"UW1", "UW3", "UW4-A", "UW4-B", "D2", "D2-NA", "N2", "N2-NA"}
}

// UWPlane returns the UW topology together with a prober over the same
// network state the UW campaigns measured, for tools and benchmarks that
// issue additional probes.
func (s *Suite) UWPlane() (*topology.Topology, *probe.Prober) {
	return s.uwPlane.top, s.uwPlane.prb
}

// UWForwarding exposes the UW plane's forwarder and congestion model,
// used by the validation experiments to evaluate router-level
// source-routed paths that the paper's measurement-only methodology
// could not observe.
func (s *Suite) UWForwarding() (*forward.Forwarder, *netsim.Network) {
	return s.uwPlane.fwd, s.uwPlane.net
}

// D2Forwarding exposes the Paxson plane's forwarder and congestion
// model — the substrate the N2 transfer campaigns ran over — for the
// packet-level validation exhibit.
func (s *Suite) D2Forwarding() (*forward.Forwarder, *netsim.Network) {
	return s.d2Plane.fwd, s.d2Plane.net
}

// Datasets returns the traceroute datasets in the order the paper's
// round-trip figures present them.
func (s *Suite) Datasets() []*dataset.Dataset {
	return []*dataset.Dataset{s.UW1, s.UW3, s.D2NA, s.D2}
}

// analyzer builds a core.Analyzer over one of the suite's datasets with
// the configured concurrency and context; every figure and table driver
// routes through it.
func (s *Suite) analyzer(ds *dataset.Dataset) *core.Analyzer {
	a := core.NewAnalyzer(ds).WithConcurrency(s.Config.Concurrency)
	if s.ctx != nil {
		a = a.WithContext(s.ctx)
	}
	return a
}

// campaignScale bundles per-preset campaign parameters.
type campaignScale struct {
	uwHosts, uw4Hosts, d2Hosts, n2Hosts int

	uw1Days, uw3Days, uw4Days, d2Days, n2Days float64

	uw1Mean, uw3Mean, uw4aMean, uw4bMean, d2Mean, n2Mean float64

	minMeasurements int

	// uw3Pool/uw3Cluster switch UW3 to the SampledPairs scheduler over
	// a pool of uw3Pool hosts split into clusters of uw3Cluster; zero
	// keeps the paper's ExponentialPairs discipline. uw3Min overrides
	// the per-path measurement floor for UW3 alone (0 = use
	// minMeasurements).
	uw3Pool, uw3Cluster, uw3Min int
}

func scaleFor(p Preset) campaignScale {
	switch p {
	case Quick:
		return campaignScale{
			uwHosts: 16, uw4Hosts: 8, d2Hosts: 14, n2Hosts: 14,
			uw1Days: 10, uw3Days: 7, uw4Days: 7, d2Days: 14, n2Days: 14,
			uw1Mean: 1800, uw3Mean: 60, uw4aMean: 2400, uw4bMean: 300,
			d2Mean: 120, n2Mean: 250,
			minMeasurements: 20,
		}
	case Scale:
		// The UW3 pool samples 560 hosts (64 above the analyzer's
		// heap-search threshold, so goal-directed searches are the norm)
		// in clusters of 70; with a ~45000 s mean round interval over
		// seven days each pair is measured ~13 times.
		return campaignScale{
			uwHosts: 39, uw4Hosts: 15, d2Hosts: 33, n2Hosts: 31,
			uw1Days: 34, uw3Days: 7, uw4Days: 14, d2Days: 48, n2Days: 44,
			uw1Mean: 1800, uw3Mean: 45000, uw4aMean: 1000, uw4bMean: 150,
			d2Mean: 118, n2Mean: 208,
			minMeasurements: dataset.MinMeasurementsPerPath,
			uw3Pool:         560, uw3Cluster: 70, uw3Min: 8,
		}
	}
	return campaignScale{
		uwHosts: 39, uw4Hosts: 15, d2Hosts: 33, n2Hosts: 31,
		uw1Days: 34, uw3Days: 7, uw4Days: 14, d2Days: 48, n2Days: 44,
		// UW1's effective per-server rate lands near the paper's 54k
		// measurements with a 30-minute mean; the other means follow the
		// paper's text (9 s, 1000 s, 150 s) or its measurement counts.
		uw1Mean: 1800, uw3Mean: 9, uw4aMean: 1000, uw4bMean: 150,
		d2Mean: 118, n2Mean: 208,
		minMeasurements: dataset.MinMeasurementsPerPath,
	}
}

// plane bundles the per-topology measurement stack.
type plane struct {
	top *topology.Topology
	prb *probe.Prober
	fwd *forward.Forwarder
	net *netsim.Network
	igp *igp.IGP
	bgp *bgp.Table
}

func buildPlane(topCfg topology.Config, netSeed, probeSeed int64) (*plane, error) {
	top, err := topology.Generate(topCfg)
	if err != nil {
		return nil, err
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		return nil, err
	}
	fwd := forward.New(top, g, table)
	netCfg := netsim.ConfigFor(topCfg.Era)
	netCfg.Seed = netSeed
	net := netsim.New(top, netCfg)
	prbCfg := probe.DefaultConfig()
	prbCfg.Seed = probeSeed
	return &plane{
		top: top, prb: probe.New(top, fwd, net, prbCfg),
		fwd: fwd, net: net, igp: g, bgp: table,
	}, nil
}

// Build constructs the full suite: both topologies and all eight
// datasets. The two measurement planes (and the campaigns within each)
// are independent and run concurrently; every dataset is a
// deterministic function of cfg alone.
func Build(cfg Config) (*Suite, error) {
	//repolint:allow ctxflow -- Build is the documented never-cancelled convenience root of BuildContext
	return BuildContext(context.Background(), cfg)
}

// BuildContext is Build bounded by a context: cancelling ctx aborts the
// in-flight measurement campaigns and returns ctx.Err(), so a server
// building suites on demand can stop work for abandoned requests. A
// completed suite is identical for any ctx — cancellation either
// aborts the build or leaves it untouched, never truncates it.
func BuildContext(ctx context.Context, cfg Config) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc := scaleFor(cfg.Preset)
	s := &Suite{Config: cfg}

	var wg sync.WaitGroup
	var uwErr, d2Err error
	wg.Add(2)
	go func() {
		defer wg.Done()
		uwErr = buildUWPart(ctx, s, cfg, sc)
	}()
	go func() {
		defer wg.Done()
		d2Err = buildD2Part(ctx, s, cfg, sc)
	}()
	wg.Wait()
	// Prefer the context's error: when a cancellation races with a
	// campaign failure the caller should see the cancellation.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if uwErr != nil {
		return nil, uwErr
	}
	if d2Err != nil {
		return nil, d2Err
	}
	return s, nil
}

// uwTopologyConfig derives the 1998-99 North American topology
// configuration for cfg. Both the cold build and the snapshot restore
// path (Reassemble) route through this one helper, so a restored
// substrate is exactly the one the campaigns measured.
func uwTopologyConfig(cfg Config, sc campaignScale) topology.Config {
	uwTopCfg := topology.DefaultConfig(topology.Era1999)
	uwTopCfg.Seed = cfg.Seed
	uwTopCfg.Region = geo.NorthAmerica
	uwTopCfg.NumHosts = sc.uwHosts + 14 // slack so enough non-rate-limited hosts exist
	if cfg.Preset == Quick {
		uwTopCfg.NumTier1 = 5
		uwTopCfg.NumTransit = 14
		uwTopCfg.NumStub = 60
		uwTopCfg.RoutersTier1 = 8
	}
	if cfg.Preset == Scale {
		// Planet-scale substrate: >10k ASes, 100k hosts spread ten to a
		// stub. Stubs shrink to two routers so the router count stays
		// near 22k.
		uwTopCfg.NumTier1 = 12
		uwTopCfg.NumTransit = 300
		uwTopCfg.NumStub = 10000
		uwTopCfg.RoutersStub = 2
		uwTopCfg.NumHosts = 100000
		uwTopCfg.HostsPerStub = 10
	}
	return uwTopCfg
}

// d2TopologyConfig derives the 1995 world topology configuration for
// cfg; shared by the cold build and Reassemble like uwTopologyConfig.
func d2TopologyConfig(cfg Config, sc campaignScale) topology.Config {
	d2TopCfg := topology.DefaultConfig(topology.Era1995)
	d2TopCfg.Seed = cfg.Seed + 1
	d2TopCfg.Region = geo.World
	d2TopCfg.NumHosts = sc.d2Hosts
	if cfg.Preset == Quick {
		d2TopCfg.NumTier1 = 4
		d2TopCfg.NumTransit = 10
		d2TopCfg.NumStub = 50
	}
	return d2TopCfg
}

// buildUWPart generates the 1998-99 North American plane and runs the
// four UW campaigns.
func buildUWPart(ctx context.Context, s *Suite, cfg Config, sc campaignScale) error {
	// --- UW plane: 1998-99, North America ---
	uwPlane, err := buildPlane(uwTopologyConfig(cfg, sc), cfg.Seed+101, cfg.Seed+201)
	if err != nil {
		return fmt.Errorf("experiments: UW plane: %w", err)
	}
	s.TopoUW = uwPlane.top
	s.uwPlane = uwPlane

	allUW := hostIDs(uwPlane.top)
	nonRL := nonRateLimited(uwPlane.top, allUW)
	if len(nonRL) < sc.uwHosts {
		return fmt.Errorf("experiments: only %d non-rate-limited hosts, need %d", len(nonRL), sc.uwHosts)
	}
	uw1Hosts := allUW[:min(sc.uwHosts-3, len(allUW))] // UW1 kept rate limiters as sources
	uw3Hosts := nonRL[:sc.uwHosts]
	uw3Spec := measure.Spec{
		Name: "UW3", Hosts: uw3Hosts,
		Method: measure.MethodTraceroute, Scheduler: measure.ExponentialPairs,
		MeanIntervalSec: sc.uw3Mean, DurationSec: sc.uw3Days * 86400,
		RateLimit:       measure.FilterHosts,
		MinMeasurements: sc.minMeasurements, Seed: cfg.Seed + 402,
	}
	if sc.uw3Pool > 0 {
		if len(nonRL) < sc.uw3Pool {
			return fmt.Errorf("experiments: only %d non-rate-limited hosts, need %d for the UW3 pool", len(nonRL), sc.uw3Pool)
		}
		uw3Spec.Hosts = nonRL[:sc.uw3Pool]
		uw3Spec.Scheduler = measure.SampledPairs
		uw3Spec.ClusterSize = sc.uw3Cluster
		if sc.uw3Min > 0 {
			uw3Spec.MinMeasurements = sc.uw3Min
		}
	}
	// UW4: a random subset of the UW3 pool, as in the paper ("selected
	// at random from a pool of 35 hosts").
	poolN := min(len(uw3Hosts), sc.uwHosts-4)
	pool := append([]topology.HostID(nil), uw3Hosts[:poolN]...)
	rng := rand.New(rand.NewSource(cfg.Seed + 301))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	uw4Hosts := pool[:sc.uw4Hosts]

	// Each campaign gets its own prober (and therefore its own random
	// stream and path cache), which keeps every dataset a deterministic
	// function of the configuration while letting the campaigns run
	// concurrently.
	uwSpecs := []measure.Spec{
		{
			Name: "UW1", Hosts: uw1Hosts,
			Method: measure.MethodTraceroute, Scheduler: measure.PerServerUniform,
			MeanIntervalSec: sc.uw1Mean, DurationSec: sc.uw1Days * 86400,
			RateLimit: measure.FilterTargets, MirrorMissing: true,
			MinMeasurements: sc.minMeasurements, Seed: cfg.Seed + 401,
		},
		uw3Spec,
		{
			Name: "UW4-A", Hosts: uw4Hosts,
			Method: measure.MethodTraceroute, Scheduler: measure.Episodes,
			MeanIntervalSec: sc.uw4aMean, DurationSec: sc.uw4Days * 86400,
			RateLimit: measure.FilterHosts, Seed: cfg.Seed + 403,
		},
		{
			Name: "UW4-B", Hosts: uw4Hosts,
			Method: measure.MethodTraceroute, Scheduler: measure.ExponentialPairs,
			MeanIntervalSec: sc.uw4bMean, DurationSec: sc.uw4Days * 86400,
			RateLimit:       measure.FilterHosts,
			MinMeasurements: sc.minMeasurements, Seed: cfg.Seed + 404,
		},
	}
	uwResults, err := runCampaigns(ctx, uwPlane, uwSpecs, cfg.Seed)
	if err != nil {
		return err
	}
	s.UW1, s.UW3, s.UW4A, s.UW4B = uwResults[0], uwResults[1], uwResults[2], uwResults[3]
	return nil
}

// buildD2Part generates the 1995 world plane and runs the D2/N2
// campaigns.
func buildD2Part(ctx context.Context, s *Suite, cfg Config, sc campaignScale) error {
	// --- Paxson plane: 1995, world ---
	d2Plane, err := buildPlane(d2TopologyConfig(cfg, sc), cfg.Seed+102, cfg.Seed+202)
	if err != nil {
		return fmt.Errorf("experiments: D2 plane: %w", err)
	}
	s.TopoD2 = d2Plane.top
	s.d2Plane = d2Plane
	allD2 := hostIDs(d2Plane.top)

	n2Hosts := allD2[:min(sc.n2Hosts, len(allD2))]
	d2Specs := []measure.Spec{
		{
			Name: "D2", Hosts: allD2,
			Method: measure.MethodTraceroute, Scheduler: measure.ExponentialPairs,
			MeanIntervalSec: sc.d2Mean, DurationSec: sc.d2Days * 86400,
			// D2 could not identify rate limiters; the first-sample
			// heuristic corrects the loss bias instead.
			RateLimit: measure.KeepAll, KeepSamples: 1,
			MinMeasurements: sc.minMeasurements, Seed: cfg.Seed + 405,
		},
		{
			Name: "N2", Hosts: n2Hosts,
			Method: measure.MethodTransfer, Scheduler: measure.ExponentialPairs,
			MeanIntervalSec: sc.n2Mean, DurationSec: sc.n2Days * 86400,
			RateLimit: measure.KeepAll, Seed: cfg.Seed + 406,
		},
	}
	d2Results, err := runCampaigns(ctx, d2Plane, d2Specs, cfg.Seed)
	if err != nil {
		return err
	}
	s.D2, s.N2 = d2Results[0], d2Results[1]
	s.D2NA = s.D2.Subset("D2-NA", inRegion(d2Plane.top, s.D2.Hosts, geo.NorthAmerica))
	s.N2NA = s.N2.Subset("N2-NA", inRegion(d2Plane.top, s.N2.Hosts, geo.NorthAmerica))
	return nil
}

// runCampaigns executes the specs concurrently, each with its own
// prober whose seed is derived from the spec seed; results are
// deterministic and independent of scheduling order.
func runCampaigns(ctx context.Context, pl *plane, specs []measure.Spec, baseSeed int64) ([]*dataset.Dataset, error) {
	results := make([]*dataset.Dataset, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec measure.Spec) {
			defer wg.Done()
			prbCfg := probe.DefaultConfig()
			prbCfg.Seed = baseSeed + spec.Seed // per-campaign stream
			prb := probe.New(pl.top, pl.fwd, pl.net, prbCfg)
			results[i], errs[i] = measure.RunContext(ctx, pl.top, prb, spec)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func hostIDs(top *topology.Topology) []topology.HostID {
	out := make([]topology.HostID, len(top.Hosts))
	for i, h := range top.Hosts {
		out[i] = h.ID
	}
	return out
}

func nonRateLimited(top *topology.Topology, hosts []topology.HostID) []topology.HostID {
	var out []topology.HostID
	for _, h := range hosts {
		if !top.Host(h).RateLimitICMP {
			out = append(out, h)
		}
	}
	return out
}

func inRegion(top *topology.Topology, hosts []topology.HostID, r geo.Region) []topology.HostID {
	var out []topology.HostID
	for _, h := range hosts {
		if geo.Contains(r, top.Host(h).Loc) {
			out = append(out, h)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
