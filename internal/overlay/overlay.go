// Package overlay is a Detour/RON-style online path-selection subsystem
// running on the simulated clock: the end-host mechanism the paper's
// closing argument says could exploit the 30-80% of pairs with a better
// alternate path.
//
// A set of overlay nodes (hosts of the synthetic Internet) maintain a
// full probing mesh. Per node pair, an EWMA estimator tracks round-trip
// time and loss from probe samples; a probe scheduler spreads a
// configurable probes/second budget across the mesh; a switching policy
// with hysteresis routes each pair either directly or through the best
// one-hop relay; and an outage detector declares a mesh edge down after
// consecutive lost probes, triggering burst reprobes and an immediate
// failover decision for every pair routed over the dead edge.
//
// Everything is deterministic in the configured seed: probe samples are
// drawn from per-probe generators keyed by (seed, edge, sequence
// number), and the evaluation harness's concurrency fans work out into
// pre-sized slots that are reduced in index order, so a parallel run is
// bit-identical to a sequential one (the same contract as
// core.Analyzer; see the determinism regression tests).
package overlay

import (
	"fmt"

	"pathsel/internal/forward"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// PathProvider supplies forwarding paths at simulated times. Both
// *forward.Cache (static converged network) and *dynamics.Timeline /
// *dynamics.DelayedTimeline (failing, reconverging network) satisfy it.
// Implementations need not be safe for concurrent use: the evaluation
// harness serializes every PathAt call behind one mutex.
type PathProvider interface {
	PathAt(src, dst topology.HostID, at netsim.Time) (forward.Path, error)
}

// Config tunes the overlay controller. Use DefaultConfig as a base.
type Config struct {
	// Seed feeds every random draw (probe sampling). Same seed, same
	// run, bit for bit, at any Concurrency.
	Seed int64

	// ProbesPerSec is the total probing budget across the whole mesh.
	// The scheduler spreads it round-robin over the edges, so the
	// per-edge refresh interval is edges/ProbesPerSec seconds. Outage
	// bursts may briefly exceed the budget (they are failover traffic,
	// not background measurement).
	ProbesPerSec float64
	// TickSec is the control-loop period: probes are issued and
	// switching decisions re-evaluated once per tick.
	TickSec float64

	// EWMAAlpha is the exponential-smoothing weight of new samples.
	EWMAAlpha float64
	// StaleAfterSec is the estimate age beyond which the policy starts
	// distrusting an edge; StalePenaltyMs is added to its score per
	// StaleAfterSec of excess age. Staleness-aware scoring keeps a
	// low-budget overlay from chasing long-gone measurements.
	StaleAfterSec  float64
	StalePenaltyMs float64
	// LossPenaltyMs converts estimated loss probability into the
	// milliseconds added to a route's score (a 1% loss estimate adds
	// LossPenaltyMs/100 ms).
	LossPenaltyMs float64

	// HysteresisFrac and HysteresisAbsMs damp route flapping: a pair
	// switches routes only when the challenger's score undercuts the
	// incumbent's by max(HysteresisFrac*incumbent, HysteresisAbsMs).
	// Outage failovers bypass hysteresis.
	HysteresisFrac  float64
	HysteresisAbsMs float64

	// OutageLosses is the number of consecutive lost probes after which
	// an edge is declared down.
	OutageLosses int
	// MaxCandidates bounds how many relay candidates a pair considers
	// per decision (the lowest-scoring relays win); 0 considers every
	// node. Candidate relays are the other overlay nodes; the harness
	// evaluates their concatenated forward-plane paths.
	MaxCandidates int

	// WarmupSec runs the control loop before the scored window starts,
	// so estimates exist when scoring begins.
	WarmupSec float64
	// ScoreIntervalSec is the harness's scoring grid: overlay, default
	// and offline-optimal are compared against ground truth on this
	// period (reaction times are tracked at TickSec resolution).
	ScoreIntervalSec float64
	// UsableLossMax is the ground-truth loss probability above which
	// the harness counts a route as unavailable.
	UsableLossMax float64

	// Concurrency is the harness worker count: 0 = one per CPU, 1 =
	// sequential. Results are identical for every setting.
	Concurrency int
}

// DefaultConfig returns a RON-flavored baseline: 10-second control
// ticks, outage declaration after two straight losses, and mild
// hysteresis.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		ProbesPerSec:     2,
		TickSec:          10,
		EWMAAlpha:        0.3,
		StaleAfterSec:    120,
		StalePenaltyMs:   10,
		LossPenaltyMs:    200,
		HysteresisFrac:   0.10,
		HysteresisAbsMs:  2,
		OutageLosses:     2,
		MaxCandidates:    0,
		WarmupSec:        1800,
		ScoreIntervalSec: 60,
		UsableLossMax:    0.5,
	}
}

// Validate reports a descriptive error for configurations the
// controller cannot run.
func (c Config) Validate() error {
	switch {
	case c.ProbesPerSec <= 0:
		return fmt.Errorf("overlay: ProbesPerSec must be positive")
	case c.TickSec <= 0:
		return fmt.Errorf("overlay: TickSec must be positive")
	case c.EWMAAlpha <= 0 || c.EWMAAlpha > 1:
		return fmt.Errorf("overlay: EWMAAlpha %.2f outside (0,1]", c.EWMAAlpha)
	case c.StaleAfterSec <= 0:
		return fmt.Errorf("overlay: StaleAfterSec must be positive")
	case c.HysteresisFrac < 0 || c.HysteresisFrac >= 1:
		return fmt.Errorf("overlay: HysteresisFrac %.2f outside [0,1)", c.HysteresisFrac)
	case c.HysteresisAbsMs < 0:
		return fmt.Errorf("overlay: HysteresisAbsMs must be non-negative")
	case c.LossPenaltyMs < 0 || c.StalePenaltyMs < 0:
		return fmt.Errorf("overlay: penalties must be non-negative")
	case c.OutageLosses < 1:
		return fmt.Errorf("overlay: OutageLosses must be at least 1")
	case c.MaxCandidates < 0:
		return fmt.Errorf("overlay: MaxCandidates must be non-negative")
	case c.WarmupSec < 0:
		return fmt.Errorf("overlay: WarmupSec must be non-negative")
	case c.ScoreIntervalSec < c.TickSec:
		return fmt.Errorf("overlay: ScoreIntervalSec %.0f below TickSec %.0f", c.ScoreIntervalSec, c.TickSec)
	case c.UsableLossMax <= 0 || c.UsableLossMax > 1:
		return fmt.Errorf("overlay: UsableLossMax %.2f outside (0,1]", c.UsableLossMax)
	case c.Concurrency < 0:
		return fmt.Errorf("overlay: negative concurrency %d", c.Concurrency)
	}
	return nil
}

// Direct marks a pair routed over its default Internet path rather than
// through a relay node.
const Direct = -1

// mix64 folds three 64-bit values into one (splitmix64-style
// finalizer), used to derive independent per-probe random seeds.
func mix64(a, b, c uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F ^ c*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
