package overlay

import (
	"context"
	"math"
	"sort"

	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// Controller is the online overlay control plane: probe scheduling,
// estimate ingestion, outage detection and switching decisions. It
// holds no reference to the network — the harness (or a real transport)
// executes the probes the controller plans and feeds the samples back —
// so the control logic is a pure, deterministic state machine over the
// simulated clock.
//
// The three phases of a control tick must be called in order
// (PlanProbes, Ingest, Decide) and never concurrently with each other;
// Decide itself fans the per-pair policy evaluation out over the
// configured worker count and is bit-identical at any setting.
type Controller struct {
	cfg   Config
	nodes []topology.HostID
	mesh  *mesh
	est   *estimator

	routes []int // per pair: Direct or relay node index

	// Scheduler state: a round-robin cursor with fractional budget
	// carry, plus the urgent set the outage detector fills.
	cursor    int
	budgetAcc float64
	urgent    []bool
	probeSeq  []uint64 // per-edge probe counter (keys the sample RNG)

	// forced marks pairs whose current route crossed an edge that just
	// went down: their next decision bypasses hysteresis.
	forced []bool

	probesSent int
	switches   int
	outages    int

	metrics *Metrics
}

// NewController builds a controller over the given overlay nodes (at
// least 3, so one-hop relays exist).
func NewController(nodes []topology.HostID, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := newMesh(len(nodes))
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:      cfg,
		nodes:    append([]topology.HostID(nil), nodes...),
		mesh:     m,
		est:      newEstimator(cfg, m.edges()),
		routes:   make([]int, m.edges()),
		urgent:   make([]bool, m.edges()),
		probeSeq: make([]uint64, m.edges()),
		forced:   make([]bool, m.edges()),
	}
	for p := range c.routes {
		c.routes[p] = Direct
	}
	return c, nil
}

// WithMetrics attaches an observability sink; nil is allowed and is the
// default (no metrics).
func (c *Controller) WithMetrics(m *Metrics) *Controller {
	c.metrics = m
	return c
}

// Nodes returns the overlay node set.
func (c *Controller) Nodes() []topology.HostID { return c.nodes }

// Pairs returns the number of overlay pairs (= mesh edges).
func (c *Controller) Pairs() int { return c.mesh.edges() }

// Route returns the current route of pair p: Direct or the relay's
// node index.
func (c *Controller) Route(p int) int { return c.routes[p] }

// ProbesSent and Switches report lifetime totals; OutagesDetected
// counts edge down-transitions.
func (c *Controller) ProbesSent() int      { return c.probesSent }
func (c *Controller) Switches() int        { return c.switches }
func (c *Controller) OutagesDetected() int { return c.outages }

// PlanProbes returns the mesh edges to probe this tick: every urgent
// edge (outage-burst reprobes, which may exceed the budget), then
// round-robin edges up to the tick's share of ProbesPerSec. Each edge
// appears at most once. The returned slice is valid until the next
// PlanProbes call.
func (c *Controller) PlanProbes() []int {
	m := c.mesh.edges()
	var plan []int
	taken := make([]bool, m)
	for e := 0; e < m; e++ {
		if c.urgent[e] {
			plan = append(plan, e)
			taken[e] = true
			c.urgent[e] = false
		}
	}
	c.budgetAcc += c.cfg.ProbesPerSec * c.cfg.TickSec
	n := int(c.budgetAcc)
	if n > m {
		n = m
	}
	for k := 0; k < n; k++ {
		e := c.cursor
		c.cursor = (c.cursor + 1) % m
		if taken[e] {
			continue
		}
		plan = append(plan, e)
		taken[e] = true
		c.budgetAcc--
	}
	c.probesSent += len(plan)
	if c.metrics != nil {
		c.metrics.probes(len(plan))
	}
	return plan
}

// ProbeSeq returns, and advances, the sequence number of the next probe
// on an edge. The harness keys each probe's random draw on (seed, edge,
// seq), so samples are deterministic no matter which worker executes
// them.
func (c *Controller) ProbeSeq(edge int) uint64 {
	s := c.probeSeq[edge]
	c.probeSeq[edge]++
	return s
}

// Ingest folds the tick's probe samples into the estimator, in plan
// order, and runs the outage detector: an edge crossing the
// consecutive-loss threshold marks every route using it for forced
// re-decision and schedules burst reprobes of the affected pairs'
// candidate edges for the next tick.
func (c *Controller) Ingest(at netsim.Time, plan []int, samples []Sample) {
	for k, e := range plan {
		if !c.est.update(e, at, samples[k]) {
			continue
		}
		c.outages++
		if c.metrics != nil {
			c.metrics.outage()
		}
		c.onEdgeDown(e)
	}
}

// onEdgeDown reacts to an edge down-transition: every pair whose
// current route uses the edge gets a forced decision, and all of that
// pair's candidate edges become urgent probes so the failover has
// fresh data to choose from.
func (c *Controller) onEdgeDown(edge int) {
	for p := range c.routes {
		e1, e2 := c.mesh.routeEdges(p, c.routes[p])
		if e1 != edge && e2 != edge {
			continue
		}
		c.forced[p] = true
		ij := c.mesh.pairs[p]
		c.urgent[p] = true
		for r := 0; r < c.mesh.n; r++ {
			if r == ij[0] || r == ij[1] {
				continue
			}
			c.urgent[c.mesh.edge(ij[0], r)] = true
			c.urgent[c.mesh.edge(r, ij[1])] = true
		}
	}
}

// routeScore scores a route for pair p from the estimator: the summed
// edge scores, +Inf if any leg is unprobed or down.
func (c *Controller) routeScore(p, route int, now netsim.Time) float64 {
	e1, e2 := c.mesh.routeEdges(p, route)
	if c.est.isDown(e1) {
		return math.Inf(1)
	}
	s := c.est.score(e1, now)
	if e2 >= 0 {
		if c.est.isDown(e2) {
			return math.Inf(1)
		}
		s += c.est.score(e2, now)
	}
	return s
}

// candidateRelays returns the relay node indices pair p may consider,
// in ascending node order, restricted to the MaxCandidates best by
// current score when the bound is set.
func (c *Controller) candidateRelays(p int, now netsim.Time) []int {
	ij := c.mesh.pairs[p]
	relays := make([]int, 0, c.mesh.n-2)
	for r := 0; r < c.mesh.n; r++ {
		if r != ij[0] && r != ij[1] {
			relays = append(relays, r)
		}
	}
	if c.cfg.MaxCandidates <= 0 || len(relays) <= c.cfg.MaxCandidates {
		return relays
	}
	scores := make([]float64, len(relays))
	for k, r := range relays {
		scores[k] = c.routeScore(p, r, now)
	}
	order := make([]int, len(relays))
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	kept := append([]int(nil), order[:c.cfg.MaxCandidates]...)
	sort.Ints(kept)
	out := make([]int, len(kept))
	for k, idx := range kept {
		out[k] = relays[idx]
	}
	return out
}

// decideOne computes pair p's next route. Ordinary switches require
// the challenger to undercut the incumbent by the hysteresis margin;
// forced decisions (current route down) take the best eligible route
// outright, or hold position when nothing eligible exists yet.
func (c *Controller) decideOne(p int, now netsim.Time) int {
	cur := c.routes[p]
	best, bestScore := Direct, c.routeScore(p, Direct, now)
	for _, r := range c.candidateRelays(p, now) {
		if s := c.routeScore(p, r, now); s < bestScore {
			best, bestScore = r, s
		}
	}
	if math.IsInf(bestScore, 1) {
		return cur // nothing eligible; hold
	}
	if c.forced[p] {
		return best
	}
	curScore := c.routeScore(p, cur, now)
	if math.IsInf(curScore, 1) {
		// The incumbent became ineligible (down or never probed)
		// without a detector event for this pair; fail over.
		return best
	}
	margin := c.cfg.HysteresisFrac * curScore
	if margin < c.cfg.HysteresisAbsMs {
		margin = c.cfg.HysteresisAbsMs
	}
	if best != cur && bestScore < curScore-margin {
		return best
	}
	return cur
}

// Decide re-evaluates every pair's route, fanning the policy
// computation out over the configured worker count (reads only), then
// applying the decisions in pair order. Returns the number of
// switches made this tick.
func (c *Controller) Decide(ctx context.Context, now netsim.Time) (int, error) {
	next := make([]int, len(c.routes))
	err := parallelFor(ctx, autoWorkers(c.cfg.Concurrency), len(c.routes), func(p int) {
		next[p] = c.decideOne(p, now)
	})
	if err != nil {
		return 0, err
	}
	switched := 0
	for p, r := range next {
		c.forced[p] = false
		if r != c.routes[p] {
			c.routes[p] = r
			switched++
		}
	}
	c.switches += switched
	if c.metrics != nil {
		c.metrics.switched(switched)
	}
	return switched, nil
}
