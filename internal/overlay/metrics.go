package overlay

import "pathsel/internal/obs"

// Metrics is the overlay's observability sink. All methods are safe on
// a nil receiver, so instrumentation costs nothing when unattached.
type Metrics struct {
	// ProbesSent counts probes the scheduler issued.
	ProbesSent *obs.Counter
	// Switches counts route changes the policy applied.
	Switches *obs.Counter
	// Outages counts edge down-transitions the detector declared.
	Outages *obs.Counter
	// Detection records failover reaction times in seconds: from a
	// route becoming unusable in ground truth to the pair switching to
	// a working route.
	Detection *obs.Histogram
}

// NewMetrics registers the overlay metric family in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		ProbesSent: reg.Counter("overlay_probes_sent_total", "Probes issued by the overlay scheduler."),
		Switches:   reg.Counter("overlay_switches_total", "Route switches applied by the overlay policy."),
		Outages:    reg.Counter("overlay_outages_detected_total", "Mesh-edge down transitions declared by the outage detector."),
		Detection:  reg.Histogram("overlay_failover_reaction_seconds", "Time from a route failing to the overlay switching off it."),
	}
}

func (m *Metrics) probes(n int) {
	if m != nil && m.ProbesSent != nil {
		m.ProbesSent.Add(int64(n))
	}
}

func (m *Metrics) switched(n int) {
	if m != nil && m.Switches != nil {
		m.Switches.Add(int64(n))
	}
}

func (m *Metrics) outage() {
	if m != nil && m.Outages != nil {
		m.Outages.Inc()
	}
}

func (m *Metrics) reaction(sec float64) {
	if m != nil && m.Detection != nil {
		m.Detection.Observe(sec)
	}
}
