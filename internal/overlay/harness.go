package overlay

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// Conditions is the environment an overlay evaluation runs in: a
// forwarding plane (static cache or failing timeline), the network
// model, the overlay node set, and the scored window. The harness runs
// the control loop from Start-WarmupSec so estimates exist when scoring
// begins at Start.
type Conditions struct {
	// Paths supplies default Internet routes. It need not be safe for
	// concurrent use: the harness calls it from a single goroutine.
	Paths PathProvider
	Net   *netsim.Network
	Nodes []topology.HostID
	Start netsim.Time
	End   netsim.Time
}

// VariantStats aggregates one routing variant's ground-truth
// performance over the scored window.
type VariantStats struct {
	// Availability is the fraction of scored (pair, tick) points where
	// the variant had a usable route (a path existed and its loss
	// probability was at most UsableLossMax).
	Availability float64
	// MeanRTTMs averages the expected round-trip time over the points
	// where all variants were simultaneously usable, so the three
	// variants are compared on identical samples.
	MeanRTTMs float64
	// MeanLoss averages the route's round-trip loss probability over
	// all scored points, counting 1 when no route existed.
	MeanLoss float64
}

// Result is the outcome of one overlay evaluation.
type Result struct {
	Pairs       int
	ScoredTicks int

	// Overlay is the online controller; Default always uses the direct
	// Internet path; Optimal picks, per scored tick, the best of direct
	// and every one-hop relay from ground truth (the offline bound).
	Overlay VariantStats
	Default VariantStats
	Optimal VariantStats

	// RelayShare is the fraction of scored (pair, tick) points the
	// overlay routed through a relay.
	RelayShare float64

	// Reactions are the observed failover reaction times in seconds:
	// from the first tick a pair's chosen route was unusable in ground
	// truth to the tick it reached a usable route by switching. Ticks
	// where the network healed under an unchanged route record nothing.
	Reactions []float64

	// OverlayRTTs, DefaultRTTs and OptimalRTTs are the per-point
	// expected RTTs behind MeanRTTMs, for CDFs.
	OverlayRTTs []float64
	DefaultRTTs []float64
	OptimalRTTs []float64

	ProbesSent      int
	Switches        int
	OutagesDetected int
}

// edgeTruth is the ground-truth state of one mesh edge at one tick.
type edgeTruth struct {
	ok       bool // both directions had a route
	rttMs    float64
	loss     float64 // combined both-way loss probability
	fwd, rev netsim.PathState
	fwdHops  int
	revHops  int
}

// routeTruth composes leg truths into a route's ground-truth state.
func routeTruth(t1 edgeTruth, t2 *edgeTruth) (rttMs, loss float64, ok bool) {
	if !t1.ok {
		return 0, 1, false
	}
	rttMs, loss = t1.rttMs, t1.loss
	if t2 != nil {
		if !t2.ok {
			return 0, 1, false
		}
		rttMs += t2.rttMs
		loss = 1 - (1-loss)*(1-t2.loss)
	}
	return rttMs, loss, true
}

// Evaluate replays the overlay controller over the conditions' window
// and scores it against the always-direct default and the offline
// optimum. Two runs with the same Conditions and Config are
// bit-identical at any Concurrency setting.
func Evaluate(ctx context.Context, cond Conditions, cfg Config) (Result, error) {
	return EvaluateWithMetrics(ctx, cond, cfg, nil)
}

// EvaluateWithMetrics is Evaluate with an observability sink attached
// (nil is allowed).
func EvaluateWithMetrics(ctx context.Context, cond Conditions, cfg Config, m *Metrics) (Result, error) {
	if cond.Paths == nil || cond.Net == nil {
		return Result{}, fmt.Errorf("overlay: Conditions need Paths and Net")
	}
	if cond.End <= cond.Start {
		return Result{}, fmt.Errorf("overlay: empty window [%v, %v)", cond.Start, cond.End)
	}
	if ctx == nil {
		//repolint:allow ctxflow -- documented fallback: a nil ctx means never cancelled
		ctx = context.Background()
	}
	ctrl, err := NewController(cond.Nodes, cfg)
	if err != nil {
		return Result{}, err
	}
	ctrl.WithMetrics(m)
	h := &harness{
		ctx:     ctx,
		cond:    cond,
		cfg:     cfg,
		ctrl:    ctrl,
		mesh:    ctrl.mesh,
		workers: autoWorkers(cfg.Concurrency),
		metrics: m,
	}
	return h.run()
}

// harness drives the controller tick by tick against ground truth.
type harness struct {
	ctx     context.Context
	cond    Conditions
	cfg     Config
	ctrl    *Controller
	mesh    *mesh
	workers int
	metrics *Metrics

	// Per-tick edge truth cache: truth[e] is valid for the current tick
	// iff valid[e]; fwdPath/revPath hold the tick's resolved routes.
	truth   []edgeTruth
	valid   []bool
	fwdOK   []bool
	fwdLnk  [][]topology.LinkID
	revLnk  [][]topology.LinkID
	fwdHops []int
	revHops []int

	// Reaction tracking.
	downActive []bool
	downSince  []netsim.Time
	downRoute  []int

	// Scoring accumulators. Index: 0 overlay, 1 default, 2 optimal.
	scoredPairTicks int
	availCount      [3]int
	lossSum         [3]float64
	rttSum          [3]float64
	rttN            int
	relayCount      int
	res             Result
}

// resolveTruth fills the truth cache for every listed edge not yet
// valid this tick: route lookups run sequentially (PathProviders may
// not be concurrency-safe), network evaluation fans out.
func (h *harness) resolveTruth(t netsim.Time, edges []int) error {
	var missing []int
	for _, e := range edges {
		if h.valid[e] {
			continue
		}
		h.valid[e] = true
		missing = append(missing, e)
		ij := h.mesh.pairs[e]
		src, dst := h.cond.Nodes[ij[0]], h.cond.Nodes[ij[1]]
		fp, errF := h.cond.Paths.PathAt(src, dst, t)
		rp, errR := h.cond.Paths.PathAt(dst, src, t)
		if errF != nil || errR != nil {
			h.fwdOK[e] = false
			h.truth[e] = edgeTruth{}
			continue
		}
		h.fwdOK[e] = true
		h.fwdLnk[e], h.revLnk[e] = fp.Links, rp.Links
		h.fwdHops[e], h.revHops[e] = fp.Hops(), rp.Hops()
	}
	return parallelFor(h.ctx, h.workers, len(missing), func(k int) {
		e := missing[k]
		if !h.fwdOK[e] {
			return
		}
		ij := h.mesh.pairs[e]
		src, dst := h.cond.Nodes[ij[0]], h.cond.Nodes[ij[1]]
		fst, errF := h.cond.Net.EvalHostPath(src, dst, h.fwdLnk[e], t)
		rst, errR := h.cond.Net.EvalHostPath(dst, src, h.revLnk[e], t)
		if errF != nil || errR != nil {
			h.truth[e] = edgeTruth{}
			return
		}
		h.truth[e] = edgeTruth{
			ok:      true,
			rttMs:   fst.DelayMs + rst.DelayMs,
			loss:    1 - (1-fst.LossProb)*(1-rst.LossProb),
			fwd:     fst,
			rev:     rst,
			fwdHops: h.fwdHops[e],
			revHops: h.revHops[e],
		}
	})
}

// drawSamples turns the planned probes into samples. Each probe's
// randomness comes from its own generator keyed by (seed, edge,
// sequence number), so the draws are independent of which worker
// executes them.
func (h *harness) drawSamples(plan []int, seqs []uint64, samples []Sample) error {
	return parallelFor(h.ctx, h.workers, len(plan), func(k int) {
		e := plan[k]
		tr := h.truth[e]
		if !tr.ok {
			samples[k] = Sample{Lost: true}
			return
		}
		rng := rand.New(rand.NewSource(int64(mix64(uint64(h.cfg.Seed), uint64(e), seqs[k]))))
		if rng.Float64() < tr.loss {
			samples[k] = Sample{Lost: true}
			return
		}
		rtt := h.cond.Net.SampleDelay(rng, tr.fwd, tr.fwdHops) +
			h.cond.Net.SampleDelay(rng, tr.rev, tr.revHops)
		samples[k] = Sample{RTTMs: rtt}
	})
}

// chosenTruth returns the ground truth of pair p's current route.
func (h *harness) chosenTruth(p int) (rttMs, loss float64, ok bool) {
	e1, e2 := h.mesh.routeEdges(p, h.ctrl.routes[p])
	var t2 *edgeTruth
	if e2 >= 0 {
		t2 = &h.truth[e2]
	}
	return routeTruth(h.truth[e1], t2)
}

// usable applies the availability threshold to a route truth.
func (h *harness) usable(loss float64, ok bool) bool {
	return ok && loss <= h.cfg.UsableLossMax
}

// trackReactions updates the failover clock for every pair at tick t
// (routes are post-decision). Reactions are recorded only when the
// pair recovered by moving to a different route than the one that
// failed; scored is false during warmup, suppressing recording.
func (h *harness) trackReactions(t netsim.Time, scored bool) {
	for p := 0; p < h.mesh.edges(); p++ {
		_, loss, ok := h.chosenTruth(p)
		up := h.usable(loss, ok)
		if !up {
			if !h.downActive[p] {
				h.downActive[p] = true
				h.downSince[p] = t
				h.downRoute[p] = h.ctrl.routes[p]
			}
			continue
		}
		if h.downActive[p] {
			if scored && h.ctrl.routes[p] != h.downRoute[p] {
				sec := float64(t - h.downSince[p])
				h.res.Reactions = append(h.res.Reactions, sec)
				h.metrics.reaction(sec)
			}
			h.downActive[p] = false
		}
	}
}

// scoreTick compares overlay, default and optimal against ground truth
// for every pair; the truth cache already holds every edge.
func (h *harness) scoreTick() {
	type point struct {
		rtt  float64
		loss float64
		ok   bool
	}
	for p := 0; p < h.mesh.edges(); p++ {
		var pts [3]point
		pts[0].rtt, pts[0].loss, pts[0].ok = h.chosenTruth(p)
		pts[1].rtt, pts[1].loss, pts[1].ok = routeTruth(h.truth[p], nil)

		// Offline optimum: cheapest usable route by expected RTT among
		// direct and every one-hop relay.
		best := math.Inf(1)
		var bestLoss float64
		ij := h.mesh.pairs[p]
		if h.usable(pts[1].loss, pts[1].ok) && pts[1].rtt < best {
			best, bestLoss = pts[1].rtt, pts[1].loss
		}
		for r := 0; r < h.mesh.n; r++ {
			if r == ij[0] || r == ij[1] {
				continue
			}
			rtt, loss, ok := routeTruth(h.truth[h.mesh.edge(ij[0], r)], &h.truth[h.mesh.edge(r, ij[1])])
			if h.usable(loss, ok) && rtt < best {
				best, bestLoss = rtt, loss
			}
		}
		if !math.IsInf(best, 1) {
			pts[2] = point{rtt: best, loss: bestLoss, ok: true}
		} else {
			pts[2] = point{loss: 1}
		}

		h.scoredPairTicks++
		if h.ctrl.routes[p] != Direct {
			h.relayCount++
		}
		joint := true
		for v := 0; v < 3; v++ {
			u := h.usable(pts[v].loss, pts[v].ok)
			if u {
				h.availCount[v]++
			} else {
				joint = false
			}
			if pts[v].ok {
				h.lossSum[v] += pts[v].loss
			} else {
				h.lossSum[v] += 1
			}
		}
		if joint {
			h.rttN++
			h.rttSum[0] += pts[0].rtt
			h.rttSum[1] += pts[1].rtt
			h.rttSum[2] += pts[2].rtt
			h.res.OverlayRTTs = append(h.res.OverlayRTTs, pts[0].rtt)
			h.res.DefaultRTTs = append(h.res.DefaultRTTs, pts[1].rtt)
			h.res.OptimalRTTs = append(h.res.OptimalRTTs, pts[2].rtt)
		}
	}
}

// run executes the control loop and assembles the result.
func (h *harness) run() (Result, error) {
	M := h.mesh.edges()
	h.truth = make([]edgeTruth, M)
	h.valid = make([]bool, M)
	h.fwdOK = make([]bool, M)
	h.fwdLnk = make([][]topology.LinkID, M)
	h.revLnk = make([][]topology.LinkID, M)
	h.fwdHops = make([]int, M)
	h.revHops = make([]int, M)
	h.downActive = make([]bool, M)
	h.downSince = make([]netsim.Time, M)
	h.downRoute = make([]int, M)
	h.res.Pairs = M

	allEdges := make([]int, M)
	for e := range allEdges {
		allEdges[e] = e
	}
	routeEdgesNeeded := func() []int {
		var need []int
		for p := 0; p < M; p++ {
			e1, e2 := h.mesh.routeEdges(p, h.ctrl.routes[p])
			need = append(need, e1)
			if e2 >= 0 {
				need = append(need, e2)
			}
		}
		return need
	}

	start0 := h.cond.Start - netsim.Time(h.cfg.WarmupSec)
	warmupTicks := int(h.cfg.WarmupSec/h.cfg.TickSec + 0.5)
	scoreEvery := int(h.cfg.ScoreIntervalSec/h.cfg.TickSec + 0.5)
	if scoreEvery < 1 {
		scoreEvery = 1
	}
	seqs := make([]uint64, 0, M)
	samples := make([]Sample, 0, M)

	for k := 0; ; k++ {
		t := start0 + netsim.Time(float64(k)*h.cfg.TickSec)
		if t >= h.cond.End {
			break
		}
		if err := h.ctx.Err(); err != nil {
			return Result{}, err
		}
		for e := range h.valid {
			h.valid[e] = false
		}

		// Measure: plan, execute and ingest this tick's probes.
		plan := h.ctrl.PlanProbes()
		seqs = seqs[:0]
		for _, e := range plan {
			seqs = append(seqs, h.ctrl.ProbeSeq(e))
		}
		if err := h.resolveTruth(t, plan); err != nil {
			return Result{}, err
		}
		samples = samples[:len(plan)]
		if err := h.drawSamples(plan, seqs, samples); err != nil {
			return Result{}, err
		}
		h.ctrl.Ingest(t, plan, samples)

		// Decide: re-evaluate every pair's route.
		if _, err := h.ctrl.Decide(h.ctx, t); err != nil {
			return Result{}, err
		}

		// Score: evaluate the post-decision routes against ground truth.
		scored := k >= warmupTicks
		scoring := scored && (k-warmupTicks)%scoreEvery == 0
		if scoring {
			if err := h.resolveTruth(t, allEdges); err != nil {
				return Result{}, err
			}
		} else if err := h.resolveTruth(t, routeEdgesNeeded()); err != nil {
			return Result{}, err
		}
		h.trackReactions(t, scored)
		if scoring {
			h.scoreTick()
			h.res.ScoredTicks++
		}
	}

	if h.scoredPairTicks > 0 {
		n := float64(h.scoredPairTicks)
		h.res.Overlay.Availability = float64(h.availCount[0]) / n
		h.res.Default.Availability = float64(h.availCount[1]) / n
		h.res.Optimal.Availability = float64(h.availCount[2]) / n
		h.res.Overlay.MeanLoss = h.lossSum[0] / n
		h.res.Default.MeanLoss = h.lossSum[1] / n
		h.res.Optimal.MeanLoss = h.lossSum[2] / n
		h.res.RelayShare = float64(h.relayCount) / n
	}
	if h.rttN > 0 {
		h.res.Overlay.MeanRTTMs = h.rttSum[0] / float64(h.rttN)
		h.res.Default.MeanRTTMs = h.rttSum[1] / float64(h.rttN)
		h.res.Optimal.MeanRTTMs = h.rttSum[2] / float64(h.rttN)
	}
	h.res.ProbesSent = h.ctrl.ProbesSent()
	h.res.Switches = h.ctrl.Switches()
	h.res.OutagesDetected = h.ctrl.OutagesDetected()
	return h.res, nil
}
