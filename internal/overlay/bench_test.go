package overlay

import (
	"context"
	"testing"
)

func BenchmarkEvaluate(b *testing.B) {
	cond, _ := testConditions(b, 6)
	cond.End = cond.Start + 1800
	cfg := testEvalConfig()
	cfg.WarmupSec = 300
	cfg.Concurrency = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(context.Background(), cond, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
