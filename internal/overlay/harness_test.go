package overlay

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/obs"
	"pathsel/internal/topology"
)

// testWorld builds a small static world: topology, converged forwarding
// plane behind a cache, and the network model.
func testWorld(t testing.TB) (*topology.Topology, *forward.Cache, *netsim.Network) {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Era1999)
	cfg.NumTier1 = 4
	cfg.NumTransit = 8
	cfg.NumStub = 30
	cfg.NumHosts = 8
	top, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	return top, forward.NewCache(forward.New(top, g, table)), netsim.New(top, netsim.ConfigFor(topology.Era1999))
}

func testConditions(t testing.TB, nodes int) (Conditions, *forward.Cache) {
	t.Helper()
	top, cache, net := testWorld(t)
	if len(top.Hosts) < nodes {
		t.Fatalf("topology has %d hosts, need %d", len(top.Hosts), nodes)
	}
	ids := make([]topology.HostID, nodes)
	for i := range ids {
		ids[i] = top.Hosts[i].ID
	}
	start := netsim.Time(2 * 86400) // Wednesday midnight
	return Conditions{
		Paths: cache,
		Net:   net,
		Nodes: ids,
		Start: start,
		End:   start + 3600,
	}, cache
}

func testEvalConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupSec = 600
	cfg.ProbesPerSec = 1
	cfg.Concurrency = 1
	return cfg
}

func TestEvaluateValidatesInputs(t *testing.T) {
	cond, _ := testConditions(t, 4)
	ctx := context.Background()
	if _, err := Evaluate(ctx, Conditions{}, testEvalConfig()); err == nil {
		t.Error("expected error for empty conditions")
	}
	bad := cond
	bad.End = bad.Start
	if _, err := Evaluate(ctx, bad, testEvalConfig()); err == nil {
		t.Error("expected error for empty window")
	}
	badCfg := testEvalConfig()
	badCfg.ProbesPerSec = 0
	if _, err := Evaluate(ctx, cond, badCfg); err == nil {
		t.Error("expected config validation error")
	}
	few := cond
	few.Nodes = few.Nodes[:2]
	if _, err := Evaluate(ctx, few, testEvalConfig()); err == nil {
		t.Error("expected error for a 2-node overlay")
	}
}

func TestEvaluateCancellation(t *testing.T) {
	cond, _ := testConditions(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, cond, testEvalConfig()); err == nil {
		t.Fatal("expected a cancellation error")
	}
}

// TestEvaluateDeterministicAcrossConcurrency is the package's
// determinism regression: a parallel run must be bit-identical to the
// sequential run at the same seed. Under -race it doubles as the proof
// that concurrent probe evaluation and switching decisions are
// data-race-free.
func TestEvaluateDeterministicAcrossConcurrency(t *testing.T) {
	cond, _ := testConditions(t, 6)
	var results []Result
	for _, conc := range []int{1, 4, 0} {
		cfg := testEvalConfig()
		cfg.Concurrency = conc
		res, err := Evaluate(context.Background(), cond, cfg)
		if err != nil {
			t.Fatalf("Concurrency=%d: %v", conc, err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("run %d differs from the sequential run:\nseq: %+v\npar: %+v", i, results[0], results[i])
		}
	}
	if results[0].ProbesSent == 0 || results[0].ScoredTicks == 0 {
		t.Fatalf("degenerate evaluation: %+v", results[0])
	}
}

func TestEvaluateOptimalBounds(t *testing.T) {
	cond, _ := testConditions(t, 6)
	res, err := Evaluate(context.Background(), cond, testEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.rttPoints() == 0 {
		t.Fatal("no jointly-usable points scored")
	}
	// The offline optimum picks per tick among direct and every relay,
	// so it bounds both other variants pointwise.
	if res.Optimal.MeanRTTMs > res.Overlay.MeanRTTMs+1e-9 {
		t.Errorf("optimal RTT %.3f above overlay %.3f", res.Optimal.MeanRTTMs, res.Overlay.MeanRTTMs)
	}
	if res.Optimal.MeanRTTMs > res.Default.MeanRTTMs+1e-9 {
		t.Errorf("optimal RTT %.3f above default %.3f", res.Optimal.MeanRTTMs, res.Default.MeanRTTMs)
	}
	if res.Optimal.Availability+1e-9 < res.Overlay.Availability ||
		res.Optimal.Availability+1e-9 < res.Default.Availability {
		t.Errorf("optimal availability %.4f below a bounded variant (overlay %.4f, default %.4f)",
			res.Optimal.Availability, res.Overlay.Availability, res.Default.Availability)
	}
	for i, rtt := range res.OptimalRTTs {
		if rtt > res.OverlayRTTs[i]+1e-9 || rtt > res.DefaultRTTs[i]+1e-9 {
			t.Fatalf("point %d: optimal %.3f above overlay %.3f or default %.3f",
				i, rtt, res.OverlayRTTs[i], res.DefaultRTTs[i])
		}
	}
}

// rttPoints returns how many jointly-usable points back the RTT means.
func (r Result) rttPoints() int { return len(r.OverlayRTTs) }

// outageProvider wraps a PathProvider, failing one pair (both
// directions) during a window — a deterministic injected outage.
type outageProvider struct {
	inner    PathProvider
	a, b     topology.HostID
	from, to netsim.Time
}

func (o *outageProvider) PathAt(src, dst topology.HostID, at netsim.Time) (forward.Path, error) {
	hit := (src == o.a && dst == o.b) || (src == o.b && dst == o.a)
	if hit && at >= o.from && at < o.to {
		return forward.Path{}, fmt.Errorf("injected outage %d<->%d", o.a, o.b)
	}
	return o.inner.PathAt(src, dst, at)
}

func TestEvaluateFailoverOnInjectedOutage(t *testing.T) {
	cond, cache := testConditions(t, 6)
	cond.Paths = &outageProvider{
		inner: cache,
		a:     cond.Nodes[0],
		b:     cond.Nodes[1],
		from:  cond.Start + 600,
		to:    cond.Start + 1800,
	}
	cfg := testEvalConfig()
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	res, err := EvaluateWithMetrics(context.Background(), cond, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutagesDetected == 0 {
		t.Fatal("injected outage never detected")
	}
	if res.Switches == 0 {
		t.Fatal("no route switches despite a 20-minute outage")
	}
	if len(res.Reactions) == 0 {
		t.Fatal("no failover reactions recorded")
	}
	for _, sec := range res.Reactions {
		if sec <= 0 || sec > 1200 {
			t.Fatalf("implausible reaction time %.1f s", sec)
		}
	}
	// The overlay must ride out part of the outage that the default
	// path cannot: strictly better availability.
	if res.Overlay.Availability <= res.Default.Availability {
		t.Errorf("overlay availability %.4f not above default %.4f under an injected outage",
			res.Overlay.Availability, res.Default.Availability)
	}
	if got := m.ProbesSent.Value(); got != int64(res.ProbesSent) {
		t.Errorf("metrics probes %d != result %d", got, res.ProbesSent)
	}
	if got := m.Switches.Value(); got != int64(res.Switches) {
		t.Errorf("metrics switches %d != result %d", got, res.Switches)
	}
	if got := m.Detection.Count(); got != int64(len(res.Reactions)) {
		t.Errorf("metrics reactions %d != result %d", got, len(res.Reactions))
	}
}
