package overlay

import (
	"context"
	"testing"

	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// testNodes returns n distinct host IDs; the controller never
// dereferences them, so synthetic IDs suffice for control-plane tests.
func testNodes(n int) []topology.HostID {
	ids := make([]topology.HostID, n)
	for i := range ids {
		ids[i] = topology.HostID(i + 1)
	}
	return ids
}

func testController(t *testing.T, n int, mutate func(*Config)) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Concurrency = 1
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewController(testNodes(n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSchedulerBudgetAndCoverage(t *testing.T) {
	// 0.3 probes/s at 10 s ticks = 3 probes per tick over 10 edges:
	// round-robin must cover the whole mesh in 4 ticks and respect the
	// budget exactly.
	c := testController(t, 5, func(cfg *Config) {
		cfg.ProbesPerSec = 0.3
	})
	seen := map[int]int{}
	total := 0
	for tick := 0; tick < 4; tick++ {
		plan := c.PlanProbes()
		if len(plan) > 3 {
			t.Fatalf("tick %d: %d probes exceed the budget of 3", tick, len(plan))
		}
		total += len(plan)
		for _, e := range plan {
			seen[e]++
		}
	}
	if total != 12 {
		t.Fatalf("4 ticks issued %d probes, want 12", total)
	}
	if len(seen) != 10 {
		t.Fatalf("round-robin covered %d of 10 edges in 4 ticks", len(seen))
	}
	if c.ProbesSent() != total {
		t.Fatalf("ProbesSent = %d, want %d", c.ProbesSent(), total)
	}
}

func TestSchedulerFractionalBudgetCarries(t *testing.T) {
	// 0.05 probes/s at 10 s ticks = one probe every other tick.
	c := testController(t, 5, func(cfg *Config) {
		cfg.ProbesPerSec = 0.05
	})
	counts := make([]int, 6)
	for tick := range counts {
		counts[tick] = len(c.PlanProbes())
	}
	want := []int{0, 1, 0, 1, 0, 1}
	for tick, n := range counts {
		if n != want[tick] {
			t.Fatalf("tick %d issued %d probes, want %d (got %v)", tick, n, want[tick], counts)
		}
	}
}

func TestProbeSeqAdvancesPerEdge(t *testing.T) {
	c := testController(t, 3, nil)
	if c.ProbeSeq(0) != 0 || c.ProbeSeq(0) != 1 || c.ProbeSeq(1) != 0 {
		t.Fatal("per-edge probe sequences must advance independently")
	}
}

// warm feeds one good sample to every mesh edge at time at, with the
// given per-edge RTTs.
func warm(c *Controller, at netsim.Time, rtts map[int]float64) {
	plan := make([]int, c.mesh.edges())
	samples := make([]Sample, c.mesh.edges())
	for e := range plan {
		plan[e] = e
		samples[e] = Sample{RTTMs: rtts[e]}
	}
	c.Ingest(at, plan, samples)
}

func TestDecideSwitchesToFasterRelay(t *testing.T) {
	c := testController(t, 3, nil)
	m := c.mesh
	p := m.edge(0, 1)
	// Direct 0-1 is slow; the relay via node 2 sums to 20 ms.
	warm(c, 0, map[int]float64{p: 80, m.edge(0, 2): 10, m.edge(2, 1): 10})
	ctx := context.Background()
	switched, err := c.Decide(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if switched == 0 || c.Route(p) != 2 {
		t.Fatalf("pair %d routed via %d (switched=%d), want relay 2", p, c.Route(p), switched)
	}
	if c.Switches() != switched {
		t.Fatalf("Switches() = %d, want %d", c.Switches(), switched)
	}
}

func TestDecideHysteresisHoldsNearTies(t *testing.T) {
	c := testController(t, 3, func(cfg *Config) {
		cfg.HysteresisFrac = 0.10
		cfg.HysteresisAbsMs = 2
	})
	m := c.mesh
	p := m.edge(0, 1)
	// Relay saves 4 ms on a 50 ms incumbent: under the 10% margin.
	warm(c, 0, map[int]float64{p: 50, m.edge(0, 2): 23, m.edge(2, 1): 23})
	if _, err := c.Decide(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if c.Route(p) != Direct {
		t.Fatalf("pair switched on a within-hysteresis margin (route %d)", c.Route(p))
	}
}

func TestOutageForcesFailoverAndBurst(t *testing.T) {
	c := testController(t, 3, func(cfg *Config) {
		cfg.OutageLosses = 2
		cfg.ProbesPerSec = 0.001 // background budget effectively zero
	})
	m := c.mesh
	p := m.edge(0, 1)
	warm(c, 0, map[int]float64{p: 20, m.edge(0, 2): 30, m.edge(2, 1): 30})
	if _, err := c.Decide(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if c.Route(p) != Direct {
		t.Fatalf("setup: expected direct route, got %d", c.Route(p))
	}

	// Two consecutive losses on the direct edge declare it down.
	c.Ingest(10, []int{p}, []Sample{{Lost: true}})
	c.Ingest(20, []int{p}, []Sample{{Lost: true}})
	if c.OutagesDetected() != 1 {
		t.Fatalf("OutagesDetected = %d, want 1", c.OutagesDetected())
	}
	// The burst reprobe plan covers the affected pair's candidate edges
	// despite the negligible background budget.
	plan := c.PlanProbes()
	want := map[int]bool{p: true, m.edge(0, 2): true, m.edge(2, 1): true}
	got := map[int]bool{}
	for _, e := range plan {
		got[e] = true
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("burst plan %v missing edge %d", plan, e)
		}
	}
	// The failover decision bypasses hysteresis: the relay wins even
	// though it is slower than the dead edge's last estimate.
	if _, err := c.Decide(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if c.Route(p) != 2 {
		t.Fatalf("after outage pair routed via %d, want relay 2", c.Route(p))
	}
}

func TestDecideHoldsWhenNothingEligible(t *testing.T) {
	c := testController(t, 3, nil)
	// No estimates at all: every route scores +Inf, so routes hold.
	if _, err := c.Decide(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.Pairs(); p++ {
		if c.Route(p) != Direct {
			t.Fatalf("pair %d moved with no data", p)
		}
	}
}

func TestMaxCandidatesRestrictsRelays(t *testing.T) {
	c := testController(t, 5, func(cfg *Config) {
		cfg.MaxCandidates = 1
	})
	m := c.mesh
	p := m.edge(0, 1)
	rtts := map[int]float64{p: 100}
	// Relay 3 is best, relay 2 second, relay 4 worst.
	rtts[m.edge(0, 3)], rtts[m.edge(3, 1)] = 5, 5
	rtts[m.edge(0, 2)], rtts[m.edge(2, 1)] = 20, 20
	rtts[m.edge(0, 4)], rtts[m.edge(4, 1)] = 40, 40
	warm(c, 0, rtts)
	cands := c.candidateRelays(p, 0)
	if len(cands) != 1 || cands[0] != 3 {
		t.Fatalf("candidateRelays = %v, want [3]", cands)
	}
}
