package overlay

import "fmt"

// mesh indexes the unordered node pairs of the overlay. Pair p = {i, j}
// (i < j) is both a routable connection and a probe target ("edge"); a
// relay route for p uses the edges {i, r} and {r, j}. One flat index
// space serves the estimator, the scheduler and the router.
type mesh struct {
	n     int
	pairs [][2]int // pair index -> (i, j), i < j
	index [][]int  // node i, node j -> pair index (symmetric)
}

// newMesh builds the pair index over n nodes.
func newMesh(n int) (*mesh, error) {
	if n < 3 {
		return nil, fmt.Errorf("overlay: need at least 3 nodes for one-hop relays, got %d", n)
	}
	m := &mesh{n: n, index: make([][]int, n)}
	for i := range m.index {
		m.index[i] = make([]int, n)
		for j := range m.index[i] {
			m.index[i][j] = -1
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.index[i][j] = len(m.pairs)
			m.index[j][i] = len(m.pairs)
			m.pairs = append(m.pairs, [2]int{i, j})
		}
	}
	return m, nil
}

// edges returns the number of mesh edges (= pairs).
func (m *mesh) edges() int { return len(m.pairs) }

// edge returns the pair index of {a, b}.
func (m *mesh) edge(a, b int) int { return m.index[a][b] }

// routeEdges returns the mesh edges route uses for pair p: the pair
// itself when direct, or the two relay legs. The second return is -1
// for direct routes.
func (m *mesh) routeEdges(p, route int) (int, int) {
	if route == Direct {
		return p, -1
	}
	ij := m.pairs[p]
	return m.edge(ij[0], route), m.edge(route, ij[1])
}
