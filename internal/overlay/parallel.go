package overlay

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) across at most workers
// goroutines (one or fewer workers runs inline). Indices are handed out
// dynamically; callers get determinism by writing only to slot i of
// pre-sized slices and reducing in index order afterwards — the same
// contract as core's engine. Cancelling ctx stops handing out new
// indices; in-flight items finish first.
func parallelFor(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// autoWorkers resolves the Concurrency knob: 0 means one worker per
// available CPU, anything positive is taken literally.
func autoWorkers(concurrency int) int {
	if concurrency > 0 {
		return concurrency
	}
	return runtime.GOMAXPROCS(0)
}
