package overlay

import (
	"math"

	"pathsel/internal/netsim"
)

// Sample is one probe outcome over a mesh edge.
type Sample struct {
	// Lost marks a probe that got no reply (loss on either direction,
	// or no route at all).
	Lost bool
	// RTTMs is the measured round-trip time of a successful probe.
	RTTMs float64
}

// edgeEstimate is the estimator's state for one mesh edge.
type edgeEstimate struct {
	probed    bool
	rttMs     float64 // EWMA round-trip time
	loss      float64 // EWMA loss probability
	lastProbe netsim.Time
	consLost  int
	down      bool
}

// estimator maintains staleness-aware EWMA RTT and loss per mesh edge.
// It is written only by Controller.Ingest (sequentially) and read by
// the switching policy; the harness guarantees the phases never
// overlap, so no locking is needed and results stay deterministic.
type estimator struct {
	cfg   Config
	edges []edgeEstimate
}

func newEstimator(cfg Config, n int) *estimator {
	return &estimator{cfg: cfg, edges: make([]edgeEstimate, n)}
}

// update folds one probe sample into the edge's estimate and reports
// whether the edge transitioned to down with this sample.
func (e *estimator) update(edge int, at netsim.Time, s Sample) (wentDown bool) {
	st := &e.edges[edge]
	a := e.cfg.EWMAAlpha
	st.lastProbe = at
	if s.Lost {
		st.consLost++
		if st.probed {
			st.loss = a*1 + (1-a)*st.loss
		} else {
			st.loss = 1
		}
		if !st.down && st.consLost >= e.cfg.OutageLosses {
			st.down = true
			return true
		}
		return false
	}
	if st.probed {
		st.rttMs = a*s.RTTMs + (1-a)*st.rttMs
		st.loss = (1 - a) * st.loss
	} else {
		st.rttMs = s.RTTMs
		st.loss = 0
		st.probed = true
	}
	st.consLost = 0
	st.down = false
	return false
}

// score returns the policy score of an edge at time now, in
// milliseconds: EWMA RTT plus the loss penalty plus a staleness
// penalty that grows linearly once the estimate outlives
// StaleAfterSec. Unprobed edges score +Inf (ineligible).
func (e *estimator) score(edge int, now netsim.Time) float64 {
	st := &e.edges[edge]
	if !st.probed {
		return math.Inf(1)
	}
	s := st.rttMs + e.cfg.LossPenaltyMs*st.loss
	if age := float64(now - st.lastProbe); age > e.cfg.StaleAfterSec {
		s += e.cfg.StalePenaltyMs * (age - e.cfg.StaleAfterSec) / e.cfg.StaleAfterSec
	}
	return s
}

// isDown reports whether the edge is currently declared down.
func (e *estimator) isDown(edge int) bool { return e.edges[edge].down }
