package overlay

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"probes":     func(c *Config) { c.ProbesPerSec = 0 },
		"tick":       func(c *Config) { c.TickSec = -1 },
		"alpha-zero": func(c *Config) { c.EWMAAlpha = 0 },
		"alpha-big":  func(c *Config) { c.EWMAAlpha = 1.5 },
		"stale":      func(c *Config) { c.StaleAfterSec = 0 },
		"hyst-frac":  func(c *Config) { c.HysteresisFrac = 1 },
		"hyst-abs":   func(c *Config) { c.HysteresisAbsMs = -1 },
		"penalty":    func(c *Config) { c.LossPenaltyMs = -1 },
		"outage":     func(c *Config) { c.OutageLosses = 0 },
		"cands":      func(c *Config) { c.MaxCandidates = -1 },
		"warmup":     func(c *Config) { c.WarmupSec = -1 },
		"score-int":  func(c *Config) { c.ScoreIntervalSec = 1 },
		"loss-max":   func(c *Config) { c.UsableLossMax = 0 },
		"conc":       func(c *Config) { c.Concurrency = -1 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestMeshIndexing(t *testing.T) {
	m, err := newMesh(5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.edges(), 10; got != want {
		t.Fatalf("edges() = %d, want %d", got, want)
	}
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			e := m.edge(i, j)
			if e != m.edge(j, i) {
				t.Fatalf("edge(%d,%d) != edge(%d,%d)", i, j, j, i)
			}
			seen[e] = true
			ij := m.pairs[e]
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			if ij != [2]int{lo, hi} {
				t.Fatalf("pairs[%d] = %v, want {%d,%d}", e, ij, lo, hi)
			}
		}
	}
	if len(seen) != 10 {
		t.Fatalf("saw %d distinct edges, want 10", len(seen))
	}

	// Direct route uses the pair edge itself; a relay uses the two legs.
	p := m.edge(0, 3)
	if e1, e2 := m.routeEdges(p, Direct); e1 != p || e2 != -1 {
		t.Fatalf("direct routeEdges = (%d,%d)", e1, e2)
	}
	if e1, e2 := m.routeEdges(p, 4); e1 != m.edge(0, 4) || e2 != m.edge(4, 3) {
		t.Fatalf("relay routeEdges = (%d,%d)", e1, e2)
	}

	if _, err := newMesh(2); err == nil {
		t.Fatal("expected error for a 2-node mesh")
	}
}

func TestEstimatorEWMAAndOutage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EWMAAlpha = 0.5
	cfg.OutageLosses = 2
	e := newEstimator(cfg, 1)

	// First sample seeds the estimate outright.
	e.update(0, 100, Sample{RTTMs: 40})
	if got := e.edges[0].rttMs; got != 40 {
		t.Fatalf("seed RTT = %f", got)
	}
	e.update(0, 110, Sample{RTTMs: 80})
	if got := e.edges[0].rttMs; math.Abs(got-60) > 1e-9 {
		t.Fatalf("EWMA RTT = %f, want 60", got)
	}

	// One loss raises the loss estimate but does not declare down.
	if e.update(0, 120, Sample{Lost: true}) {
		t.Fatal("down after one loss")
	}
	if e.isDown(0) {
		t.Fatal("isDown after one loss")
	}
	// The second consecutive loss crosses the threshold, exactly once.
	if !e.update(0, 130, Sample{Lost: true}) {
		t.Fatal("no down transition after two losses")
	}
	if !e.isDown(0) {
		t.Fatal("not down after two losses")
	}
	if e.update(0, 140, Sample{Lost: true}) {
		t.Fatal("down transition reported twice")
	}
	// A success clears the outage.
	e.update(0, 150, Sample{RTTMs: 50})
	if e.isDown(0) {
		t.Fatal("still down after a successful probe")
	}
}

func TestEstimatorScoreStaleness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaleAfterSec = 100
	cfg.StalePenaltyMs = 10
	cfg.LossPenaltyMs = 0
	e := newEstimator(cfg, 2)

	if !math.IsInf(e.score(0, 0), 1) {
		t.Fatal("unprobed edge must score +Inf")
	}
	e.update(0, 1000, Sample{RTTMs: 30})
	if got := e.score(0, 1050); got != 30 {
		t.Fatalf("fresh score = %f, want 30", got)
	}
	// 200s past staleness = 2 StaleAfterSec units of excess age.
	if got := e.score(0, 1300); math.Abs(got-50) > 1e-9 {
		t.Fatalf("stale score = %f, want 50", got)
	}
}

func TestMix64Spreads(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			for c := uint64(0); c < 8; c++ {
				seen[mix64(a, b, c)] = true
			}
		}
	}
	if len(seen) != 8*8*8 {
		t.Fatalf("mix64 collisions: %d distinct of %d", len(seen), 8*8*8)
	}
}
