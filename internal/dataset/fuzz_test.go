package dataset

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"pathsel/internal/topology"
)

// FuzzLoad ensures the dataset loader never panics on malformed input:
// it must either decode successfully or return an error.
func FuzzLoad(f *testing.F) {
	// Seed with a valid file, a truncation of it, and garbage.
	d := New("seed", []topology.HostID{0, 1})
	d.RecordEcho(PairKey{Src: 0, Dst: 1}, 1, []float64{10}, []bool{false}, []topology.ASN{1, 2}, 1)
	dir := f.TempDir()
	valid := filepath.Join(dir, "valid.gob.gz")
	if err := d.Save(valid); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte("not gzip at all"))
	var empty bytes.Buffer
	zw := gzip.NewWriter(&empty)
	zw.Close()
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.gob.gz")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ds, err := Load(p)
		if err == nil && ds == nil {
			t.Fatal("nil dataset without error")
		}
	})
}
