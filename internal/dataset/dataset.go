// Package dataset stores measurement campaigns in the form the paper's
// analysis consumes: per ordered host pair, timestamped round-trip
// samples, loss observations, TCP transfer measurements, and the forward
// AS path; plus the episode structure of simultaneous (UW4-A-style)
// campaigns. It provides the aggregations (long-term mean summaries,
// time-of-day bucketed summaries, propagation-delay estimates) and the
// filtering rules (minimum sample counts, ICMP rate-limiter handling,
// the D2 first-sample heuristic) described in Section 4.
package dataset

import (
	"fmt"
	"sort"
	"sync"

	"pathsel/internal/netsim"
	"pathsel/internal/stats"
	"pathsel/internal/topology"
)

// MinMeasurementsPerPath is the paper's cutoff: "we removed paths for
// which there were fewer than 30 measurements so as to increase our
// confidence in the results".
const MinMeasurementsPerPath = 30

// PairKey identifies an ordered host pair (a directed path).
type PairKey struct {
	Src, Dst topology.HostID
}

// String implements fmt.Stringer.
func (k PairKey) String() string { return fmt.Sprintf("%d->%d", k.Src, k.Dst) }

// Reverse returns the key of the opposite direction.
func (k PairKey) Reverse() PairKey { return PairKey{Src: k.Dst, Dst: k.Src} }

// RTTSample is one successful echo round trip.
type RTTSample struct {
	At    netsim.Time
	RTTMs float64
}

// LossSample is one echo attempt outcome.
type LossSample struct {
	At   netsim.Time
	Lost bool
}

// TransferSample is one npd-style TCP transfer measurement.
type TransferSample struct {
	At        netsim.Time
	MeanRTTMs float64
	LossRate  float64
	Packets   int
}

// PathData accumulates every measurement of one directed path.
type PathData struct {
	Key PairKey
	// Measurements counts probe invocations that produced data.
	Measurements int
	RTT          []RTTSample
	Loss         []LossSample
	Transfers    []TransferSample
	// ASPath is the forward AS-level path from the first successful
	// traceroute (the paper finds paths are dominated by one route).
	ASPath []topology.ASN
}

// Episode is one all-pairs simultaneous measurement round (UW4-A).
type Episode struct {
	At netsim.Time
	// RTTMs maps each pair measured in this episode to the mean of its
	// successful samples; pairs whose samples were all lost are absent.
	RTTMs map[PairKey]float64
}

// Dataset is a complete measurement campaign.
type Dataset struct {
	Name string
	// Hosts are the measurement endpoints, ascending by ID.
	Hosts []topology.HostID
	// Paths holds per-pair data.
	Paths map[PairKey]*PathData
	// Episodes is non-empty only for simultaneous campaigns.
	Episodes []*Episode

	// pairKeysMu guards pairKeys, the memoized sorted key slice served
	// by PairKeys. The analysis engine calls PairKeys once per graph
	// build and once per alternate sweep — and the greedy host-removal
	// experiment runs thousands of sweeps — so re-sorting on every call
	// dominates; the cache is invalidated whenever the pair set changes.
	// (Both fields are unexported, so gob encoding ignores them.)
	pairKeysMu sync.Mutex
	pairKeys   []PairKey

	// rev counts mutations made through Dataset methods, letting
	// derived caches (the analysis engine's per-metric graphs) detect
	// staleness cheaply. Direct writes to Paths bypass it, so consumers
	// should compare len(Paths) as well — see Revision.
	rev int64
}

// Revision identifies the dataset's mutation state: it changes whenever
// a Dataset method records or removes data. Callers caching derived
// state should key it on (Revision, len(Paths)) — the second component
// catches code that inserts into Paths directly.
func (d *Dataset) Revision() int64 { return d.rev }

// New creates an empty dataset over a host set.
func New(name string, hosts []topology.HostID) *Dataset {
	hs := make([]topology.HostID, len(hosts))
	copy(hs, hosts)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return &Dataset{Name: name, Hosts: hs, Paths: map[PairKey]*PathData{}}
}

// path returns (creating if needed) the data for a pair.
func (d *Dataset) path(k PairKey) *PathData {
	p, ok := d.Paths[k]
	if !ok {
		p = &PathData{Key: k}
		d.Paths[k] = p
		d.invalidatePairKeys()
	}
	return p
}

// invalidatePairKeys drops the memoized PairKeys slice after a mutation
// of the pair set.
func (d *Dataset) invalidatePairKeys() {
	d.pairKeysMu.Lock()
	d.pairKeys = nil
	d.pairKeysMu.Unlock()
}

// RecordEcho records the outcome of one probe invocation: the echo
// samples (RTT or loss each) and the revealed AS path. keepSamples
// limits how many of the samples are recorded as loss observations
// (the D2 heuristic records only the first); pass len(samples) or more
// to keep all. Returns false if the invocation carried no data.
func (d *Dataset) RecordEcho(k PairKey, at netsim.Time, rtts []float64, lost []bool, asPath []topology.ASN, keepSamples int) bool {
	if len(lost) == 0 {
		return false
	}
	d.rev++
	p := d.path(k)
	p.Measurements++
	if keepSamples > len(lost) {
		keepSamples = len(lost)
	}
	for i := 0; i < len(lost); i++ {
		if !lost[i] {
			p.RTT = append(p.RTT, RTTSample{At: at, RTTMs: rtts[i]})
		}
		if i < keepSamples {
			p.Loss = append(p.Loss, LossSample{At: at, Lost: lost[i]})
		}
	}
	if p.ASPath == nil && len(asPath) > 0 {
		p.ASPath = append([]topology.ASN(nil), asPath...)
	}
	return true
}

// RecordTransfer records one TCP transfer measurement.
func (d *Dataset) RecordTransfer(k PairKey, s TransferSample) {
	d.rev++
	p := d.path(k)
	p.Measurements++
	p.Transfers = append(p.Transfers, s)
}

// AddEpisode appends a simultaneous measurement round.
func (d *Dataset) AddEpisode(e *Episode) { d.rev++; d.Episodes = append(d.Episodes, e) }

// RemoveSparsePaths drops paths with fewer than min measurements,
// returning how many were dropped.
func (d *Dataset) RemoveSparsePaths(min int) int {
	dropped := 0
	for k, p := range d.Paths {
		if p.Measurements < min {
			delete(d.Paths, k)
			dropped++
		}
	}
	if dropped > 0 {
		d.rev++
		d.invalidatePairKeys()
	}
	return dropped
}

// RemoveHosts drops the given hosts and every path touching them (the
// UW3/UW4 treatment of ICMP rate limiters).
func (d *Dataset) RemoveHosts(hosts map[topology.HostID]bool) {
	var keep []topology.HostID
	for _, h := range d.Hosts {
		if !hosts[h] {
			keep = append(keep, h)
		}
	}
	d.Hosts = keep
	for k := range d.Paths {
		if hosts[k.Src] || hosts[k.Dst] {
			delete(d.Paths, k)
		}
	}
	for _, e := range d.Episodes {
		for k := range e.RTTMs {
			if hosts[k.Src] || hosts[k.Dst] {
				delete(e.RTTMs, k)
			}
		}
	}
	d.rev++
	d.invalidatePairKeys()
}

// MeanRTT returns the long-term mean round-trip summary for a path, or
// ok=false if the path has no successful samples.
func (d *Dataset) MeanRTT(k PairKey) (stats.Summary, bool) {
	p := d.Paths[k]
	if p == nil || len(p.RTT) == 0 {
		return stats.Summary{}, false
	}
	var a stats.Accum
	for _, s := range p.RTT {
		a.Add(s.RTTMs)
	}
	return a.Summary(), true
}

// LossRate returns the loss-rate summary for a path: each echo attempt
// is a Bernoulli observation, so the mean is the loss rate and the
// binary-sample variance drives the (wide) confidence intervals the
// paper notes in Figure 8.
func (d *Dataset) LossRate(k PairKey) (stats.Summary, bool) {
	p := d.Paths[k]
	if p == nil || len(p.Loss) == 0 {
		return stats.Summary{}, false
	}
	var a stats.Accum
	for _, s := range p.Loss {
		if s.Lost {
			a.Add(1)
		} else {
			a.Add(0)
		}
	}
	return a.Summary(), true
}

// PropagationDelay estimates the fixed (propagation) component of a
// path's RTT as the q-quantile of its samples; the paper uses the tenth
// percentile "to protect against noise".
func (d *Dataset) PropagationDelay(k PairKey, q float64) (float64, bool) {
	p := d.Paths[k]
	if p == nil || len(p.RTT) == 0 {
		return 0, false
	}
	vals := make([]float64, len(p.RTT))
	for i, s := range p.RTT {
		vals[i] = s.RTTMs
	}
	v, err := stats.Quantile(vals, q)
	if err != nil {
		return 0, false
	}
	return v, true
}

// RTTDist returns the empirical RTT distribution of a path (for the
// median-by-convolution analysis).
func (d *Dataset) RTTDist(k PairKey) (stats.Dist, bool) {
	p := d.Paths[k]
	if p == nil || len(p.RTT) == 0 {
		return stats.Dist{}, false
	}
	vals := make([]float64, len(p.RTT))
	for i, s := range p.RTT {
		vals[i] = s.RTTMs
	}
	return stats.NewDist(vals), true
}

// MeanRTTBucket returns the mean RTT summary restricted to samples in a
// time-of-day bucket.
func (d *Dataset) MeanRTTBucket(k PairKey, b netsim.Bucket) (stats.Summary, bool) {
	p := d.Paths[k]
	if p == nil {
		return stats.Summary{}, false
	}
	var a stats.Accum
	for _, s := range p.RTT {
		if netsim.BucketOf(s.At) == b {
			a.Add(s.RTTMs)
		}
	}
	if a.N() == 0 {
		return stats.Summary{}, false
	}
	return a.Summary(), true
}

// LossRateBucket returns the loss-rate summary restricted to a bucket.
func (d *Dataset) LossRateBucket(k PairKey, b netsim.Bucket) (stats.Summary, bool) {
	p := d.Paths[k]
	if p == nil {
		return stats.Summary{}, false
	}
	var a stats.Accum
	for _, s := range p.Loss {
		if netsim.BucketOf(s.At) == b {
			if s.Lost {
				a.Add(1)
			} else {
				a.Add(0)
			}
		}
	}
	if a.N() == 0 {
		return stats.Summary{}, false
	}
	return a.Summary(), true
}

// TransferMeans returns the mean RTT and mean loss rate over a path's
// TCP transfer measurements.
func (d *Dataset) TransferMeans(k PairKey) (rtt, loss stats.Summary, ok bool) {
	p := d.Paths[k]
	if p == nil || len(p.Transfers) == 0 {
		return stats.Summary{}, stats.Summary{}, false
	}
	var ar, al stats.Accum
	for _, s := range p.Transfers {
		ar.Add(s.MeanRTTMs)
		al.Add(s.LossRate)
	}
	return ar.Summary(), al.Summary(), true
}

// Characteristics is a row of the paper's Table 1.
type Characteristics struct {
	Name         string
	Hosts        int
	Measurements int
	// PercentCovered is distinct measured paths over hosts*(hosts-1).
	PercentCovered float64
}

// Characteristics summarizes the dataset for Table 1.
func (d *Dataset) Characteristics() Characteristics {
	c := Characteristics{Name: d.Name, Hosts: len(d.Hosts)}
	for _, p := range d.Paths {
		c.Measurements += p.Measurements
	}
	potential := len(d.Hosts) * (len(d.Hosts) - 1)
	if potential > 0 {
		c.PercentCovered = 100 * float64(len(d.Paths)) / float64(potential)
	}
	return c
}

// Subset returns a new dataset restricted to the given hosts: only paths
// and episode entries between kept hosts survive. Path data is shared
// with the original (treat both as read-only afterwards), which is how
// the paper derives D2-NA and N2-NA as North American subsets of D2 and
// N2.
func (d *Dataset) Subset(name string, keep []topology.HostID) *Dataset {
	keepSet := map[topology.HostID]bool{}
	for _, h := range keep {
		keepSet[h] = true
	}
	var hosts []topology.HostID
	for _, h := range d.Hosts {
		if keepSet[h] {
			hosts = append(hosts, h)
		}
	}
	out := New(name, hosts)
	for k, p := range d.Paths {
		if keepSet[k.Src] && keepSet[k.Dst] {
			out.Paths[k] = p
		}
	}
	for _, e := range d.Episodes {
		ne := &Episode{At: e.At, RTTMs: map[PairKey]float64{}}
		for k, v := range e.RTTMs {
			if keepSet[k.Src] && keepSet[k.Dst] {
				ne.RTTMs[k] = v
			}
		}
		if len(ne.RTTMs) > 0 {
			out.Episodes = append(out.Episodes, ne)
		}
	}
	return out
}

// PairKeys returns the measured pairs in deterministic order. The
// sorted slice is memoized (and re-derived when the pair set changes,
// including direct writes to Paths, which the length check detects), so
// repeated calls are O(1); callers share the returned slice and must
// not modify it. Safe for concurrent use.
func (d *Dataset) PairKeys() []PairKey {
	d.pairKeysMu.Lock()
	defer d.pairKeysMu.Unlock()
	if d.pairKeys != nil && len(d.pairKeys) == len(d.Paths) {
		return d.pairKeys
	}
	keys := make([]PairKey, 0, len(d.Paths))
	for k := range d.Paths {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	d.pairKeys = keys
	return keys
}
