package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

func key(a, b int) PairKey {
	return PairKey{Src: topology.HostID(a), Dst: topology.HostID(b)}
}

func TestRecordEchoAndAggregates(t *testing.T) {
	d := New("test", []topology.HostID{0, 1, 2})
	k := key(0, 1)
	ok := d.RecordEcho(k, 100, []float64{10, 20, 30}, []bool{false, false, false}, []topology.ASN{1, 2}, 3)
	if !ok {
		t.Fatal("record failed")
	}
	d.RecordEcho(k, 200, []float64{40, 0, 0}, []bool{false, true, true}, []topology.ASN{1, 2}, 3)

	rtt, ok := d.MeanRTT(k)
	if !ok {
		t.Fatal("no RTT summary")
	}
	if rtt.N != 4 || math.Abs(rtt.Mean-25) > 1e-12 {
		t.Errorf("RTT summary %+v, want N=4 mean=25", rtt)
	}
	loss, ok := d.LossRate(k)
	if !ok {
		t.Fatal("no loss summary")
	}
	if loss.N != 6 || math.Abs(loss.Mean-2.0/6.0) > 1e-12 {
		t.Errorf("loss summary %+v, want N=6 mean=1/3", loss)
	}
	if p := d.Paths[k]; p.Measurements != 2 {
		t.Errorf("measurements = %d, want 2", p.Measurements)
	}
}

func TestRecordEchoKeepSamplesHeuristic(t *testing.T) {
	// The D2 heuristic: count only the first sample against losses.
	d := New("d2", []topology.HostID{0, 1})
	k := key(0, 1)
	d.RecordEcho(k, 0, []float64{10, 0, 0}, []bool{false, true, true}, nil, 1)
	loss, _ := d.LossRate(k)
	if loss.N != 1 || loss.Mean != 0 {
		t.Errorf("with keepSamples=1 only first sample should count: %+v", loss)
	}
	// RTT keeps every successful sample regardless.
	rtt, _ := d.MeanRTT(k)
	if rtt.N != 1 || rtt.Mean != 10 {
		t.Errorf("rtt %+v", rtt)
	}
}

func TestRecordEchoEmpty(t *testing.T) {
	d := New("x", []topology.HostID{0, 1})
	if d.RecordEcho(key(0, 1), 0, nil, nil, nil, 3) {
		t.Error("empty record should return false")
	}
	if len(d.Paths) != 0 {
		t.Error("no path should be created")
	}
}

func TestASPathRecordedOnce(t *testing.T) {
	d := New("x", []topology.HostID{0, 1})
	k := key(0, 1)
	d.RecordEcho(k, 0, []float64{1}, []bool{false}, []topology.ASN{1, 2, 3}, 1)
	d.RecordEcho(k, 1, []float64{1}, []bool{false}, []topology.ASN{9, 9}, 1)
	p := d.Paths[k]
	if len(p.ASPath) != 3 || p.ASPath[0] != 1 {
		t.Errorf("AS path should keep first observation, got %v", p.ASPath)
	}
}

func TestRemoveSparsePaths(t *testing.T) {
	d := New("x", []topology.HostID{0, 1, 2})
	for i := 0; i < 40; i++ {
		d.RecordEcho(key(0, 1), netsim.Time(i), []float64{10}, []bool{false}, nil, 1)
	}
	for i := 0; i < 5; i++ {
		d.RecordEcho(key(1, 2), netsim.Time(i), []float64{10}, []bool{false}, nil, 1)
	}
	dropped := d.RemoveSparsePaths(MinMeasurementsPerPath)
	if dropped != 1 {
		t.Errorf("dropped %d, want 1", dropped)
	}
	if _, ok := d.Paths[key(0, 1)]; !ok {
		t.Error("dense path should remain")
	}
	if _, ok := d.Paths[key(1, 2)]; ok {
		t.Error("sparse path should be gone")
	}
}

func TestRemoveHosts(t *testing.T) {
	d := New("x", []topology.HostID{0, 1, 2})
	d.RecordEcho(key(0, 1), 0, []float64{1}, []bool{false}, nil, 1)
	d.RecordEcho(key(1, 2), 0, []float64{1}, []bool{false}, nil, 1)
	d.RecordEcho(key(0, 2), 0, []float64{1}, []bool{false}, nil, 1)
	e := &Episode{At: 0, RTTMs: map[PairKey]float64{key(0, 1): 5, key(0, 2): 6}}
	d.AddEpisode(e)

	d.RemoveHosts(map[topology.HostID]bool{1: true})
	if len(d.Hosts) != 2 {
		t.Errorf("hosts = %v", d.Hosts)
	}
	if _, ok := d.Paths[key(0, 1)]; ok {
		t.Error("path touching removed host should be gone")
	}
	if _, ok := d.Paths[key(0, 2)]; !ok {
		t.Error("unrelated path should remain")
	}
	if _, ok := e.RTTMs[key(0, 1)]; ok {
		t.Error("episode entry touching removed host should be gone")
	}
}

func TestPropagationDelayQuantile(t *testing.T) {
	d := New("x", []topology.HostID{0, 1})
	k := key(0, 1)
	for i := 1; i <= 100; i++ {
		d.RecordEcho(k, netsim.Time(i), []float64{float64(i)}, []bool{false}, nil, 1)
	}
	p, ok := d.PropagationDelay(k, 0.10)
	if !ok {
		t.Fatal("no propagation estimate")
	}
	if p < 10 || p > 12 {
		t.Errorf("10th percentile = %f, want ~10.9", p)
	}
	if _, ok := d.PropagationDelay(key(1, 0), 0.1); ok {
		t.Error("missing path should not have an estimate")
	}
}

func TestBucketedAggregates(t *testing.T) {
	d := New("x", []topology.HostID{0, 1})
	k := key(0, 1)
	morning := netsim.Time(8 * 3600)  // Monday 08:00
	night := netsim.Time(2 * 3600)    // Monday 02:00
	weekend := netsim.Time(5 * 86400) // Saturday
	d.RecordEcho(k, morning, []float64{100}, []bool{false}, nil, 1)
	d.RecordEcho(k, night, []float64{10}, []bool{false}, nil, 1)
	d.RecordEcho(k, weekend, []float64{0}, []bool{true}, nil, 1)

	if s, ok := d.MeanRTTBucket(k, netsim.BucketMorning); !ok || s.Mean != 100 {
		t.Errorf("morning bucket %+v", s)
	}
	if s, ok := d.MeanRTTBucket(k, netsim.BucketNight); !ok || s.Mean != 10 {
		t.Errorf("night bucket %+v", s)
	}
	if _, ok := d.MeanRTTBucket(k, netsim.BucketAfternoon); ok {
		t.Error("empty bucket should report !ok")
	}
	if s, ok := d.LossRateBucket(k, netsim.BucketWeekend); !ok || s.Mean != 1 {
		t.Errorf("weekend loss %+v", s)
	}
	if _, ok := d.LossRateBucket(key(1, 0), netsim.BucketNight); ok {
		t.Error("missing path bucket should be !ok")
	}
}

func TestTransfers(t *testing.T) {
	d := New("n2", []topology.HostID{0, 1})
	k := key(0, 1)
	d.RecordTransfer(k, TransferSample{At: 0, MeanRTTMs: 100, LossRate: 0.02, Packets: 200})
	d.RecordTransfer(k, TransferSample{At: 1, MeanRTTMs: 200, LossRate: 0.04, Packets: 200})
	rtt, loss, ok := d.TransferMeans(k)
	if !ok {
		t.Fatal("no transfer means")
	}
	if rtt.Mean != 150 || math.Abs(loss.Mean-0.03) > 1e-12 {
		t.Errorf("rtt %f loss %f", rtt.Mean, loss.Mean)
	}
	if _, _, ok := d.TransferMeans(key(1, 0)); ok {
		t.Error("missing transfers should be !ok")
	}
}

func TestCharacteristics(t *testing.T) {
	d := New("tab", []topology.HostID{0, 1, 2, 3})
	d.RecordEcho(key(0, 1), 0, []float64{1}, []bool{false}, nil, 1)
	d.RecordEcho(key(0, 1), 1, []float64{1}, []bool{false}, nil, 1)
	d.RecordEcho(key(2, 3), 0, []float64{1}, []bool{false}, nil, 1)
	c := d.Characteristics()
	if c.Hosts != 4 || c.Measurements != 3 {
		t.Errorf("characteristics %+v", c)
	}
	// 2 distinct paths of 12 potential.
	if math.Abs(c.PercentCovered-100.0*2/12) > 1e-9 {
		t.Errorf("coverage %f", c.PercentCovered)
	}
}

func TestPairKeysDeterministic(t *testing.T) {
	d := New("x", []topology.HostID{0, 1, 2})
	d.RecordEcho(key(2, 0), 0, []float64{1}, []bool{false}, nil, 1)
	d.RecordEcho(key(0, 1), 0, []float64{1}, []bool{false}, nil, 1)
	d.RecordEcho(key(0, 2), 0, []float64{1}, []bool{false}, nil, 1)
	keys := d.PairKeys()
	if len(keys) != 3 {
		t.Fatalf("got %d keys", len(keys))
	}
	if keys[0] != key(0, 1) || keys[1] != key(0, 2) || keys[2] != key(2, 0) {
		t.Errorf("keys not ordered: %v", keys)
	}
}

func TestPairKeyHelpers(t *testing.T) {
	k := key(3, 7)
	if k.Reverse() != key(7, 3) {
		t.Error("reverse wrong")
	}
	if k.String() != "3->7" {
		t.Errorf("string %q", k.String())
	}
}

func TestRTTDist(t *testing.T) {
	d := New("x", []topology.HostID{0, 1})
	k := key(0, 1)
	d.RecordEcho(k, 0, []float64{30, 10, 20}, []bool{false, false, false}, nil, 3)
	dist, ok := d.RTTDist(k)
	if !ok || dist.N() != 3 {
		t.Fatalf("dist N=%d ok=%v", dist.N(), ok)
	}
	if m, _ := dist.Median(); m != 20 {
		t.Errorf("median %f", m)
	}
	if _, ok := d.RTTDist(key(1, 0)); ok {
		t.Error("missing dist should be !ok")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := New("persist", []topology.HostID{0, 1})
	k := key(0, 1)
	d.RecordEcho(k, 42, []float64{10, 20}, []bool{false, false}, []topology.ASN{5, 6}, 2)
	d.AddEpisode(&Episode{At: 9, RTTMs: map[PairKey]float64{k: 15}})

	path := filepath.Join(dir, "d.gob.gz")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "persist" || len(got.Hosts) != 2 {
		t.Errorf("loaded %+v", got)
	}
	rtt, ok := got.MeanRTT(k)
	if !ok || rtt.Mean != 15 || rtt.N != 2 {
		t.Errorf("loaded RTT %+v", rtt)
	}
	if len(got.Episodes) != 1 || got.Episodes[0].RTTMs[k] != 15 {
		t.Errorf("loaded episodes %+v", got.Episodes)
	}
	p := got.Paths[k]
	if len(p.ASPath) != 2 || p.ASPath[1] != 6 {
		t.Errorf("loaded AS path %v", p.ASPath)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob.gz")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.gob.gz")
	if err := writeFile(p, []byte("not a gzip stream")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(p); err == nil {
		t.Error("loading a corrupt file should error")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestSubset(t *testing.T) {
	d := New("full", []topology.HostID{0, 1, 2, 3})
	d.RecordEcho(key(0, 1), 0, []float64{10}, []bool{false}, nil, 1)
	d.RecordEcho(key(1, 2), 0, []float64{20}, []bool{false}, nil, 1)
	d.RecordEcho(key(0, 3), 0, []float64{30}, []bool{false}, nil, 1)
	d.AddEpisode(&Episode{At: 5, RTTMs: map[PairKey]float64{
		key(0, 1): 10, key(0, 3): 30,
	}})
	d.AddEpisode(&Episode{At: 9, RTTMs: map[PairKey]float64{
		key(2, 3): 40,
	}})

	sub := d.Subset("na", []topology.HostID{0, 1, 2})
	if sub.Name != "na" {
		t.Errorf("name %q", sub.Name)
	}
	if len(sub.Hosts) != 3 {
		t.Errorf("hosts %v", sub.Hosts)
	}
	if _, ok := sub.Paths[key(0, 1)]; !ok {
		t.Error("kept-pair path missing")
	}
	if _, ok := sub.Paths[key(0, 3)]; ok {
		t.Error("path to dropped host kept")
	}
	// Episode 1 keeps only the 0->1 entry; episode 2 becomes empty and
	// is dropped.
	if len(sub.Episodes) != 1 {
		t.Fatalf("episodes %d, want 1", len(sub.Episodes))
	}
	if len(sub.Episodes[0].RTTMs) != 1 || sub.Episodes[0].RTTMs[key(0, 1)] != 10 {
		t.Errorf("episode entries %v", sub.Episodes[0].RTTMs)
	}
	// Shared path data: aggregates agree.
	a, _ := d.MeanRTT(key(0, 1))
	b, _ := sub.MeanRTT(key(0, 1))
	if a != b {
		t.Error("subset aggregates differ")
	}
	// Subsetting with hosts not in the dataset yields nothing extra.
	empty := d.Subset("none", []topology.HostID{9})
	if len(empty.Hosts) != 0 || len(empty.Paths) != 0 {
		t.Errorf("unexpected content %v %v", empty.Hosts, empty.Paths)
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	d := New("x", []topology.HostID{0, 1})
	if err := d.Save("/nonexistent-dir/sub/file.gob.gz"); err == nil {
		t.Error("saving into a missing directory should error")
	}
}
