package dataset

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
)

// Save writes the dataset to path as gzip-compressed gob, atomically
// (write to a temporary file, then rename).
func (d *Dataset) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dataset: save %s: %w", path, err)
	}
	zw := gzip.NewWriter(f)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(d); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	if err := zw.Close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dataset: compress %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: rename %s: %w", path, err)
	}
	return nil
}

// Load reads a dataset previously written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load %s: %w", path, err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: decompress %s: %w", path, err)
	}
	defer zr.Close()
	var d Dataset
	if err := gob.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	if d.Paths == nil {
		d.Paths = map[PairKey]*PathData{}
	}
	return &d, nil
}
