package packetnet

import "testing"

// The netem validation targets (SNIPPETS.md, bassosimone/netem
// PERFORMANCE.md): a link emulator is credible when adding loss
// strictly reduces TCP goodput and adding round-trip latency strictly
// reduces TCP goodput. Both sweeps run the full packet-level stack over
// a real topology path with the background model pinned
// (FixedUtilization) so the impairment knob is the only thing changing.

// lossSweep and delaySweep each hold well-separated operating points —
// more than the three the acceptance criteria require.
var (
	lossSweep  = []float64{0, 0.01, 0.03, 0.08, 0.15}
	delaySweep = []float64{0, 40, 100, 250, 600}
)

// sweepGoodput runs one transfer per operating point, mutating the
// config through set.
func sweepGoodput(t *testing.T, points []float64, set func(*Config, float64)) []float64 {
	t.Helper()
	src, dst := pairHosts(t, 0, 1)
	out := make([]float64, len(points))
	for i, p := range points {
		cfg := DefaultConfig()
		cfg.FixedUtilization = 0.3
		set(&cfg, p)
		n := newNet(t, cfg)
		st, err := n.Transfer(src, dst, 0, 30)
		if err != nil {
			t.Fatalf("Transfer at point %v: %v", p, err)
		}
		out[i] = st.GoodputKBs
	}
	return out
}

func TestGoodputStrictlyDecreasesWithLoss(t *testing.T) {
	g := sweepGoodput(t, lossSweep, func(c *Config, p float64) { c.ExtraLossProb = p })
	t.Logf("loss %v -> goodput KB/s %v", lossSweep, g)
	for i := 1; i < len(g); i++ {
		if !(g[i] < g[i-1]) {
			t.Fatalf("goodput not strictly decreasing in loss: %.2f KB/s at p=%v vs %.2f KB/s at p=%v",
				g[i], lossSweep[i], g[i-1], lossSweep[i-1])
		}
	}
	if g[len(g)-1] <= 0 {
		t.Fatal("flow made no progress at the highest loss point")
	}
}

func TestGoodputStrictlyDecreasesWithRTT(t *testing.T) {
	g := sweepGoodput(t, delaySweep, func(c *Config, p float64) { c.ExtraDelayMs = p })
	t.Logf("extra one-way delay %v ms -> goodput KB/s %v", delaySweep, g)
	for i := 1; i < len(g); i++ {
		if !(g[i] < g[i-1]) {
			t.Fatalf("goodput not strictly decreasing in RTT: %.2f KB/s at +%vms vs %.2f KB/s at +%vms",
				g[i], delaySweep[i], g[i-1], delaySweep[i-1])
		}
	}
	if g[len(g)-1] <= 0 {
		t.Fatal("flow made no progress at the highest delay point")
	}
}

// TestGoodputTracksBottleneckUtilization checks the third knob: a
// busier bottleneck (less residual capacity) cannot raise goodput.
func TestGoodputTracksBottleneckUtilization(t *testing.T) {
	utils := []float64{0.1, 0.5, 0.9}
	g := sweepGoodput(t, utils, func(c *Config, p float64) { c.FixedUtilization = p })
	t.Logf("utilization %v -> goodput KB/s %v", utils, g)
	for i := 1; i < len(g); i++ {
		if g[i] > g[i-1] {
			t.Fatalf("goodput increased with utilization: %.2f KB/s at u=%v vs %.2f KB/s at u=%v",
				g[i], utils[i], g[i-1], utils[i-1])
		}
	}
}
