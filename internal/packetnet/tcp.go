// TCP Reno over the packet data plane. The endpoint implements the
// same congestion-control semantics as internal/tcpsim's rounds model —
// slow start to InitialSSThresh, AIMD congestion avoidance, fast
// retransmit on three duplicate ACKs, exponential RTO backoff with
// Karn's rule — but as an event-driven state machine exchanging real
// segments, so queue interaction, burst losses and reordering all feed
// back into the window like they would on a kernel stack.
//
// Sequence space: byte 0 is the SYN, application byte k occupies
// sequence 1+k, and the FIN occupies one byte after the last data byte.
// Synthetic pairs created by Transfer skip the handshake and start
// established at sequence 1.

package packetnet

import (
	"fmt"

	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// Addr is a (host, port) endpoint address on the simulated network.
// It implements net.Addr.
type Addr struct {
	Host topology.HostID
	Port int
}

// Network returns the address family name.
func (a Addr) Network() string { return "packetnet" }

// String formats the address like host<id>:<port>.
func (a Addr) String() string { return fmt.Sprintf("host%d:%d", a.Host, a.Port) }

// segment is one TCP segment on the wire. Every segment carries a
// cumulative ACK and an advertised window; data segments additionally
// cover the sequence span [seq, end).
type segment struct {
	src *endpoint // sender, so the receiver can address replies
	dst *endpoint // nil for SYNs, which are routed to a listener by dstAddr

	srcAddr, dstAddr Addr

	seq, end uint64 // sequence span; equal for pure ACKs
	ack      uint64 // cumulative acknowledgment
	wnd      int    // advertised receive window, bytes

	syn, fin bool
	probe    bool // zero-window probe: carries no data but must be ACKed

	// payload holds the data bytes for conn-mode senders; nil in count
	// mode, where only the sequence span is accounted. payloadLen is
	// the wire size of the data portion either way.
	payload    []byte
	payloadLen int
}

// EndpointStats counts transport events at one endpoint.
type EndpointStats struct {
	SegmentsSent    int
	Retransmits     int
	Timeouts        int
	FastRetransmits int
	DupAcks         int
	// OutOfOrder counts arriving segments beyond the next expected
	// sequence number — the receiver-side signature of reordering or
	// loss.
	OutOfOrder int
}

// maxBackoff caps the RTO doubling exponent.
const maxBackoff = 12

// endpoint is one half of a TCP connection. All fields are guarded by
// the owning Network's mutex; methods are invoked from the event loop
// or from API calls holding it.
type endpoint struct {
	n      *Network
	local  Addr
	remote Addr
	peer   *endpoint // learned from the first segment that carries a src

	listener *Listener // server side: where to surface the conn once established

	established bool
	countSend   bool // infinite synthetic source (Transfer sender)
	countRecv   bool // discard payloads, count bytes (Transfer receiver)

	// Sender state.
	una, nxt uint64 // oldest unacked / next to send
	dataEnd  uint64 // sequence just past the last application byte
	sndBuf   []byte // conn mode: bytes [bufSeq, dataEnd)
	bufSeq   uint64
	closing  bool // FIN enqueued at dataEnd

	cwnd, ssthresh float64 // segments
	dupAcks        int
	inRecovery     bool
	recover        uint64
	peerWnd        int

	haveRTT      bool
	srtt, rttvar float64 // seconds
	rtoBase      float64 // seconds, before backoff
	backoff      int
	timerGen     uint64 // invalidates outstanding timer events
	timerArmed   bool
	probeArmed   bool
	timedSeq     uint64 // RTT measurement in flight (Karn: first txs only)
	timedAt      netsim.Time
	timedValid   bool

	// Receiver state.
	rcvNxt  uint64
	ooo     []segment // out-of-order queue, sorted by seq, disjoint spans
	rcvBuf  []byte    // conn mode: delivered, unread bytes
	peerFin bool

	readDeadline  netsim.Time // noDeadline when unset
	writeDeadline netsim.Time

	closed bool  // local Close called
	err    error // fatal error surfaced to API calls

	stats EndpointStats
}

// newEndpoint creates an endpoint in the closed state.
func (n *Network) newEndpoint(local, remote Addr) *endpoint {
	return &endpoint{
		n:        n,
		local:    local,
		remote:   remote,
		cwnd:     1,
		ssthresh: n.cfg.InitialSSThresh,
		peerWnd:  n.cfg.RecvWindowBytes,
		rtoBase:  1.0, // RFC 6298 initial RTO
		// Sequence byte 0 is the SYN; application data starts at 1.
		dataEnd:       1,
		bufSeq:        1,
		readDeadline:  noDeadline,
		writeDeadline: noDeadline,
	}
}

// startEstablished skips the handshake: sequence 1 on both sides, as
// Transfer's synthetic pairs use.
func (ep *endpoint) startEstablished() {
	ep.established = true
	ep.una, ep.nxt, ep.rcvNxt = 1, 1, 1
	ep.dataEnd, ep.bufSeq = 1, 1
}

// --- sender ---

// availEnd returns the sequence just past everything currently
// sendable, including the FIN's virtual byte.
func (ep *endpoint) availEnd() uint64 {
	e := ep.dataEnd
	if ep.closing {
		e++
	}
	return e
}

// windowBytes returns the effective send window: the congestion window
// in segments, capped by MaxWindow and the peer's advertised window.
func (ep *endpoint) windowBytes() int {
	segs := int(ep.cwnd)
	if m := int(ep.n.cfg.MaxWindow); segs > m {
		segs = m
	}
	if segs < 1 {
		segs = 1
	}
	w := segs * ep.n.cfg.MSSBytes
	if w > ep.peerWnd {
		w = ep.peerWnd
	}
	return w
}

// sendRange transmits the sequence span [s, e) as one segment.
func (ep *endpoint) sendRange(s, e uint64, retransmit bool) {
	seg := segment{seq: s, end: e}
	if s == 0 {
		// Byte 0 is the SYN; it travels alone.
		seg.syn = true
		e = 1
		seg.end = 1
	}
	dataStart, dataEnd := s, e
	if seg.syn {
		dataStart++
	}
	if ep.closing && e == ep.dataEnd+1 {
		seg.fin = true
		dataEnd--
	}
	if dataEnd > dataStart {
		seg.payloadLen = int(dataEnd - dataStart)
		if !ep.countSend {
			seg.payload = ep.sndBuf[dataStart-ep.bufSeq : dataEnd-ep.bufSeq]
		}
	}
	ep.stats.SegmentsSent++
	if retransmit {
		ep.stats.Retransmits++
	} else if !ep.timedValid {
		// Time one segment per RTT; Karn's rule — never a retransmit.
		ep.timedSeq = e
		ep.timedAt = ep.n.now
		ep.timedValid = true
	}
	ep.emit(seg)
}

// emit stamps the segment with addressing, the cumulative ACK and the
// advertised window, then injects it into the data plane.
func (ep *endpoint) emit(seg segment) {
	seg.src = ep
	seg.dst = ep.peer
	seg.srcAddr = ep.local
	seg.dstAddr = ep.remote
	seg.ack = ep.rcvNxt
	seg.wnd = ep.advertiseWindow()
	ep.n.sendSegment(ep.local.Host, ep.remote.Host, seg)
}

// pump sends as much new data as the window allows.
func (ep *endpoint) pump() {
	if ep.err != nil {
		return
	}
	if !ep.established {
		if ep.nxt == 0 {
			ep.sendRange(0, 1, false)
			ep.nxt = 1
			ep.armTimer()
		}
		return
	}
	mss := uint64(ep.n.cfg.MSSBytes)
	for {
		limit := ep.una + uint64(ep.windowBytes())
		end := ep.availEnd()
		if end > limit {
			end = limit
		}
		if ep.nxt >= end {
			break
		}
		e := ep.nxt + mss
		if e > end {
			e = end
		}
		ep.sendRange(ep.nxt, e, false)
		ep.nxt = e
		if !ep.timerArmed {
			ep.armTimer()
		}
	}
	// Zero-window stall with pending data and nothing in flight: probe
	// so a lost window update cannot deadlock the connection.
	if ep.una == ep.nxt && ep.availEnd() > ep.nxt &&
		ep.peerWnd < ep.n.cfg.MSSBytes && !ep.probeArmed {
		ep.armProbe()
	}
}

// retransmitHead resends the oldest unacknowledged segment.
func (ep *endpoint) retransmitHead() {
	e := ep.una + uint64(ep.n.cfg.MSSBytes)
	if end := ep.availEnd(); e > end {
		e = end
	}
	if nxt := ep.nxt; e > nxt {
		e = nxt
	}
	if e <= ep.una {
		return
	}
	ep.sendRange(ep.una, e, true)
}

// onAck processes the cumulative ACK and window fields of any arriving
// segment.
func (ep *endpoint) onAck(ack uint64, wnd int) {
	ep.peerWnd = wnd
	mss := float64(ep.n.cfg.MSSBytes)
	switch {
	case ack > ep.nxt:
		return // acks data never sent; ignore
	case ack > ep.una:
		acked := float64(ack - ep.una)
		ep.una = ack
		if !ep.countSend {
			ep.sndBuf = ep.sndBuf[ack-ep.bufSeq:]
			ep.bufSeq = ack
		}
		if ep.timedValid && ack >= ep.timedSeq {
			ep.rttSample(float64(ep.n.now - ep.timedAt))
			ep.timedValid = false
		}
		ep.backoff = 0
		if ep.inRecovery {
			if ack >= ep.recover {
				ep.inRecovery = false
				ep.cwnd = ep.ssthresh
				ep.dupAcks = 0
			}
		} else {
			ep.dupAcks = 0
			segs := acked / mss
			if ep.cwnd < ep.ssthresh {
				ep.cwnd += segs // slow start
			} else {
				ep.cwnd += segs / ep.cwnd // congestion avoidance
			}
			if ep.cwnd > ep.n.cfg.MaxWindow {
				ep.cwnd = ep.n.cfg.MaxWindow
			}
		}
		if !ep.established && ep.una >= 1 {
			ep.onEstablished()
		}
		if ep.una == ep.nxt {
			ep.cancelTimer()
		} else {
			ep.armTimer() // restart on progress
		}
		ep.pump()
	case ack == ep.una && ep.nxt > ep.una:
		ep.dupAcks++
		ep.stats.DupAcks++
		if ep.dupAcks == 3 && !ep.inRecovery {
			flight := float64(ep.nxt-ep.una) / mss
			ep.ssthresh = flight / 2
			if ep.ssthresh < 2 {
				ep.ssthresh = 2
			}
			ep.cwnd = ep.ssthresh
			ep.inRecovery = true
			ep.recover = ep.nxt
			ep.stats.FastRetransmits++
			ep.retransmitHead()
			ep.armTimer()
		}
	default:
		ep.pump() // pure window update
	}
}

// rttSample folds one RTT measurement into SRTT/RTTVAR (RFC 6298).
func (ep *endpoint) rttSample(s float64) {
	if !ep.haveRTT {
		ep.haveRTT = true
		ep.srtt = s
		ep.rttvar = s / 2
	} else {
		d := s - ep.srtt
		if d < 0 {
			d = -d
		}
		ep.rttvar = 0.75*ep.rttvar + 0.25*d
		ep.srtt = 0.875*ep.srtt + 0.125*s
	}
	ep.rtoBase = ep.srtt + 4*ep.rttvar
}

// rtoEff returns the current timeout with backoff, clamped to the
// configured bounds.
func (ep *endpoint) rtoEff() float64 {
	r := ep.rtoBase * float64(uint64(1)<<ep.backoff)
	if min := ep.n.cfg.RTOMinMs / 1000; r < min {
		r = min
	}
	if max := ep.n.cfg.RTOMaxMs / 1000; r > max {
		r = max
	}
	return r
}

// armTimer (re)starts the retransmission timer.
func (ep *endpoint) armTimer() {
	ep.timerGen++
	ep.timerArmed = true
	gen := ep.timerGen
	ep.n.schedule(ep.n.now+netsim.Time(ep.rtoEff()), func() { ep.onTimeout(gen) })
}

// cancelTimer invalidates any outstanding timer event.
func (ep *endpoint) cancelTimer() {
	ep.timerGen++
	ep.timerArmed = false
}

// onTimeout handles RTO expiry: multiplicative backoff, window
// collapse, retransmit from una.
func (ep *endpoint) onTimeout(gen uint64) {
	if gen != ep.timerGen || ep.una == ep.nxt || ep.err != nil {
		return
	}
	ep.stats.Timeouts++
	flight := float64(ep.nxt-ep.una) / float64(ep.n.cfg.MSSBytes)
	ep.ssthresh = flight / 2
	if ep.ssthresh < 2 {
		ep.ssthresh = 2
	}
	ep.cwnd = 1
	ep.inRecovery = false
	ep.dupAcks = 0
	if ep.backoff < maxBackoff {
		ep.backoff++
	}
	ep.timedValid = false // Karn: no RTT sample across a retransmit
	ep.retransmitHead()
	ep.armTimer()
}

// armProbe schedules a zero-window probe.
func (ep *endpoint) armProbe() {
	ep.probeArmed = true
	ep.n.schedule(ep.n.now+netsim.Time(ep.rtoEff()), func() { ep.onProbe() })
}

// onProbe sends a window probe if the sender is still stalled.
func (ep *endpoint) onProbe() {
	ep.probeArmed = false
	if ep.err != nil || !ep.established || ep.closed && ep.una == ep.availEnd() {
		return
	}
	if ep.peerWnd >= ep.n.cfg.MSSBytes || ep.availEnd() == ep.nxt || ep.una != ep.nxt {
		ep.pump()
		return
	}
	ep.emit(segment{seq: ep.nxt, end: ep.nxt, probe: true})
	ep.armProbe()
}

// --- receiver ---

// advertiseWindow returns the flow-control window to advertise.
func (ep *endpoint) advertiseWindow() int {
	if ep.countRecv {
		return ep.n.cfg.RecvWindowBytes
	}
	w := ep.n.cfg.RecvWindowBytes - len(ep.rcvBuf)
	if w < 0 {
		w = 0
	}
	return w
}

// receive processes one arriving segment: ACK side first, then data.
func (ep *endpoint) receive(seg segment) {
	if ep.err != nil {
		return
	}
	if ep.peer == nil && seg.src != nil {
		ep.peer = seg.src
	}
	ep.onAck(seg.ack, seg.wnd)
	if seg.end > seg.seq || seg.probe {
		ep.onData(seg)
	}
}

// onData handles the sequence-consuming side of a segment and always
// answers with an ACK (new data, duplicate, out of order and probes
// alike — duplicate ACKs are the loss signal).
func (ep *endpoint) onData(seg segment) {
	switch {
	case seg.end <= ep.rcvNxt || seg.end == seg.seq:
		// Old retransmission, or a window probe: just re-ACK.
	case seg.seq <= ep.rcvNxt:
		ep.absorb(seg)
		for len(ep.ooo) > 0 && ep.ooo[0].seq <= ep.rcvNxt {
			s := ep.ooo[0]
			ep.ooo = ep.ooo[1:]
			if s.end > ep.rcvNxt {
				ep.absorb(s)
			}
		}
	default:
		ep.insertOOO(seg)
	}
	ep.emit(segment{seq: ep.nxt, end: ep.nxt})
}

// absorb advances rcvNxt over a segment that starts at or before it,
// delivering the unseen payload bytes.
func (ep *endpoint) absorb(seg segment) {
	dataStart, dataEnd := seg.seq, seg.end
	if seg.syn {
		dataStart++
	}
	if seg.fin {
		dataEnd--
		ep.peerFin = true
	}
	if seg.payload != nil && !ep.countRecv && dataEnd > dataStart {
		from := ep.rcvNxt
		if from < dataStart {
			from = dataStart
		}
		if from < dataEnd {
			ep.rcvBuf = append(ep.rcvBuf, seg.payload[from-dataStart:dataEnd-dataStart]...)
		}
	}
	ep.rcvNxt = seg.end
}

// insertOOO stores a segment beyond rcvNxt in the sorted out-of-order
// queue, ignoring spans already buffered.
func (ep *endpoint) insertOOO(seg segment) {
	i := 0
	for i < len(ep.ooo) && ep.ooo[i].seq < seg.seq {
		i++
	}
	if i < len(ep.ooo) && ep.ooo[i].seq == seg.seq {
		return // duplicate of a buffered segment
	}
	if i > 0 && ep.ooo[i-1].end > seg.seq {
		return // overlaps the previous buffered span; keep the original
	}
	if i < len(ep.ooo) && seg.end > ep.ooo[i].seq {
		return // overlaps the next buffered span
	}
	ep.stats.OutOfOrder++
	ep.ooo = append(ep.ooo, segment{})
	copy(ep.ooo[i+1:], ep.ooo[i:])
	ep.ooo[i] = seg
	ep.n.cond.Broadcast()
}

// onEstablished marks the connection live and, on the server side,
// surfaces it on the listener's accept queue.
func (ep *endpoint) onEstablished() {
	ep.established = true
	if ep.listener != nil {
		ep.listener.pending = append(ep.listener.pending, ep)
		ep.listener = nil
	}
	ep.pump()
}

// sendFIN enqueues the FIN virtual byte and pushes it out.
func (ep *endpoint) sendFIN() {
	if ep.closing {
		return
	}
	ep.closing = true
	ep.pump()
}

// finDelivered reports whether every byte including the FIN was ACKed.
func (ep *endpoint) finDelivered() bool {
	return ep.closing && ep.una == ep.availEnd()
}
