// Transfer runs a synthetic bulk TCP flow entirely inside the event
// loop — no goroutines, no payload bytes, just sequence-number
// accounting — and reports what the flow achieved. It is the
// measurement primitive behind the PacketValidation exhibit: one
// deterministic flow per (pair, window), compared against the Mathis
// model and the tcpsim rounds model fed the same path state.

package packetnet

import (
	"errors"
	"fmt"

	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// countSourceEnd is the effectively infinite data horizon of a
// count-mode sender.
const countSourceEnd = uint64(1) << 60

// TransferStats reports one bulk transfer's outcome.
type TransferStats struct {
	// Delivered is the number of application bytes the receiver
	// consumed in order.
	Delivered int64
	// GoodputKBs is Delivered over the transfer window, in KB/s
	// (bytes per millisecond, the unit tcpmodel and tcpsim use).
	GoodputKBs float64
	// SRTTMs is the sender's smoothed RTT estimate at the end of the
	// window, in milliseconds (0 if no sample completed).
	SRTTMs float64
	// Sender and Receiver hold the endpoints' transport counters.
	Sender   EndpointStats
	Receiver EndpointStats
	// Net holds the data-plane counters accumulated during this
	// transfer only.
	Net NetStats
}

// Transfer runs one bulk flow from src to dst over [start,
// start+durationSec) of simulated time and returns its statistics.
// start must not precede the network's current simulated time;
// successive transfers on one Network must therefore use
// non-decreasing start times (the clock never runs backwards).
func (n *Network) Transfer(src, dst topology.HostID, start netsim.Time, durationSec float64) (TransferStats, error) {
	if durationSec <= 0 {
		return TransferStats{}, errors.New("packetnet: non-positive transfer duration")
	}
	if start < 0 {
		return TransferStats{}, errors.New("packetnet: negative start time")
	}
	n.mu.Lock()
	if start < n.now {
		n.mu.Unlock()
		return TransferStats{}, fmt.Errorf("packetnet: start %.3f precedes simulated time %.3f", float64(start), float64(n.now))
	}
	if n.top.Host(src) == nil || n.top.Host(dst) == nil {
		n.mu.Unlock()
		return TransferStats{}, fmt.Errorf("packetnet: unknown host %d or %d", src, dst)
	}
	if _, err := n.paths.PathAt(src, dst, start); err != nil {
		n.mu.Unlock()
		return TransferStats{}, fmt.Errorf("packetnet: no route from host %d to %d: %w", src, dst, err)
	}
	before := n.stats

	n.portSeq += 2
	sport, rport := ephemeralBase+n.portSeq-1, ephemeralBase+n.portSeq
	sender := n.newEndpoint(Addr{Host: src, Port: sport}, Addr{Host: dst, Port: rport})
	recv := n.newEndpoint(Addr{Host: dst, Port: rport}, Addr{Host: src, Port: sport})
	sender.countSend = true
	recv.countRecv = true
	sender.startEstablished()
	recv.startEstablished()
	sender.dataEnd = countSourceEnd
	sender.peer = recv
	recv.peer = sender
	n.schedule(start, func() { sender.pump() })
	n.mu.Unlock()

	n.runUntil(start + netsim.Time(durationSec))

	n.mu.Lock()
	defer n.mu.Unlock()
	st := TransferStats{
		Delivered: int64(recv.rcvNxt - 1),
		SRTTMs:    sender.srtt * 1000,
		Sender:    sender.stats,
		Receiver:  recv.stats,
		Net: NetStats{
			PacketsSent:  n.stats.PacketsSent - before.PacketsSent,
			QueueDrops:   n.stats.QueueDrops - before.QueueDrops,
			RandomLosses: n.stats.RandomLosses - before.RandomLosses,
			Unroutable:   n.stats.Unroutable - before.Unroutable,
		},
	}
	st.GoodputKBs = float64(st.Delivered) / (durationSec * 1000)
	// Detach the endpoints: any timer events still queued become no-ops
	// and no further segments enter the data plane, so later transfers
	// on this network start clean.
	sender.err = errDetached
	recv.err = errDetached
	sender.cancelTimer()
	recv.cancelTimer()
	return st, nil
}
