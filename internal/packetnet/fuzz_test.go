package packetnet

import (
	"testing"

	"pathsel/internal/forward"
	"pathsel/internal/netsim"
)

// FuzzDataPlane drives the event loop and link scheduler with fuzzed
// impairment configurations and transfer windows. The engine's own
// invariant checks do the heavy lifting — schedule panics on negative
// or NaN timestamps, traverse panics when a link's FIFO completion
// order or queue bound is violated — and the target adds end-to-end
// accounting checks on top. Runs in the CI fuzz-smoke job.
func FuzzDataPlane(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(0), uint8(30), uint8(4), uint8(0), uint8(1))
	f.Add(int64(7), uint16(50), uint16(120), uint8(200), uint8(2), uint8(2), uint8(5))
	f.Add(int64(-3), uint16(999), uint16(1999), uint8(99), uint8(0), uint8(9), uint8(9))
	f.Add(int64(42), uint16(200), uint16(700), uint8(119), uint8(7), uint8(31), uint8(4))

	f.Fuzz(func(t *testing.T, seed int64, lossMilli, delayMs uint16, utilCode, durCode, srcIdx, dstIdx uint8) {
		fx := sharedFixture(t)
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.ExtraLossProb = float64(lossMilli%1000) / 1000
		cfg.ExtraDelayMs = float64(delayMs % 2000)
		// utilCode folds to either a fixed utilization in [0,1) or the
		// netsim-sampled background (negative sentinel).
		if u := utilCode % 120; u < 100 {
			cfg.FixedUtilization = float64(u) / 100
		} else {
			cfg.FixedUtilization = -1
		}
		// Tiny queues stress the drop-tail bound.
		cfg.QueuePackets = 1 + int(utilCode%7)
		dur := 0.5 + float64(durCode%8)

		hosts := fx.top.Hosts
		src := hosts[int(srcIdx)%len(hosts)].ID
		dst := hosts[int(dstIdx)%len(hosts)].ID
		if src == dst {
			return
		}
		n, err := New(fx.top, fx.ns, forward.NewCache(fx.fwd), cfg)
		if err != nil {
			t.Fatalf("New rejected a folded config: %v", err)
		}
		st, err := n.Transfer(src, dst, 0, dur)
		if err != nil {
			t.Fatalf("Transfer: %v", err)
		}
		if st.Delivered < 0 {
			t.Fatalf("negative delivery: %+v", st)
		}
		ns := st.Net
		if ns.QueueDrops < 0 || ns.RandomLosses < 0 || ns.Unroutable < 0 || ns.PacketsSent < 0 {
			t.Fatalf("negative data-plane counter: %+v", ns)
		}
		// Each packet is dropped at most once.
		if ns.QueueDrops+ns.RandomLosses+ns.Unroutable > ns.PacketsSent {
			t.Fatalf("more drops than packets: %+v", ns)
		}
		// The clock landed exactly on the end of the window and never
		// ran backwards.
		if got, want := n.Now(), netsim.Time(dur); got < want {
			t.Fatalf("clock stopped at %v, want at least %v", got, want)
		}
	})
}
