// net.Conn / net.Listener adapters. The simulated clock only moves
// inside the event loop, so a blocked operation (Read with no data,
// Accept with no connection, Write with a full buffer) takes on driver
// duty: it steps the event queue under the network mutex until its wake
// condition holds. With every blocking call a potential driver, any
// program structured around goroutines blocking on sockets — an echo
// server, a request/response client — runs unmodified, and simulated
// time advances exactly as far as the communication pattern demands.

package packetnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "packetnet: deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var errTimeout net.Error = timeoutError{}

// errDetached marks endpoints whose simulation window ended.
var errDetached = errors.New("packetnet: endpoint detached")

// dialMaxBackoff bounds SYN retries before Dial gives up (RTO doubles
// each time, so this is on the order of a minute of simulated time).
const dialMaxBackoff = 6

// ephemeralBase is the first ephemeral port Dial allocates.
const ephemeralBase = 49152

// simDeadline converts a wall-clock deadline to simulated time via
// Epoch; the zero time disables the deadline.
func simDeadline(t time.Time) netsim.Time {
	if t.IsZero() {
		return noDeadline
	}
	return netsim.Time(t.Sub(Epoch).Seconds())
}

// Conn is a TCP connection over the simulated data plane, implementing
// net.Conn on the simulated clock.
type Conn struct {
	ep *endpoint
}

var _ net.Conn = (*Conn)(nil)

// Read copies delivered bytes, blocking (and driving the simulation)
// until data, EOF, a deadline, or Close.
func (c *Conn) Read(b []byte) (int, error) {
	ep := c.ep
	nw := ep.n
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for {
		if ep.err != nil {
			return 0, ep.err
		}
		if ep.closed {
			return 0, net.ErrClosed
		}
		if len(ep.rcvBuf) > 0 {
			wasShut := ep.advertiseWindow() < nw.cfg.MSSBytes
			k := copy(b, ep.rcvBuf)
			ep.rcvBuf = ep.rcvBuf[k:]
			if wasShut && ep.advertiseWindow() >= nw.cfg.MSSBytes && ep.established {
				// Reopening window: tell a possibly stalled sender.
				ep.emit(segment{seq: ep.nxt, end: ep.nxt})
			}
			return k, nil
		}
		if ep.peerFin {
			return 0, io.EOF
		}
		if err := nw.driveLocked(ep.readDeadline); err != nil {
			return 0, err
		}
	}
}

// Write queues bytes into the send buffer, blocking for space; the
// transport delivers them reliably in the background of whichever
// operation drives the simulation next.
func (c *Conn) Write(b []byte) (int, error) {
	ep := c.ep
	nw := ep.n
	nw.mu.Lock()
	defer nw.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if ep.err != nil {
			return total, ep.err
		}
		if ep.closed || ep.closing {
			return total, net.ErrClosed
		}
		if space := nw.cfg.SendBufBytes - len(ep.sndBuf); space > 0 {
			k := space
			if k > len(b) {
				k = len(b)
			}
			ep.sndBuf = append(ep.sndBuf, b[:k]...)
			ep.dataEnd += uint64(k)
			b = b[k:]
			total += k
			ep.pump()
			continue
		}
		if err := nw.driveLocked(ep.writeDeadline); err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close sends a FIN for any buffered data and releases the connection.
// Delivery of the tail happens while any other operation drives the
// simulation; Close itself does not block.
func (c *Conn) Close() error {
	ep := c.ep
	nw := ep.n
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if ep.closed {
		return nil
	}
	ep.closed = true
	ep.sendFIN()
	nw.cond.Broadcast() // wake readers blocked on this conn
	return nil
}

// LocalAddr returns the local (host, port) address.
func (c *Conn) LocalAddr() net.Addr { return c.ep.local }

// RemoteAddr returns the peer's (host, port) address.
func (c *Conn) RemoteAddr() net.Addr { return c.ep.remote }

// SetDeadline sets both read and write deadlines, interpreted on the
// simulated clock via Epoch.
func (c *Conn) SetDeadline(t time.Time) error {
	c.ep.n.mu.Lock()
	defer c.ep.n.mu.Unlock()
	d := simDeadline(t)
	c.ep.readDeadline = d
	c.ep.writeDeadline = d
	return nil
}

// SetReadDeadline sets the read deadline (simulated clock).
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.ep.n.mu.Lock()
	defer c.ep.n.mu.Unlock()
	c.ep.readDeadline = simDeadline(t)
	return nil
}

// SetWriteDeadline sets the write deadline (simulated clock).
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.ep.n.mu.Lock()
	defer c.ep.n.mu.Unlock()
	c.ep.writeDeadline = simDeadline(t)
	return nil
}

// Stats returns a snapshot of the connection's transport counters.
func (c *Conn) Stats() EndpointStats {
	c.ep.n.mu.Lock()
	defer c.ep.n.mu.Unlock()
	return c.ep.stats
}

// Listener accepts simulated TCP connections on a (host, port),
// implementing net.Listener.
type Listener struct {
	n       *Network
	addr    Addr
	pending []*endpoint
	seen    map[*endpoint]*endpoint // client endpoint -> server endpoint
	closed  bool
}

var _ net.Listener = (*Listener)(nil)

// Listen binds a listener to the given host and port.
func (n *Network) Listen(host topology.HostID, port int) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.top.Host(host) == nil {
		return nil, fmt.Errorf("packetnet: unknown host %d", host)
	}
	if port <= 0 {
		return nil, fmt.Errorf("packetnet: invalid port %d", port)
	}
	a := Addr{Host: host, Port: port}
	if n.listeners[a] != nil {
		return nil, fmt.Errorf("packetnet: %s already in use", a)
	}
	l := &Listener{n: n, addr: a, seen: map[*endpoint]*endpoint{}}
	n.listeners[a] = l
	return l, nil
}

// handleSYN creates (or finds) the server endpoint for a connection
// attempt and answers with a SYN|ACK. Callers must hold n.mu.
func (l *Listener) handleSYN(seg segment) {
	if ep := l.seen[seg.src]; ep != nil {
		ep.receive(seg)
		return
	}
	ep := l.n.newEndpoint(l.addr, seg.srcAddr)
	ep.listener = l
	ep.peer = seg.src
	l.seen[seg.src] = ep
	ep.peerWnd = seg.wnd
	ep.absorb(seg) // consume the SYN byte before replying
	ep.pump()      // sends our SYN carrying ack=1: the SYN|ACK
}

// Accept blocks (driving the simulation) until a connection completes
// the handshake.
func (l *Listener) Accept() (net.Conn, error) {
	l.n.mu.Lock()
	defer l.n.mu.Unlock()
	for {
		if l.closed {
			return nil, net.ErrClosed
		}
		if len(l.pending) > 0 {
			ep := l.pending[0]
			l.pending = l.pending[1:]
			return &Conn{ep: ep}, nil
		}
		if err := l.n.driveLocked(noDeadline); err != nil {
			return nil, err
		}
	}
}

// Close unbinds the listener; pending un-accepted connections are
// dropped.
func (l *Listener) Close() error {
	l.n.mu.Lock()
	defer l.n.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	delete(l.n.listeners, l.addr)
	l.n.cond.Broadcast()
	return nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial opens a connection from a host to a listening (host, port),
// blocking (and driving the simulation) through the handshake. It fails
// fast when no listener is bound — the simulation is a single image, so
// "would a SYN be answered" is known immediately — and gives up after
// repeated SYN timeouts under heavy loss.
func (n *Network) Dial(src, dst topology.HostID, port int) (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.top.Host(src) == nil || n.top.Host(dst) == nil {
		return nil, fmt.Errorf("packetnet: unknown host %d or %d", src, dst)
	}
	ra := Addr{Host: dst, Port: port}
	if l := n.listeners[ra]; l == nil || l.closed {
		return nil, fmt.Errorf("packetnet: connection refused: no listener on %s", ra)
	}
	if _, err := n.paths.PathAt(src, dst, n.now); err != nil {
		return nil, fmt.Errorf("packetnet: no route from host %d to %d: %w", src, dst, err)
	}
	n.portSeq++
	ep := n.newEndpoint(Addr{Host: src, Port: ephemeralBase + n.portSeq}, ra)
	ep.pump() // sends the SYN
	for !ep.established {
		if ep.err != nil {
			return nil, ep.err
		}
		if ep.backoff > dialMaxBackoff {
			ep.err = fmt.Errorf("packetnet: connection to %s timed out", ra)
			ep.cancelTimer()
			return nil, ep.err
		}
		if err := n.driveLocked(noDeadline); err != nil {
			return nil, err
		}
	}
	return &Conn{ep: ep}, nil
}
