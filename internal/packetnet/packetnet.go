// Package packetnet is a deterministic, event-driven packet-level data
// plane over the synthetic Internet: where netsim answers "what is the
// expected state of this path right now", packetnet pushes individual
// packets through the same topology — per-link transmission time,
// propagation delay, bounded drop-tail FIFO queues, background load
// sampled from the netsim congestion model, and out-of-order delivery
// across path changes — in the style of netem-like userspace link
// emulators.
//
// On top of the raw data plane the package implements a TCP Reno
// endpoint (slow start, fast retransmit, RTO backoff — the same
// semantics as internal/tcpsim's rounds model, but running as real
// segments) and exposes it two ways:
//
//   - Network.Dial / Network.Listen return net.Conn / net.Listener
//     implementations on the simulated clock, so unmodified protocol
//     code written against the standard library runs over the simulated
//     topology (see examples/packetlevel).
//   - Network.Transfer runs a bulk flow entirely inside the event loop
//     and reports goodput — the entry point the PacketValidation
//     exhibit uses to compare packet-level throughput against the
//     closed-form Mathis model.
//
// Determinism: every random draw (per-packet loss, background state) is
// a pure function of (Config.Seed, packet ID, hop), the event queue
// breaks time ties by a monotone sequence number, and the simulated
// clock only advances inside the event loop, so a given seed produces
// bit-identical results at any host concurrency. The package is held to
// the repository determinism contract (detrand/detflow).
package packetnet

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"pathsel/internal/forward"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// Config tunes the data plane and the TCP endpoints.
type Config struct {
	// Seed drives every per-packet random draw.
	Seed int64

	// MSSBytes is the TCP payload per full segment; HeaderBytes is the
	// per-segment wire overhead (also the wire size of a pure ACK).
	MSSBytes    int
	HeaderBytes int

	// QueuePackets bounds each link's FIFO queue, in full-size packets:
	// a packet arriving at a link whose backlog exceeds this many
	// transmission times is dropped (drop-tail).
	QueuePackets int

	// InitialSSThresh and MaxWindow mirror tcpsim.Config: the initial
	// slow-start threshold and the receiver-window cap, in segments.
	InitialSSThresh float64
	MaxWindow       float64

	// RTOMinMs / RTOMaxMs clamp the retransmission timeout.
	RTOMinMs float64
	RTOMaxMs float64

	// SendBufBytes caps a connection's send buffer (Write blocks when
	// full); RecvWindowBytes is the flow-control window a receiver
	// advertises.
	SendBufBytes    int
	RecvWindowBytes int

	// SamplePeriodSec is the grid on which per-link background state
	// (utilization, loss, wandering propagation delay) is re-sampled
	// from netsim. Values are evaluated at grid boundaries, so sampled
	// state is independent of packet arrival order.
	SamplePeriodSec float64

	// ExtraDelayMs is added to every packet's one-way delivery and
	// ExtraLossProb drops every packet independently with the given
	// probability — the netem-style impairment knobs the monotonicity
	// tests sweep.
	ExtraDelayMs  float64
	ExtraLossProb float64

	// FixedUtilization, when non-negative, replaces the netsim
	// background model on every link: utilization is the given constant
	// everywhere, background loss is zero, and propagation delay is the
	// topology's static value. Negative (the default) samples netsim.
	FixedUtilization float64
}

// DefaultConfig mirrors the late-90s stack tcpsim models: 1460-byte
// segments, 64 KB windows (~45 segments), 200 ms minimum RTO.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		MSSBytes:         1460,
		HeaderBytes:      40,
		QueuePackets:     128,
		InitialSSThresh:  32,
		MaxWindow:        45,
		RTOMinMs:         200,
		RTOMaxMs:         60000,
		SendBufBytes:     256 << 10,
		RecvWindowBytes:  64 << 10,
		SamplePeriodSec:  5,
		FixedUtilization: -1,
	}
}

// Validate reports problems with the configuration.
func (c Config) Validate() error {
	switch {
	case c.MSSBytes <= 0:
		return errors.New("packetnet: MSSBytes must be positive")
	case c.HeaderBytes < 0:
		return errors.New("packetnet: HeaderBytes must be non-negative")
	case c.QueuePackets < 1:
		return errors.New("packetnet: QueuePackets must be at least 1")
	case c.InitialSSThresh < 1:
		return errors.New("packetnet: InitialSSThresh must be at least 1")
	case c.MaxWindow < 2:
		return errors.New("packetnet: MaxWindow must be at least 2")
	case c.RTOMinMs <= 0 || c.RTOMaxMs < c.RTOMinMs:
		return errors.New("packetnet: need 0 < RTOMinMs <= RTOMaxMs")
	case c.SendBufBytes < c.MSSBytes:
		return errors.New("packetnet: SendBufBytes must hold at least one segment")
	case c.RecvWindowBytes < c.MSSBytes:
		return errors.New("packetnet: RecvWindowBytes must hold at least one segment")
	case c.SamplePeriodSec <= 0:
		return errors.New("packetnet: SamplePeriodSec must be positive")
	case c.ExtraLossProb < 0 || c.ExtraLossProb > 1:
		return errors.New("packetnet: ExtraLossProb outside [0,1]")
	case c.ExtraDelayMs < 0:
		return errors.New("packetnet: ExtraDelayMs must be non-negative")
	case c.FixedUtilization >= 1:
		return errors.New("packetnet: FixedUtilization must be below 1")
	}
	return nil
}

// PathProvider resolves the forwarding path between two hosts at a
// simulated time. forward.Cache satisfies it for a converged network and
// dynamics.DelayedTimeline for a failing, reconverging one — swapping
// providers mid-flight is how path changes (and the resulting reordering)
// reach the data plane.
type PathProvider interface {
	PathAt(src, dst topology.HostID, t netsim.Time) (forward.Path, error)
}

// Epoch is the wall-clock instant corresponding to simulated time zero
// (midnight PST on a Monday, matching netsim.Time's bucketing).
// net.Conn deadlines are interpreted against this mapping: a deadline of
// Epoch.Add(90*time.Second) fires at simulated time 90.
var Epoch = time.Date(1999, time.March, 1, 0, 0, 0, 0, time.FixedZone("PST", -8*3600))

// NetStats counts data-plane events since the network was created.
type NetStats struct {
	// PacketsSent counts packets injected into the data plane.
	PacketsSent int
	// QueueDrops counts drop-tail losses at full link queues.
	QueueDrops int
	// RandomLosses counts background (netsim) and ExtraLossProb drops.
	RandomLosses int
	// Unroutable counts packets dropped because no path existed.
	Unroutable int
}

// Network is one simulated data plane: an event loop, per-link queue
// state, and the registered listeners and connections. All methods are
// safe for concurrent use; the simulated clock advances only while some
// goroutine is blocked inside the event loop (Dial, Accept, Read, Write,
// Transfer), never behind the caller's back.
type Network struct {
	top   *topology.Topology
	ns    *netsim.Network
	paths PathProvider
	cfg   Config

	mu   sync.Mutex
	cond *sync.Cond

	q   eventHeap
	now netsim.Time

	eventSeq uint64 // event-queue tiebreaker
	pktSeq   uint64 // per-packet ID driving loss draws
	portSeq  int    // ephemeral port allocator

	links     map[topology.LinkID]*linkState
	accessUp  map[topology.HostID]*linkState
	accessDn  map[topology.HostID]*linkState
	listeners map[Addr]*Listener

	stats NetStats
}

// New creates a data plane over the given topology. ns supplies the
// background congestion state (may not be nil); paths resolves
// forwarding paths (use forward.NewCache(fwd) for a converged network).
func New(top *topology.Topology, ns *netsim.Network, paths PathProvider, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if top == nil || ns == nil || paths == nil {
		return nil, errors.New("packetnet: nil topology, netsim or path provider")
	}
	n := &Network{
		top:       top,
		ns:        ns,
		paths:     paths,
		cfg:       cfg,
		links:     map[topology.LinkID]*linkState{},
		accessUp:  map[topology.HostID]*linkState{},
		accessDn:  map[topology.HostID]*linkState{},
		listeners: map[Addr]*Listener{},
	}
	n.cond = sync.NewCond(&n.mu)
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current simulated time.
func (n *Network) Now() netsim.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// WallClock maps the current simulated time onto the wall-clock epoch,
// for computing net.Conn deadlines without reading the real clock.
func (n *Network) WallClock() time.Time {
	return Epoch.Add(time.Duration(float64(n.Now()) * float64(time.Second)))
}

// Stats returns a snapshot of the data-plane counters.
func (n *Network) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// --- event queue ---

// event is one scheduled callback. Ordering is (at, seq): seq is the
// scheduling order, so simultaneous events run in the deterministic
// order they were created.
type event struct {
	at  netsim.Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events ordered by (at, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h).less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	nn := len(old) - 1
	old[0] = old[nn]
	old[nn] = event{} // release the closure
	*h = old[:nn]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < nn && (*h).less(l, small) {
			small = l
		}
		if r < nn && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// schedule enqueues fn at the given simulated time (clamped to now:
// events are never scheduled in the past, so timestamps are monotone and
// non-negative). Callers must hold n.mu.
func (n *Network) schedule(at netsim.Time, fn func()) {
	if math.IsNaN(float64(at)) {
		panic("packetnet: NaN event time")
	}
	if at < n.now {
		at = n.now
	}
	if at < 0 {
		panic("packetnet: negative event time")
	}
	n.eventSeq++
	n.q.push(event{at: at, seq: n.eventSeq, fn: fn})
	// A blocked driver may be waiting for new work.
	n.cond.Broadcast()
}

// stepLocked pops and runs the next event, advancing the clock. Callers
// must hold n.mu and have checked the queue is non-empty.
func (n *Network) stepLocked() {
	ev := n.q.pop()
	if ev.at > n.now {
		n.now = ev.at
	}
	ev.fn()
	n.cond.Broadcast()
}

// noDeadline disables deadline checking in driveLocked.
const noDeadline = netsim.Time(-1)

// driveLocked advances the simulation by (at most) one step on behalf of
// a blocked operation: it runs the next event if one exists, waits for
// another goroutine to inject work if the queue is empty, and enforces
// the operation's deadline on the simulated clock. The caller re-checks
// its wake condition after every return. Callers must hold n.mu.
func (n *Network) driveLocked(deadline netsim.Time) error {
	if deadline >= 0 && n.now >= deadline {
		return errTimeout
	}
	if len(n.q) == 0 {
		if deadline >= 0 {
			// No scheduled work exists, so simulated time can only
			// reach the deadline by jumping there.
			n.now = deadline
			return errTimeout
		}
		n.cond.Wait()
		return nil
	}
	if deadline >= 0 && n.q[0].at >= deadline {
		n.now = deadline
		return errTimeout
	}
	n.stepLocked()
	// Rotate driver duty: hand the lock to any other blocked operation
	// whose wake condition the event just satisfied, so one driver
	// stepping a long event chain cannot starve the rest. Event order
	// is fixed by the heap either way, so rotation does not affect the
	// simulation outcome.
	n.mu.Unlock()
	runtime.Gosched()
	n.mu.Lock()
	return nil
}

// runUntil drains every event scheduled at or before end and advances
// the clock to end. It is the synchronous entry point Transfer uses.
func (n *Network) runUntil(end netsim.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.q) > 0 && n.q[0].at <= end {
		n.stepLocked()
	}
	if n.now < end {
		n.now = end
	}
}

// --- deterministic hashing (splitmix64-style, as in netsim) ---

// mix64 mixes three 64-bit values into one.
func mix64(a, b, c uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F ^ c*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unit converts a hash to a float64 in [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
