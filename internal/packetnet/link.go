// Link model: every hop a packet crosses — the source access uplink,
// each core link on the forwarding path, the destination access
// downlink — is a bounded drop-tail FIFO in front of a serial
// transmitter, following the netem decomposition of link latency into
// transmission time, queuing delay and propagation delay. Background
// traffic enters twice, both terms sampled from netsim on a fixed time
// grid: as residual capacity (a utilization-u link serves our packets
// at (1-u) of line rate) and as the standing queue already in front of
// the link (netsim's expected queuing delay).

package packetnet

import (
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// residFloor caps the residual-capacity slowdown: a link at 99%+
// utilization still serves at 1% of line rate rather than stalling.
const residFloor = 0.01

// linkState is the mutable per-hop queue plus the background state
// sampled for the current grid bucket. One instance exists per core
// link direction and per host access-link direction.
type linkState struct {
	// busyUntil is when the transmitter finishes the last queued packet,
	// in seconds of simulated time; the backlog at time t is
	// busyUntil - t.
	busyUntil float64

	// bucket is 1 + the sample-grid index the fields below were
	// evaluated for (0 = never sampled).
	bucket int64

	propSec    float64 // propagation + standing background queue, one way
	lossProb   float64 // per-packet background loss
	secPerByte float64 // transmission seconds per wire byte at residual capacity
}

// sampleCore refreshes a core link's background state if t has crossed
// into a new grid bucket. State is evaluated at the bucket start, so the
// result is independent of which packet happened to arrive first.
func (n *Network) sampleCore(ls *linkState, l *topology.Link, t netsim.Time) {
	b := int64(float64(t)/n.cfg.SamplePeriodSec) + 1
	if ls.bucket == b {
		return
	}
	ls.bucket = b
	ts := netsim.Time(float64(b-1) * n.cfg.SamplePeriodSec)
	u := n.cfg.FixedUtilization
	if u >= 0 {
		ls.propSec = l.PropDelayMs / 1000
		ls.lossProb = 0
	} else {
		u = n.ns.Utilization(l.ID, ts)
		ls.propSec = (n.ns.LinkPropMs(l.ID, ts) + n.ns.QueueDelayMs(l.ID, ts)) / 1000
		ls.lossProb = n.ns.LossProb(l.ID, ts)
	}
	resid := 1 - u
	if resid < residFloor {
		resid = residFloor
	}
	ls.secPerByte = 8 / (l.CapacityMbps * 1e6 * resid)
}

// sampleAccess refreshes a host access link's state. Access links have
// no modeled cross-traffic competing for capacity, so the full
// configured rate applies; netsim's access model supplies the expected
// queuing delay and loss.
func (n *Network) sampleAccess(ls *linkState, h *topology.Host, t netsim.Time) {
	b := int64(float64(t)/n.cfg.SamplePeriodSec) + 1
	if ls.bucket == b {
		return
	}
	ls.bucket = b
	ts := netsim.Time(float64(b-1) * n.cfg.SamplePeriodSec)
	if n.cfg.FixedUtilization >= 0 {
		ls.propSec = h.AccessDelayMs / 1000
		ls.lossProb = 0
	} else {
		d, l, _ := n.ns.HostAccessState(h.ID, ts)
		ls.propSec = d / 1000
		ls.lossProb = l
	}
	ls.secPerByte = 8 / (h.AccessCapacityMbps * 1e6)
}

// coreLink returns the queue state for a core link, creating it on
// first use.
func (n *Network) coreLink(lid topology.LinkID) *linkState {
	ls := n.links[lid]
	if ls == nil {
		ls = &linkState{}
		n.links[lid] = ls
	}
	return ls
}

// accessLink returns the queue state for a host's access link in the
// given direction (up = host to network).
func (n *Network) accessLink(h topology.HostID, up bool) *linkState {
	m := n.accessDn
	if up {
		m = n.accessUp
	}
	ls := m[h]
	if ls == nil {
		ls = &linkState{}
		m[h] = ls
	}
	return ls
}

// hopSalt values keep the per-hop loss draws of one packet independent.
const (
	saltAccessUp = uint64(1) << 40
	saltAccessDn = uint64(2) << 40
	saltExtra    = uint64(3) << 40
)

// traverse pushes one packet through a sampled hop at time t and
// returns the arrival time at the far end, or ok=false when the packet
// is dropped (drop-tail on a full queue, or a background loss draw).
// Callers must hold n.mu and must have sampled ls for time t.
func (n *Network) traverse(ls *linkState, wire int, pktID, hopSalt uint64, t netsim.Time) (netsim.Time, bool) {
	now := float64(t)
	backlog := ls.busyUntil - now
	if backlog < 0 {
		backlog = 0
	}
	// Drop-tail: the queue holds at most QueuePackets full-size packets'
	// worth of transmission time.
	full := float64(n.cfg.MSSBytes+n.cfg.HeaderBytes) * ls.secPerByte
	if backlog > float64(n.cfg.QueuePackets)*full {
		n.stats.QueueDrops++
		return 0, false
	}
	if ls.lossProb > 0 && unit(mix64(uint64(n.cfg.Seed), pktID, hopSalt)) < ls.lossProb {
		n.stats.RandomLosses++
		return 0, false
	}
	done := now + backlog + float64(wire)*ls.secPerByte
	// Scheduler invariants, exercised by FuzzDataPlane: service
	// completions on one link are FIFO (monotone), and an admitted
	// packet's wait never exceeds the configured queue bound plus its
	// own service time.
	if done < ls.busyUntil {
		panic("packetnet: link FIFO order violated")
	}
	if backlog > (float64(n.cfg.QueuePackets)+1)*full {
		panic("packetnet: link queue exceeded its bound")
	}
	ls.busyUntil = done
	return netsim.Time(done + ls.propSec), true
}

// sendSegment resolves the current path for a segment and schedules its
// hop-by-hop traversal. Dropped packets simply vanish — reliability is
// the transport's job. Callers must hold n.mu.
func (n *Network) sendSegment(src, dst topology.HostID, seg segment) {
	n.pktSeq++
	pktID := n.pktSeq
	n.stats.PacketsSent++
	path, err := n.paths.PathAt(src, dst, n.now)
	if err != nil {
		n.stats.Unroutable++
		return
	}
	if n.cfg.ExtraLossProb > 0 &&
		unit(mix64(uint64(n.cfg.Seed), pktID, saltExtra)) < n.cfg.ExtraLossProb {
		n.stats.RandomLosses++
		return
	}
	wire := seg.payloadLen + n.cfg.HeaderBytes

	// Source access uplink.
	hs, hd := n.top.Host(src), n.top.Host(dst)
	up := n.accessLink(src, true)
	n.sampleAccess(up, hs, n.now)
	at, ok := n.traverse(up, wire, pktID, saltAccessUp, n.now)
	if !ok {
		return
	}

	// Core links, then the destination access downlink, each entered by
	// a scheduled event at the packet's arrival time so queue state is
	// read at the right simulated instant.
	links := path.Links
	var hop func(i int, t netsim.Time)
	hop = func(i int, t netsim.Time) {
		if i < len(links) {
			l := n.top.Link(links[i])
			ls := n.coreLink(links[i])
			n.sampleCore(ls, l, t)
			next, ok := n.traverse(ls, wire, pktID, uint64(links[i]), t)
			if !ok {
				return
			}
			n.schedule(next, func() { hop(i+1, next) })
			return
		}
		dn := n.accessLink(dst, false)
		n.sampleAccess(dn, hd, t)
		next, ok := n.traverse(dn, wire, pktID, saltAccessDn, t)
		if !ok {
			return
		}
		next += netsim.Time(n.cfg.ExtraDelayMs / 1000)
		n.schedule(next, func() { n.deliver(seg) })
	}
	n.schedule(at, func() { hop(0, at) })
}

// deliver hands a segment that survived the data plane to its endpoint,
// or to a matching listener for SYNs. Callers must hold n.mu.
func (n *Network) deliver(seg segment) {
	if seg.dst != nil {
		seg.dst.receive(seg)
		return
	}
	// SYN addressed to a listener.
	lst := n.listeners[seg.dstAddr]
	if lst == nil || lst.closed {
		return // connection refused: no RST modeled, the SYN times out
	}
	lst.handleSYN(seg)
}
