package packetnet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// fixture bundles one generated internet and its routing planes.
type fixture struct {
	top *topology.Topology
	ns  *netsim.Network
	fwd *forward.Forwarder
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

// sharedFixture builds one Era1999 topology per test binary; Networks
// are cheap, so each test creates its own over the shared substrate.
func sharedFixture(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		cfg := topology.DefaultConfig(topology.Era1999)
		cfg.Seed = 7
		top, err := topology.Generate(cfg)
		if err != nil {
			fixErr = err
			return
		}
		g := igp.New(top, igp.DefaultConfig())
		table, err := bgp.Compute(top)
		if err != nil {
			fixErr = err
			return
		}
		nsCfg := netsim.DefaultConfig()
		nsCfg.Seed = 7
		fix = &fixture{top: top, ns: netsim.New(top, nsCfg), fwd: forward.New(top, g, table)}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

// newNet builds a Network over the shared substrate. Each Network gets
// its own forward.Cache (the cache is not safe for concurrent use).
func newNet(t testing.TB, cfg Config) *Network {
	t.Helper()
	fx := sharedFixture(t)
	n, err := New(fx.top, fx.ns, forward.NewCache(fx.fwd), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// pairHosts returns two distinct hosts from the shared fixture.
func pairHosts(t testing.TB, i, j int) (topology.HostID, topology.HostID) {
	t.Helper()
	fx := sharedFixture(t)
	hosts := fx.top.Hosts
	if len(hosts) < 2 {
		t.Fatal("fixture has fewer than two hosts")
	}
	return hosts[i%len(hosts)].ID, hosts[j%len(hosts)].ID
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.MSSBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero MSS accepted")
	}
	bad = DefaultConfig()
	bad.ExtraLossProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("loss probability above 1 accepted")
	}
	bad = DefaultConfig()
	bad.FixedUtilization = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("FixedUtilization of 1 accepted")
	}
}

func TestTransferDeliversBytes(t *testing.T) {
	n := newNet(t, DefaultConfig())
	src, dst := pairHosts(t, 0, 1)
	st, err := n.Transfer(src, dst, 0, 10)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if st.Delivered <= 0 {
		t.Fatalf("no bytes delivered: %+v", st)
	}
	if st.GoodputKBs <= 0 {
		t.Fatalf("non-positive goodput: %+v", st)
	}
	if st.SRTTMs <= 0 {
		t.Fatalf("no RTT estimate: %+v", st)
	}
	if st.Net.PacketsSent <= 0 {
		t.Fatalf("no packets on the wire: %+v", st)
	}
	t.Logf("transfer: %d bytes, %.1f KB/s, srtt %.1f ms, %d segments (%d retx, %d timeouts, %d fastrtx), %d queue drops, %d random losses",
		st.Delivered, st.GoodputKBs, st.SRTTMs, st.Sender.SegmentsSent,
		st.Sender.Retransmits, st.Sender.Timeouts, st.Sender.FastRetransmits,
		st.Net.QueueDrops, st.Net.RandomLosses)
}

func TestTransferDeterministicAcrossRuns(t *testing.T) {
	src, dst := pairHosts(t, 0, 1)
	run := func() TransferStats {
		n := newNet(t, DefaultConfig())
		st, err := n.Transfer(src, dst, 100, 15)
		if err != nil {
			t.Fatalf("Transfer: %v", err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed transfers differ:\n%+v\n%+v", a, b)
	}
}

func TestTransferSeedSensitivity(t *testing.T) {
	src, dst := pairHosts(t, 0, 1)
	cfg := DefaultConfig()
	cfg.ExtraLossProb = 0.02 // make the seed-driven loss draws matter
	run := func(seed int64) TransferStats {
		c := cfg
		c.Seed = seed
		n := newNet(t, c)
		st, err := n.Transfer(src, dst, 0, 15)
		if err != nil {
			t.Fatalf("Transfer: %v", err)
		}
		return st
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical transfer statistics")
	}
}

func TestTransferStartBeforeNowRejected(t *testing.T) {
	n := newNet(t, DefaultConfig())
	src, dst := pairHosts(t, 0, 1)
	if _, err := n.Transfer(src, dst, 50, 5); err != nil {
		t.Fatalf("first transfer: %v", err)
	}
	if _, err := n.Transfer(src, dst, 10, 5); err == nil {
		t.Fatal("transfer starting in the past accepted")
	}
}

// TestEchoOverConn runs an unmodified echo server and client over the
// dial/listen API: net.Conn code with no knowledge of the simulation.
func TestEchoOverConn(t *testing.T) {
	n := newNet(t, DefaultConfig())
	srvHost, cliHost := pairHosts(t, 0, 1)
	l, err := n.Listen(srvHost, 80)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c) // the standard echo loop
	}()

	c, err := n.Dial(cliHost, srvHost, 80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	msg := []byte("hello over the simulated internet")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
	if n.Now() <= 0 {
		t.Fatal("simulated clock did not advance")
	}
}

// TestBulkStreamIntegrity pushes a patterned stream through a
// connection under packet loss and verifies every byte arrives intact
// and in order.
func TestBulkStreamIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExtraLossProb = 0.02
	n := newNet(t, cfg)
	srvHost, cliHost := pairHosts(t, 2, 3)
	l, err := n.Listen(srvHost, 9000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	const total = 512 << 10
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i*7 + i>>8)
	}

	errc := make(chan error, 1)
	go func() {
		c, err := n.Dial(cliHost, srvHost, 9000)
		if err != nil {
			errc <- err
			return
		}
		_, err = c.Write(payload)
		c.Close()
		errc <- err
	}()

	sc, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	got, err := io.ReadAll(sc)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted: got %d bytes, want %d (content match: %v)",
			len(got), len(payload), bytes.Equal(got, payload))
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	n := newNet(t, DefaultConfig())
	src, dst := pairHosts(t, 0, 1)
	if _, err := n.Dial(src, dst, 4444); err == nil {
		t.Fatal("dial to unbound port succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	n := newNet(t, DefaultConfig())
	srvHost, cliHost := pairHosts(t, 0, 1)
	l, err := n.Listen(srvHost, 7)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			io.Copy(io.Discard, c) // never writes back
		}
	}()
	c, err := n.Dial(cliHost, srvHost, 7)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	// One simulated second past "now".
	if err := c.SetReadDeadline(n.WallClock().Add(1e9)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	_, err = c.Read(make([]byte, 1))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("Read past deadline returned %v, want a timeout", err)
	}
}

// TestReorderingAcrossPathChange swaps the forwarding path mid-transfer
// and checks that the receiver observes out-of-order segments while the
// stream still completes correctly.
func TestReorderingAcrossPathChange(t *testing.T) {
	fx := sharedFixture(t)
	g := igp.New(fx.top, igp.DefaultConfig())
	table := mustTable(t, fx.top)

	// Find a host pair with two paths of meaningfully different
	// propagation delay: switching from the slow one to the fast one
	// mid-flight makes late packets overtake earlier ones.
	// A sender's access uplink spaces back-to-back packets by roughly
	// one transmission time, so overtaking needs the path-delay gap to
	// exceed that spacing by a healthy margin.
	var src, dst topology.HostID
	var direct, detour forward.Path
	bestDiff := 0.0
	base := forward.NewCache(fx.fwd)
	for i := 0; i < len(fx.top.Hosts); i++ {
		for j := i + 1; j < len(fx.top.Hosts); j++ {
			a, b := fx.top.Hosts[i].ID, fx.top.Hosts[j].ID
			p, err := base.PathAt(a, b, 0)
			if err != nil || len(p.Links) == 0 {
				continue
			}
			for _, lid := range p.Links {
				f2 := forward.NewWithExclusions(fx.top, g, table, map[topology.LinkID]bool{lid: true})
				alt, err := f2.HostPath(a, b)
				if err != nil {
					continue
				}
				d := alt.PropDelayMs(fx.top) - p.PropDelayMs(fx.top)
				if d < 0 {
					d = -d
				}
				if d > bestDiff {
					bestDiff = d
					src, dst, direct, detour = a, b, p, alt
				}
			}
		}
	}
	if bestDiff < 20 {
		t.Skipf("largest detour delay gap is %.1f ms; too small to force overtaking", bestDiff)
	}
	t.Logf("pair host%d->host%d: direct %.1f ms vs detour %.1f ms propagation",
		src, dst, direct.PropDelayMs(fx.top), detour.PropDelayMs(fx.top))

	longFirst, shortSecond := direct, detour
	if detour.PropDelayMs(fx.top) > direct.PropDelayMs(fx.top) {
		longFirst, shortSecond = detour, direct
	}
	const switchAt = netsim.Time(4)
	pp := &switchingProvider{before: longFirst, after: shortSecond, at: switchAt}

	cfg := DefaultConfig()
	cfg.FixedUtilization = 0.3 // quiet background so reordering is from the switch
	// An ack-clocked, window-limited flow cannot reorder across a path
	// switch — by the time an ack returns, everything sent earlier has
	// arrived. Open the window far beyond the bandwidth-delay product
	// so a standing uplink backlog forms and packets straddle the
	// switch back-to-back.
	cfg.MaxWindow = 400
	cfg.InitialSSThresh = 400
	cfg.QueuePackets = 256
	cfg.RecvWindowBytes = 1 << 20 // keep flow control out of the way
	n, err := New(fx.top, fx.ns, pp, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := n.Transfer(src, dst, 0, 8)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if st.Receiver.OutOfOrder == 0 {
		t.Fatalf("no out-of-order arrivals across a path change: %+v", st)
	}
	if st.Delivered <= 0 {
		t.Fatalf("stream did not progress: %+v", st)
	}
}

func mustTable(t *testing.T, top *topology.Topology) *bgp.Table {
	t.Helper()
	table, err := bgp.Compute(top)
	if err != nil {
		t.Fatalf("bgp.Compute: %v", err)
	}
	return table
}

// switchingProvider serves one fixed path before the switch time and
// another after it.
type switchingProvider struct {
	before, after forward.Path
	at            netsim.Time
}

func (s *switchingProvider) PathAt(_, _ topology.HostID, t netsim.Time) (forward.Path, error) {
	if t < s.at {
		return s.before, nil
	}
	return s.after, nil
}
