package shard

import (
	"fmt"
	"testing"
)

func TestLookupDeterministicAndConsistent(t *testing.T) {
	a := New(0)
	b := New(0)
	// Insertion order must not matter.
	for _, n := range []string{"w1", "w2", "w3"} {
		a.Add(n)
	}
	for _, n := range []string{"w3", "w1", "w2"} {
		b.Add(n)
	}
	for seed := int64(0); seed < 200; seed++ {
		k := Key(seed, "quick")
		ga, gb := a.Lookup(k, 3), b.Lookup(k, 3)
		if len(ga) != 3 || len(gb) != 3 {
			t.Fatalf("key %s: lookup lengths %d/%d", k, len(ga), len(gb))
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("key %s: rings disagree: %v vs %v", k, ga, gb)
			}
		}
		seen := map[string]bool{}
		for _, n := range ga {
			if seen[n] {
				t.Fatalf("key %s: duplicate node in %v", k, ga)
			}
			seen[n] = true
		}
	}
}

func TestRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	r := New(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	before := map[string]string{}
	for seed := int64(0); seed < 500; seed++ {
		k := Key(seed, "full")
		before[k] = r.Lookup(k, 1)[0]
	}
	r.Remove("w2")
	moved := 0
	for k, owner := range before {
		now := r.Lookup(k, 1)[0]
		if now == "w2" {
			t.Fatalf("key %s still maps to removed node", k)
		}
		if owner != "w2" && now != owner {
			t.Errorf("key %s moved %s -> %s though its owner survived", k, owner, now)
		}
		if owner == "w2" {
			moved++
		}
	}
	// w2 owned roughly a quarter of the keyspace.
	if moved < 50 || moved > 250 {
		t.Errorf("removed node owned %d/500 keys; want roughly 125", moved)
	}
}

func TestBalance(t *testing.T) {
	r := New(0)
	workers := []string{"a", "b", "c"}
	for _, w := range workers {
		r.Add(w)
	}
	counts := map[string]int{}
	const keys = 3000
	for seed := int64(0); seed < keys; seed++ {
		for _, preset := range []string{"quick", "full"} {
			counts[r.Lookup(Key(seed, preset), 1)[0]]++
		}
	}
	for _, w := range workers {
		frac := float64(counts[w]) / (2 * keys)
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("worker %s owns %.1f%% of keys; want near 33%%", w, 100*frac)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	r := New(4)
	if got := r.Lookup("x", 2); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
	r.Add("only")
	if got := r.Lookup("x", 5); len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-node lookup returned %v", got)
	}
	r.Add("only") // idempotent
	if r.Len() != 1 {
		t.Fatalf("double add grew ring to %d", r.Len())
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if r.Len() != 0 || r.Lookup("x", 1) != nil {
		t.Fatal("ring not empty after removal")
	}
}
