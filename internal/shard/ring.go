// Package shard provides the consistent-hash ring the serve router
// uses to spread the (seed, preset) suite keyspace over worker
// processes. Each worker owns a contiguous arc of the hash circle via
// a fixed number of virtual points, so adding or removing one worker
// remaps only the keys on its arcs (≈1/N of the keyspace) instead of
// reshuffling everything — exactly the property a suite cache wants,
// since a remapped key costs a multi-second rebuild on its new owner.
// The ring is deterministic: the same node set always produces the
// same placement, so independent routers agree without coordination.
//
// The ring itself is not synchronized; callers that mutate it
// concurrently with lookups must hold their own lock.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-point count per node. 128 keeps the
// keyspace imbalance between workers within a few percent for small
// fleets while the ring stays tiny (N×128 points).
const DefaultReplicas = 128

// point is one virtual node position on the hash circle.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over named nodes.
type Ring struct {
	replicas int
	points   []point // sorted by hash
	nodes    map[string]bool
}

// New returns an empty ring with the given virtual-point count per
// node (0 means DefaultReplicas).
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: map[string]bool{}}
}

// hashString is FNV-1a 64 followed by a murmur-style finalizer; stable
// across processes and Go versions, which is what makes independent
// routers agree. The finalizer matters: raw FNV-1a of short strings
// ("w1#7") leaves the high bits badly biased, bunching every virtual
// point on one arc of the circle and defeating the balance the ring
// exists to provide.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a node's virtual points. Adding a present node is a
// no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: hashString(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break lexically so placement
		// stays deterministic regardless of insertion order.
		return r.points[i].node < r.points[j].node
	})
}

// Remove drops a node and its virtual points. Removing an absent node
// is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns up to n distinct nodes for key: the owner first, then
// the successors met walking the circle clockwise — the retry order a
// router should use when the owner is down. Returns nil on an empty
// ring.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Key renders the canonical ring key for a suite configuration. Every
// component that shards the suite keyspace routes through it, so the
// placement function is identical everywhere.
func Key(seed int64, preset string) string {
	return fmt.Sprintf("%d/%s", seed, preset)
}
