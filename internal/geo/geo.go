// Package geo provides the geographic embedding used by the synthetic
// Internet topology: host and router locations, great-circle distances,
// and the propagation delay implied by the speed of light in fiber.
//
// The paper's datasets distinguish North American hosts (D2-NA, N2-NA,
// UW1, UW3, UW4) from a world-wide mix (D2, N2); the Region type models
// that split so that dataset generators can reproduce the trans-oceanic
// latency differences visible in the paper's Figures 1 and 4.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// EarthRadiusKm is the mean radius of the Earth in kilometers.
const EarthRadiusKm = 6371.0

// SpeedOfLightKmPerMs is the speed of light in vacuum, in km per millisecond.
const SpeedOfLightKmPerMs = 299.792458

// FiberVelocityFactor is the typical ratio of signal speed in optical
// fiber to the speed of light in vacuum (~2/3).
const FiberVelocityFactor = 0.66

// RouteIndirection inflates geographic distance to account for the fact
// that fiber paths follow conduits, not great circles.
const RouteIndirection = 1.35

// Point is a location on the Earth's surface.
type Point struct {
	LatDeg float64 // latitude in degrees, positive north
	LonDeg float64 // longitude in degrees, positive east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f,%.2f)", p.LatDeg, p.LonDeg)
}

// Valid reports whether the point lies within the legal lat/lon ranges.
func (p Point) Valid() bool {
	return p.LatDeg >= -90 && p.LatDeg <= 90 && p.LonDeg >= -180 && p.LonDeg <= 180
}

// DistanceKm returns the great-circle distance between two points in
// kilometers, computed with the haversine formula.
func DistanceKm(a, b Point) float64 {
	lat1 := a.LatDeg * math.Pi / 180
	lat2 := b.LatDeg * math.Pi / 180
	dLat := (b.LatDeg - a.LatDeg) * math.Pi / 180
	dLon := (b.LonDeg - a.LonDeg) * math.Pi / 180

	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// PropagationDelayMs returns the one-way propagation delay in
// milliseconds for a direct fiber link between two points, including the
// conduit-indirection factor.
func PropagationDelayMs(a, b Point) float64 {
	km := DistanceKm(a, b) * RouteIndirection
	return km / (SpeedOfLightKmPerMs * FiberVelocityFactor)
}

// Region identifies a coarse geographic area from which hosts are drawn.
type Region int

const (
	// NorthAmerica covers the continental US and southern Canada.
	NorthAmerica Region = iota
	// Europe covers western and central Europe.
	Europe
	// AsiaPacific covers east Asia and Oceania.
	AsiaPacific
	// World is the union of all regions.
	World
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "north-america"
	case Europe:
		return "europe"
	case AsiaPacific:
		return "asia-pacific"
	case World:
		return "world"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// box is an axis-aligned lat/lon rectangle.
type box struct {
	latMin, latMax float64
	lonMin, lonMax float64
}

var regionBoxes = map[Region][]box{
	NorthAmerica: {
		{latMin: 30, latMax: 49, lonMin: -123, lonMax: -70},
	},
	Europe: {
		{latMin: 40, latMax: 58, lonMin: -8, lonMax: 25},
	},
	AsiaPacific: {
		{latMin: -38, latMax: 40, lonMin: 103, lonMax: 152},
	},
}

// worldWeights gives the sampling mix for Region World, roughly matching
// the geographic spread of the paper's D2/N2 host sets (majority North
// American with substantial European and Asia-Pacific minorities).
var worldWeights = []struct {
	region Region
	weight float64
}{
	{NorthAmerica, 0.55},
	{Europe, 0.30},
	{AsiaPacific, 0.15},
}

// RandomPoint draws a uniformly distributed point within the region using
// the supplied source of randomness.
func RandomPoint(rng *rand.Rand, r Region) Point {
	if r == World {
		x := rng.Float64()
		acc := 0.0
		for _, w := range worldWeights {
			acc += w.weight
			if x < acc {
				r = w.region
				break
			}
		}
		if r == World { // numeric slack: fall through to the last region
			r = worldWeights[len(worldWeights)-1].region
		}
	}
	boxes := regionBoxes[r]
	b := boxes[rng.Intn(len(boxes))]
	return Point{
		LatDeg: b.latMin + rng.Float64()*(b.latMax-b.latMin),
		LonDeg: b.lonMin + rng.Float64()*(b.lonMax-b.lonMin),
	}
}

// Contains reports whether the point falls inside the region.
func Contains(r Region, p Point) bool {
	if r == World {
		return true
	}
	for _, b := range regionBoxes[r] {
		if p.LatDeg >= b.latMin && p.LatDeg <= b.latMax &&
			p.LonDeg >= b.lonMin && p.LonDeg <= b.lonMax {
			return true
		}
	}
	return false
}

// Jitter returns a point displaced from p by up to radiusKm kilometers in
// a random direction, clamped to legal coordinates. It is used to place
// routers near their AS's home location.
func Jitter(rng *rand.Rand, p Point, radiusKm float64) Point {
	// Draw a displacement uniformly within the disc of the given radius.
	angle := rng.Float64() * 2 * math.Pi
	dist := radiusKm * math.Sqrt(rng.Float64())
	dLat := (dist / EarthRadiusKm) * (180 / math.Pi) * math.Sin(angle)
	cos := math.Cos(p.LatDeg * math.Pi / 180)
	if math.Abs(cos) < 1e-6 {
		cos = 1e-6
	}
	dLon := (dist / EarthRadiusKm) * (180 / math.Pi) * math.Cos(angle) / cos
	q := Point{LatDeg: p.LatDeg + dLat, LonDeg: p.LonDeg + dLon}
	if q.LatDeg > 90 {
		q.LatDeg = 90
	}
	if q.LatDeg < -90 {
		q.LatDeg = -90
	}
	for q.LonDeg > 180 {
		q.LonDeg -= 360
	}
	for q.LonDeg < -180 {
		q.LonDeg += 360
	}
	return q
}
