package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Known city coordinates for distance sanity checks.
var (
	seattle  = Point{LatDeg: 47.61, LonDeg: -122.33}
	boston   = Point{LatDeg: 42.36, LonDeg: -71.06}
	london   = Point{LatDeg: 51.51, LonDeg: -0.13}
	tokyo    = Point{LatDeg: 35.68, LonDeg: 139.69}
	sydney   = Point{LatDeg: -33.87, LonDeg: 151.21}
	santiago = Point{LatDeg: -33.45, LonDeg: -70.67}
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name    string
		a, b    Point
		wantKm  float64
		tolerKm float64
	}{
		{"seattle-boston", seattle, boston, 4000, 100},
		{"london-tokyo", london, tokyo, 9560, 150},
		{"sydney-santiago", sydney, santiago, 11340, 200},
		{"same-point", seattle, seattle, 0, 0.001},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := DistanceKm(c.a, c.b)
			if math.Abs(got-c.wantKm) > c.tolerKm {
				t.Errorf("DistanceKm(%v,%v) = %.1f, want %.1f±%.1f", c.a, c.b, got, c.wantKm, c.tolerKm)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{LatDeg: clamp(lat1, -90, 90), LonDeg: clamp(lon1, -180, 180)}
		b := Point{LatDeg: clamp(lat2, -90, 90), LonDeg: clamp(lon2, -180, 180)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeAndBounded(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{LatDeg: clamp(lat1, -90, 90), LonDeg: clamp(lon1, -180, 180)}
		b := Point{LatDeg: clamp(lat2, -90, 90), LonDeg: clamp(lon2, -180, 180)}
		d := DistanceKm(a, b)
		// Max great-circle distance is half the circumference.
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := RandomPoint(rng, World)
		b := RandomPoint(rng, World)
		c := RandomPoint(rng, World)
		if DistanceKm(a, c) > DistanceKm(a, b)+DistanceKm(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	// Seattle-Boston is ~4000 km; with indirection 1.35 and 0.66c fiber,
	// one-way delay should be roughly 27 ms.
	d := PropagationDelayMs(seattle, boston)
	if d < 20 || d > 35 {
		t.Errorf("PropagationDelayMs(seattle,boston) = %.1f ms, want ~27 ms", d)
	}
	if PropagationDelayMs(seattle, seattle) != 0 {
		t.Errorf("zero-distance delay should be 0")
	}
}

func TestPropagationDelayMonotone(t *testing.T) {
	// Longer distance implies at least as much delay.
	if PropagationDelayMs(seattle, boston) >= PropagationDelayMs(seattle, tokyo) {
		t.Errorf("delay should grow with distance")
	}
}

func TestRandomPointInRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, r := range []Region{NorthAmerica, Europe, AsiaPacific} {
		for i := 0; i < 100; i++ {
			p := RandomPoint(rng, r)
			if !p.Valid() {
				t.Fatalf("invalid point %v for region %v", p, r)
			}
			if !Contains(r, p) {
				t.Fatalf("point %v outside region %v", p, r)
			}
		}
	}
}

func TestRandomPointWorldMix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	counts := map[Region]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		p := RandomPoint(rng, World)
		switch {
		case Contains(NorthAmerica, p):
			counts[NorthAmerica]++
		case Contains(Europe, p):
			counts[Europe]++
		case Contains(AsiaPacific, p):
			counts[AsiaPacific]++
		default:
			t.Fatalf("world point %v in no region", p)
		}
	}
	if counts[NorthAmerica] < n/3 {
		t.Errorf("expected North America to dominate world mix, got %v", counts)
	}
	if counts[Europe] == 0 || counts[AsiaPacific] == 0 {
		t.Errorf("expected all regions represented, got %v", counts)
	}
}

func TestRandomPointDeterministic(t *testing.T) {
	a := RandomPoint(rand.New(rand.NewSource(5)), World)
	b := RandomPoint(rand.New(rand.NewSource(5)), World)
	if a != b {
		t.Errorf("same seed should give same point: %v vs %v", a, b)
	}
}

func TestJitterStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		base := RandomPoint(rng, NorthAmerica)
		q := Jitter(rng, base, 50)
		if !q.Valid() {
			t.Fatalf("jittered point invalid: %v", q)
		}
		if d := DistanceKm(base, q); d > 55 { // small slack for lat/lon approximation
			t.Fatalf("jitter moved %v -> %v by %.1f km, want <=55", base, q, d)
		}
	}
}

func TestJitterZeroRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Point{LatDeg: 40, LonDeg: -100}
	q := Jitter(rng, p, 0)
	if DistanceKm(p, q) > 1e-9 {
		t.Errorf("zero-radius jitter moved the point: %v -> %v", p, q)
	}
}

func TestRegionString(t *testing.T) {
	cases := map[Region]string{
		NorthAmerica: "north-america",
		Europe:       "europe",
		AsiaPacific:  "asia-pacific",
		World:        "world",
		Region(99):   "region(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Region(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 180}, {-90, -180}, {47.6, -122.3}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {-91, 0}, {0, 181}, {0, -181}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return lo
	}
	// Fold arbitrary floats into range.
	r := math.Mod(x, hi-lo)
	if r < 0 {
		r += hi - lo
	}
	return lo + r
}
