package stats

import (
	"math/rand"
	"testing"
)

func benchSamples(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	for i := range out {
		out[i] = 50 + rng.ExpFloat64()*20
	}
	return out
}

func BenchmarkAccumAdd(b *testing.B) {
	data := benchSamples(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var a Accum
		for _, x := range data {
			a.Add(x)
		}
		if a.N() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := TQuantile(0.975, float64(2+i%100)); v <= 0 {
			b.Fatal("bad quantile")
		}
	}
}

func BenchmarkCompareMeans(b *testing.B) {
	x := Summary{N: 120, Mean: 80, Var: 900}
	y := Summary{N: 90, Mean: 75, Var: 1100}
	for i := 0; i < b.N; i++ {
		CompareMeans(x, y, 0.95)
	}
}

func BenchmarkConvolve(b *testing.B) {
	d1 := NewDist(benchSamples(300))
	d2 := NewDist(benchSamples(300))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d1.Convolve(d2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCDFFractionBelow(b *testing.B) {
	c := NewCDF(benchSamples(2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FractionBelow(float64(i % 200))
	}
}
