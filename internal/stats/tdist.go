package stats

import "math"

// Student-t quantiles, used for the paper's 95% confidence intervals
// (t[.975;v] in Section 6.2). The CDF is computed through the regularized
// incomplete beta function and inverted by bisection; accuracy is far
// better than the table lookups the original authors would have used.

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegIncBeta is the regularized incomplete beta function I_x(a, b).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	bt := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// TCDF is the cumulative distribution function of Student's t with v
// degrees of freedom.
func TCDF(x, v float64) float64 {
	if v <= 0 {
		return math.NaN()
	}
	//repolint:allow floateq -- symmetry point shortcut; nearby values take the general branch harmlessly
	if x == 0 {
		return 0.5
	}
	p := RegIncBeta(v/2, 0.5, v/(v+x*x)) / 2
	if x > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of Student's t with v degrees of
// freedom, by bisection on the CDF. For v going to infinity this
// approaches the normal quantile.
func TQuantile(p, v float64) float64 {
	if v <= 0 || math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN()
	}
	//repolint:allow floateq -- symmetry point shortcut; nearby values take the general branch harmlessly
	if p == 0.5 {
		return 0
	}
	// Exploit symmetry: solve for p > 0.5.
	if p < 0.5 {
		return -TQuantile(1-p, v)
	}
	lo, hi := 0.0, 1e3
	// Expand the bracket for extreme quantiles at tiny df.
	for TCDF(hi, v) < p && hi < 1e12 {
		hi *= 10
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, v) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
