package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Dist is an empirical distribution: a multiset of samples kept sorted.
// The paper's Section 6.1 composes alternate-path medians by convolving
// the sample distributions of the constituent hops; Dist implements that
// convolution with deterministic quantile thinning to bound cost.
type Dist struct {
	samples []float64 // sorted ascending
}

// NewDist builds a distribution from samples (copied and sorted).
func NewDist(samples []float64) Dist {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return Dist{samples: s}
}

// N returns the sample count.
func (d Dist) N() int { return len(d.samples) }

// Samples returns the sorted samples (not a copy; callers must not
// mutate).
func (d Dist) Samples() []float64 { return d.samples }

// Median returns the distribution's median.
func (d Dist) Median() (float64, error) {
	if len(d.samples) == 0 {
		return 0, errors.New("stats: median of empty distribution")
	}
	return quantileSorted(d.samples, 0.5), nil
}

// Quantile returns the q-quantile.
func (d Dist) Quantile(q float64) (float64, error) {
	if len(d.samples) == 0 {
		return 0, errors.New("stats: quantile of empty distribution")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %f out of [0,1]", q)
	}
	return quantileSorted(d.samples, q), nil
}

// Mean returns the distribution's mean.
func (d Dist) Mean() (float64, error) { return Mean(d.samples) }

// Thin reduces the distribution to at most n equally spaced quantile
// points, preserving its shape deterministically.
func (d Dist) Thin(n int) Dist {
	if n <= 0 || len(d.samples) <= n {
		return d
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		out[i] = quantileSorted(d.samples, q)
	}
	return Dist{samples: out}
}

// maxConvolutionPoints bounds the size of a convolution's cross product.
const maxConvolutionPoints = 256

// Convolve returns the distribution of X+Y for independent X ~ d and
// Y ~ other: the multiset of pairwise sums. Inputs larger than
// maxConvolutionPoints are first thinned to that many quantile points, as
// the paper notes the exact computation is "substantially more expensive".
func (d Dist) Convolve(other Dist) (Dist, error) {
	if d.N() == 0 || other.N() == 0 {
		return Dist{}, errors.New("stats: convolve with empty distribution")
	}
	a := d.Thin(maxConvolutionPoints)
	b := other.Thin(maxConvolutionPoints)
	out := make([]float64, 0, a.N()*b.N())
	for _, x := range a.samples {
		for _, y := range b.samples {
			out = append(out, x+y)
		}
	}
	sort.Float64s(out)
	// Keep the result bounded so chained convolutions stay cheap.
	res := Dist{samples: out}
	return res.Thin(maxConvolutionPoints * 4), nil
}

// CDF is a cumulative distribution function over a finite set of values,
// the form in which every figure in the paper is presented.
type CDF struct {
	values []float64 // sorted ascending
}

// NewCDF builds a CDF from values (copied and sorted).
func NewCDF(values []float64) CDF {
	v := make([]float64, len(values))
	copy(v, values)
	sort.Float64s(v)
	return CDF{values: v}
}

// N returns the number of points.
func (c CDF) N() int { return len(c.values) }

// Values returns the sorted values (not a copy).
func (c CDF) Values() []float64 { return c.values }

// FractionBelow returns P(X <= x).
func (c CDF) FractionBelow(x float64) float64 {
	if len(c.values) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.values, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.values))
}

// FractionAbove returns P(X > x).
func (c CDF) FractionAbove(x float64) float64 {
	if len(c.values) == 0 {
		return math.NaN()
	}
	return 1 - c.FractionBelow(x)
}

// Quantile returns the q-quantile of the CDF.
func (c CDF) Quantile(q float64) (float64, error) {
	if len(c.values) == 0 {
		return 0, errors.New("stats: quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %f out of [0,1]", q)
	}
	return quantileSorted(c.values, q), nil
}

// Point is one (x, cumulative fraction) pair of a CDF polyline.
type Point struct {
	X    float64
	Frac float64
}

// Points returns the CDF as a polyline: for each sorted value, the
// fraction of values at or below it.
func (c CDF) Points() []Point {
	pts := make([]Point, len(c.values))
	for i, v := range c.values {
		pts[i] = Point{X: v, Frac: float64(i+1) / float64(len(c.values))}
	}
	return pts
}

// Trimmed returns a copy of the CDF with values outside [lo, hi] removed,
// mirroring the paper's trimming of long tails ("we have trimmed our
// graphs to eliminate visual scaling artifacts"; trimmed CDFs need not
// reach 100%).
func (c CDF) Trimmed(lo, hi float64) CDF {
	out := make([]float64, 0, len(c.values))
	for _, v := range c.values {
		if v >= lo && v <= hi {
			out = append(out, v)
		}
	}
	return CDF{values: out}
}
